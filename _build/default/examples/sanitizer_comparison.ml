(** The paper's five case studies (§4.1), live: each is a bug that
    AddressSanitizer and Valgrind miss for a *structural* reason — and
    Safe Sulong finds because every access is checked automatically.

    Run with: dune exec examples/sanitizer_comparison.exe *)

let tools =
  [
    Engine.Safe_sulong;
    Engine.Clang Pipeline.O0;
    Engine.Asan Pipeline.O0;
    Engine.Asan Pipeline.O3;
    Engine.Valgrind Pipeline.O0;
  ]

let show ?(argv = [ "prog" ]) ?(input = "") ~title ~why src =
  Printf.printf "\n--- %s ---\n%s\n" title why;
  List.iter
    (fun tool ->
      let r = Engine.run ~argv ~input tool src in
      Printf.printf "  %-14s %s\n" (Engine.tool_name tool)
        (Outcome.short r.Engine.outcome);
      (* show what the native run actually printed: the leak! *)
      if tool = Engine.Clang Pipeline.O0 && String.length r.Engine.output > 0
      then Printf.printf "                 output: %s" r.Engine.output)
    tools

let () =
  show ~title:"case 1: out-of-bounds read of the main() arguments"
    ~why:
      "argv is written by the kernel before any instrumented code runs; \
       past argv[argc] lie the environment pointers (watch the native \
       output leak a secret)."
    {|
int main(int argc, char **argv) {
  printf("%d %s\n", argc, argv[5]);
  return 0;
}
|};
  show ~title:"case 2a: strtok has no interceptor"
    ~why:
      "The delimiter array is not NUL-terminated; the overread happens \
       inside the *precompiled libc*, which ASan's instrumentation cannot \
       see and for which it had no strtok interceptor."
    {|
int main(void) {
  char line[32] = "a b c";
  char seps[1] = {' '};
  char *tok = strtok(line, seps);
  printf("%s\n", tok);
  return 0;
}
|};
  show ~title:"case 2b: printf(\"%ld\") reads a long where an int was passed"
    ~why:
      "ASan's printf interceptor checks only pointer arguments; Safe \
       Sulong's printf runs on the checked interpreter and the 8-byte \
       read of the 4-byte variadic cell traps."
    {|
int main(void) {
  int counter = 7;
  printf("counter: %ld\n", counter);
  return 0;
}
|};
  show ~title:"case 3: the backend folds the bug away even at -O0"
    ~why:
      "count[7] is a constant-index out-of-bounds read; code generation \
       deletes it (with ASan's check attached), while Safe Sulong executes \
       the front-end IR where the access still exists."
    {|
int count[7] = {0, 0, 0, 0, 0, 0, 0};
int main(int argc, char **argv) { return count[7]; }
|};
  show ~title:"case 4: the access jumps past ASan's redzone"
    ~input:"50\n"
    ~why:
      "strings[50] lands 400 bytes past a 56-byte global -- beyond the \
       redzone, inside a neighbouring object, where the memory is valid \
       as far as shadow memory is concerned (P3: redzones are inexact)."
    {|
const char *strings[] = {"zero","one","two","three","four","five","six"};
char scratch[4096];
int main(void) {
  int number;
  fscanf(stdin, "%d", &number);
  printf("%s\n", strings[number]);
  return 0;
}
|};
  show ~title:"case 5: missing variadic argument"
    ~why:
      "The format string asks for two ints, the call passes one. In Safe \
       Sulong the variadic-argument array has exactly one element and the \
       second access is out of bounds (Fig. 9's machinery)."
    {|
int main(void) {
  int done = 3;
  printf("progress: %d of %d\n", done);
  return 0;
}
|};
  (* Bonus: the ASan-side fix the paper's authors contributed upstream
     (the strtok interceptor) can be switched on. *)
  Printf.printf
    "\n--- with the strtok interceptor the authors later added to LLVM ---\n";
  let src = {|
int main(void) {
  char line[32] = "a b c";
  char seps[1] = {' '};
  char *tok = strtok(line, seps);
  printf("%s\n", tok);
  return 0;
}
|} in
  let with_fix =
    Engine.run
      ~asan_options:{ Engine.strtok_interceptor = true; quarantine_cap = 1 lsl 18; fno_common = true }
      (Engine.Asan Pipeline.O0) src
  in
  Printf.printf "  ASan -O0 + strtok interceptor: %s\n"
    (Outcome.short with_fix.Engine.outcome)
