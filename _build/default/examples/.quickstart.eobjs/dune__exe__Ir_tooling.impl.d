examples/ir_tooling.ml: Globaldce Inline Interp Irmod Irparse Irprint List Loader Pipeline Printf String Util Verify
