examples/sanitizer_comparison.ml: Engine List Outcome Pipeline Printf String
