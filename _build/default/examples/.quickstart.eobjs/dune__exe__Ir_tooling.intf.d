examples/ir_tooling.mli:
