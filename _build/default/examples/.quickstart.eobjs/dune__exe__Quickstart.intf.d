examples/quickstart.mli:
