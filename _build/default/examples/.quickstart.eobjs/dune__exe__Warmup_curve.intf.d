examples/warmup_curve.mli:
