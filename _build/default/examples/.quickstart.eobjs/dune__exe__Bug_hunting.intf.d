examples/bug_hunting.mli:
