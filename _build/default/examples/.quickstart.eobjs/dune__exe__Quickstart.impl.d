examples/quickstart.ml: Engine Interp Loader Merror Outcome Pipeline Printf
