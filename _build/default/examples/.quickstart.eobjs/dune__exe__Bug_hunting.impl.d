examples/bug_hunting.ml: Corpus Engine Groundtruth List Outcome Printf
