examples/sanitizer_comparison.mli:
