examples/warmup_curve.ml: Benchprogs Chart List Printf Simulate
