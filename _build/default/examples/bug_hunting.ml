(** Bug hunting across a project corpus: run every program of the 68-bug
    corpus under Safe Sulong, as the paper did for its GitHub projects,
    and summarize what was found by category — the workflow behind
    Tables 1 and 2.

    Run with: dune exec examples/bug_hunting.exe *)

let () =
  Printf.printf "hunting bugs in %d small projects...\n\n"
    (List.length Corpus.all);
  let found = ref [] in
  List.iter
    (fun (p : Groundtruth.program) ->
      let r =
        Engine.run ~argv:p.Groundtruth.argv ~input:p.Groundtruth.input
          Engine.Safe_sulong p.Groundtruth.source
      in
      match r.Engine.outcome with
      | Outcome.Detected { kind; message; _ } ->
        found := p :: !found;
        Printf.printf "%-8s %-18s %s\n         -> %s\n" p.Groundtruth.id
          p.Groundtruth.project kind message
      | other ->
        Printf.printf "%-8s %-18s NOT DETECTED (%s)\n" p.Groundtruth.id
          p.Groundtruth.project (Outcome.to_string other))
    Corpus.all;
  let d = Corpus.distribution !found in
  Printf.printf
    "\nsummary (Table 1): %d buffer overflows, %d NULL dereferences, %d \
     use-after-free, %d varargs\n"
    d.Corpus.overflows d.Corpus.null_derefs d.Corpus.use_after_free
    d.Corpus.varargs;
  Printf.printf
    "out-of-bounds breakdown (Table 2): %d reads / %d writes; %d underflows \
     / %d overflows; stack %d, heap %d, global %d, main-args %d\n"
    d.Corpus.reads d.Corpus.writes d.Corpus.underflows d.Corpus.oob_overflows
    d.Corpus.stack d.Corpus.heap d.Corpus.global d.Corpus.main_args
