(** IR tooling tour: compile C to the IR, run optimization pipelines,
    dump the IR to text, parse it back, and execute the re-parsed module
    — the library's `llvm-dis`/`llvm-as` pair plus pass manager.

    Run with: dune exec examples/ir_tooling.exe *)

let src = {|
int squared_sum(int n) {
  int total = 0;
  for (int i = 1; i <= n; i++) { total += i * i; }
  return total;
}
int main(void) {
  printf("%d\n", squared_sum(10));
  return 0;
}
|}

let count_instrs (m : Irmod.t) = Irmod.instr_count m

let () =
  (* 1. the front end: Clang -O0-shaped IR *)
  let m = Loader.compile_user src in
  Printf.printf "front end:            %3d instructions\n" (count_instrs m);

  (* 2. the -O3 middle end shrinks it *)
  let o3 = Loader.compile_user src in
  ignore (Pipeline.o3 o3);
  Printf.printf "after -O3:            %3d instructions\n" (count_instrs o3);

  (* 3. inlining (the optional, bug-hiding pass) shrinks it further *)
  let inl = Loader.compile_user src in
  ignore (Inline.run inl);
  ignore (Pipeline.o3 inl);
  ignore (Globaldce.run inl);
  Printf.printf "after inline + -O3:   %3d instructions (%d function(s) left)\n"
    (count_instrs inl)
    (List.length inl.Irmod.funcs);

  (* 4. dump / parse round trip *)
  let text = Irprint.module_to_string o3 in
  Printf.printf "\ntextual IR (%d lines), squared_sum after -O3:\n"
    (List.length (String.split_on_char '\n' text));
  List.iter
    (fun line -> print_endline ("  " ^ line))
    (List.filteri
       (fun _ line -> Util.string_contains ~needle:"" line)
       (match String.index_opt text '@' with
       | Some _ ->
         let lines = String.split_on_char '\n' text in
         let rec from_define = function
           | [] -> []
           | l :: rest ->
             if Util.string_contains ~needle:"define" l then
               let rec until_brace acc = function
                 | [] -> List.rev acc
                 | "}" :: _ -> List.rev ("}" :: acc)
                 | x :: xs -> until_brace (x :: acc) xs
               in
               until_brace [ l ] rest
             else from_define rest
         in
         from_define lines
       | None -> []));

  let reparsed = Irparse.parse text in
  Verify.verify reparsed;
  Printf.printf "\nround trip: parse (print m) verifies, %d instructions\n"
    (count_instrs reparsed);

  (* 5. execute the re-parsed module on the managed interpreter *)
  let linked = Irmod.link reparsed (Loader.libc_module ()) in
  let st = Interp.create linked in
  let r = Interp.run st in
  Printf.printf "executed re-parsed IR: output = %S, exit = %d\n"
    r.Interp.output r.Interp.exit_code
