(** Quickstart: compile a C program from a string and execute it under
    Safe Sulong — the managed interpreter whose automatic checks find
    memory errors exactly.

    Run with: dune exec examples/quickstart.exe *)

let correct_program = {|
#include <stdio.h>

int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

int main(void) {
  for (int i = 1; i <= 10; i++) {
    printf("fib(%d) = %d\n", i, fib(i));
  }
  return 0;
}
|}

let buggy_program = {|
#include <stdlib.h>
#include <string.h>

int main(void) {
  const char *name = "quickstart";
  char *copy = (char *)malloc(strlen(name)); /* classic: missing +1 */
  strcpy(copy, name);
  free(copy);
  return 0;
}
|}

let () =
  (* A correct program runs to completion; its output and exit code are
     what the native machine would produce. *)
  let ok = Loader.run_source correct_program in
  print_string ok.Interp.output;
  Printf.printf "exit code: %d\n\n" ok.Interp.exit_code;

  (* A buggy program is stopped at the *first* invalid access, with a
     message naming the managed object class, the offset and the kind of
     violation -- no instrumentation, no recompilation, no heuristics. *)
  let bad = Loader.run_source buggy_program in
  (match bad.Interp.error with
  | Some (category, message) ->
    Printf.printf "bug found!\n  category: %s\n  message:  %s\n"
      (Merror.category_name category)
      message
  | None -> print_endline "no bug found (unexpected!)");

  (* The same API exposes every baseline engine for comparison. *)
  let under tool =
    (Engine.run tool buggy_program).Engine.outcome |> Outcome.short
  in
  Printf.printf "\nthe same bug under the other engines:\n";
  Printf.printf "  Clang -O0 (native): %s\n" (under (Engine.Clang Pipeline.O0));
  Printf.printf "  ASan -O0:           %s\n" (under (Engine.Asan Pipeline.O0));
  Printf.printf "  Valgrind:           %s\n" (under (Engine.Valgrind Pipeline.O0))
