(** Uniform run outcome across all tools. *)

type t =
  | Finished of int
      (** normal termination with exit code — for a buggy program this
          means the bug went *undetected* *)
  | Detected of { tool : string; kind : string; message : string }
      (** the tool diagnosed an error *)
  | Crashed of string
      (** hard crash (SEGV/SIGFPE) without a tool diagnosis *)
  | Timeout

val is_detected : t -> bool

(** Full rendering (tool, kind, message). *)
val to_string : t -> string

(** Compact rendering for matrices: "FOUND (kind)" / "missed" / ... *)
val short : t -> string
