(** Uniform run outcome across all tools. *)

type t =
  | Finished of int
      (** normal termination with exit code — for a buggy program this
          means the bug went *undetected* *)
  | Detected of { tool : string; kind : string; message : string }
      (** the tool diagnosed an error *)
  | Crashed of string
      (** hard crash (SEGV/SIGFPE) without a tool diagnosis *)
  | Timeout

let is_detected = function Detected _ -> true | _ -> false

let to_string = function
  | Finished code -> Printf.sprintf "exit %d" code
  | Detected { tool; kind; message } ->
    Printf.sprintf "%s: %s: %s" tool kind message
  | Crashed what -> "crashed: " ^ what
  | Timeout -> "timeout"

let short = function
  | Finished _ -> "missed"
  | Detected { kind; _ } -> "FOUND (" ^ kind ^ ")"
  | Crashed what -> "crash (" ^ what ^ ")"
  | Timeout -> "timeout"
