lib/engine/outcome.ml: Printf
