lib/engine/engine.mli: Interp Nexec Outcome Pipeline
