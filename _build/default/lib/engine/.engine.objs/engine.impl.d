lib/engine/engine.ml: Alloc Asan Hooks Interp Irmod Loader Mem Memcheck Merror Nexec Outcome Pipeline Printf Verify
