lib/engine/outcome.mli:
