(** The LLVM-IR interpreter at the core of Safe Sulong (paper §3).

    It executes both the user application and the managed libc.  Every
    load, store and free goes through [Mobject]'s automatic checks, so
    all the paper's error classes are detected without any explicit
    instrumentation of the program.  Host builtins (the functions
    "implemented in Java" in the paper) provide the system-call layer:
    character I/O, exit, the variadic-argument introspection functions
    [count_varargs]/[get_vararg], and the allocation primitives.

    The interpreter also collects an execution profile (per-function
    dynamic operation counts) that the JIT cost model (lib/jit) consumes
    to reproduce the paper's start-up/warm-up/peak measurements. *)

exception Exit_program of int
exception Step_limit_exceeded

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable c_ops : int;        (** integer/other IR operations executed *)
  mutable c_fp : int;         (** floating-point operations *)
  mutable c_mem : int;        (** loads + stores *)
  mutable c_calls : int;      (** calls executed *)
  mutable c_invocations : int;(** times this function was entered *)
}

let fresh_counters () =
  { c_ops = 0; c_fp = 0; c_mem = 0; c_calls = 0; c_invocations = 0 }

type profile = {
  funcs : (string, counters) Hashtbl.t;
  mutable p_allocs : int;
  mutable p_alloc_bytes : int;
  mutable p_steps : int;
}

let fresh_profile () =
  { funcs = Hashtbl.create 32; p_allocs = 0; p_alloc_bytes = 0; p_steps = 0 }

(* ------------------------------------------------------------------ *)
(* Prepared code                                                       *)
(* ------------------------------------------------------------------ *)

type pblock = {
  pb_label : string;
  pb_instrs : Instr.instr array;
  pb_term : Instr.terminator;
}

type pfunc = {
  pf_ir : Irfunc.t;
  pf_blocks : pblock array;
  pf_index : (string, int) Hashtbl.t;
  pf_nregs : int;
  pf_counters : counters;
}

let prepare_func profile (f : Irfunc.t) : pfunc =
  let blocks =
    Array.of_list
      (List.map
         (fun (b : Irfunc.block) ->
           {
             pb_label = b.Irfunc.label;
             pb_instrs = Array.of_list b.Irfunc.instrs;
             pb_term = b.Irfunc.term;
           })
         f.Irfunc.blocks)
  in
  let index = Hashtbl.create (Array.length blocks) in
  Array.iteri (fun i b -> Hashtbl.replace index b.pb_label i) blocks;
  let counters = fresh_counters () in
  Hashtbl.replace profile.funcs f.Irfunc.name counters;
  {
    pf_ir = f;
    pf_blocks = blocks;
    pf_index = index;
    pf_nregs = f.Irfunc.next_reg;
    pf_counters = counters;
  }

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type frame = {
  fr_func : pfunc;
  fr_regs : Mval.t array;
  fr_args : Mval.t array;          (** all incoming arguments *)
  fr_arg_scalars : Irtype.scalar array;
  fr_variadic : bool;
  fr_nparams : int;
}

type state = {
  m : Irmod.t;
  funcs : (string, pfunc) Hashtbl.t;
  globals : (string, Mobject.t) Hashtbl.t;
  heap : Mheap.t;
  out : Buffer.t;
  mutable input : string;
  mutable input_pos : int;
  mutable steps : int;
  step_limit : int;
  mutable depth : int;
  depth_limit : int;
  profile : profile;
  mutable frames : frame list;  (** innermost first *)
  rng : Prng.t;                 (** backs the libc rand() builtin *)
  trace : Buffer.t option;      (** call tracing, when enabled *)
}

let context st =
  match st.frames with
  | fr :: _ -> "in function " ^ fr.fr_func.pf_ir.Irfunc.name
  | [] -> "at top level"

(* ------------------------------------------------------------------ *)
(* Global materialization                                              *)
(* ------------------------------------------------------------------ *)

let rec fill_init st (obj : Mobject.t) (mty : Irtype.mty) (off : int)
    (init : Irmod.ginit) =
  let addr moff = { Mobject.obj; moff } in
  match (init, mty) with
  | Irmod.Gzero, _ -> ()
  | Irmod.Gint v, Irtype.MScalar s ->
    if Irtype.is_float_scalar s then
      Mobject.store_float (addr off) ~size:(Irtype.scalar_size s)
        (Int64.to_float v) "global init"
    else
      Mobject.store_int (addr off) ~size:(Irtype.scalar_size s) v "global init"
  | Irmod.Gfloat f, Irtype.MScalar s ->
    Mobject.store_float (addr off) ~size:(Irtype.scalar_size s) f "global init"
  | Irmod.Gstring s, _ -> Mobject.write_bytes (addr off) s "global init"
  | Irmod.Garray items, Irtype.MArray (elem, _) ->
    let esize = Irtype.mty_size elem in
    List.iteri (fun i item -> fill_init st obj elem (off + (i * esize)) item) items
  | Irmod.Gstruct_init items, Irtype.MStruct s ->
    List.iteri
      (fun i item ->
        if i < List.length s.Irtype.s_fields then begin
          let field = List.nth s.Irtype.s_fields i in
          fill_init st obj field.Irtype.mf_ty
            (off + field.Irtype.mf_off) item
        end)
      items
  | Irmod.Gglobal_addr name, _ -> begin
    match Hashtbl.find_opt st.globals name with
    | Some target ->
      Mobject.store_ptr (addr off)
        (Mobject.Pobj { Mobject.obj = target; moff = 0 })
        "global init"
    | None -> failwith ("interp: global init references unknown @" ^ name)
  end
  | Irmod.Gfunc_addr name, _ ->
    Mobject.store_ptr (addr off) (Mobject.Pfunc name) "global init"
  | Irmod.Gint v, _ ->
    (* e.g. (FILE * )1 stored in a pointer-typed global *)
    Mobject.store_int (addr off) ~size:8 v "global init"
  | (Irmod.Gfloat _ | Irmod.Garray _ | Irmod.Gstruct_init _), _ ->
    failwith "interp: malformed global initializer"

let materialize_globals st =
  List.iter
    (fun (g : Irmod.global) ->
      let size = Irtype.mty_size g.Irmod.g_ty in
      let obj =
        Mobject.alloc ~storage:Merror.Global ~mty:g.Irmod.g_ty size
      in
      Hashtbl.replace st.globals g.Irmod.g_name obj)
    st.m.Irmod.globals;
  List.iter
    (fun (g : Irmod.global) ->
      let obj = Hashtbl.find st.globals g.Irmod.g_name in
      fill_init st obj g.Irmod.g_ty 0 g.Irmod.g_init)
    st.m.Irmod.globals

(* ------------------------------------------------------------------ *)
(* Value evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let eval_value st (fr : frame) (v : Instr.value) : Mval.t =
  match v with
  | Instr.Reg r -> fr.fr_regs.(r)
  | Instr.ImmInt (v, s) -> Mval.Vint (Irtype.normalize_int s v)
  | Instr.ImmFloat (f, _) -> Mval.Vfloat f
  | Instr.Null -> Mval.vnull
  | Instr.GlobalAddr name -> begin
    match Hashtbl.find_opt st.globals name with
    | Some obj -> Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 })
    | None -> failwith ("interp: unknown global @" ^ name)
  end
  | Instr.FuncAddr name -> Mval.Vptr (Mobject.Pfunc name)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let exec_binop st (op : Instr.binop) (s : Irtype.scalar) (a : Mval.t)
    (b : Mval.t) : Mval.t =
  match op with
  | Instr.FAdd -> Mval.Vfloat (Mval.as_float a +. Mval.as_float b)
  | Instr.FSub -> Mval.Vfloat (Mval.as_float a -. Mval.as_float b)
  | Instr.FMul -> Mval.Vfloat (Mval.as_float a *. Mval.as_float b)
  | Instr.FDiv -> Mval.Vfloat (Mval.as_float a /. Mval.as_float b)
  | _ ->
    let x = Mval.as_int a and y = Mval.as_int b in
    let norm v = Irtype.normalize_int s v in
    let checked_div () =
      if y = 0L then Merror.raise_error Merror.Division_by_zero (context st)
    in
    let result =
      match op with
      | Instr.Add -> Int64.add x y
      | Instr.Sub -> Int64.sub x y
      | Instr.Mul -> Int64.mul x y
      | Instr.Sdiv ->
        checked_div ();
        Int64.div x y
      | Instr.Udiv ->
        checked_div ();
        Int64.unsigned_div (Irtype.unsigned_of s x) (Irtype.unsigned_of s y)
      | Instr.Srem ->
        checked_div ();
        Int64.rem x y
      | Instr.Urem ->
        checked_div ();
        Int64.unsigned_rem (Irtype.unsigned_of s x) (Irtype.unsigned_of s y)
      | Instr.Shl -> Int64.shift_left x (Int64.to_int y land 63)
      | Instr.Lshr ->
        Int64.shift_right_logical (Irtype.unsigned_of s x)
          (Int64.to_int y land 63)
      | Instr.Ashr -> Int64.shift_right x (Int64.to_int y land 63)
      | Instr.And -> Int64.logand x y
      | Instr.Or -> Int64.logor x y
      | Instr.Xor -> Int64.logxor x y
      | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv -> assert false
    in
    Mval.Vint (norm result)

let exec_icmp (op : Instr.icmp) (s : Irtype.scalar) (a : Mval.t) (b : Mval.t) :
    Mval.t =
  let x = Mval.as_int a and y = Mval.as_int b in
  let ux () = Irtype.unsigned_of s x and uy () = Irtype.unsigned_of s y in
  let r =
    match op with
    | Instr.Ieq -> x = y
    | Instr.Ine -> x <> y
    | Instr.Islt -> x < y
    | Instr.Isle -> x <= y
    | Instr.Isgt -> x > y
    | Instr.Isge -> x >= y
    | Instr.Iult -> Int64.unsigned_compare (ux ()) (uy ()) < 0
    | Instr.Iule -> Int64.unsigned_compare (ux ()) (uy ()) <= 0
    | Instr.Iugt -> Int64.unsigned_compare (ux ()) (uy ()) > 0
    | Instr.Iuge -> Int64.unsigned_compare (ux ()) (uy ()) >= 0
  in
  Mval.Vint (if r then 1L else 0L)

let exec_fcmp (op : Instr.fcmp) (a : Mval.t) (b : Mval.t) : Mval.t =
  let x = Mval.as_float a and y = Mval.as_float b in
  let r =
    match op with
    | Instr.Feq -> x = y
    | Instr.Fne -> x <> y
    | Instr.Flt -> x < y
    | Instr.Fle -> x <= y
    | Instr.Fgt -> x > y
    | Instr.Fge -> x >= y
  in
  Mval.Vint (if r then 1L else 0L)

let round_to_f32 f = Int32.float_of_bits (Int32.bits_of_float f)

let exec_cast st (op : Instr.cast) (from : Irtype.scalar) (into : Irtype.scalar)
    (v : Mval.t) : Mval.t =
  match op with
  | Instr.Trunc -> Mval.Vint (Irtype.normalize_int into (Mval.as_int v))
  | Instr.Zext ->
    Mval.Vint (Irtype.normalize_int into (Irtype.unsigned_of from (Mval.as_int v)))
  | Instr.Sext -> Mval.Vint (Irtype.normalize_int into (Mval.as_int v))
  | Instr.Fptrunc -> Mval.Vfloat (round_to_f32 (Mval.as_float v))
  | Instr.Fpext -> Mval.Vfloat (Mval.as_float v)
  | Instr.Fptosi | Instr.Fptoui ->
    let f = Mval.as_float v in
    let truncated = Float.of_int (int_of_float f) in
    ignore truncated;
    Mval.Vint (Irtype.normalize_int into (Int64.of_float f))
  | Instr.Sitofp -> Mval.Vfloat (Int64.to_float (Mval.as_int v))
  | Instr.Uitofp ->
    let u = Irtype.unsigned_of from (Mval.as_int v) in
    let f =
      if u >= 0L then Int64.to_float u
      else Int64.to_float u +. 18446744073709551616.0
    in
    Mval.Vfloat f
  | Instr.Ptrtoint -> begin
    match v with
    | Mval.Vptr (Mobject.Pobj a) ->
      Mobject.register a.Mobject.obj;
      Mval.Vint (Irtype.normalize_int into (Mobject.ptr_to_int (Mobject.Pobj a)))
    | Mval.Vptr (Mobject.Pfunc name) ->
      Mval.Vint (Mobject.register_func_cookie name)
    | v -> Mval.Vint (Irtype.normalize_int into (Mval.as_int v))
  end
  | Instr.Inttoptr -> Mval.Vptr (Mobject.int_to_ptr (Mval.as_int v))
  | Instr.Bitcast -> begin
    match (Irtype.is_float_scalar from, Irtype.is_float_scalar into) with
    | true, false ->
      let f = Mval.as_float v in
      let bits =
        if into = Irtype.I32 then Int64.of_int32 (Int32.bits_of_float f)
        else Int64.bits_of_float f
      in
      Mval.Vint (Irtype.normalize_int into bits)
    | false, true ->
      let bits = Mval.as_int v in
      if into = Irtype.F32 then
        Mval.Vfloat (Int32.float_of_bits (Int64.to_int32 bits))
      else Mval.Vfloat (Int64.float_of_bits bits)
    | _ -> v
  end
  |> fun r ->
  ignore st;
  r

(* ------------------------------------------------------------------ *)
(* Memory access                                                       *)
(* ------------------------------------------------------------------ *)

let deref st (p : Mobject.ptr) : Mobject.addr =
  match p with
  | Mobject.Pobj a -> a
  | Mobject.Pnull -> Merror.raise_error Merror.Null_deref (context st)
  | Mobject.Pfunc name ->
    Merror.raise_error
      (Merror.Type_violation ("dereference of function pointer &" ^ name))
      (context st)
  | Mobject.Pinvalid c ->
    Merror.raise_error
      (Merror.Type_violation
         (Printf.sprintf "dereference of forged pointer 0x%Lx" c))
      (context st)

let exec_load st (s : Irtype.scalar) (p : Mval.t) : Mval.t =
  let a = deref st (Mval.as_ptr (context st) p) in
  (* Allocation memento: first typed access of an untyped heap object. *)
  if a.Mobject.obj.Mobject.storage = Merror.Heap && s <> Irtype.I8 then
    Mheap.observe st.heap a.Mobject.obj s;
  match s with
  | Irtype.Ptr -> Mval.Vptr (Mobject.load_ptr a (context st))
  | Irtype.F32 | Irtype.F64 ->
    Mval.Vfloat (Mobject.load_float a ~size:(Irtype.scalar_size s) (context st))
  | _ ->
    let raw = Mobject.load_int a ~size:(Irtype.scalar_size s) (context st) in
    Mval.Vint (Irtype.normalize_int s raw)

let exec_store st (s : Irtype.scalar) (v : Mval.t) (p : Mval.t) : unit =
  let a = deref st (Mval.as_ptr (context st) p) in
  if a.Mobject.obj.Mobject.storage = Merror.Heap && s <> Irtype.I8 then
    Mheap.observe st.heap a.Mobject.obj s;
  match s with
  | Irtype.Ptr -> Mobject.store_ptr a (Mval.as_ptr (context st) v) (context st)
  | Irtype.F32 | Irtype.F64 ->
    Mobject.store_float a ~size:(Irtype.scalar_size s) (Mval.as_float v)
      (context st)
  | _ ->
    Mobject.store_int a ~size:(Irtype.scalar_size s) (Mval.as_int v)
      (context st)

let exec_gep st (base : Mval.t) (indices : Instr.gep_index list)
    (fr : frame) : Mval.t =
  let delta =
    List.fold_left
      (fun acc idx ->
        match idx with
        | Instr.Gfield (_, off) -> acc + off
        | Instr.Gindex (v, stride) ->
          acc + (Int64.to_int (Mval.as_int (eval_value st fr v)) * stride))
      0 indices
  in
  match Mval.as_ptr (context st) base with
  | Mobject.Pnull -> Mval.Vptr Mobject.Pnull (* checked at the access *)
  | Mobject.Pobj a -> Mval.Vptr (Mobject.Pobj { a with Mobject.moff = a.Mobject.moff + delta })
  | Mobject.Pfunc _ as p ->
    Mval.Vptr (Mobject.Pinvalid (Int64.add (Mobject.ptr_to_int p) (Int64.of_int delta)))
  | Mobject.Pinvalid c -> Mval.Vptr (Mobject.Pinvalid (Int64.add c (Int64.of_int delta)))

(* ------------------------------------------------------------------ *)
(* Builtins: the host ("Java") side of the runtime                     *)
(* ------------------------------------------------------------------ *)

let arg_int args i = Mval.as_int args.(i)
let arg_float args i = Mval.as_float args.(i)

let nearest_variadic_frame st : frame option =
  List.find_opt (fun fr -> fr.fr_variadic) st.frames

let site_counter = ref 0

let builtin_malloc st size =
  incr site_counter;
  ignore !site_counter;
  st.profile.p_allocs <- st.profile.p_allocs + 1;
  st.profile.p_alloc_bytes <- st.profile.p_alloc_bytes + size;
  (* Allocation site: the current function gives memento locality. *)
  let site, site_name =
    match st.frames with
    | fr :: _ ->
      let name = fr.fr_func.pf_ir.Irfunc.name in
      (Hashtbl.hash name, name)
    | [] -> (-1, "?")
  in
  Mheap.name_site st.heap ~site site_name;
  Mheap.malloc st.heap ~site size

let read_input_char st =
  if st.input_pos < String.length st.input then begin
    let c = st.input.[st.input_pos] in
    st.input_pos <- st.input_pos + 1;
    Char.code c
  end
  else -1

let exec_builtin st (name : string) (args : Mval.t array) : Mval.t option =
  let ctx = context st in
  match name with
  | "__sulong_putchar" ->
    Buffer.add_char st.out (Char.chr (Int64.to_int (arg_int args 0) land 0xff));
    Some (Mval.Vint (arg_int args 0))
  | "__sulong_exit" -> raise (Exit_program (Int64.to_int (arg_int args 0)))
  | "__sulong_abort" -> raise (Exit_program 134)
  | "count_varargs" -> begin
    match nearest_variadic_frame st with
    | Some fr ->
      Some (Mval.Vint (Int64.of_int (Array.length fr.fr_args - fr.fr_nparams)))
    | None ->
      Merror.raise_error
        (Merror.Varargs_error "count_varargs outside a variadic function") ctx
  end
  | "get_vararg" -> begin
    match nearest_variadic_frame st with
    | Some fr ->
      let i = Int64.to_int (arg_int args 0) in
      let nvar = Array.length fr.fr_args - fr.fr_nparams in
      if i < 0 || i >= nvar then
        Merror.raise_error
          (Merror.Varargs_error
             (Printf.sprintf "access to variadic argument %d of %d" i nvar))
          ctx
      else begin
        (* Expose a pointer to a cell holding the argument; the cell has
           exactly the argument's size, so over-wide reads (%ld on an
           int) are out-of-bounds (paper §3.4). *)
        let v = fr.fr_args.(fr.fr_nparams + i) in
        let s = fr.fr_arg_scalars.(fr.fr_nparams + i) in
        let size = Irtype.scalar_size s in
        let cell =
          Mobject.alloc ~storage:Merror.Vararg ~mty:(Irtype.MScalar s) size
        in
        let a = { Mobject.obj = cell; moff = 0 } in
        (match (s, v) with
        | Irtype.Ptr, _ -> Mobject.store_ptr a (Mval.as_ptr ctx v) ctx
        | (Irtype.F32 | Irtype.F64), _ ->
          Mobject.store_float a ~size (Mval.as_float v) ctx
        | _, _ -> Mobject.store_int a ~size (Mval.as_int v) ctx);
        Some (Mval.Vptr (Mobject.Pobj a))
      end
    | None ->
      Merror.raise_error
        (Merror.Varargs_error "get_vararg outside a variadic function") ctx
  end
  | "__sulong_format_pointer" -> Some (Mval.Vint (Mval.as_int args.(0)))
  | "__sulong_read_char" -> Some (Mval.Vint (Int64.of_int (read_input_char st)))
  | "__sulong_unread_char" ->
    if st.input_pos > 0 && Int64.to_int (arg_int args 0) >= 0 then
      st.input_pos <- st.input_pos - 1;
    Some (Mval.Vint 0L)
  | "malloc" ->
    let size = Int64.to_int (arg_int args 0) in
    let obj = builtin_malloc st size in
    Some (Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 }))
  | "calloc" ->
    let n = Int64.to_int (arg_int args 0) in
    let esize = Int64.to_int (arg_int args 1) in
    let obj = builtin_malloc st (n * esize) in
    (* calloc'd memory is zeroed, hence initialized *)
    Mobject.mark_initialized obj ~off:0 ~size:(n * esize);
    Some (Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 }))
  | "realloc" -> begin
    let p = Mval.as_ptr ctx args.(0) in
    let size = Int64.to_int (arg_int args 1) in
    match p with
    | Mobject.Pnull ->
      let obj = builtin_malloc st size in
      Some (Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 }))
    | Mobject.Pobj a ->
      let old = a.Mobject.obj in
      let fresh = builtin_malloc st size in
      (* copy the overlapping prefix, bytes and pointer slots alike *)
      (match old.Mobject.data with
      | Some src ->
        let n = min size old.Mobject.byte_size in
        (match fresh.Mobject.data with
        | Some dst -> Bytes.blit src 0 dst 0 n
        | None -> ());
        (match (old.Mobject.init_map, fresh.Mobject.init_map) with
        | Some om, Some fm -> Bytes.blit om 0 fm 0 n
        | _, Some _ -> Mobject.mark_initialized fresh ~off:0 ~size:n
        | _ -> ());
        Hashtbl.iter
          (fun off p ->
            if off + 8 <= n then Hashtbl.replace fresh.Mobject.ptr_slots off p)
          old.Mobject.ptr_slots
      | None -> Merror.raise_error Merror.Use_after_free ctx);
      Mheap.free st.heap p ctx;
      Some (Mval.Vptr (Mobject.Pobj { Mobject.obj = fresh; moff = 0 }))
    | Mobject.Pfunc _ | Mobject.Pinvalid _ ->
      Merror.raise_error (Merror.Invalid_free "bad pointer passed to realloc") ctx
  end
  | "free" ->
    Mheap.free st.heap (Mval.as_ptr ctx args.(0)) ctx;
    None
  | "__sulong_sqrt" -> Some (Mval.Vfloat (sqrt (arg_float args 0)))
  | "__sulong_sin" -> Some (Mval.Vfloat (sin (arg_float args 0)))
  | "__sulong_cos" -> Some (Mval.Vfloat (cos (arg_float args 0)))
  | "__sulong_atan" -> Some (Mval.Vfloat (atan (arg_float args 0)))
  | "__sulong_exp" -> Some (Mval.Vfloat (exp (arg_float args 0)))
  | "__sulong_log" -> Some (Mval.Vfloat (log (arg_float args 0)))
  | "__sulong_pow" ->
    Some (Mval.Vfloat (Float.pow (arg_float args 0) (arg_float args 1)))
  | "__sulong_rand" -> Some (Mval.Vint (Int64.of_int (Prng.int st.rng 0x7FFFFFFF)))
  | _ -> failwith ("interp: unknown builtin " ^ name)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type opclass = Cop | Cfp | Cmem

let charge st (fr : frame) (cls : opclass) =
  st.steps <- st.steps + 1;
  st.profile.p_steps <- st.profile.p_steps + 1;
  (match cls with
  | Cmem -> fr.fr_func.pf_counters.c_mem <- fr.fr_func.pf_counters.c_mem + 1
  | Cfp -> fr.fr_func.pf_counters.c_fp <- fr.fr_func.pf_counters.c_fp + 1
  | Cop -> fr.fr_func.pf_counters.c_ops <- fr.fr_func.pf_counters.c_ops + 1);
  if st.steps > st.step_limit then raise Step_limit_exceeded

let rec call_function st (pf : pfunc) (args : Mval.t array)
    (arg_scalars : Irtype.scalar array) : Mval.t option =
  st.depth <- st.depth + 1;
  if st.depth > st.depth_limit then
    Merror.raise_error Merror.Stack_overflow_guard (context st);
  (match st.trace with
  | Some buf ->
    Buffer.add_string buf
      (Printf.sprintf "%s-> %s(%s)\n"
         (String.make (min st.depth 40) ' ')
         pf.pf_ir.Irfunc.name
         (String.concat ", "
            (List.map Mval.to_string (Array.to_list args))))
  | None -> ());
  pf.pf_counters.c_invocations <- pf.pf_counters.c_invocations + 1;
  let fr =
    {
      fr_func = pf;
      fr_regs = Array.make (max pf.pf_nregs 1) Mval.zero;
      fr_args = args;
      fr_arg_scalars = arg_scalars;
      fr_variadic = pf.pf_ir.Irfunc.variadic;
      fr_nparams = List.length pf.pf_ir.Irfunc.params;
    }
  in
  List.iteri
    (fun i (r, _) -> if i < Array.length args then fr.fr_regs.(r) <- args.(i))
    pf.pf_ir.Irfunc.params;
  st.frames <- fr :: st.frames;
  let result = exec_block st fr 0 "" in
  (match st.trace with
  | Some buf ->
    Buffer.add_string buf
      (Printf.sprintf "%s<- %s = %s\n"
         (String.make (min st.depth 40) ' ')
         pf.pf_ir.Irfunc.name
         (match result with Some v -> Mval.to_string v | None -> "void"))
  | None -> ());
  st.frames <- List.tl st.frames;
  st.depth <- st.depth - 1;
  result

and exec_block st (fr : frame) (block_idx : int) (prev_label : string) :
    Mval.t option =
  let pf = fr.fr_func in
  let blk = pf.pf_blocks.(block_idx) in
  let n = Array.length blk.pb_instrs in
  let set r v = fr.fr_regs.(r) <- v in
  let rec run i =
    if i >= n then exec_term st fr blk prev_label
    else begin
      (match blk.pb_instrs.(i) with
      | Instr.Alloca (r, mty) ->
        charge st fr Cop;
        let size = Irtype.mty_size mty in
        let obj = Mobject.alloc ~storage:Merror.Stack ~mty size in
        set r (Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 }))
      | Instr.Load (r, s, p) ->
        charge st fr Cmem;
        set r (exec_load st s (eval_value st fr p))
      | Instr.Store (s, v, p) ->
        charge st fr Cmem;
        exec_store st s (eval_value st fr v) (eval_value st fr p)
      | Instr.Gep (r, base, idx) ->
        charge st fr Cop;
        set r (exec_gep st (eval_value st fr base) idx fr)
      | Instr.Binop (r, op, s, a, b) ->
        charge st fr
          (match op with
          | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv -> Cfp
          | _ -> Cop);
        set r (exec_binop st op s (eval_value st fr a) (eval_value st fr b))
      | Instr.Icmp (r, op, s, a, b) ->
        charge st fr Cop;
        set r (exec_icmp op s (eval_value st fr a) (eval_value st fr b))
      | Instr.Fcmp (r, op, _, a, b) ->
        charge st fr Cfp;
        set r (exec_fcmp op (eval_value st fr a) (eval_value st fr b))
      | Instr.Cast (r, op, from, into, v) ->
        charge st fr Cop;
        set r (exec_cast st op from into (eval_value st fr v))
      | Instr.Select (r, _, c, a, b) ->
        charge st fr Cop;
        let cv = Mval.as_int (eval_value st fr c) in
        set r (eval_value st fr (if cv <> 0L then a else b))
      | Instr.Phi (r, _, incoming) ->
        charge st fr Cop;
        let v =
          match List.assoc_opt prev_label incoming with
          | Some v -> v
          | None -> failwith "interp: phi has no incoming edge for predecessor"
        in
        set r (eval_value st fr v)
      | Instr.Sancheck _ -> charge st fr Cop
      | Instr.Call (r, _, callee, cargs) ->
        charge st fr Cop;
        fr.fr_func.pf_counters.c_calls <- fr.fr_func.pf_counters.c_calls + 1;
        let argv = Array.of_list (List.map (fun (_, v) -> eval_value st fr v) cargs) in
        let scalars = Array.of_list (List.map fst cargs) in
        let result =
          match callee with
          | Instr.Direct name -> dispatch st name argv scalars
          | Instr.Indirect v -> begin
            match Mval.as_ptr (context st) (eval_value st fr v) with
            | Mobject.Pfunc name -> dispatch st name argv scalars
            | Mobject.Pnull -> Merror.raise_error Merror.Null_deref (context st)
            | Mobject.Pobj _ | Mobject.Pinvalid _ ->
              Merror.raise_error
                (Merror.Type_violation "indirect call through a data pointer")
                (context st)
          end
        in
        (match (r, result) with
        | Some r, Some v -> set r v
        | Some r, None -> set r Mval.zero
        | None, _ -> ()));
      run (i + 1)
    end
  in
  run 0

and dispatch st name argv scalars : Mval.t option =
  match Hashtbl.find_opt st.funcs name with
  | Some pf -> call_function st pf argv scalars
  | None -> exec_builtin st name argv

and exec_term st (fr : frame) (blk : pblock) (_prev : string) : Mval.t option =
  charge st fr Cop;
  match blk.pb_term with
  | Instr.Ret (Some (_, v)) -> Some (eval_value st fr v)
  | Instr.Ret None -> None
  | Instr.Br l -> jump st fr blk.pb_label l
  | Instr.Condbr (c, a, b) ->
    let cv = Mval.as_int (eval_value st fr c) in
    jump st fr blk.pb_label (if cv <> 0L then a else b)
  | Instr.Switch (v, cases, default) ->
    let x = Mval.as_int (eval_value st fr v) in
    let target =
      match List.find_opt (fun (k, _) -> k = x) cases with
      | Some (_, l) -> l
      | None -> default
    in
    jump st fr blk.pb_label target
  | Instr.Unreachable ->
    Merror.raise_error
      (Merror.Type_violation "reached an unreachable instruction")
      (context st)

and jump st fr from_label target : Mval.t option =
  match Hashtbl.find_opt fr.fr_func.pf_index target with
  | Some idx -> exec_block st fr idx from_label
  | None -> failwith ("interp: jump to unknown block " ^ target)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type run_result = {
  exit_code : int;
  output : string;
  error : (Merror.category * string) option;
  steps : int;
  run_profile : profile;
  leaks : int;  (** unfreed heap objects at exit (paper §6 extension) *)
  leak_details : string list;
      (** one line per leaked object: class, size, allocating function *)
  trace_output : string;  (** call trace, when enabled (empty otherwise) *)
  timed_out : bool;
}

let create ?(step_limit = 500_000_000) ?(depth_limit = 4096)
    ?(mementos = true) ?(detect_uninit = false) ?(trace = false)
    ?(input = "") ?(seed = 42) (m : Irmod.t) : state =
  Mobject.reset ();
  Mobject.track_uninitialized := detect_uninit;
  let profile = fresh_profile () in
  let st =
    {
      m;
      funcs = Hashtbl.create 64;
      globals = Hashtbl.create 64;
      heap = Mheap.create ~mementos ();
      out = Buffer.create 1024;
      input;
      input_pos = 0;
      steps = 0;
      step_limit;
      depth = 0;
      depth_limit;
      profile;
      frames = [];
      rng = Prng.create seed;
      trace = (if trace then Some (Buffer.create 1024) else None);
    }
  in
  List.iter
    (fun f -> Hashtbl.replace st.funcs f.Irfunc.name (prepare_func profile f))
    m.Irmod.funcs;
  materialize_globals st;
  st

(** Build the [main] argument objects: an argv array of [MainArgs]
    storage whose size is exactly argc+1 pointers (argv[argc] = NULL), so
    any access past it is out of bounds — the paper's case study 1. *)
let build_argv (argv : string list) : Mval.t * Mval.t =
  let argc = List.length argv in
  let arr =
    Mobject.alloc ~storage:Merror.MainArgs
      ~mty:(Irtype.MArray (Irtype.MScalar Irtype.Ptr, argc + 1))
      ((argc + 1) * 8)
  in
  List.iteri
    (fun i s ->
      let strobj =
        Mobject.alloc ~storage:Merror.MainArgs
          ~mty:(Irtype.MArray (Irtype.MScalar Irtype.I8, String.length s + 1))
          (String.length s + 1)
      in
      Mobject.write_bytes { Mobject.obj = strobj; moff = 0 } s "argv setup";
      Mobject.store_ptr
        { Mobject.obj = arr; moff = i * 8 }
        (Mobject.Pobj { Mobject.obj = strobj; moff = 0 })
        "argv setup")
    argv;
  ( Mval.Vint (Int64.of_int argc),
    Mval.Vptr (Mobject.Pobj { Mobject.obj = arr; moff = 0 }) )

let run ?(argv = [ "program" ]) (st : state) : run_result =
  let finish ?(code = 0) ?error ~timed_out () =
    let leaked = Mheap.leaked st.heap in
    {
      exit_code = code;
      output = Buffer.contents st.out;
      error;
      steps = st.steps;
      run_profile = st.profile;
      leaks = List.length leaked;
      leak_details =
        List.map
          (fun (obj : Mobject.t) ->
            Printf.sprintf "%d bytes, %s (allocated in %s) never freed"
              obj.Mobject.byte_size (Mobject.class_name obj)
              (Mheap.site_name st.heap obj.Mobject.site))
          leaked;
      trace_output =
        (match st.trace with Some b -> Buffer.contents b | None -> "");
      timed_out;
    }
  in
  match Hashtbl.find_opt st.funcs "main" with
  | None -> failwith "interp: program has no main function"
  | Some main -> begin
    let vargc, vargv = build_argv argv in
    let nparams = List.length main.pf_ir.Irfunc.params in
    let args, scalars =
      if nparams >= 2 then
        ([| vargc; vargv |], [| Irtype.I32; Irtype.Ptr |])
      else ([||], [||])
    in
    try
      let r = call_function st main args scalars in
      let code =
        match r with Some v -> Int64.to_int (Mval.as_int v) land 0xff | None -> 0
      in
      finish ~code ~timed_out:false ()
    with
    | Exit_program code -> finish ~code ~timed_out:false ()
    | Merror.Error (cat, msg) -> finish ~code:255 ~error:(cat, msg) ~timed_out:false ()
    | Step_limit_exceeded -> finish ~code:255 ~timed_out:true ()
  end
