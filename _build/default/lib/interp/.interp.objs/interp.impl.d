lib/interp/interp.ml: Array Buffer Bytes Char Float Hashtbl Instr Int32 Int64 Irfunc Irmod Irtype List Merror Mheap Mobject Mval Printf Prng String
