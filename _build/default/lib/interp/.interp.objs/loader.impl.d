lib/interp/loader.ml: Interp Irmod Libc_src Lower Verify
