lib/interp/loader.mli: Interp Irmod
