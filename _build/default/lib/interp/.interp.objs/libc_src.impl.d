lib/interp/libc_src.ml:
