(** CFG utilities shared by the optimization passes: predecessor maps,
    reverse postorder, dominators (iterative algorithm) and dominance
    frontiers.  Functions here never mutate the IR. *)

type info = {
  order : string array;                    (** reverse postorder, entry first *)
  index : (string, int) Hashtbl.t;
  preds : (string, string list) Hashtbl.t;
  succs : (string, string list) Hashtbl.t;
  idom : (string, string) Hashtbl.t;       (** immediate dominator (not for entry) *)
  df : (string, string list) Hashtbl.t;    (** dominance frontier *)
}

let block_map (f : Irfunc.t) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (b : Irfunc.block) -> Hashtbl.replace tbl b.Irfunc.label b) f.Irfunc.blocks;
  tbl

let compute (f : Irfunc.t) : info =
  let blocks = block_map f in
  let entry =
    match f.Irfunc.blocks with
    | b :: _ -> b.Irfunc.label
    | [] -> failwith "cfg: empty function"
  in
  (* DFS postorder from entry over reachable blocks. *)
  let visited = Hashtbl.create 16 in
  let postorder = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.replace visited label ();
      (match Hashtbl.find_opt blocks label with
      | Some b ->
        List.iter dfs (Instr.term_successors b.Irfunc.term)
      | None -> ());
      postorder := label :: !postorder
    end
  in
  dfs entry;
  let order = Array.of_list !postorder in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace index l i) order;
  let preds = Hashtbl.create 16 in
  let succs = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace preds l []) order;
  Array.iter
    (fun l ->
      let b = Hashtbl.find blocks l in
      let ss =
        List.filter (Hashtbl.mem visited) (Instr.term_successors b.Irfunc.term)
      in
      Hashtbl.replace succs l ss;
      List.iter
        (fun s -> Hashtbl.replace preds s (l :: Hashtbl.find preds s))
        ss)
    order;
  (* Cooper-Harvey-Kennedy iterative dominators over RPO indices. *)
  let n = Array.length order in
  let idom_arr = Array.make n (-1) in
  idom_arr.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do
        a := idom_arr.(!a)
      done;
      while !b > !a do
        b := idom_arr.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let label = order.(i) in
      let pred_idxs =
        List.filter_map
          (fun p ->
            match Hashtbl.find_opt index p with
            | Some j when idom_arr.(j) >= 0 || j = 0 -> Some j
            | _ -> None)
          (Hashtbl.find preds label)
      in
      match pred_idxs with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left (fun acc j ->
            if idom_arr.(j) >= 0 then intersect acc j else acc) first rest
        in
        if idom_arr.(i) <> new_idom then begin
          idom_arr.(i) <- new_idom;
          changed := true
        end
    done
  done;
  let idom = Hashtbl.create 16 in
  for i = 1 to n - 1 do
    if idom_arr.(i) >= 0 then Hashtbl.replace idom order.(i) order.(idom_arr.(i))
  done;
  (* Dominance frontiers. *)
  let df = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace df l []) order;
  Array.iteri
    (fun i label ->
      let ps = Hashtbl.find preds label in
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            match Hashtbl.find_opt index p with
            | None -> ()
            | Some pj ->
              let runner = ref pj in
              while !runner <> idom_arr.(i) && !runner >= 0 do
                let rl = order.(!runner) in
                let cur = Hashtbl.find df rl in
                if not (List.mem label cur) then
                  Hashtbl.replace df rl (label :: cur);
                runner := idom_arr.(!runner)
              done)
          ps)
    order;
  { order; index; preds; succs; idom; df }

(** Does [a] dominate [b]?  (walk idom chain) *)
let dominates info a b =
  let rec walk l = if l = a then true
    else match Hashtbl.find_opt info.idom l with
      | Some up when up <> l -> walk up
      | _ -> false
  in
  walk b

(** Natural loops: for each back edge u->h (h dominates u), the loop body
    is every block that reaches u without going through h.  Returns
    (header, body including header) pairs. *)
let natural_loops (f : Irfunc.t) (info : info) : (string * string list) list =
  let blocks = block_map f in
  let loops = ref [] in
  Array.iter
    (fun u ->
      let b = Hashtbl.find blocks u in
      List.iter
        (fun h ->
          if Hashtbl.mem info.index h && dominates info h u then begin
            (* collect body by reverse reachability from u, stopping at h *)
            let body = Hashtbl.create 8 in
            Hashtbl.replace body h ();
            let rec collect x =
              if not (Hashtbl.mem body x) then begin
                Hashtbl.replace body x ();
                List.iter collect
                  (Option.value (Hashtbl.find_opt info.preds x) ~default:[])
              end
            in
            collect u;
            loops := (h, List.of_seq (Hashtbl.to_seq_keys body)) :: !loops
          end)
        (Instr.term_successors b.Irfunc.term))
    info.order;
  !loops

(** Remove blocks unreachable from the entry, dropping phi edges that
    came from removed blocks. *)
let remove_unreachable (f : Irfunc.t) =
  let info = compute f in
  let reachable = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace reachable l ()) info.order;
  f.Irfunc.blocks <-
    List.filter (fun (b : Irfunc.block) -> Hashtbl.mem reachable b.Irfunc.label)
      f.Irfunc.blocks;
  List.iter
    (fun (b : Irfunc.block) ->
      b.Irfunc.instrs <-
        List.map
          (fun i ->
            match i with
            | Instr.Phi (r, s, incoming) ->
              Instr.Phi
                (r, s, List.filter (fun (l, _) -> Hashtbl.mem reachable l) incoming)
            | i -> i)
          b.Irfunc.instrs)
    f.Irfunc.blocks
