lib/opt/pipeline.ml: Backendfold Dce Dse Fold Irmod List Mem2reg Simplifycfg Ubopt Verify
