lib/opt/ubopt.ml: Cfg Hashtbl Instr Irfunc Irmod Irtype List
