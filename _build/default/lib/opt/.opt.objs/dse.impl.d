lib/opt/dse.ml: Hashtbl Instr Irfunc Irmod List
