lib/opt/globaldce.ml: Hashtbl Instr Irfunc Irmod List
