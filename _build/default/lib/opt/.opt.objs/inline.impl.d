lib/opt/inline.ml: Hashtbl Instr Irfunc Irmod Irtype List Option Printf
