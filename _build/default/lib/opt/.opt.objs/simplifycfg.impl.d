lib/opt/simplifycfg.ml: Cfg Hashtbl Instr Irfunc Irmod List Option
