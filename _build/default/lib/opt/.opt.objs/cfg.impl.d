lib/opt/cfg.ml: Array Hashtbl Instr Irfunc List Option
