lib/opt/backendfold.ml: Hashtbl Instr Int64 Irfunc Irmod Irtype List Option
