lib/opt/dce.ml: Hashtbl Instr Irfunc Irmod List Option
