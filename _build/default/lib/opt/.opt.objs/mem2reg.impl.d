lib/opt/mem2reg.ml: Array Cfg Hashtbl Instr Irfunc Irmod Irtype List Option Queue
