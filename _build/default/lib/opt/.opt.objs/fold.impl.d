lib/opt/fold.ml: Hashtbl Instr Int32 Int64 Irfunc Irmod Irtype List
