(** CFG cleanup: drop unreachable blocks, fold trivial jumps, and merge
    straight-line block pairs. *)

let merge_pairs (f : Irfunc.t) : bool =
  let info = Cfg.compute f in
  let blocks = Cfg.block_map f in
  let changed = ref false in
  let merged : (string, string) Hashtbl.t = Hashtbl.create 8 in
  (* resolve a label through the chain of merges *)
  let rec resolve l =
    match Hashtbl.find_opt merged l with Some l' -> resolve l' | None -> l
  in
  List.iter
    (fun (b : Irfunc.block) ->
      let label = resolve b.Irfunc.label in
      let b = Hashtbl.find blocks label in
      match b.Irfunc.term with
      | Instr.Br succ_label ->
        let succ_label = resolve succ_label in
        if succ_label <> label then begin
          let preds =
            Option.value (Hashtbl.find_opt info.Cfg.preds succ_label) ~default:[]
          in
          let succ = Hashtbl.find_opt blocks succ_label in
          match succ with
          | Some succ_b
            when List.length preds = 1
                 && not
                      (List.exists
                         (function Instr.Phi _ -> true | _ -> false)
                         succ_b.Irfunc.instrs) ->
            (* merge succ into b *)
            b.Irfunc.instrs <- b.Irfunc.instrs @ succ_b.Irfunc.instrs;
            b.Irfunc.term <- succ_b.Irfunc.term;
            Hashtbl.replace merged succ_label label;
            changed := true
          | _ -> ()
        end
      | _ -> ())
    f.Irfunc.blocks;
  if !changed then begin
    f.Irfunc.blocks <-
      List.filter
        (fun (b : Irfunc.block) -> not (Hashtbl.mem merged b.Irfunc.label))
        f.Irfunc.blocks;
    (* phi incoming labels from merged blocks now come from the merge
       target *)
    List.iter
      (fun (b : Irfunc.block) ->
        b.Irfunc.instrs <-
          List.map
            (fun i ->
              match i with
              | Instr.Phi (r, s, incoming) ->
                Instr.Phi (r, s, List.map (fun (l, v) -> (resolve l, v)) incoming)
              | i -> i)
            b.Irfunc.instrs)
      f.Irfunc.blocks
  end;
  !changed

let run_func (f : Irfunc.t) : bool =
  Cfg.remove_unreachable f;
  let changed = ref false in
  while merge_pairs f do
    changed := true;
    Cfg.remove_unreachable f
  done;
  !changed

let run (m : Irmod.t) : bool =
  List.fold_left (fun acc f -> run_func f || acc) false m.Irmod.funcs
