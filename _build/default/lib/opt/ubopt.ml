(** UB-exploiting transformations (paper P2).

    [delete_dead_loops]: a natural loop whose body has no observable
    effects (no stores, no calls) and whose values are never used outside
    is removed — C's forward-progress assumption lets the compiler do
    this even when the trip count could run an access out of bounds
    (Figure 3, after [Dse] killed the dead stores).

    [remove_redundant_null_checks]: once a pointer has been dereferenced,
    a later NULL check on it folds to "not null" — the optimization
    behind CVE-2009-1897-class bugs ("compilers can remove redundant
    null-pointer checks, even at -O0"). *)

let delete_dead_loops_func (f : Irfunc.t) : bool =
  Cfg.remove_unreachable f;
  let info = Cfg.compute f in
  let blocks = Cfg.block_map f in
  let loops = Cfg.natural_loops f info in
  let changed = ref false in
  List.iter
    (fun (header, body) ->
      let body_set = Hashtbl.create 8 in
      List.iter (fun l -> Hashtbl.replace body_set l ()) body;
      (* Effects inside the loop? *)
      let pure = ref true in
      let defined_in_loop = Hashtbl.create 16 in
      List.iter
        (fun l ->
          match Hashtbl.find_opt blocks l with
          | None -> ()
          | Some b ->
            List.iter
              (fun i ->
                (match Instr.def_of i with
                | Some r -> Hashtbl.replace defined_in_loop r ()
                | None -> ());
                match i with
                | Instr.Store _ | Instr.Call _ | Instr.Sancheck _ | Instr.Load _
                | Instr.Alloca _ ->
                  pure := false
                | _ -> ())
              b.Irfunc.instrs)
        body;
      (* Values defined inside used outside? *)
      if !pure then begin
        List.iter
          (fun (b : Irfunc.block) ->
            if not (Hashtbl.mem body_set b.Irfunc.label) then begin
              let uses_inside v =
                match v with
                | Instr.Reg r -> Hashtbl.mem defined_in_loop r
                | _ -> false
              in
              List.iter
                (fun i -> if List.exists uses_inside (Instr.uses_of i) then pure := false)
                b.Irfunc.instrs;
              if List.exists uses_inside (Instr.term_uses b.Irfunc.term) then
                pure := false
            end)
          f.Irfunc.blocks
      end;
      (* The loop must have a unique exit edge (from the header) to
         redirect to. *)
      if !pure then begin
        match Hashtbl.find_opt blocks header with
        | Some hb -> begin
          let exits =
            List.filter
              (fun s -> not (Hashtbl.mem body_set s))
              (Instr.term_successors hb.Irfunc.term)
          in
          (* Only header-exiting loops (while/for shape); and the header
             itself must be pure apart from its branch. *)
          match exits with
          | [ exit_label ] ->
            let header_pure =
              List.for_all
                (fun i ->
                  match i with
                  | Instr.Store _ | Instr.Call _ | Instr.Sancheck _
                  | Instr.Load _ | Instr.Alloca _ ->
                    false
                  | _ -> true)
                hb.Irfunc.instrs
            in
            if header_pure then begin
              hb.Irfunc.instrs <-
                List.filter
                  (function Instr.Phi _ -> false | _ -> true)
                  hb.Irfunc.instrs;
              hb.Irfunc.term <- Instr.Br exit_label;
              changed := true
            end
          | _ -> ()
        end
        | None -> ()
      end)
    loops;
  if !changed then Cfg.remove_unreachable f;
  !changed

(* A header whose phis feed only the loop cannot simply be rewired if
   the exit uses them; we checked "no outside uses" above, but the exit
   block may have phis with incoming from the header — patch them by
   keeping the incoming edge (the value must be loop-invariant or the
   check above already rejected it). *)

let remove_redundant_null_checks_func (f : Irfunc.t) : bool =
  let changed = ref false in
  List.iter
    (fun (b : Irfunc.block) ->
      let derefed = Hashtbl.create 8 in
      b.Irfunc.instrs <-
        List.map
          (fun i ->
            match i with
            | Instr.Load (_, _, Instr.Reg p) | Instr.Store (_, _, Instr.Reg p) ->
              Hashtbl.replace derefed p ();
              i
            | Instr.Icmp (r, Instr.Ieq, _, Instr.Reg p, Instr.Null)
            | Instr.Icmp (r, Instr.Ieq, _, Instr.Null, Instr.Reg p)
              when Hashtbl.mem derefed p ->
              changed := true;
              Instr.Binop (r, Instr.Add, Irtype.I1, Instr.ImmInt (0L, Irtype.I1),
                           Instr.ImmInt (0L, Irtype.I1))
            | Instr.Icmp (r, Instr.Ine, _, Instr.Reg p, Instr.Null)
            | Instr.Icmp (r, Instr.Ine, _, Instr.Null, Instr.Reg p)
              when Hashtbl.mem derefed p ->
              changed := true;
              Instr.Binop (r, Instr.Add, Irtype.I1, Instr.ImmInt (1L, Irtype.I1),
                           Instr.ImmInt (0L, Irtype.I1))
            | i -> i)
          b.Irfunc.instrs)
    f.Irfunc.blocks;
  !changed

let run (m : Irmod.t) : bool =
  List.fold_left
    (fun acc f ->
      let a = delete_dead_loops_func f in
      let b = remove_redundant_null_checks_func f in
      acc || a || b)
    false m.Irmod.funcs
