(** Optimization pipelines, mirroring the configurations the paper
    compares:

    - [o0]: no middle-end optimization at all (the front-end output).
    - [o3]: the UB-exploiting Clang/LLVM middle end.
    - [backend]: code-generation folding that *all* native pipelines get,
      even at -O0 (paper case study 3).
    - [safe_jit]: what Graal may do for Safe Sulong — optimizations under
      safe semantics (run-time errors must still surface), so no dead
      -store/dead-loop deletion of trapping accesses and no UB tricks.

    Each function returns the number of pass iterations that changed
    something (useful for tests and the ablation bench). *)

type level = O0 | O3

let level_name = function O0 -> "-O0" | O3 -> "-O3"

let fixpoint passes m =
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < 8 do
    changed := List.fold_left (fun acc pass -> pass m || acc) false passes;
    if !changed then incr rounds
  done;
  !rounds

(** The -O3 middle end (UB semantics). *)
let o3 (m : Irmod.t) : int =
  fixpoint
    [
      Fold.run;
      Mem2reg.run;
      Fold.run;
      Dce.run ~semantics:`Ub;
      Dse.run;
      Ubopt.run;
      Simplifycfg.run;
      Dce.run ~semantics:`Ub;
    ]
    m

(** Safe-semantics optimization (the JIT tier of Safe Sulong). *)
let safe_jit (m : Irmod.t) : int =
  fixpoint
    [ Fold.run; Mem2reg.run; Fold.run; Dce.run ~semantics:`Safe; Simplifycfg.run ]
    m

(** Native code generation folding: every native pipeline, every level. *)
let backend (m : Irmod.t) : bool = Backendfold.run m

(** Compile [m] for a native engine at [level] (mutates [m]). *)
let compile_native ~(level : level) (m : Irmod.t) : unit =
  (match level with O0 -> () | O3 -> ignore (o3 m));
  ignore (backend m);
  Verify.verify m

(** Compile [m] for Safe Sulong: nothing — the interpreter executes the
    front-end output; [safe_jit] only models what the dynamic compiler
    would do for the cost model. *)
let compile_sulong (_m : Irmod.t) : unit = ()
