(** Dead-object store elimination (UB semantics only).

    The pass behind the paper's Figure 3: a local object whose address
    never escapes and that is *never loaded from* is dead; all stores
    into it — including the out-of-bounds ones — have no defined effect
    and are deleted, together with the alloca.  ASan's checks on those
    stores (inserted later in a real pipeline, earlier in ours — either
    way attached to accesses) disappear with them. *)

(* Registers transitively derived from an alloca through Gep. *)
let derived_regs (f : Irfunc.t) (root : Instr.reg) : (Instr.reg, unit) Hashtbl.t =
  let set = Hashtbl.create 8 in
  Hashtbl.replace set root ();
  let changed = ref true in
  while !changed do
    changed := false;
    Irfunc.iter_instrs f (fun _ i ->
        match i with
        | Instr.Gep (r, Instr.Reg base, _)
          when Hashtbl.mem set base && not (Hashtbl.mem set r) ->
          Hashtbl.replace set r ();
          changed := true
        | _ -> ())
  done;
  set

let run_func (f : Irfunc.t) : bool =
  let changed = ref false in
  let allocas = ref [] in
  Irfunc.iter_instrs f (fun _ i ->
      match i with Instr.Alloca (r, _) -> allocas := r :: !allocas | _ -> ());
  List.iter
    (fun root ->
      let derived = derived_regs f root in
      let in_set v = match v with Instr.Reg r -> Hashtbl.mem derived r | _ -> false in
      (* The object is dead iff every use of every derived pointer is
         either a Gep step (already in the set), a store *to* it, or a
         sanitizer check on it — no loads, no escapes. *)
      let dead = ref true in
      List.iter
        (fun (b : Irfunc.block) ->
          List.iter
            (fun i ->
              match i with
              | Instr.Gep (_, base, idx) when in_set base ->
                (* index operands using the pointer would escape it *)
                List.iter
                  (function
                    | Instr.Gindex (v, _) when in_set v -> dead := false
                    | _ -> ())
                  idx
              | Instr.Store (_, v, p) when in_set p ->
                if in_set v then dead := false
              | Instr.Sancheck (_, p, _) when in_set p -> ()
              | i -> if List.exists in_set (Instr.uses_of i) then dead := false)
            b.Irfunc.instrs;
          if List.exists in_set (Instr.term_uses b.Irfunc.term) then dead := false)
        f.Irfunc.blocks;
      if !dead then begin
        (* Delete the alloca, its geps, and every store/check into it. *)
        List.iter
          (fun (b : Irfunc.block) ->
            let keep (i : Instr.instr) =
              match i with
              | Instr.Alloca (r, _) -> r <> root
              | Instr.Gep (r, _, _) -> not (Hashtbl.mem derived r)
              | Instr.Store (_, _, p) -> not (in_set p)
              | Instr.Sancheck (_, p, _) -> not (in_set p)
              | _ -> true
            in
            let kept = List.filter keep b.Irfunc.instrs in
            if List.length kept <> List.length b.Irfunc.instrs then begin
              changed := true;
              b.Irfunc.instrs <- kept
            end)
          f.Irfunc.blocks
      end)
    !allocas;
  !changed

let run (m : Irmod.t) : bool =
  List.fold_left (fun acc f -> run_func f || acc) false m.Irmod.funcs
