(** Dead-function and dead-global elimination: drop definitions
    unreachable from [main] (or from the given roots).  Conservative
    about address-taken functions and globals — anything referenced by a
    surviving instruction or initializer stays.  Used after [Inline] to
    reap fully-inlined callees; not part of the default -O3 pipeline
    (the evaluation compares fixed pass sets). *)

let run ?(roots = [ "main" ]) (m : Irmod.t) : bool =
  let live_funcs = Hashtbl.create 32 in
  let live_globals = Hashtbl.create 32 in
  let rec mark_func name =
    if not (Hashtbl.mem live_funcs name) then begin
      Hashtbl.replace live_funcs name ();
      match Irmod.find_func m name with
      | None -> ()
      | Some f ->
        let mark_value = function
          | Instr.FuncAddr g -> mark_func g
          | Instr.GlobalAddr g -> mark_global g
          | Instr.Reg _ | Instr.ImmInt _ | Instr.ImmFloat _ | Instr.Null -> ()
        in
        List.iter
          (fun (b : Irfunc.block) ->
            List.iter
              (fun i ->
                List.iter mark_value (Instr.uses_of i);
                match i with
                | Instr.Call (_, _, Instr.Direct callee, _) -> mark_func callee
                | _ -> ())
              b.Irfunc.instrs;
            List.iter mark_value (Instr.term_uses b.Irfunc.term))
          f.Irfunc.blocks
    end
  and mark_global name =
    if not (Hashtbl.mem live_globals name) then begin
      Hashtbl.replace live_globals name ();
      match Irmod.find_global m name with
      | None -> ()
      | Some g ->
        let rec walk = function
          | Irmod.Gglobal_addr n -> mark_global n
          | Irmod.Gfunc_addr n -> mark_func n
          | Irmod.Garray xs | Irmod.Gstruct_init xs -> List.iter walk xs
          | Irmod.Gzero | Irmod.Gint _ | Irmod.Gfloat _ | Irmod.Gstring _ -> ()
        in
        walk g.Irmod.g_init
    end
  in
  List.iter mark_func roots;
  let funcs_before = List.length m.Irmod.funcs in
  let globals_before = List.length m.Irmod.globals in
  m.Irmod.funcs <-
    List.filter (fun (f : Irfunc.t) -> Hashtbl.mem live_funcs f.Irfunc.name)
      m.Irmod.funcs;
  m.Irmod.globals <-
    List.filter (fun (g : Irmod.global) -> Hashtbl.mem live_globals g.Irmod.g_name)
      m.Irmod.globals;
  List.length m.Irmod.funcs <> funcs_before
  || List.length m.Irmod.globals <> globals_before
