(** One entry point per experiment, plus [run_all] — what `bench/main.exe`
    and `bin/sulong.exe report` call.  Each function prints the same
    rows/series the paper's corresponding table or figure shows. *)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let fig1 () =
  hr "FIG1 - CVE vulnerabilities by category (2012-03..2017-09)";
  Figures12.print (Figures12.run Gen.Cve)

let fig2 () =
  hr "FIG2 - ExploitDB exploits by category (2012-03..2017-09)";
  Figures12.print (Figures12.run Gen.Exploitdb)

let effectiveness () =
  hr "TAB1 / TAB2 / CMP - bug-finding effectiveness (paper 4.1)";
  ignore (Effectiveness.print_all ())

let startup () =
  hr "STARTUP - hello-world start-up cost (paper 4.2)";
  Table.print (Perfreport.startup_table ())

let fig15 () =
  hr "FIG15 - warm-up on meteor (paper 4.2)";
  print_string (Perfreport.warmup_report ())

let fig16 () =
  hr "FIG16 - peak performance (paper 4.3)";
  ignore (Perfreport.print_peak ())

let ablations () =
  hr "ABLATIONS - one mechanism flipped at a time (DESIGN.md par. 5)";
  Ablations.print ()

let run_all () =
  fig1 ();
  fig2 ();
  effectiveness ();
  startup ();
  fig15 ();
  fig16 ();
  ablations ()
