(** The ablation experiments of DESIGN.md §5, as one printable report:
    each row flips a single mechanism the paper's argument rests on and
    shows the detection outcome change (or, for mementos, the
    behavioural invariance). *)

let uaf_churn_program =
  {|
int main(void) {
  char *stale = (char *)malloc(64);
  stale[0] = 'x';
  free(stale);
  for (int i = 0; i < 64; i++) {
    char *fresh = (char *)malloc(64);
    fresh[0] = 'y';
    free(fresh);
  }
  char *reuse1 = (char *)malloc(64);
  char *reuse2 = (char *)malloc(64);
  reuse1[0] = 'z';
  reuse2[0] = 'z';
  printf("%c\n", stale[0]);
  return 0;
}
|}

let strtok_program =
  {|
int main(void) {
  char line[32] = "a b c";
  char seps[1] = {' '};
  char *tok = strtok(line, seps);
  printf("%s\n", tok);
  return 0;
}
|}

let common_global_program =
  {|
int votes[4];
int main(int argc, char **argv) {
  votes[argc + 3] = 1;
  return votes[0];
}
|}

let inline_victim_program =
  {|
const char *errors[3] = {"ok", "warning", "fatal"};
const char *describe(int code) { return errors[code]; }
int main(void) {
  printf("%s\n", describe(3));
  return 0;
}
|}

let asan_with options src =
  Outcome.short
    (Engine.run ~asan_options:options (Engine.Asan Pipeline.O0) src)
      .Engine.outcome

let run_asan_custom ~pre src =
  (* ASan -O3 with an extra pre-pass (the inlining ablation). *)
  let m = Loader.compile_user src in
  pre m;
  ignore (Pipeline.o3 m);
  ignore (Pipeline.backend m);
  Asan.instrument m;
  Verify.verify m;
  let mem = Mem.create () in
  let alloc = Alloc.create mem in
  let _, hooks = Asan.make ~mem ~alloc () in
  let st = Nexec.create ~hooks ~global_gap:32 ~mem ~alloc m in
  let r = Nexec.run st in
  match r.Nexec.report with
  | Some rep -> "FOUND (" ^ rep.Hooks.kind ^ ")"
  | None -> "missed"

let table () : Table.t =
  let t =
    Table.create
      ~title:
        "Ablations: flip one mechanism, watch the detection outcome change"
      ~header:[ "ablation"; "configuration"; "outcome" ]
      ()
  in
  let base = Engine.default_asan in
  (* quarantine (paper P3) *)
  Table.add_row t
    [ "ASan quarantine (UAF under churn)"; "default budget (256 KiB)";
      asan_with base uaf_churn_program ];
  Table.add_row t
    [ ""; "no quarantine";
      asan_with { base with Engine.quarantine_cap = 0 } uaf_churn_program ];
  (* strtok interceptor (case 2 / the authors' upstream fix) *)
  Table.add_row t
    [ "strtok interceptor (rL298650)"; "period-accurate (absent)";
      asan_with base strtok_program ];
  Table.add_row t
    [ ""; "with the later fix";
      asan_with { base with Engine.strtok_interceptor = true } strtok_program ];
  (* -fno-common *)
  Table.add_row t
    [ "-fno-common (zero-init globals)"; "enabled (the paper's setting)";
      asan_with base common_global_program ];
  Table.add_row t
    [ ""; "disabled";
      asan_with { base with Engine.fno_common = false } common_global_program ];
  (* inlining escalates P2 *)
  Table.add_row t
    [ "inlining before -O3 (P2)"; "ASan -O3, no inlining";
      run_asan_custom ~pre:(fun _ -> ()) inline_victim_program ];
  Table.add_row t
    [ ""; "ASan -O3 + inlining";
      run_asan_custom ~pre:(fun m -> ignore (Inline.run m)) inline_victim_program ];
  Table.add_row t
    [ ""; "Safe Sulong (either way)";
      Outcome.short
        (Engine.run Engine.Safe_sulong inline_victim_program).Engine.outcome ];
  (* mementos: behavioural invariance *)
  let w = Engine.run ~mementos:true Engine.Safe_sulong Benchprogs.binarytrees.Benchprogs.b_source in
  let wo = Engine.run ~mementos:false Engine.Safe_sulong Benchprogs.binarytrees.Benchprogs.b_source in
  Table.add_row t
    [ "allocation mementos (binarytrees)"; "on vs. off";
      (if w.Engine.output = wo.Engine.output && w.Engine.steps = wo.Engine.steps
       then "identical behaviour (reported class names differ)"
       else "BEHAVIOUR DIVERGED (bug)") ];
  t

let print () = Table.print (table ())
