lib/harness/figures12.ml: Chart Classify Gen List Printf Table Util
