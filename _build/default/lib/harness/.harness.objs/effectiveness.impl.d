lib/harness/effectiveness.ml: Corpus Engine Groundtruth List Outcome Pipeline Printexc Printf String Table
