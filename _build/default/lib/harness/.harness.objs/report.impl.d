lib/harness/report.ml: Ablations Effectiveness Figures12 Gen Perfreport Printf String Table
