lib/harness/perfreport.ml: Benchprogs Buffer Chart Float List Printf Prng Simulate Stats Table
