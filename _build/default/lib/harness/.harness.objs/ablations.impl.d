lib/harness/ablations.ml: Alloc Asan Benchprogs Engine Hooks Inline Loader Mem Nexec Outcome Pipeline Table Verify
