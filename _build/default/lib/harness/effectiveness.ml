(** The effectiveness experiment (paper §4.1): run the 68-bug corpus
    under Safe Sulong, ASan (-O0/-O3) and Valgrind (-O0/-O3), and
    regenerate Table 1, Table 2, the tool-comparison counts, and the
    case-study breakdown of the 8 bugs only Safe Sulong finds. *)

type run = {
  program : Groundtruth.program;
  results : (Engine.tool * Outcome.t) list;
}

let tools : Engine.tool list =
  [
    Engine.Safe_sulong;
    Engine.Asan Pipeline.O0;
    Engine.Asan Pipeline.O3;
    Engine.Valgrind Pipeline.O0;
    Engine.Valgrind Pipeline.O3;
  ]

let run_program (p : Groundtruth.program) : run =
  let results =
    List.map
      (fun tool ->
        let outcome =
          try
            (Engine.run ~argv:p.Groundtruth.argv ~input:p.Groundtruth.input
               ~step_limit:50_000_000 tool p.Groundtruth.source)
              .Engine.outcome
          with e -> Outcome.Crashed ("harness exception: " ^ Printexc.to_string e)
        in
        (tool, outcome))
      tools
  in
  { program = p; results }

let run_corpus ?(programs = Corpus.all) () : run list =
  List.map run_program programs

let found (r : run) (tool : Engine.tool) : bool =
  match List.assoc_opt tool r.results with
  | Some o -> Outcome.is_detected o
  | None -> false

(* ---------------- Table 1 ---------------- *)

let table1 (runs : run list) : Table.t =
  let sulong_found =
    List.filter (fun r -> found r Engine.Safe_sulong) runs
  in
  let d = Corpus.distribution (List.map (fun r -> r.program) sulong_found) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 1: error distribution of the %d bugs Safe Sulong detected"
           (List.length sulong_found))
      ~header:[ "category"; "count" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "Buffer overflows"; string_of_int d.Corpus.overflows ];
  Table.add_row t [ "NULL dereferences"; string_of_int d.Corpus.null_derefs ];
  Table.add_row t [ "Use-after-free"; string_of_int d.Corpus.use_after_free ];
  Table.add_row t [ "Varargs"; string_of_int d.Corpus.varargs ];
  t

(* ---------------- Table 2 ---------------- *)

let table2 (runs : run list) : Table.t =
  let sulong_found =
    List.filter (fun r -> found r Engine.Safe_sulong) runs
  in
  let d = Corpus.distribution (List.map (fun r -> r.program) sulong_found) in
  let t =
    Table.create
      ~title:
        "Table 2: distribution of the detected out-of-bounds accesses"
      ~header:[ "axis"; "kind"; "count" ]
      ~aligns:[ Table.Left; Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "access"; "Read"; string_of_int d.Corpus.reads ];
  Table.add_row t [ "access"; "Write"; string_of_int d.Corpus.writes ];
  Table.add_row t [ "direction"; "Underflow"; string_of_int d.Corpus.underflows ];
  Table.add_row t [ "direction"; "Overflow"; string_of_int d.Corpus.oob_overflows ];
  Table.add_row t [ "memory"; "Stack"; string_of_int d.Corpus.stack ];
  Table.add_row t [ "memory"; "Heap"; string_of_int d.Corpus.heap ];
  Table.add_row t [ "memory"; "Global"; string_of_int d.Corpus.global ];
  Table.add_row t [ "memory"; "Main args"; string_of_int d.Corpus.main_args ];
  t

(* ---------------- tool comparison ---------------- *)

type comparison = {
  per_tool : (Engine.tool * int) list;
  missed_by_both : string list;  (** ids neither ASan nor Valgrind finds *)
  asan_o3_lost : string list;    (** found at -O0 but not -O3 *)
}

let compare_tools (runs : run list) : comparison =
  let count tool = List.length (List.filter (fun r -> found r tool) runs) in
  let missed_by_both =
    List.filter_map
      (fun r ->
        let any_native =
          List.exists
            (fun tool -> tool <> Engine.Safe_sulong && found r tool)
            tools
        in
        if (not any_native) && found r Engine.Safe_sulong then
          Some r.program.Groundtruth.id
        else None)
      runs
  in
  let asan_o3_lost =
    List.filter_map
      (fun r ->
        if found r (Engine.Asan Pipeline.O0)
           && not (found r (Engine.Asan Pipeline.O3))
        then Some r.program.Groundtruth.id
        else None)
      runs
  in
  { per_tool = List.map (fun t -> (t, count t)) tools; missed_by_both; asan_o3_lost }

let comparison_table (c : comparison) (total : int) : Table.t =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Tool comparison: bugs detected out of %d (paper: Safe Sulong 68, \
            ASan -O0 60, ASan -O3 56, Valgrind about half)"
           total)
      ~header:[ "tool"; "found"; "missed" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ] ()
  in
  List.iter
    (fun (tool, n) ->
      Table.add_row t
        [ Engine.tool_name tool; string_of_int n; string_of_int (total - n) ])
    c.per_tool;
  t

(* ---------------- the 8 case studies ---------------- *)

let special_name = function
  | Groundtruth.Main_args_oob -> "1. uninstrumented main() arguments (P4,P1)"
  | Groundtruth.Missing_interceptor -> "2. missing/incomplete interceptor (P1)"
  | Groundtruth.Backend_folded -> "3. backend folds the bug away at -O0 (P2)"
  | Groundtruth.Beyond_redzone -> "4. access jumps past the redzone (P3)"
  | Groundtruth.Missing_vararg -> "5. missing variadic argument (P1)"
  | Groundtruth.O3_folded -> "found by ASan -O0 only (-O3 folds it, P2)"

let case_studies_table (runs : run list) : Table.t =
  let t =
    Table.create
      ~title:"The bugs only Safe Sulong finds, by paper case study"
      ~header:[ "bug"; "case"; "Sulong"; "ASan -O0"; "Valgrind -O0" ]
      ()
  in
  List.iter
    (fun (r : run) ->
      match r.program.Groundtruth.special with
      | Some special ->
        let show tool =
          match List.assoc_opt tool r.results with
          | Some o -> Outcome.short o
          | None -> "-"
        in
        Table.add_row t
          [
            r.program.Groundtruth.id;
            special_name special;
            show Engine.Safe_sulong;
            show (Engine.Asan Pipeline.O0);
            show (Engine.Valgrind Pipeline.O0);
          ]
      | None -> ())
    runs;
  t

let print_all () =
  let runs = run_corpus () in
  Table.print (table1 runs);
  Table.print (table2 runs);
  let c = compare_tools runs in
  Table.print (comparison_table c (List.length runs));
  Printf.printf "Found by Safe Sulong but by neither ASan nor Valgrind (%d): %s\n"
    (List.length c.missed_by_both)
    (String.concat ", " c.missed_by_both);
  Printf.printf "Lost by ASan when optimizing at -O3 (%d): %s\n\n"
    (List.length c.asan_o3_lost)
    (String.concat ", " c.asan_o3_lost);
  Table.print (case_studies_table runs);
  runs
