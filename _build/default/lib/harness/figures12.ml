(** Figures 1 and 2: vulnerabilities (CVE) and exploits (ExploitDB) per
    bug category over 2012-03..2017-09, via keyword classification. *)

type result = {
  kind : string;
  trends : Classify.yearly list;
  total : int;
  unclassified : int;
}

let run (kind : Gen.kind) : result =
  let entries = Gen.generate kind in
  let trends = Classify.trends entries in
  {
    kind = (match kind with Gen.Cve -> "CVE" | Gen.Exploitdb -> "ExploitDB");
    trends;
    total = List.length entries;
    unclassified = Util.sum_by (fun y -> y.Classify.unclassified) trends;
  }

let table (r : result) : Table.t =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure %s: %s entries per category and year (keyword search; %d \
            entries, %d unclassified)"
           (match r.kind with "CVE" -> "1" | _ -> "2")
           r.kind r.total r.unclassified)
      ~header:[ "year"; "Spatial"; "Temporal"; "NULL deref"; "Other" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun (y : Classify.yearly) ->
      Table.add_row t
        [
          string_of_int y.Classify.year;
          string_of_int y.Classify.spatial;
          string_of_int y.Classify.temporal;
          string_of_int y.Classify.null_deref;
          string_of_int y.Classify.other;
        ])
    r.trends;
  t

let chart (r : result) : string =
  let series_of pick name =
    {
      Chart.name;
      points =
        List.map
          (fun (y : Classify.yearly) ->
            (float_of_int y.Classify.year, float_of_int (pick y)))
          r.trends;
    }
  in
  Chart.line_chart
    ~title:(Printf.sprintf "%s entries per year by category" r.kind)
    [
      series_of (fun y -> y.Classify.spatial) "Spatial";
      series_of (fun y -> y.Classify.temporal) "Temporal";
      series_of (fun y -> y.Classify.null_deref) "NULL deref";
      series_of (fun y -> y.Classify.other) "Other";
    ]

let print (r : result) =
  Table.print (table r);
  print_string (chart r)
