lib/bugdb/entry.ml:
