lib/bugdb/classify.ml: Entry Hashtbl List Util
