lib/bugdb/gen.ml: Entry List Printf Prng Scanf Util
