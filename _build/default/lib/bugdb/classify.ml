(** The paper's methodology for Figures 1–2: keyword searches over the
    databases, grouping hits into the §2.1 categories.  Order matters:
    the first matching category wins (a use-after-free description often
    also mentions "memory corruption"). *)

let spatial_keywords =
  [
    "buffer overflow"; "out-of-bounds read"; "out-of-bounds write";
    "out of bounds"; "buffer underflow"; "stack-based buffer";
    "heap-based buffer"; "heap buffer overflow"; "global buffer overflow";
  ]

let temporal_keywords = [ "use-after-free"; "use after free"; "dangling pointer" ]

let null_keywords = [ "null pointer dereference"; "null dereference" ]

let other_keywords =
  [
    "double free"; "invalid free"; "format string"; "variadic argument";
  ]

let matches_any text keywords =
  let lower = Util.lowercase text in
  List.exists (fun k -> Util.string_contains ~needle:k lower) keywords

(** Classify one entry's text; [None] when no keyword hits (vague
    descriptions — excluded from the counts, as a manual triage would
    drop them). *)
let classify (text : string) : Entry.category option =
  if matches_any text temporal_keywords then Some Entry.Temporal
  else if matches_any text spatial_keywords then Some Entry.Spatial
  else if matches_any text null_keywords then Some Entry.Null_deref
  else if matches_any text other_keywords then Some Entry.Other
  else None

type yearly = {
  year : int;
  spatial : int;
  temporal : int;
  null_deref : int;
  other : int;
  unclassified : int;
}

(** Aggregate per year per category, via keyword classification. *)
let trends (entries : Entry.t list) : yearly list =
  let table = Hashtbl.create 8 in
  let get year =
    match Hashtbl.find_opt table year with
    | Some y -> y
    | None ->
      let fresh =
        ref { year; spatial = 0; temporal = 0; null_deref = 0; other = 0;
              unclassified = 0 }
      in
      Hashtbl.replace table year fresh;
      fresh
  in
  List.iter
    (fun (e : Entry.t) ->
      let cell = get e.Entry.year in
      let y = !cell in
      cell :=
        (match classify e.Entry.text with
        | Some Entry.Spatial -> { y with spatial = y.spatial + 1 }
        | Some Entry.Temporal -> { y with temporal = y.temporal + 1 }
        | Some Entry.Null_deref -> { y with null_deref = y.null_deref + 1 }
        | Some Entry.Other -> { y with other = y.other + 1 }
        | None -> { y with unclassified = y.unclassified + 1 }))
    entries;
  List.sort compare (Hashtbl.fold (fun _ cell acc -> !cell :: acc) table [])
