(** Entries of the synthetic vulnerability databases (Figures 1–2).

    The paper performs keyword searches over CVE and ExploitDB; we have
    no network, so lib/bugdb synthesizes databases with realistic entry
    *texts* and reproduces the paper's classification methodology over
    them.  Trends are sampled from a model matching the shapes the paper
    reports (spatial errors highest and at an all-time high, temporal
    second, NULL third). *)

type t = {
  id : string;         (** CVE-2015-1234 / EDB-38123 style *)
  year : int;
  month : int;
  text : string;       (** the description the classifier searches *)
}

(** The paper's §2.1 bug categories. *)
type category =
  | Spatial    (** out-of-bounds accesses *)
  | Temporal   (** use-after-free *)
  | Null_deref
  | Other      (** invalid free, double free, varargs/format string *)

let category_name = function
  | Spatial -> "Spatial"
  | Temporal -> "Temporal"
  | Null_deref -> "NULL deref"
  | Other -> "Other"

let all_categories = [ Spatial; Temporal; Null_deref; Other ]
