(** Synthetic CVE / ExploitDB generators.

    Per (year, category) the trend model gives an expected count (shaped
    after Figures 1–2: spatial highest and rising to an all-time high in
    2016–17, temporal second and growing, NULL third, other flat and
    low); entries are drawn with Poisson noise, and each gets a
    description assembled from realistic phrase fragments that the
    keyword classifier ([Classify]) can or cannot pick up.  A small
    fraction of descriptions are vague — as in the real databases — and
    fall through classification; the harness reports them as
    unclassified, like the paper's manual triage would. *)

let years = [ 2012; 2013; 2014; 2015; 2016; 2017 ]

(* Expected vulnerability counts per month, per category (CVE). *)
let cve_monthly_rate year (cat : Entry.category) : float =
  let growth = float_of_int (year - 2012) in
  match cat with
  | Entry.Spatial -> 18.0 +. (7.0 *. growth) (* all-time high by 2017 *)
  | Entry.Temporal -> 8.0 +. (3.4 *. growth)
  | Entry.Null_deref -> 7.0 +. (1.1 *. growth)
  | Entry.Other -> 3.0 +. (0.3 *. growth)

(* Exploits are rarer; roughly proportional to vulnerabilities
   ("bug categories with a high number of vulnerabilities were also
   exploited more often"). *)
let exploit_monthly_rate year cat = cve_monthly_rate year cat /. 6.0

(* --- description fragments ----------------------------------------- *)

let components =
  [
    "the PNG decoder"; "the HTTP request parser"; "the font rasterizer";
    "the TIFF reader"; "the SSL handshake code"; "the filesystem driver";
    "the print spooler"; "the USB descriptor handler"; "the video codec";
    "the XML entity expander"; "the archive extractor"; "the DNS resolver";
    "the regular-expression engine"; "the kernel socket layer";
    "the JavaScript engine"; "the database import routine";
  ]

let products =
  [
    "ImageThing before 2.4.1"; "libworkbench 0.9.x"; "WebServe 3.2";
    "MediaBox through 1.1.9"; "CoreUtilsX 5.x"; "NetStackd before 7.0.2";
    "PDFKit 1.4"; "the Frobnicator plugin"; "OpenDoc 2.x"; "RouterOSS 6.1";
  ]

let spatial_phrases =
  [
    "a heap-based buffer overflow in %s in %s allows remote attackers to \
     execute arbitrary code via a crafted file";
    "a stack-based buffer overflow in %s in %s allows attackers to cause a \
     denial of service via a long string";
    "an out-of-bounds read in %s in %s allows remote attackers to obtain \
     sensitive information";
    "an out-of-bounds write in %s in %s allows context-dependent attackers \
     to corrupt memory";
    "a global buffer overflow in %s in %s permits code execution via a \
     malformed header";
    "a buffer underflow in %s in %s leads to memory corruption";
    "a heap buffer overflow triggered during parsing in %s in %s";
  ]

let temporal_phrases =
  [
    "a use-after-free in %s in %s allows remote attackers to execute \
     arbitrary code via vectors involving object destruction";
    "a dangling pointer in %s in %s is dereferenced after the buffer is \
     released, causing a crash";
    "use-after-free vulnerability in %s in %s via crafted nested elements";
  ]

let null_phrases =
  [
    "a NULL pointer dereference in %s in %s allows remote attackers to \
     cause a denial of service via a malformed packet";
    "a null dereference in %s in %s crashes the daemon when the optional \
     field is absent";
  ]

let other_phrases =
  [
    "a double free in %s in %s allows attackers to corrupt the allocator \
     state";
    "an invalid free in %s in %s occurs when a static buffer is passed to \
     free()";
    "a format string vulnerability in %s in %s allows attackers to read \
     stack memory via %%x specifiers";
    "a missing variadic argument in a logging call in %s in %s leads to \
     disclosure of stack contents";
  ]

(* Vague texts the keyword search cannot classify (the realistic noise
   floor of the methodology). *)
let vague_phrases =
  [
    "a memory corruption issue in %s in %s has unspecified impact";
    "an unspecified vulnerability in %s in %s allows attackers to cause a \
     denial of service";
  ]

let phrase_for rng (cat : Entry.category) : string =
  let pick = Prng.pick rng in
  let vague = Prng.float rng 1.0 < 0.06 in
  let template =
    if vague then pick vague_phrases
    else
      match cat with
      | Entry.Spatial -> pick spatial_phrases
      | Entry.Temporal -> pick temporal_phrases
      | Entry.Null_deref -> pick null_phrases
      | Entry.Other -> pick other_phrases
  in
  Printf.sprintf
    (Scanf.format_from_string template "%s%s")
    (pick components) (pick products)

(* --- generation ----------------------------------------------------- *)

type kind = Cve | Exploitdb

(** Generate the database.  Ground-truth categories are thrown away —
    only the texts survive, and [Classify] has to recover the category
    from keywords, as the paper did. *)
let generate ?(seed = 2018) (kind : kind) : Entry.t list =
  let rng = Prng.create (seed + match kind with Cve -> 0 | Exploitdb -> 77) in
  let rate = match kind with
    | Cve -> cve_monthly_rate
    | Exploitdb -> exploit_monthly_rate
  in
  let entries = ref [] in
  let counter = ref 1000 in
  List.iter
    (fun year ->
      List.iter
        (fun month ->
          (* the paper's window is 2012-03 to 2017-09 *)
          let in_window =
            (year > 2012 || month >= 3) && (year < 2017 || month <= 9)
          in
          if in_window then
            List.iter
              (fun cat ->
                let n = Prng.poisson rng ~lambda:(rate year cat) in
                for _ = 1 to n do
                  incr counter;
                  let id =
                    match kind with
                    | Cve -> Printf.sprintf "CVE-%d-%d" year !counter
                    | Exploitdb -> Printf.sprintf "EDB-%d" !counter
                  in
                  entries :=
                    { Entry.id; year; month; text = phrase_for rng cat }
                    :: !entries
                done)
              Entry.all_categories)
        (Util.range 1 13))
    years;
  List.rev !entries
