(** The error taxonomy Safe Sulong reports (paper §1, §3.4). *)

type storage = Stack | Heap | Global | MainArgs | Vararg

val storage_name : storage -> string

type access = Read | Write

val access_name : access -> string

type category =
  | Out_of_bounds of {
      access : access;
      offset : int;      (** byte offset of the attempted access *)
      size : int;        (** bytes accessed *)
      obj_size : int;
      storage : storage;
    }
  | Use_after_free
  | Double_free
  | Invalid_free of string
  | Null_deref
  | Varargs_error of string
  | Type_violation of string
      (** the dynamic analogue of Java's ClassCastException under the
          relaxed type rules *)
  | Division_by_zero
  | Stack_overflow_guard  (** interpreter recursion limit *)
  | Uninitialized_read of { offset : int; size : int; storage : storage }
      (** opt-in (paper §6 future work): reading memory never written *)

(** Raised by every failed managed check; carries the category and a
    formatted message. *)
exception Error of category * string

(** Stable, kebab-case category name used in reports and tests. *)
val category_name : category -> string

(** Human-readable one-line description. *)
val describe : category -> string

(** [raise_error category context] raises [Error] with [describe
    category] plus the context string. *)
val raise_error : category -> string -> 'a
