(** Values held in interpreter registers: a normalized 64-bit integer
    (covering i1..i64), a float (f32 values are stored rounded), or a
    pointer. *)

type t =
  | Vint of int64
  | Vfloat of float
  | Vptr of Mobject.ptr

let zero = Vint 0L
let vnull = Vptr Mobject.Pnull

let as_int = function
  | Vint v -> v
  | Vfloat _ -> invalid_arg "Mval.as_int: float"
  | Vptr p -> Mobject.ptr_to_int p

let as_float = function
  | Vfloat f -> f
  | Vint v -> Int64.to_float v
  | Vptr _ -> invalid_arg "Mval.as_float: pointer"

let as_ptr context = function
  | Vptr p -> p
  | Vint 0L -> Mobject.Pnull
  | Vint v -> Mobject.int_to_ptr v
  | Vfloat _ ->
    Merror.raise_error (Merror.Type_violation "float used as pointer") context

let to_string = function
  | Vint v -> Int64.to_string v
  | Vfloat f -> string_of_float f
  | Vptr Mobject.Pnull -> "null"
  | Vptr (Mobject.Pobj a) ->
    Printf.sprintf "&obj%d+%d" a.Mobject.obj.Mobject.id a.Mobject.moff
  | Vptr (Mobject.Pfunc f) -> "&" ^ f
  | Vptr (Mobject.Pinvalid c) -> Printf.sprintf "invalid(0x%Lx)" c
