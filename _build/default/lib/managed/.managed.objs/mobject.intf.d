lib/managed/mobject.mli: Bytes Hashtbl Irtype Merror
