lib/managed/mobject.ml: Buffer Bytes Char Hashtbl Int32 Int64 Irtype List Merror Printf String
