lib/managed/mheap.ml: Hashtbl Irtype List Merror Mobject Option
