lib/managed/mval.ml: Int64 Merror Mobject Printf
