lib/managed/merror.mli:
