lib/managed/merror.ml: Printf
