lib/managed/mval.mli: Mobject
