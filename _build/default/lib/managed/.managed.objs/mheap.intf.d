lib/managed/mheap.mli: Hashtbl Irtype Mobject
