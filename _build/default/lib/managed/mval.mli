(** Values held in interpreter registers. *)

type t =
  | Vint of int64   (** normalized to its scalar width, sign-extended *)
  | Vfloat of float
  | Vptr of Mobject.ptr

val zero : t
val vnull : t

(** Integer view; pointers convert through their cookie. *)
val as_int : t -> int64

val as_float : t -> float

(** Pointer view; integers resolve through [Mobject.int_to_ptr].  The
    string is the error context when a float is used as a pointer. *)
val as_ptr : string -> t -> Mobject.ptr

val to_string : t -> string
