(** The error taxonomy Safe Sulong reports (paper §1, §3.4): out-of-bounds
    accesses, use-after-free, double free, invalid free, NULL dereference,
    and accesses to non-existent variadic arguments.  [Type_violation] is
    the dynamic analogue of Java's ClassCastException for accesses our
    relaxed type rules still refuse (e.g. forging a pointer from bytes and
    dereferencing it). *)

type storage = Stack | Heap | Global | MainArgs | Vararg

let storage_name = function
  | Stack -> "automatic"
  | Heap -> "heap"
  | Global -> "static"
  | MainArgs -> "main-arguments"
  | Vararg -> "variadic-argument"

type access = Read | Write

let access_name = function Read -> "read" | Write -> "write"

type category =
  | Out_of_bounds of {
      access : access;
      offset : int;      (** byte offset of the attempted access *)
      size : int;        (** bytes accessed *)
      obj_size : int;
      storage : storage;
    }
  | Use_after_free
  | Double_free
  | Invalid_free of string
  | Null_deref
  | Varargs_error of string
  | Type_violation of string
  | Division_by_zero
  | Stack_overflow_guard  (** interpreter recursion limit *)
  | Uninitialized_read of { offset : int; size : int; storage : storage }
      (** opt-in (paper §6 future work): reading memory never written *)

exception Error of category * string

let category_name = function
  | Out_of_bounds _ -> "out-of-bounds"
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Invalid_free _ -> "invalid-free"
  | Null_deref -> "null-dereference"
  | Varargs_error _ -> "varargs"
  | Type_violation _ -> "type-violation"
  | Division_by_zero -> "division-by-zero"
  | Stack_overflow_guard -> "stack-overflow"
  | Uninitialized_read _ -> "uninitialized-read"

let describe = function
  | Out_of_bounds { access; offset; size; obj_size; storage } ->
    Printf.sprintf
      "illegal %s of %d byte(s) at offset %d of a %d-byte %s object"
      (access_name access) size offset obj_size (storage_name storage)
  | Use_after_free -> "access to a freed heap object"
  | Double_free -> "free() called twice on the same heap object"
  | Invalid_free reason -> "invalid free: " ^ reason
  | Null_deref -> "NULL pointer dereference"
  | Varargs_error reason -> "variadic-argument error: " ^ reason
  | Type_violation reason -> "type violation: " ^ reason
  | Division_by_zero -> "integer division by zero"
  | Stack_overflow_guard -> "interpreter stack limit exceeded"
  | Uninitialized_read { offset; size; storage } ->
    Printf.sprintf
      "read of %d uninitialized byte(s) at offset %d of a %s object" size
      offset (storage_name storage)

let raise_error category context =
  raise (Error (category, describe category ^ " (" ^ context ^ ")"))
