(** IR modules: globals (with initial images), functions and external
    declarations (the host builtins that play the role of the paper's
    Java-implemented "syscall" functions). *)

type ginit =
  | Gzero
  | Gint of int64
  | Gfloat of float
  | Garray of ginit list
  | Gstruct_init of ginit list
  | Gstring of string  (** includes the terminating NUL *)
  | Gglobal_addr of string
  | Gfunc_addr of string

type global = { g_name : string; g_ty : Irtype.mty; g_init : ginit }

type extern_decl = {
  e_name : string;
  e_ret : Irtype.scalar option;
  e_params : Irtype.scalar list;
  e_variadic : bool;
}

type t = {
  mutable globals : global list;
  mutable funcs : Irfunc.t list;
  mutable externs : extern_decl list;
}

let create () = { globals = []; funcs = []; externs = [] }

let add_global m g = m.globals <- m.globals @ [ g ]
let add_func m f = m.funcs <- m.funcs @ [ f ]
let add_extern m e = m.externs <- m.externs @ [ e ]

let find_func m name = List.find_opt (fun f -> f.Irfunc.name = name) m.funcs
let find_global m name = List.find_opt (fun g -> g.g_name = name) m.globals
let find_extern m name = List.find_opt (fun e -> e.e_name = name) m.externs

let has_func m name = find_func m name <> None

(** Total static instruction count (parser/startup cost model input). *)
let instr_count m =
  List.fold_left (fun acc f -> acc + Irfunc.instr_count f) 0 m.funcs

(** Deep copy (see [Irfunc.copy]). *)
let copy (m : t) : t =
  { globals = m.globals; funcs = List.map Irfunc.copy m.funcs; externs = m.externs }

(** Link [extra] into [m]: functions/globals in [m] win on name clashes,
    so a user program can override a libc function by defining it.  A
    zero-initialized global loses against an initialized one of the same
    name (C tentative definitions: [extern FILE *stdout] in a program
    must not shadow the libc's definition). *)
let link (m : t) (extra : t) : t =
  let have_f name = has_func m name in
  let have_g name = find_global m name <> None in
  let m_globals =
    List.map
      (fun g ->
        match (g.g_init, find_global extra g.g_name) with
        | Gzero, Some ext when ext.g_init <> Gzero -> ext
        | _ -> g)
      m.globals
  in
  let m = { m with globals = m_globals } in
  {
    globals = m.globals @ List.filter (fun g -> not (have_g g.g_name)) extra.globals;
    funcs = m.funcs @ List.filter (fun f -> not (have_f f.Irfunc.name)) extra.funcs;
    externs =
      m.externs
      @ List.filter (fun e -> find_extern m e.e_name = None) extra.externs;
  }
