(** IR well-formedness checks, run after lowering and after every
    optimization pass in tests.  Catching a malformed module here is much
    cheaper than debugging an engine crash. *)

exception Invalid of string

let fail fmt = Format.kasprintf (fun msg -> raise (Invalid msg)) fmt

let verify_func (m : Irmod.t) (f : Irfunc.t) =
  let labels = List.map (fun b -> b.Irfunc.label) f.Irfunc.blocks in
  let label_set = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem label_set l then
        fail "%s: duplicate block label %s" f.Irfunc.name l;
      Hashtbl.replace label_set l ())
    labels;
  (* Collect all defined registers (params + instruction results). *)
  let defined = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.replace defined r ()) f.Irfunc.params;
  List.iter
    (fun (b : Irfunc.block) ->
      List.iter
        (fun i ->
          match Instr.def_of i with
          | Some r ->
            if Hashtbl.mem defined r then
              fail "%s: register %%%d defined twice" f.Irfunc.name r;
            Hashtbl.replace defined r ()
          | None -> ())
        b.instrs)
    f.Irfunc.blocks;
  let check_value where = function
    | Instr.Reg r ->
      if not (Hashtbl.mem defined r) then
        fail "%s: %s uses undefined register %%%d" f.Irfunc.name where r
    | Instr.GlobalAddr g ->
      if Irmod.find_global m g = None && Irmod.find_func m g = None then
        fail "%s: %s references unknown global @%s" f.Irfunc.name where g
    | Instr.FuncAddr fn ->
      if
        Irmod.find_func m fn = None
        && Irmod.find_extern m fn = None
      then fail "%s: %s references unknown function @%s" f.Irfunc.name where fn
    | Instr.ImmInt _ | Instr.ImmFloat _ | Instr.Null -> ()
  in
  List.iter
    (fun (b : Irfunc.block) ->
      List.iter
        (fun i ->
          List.iter (check_value (Irprint.instr_to_string i)) (Instr.uses_of i);
          (match i with
          | Instr.Call (_, _, Instr.Direct callee, _) ->
            if
              Irmod.find_func m callee = None
              && Irmod.find_extern m callee = None
            then
              fail "%s: call to unknown function @%s" f.Irfunc.name callee
          | Instr.Phi (_, _, incoming) ->
            List.iter
              (fun (l, _) ->
                if not (Hashtbl.mem label_set l) then
                  fail "%s: phi references unknown block %s" f.Irfunc.name l)
              incoming
          | _ -> ()))
        b.instrs;
      List.iter (check_value "terminator") (Instr.term_uses b.Irfunc.term);
      List.iter
        (fun l ->
          if not (Hashtbl.mem label_set l) then
            fail "%s: branch to unknown block %s" f.Irfunc.name l)
        (Instr.term_successors b.Irfunc.term))
    f.Irfunc.blocks

let verify (m : Irmod.t) =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (f : Irfunc.t) ->
      if Hashtbl.mem seen f.Irfunc.name then
        fail "duplicate function @%s" f.Irfunc.name;
      Hashtbl.replace seen f.Irfunc.name ();
      verify_func m f)
    m.Irmod.funcs
