lib/ir/irfunc.ml: Instr Irtype List Printf
