lib/ir/irparse.ml: Buffer Char Format Hashtbl Instr Int64 Irfunc Irmod Irtype List Option String
