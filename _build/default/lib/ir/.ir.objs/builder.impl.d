lib/ir/builder.ml: Instr Irfunc List Printf
