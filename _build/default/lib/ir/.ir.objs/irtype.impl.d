lib/ir/irtype.ml: Int64 Printf
