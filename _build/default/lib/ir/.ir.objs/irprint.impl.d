lib/ir/irprint.ml: Buffer Hashtbl Instr Int64 Irfunc Irmod Irtype List Printf String
