lib/ir/irmod.ml: Irfunc Irtype List
