lib/ir/instr.ml: Irtype List
