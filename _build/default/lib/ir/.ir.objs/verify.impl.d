lib/ir/verify.ml: Format Hashtbl Instr Irfunc Irmod Irprint List
