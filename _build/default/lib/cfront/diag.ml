(** Front-end diagnostics.  All front-end failures raise [Error] with a
    position and message; the driver formats them uniformly. *)

exception Error of Token.pos * string

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

let to_string (pos : Token.pos) msg =
  Printf.sprintf "%d:%d: error: %s" pos.line pos.col msg
