(** Lexical tokens of the C subset. *)

type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

type t =
  | INT_LIT of int64 * Ctype.ikind * Ctype.signedness
  | FLOAT_LIT of float * Ctype.fkind
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  | KW of string          (** keyword, e.g. "int", "while" *)
  | PUNCT of string       (** punctuator, e.g. "+", "->", "<<=" *)
  | EOF

type spanned = { tok : t; pos : pos }

let keywords =
  [
    "void"; "char"; "short"; "int"; "long"; "float"; "double"; "signed";
    "unsigned"; "struct"; "enum"; "union"; "typedef"; "if"; "else"; "while";
    "do"; "for"; "return"; "break"; "continue"; "switch"; "case"; "default";
    "sizeof"; "const"; "static"; "extern"; "volatile";
  ]

let is_keyword s = List.mem s keywords

let to_string = function
  | INT_LIT (v, _, _) -> Int64.to_string v
  | FLOAT_LIT (f, _) -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
