(** Memory layout of C types under the LP64 ABI this reproduction
    targets.  Shared by the lowering (struct field offsets in the IR),
    the native flat-memory engine (actual addresses) and the managed
    engine (byte offsets inside managed objects, as in the paper's
    [Address.offset]). *)

type env = { structs : (string, Ast.field list) Hashtbl.t }

let make_env () = { structs = Hashtbl.create 16 }

let add_struct env tag fields = Hashtbl.replace env.structs tag fields

let struct_fields env tag =
  match Hashtbl.find_opt env.structs tag with
  | Some fields -> fields
  | None -> failwith (Printf.sprintf "layout: incomplete struct %s" tag)

let rec align env (ty : Ctype.t) : int =
  match ty with
  | Ctype.Void -> 1
  | Ctype.Int (k, _) -> Ctype.ikind_size k
  | Ctype.Float k -> Ctype.fkind_size k
  | Ctype.Ptr _ | Ctype.Func _ -> 8
  | Ctype.Array (elem, _) -> align env elem
  | Ctype.Struct tag ->
    List.fold_left
      (fun acc (f : Ast.field) -> max acc (align env f.f_ty))
      1 (struct_fields env tag)

and size env (ty : Ctype.t) : int =
  match ty with
  | Ctype.Void -> 1 (* GNU-style: sizeof(void) = 1 for pointer arithmetic *)
  | Ctype.Int (k, _) -> Ctype.ikind_size k
  | Ctype.Float k -> Ctype.fkind_size k
  | Ctype.Ptr _ | Ctype.Func _ -> 8
  | Ctype.Array (elem, Some n) -> size env elem * n
  | Ctype.Array (_, None) -> failwith "layout: unsized array has no size"
  | Ctype.Struct tag ->
    let fields = struct_fields env tag in
    let last =
      List.fold_left
        (fun off (f : Ast.field) ->
          Util.align_up off (align env f.f_ty) + size env f.f_ty)
        0 fields
    in
    Util.align_up (max last 1) (align env ty)

(** Byte offset and type of field [name] in struct [tag]. *)
let field_offset env tag name : int * Ctype.t =
  let fields = struct_fields env tag in
  let rec walk off = function
    | [] -> failwith (Printf.sprintf "layout: no field %s in struct %s" name tag)
    | (f : Ast.field) :: rest ->
      let off = Util.align_up off (align env f.f_ty) in
      if f.f_name = name then (off, f.f_ty) else walk (off + size env f.f_ty) rest
  in
  walk 0 fields

(** Index of field [name] in struct [tag] (declaration order). *)
let field_index env tag name : int =
  let fields = struct_fields env tag in
  let rec walk i = function
    | [] -> failwith (Printf.sprintf "layout: no field %s in struct %s" name tag)
    | (f : Ast.field) :: rest -> if f.f_name = name then i else walk (i + 1) rest
  in
  walk 0 fields

(** All fields of struct [tag] with their byte offsets. *)
let fields_with_offsets env tag : (string * Ctype.t * int) list =
  let fields = struct_fields env tag in
  let _, acc =
    List.fold_left
      (fun (off, acc) (f : Ast.field) ->
        let off = Util.align_up off (align env f.f_ty) in
        (off + size env f.f_ty, (f.f_name, f.f_ty, off) :: acc))
      (0, []) fields
  in
  List.rev acc
