(** Abstract syntax of the C subset.

    The parser produces this AST with every expression's [ty] field set to
    [Ctype.Void]; the type checker ([Sema]) fills the real type in place.
    Lowering consumes the annotated tree and inserts the implicit
    conversions (array decay, arithmetic conversions) by comparing the
    annotated types. *)

type unop =
  | Neg   (** -e *)
  | Lognot (** !e *)
  | Bitnot (** ~e *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Lt | Gt | Le | Ge | Eq | Ne
  | Band | Bor | Bxor
  | Logand | Logor

type expr = {
  mutable ty : Ctype.t;  (** filled by [Sema] *)
  pos : Token.pos;
  desc : desc;
}

and desc =
  | IntLit of int64 * Ctype.ikind * Ctype.signedness
  | FloatLit of float * Ctype.fkind
  | CharLit of char
  | StrLit of string           (** without the terminating NUL *)
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of binop option * expr * expr  (** [Some op] for compound [op=] *)
  | Cond of expr * expr * expr
  | Cast of Ctype.t * expr
  | Call of expr * expr list
  | Index of expr * expr
  | Member of expr * string    (** e.f *)
  | Arrow of expr * string     (** e->f *)
  | Deref of expr
  | Addrof of expr
  | SizeofTy of Ctype.t
  | SizeofE of expr
  | PreIncr of expr | PreDecr of expr
  | PostIncr of expr | PostDecr of expr
  | Comma of expr * expr

type init = Iexpr of expr | Ilist of init list

type decl = {
  d_name : string;
  mutable d_ty : Ctype.t;  (** [Sema] completes unsized arrays from inits *)
  d_init : init option;
  d_pos : Token.pos;
}

type stmt =
  | Sexpr of expr
  | Sdecl of decl list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
      (** init (Sdecl or Sexpr), condition, step, body *)
  | Sreturn of expr option * Token.pos
  | Sbreak of Token.pos
  | Scontinue of Token.pos
  | Sblock of stmt list
  | Sswitch of expr * stmt list * Token.pos
      (** body statements; [Scase]/[Sdefault] labels appear at the top
          level of the list *)
  | Scase of int64 * Token.pos
  | Sdefault of Token.pos
  | Sempty

type field = { f_name : string; f_ty : Ctype.t }

type func = {
  fn_name : string;
  fn_sig : Ctype.fsig;
  fn_params : (string * Ctype.t) list;
  fn_body : stmt list;
  fn_pos : Token.pos;
}

type global =
  | Gfunc of func
  | Gvar of decl
  | Gfundecl of string * Ctype.fsig
  | Gstruct of string * field list
  | Gtypedef of string * Ctype.t
  | Genum of (string * int64) list

type program = global list

(** Build an expression node (type filled later by Sema). *)
let mk pos desc = { ty = Ctype.Void; pos; desc }
