lib/cfront/sema.ml: Ast Ctype Diag Hashtbl Layout List Option String
