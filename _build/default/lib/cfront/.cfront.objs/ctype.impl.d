lib/cfront/ctype.ml: List Printf String
