lib/cfront/parser.ml: Array Ast Char Ctype Diag Hashtbl Int64 Lexer List Option Printf Token
