lib/cfront/lexer.ml: Buffer Char Ctype Diag Hashtbl Int64 List String Token
