lib/cfront/diag.ml: Format Printf Token
