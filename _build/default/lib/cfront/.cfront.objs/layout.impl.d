lib/cfront/layout.ml: Ast Ctype Hashtbl List Printf Util
