lib/cfront/token.ml: Ctype Int64 List Printf
