lib/cfront/ast.ml: Ctype Token
