(** Valgrind/Memcheck simulator (paper §2.2, "dynamic instrumentation").

    Binary instrumentation sees *every* access, including the libc's
    ([Hooks.sees_libc]), and needs no recompilation — but it only knows
    what the binary knows:

    - addressability (A bits) is tracked per byte; the heap gets precise
      block bounds from the intercepted allocator, so heap overflows are
      caught reliably;
    - the stack and the global data sections are just "addressable
      memory": out-of-bounds accesses inside them are invisible (the
      paper: "Valgrind can only find heap buffer out-of-bounds
      accesses");
    - definedness (V bits) is tracked per byte and propagated through
      registers; undefined data deciding a branch or reaching output is
      reported — which *indirectly* catches some stack out-of-bounds
      reads (14 of 31 in the paper's corpus);
    - freed blocks go to a large no-reuse pool (--freelist-vol), so
      use-after-free is caught reliably (unlike ASan's bounded
      quarantine). *)

type t = {
  addressable : Shadow.t;
  defined : Shadow.t;
  mem : Mem.t;
  alloc : Alloc.t;
  blocks : (int64, [ `Live of int | `Freed of int ]) Hashtbl.t;
}

let report ~kind fmt = Hooks.report ~tool:"Memcheck" ~kind fmt

let check_access t ~(what : string) addr size =
  match Shadow.check t.addressable addr size with
  | None -> ()
  | Some (poison, at) ->
    let detail =
      match poison with
      | Shadow.Heap_freed -> " inside a block that was free'd"
      | Shadow.Heap_redzone -> " just past a heap block (redzone)"
      | Shadow.Heap_unallocated -> " in unallocated heap"
      | _ -> ""
    in
    report ~kind:("invalid-" ^ what) "Invalid %s of size %d at 0x%Lx%s (0x%Lx)"
      what size addr detail at

let mc_malloc t size : int64 =
  let rz = 16 in
  let p = Alloc.malloc t.alloc (size + (2 * rz)) in
  let body = Int64.add p (Int64.of_int rz) in
  Shadow.poison t.addressable ~kind:Shadow.Heap_redzone p rz;
  Shadow.unpoison t.addressable body size;
  Shadow.poison t.addressable ~kind:Shadow.Heap_redzone
    (Int64.add body (Int64.of_int size))
    rz;
  (* malloc'd memory is addressable but undefined *)
  Shadow.poison t.defined ~kind:Shadow.Undefined_area body size;
  Hashtbl.replace t.blocks body (`Live size);
  body

let mc_free t (body : int64) : unit =
  if body = 0L then ()
  else begin
    match Hashtbl.find_opt t.blocks body with
    | None ->
      report ~kind:"bad-free"
        "Invalid free() / delete / delete[] / realloc() of 0x%Lx" body
    | Some (`Freed _) ->
      report ~kind:"double-free" "Invalid free(): 0x%Lx was already freed" body
    | Some (`Live size) ->
      Hashtbl.replace t.blocks body (`Freed size);
      (* Large freelist volume: never actually reused in our runs. *)
      Shadow.poison t.addressable ~kind:Shadow.Heap_freed body size
  end

let make ~mem ~alloc () : t * Hooks.t =
  let t =
    {
      addressable = Shadow.create ();
      defined = Shadow.create ();
      mem;
      alloc;
      blocks = Hashtbl.create 64;
    }
  in
  (* A bits: the heap is unaddressable until allocated; everything else
     the program can reach (stack, globals, argv area) is one big
     addressable region, exactly Valgrind's blind spot. *)
  Shadow.poison t.addressable ~kind:Shadow.Heap_unallocated
    (Int64.of_int Mem.heap_base)
    (Mem.heap_limit - Mem.heap_base);
  (* V bits: globals and the argv/envp area start defined; the stack
     region starts undefined. *)
  Shadow.poison t.defined ~kind:Shadow.Undefined_area
    (Int64.of_int Mem.stack_limit)
    (Mem.stack_top - Mem.stack_limit);
  let hooks = Hooks.default ~tool_name:"memcheck" in
  hooks.Hooks.sees_libc <- true;
  hooks.Hooks.on_load <- (fun addr size -> check_access t ~what:"read" addr size);
  hooks.Hooks.on_store <-
    (fun addr size def ->
      check_access t ~what:"write" addr size;
      if def then Shadow.unpoison t.defined addr size
      else Shadow.poison t.defined ~kind:Shadow.Undefined_area addr size);
  hooks.Hooks.load_defined <-
    (fun addr size -> not (Shadow.is_poisoned t.defined addr size));
  hooks.Hooks.on_undef_use <-
    (fun what -> report ~kind:"uninitialised-value" "%s" what);
  hooks.Hooks.malloc <- Some (fun size -> mc_malloc t size);
  hooks.Hooks.free <- Some (fun p -> mc_free t p);
  hooks.Hooks.usable_size <-
    (fun p ->
      match Hashtbl.find_opt t.blocks p with
      | Some (`Live size) -> Some size
      | _ -> None);
  hooks.Hooks.on_alloca <-
    (fun body size ->
      (* fresh stack memory is undefined *)
      Shadow.poison t.defined ~kind:Shadow.Undefined_area body size);
  hooks.Hooks.on_frame_exit <-
    (fun ~lo ~hi ->
      Shadow.poison t.defined ~kind:Shadow.Undefined_area lo
        (Int64.to_int (Int64.sub hi lo)));
  (t, hooks)
