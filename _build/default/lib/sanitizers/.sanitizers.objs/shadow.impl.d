lib/sanitizers/shadow.ml: Bytes Int64 Mem
