lib/sanitizers/memcheck.ml: Alloc Hashtbl Hooks Int64 Mem Shadow
