lib/sanitizers/asan.ml: Alloc Hashtbl Hooks Instr Int64 Irfunc Irmod Irtype List Mem Queue Shadow
