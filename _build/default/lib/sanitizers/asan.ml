(** AddressSanitizer simulator (paper §2.2, "compile-time
    instrumentation").

    Faithful to the mechanism *and to the period-accurate gaps* the paper
    exploits:

    - checks are attached to the program's accesses by the
      [instrument] pass; anything the backend deletes, or any access
      performed by uninstrumented code (the precompiled libc, the
      kernel-written argv/envp arrays), is invisible (case studies 1–3);
    - redzones are finite: an access that jumps past the redzone into
      another object's valid memory is not detected (case study 4);
    - the freed-memory quarantine is a heuristic with a byte budget:
      quick reallocation can recycle memory and hide use-after-free
      (paper P3);
    - libc interceptors cover a fixed list: [strtok] is missing (the
      paper's fix landed later — the flag [strtok_interceptor] lets the
      repro show the before/after), and the printf interceptor checks
      only pointer arguments (case studies 2 and 5). *)

let redzone = 16
let stack_redzone = 16

type t = {
  shadow : Shadow.t;
  mem : Mem.t;
  alloc : Alloc.t;
  blocks : (int64, [ `Live of int | `Quarantined of int ]) Hashtbl.t;
  quarantine : int64 Queue.t;
  mutable quarantine_bytes : int;
  quarantine_cap : int;
  strtok_interceptor : bool;
  fno_common : bool;
      (** without -fno-common, zero-initialized ("common") globals are
          not instrumented: no redzones around them (paper §4.1) *)
}

let report t ~kind fmt =
  ignore t;
  Hooks.report ~tool:"AddressSanitizer" ~kind fmt

let check_range t ~(access : Instr.access_kind) addr size =
  match Shadow.check t.shadow addr size with
  | None -> ()
  | Some (poison, at) ->
    report t ~kind:(Shadow.describe poison)
      "%s: %s of size %d at 0x%Lx (first bad byte 0x%Lx)"
      (Shadow.describe poison)
      (match access with Instr.AccLoad -> "READ" | Instr.AccStore -> "WRITE")
      size addr at

(* --- allocator wrapper: redzones + quarantine ------------------- *)

let asan_malloc t size : int64 =
  let p = Alloc.malloc t.alloc (size + (2 * redzone)) in
  let body = Int64.add p (Int64.of_int redzone) in
  Shadow.poison t.shadow ~kind:Shadow.Heap_redzone p redzone;
  Shadow.unpoison t.shadow body size;
  Shadow.poison t.shadow ~kind:Shadow.Heap_redzone
    (Int64.add body (Int64.of_int size))
    redzone;
  Hashtbl.replace t.blocks body (`Live size);
  body

let asan_free t (body : int64) : unit =
  if body = 0L then ()
  else begin
    match Hashtbl.find_opt t.blocks body with
    | None ->
      report t ~kind:"bad-free"
        "attempting free on address which was not malloc()-ed: 0x%Lx" body
    | Some (`Quarantined _) ->
      report t ~kind:"double-free" "attempting double-free on 0x%Lx" body
    | Some (`Live size) ->
      Hashtbl.replace t.blocks body (`Quarantined size);
      Shadow.poison t.shadow ~kind:Shadow.Heap_freed body size;
      Queue.push body t.quarantine;
      t.quarantine_bytes <- t.quarantine_bytes + size;
      (* Heuristic quarantine: beyond the budget, really release blocks
         — after which a stale pointer can alias fresh memory. *)
      while t.quarantine_bytes > t.quarantine_cap && not (Queue.is_empty t.quarantine) do
        let old = Queue.pop t.quarantine in
        match Hashtbl.find_opt t.blocks old with
        | Some (`Quarantined osize) ->
          t.quarantine_bytes <- t.quarantine_bytes - osize;
          Hashtbl.remove t.blocks old;
          Shadow.unpoison t.shadow old osize;
          ignore (Alloc.free t.alloc (Int64.sub old (Int64.of_int redzone)))
        | _ -> ()
      done
  end

(* --- interceptors ------------------------------------------------ *)

(* Check that the NUL-terminated string at [addr] is fully addressable,
   byte by byte, like ASan's real interceptors do. *)
let check_string t addr =
  let rec go a =
    check_range t ~access:Instr.AccLoad a 1;
    if Mem.load_int t.mem a ~size:1 <> 0L then go (Int64.add a 1L)
  in
  go addr

let string_length t addr =
  let rec go n =
    if Mem.load_int t.mem (Int64.add addr (Int64.of_int n)) ~size:1 = 0L then n
    else go (n + 1)
  in
  go 0

let intercept t (name : string) (args : int64 list) : unit =
  let arg n = List.nth args n in
  match name with
  | "strlen" | "puts" | "fputs" | "atoi" | "atol" | "atof" | "strchr"
  | "strrchr" ->
    check_string t (arg 0)
  | "__printf_str" ->
    (* the printf interceptor checks only pointer (%s) arguments *)
    check_string t (arg 0)
  | "__scanf_str" -> () (* writes checked only as far as ASan knows sizes *)
  | "__sprintf_write" ->
    check_range t ~access:Instr.AccStore (arg 0) (Int64.to_int (arg 1))
  | "fgets" ->
    check_range t ~access:Instr.AccStore (arg 0) (Int64.to_int (arg 1))
  | "strcpy" ->
    check_string t (arg 1);
    let n = string_length t (arg 1) + 1 in
    check_range t ~access:Instr.AccStore (arg 0) n
  | "strcat" ->
    check_string t (arg 0);
    check_string t (arg 1);
    let dst_len = string_length t (arg 0) in
    let n = string_length t (arg 1) + 1 in
    check_range t ~access:Instr.AccStore
      (Int64.add (arg 0) (Int64.of_int dst_len))
      n
  | "strcmp" | "strstr" | "strcasecmp" | "strpbrk" ->
    check_string t (arg 0);
    check_string t (arg 1)
  | "strtol" -> check_string t (arg 0)
  | "memchr" ->
    check_range t ~access:Instr.AccLoad (arg 0) (Int64.to_int (arg 1))
  | "strncpy" | "strncat" ->
    (* reads at most n bytes of src; writes at most n (+1) to dst *)
    let n = Int64.to_int (arg 2) in
    check_range t ~access:Instr.AccStore (arg 0) n
  | "strncmp" -> ()
  | "strdup" -> check_string t (arg 0)
  | "memcpy" | "memmove" ->
    let n = Int64.to_int (arg 2) in
    check_range t ~access:Instr.AccStore (arg 0) n;
    check_range t ~access:Instr.AccLoad (arg 1) n
  | "memset" ->
    let n = Int64.to_int (arg 1) in
    check_range t ~access:Instr.AccStore (arg 0) n
  | "memcmp" ->
    let n = Int64.to_int (arg 2) in
    check_range t ~access:Instr.AccLoad (arg 0) n;
    check_range t ~access:Instr.AccLoad (arg 1) n
  | "strtok" when t.strtok_interceptor ->
    (* The interceptor Rigger contributed to LLVM (rL298650): validate
       both the subject (if not NULL) and the delimiter string. *)
    if arg 0 <> 0L then check_string t (arg 0);
    check_string t (arg 1)
  | _ -> ()

(* --- engine assembly --------------------------------------------- *)

(** Build the hooks that turn the native engine into an
    ASan-instrumented process.  Globals are laid out with gaps by the
    engine ([global_gap]); we poison the whole globals and heap regions
    here and unpoison bodies as they are defined/allocated. *)
let make ?(quarantine_cap = 1 lsl 18) ?(strtok_interceptor = false)
    ?(fno_common = true) ~mem ~alloc () : t * Hooks.t =
  let t =
    {
      shadow = Shadow.create ();
      mem;
      alloc;
      blocks = Hashtbl.create 64;
      quarantine = Queue.create ();
      quarantine_bytes = 0;
      quarantine_cap;
      strtok_interceptor;
      fno_common;
    }
  in
  Shadow.poison t.shadow ~kind:Shadow.Heap_unallocated
    (Int64.of_int Mem.heap_base)
    (Mem.heap_limit - Mem.heap_base);
  (* Poison the whole globals region (bodies are unpoisoned as laid
     out), including a margin before the first global so underflows of
     the first object are caught too. *)
  Shadow.poison t.shadow ~kind:Shadow.Global_redzone
    (Int64.of_int (Mem.globals_base - 64))
    (Mem.heap_base - Mem.globals_base + 64);
  let hooks = Hooks.default ~tool_name:"asan" in
  hooks.Hooks.on_sancheck <-
    (fun kind addr size -> check_range t ~access:kind addr size);
  hooks.Hooks.malloc <- Some (fun size -> asan_malloc t size);
  hooks.Hooks.free <- Some (fun p -> asan_free t p);
  hooks.Hooks.usable_size <-
    (fun p ->
      match Hashtbl.find_opt t.blocks p with
      | Some (`Live size) -> Some size
      | _ -> None);
  hooks.Hooks.alloca_padding <- stack_redzone;
  hooks.Hooks.on_alloca <-
    (fun body size ->
      Shadow.poison t.shadow ~kind:Shadow.Stack_redzone
        (Int64.sub body (Int64.of_int stack_redzone))
        stack_redzone;
      Shadow.unpoison t.shadow body size;
      Shadow.poison t.shadow ~kind:Shadow.Stack_redzone
        (Int64.add body (Int64.of_int size))
        stack_redzone);
  hooks.Hooks.on_frame_exit <-
    (fun ~lo ~hi -> Shadow.unpoison t.shadow lo (Int64.to_int (Int64.sub hi lo)));
  hooks.Hooks.on_global <-
    (fun addr size ~zero_init ->
      if zero_init && not t.fno_common then
        (* common symbol, uninstrumented: the surrounding gap is plain
           addressable memory, so overflows into it are invisible *)
        Shadow.unpoison t.shadow (Int64.sub addr 32L) (size + 64)
      else Shadow.unpoison t.shadow addr size);
  hooks.Hooks.intercept <- (fun name args -> intercept t name args);
  (t, hooks)

(* --- the compile-time instrumentation pass ----------------------- *)

(** Insert a [Sancheck] before every load and store, as
    [-fsanitize=address] does during compilation.  Anything a later
    backend pass deletes takes its check with it. *)
let instrument (m : Irmod.t) : unit =
  List.iter
    (fun (f : Irfunc.t) ->
      Irfunc.rewrite_blocks f (fun b ->
          List.concat_map
            (fun instr ->
              match instr with
              | Instr.Load (_, s, p) ->
                [ Instr.Sancheck (Instr.AccLoad, p, Irtype.scalar_size s); instr ]
              | Instr.Store (s, _, p) ->
                [ Instr.Sancheck (Instr.AccStore, p, Irtype.scalar_size s); instr ]
              | _ -> [ instr ])
            b.Irfunc.instrs))
    m.Irmod.funcs
