(** Byte-granular shadow memory, the substrate of both sanitizer
    simulators (paper §2.2).  Each application byte has one shadow byte
    that records whether it is addressable and, if not, *why* — the
    "why" is what makes the tools' reports specific ("heap-buffer-
    overflow" vs. "stack-buffer-overflow" vs. "use after free"). *)

type poison =
  | Addressable
  | Heap_redzone
  | Stack_redzone
  | Global_redzone
  | Heap_freed
  | Heap_unallocated
  | Undefined_area  (** generic non-addressable *)

let code = function
  | Addressable -> '\000'
  | Heap_redzone -> '\001'
  | Stack_redzone -> '\002'
  | Global_redzone -> '\003'
  | Heap_freed -> '\004'
  | Heap_unallocated -> '\005'
  | Undefined_area -> '\006'

let of_code = function
  | '\000' -> Addressable
  | '\001' -> Heap_redzone
  | '\002' -> Stack_redzone
  | '\003' -> Global_redzone
  | '\004' -> Heap_freed
  | '\005' -> Heap_unallocated
  | _ -> Undefined_area

let describe = function
  | Addressable -> "addressable memory"
  | Heap_redzone -> "heap-buffer-overflow"
  | Stack_redzone -> "stack-buffer-overflow"
  | Global_redzone -> "global-buffer-overflow"
  | Heap_freed -> "heap-use-after-free"
  | Heap_unallocated -> "unknown-address (not malloc'ed)"
  | Undefined_area -> "unaddressable memory"

type t = { shadow : Bytes.t }

let create () = { shadow = Bytes.make Mem.mem_size (code Addressable) }

let clamp a = max 0 (min Mem.mem_size a)

let poison t ~(kind : poison) (addr : int64) (size : int) =
  let lo = clamp (Int64.to_int addr) in
  let hi = clamp (Int64.to_int addr + size) in
  if hi > lo then Bytes.fill t.shadow lo (hi - lo) (code kind)

let unpoison t (addr : int64) (size : int) = poison t ~kind:Addressable addr size

(** First poisoned byte in [addr, addr+size), if any. *)
let check t (addr : int64) (size : int) : (poison * int64) option =
  let lo = Int64.to_int addr in
  let hi = lo + size in
  if lo < 0 || hi > Mem.mem_size then Some (Undefined_area, addr)
  else begin
    let rec go a =
      if a >= hi then None
      else begin
        let c = Bytes.get t.shadow a in
        if c <> '\000' then Some (of_code c, Int64.of_int a) else go (a + 1)
      end
    in
    go lo
  end

let is_poisoned t addr size = check t addr size <> None
