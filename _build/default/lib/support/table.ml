(** ASCII table rendering for the experiment reports.  Every table the
    harness prints (Tables 1-2, the tool-comparison matrix, Figure 16
    rows) goes through this module so output is uniform. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.map (fun _ -> Left) header
  in
  if List.length aligns <> List.length header then
    invalid_arg "Table.create: aligns/header length mismatch";
  { title; header; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let widths t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  List.mapi
    (fun i _ ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
    t.header

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let ws = widths t in
  let line c =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) c) ws) ^ "+"
  in
  let render_row row =
    let cells =
      List.map2
        (fun (w, a) s -> " " ^ pad a w s ^ " ")
        (List.combine ws t.aligns) row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let print t = print_string (render t ^ "\n")
