(** ASCII charts: multi-series line charts (Figures 1, 2, 15) and
    horizontal box plots (Figure 16).  These are deliberately simple —
    the harness's job is to print the same *series* the paper plots, and
    the chart is a quick visual check of the shape. *)

(** A named series of (x, y) points. *)
type series = { name : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

(** Render [series] on a [width] x [height] character grid, mapping the
    bounding box of all points onto the grid.  Each series uses its own
    glyph; a legend is printed underneath. *)
let line_chart ?(width = 64) ?(height = 16) ~title series =
  let all = List.concat_map (fun s -> s.points) series in
  match all with
  | [] -> title ^ "\n(no data)\n"
  | _ ->
    let xs = List.map fst all and ys = List.map snd all in
    let xmin = List.fold_left min infinity xs
    and xmax = List.fold_left max neg_infinity xs
    and ymin = Float.min 0.0 (List.fold_left min infinity ys)
    and ymax = List.fold_left max neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun i s ->
        let g = glyphs.(i mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let cx =
              int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
            in
            let cy =
              height - 1
              - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
            in
            if cx >= 0 && cx < width && cy >= 0 && cy < height then
              grid.(cy).(cx) <- g)
          s.points)
      series;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (title ^ "\n");
    Buffer.add_string buf (Printf.sprintf "%8.1f |" ymax);
    Buffer.add_string buf (String.init width (fun i -> grid.(0).(i)));
    Buffer.add_char buf '\n';
    for r = 1 to height - 2 do
      Buffer.add_string buf "         |";
      Buffer.add_string buf (String.init width (fun i -> grid.(r).(i)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (Printf.sprintf "%8.1f |" ymin);
    Buffer.add_string buf (String.init width (fun i -> grid.(height - 1).(i)));
    Buffer.add_char buf '\n';
    Buffer.add_string buf "          ";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "          %-8.1f%s%8.1f\n" xmin
         (String.make (max 0 (width - 16)) ' ')
         xmax);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c = %s\n" glyphs.(i mod Array.length glyphs) s.name))
      series;
    Buffer.contents buf

(** Render one horizontal box plot line (|--[ med ]--|) scaled onto
    [width] characters spanning [lo, hi]. *)
let boxplot_line ~width ~lo ~hi (b : Stats.boxplot) =
  let span = if hi > lo then hi -. lo else 1.0 in
  let pos v =
    let p = int_of_float ((v -. lo) /. span *. float_of_int (width - 1)) in
    max 0 (min (width - 1) p)
  in
  let line = Bytes.make width ' ' in
  for i = pos b.low to pos b.high do
    Bytes.set line i '-'
  done;
  for i = pos b.q1 to pos b.q3 do
    Bytes.set line i '='
  done;
  Bytes.set line (pos b.low) '|';
  Bytes.set line (pos b.high) '|';
  Bytes.set line (pos b.med) 'M';
  Bytes.to_string line
