(** Descriptive statistics for the benchmark harness. *)

(** Arithmetic mean.  Raises [Invalid_argument] on the empty list, as do
    the other aggregations. *)
val mean : float list -> float

val variance : float list -> float
val stddev : float list -> float

(** Linear-interpolation quantile (R type 7); [q] in [0, 1]. *)
val quantile : float list -> float -> float

val median : float list -> float

type boxplot = {
  low : float;   (** minimum *)
  q1 : float;
  med : float;
  q3 : float;
  high : float;  (** maximum *)
}

val boxplot : float list -> boxplot

(** Scale every field by [1/denom] (Figure 16's normalization to the
    Clang -O0 median). *)
val boxplot_relative : boxplot -> denom:float -> boxplot

val pp_boxplot : Format.formatter -> boxplot -> unit
