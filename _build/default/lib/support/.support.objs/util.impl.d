lib/support/util.ml: List String
