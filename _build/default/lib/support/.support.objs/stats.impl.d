lib/support/stats.ml: Array Float Fmt List
