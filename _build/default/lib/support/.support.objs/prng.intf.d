lib/support/prng.mli:
