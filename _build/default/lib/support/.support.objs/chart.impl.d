lib/support/chart.ml: Array Buffer Bytes Float List Printf Stats String
