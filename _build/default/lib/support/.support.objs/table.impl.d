lib/support/table.ml: Buffer List String
