lib/support/prng.ml: Array Float Int64 List
