(** Small descriptive-statistics toolkit used by the benchmark harness
    (box plots of peak performance, warm-up series summaries). *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

(** Linear-interpolation quantile (type 7, as in R), [q] in [0, 1]. *)
let quantile xs q =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.quantile: empty"
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let pos = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = min (lo + 1) (n - 1) in
      let frac = pos -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let median xs = quantile xs 0.5

type boxplot = {
  low : float;   (** minimum *)
  q1 : float;
  med : float;
  q3 : float;
  high : float;  (** maximum *)
}

let boxplot xs =
  {
    low = quantile xs 0.0;
    q1 = quantile xs 0.25;
    med = quantile xs 0.5;
    q3 = quantile xs 0.75;
    high = quantile xs 1.0;
  }

(** Scale every field of a boxplot by [1/denom]; used to normalize
    execution times to the Clang -O0 median as in Figure 16. *)
let boxplot_relative b ~denom =
  {
    low = b.low /. denom;
    q1 = b.q1 /. denom;
    med = b.med /. denom;
    q3 = b.q3 /. denom;
    high = b.high /. denom;
  }

let pp_boxplot ppf b =
  Fmt.pf ppf "min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f" b.low b.q1 b.med b.q3
    b.high
