(** The full bug corpus and its ground-truth distribution.

    [all] concatenates the per-storage files; [distribution] recomputes
    Tables 1 and 2 from the ground truth so tests can assert the corpus
    matches the paper's numbers exactly:

    - Table 1: 61 buffer overflows, 5 NULL dereferences, 1 use-after-
      free, 1 varargs;
    - Table 2: 32 reads / 29 writes; 8 underflows / 53 overflows;
      32 stack / 17 heap / 9 global / 3 main-args. *)

open Groundtruth

let all : program list =
  Bugs_stack.programs @ Bugs_heap.programs @ Bugs_global.programs
  @ Bugs_misc.programs

let find id = List.find_opt (fun p -> p.id = id) all

type distribution = {
  overflows : int;
  null_derefs : int;
  use_after_free : int;
  varargs : int;
  reads : int;
  writes : int;
  underflows : int;
  oob_overflows : int;
  stack : int;
  heap : int;
  global : int;
  main_args : int;
}

let distribution (programs : program list) : distribution =
  let count pred = List.length (List.filter pred programs) in
  let oob_count pred =
    count (fun p -> match p.category with Oob o -> pred o | _ -> false)
  in
  {
    overflows = count (fun p -> match p.category with Oob _ -> true | _ -> false);
    null_derefs = count (fun p -> p.category = Null_dereference);
    use_after_free = count (fun p -> p.category = Use_after_free);
    varargs = count (fun p -> p.category = Varargs);
    reads = oob_count (fun o -> o.access = Read);
    writes = oob_count (fun o -> o.access = Write);
    underflows = oob_count (fun o -> o.direction = Underflow);
    oob_overflows = oob_count (fun o -> o.direction = Overflow);
    stack = oob_count (fun o -> o.storage = Stack);
    heap = oob_count (fun o -> o.storage = Heap);
    global = oob_count (fun o -> o.storage = Global);
    main_args = oob_count (fun o -> o.storage = Main_args);
  }

(** The paper's numbers, for assertions. *)
let paper_distribution : distribution =
  {
    overflows = 61;
    null_derefs = 5;
    use_after_free = 1;
    varargs = 1;
    reads = 32;
    writes = 29;
    underflows = 8;
    oob_overflows = 53;
    stack = 32;
    heap = 17;
    global = 9;
    main_args = 3;
  }

(** The 8 bugs neither ASan nor Valgrind finds (paper §4.1). *)
let expected_missed_by_both =
  List.filter
    (fun p ->
      match p.special with
      | Some (Main_args_oob | Missing_interceptor | Backend_folded
             | Beyond_redzone | Missing_vararg) ->
        true
      | Some O3_folded | None -> false)
    all

(** The 4 bugs ASan finds at -O0 but not at -O3. *)
let expected_o3_folded =
  List.filter (fun p -> p.special = Some O3_folded) all
