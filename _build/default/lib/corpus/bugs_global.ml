(** Global (static storage) out-of-bounds corpus: 9 programs (6 reads /
    3 writes).  Two are the paper's case studies: the constant-index read
    the backend folds away even at -O0 (case 3) and the user-controlled
    index that jumps past ASan's redzone into a neighbouring object
    (case 4).  Valgrind treats the data section as one addressable blob,
    so it misses all of these. *)

open Groundtruth

let programs =
  [
    (* ---------------- reads ---------------- *)
    mk ~id:"GL-R01" ~project:"day counter"
      ~description:
        "constant-index read one past a global array; the code generator \
         folds the access away even at -O0 (paper case 3, Fig. 13)"
      ~special:Backend_folded
      ~fixed:{|
int count[7] = {0, 0, 0, 0, 0, 0, 0};

int main(int argc, char **argv) {
  return count[6];  /* fixed: last valid index */
}
|}
      ~category:(oob Read Overflow Global)
      {|
int count[7] = {0, 0, 0, 0, 0, 0, 0};

int main(int argc, char **argv) {
  return count[7];
}
|};
    mk ~id:"GL-R02" ~project:"number speller"
      ~description:
        "user input indexes a small table; large values land beyond \
         ASan's redzone inside the next global (paper case 4, Fig. 14)"
      ~special:Beyond_redzone ~input:"50\n"
      ~fixed:{|
const char *strings[] = {"zero", "one", "two", "three", "four", "five",
                         "six"};
char scratch[4096];

int main(void) {
  int number;
  fscanf(stdin, "%d", &number);
  if (number < 0 || number >= 7) {  /* fixed: validate the input */
    printf("out of range\n");
    return 1;
  }
  printf("%s\n", strings[number]);
  return 0;
}
|}
      ~category:(oob Read Overflow Global)
      {|
const char *strings[] = {"zero", "one", "two", "three", "four", "five",
                         "six"};
char scratch[4096]; /* an unrelated buffer that happens to follow */

int main(void) {
  int number;
  fscanf(stdin, "%d", &number);
  printf("%s\n", strings[number]);
  return 0;
}
|};
    mk ~id:"GL-R03" ~project:"month table"
      ~description:"reads month index 12 of a 12-entry table"
      ~category:(oob Read Overflow Global)
      {|
int days_in_month[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

int main(void) {
  int total = 0;
  for (int m = 1; m <= 12; m++) { total += days_in_month[m]; }
  printf("%d days\n", total);
  return 0;
}
|};
    mk ~id:"GL-R04" ~project:"error strings"
      ~description:"error code equal to the table size reads past it"
      ~category:(oob Read Overflow Global)
      {|
const char *errors[3] = {"ok", "warning", "fatal"};

const char *describe(int code) {
  /* valid codes are 0..2; callers pass 3 for 'unknown' */
  return errors[code];
}

int main(void) {
  printf("%s\n", describe(3));
  return 0;
}
|};
    mk ~id:"GL-R05" ~project:"opcode decoder"
      ~description:"lookup after the bounds check was inverted"
      ~category:(oob Read Overflow Global)
      {|
int lengths[4] = {1, 2, 2, 4};

int main(int argc, char **argv) {
  int opcode = argc + 4;
  if (opcode > 4) { opcode = 4; } /* clamp is off by one */
  printf("len %d\n", lengths[opcode]);
  return 0;
}
|};
    mk ~id:"GL-R06" ~project:"keyword search"
      ~description:"search miss yields -1, used to index without a check"
      ~category:(oob Read Underflow Global)
      {|
int weights[5] = {10, 20, 30, 40, 50};

int find(int needle) {
  for (int i = 0; i < 5; i++) {
    if (weights[i] == needle) { return i; }
  }
  return -1;
}

int main(void) {
  int at = find(99);
  printf("weight %d\n", weights[at]); /* weights[-1] */
  return 0;
}
|};
    (* ---------------- writes ---------------- *)
    mk ~id:"GL-W01" ~project:"vote tally"
      ~description:"candidate id equal to the array size is written"
      ~category:(oob Write Overflow Global)
      {|
int votes[4];

int main(void) {
  int ballots[5] = {0, 2, 4, 1, 3}; /* '4' is out of range */
  for (int i = 0; i < 5; i++) { votes[ballots[i]]++; }
  printf("%d %d %d %d\n", votes[0], votes[1], votes[2], votes[3]);
  return 0;
}
|};
    mk ~id:"GL-W02" ~project:"byte histogram"
      ~description:"histogram sized 255 cannot count byte value 255"
      ~category:(oob Write Overflow Global)
      {|
int histogram[255]; /* should be 256 */

int main(void) {
  unsigned char data[4] = {0, 17, 255, 17};
  for (int i = 0; i < 4; i++) { histogram[data[i]]++; }
  printf("%d\n", histogram[17]);
  return 0;
}
|};
    mk ~id:"GL-W03" ~project:"progress bar"
      ~description:"pre-decrement before the empty check writes cell -1"
      ~category:(oob Write Underflow Global)
      {|
char bar[10];

int main(int argc, char **argv) {
  int fill = argc - 1;
  /* "erase one segment": decrements before checking for empty */
  fill = fill - 1;
  bar[fill] = ' ';
  if (fill <= 0) { fill = 0; }
  printf("fill %d %c\n", fill, bar[0]);
  return 0;
}
|};
  ]
