(** The rest of the corpus: 3 out-of-bounds reads of the [main]
    arguments (paper case 1 — the arrays the kernel writes before any
    instrumented code runs), 5 NULL dereferences (findable even without
    a tool: they crash), 1 use-after-free, and 1 access to a
    non-existent variadic argument (paper case 5). *)

open Groundtruth

let programs =
  [
    (* ------------- main() argument reads (case 1) ------------- *)
    mk ~id:"MA-R01" ~project:"arg echo"
      ~description:
        "prints argv[5] without checking argc; past the argv array the \
         environment pointers leak (Fig. 10)"
      ~special:Main_args_oob
      ~fixed:{|
int main(int argc, char **argv) {
  if (argc > 5) {  /* fixed: check argc first */
    printf("%d %s\n", argc, argv[5]);
  } else {
    printf("%d (no argv[5])\n", argc);
  }
  return 0;
}
|}
      ~category:(oob Read Overflow Main_args)
      {|
int main(int argc, char **argv) {
  printf("%d %s\n", argc, argv[5]);
  return 0;
}
|};
    mk ~id:"MA-R02" ~project:"option parser"
      ~description:"reads the flag argument without checking it exists"
      ~special:Main_args_oob
      ~fixed:{|
int main(int argc, char **argv) {
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "-o") == 0 && i + 1 < argc) {  /* fixed */
      char *value = argv[i + 1];
      if (value != 0) { printf("output=%s\n", value); }
    }
  }
  return 0;
}
|}
      ~category:(oob Read Overflow Main_args)
      ~argv:[ "prog"; "-o" ]
      {|
int main(int argc, char **argv) {
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "-o") == 0) {
      /* value expected right after the flag; argv[i + 1] is argv[argc],
         and the +2 lookahead for '--' is past the array */
      char *value = argv[i + 1];
      char *next = argv[i + 2];
      if (value != 0) { printf("output=%s\n", value); }
      if (next != 0) { printf("next=%s\n", next); }
    }
  }
  return 0;
}
|};
    mk ~id:"MA-R03" ~project:"batch runner"
      ~description:"iterates one entry past the argv NULL terminator"
      ~special:Main_args_oob
      ~fixed:{|
int main(int argc, char **argv) {
  for (int i = 0; i < argc; i++) {  /* fixed: stop at argc */
    char *arg = argv[i];
    if (arg != 0) { printf("job: %s\n", arg); }
  }
  return 0;
}
|}
      ~category:(oob Read Overflow Main_args)
      ~argv:[ "prog"; "job1" ]
      {|
int main(int argc, char **argv) {
  /* walks i = 0 .. argc+1: argv[argc] is the NULL terminator, and
     argv[argc + 1] is out of bounds */
  for (int i = 0; i <= argc + 1; i++) {
    char *arg = argv[i];
    if (arg != 0) { printf("job: %s\n", arg); }
  }
  return 0;
}
|};
    (* ------------- NULL dereferences ------------- *)
    mk ~id:"NU-01" ~project:"ini lookup"
      ~description:"strchr miss returns NULL, dereferenced unchecked"
      ~category:Null_dereference
      {|
int main(void) {
  char entry[16] = "colour_blue";
  char *eq = strchr(entry, '=');
  /* assumes every entry has '=': strchr returned NULL */
  printf("value: %s\n", eq + 1);
  return 0;
}
|};
    mk ~id:"NU-02" ~project:"linked list"
      ~description:"pop from an empty list follows the NULL head"
      ~category:Null_dereference
      {|
struct node { int v; struct node *next; };
int main(void) {
  struct node *head = 0;
  /* pop without an emptiness check */
  int v = head->v;
  printf("%d\n", v);
  return 0;
}
|};
    mk ~id:"NU-03" ~project:"word counter"
      ~description:"fgets at EOF returns NULL; the buffer pointer is used"
      ~input:""
      ~category:Null_dereference
      {|
int main(void) {
  char line[32];
  char *p = fgets(line, 32, stdin); /* empty input: NULL */
  int words = 0;
  while (*p != '\0') {
    if (*p == ' ') { words++; }
    p++;
  }
  printf("%d\n", words);
  return 0;
}
|};
    mk ~id:"NU-04" ~project:"plugin table"
      ~description:"unregistered hook slot is NULL and gets called"
      ~category:Null_dereference
      {|
int double_it(int x) { return 2 * x; }
int (*hooks[4])(int) = {double_it, 0, 0, 0};
int main(void) {
  int total = 0;
  for (int i = 0; i < 2; i++) { total += hooks[i](i); } /* hooks[1] is NULL */
  printf("%d\n", total);
  return 0;
}
|};
    mk ~id:"NU-05" ~project:"settings writer"
      ~description:"write through a pointer that was never initialized to
 a target"
      ~category:Null_dereference
      {|
int main(void) {
  int *current_setting = 0;
  int requested = 7;
  if (requested > 0) {
    *current_setting = requested; /* forgot to point it at storage */
  }
  printf("ok\n");
  return 0;
}
|};
    (* ------------- temporal ------------- *)
    mk ~id:"UF-01" ~project:"message queue"
      ~description:"message freed on dispatch, then read for logging"
      ~category:Use_after_free
      {|
struct msg { int id; char body[24]; };
int main(void) {
  struct msg *m = (struct msg *)malloc(sizeof(struct msg));
  m->id = 17;
  strcpy(m->body, "hello");
  /* dispatch frees the message ... */
  free(m);
  /* ... and the caller logs it afterwards */
  printf("sent #%d\n", m->id);
  return 0;
}
|};
    (* ------------- varargs (case 5) ------------- *)
    mk ~id:"VA-01" ~project:"status logger"
      ~description:
        "format string names two values, the call passes one (Fig. 10's \
         sibling; CVE-2016-4448-style)"
      ~special:Missing_vararg ~fixed:{|
int main(void) {
  int done = 3;
  int total = 10;
  printf("progress: %d of %d\n", done, total);  /* fixed: both passed */
  return 0;
}
|}
      ~category:Varargs
      {|
int main(void) {
  int done = 3;
  /* "%d of %d" but only 'done' is passed */
  printf("progress: %d of %d\n", done);
  return 0;
}
|};
  ]
