(** Stack out-of-bounds corpus: 32 programs (15 reads / 17 writes, 4 of
    them underflows), the largest slice of Table 2, mirroring the paper's
    finding that most bugs in small projects hit automatic storage.

    Layout notes the ground truth relies on: locals are allocated in
    declaration order at decreasing addresses, so overflowing an array
    *upward* lands in earlier-declared locals (or in the alloca's
    alignment slack), and underflowing lands in later-declared ones.
    Whether Valgrind can flag a read indirectly (uninitialised-value) is
    decided by whether the overrun lands on initialized data. *)

open Groundtruth

let programs =
  [
    (* ---------------- reads ---------------- *)
    mk ~id:"ST-R01" ~project:"csv splitter"
      ~description:
        "delimiter array lacks the NUL terminator; strtok's delimiter \
         scan runs off the end (missing ASan interceptor, paper case 2)"
      ~special:Missing_interceptor
      ~fixed:{|
int main(void) {
  char line[64] = "name;age;city";
  char seps[2] = ";";  /* fixed: room for the NUL terminator */
  int fields = 0;
  char *tok = strtok(line, seps);
  while (tok != 0) {
    fields++;
    tok = strtok(0, seps);
  }
  printf("%d fields\n", fields);
  return 0;
}
|}
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  char line[64] = "name;age;city";
  char seps[1] = {';'};
  int fields = 0;
  char *tok = strtok(line, seps);
  while (tok != 0) {
    fields++;
    tok = strtok(0, seps);
  }
  printf("%d fields\n", fields);
  return 0;
}
|};
    mk ~id:"ST-R02" ~project:"download counter"
      ~description:
        "printf(\"%ld\") reads 8 bytes where a 4-byte int was passed \
         (printf interceptor checks only pointers, paper case 2)"
      ~special:Missing_interceptor
      ~fixed:{|
int main(void) {
  int counter = 0;
  for (int i = 0; i < 17; i++) { counter += i; }
  printf("counter: %d\n", counter);  /* fixed: %d matches int */
  return 0;
}
|}
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  int counter = 0;
  for (int i = 0; i < 17; i++) { counter += i; }
  printf("counter: %ld\n", counter);
  return 0;
}
|};
    mk ~id:"ST-R03" ~project:"grade average"
      ~description:"averaging loop runs one element past the array"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  int scratch[8];
  int grades[6] = {71, 85, 93, 67, 88, 79};
  int sum = 0;
  for (int i = 0; i <= 6; i++) { sum += grades[i]; }
  printf("avg %d\n", sum / 6);
  return scratch[0] * 0;
}
|};
    mk ~id:"ST-R04" ~project:"temperature log"
      ~description:"hard-coded element count does not match the array"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  double spare[4];
  double temps[5] = {21.5, 22.0, 19.8, 20.4, 23.1};
  double peak = -100.0;
  for (int i = 0; i < 7; i++) {
    if (temps[i] > peak) { peak = temps[i]; }
  }
  printf("peak %.1f\n", peak);
  return (int)spare[0] * 0;
}
|};
    mk ~id:"ST-R05" ~project:"token reverser"
      ~description:
        "reversed copy is never NUL-terminated, so printing it reads on"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  char workspace[8]; /* scratch the function never initializes */
  char out[5];
  char word[6] = "hello";
  int n = (int)strlen(word);
  for (int i = 0; i < n; i++) { out[i] = word[n - 1 - i]; }
  /* out is exactly n chars long with no room for the NUL: strlen in
     printf's %s walks past the end */
  printf("%s\n", out);
  return 0;
}
|};
    mk ~id:"ST-R06" ~project:"dice histogram"
      ~description:"reads bucket 6 of a 6-bucket histogram (faces 1..6)"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  int work[4];
  int buckets[6] = {3, 4, 1, 6, 2, 5};
  int total = 0;
  for (int face = 1; face <= 6; face++) { total += buckets[face]; }
  printf("rolls %d\n", total);
  return work[0] * 0;
}
|};
    mk ~id:"ST-R07" ~project:"matrix trace"
      ~description:"trace loop indexes a 3x3 matrix with i in 0..3"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  int padding[4];
  int m[3][3] = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  int trace = 0;
  for (int i = 0; i <= 3; i++) { trace += m[i][i]; }
  printf("trace %d\n", trace);
  return padding[0] * 0;
}
|};
    mk ~id:"ST-R08" ~project:"shift cipher"
      ~description:"check comes after the access has already happened"
      ~category:(oob Read Overflow Stack)
      {|
int decode(const char *key, int i) {
  int v = key[i];        /* access first ... */
  if (i >= 4) { return 0; } /* ... bounds check too late */
  return v;
}
int main(void) {
  char extra[8];
  char key[4] = {'a', 'b', 'c', 'd'};
  int sum = 0;
  for (int i = 0; i < 6; i++) { sum += decode(key, i); }
  printf("sum %d\n", sum);
  return extra[0] * 0;
}
|};
    mk ~id:"ST-R09" ~project:"moving average"
      ~description:"window end index is off by one at the last position"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  int slack[8];
  int series[8] = {2, 4, 6, 8, 10, 12, 14, 16};
  int best = 0;
  for (int start = 0; start < 8; start += 2) {
    int s = series[start] + series[start + 1] + series[start + 2];
    if (s > best) { best = s; }
  }
  printf("best window %d\n", best);
  return slack[0] * 0;
}
|};
    mk ~id:"ST-R10" ~project:"hex dump"
      ~description:"length computed with sizeof of the wrong object"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  char buffer[24];
  char header[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  int sum = 0;
  for (size_t i = 0; i < sizeof(buffer); i++) { sum += header[i]; }
  printf("checksum %d\n", sum);
  return 0;
}
|};
    mk ~id:"ST-R11" ~project:"binary search"
      ~description:"high starts at n instead of n-1; probes cell n"
      ~category:(oob Read Overflow Stack)
      {|
int find(const int *xs, int n, int needle) {
  int lo = 0;
  int hi = n; /* should be n - 1 */
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (xs[mid] == needle) { return mid; }
    if (xs[mid] < needle) { lo = mid + 1; } else { hi = mid - 1; }
  }
  return -1;
}
int main(void) {
  int room[4];
  int xs[7] = {1, 3, 5, 7, 9, 11, 13};
  printf("%d\n", find(xs, 7, 14));
  return room[0] * 0;
}
|};
    mk ~id:"ST-R12" ~project:"palindrome test"
      ~description:"right index starts at strlen instead of strlen-1"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  char spare[3];
  char w[5] = {'c', 'i', 'v', 'i', 'c'};
  int left = 0;
  int right = (int)sizeof(w); /* off by one: should be sizeof - 1 */
  int ok = 1;
  while (left < right) {
    if (w[left] != w[right]) { ok = 0; break; }
    left++;
    right--;
  }
  printf(ok ? "palindrome\n" : "not\n");
  return 0;
}
|};
    mk ~id:"ST-R13" ~project:"priority queue"
      ~description:"peek on an empty queue reads the cell before index 0"
      ~category:(oob Read Underflow Stack)
      {|
int main(void) {
  int heap[4] = {9, 7, 4, 1};
  int scratch[2]; /* never initialized */
  int count = 0;
  /* peek() returns heap[count - 1] without checking count > 0 */
  int top = heap[count - 1];
  if (top > 0) { printf("top %d\n", top); }
  else { printf("empty\n"); }
  return 0;
}
|};
    mk ~id:"ST-R14" ~project:"ring buffer"
      ~description:"head index wraps one slot too late (reads cell -1)"
      ~category:(oob Read Underflow Stack)
      {|
int main(void) {
  int ring[4] = {10, 20, 30, 40};
  int uninit_tail[4];
  int head = 0;
  /* pop() decrements before the wrap check */
  head = head - 1;
  if (head < -1) { head = 3; } /* wrong guard: lets -1 through */
  int v = ring[head];
  if (v != 0) { printf("popped %d\n", v); }
  return uninit_tail[0] * 0;
}
|};
    mk ~id:"ST-R15" ~project:"frame parser"
      ~description:
        "overrun lands on an initialized neighbour, so the wrong value \
         flows on silently (no uninitialised data for Memcheck)"
      ~category:(oob Read Overflow Stack)
      {|
int main(void) {
  int limit = 9999;          /* initialized: the overrun reads this */
  int frame[4] = {5, 6, 7, 8};
  int sum = 0;
  for (int i = 0; i <= 4; i++) { sum += frame[i]; }
  printf("sum %d (limit %d)\n", sum, limit);
  return 0;
}
|};
    (* ---------------- writes ---------------- *)
    mk ~id:"ST-W01" ~project:"init helper"
      ~description:
        "Figure 3: dead stores past the array; -O3 deletes object, \
         stores and checks together"
      ~special:O3_folded
      ~category:(oob Write Overflow Stack)
      {|
int test(int length) {
  int arr[10];
  for (int i = 0; i < length; i++) { arr[i] = i; }
  return 0;
}
int main(int argc, char **argv) {
  return test(11 + argc);
}
|};
    mk ~id:"ST-W02" ~project:"zero fill"
      ~description:"dead zero-fill loop writes one past the buffer"
      ~special:O3_folded
      ~category:(oob Write Overflow Stack)
      {|
int scrub(int n) {
  char tmp[16];
  for (int i = 0; i <= 16 && i <= n; i++) { tmp[i] = 0; }
  return n;
}
int main(int argc, char **argv) {
  return scrub(31 + argc) & 1;
}
|};
    mk ~id:"ST-W03" ~project:"checksum pad"
      ~description:"dead padding writes run past the block"
      ~special:O3_folded
      ~category:(oob Write Overflow Stack)
      {|
int pad_block(int used) {
  int block[8];
  for (int i = used; i < 9; i++) { block[i] = -1; }
  return used;
}
int main(int argc, char **argv) {
  return pad_block(argc) & 1;
}
|};
    mk ~id:"ST-W04" ~project:"stencil warmup"
      ~description:"dead stencil seeding writes cells 0..N inclusive"
      ~special:O3_folded
      ~category:(oob Write Overflow Stack)
      {|
int warm(int n) {
  double grid[12];
  for (int i = 0; i <= 12 && i < n; i++) { grid[i] = 0.5 * i; }
  return n;
}
int main(int argc, char **argv) {
  return warm(40 + argc) & 1;
}
|};
    mk ~id:"ST-W05" ~project:"greeting builder"
      ~description:"strcpy of a 12-char name into an 8-byte buffer"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  char name[8];
  strcpy(name, "maximiliano!");
  printf("hi %s\n", name);
  return 0;
}
|};
    mk ~id:"ST-W06" ~project:"path join"
      ~description:"strcat overflows the destination by the separator"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  char path[12] = "/usr/bin";
  strcat(path, "/cc1"); /* 8 + 4 + NUL = 13 > 12 */
  printf("%s\n", path);
  return 0;
}
|};
    mk ~id:"ST-W07" ~project:"id formatter"
      ~description:"sprintf needs 11 bytes, buffer has 8"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  char id[8];
  sprintf(id, "ID-%06d", 123456);
  printf("%s\n", id);
  return 0;
}
|};
    mk ~id:"ST-W08" ~project:"line splitter"
      ~description:"writes the terminating NUL at buf[len] when len==cap"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  char field[4];
  const char *src = "abcd";
  int i = 0;
  while (src[i] != '\0' && i < 4) { field[i] = src[i]; i++; }
  field[i] = '\0'; /* i == 4 here */
  printf("%s\n", field);
  return 0;
}
|};
    mk ~id:"ST-W09" ~project:"bubble sort"
      ~description:"inner loop compares and swaps through cell n"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  int xs[5] = {4, 2, 5, 1, 3};
  for (int pass = 0; pass < 5; pass++) {
    for (int i = 0; i < 5; i++) { /* should stop at 4 */
      if (xs[i] > xs[i + 1]) {
        int t = xs[i];
        xs[i] = xs[i + 1];
        xs[i + 1] = t;
      }
    }
  }
  for (int i = 0; i < 5; i++) { printf("%d ", xs[i]); }
  printf("\n");
  return 0;
}
|};
    mk ~id:"ST-W10" ~project:"insertion sort"
      ~description:"shifts elements into the cell one past the end"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  int xs[6] = {9, 3, 7, 1, 8, 2};
  /* insert a 7th element "temporarily" during the pass */
  int v = 5;
  int j = 6;
  while (j > 0 && xs[j - 1] > v) {
    xs[j] = xs[j - 1]; /* first iteration writes xs[6] */
    j--;
  }
  xs[j] = v;
  for (int i = 0; i < 6; i++) { printf("%d ", xs[i]); }
  printf("\n");
  return 0;
}
|};
    mk ~id:"ST-W11" ~project:"roman numerals"
      ~description:"output buffer sized for the common case only"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  char out[8];
  int n = 3888; /* MMMDCCCLXXXVIII: 15 chars */
  int pos = 0;
  while (n >= 1000) { out[pos++] = 'M'; n -= 1000; }
  while (n >= 500) { out[pos++] = 'D'; n -= 500; }
  while (n >= 100) { out[pos++] = 'C'; n -= 100; }
  while (n >= 50) { out[pos++] = 'L'; n -= 50; }
  while (n >= 10) { out[pos++] = 'X'; n -= 10; }
  while (n >= 5) { out[pos++] = 'V'; n -= 5; }
  while (n >= 1) { out[pos++] = 'I'; n -= 1; }
  out[pos] = '\0';
  printf("%s\n", out);
  return 0;
}
|};
    mk ~id:"ST-W12" ~project:"config reader"
      ~description:"fgets size argument larger than the buffer"
      ~input:"verbose=true and a long tail that keeps going on\n"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  char line[16];
  if (fgets(line, 64, stdin) != 0) { /* 64 > sizeof line */
    printf("read: %s", line);
  }
  return 0;
}
|};
    mk ~id:"ST-W13" ~project:"bit flags"
      ~description:"flag index computed from user value without a check"
      ~input:"9\n"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  char flags[8];
  memset(flags, 0, sizeof(flags));
  int which;
  scanf("%d", &which);
  flags[which] = 1; /* which = 9 */
  int set = 0;
  for (int i = 0; i < 8; i++) { set += flags[i]; }
  printf("%d flags set\n", set);
  return 0;
}
|};
    mk ~id:"ST-W14" ~project:"caesar cipher"
      ~description:"encrypts length+1 characters into an exact buffer"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  char cipher[5];
  const char *msg = "attac"; /* 5 chars */
  for (int i = 0; i <= 5; i++) { /* copies the NUL shifted too */
    cipher[i] = (char)(msg[i] + 3);
  }
  printf("%c%c\n", cipher[0], cipher[1]);
  return 0;
}
|};
    mk ~id:"ST-W15" ~project:"stack machine"
      ~description:"push has no overflow guard"
      ~category:(oob Write Overflow Stack)
      {|
int main(void) {
  int stack[4];
  int sp = 0;
  for (int i = 0; i < 5; i++) { stack[sp++] = i * i; }
  int top = stack[sp - 1];
  printf("top %d\n", top);
  return 0;
}
|};
    mk ~id:"ST-W16" ~project:"undo buffer"
      ~description:"pop below zero writes the slot before the array"
      ~category:(oob Write Underflow Stack)
      {|
int main(void) {
  int undo[4] = {1, 2, 3, 4};
  int depth = 0;
  /* "clear" pops one time too many and scribbles the sentinel */
  for (int i = 0; i <= 4; i++) {
    depth = depth - 1;
    undo[depth + 1] = 0; /* last iteration: undo[-1] */
  }
  printf("cleared %d (first %d)\n", depth, undo[0]);
  return 0;
}
|};
    mk ~id:"ST-W17" ~project:"right-align pad"
      ~description:"padding loop starts one before the buffer"
      ~category:(oob Write Underflow Stack)
      {|
int main(void) {
  char text[8] = "42";
  int len = 2;
  /* shift right so the text is right-aligned in 8 columns */
  for (int i = len; i >= 0; i--) {
    text[i + 5] = text[i];
  }
  for (int i = 0; i < 5; i++) { text[i - 1] = ' '; } /* i = 0: text[-1] */
  printf("[%s]\n", text);
  return 0;
}
|};
  ]
