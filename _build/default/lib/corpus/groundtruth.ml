(** Ground-truth metadata for the bug corpus.

    The corpus plays the role of the paper's 63 small GitHub projects
    with 68 bugs: each program is a small, self-contained C program with
    exactly one known memory error, annotated with the classification the
    paper's Tables 1–2 use (category; and for out-of-bounds accesses:
    read/write, underflow/overflow, and the memory kind). *)

type access = Read | Write
type direction = Underflow | Overflow
type storage = Stack | Heap | Global | Main_args

type oob_info = { access : access; direction : direction; storage : storage }

type category =
  | Oob of oob_info
  | Null_dereference
  | Use_after_free
  | Varargs

(** Which of the paper's §4.1 case-study classes a bug belongs to, if
    any; these are the 8 bugs ASan and Valgrind both miss, plus the
    marker for the four bugs Clang -O3 folds away (ASan 60 -> 56). *)
type special =
  | Main_args_oob        (** case 1: uninstrumented main() arguments *)
  | Missing_interceptor  (** case 2: strtok / printf("%ld") gaps *)
  | Backend_folded       (** case 3: folded away even at -O0 *)
  | Beyond_redzone       (** case 4: jumps over the redzone *)
  | Missing_vararg       (** case 5: non-existent variadic argument *)
  | O3_folded            (** §4.1: found by ASan -O0 but not -O3 *)

type program = {
  id : string;
  project : string;      (** flavour: the kind of "hobby project" it is *)
  description : string;
  category : category;
  source : string;
  argv : string list;
  input : string;
  special : special option;
  fixed : string option;
      (** the repaired program, where we wrote one (the paper's authors
          submitted fixes upstream); must run clean under every engine *)
}

let category_name = function
  | Oob _ -> "buffer overflow"
  | Null_dereference -> "NULL dereference"
  | Use_after_free -> "use-after-free"
  | Varargs -> "varargs"

let mk ?(argv = [ "prog" ]) ?(input = "") ?special ?fixed ~id ~project
    ~description ~category source =
  { id; project; description; category; source; argv; input; special; fixed }

let oob access direction storage = Oob { access; direction; storage }
