(** The performance benchmarks (paper §4.2–4.3): the Computer Language
    Benchmarks Game programs the paper uses, plus whetstone and a hello
    program for the start-up measurement, rewritten in the supported C
    subset with problem sizes scaled for interpretation.

    [fastaredux] is the *fixed* version: the paper found the original's
    probability table failing to reach 1.00 by a rounding error (an
    out-of-bounds loop) and fixed it upstream; like the authors we
    benchmark the fix.

    [meteor] is a board-puzzle substitute: counting domino tilings of a
    5x6 board by exact-cover depth-first search.  The original meteor
    puzzle (pentominoes on a hex board) is ~500 lines of bit-twiddling;
    this keeps the same workload character (recursive search over board
    masks, many small function calls — what Fig. 15's warm-up needs)
    at a fraction of the code. *)

type bench = {
  b_name : string;
  b_source : string;
  b_description : string;
}

let hello =
  {
    b_name = "hello";
    b_description = "start-up cost probe (paper §4.2)";
    b_source = {|
int main(void) {
  printf("Hello, World!\n");
  return 0;
}
|};
  }

let binarytrees =
  {
    b_name = "binarytrees";
    b_description = "allocation-intensive tree building (ASan 14x, Valgrind 58x in the paper)";
    b_source = {|
struct tn { struct tn *left; struct tn *right; };

struct tn *make_node(struct tn *l, struct tn *r) {
  struct tn *n = (struct tn *)malloc(sizeof(struct tn));
  n->left = l;
  n->right = r;
  return n;
}

struct tn *build(int depth) {
  if (depth <= 0) { return make_node(0, 0); }
  return make_node(build(depth - 1), build(depth - 1));
}

int check(struct tn *n) {
  if (n->left == 0) { return 1; }
  return 1 + check(n->left) + check(n->right);
}

void drop(struct tn *n) {
  if (n->left != 0) { drop(n->left); drop(n->right); }
  free(n);
}

int main(void) {
  int max_depth = 7;
  int total = 0;
  for (int depth = 4; depth <= max_depth; depth += 2) {
    int iterations = 1 << (max_depth - depth + 4);
    for (int i = 0; i < iterations; i++) {
      struct tn *t = build(depth);
      total += check(t);
      drop(t);
    }
  }
  struct tn *long_lived = build(max_depth);
  printf("total %d longlived %d\n", total, check(long_lived));
  drop(long_lived);
  return 0;
}
|};
  }

let fannkuchredux =
  {
    b_name = "fannkuchredux";
    b_description = "permutation flipping, pure integer/array work";
    b_source = {|
int main(void) {
  int n = 7;
  int perm[16];
  int perm1[16];
  int count[16];
  int max_flips = 0;
  int checksum = 0;
  int perm_count = 0;
  for (int i = 0; i < n; i++) { perm1[i] = i; }
  int r = n;
  while (1) {
    while (r != 1) { count[r - 1] = r; r--; }
    for (int i = 0; i < n; i++) { perm[i] = perm1[i]; }
    int flips = 0;
    int k = perm[0];
    while (k != 0) {
      for (int i = 0, j = k; i < j; i++, j--) {
        int t = perm[i];
        perm[i] = perm[j];
        perm[j] = t;
      }
      flips++;
      k = perm[0];
    }
    if (flips > max_flips) { max_flips = flips; }
    if (perm_count % 2 == 0) { checksum += flips; } else { checksum -= flips; }
    while (1) {
      if (r == n) {
        printf("%d\nPfannkuchen(%d) = %d\n", checksum, n, max_flips);
        return 0;
      }
      int p0 = perm1[0];
      for (int i = 0; i < r; i++) { perm1[i] = perm1[i + 1]; }
      perm1[r] = p0;
      count[r] = count[r] - 1;
      if (count[r] > 0) { break; }
      r++;
    }
    perm_count++;
  }
}
|};
  }

let fasta =
  {
    b_name = "fasta";
    b_description = "pseudo-random DNA sequence generation (cumulative probabilities)";
    b_source = {|
int seed = 42;

double gen_random(double max) {
  int IM = 139968;
  int IA = 3877;
  int IC = 29573;
  seed = (seed * IA + IC) % IM;
  return max * seed / IM;
}

struct amino { char c; double p; };

struct amino iub[15];
struct amino homo[4];

void fill_iub(void) {
  const char *codes = "acgtBDHKMNRSVWY";
  double probs[15] = {0.27, 0.12, 0.12, 0.27, 0.02, 0.02, 0.02, 0.02,
                      0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02};
  for (int i = 0; i < 15; i++) { iub[i].c = codes[i]; iub[i].p = probs[i]; }
  homo[0].c = 'a'; homo[0].p = 0.3029549426680;
  homo[1].c = 'c'; homo[1].p = 0.1979883004921;
  homo[2].c = 'g'; homo[2].p = 0.1975473066391;
  homo[3].c = 't'; homo[3].p = 0.3015094502008;
}

void make_cumulative(struct amino *table, int n) {
  double cp = 0.0;
  for (int i = 0; i < n; i++) {
    cp = cp + table[i].p;
    table[i].p = cp;
  }
}

void make_random_fasta(const char *id, struct amino *table, int n, int count) {
  printf(">%s\n", id);
  int line = 0;
  char buf[64];
  for (int i = 0; i < count; i++) {
    double r = gen_random(1.0);
    int k = 0;
    while (k < n - 1 && table[k].p < r) { k++; }
    buf[line] = table[k].c;
    line++;
    if (line == 60) { buf[line] = '\0'; puts(buf); line = 0; }
  }
  if (line > 0) { buf[line] = '\0'; puts(buf); }
}

void make_repeat_fasta(const char *id, const char *alu, int count) {
  printf(">%s\n", id);
  int len = (int)strlen(alu);
  int pos = 0;
  int line = 0;
  char buf[64];
  for (int i = 0; i < count; i++) {
    buf[line] = alu[pos];
    pos++;
    if (pos == len) { pos = 0; }
    line++;
    if (line == 60) { buf[line] = '\0'; puts(buf); line = 0; }
  }
  if (line > 0) { buf[line] = '\0'; puts(buf); }
}

int main(void) {
  const char *alu =
      "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGG"
      "GAGGCCGAGGCGGGCGGATCACCTGAGGTCAGGAGTTCGAGA";
  int n = 240;
  fill_iub();
  make_cumulative(iub, 15);
  make_cumulative(homo, 4);
  make_repeat_fasta("ONE Homo sapiens alu", alu, n * 2);
  make_random_fasta("TWO IUB ambiguity codes", iub, 15, n * 3);
  make_random_fasta("THREE Homo sapiens frequency", homo, 4, n * 5);
  return 0;
}
|};
  }

let fastaredux =
  {
    b_name = "fastaredux";
    b_description = "fasta with a 4096-slot lookup table (the paper's fixed version)";
    b_source = {|
int seed = 42;

double gen_random(void) {
  int IM = 139968;
  int IA = 3877;
  int IC = 29573;
  seed = (seed * IA + IC) % IM;
  return (double)seed / IM;
}

char lookup_c[4096];

void fill_lookup(const char *codes, const double *probs, int n) {
  /* The fix the paper contributed: force the last cumulative
     probability to 1.0 so the fill loop cannot run out of bounds. */
  double cum[16];
  double cp = 0.0;
  for (int i = 0; i < n; i++) { cp = cp + probs[i]; cum[i] = cp; }
  cum[n - 1] = 1.0;
  int k = 0;
  for (int slot = 0; slot < 4096; slot++) {
    double r = (double)(slot + 1) / 4096.0;
    while (cum[k] < r) { k++; }
    lookup_c[slot] = codes[k];
  }
}

void emit(int count) {
  int line = 0;
  char buf[64];
  for (int i = 0; i < count; i++) {
    int slot = (int)(gen_random() * 4096.0);
    if (slot > 4095) { slot = 4095; }
    buf[line] = lookup_c[slot];
    line++;
    if (line == 60) { buf[line] = '\0'; puts(buf); line = 0; }
  }
  if (line > 0) { buf[line] = '\0'; puts(buf); }
}

int main(void) {
  const char *codes = "acgtBDHKMNRSVWY";
  double probs[15] = {0.27, 0.12, 0.12, 0.27, 0.02, 0.02, 0.02, 0.02,
                      0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02};
  fill_lookup(codes, probs, 15);
  printf(">TWO IUB ambiguity codes\n");
  emit(1500);
  return 0;
}
|};
  }

let mandelbrot =
  {
    b_name = "mandelbrot";
    b_description = "escape-time fractal, double-precision inner loop";
    b_source = {|
int main(void) {
  int w = 48;
  int h = 48;
  int inside = 0;
  for (int y = 0; y < h; y++) {
    for (int x = 0; x < w; x++) {
      double cr = 2.0 * x / w - 1.5;
      double ci = 2.0 * y / h - 1.0;
      double zr = 0.0;
      double zi = 0.0;
      int iter = 0;
      while (iter < 50 && zr * zr + zi * zi <= 4.0) {
        double t = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = t;
        iter++;
      }
      if (iter == 50) { inside++; }
    }
  }
  printf("P4-ish %dx%d inside=%d\n", w, h, inside);
  return 0;
}
|};
  }

let meteor =
  {
    b_name = "meteor";
    b_description = "board-puzzle exact-cover search (domino tilings of 5x6)";
    b_source = {|
/* Count domino tilings of a 5x6 board by depth-first exact cover on a
   30-bit occupancy mask -- a compact stand-in for the meteor pentomino
   puzzle with the same recursive-search profile. */

int width = 5;
int height = 6;
int solutions = 0;

int cell_bit(int x, int y) { return 1 << (y * 5 + x); }

int first_free(int board, int cells) {
  for (int i = 0; i < cells; i++) {
    if ((board & (1 << i)) == 0) { return i; }
  }
  return -1;
}

void solve(int board, int cells) {
  int at = first_free(board, cells);
  if (at < 0) { solutions++; return; }
  int x = at % 5;
  int y = at / 5;
  /* horizontal domino */
  if (x + 1 < width && (board & cell_bit(x + 1, y)) == 0) {
    solve(board | cell_bit(x, y) | cell_bit(x + 1, y), cells);
  }
  /* vertical domino */
  if (y + 1 < height && (board & cell_bit(x, y + 1)) == 0) {
    solve(board | cell_bit(x, y) | cell_bit(x, y + 1), cells);
  }
}

int main(void) {
  solutions = 0;
  solve(0, width * height);
  printf("%d solutions found\n", solutions);
  return 0;
}
|};
  }

let nbody =
  {
    b_name = "nbody";
    b_description = "planetary orbit integration, dense double math";
    b_source = {|
#define PI 3.141592653589793
#define SOLAR_MASS (4.0 * PI * PI)
#define DAYS 365.24

struct body {
  double x; double y; double z;
  double vx; double vy; double vz;
  double mass;
};

struct body bodies[5];

void init_bodies(void) {
  /* sun */
  bodies[0].x = 0.0; bodies[0].y = 0.0; bodies[0].z = 0.0;
  bodies[0].vx = 0.0; bodies[0].vy = 0.0; bodies[0].vz = 0.0;
  bodies[0].mass = SOLAR_MASS;
  /* jupiter */
  bodies[1].x = 4.84143144246472090;
  bodies[1].y = -1.16032004402742839;
  bodies[1].z = -0.103622044471123109;
  bodies[1].vx = 0.00166007664274403694 * DAYS;
  bodies[1].vy = 0.00769901118419740425 * DAYS;
  bodies[1].vz = -0.0000690460016972063023 * DAYS;
  bodies[1].mass = 0.000954791938424326609 * SOLAR_MASS;
  /* saturn */
  bodies[2].x = 8.34336671824457987;
  bodies[2].y = 4.12479856412430479;
  bodies[2].z = -0.403523417114321381;
  bodies[2].vx = -0.00276742510726862411 * DAYS;
  bodies[2].vy = 0.00499852801234917238 * DAYS;
  bodies[2].vz = 0.0000230417297573763929 * DAYS;
  bodies[2].mass = 0.000285885980666130812 * SOLAR_MASS;
  /* uranus */
  bodies[3].x = 12.8943695621391310;
  bodies[3].y = -15.1111514016986312;
  bodies[3].z = -0.223307578892655734;
  bodies[3].vx = 0.00296460137564761618 * DAYS;
  bodies[3].vy = 0.00237847173959480950 * DAYS;
  bodies[3].vz = -0.0000296589568540237556 * DAYS;
  bodies[3].mass = 0.0000436624404335156298 * SOLAR_MASS;
  /* neptune */
  bodies[4].x = 15.3796971148509165;
  bodies[4].y = -25.9193146099879641;
  bodies[4].z = 0.179258772950371181;
  bodies[4].vx = 0.00268067772490389322 * DAYS;
  bodies[4].vy = 0.00162824170038242295 * DAYS;
  bodies[4].vz = -0.0000951592254519715870 * DAYS;
  bodies[4].mass = 0.0000515138902046611451 * SOLAR_MASS;
}

void offset_momentum(void) {
  double px = 0.0;
  double py = 0.0;
  double pz = 0.0;
  for (int i = 0; i < 5; i++) {
    px += bodies[i].vx * bodies[i].mass;
    py += bodies[i].vy * bodies[i].mass;
    pz += bodies[i].vz * bodies[i].mass;
  }
  bodies[0].vx = -px / SOLAR_MASS;
  bodies[0].vy = -py / SOLAR_MASS;
  bodies[0].vz = -pz / SOLAR_MASS;
}

void advance(double dt) {
  for (int i = 0; i < 5; i++) {
    for (int j = i + 1; j < 5; j++) {
      double dx = bodies[i].x - bodies[j].x;
      double dy = bodies[i].y - bodies[j].y;
      double dz = bodies[i].z - bodies[j].z;
      double dsq = dx * dx + dy * dy + dz * dz;
      double mag = dt / (dsq * sqrt(dsq));
      bodies[i].vx -= dx * bodies[j].mass * mag;
      bodies[i].vy -= dy * bodies[j].mass * mag;
      bodies[i].vz -= dz * bodies[j].mass * mag;
      bodies[j].vx += dx * bodies[i].mass * mag;
      bodies[j].vy += dy * bodies[i].mass * mag;
      bodies[j].vz += dz * bodies[i].mass * mag;
    }
  }
  for (int i = 0; i < 5; i++) {
    bodies[i].x += dt * bodies[i].vx;
    bodies[i].y += dt * bodies[i].vy;
    bodies[i].z += dt * bodies[i].vz;
  }
}

double energy(void) {
  double e = 0.0;
  for (int i = 0; i < 5; i++) {
    e += 0.5 * bodies[i].mass
         * (bodies[i].vx * bodies[i].vx + bodies[i].vy * bodies[i].vy
            + bodies[i].vz * bodies[i].vz);
    for (int j = i + 1; j < 5; j++) {
      double dx = bodies[i].x - bodies[j].x;
      double dy = bodies[i].y - bodies[j].y;
      double dz = bodies[i].z - bodies[j].z;
      double d = sqrt(dx * dx + dy * dy + dz * dz);
      e -= bodies[i].mass * bodies[j].mass / d;
    }
  }
  return e;
}

int main(void) {
  init_bodies();
  offset_momentum();
  printf("%.9f\n", energy());
  for (int i = 0; i < 600; i++) { advance(0.01); }
  printf("%.9f\n", energy());
  return 0;
}
|};
  }

let spectralnorm =
  {
    b_name = "spectralnorm";
    b_description = "power iteration on an infinite matrix, FP heavy";
    b_source = {|
double eval_a(int i, int j) {
  return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}

void mult_av(const double *v, double *av, int n) {
  for (int i = 0; i < n; i++) {
    double s = 0.0;
    for (int j = 0; j < n; j++) { s += eval_a(i, j) * v[j]; }
    av[i] = s;
  }
}

void mult_atv(const double *v, double *atv, int n) {
  for (int i = 0; i < n; i++) {
    double s = 0.0;
    for (int j = 0; j < n; j++) { s += eval_a(j, i) * v[j]; }
    atv[i] = s;
  }
}

void mult_atav(const double *v, double *atav, double *tmp, int n) {
  mult_av(v, tmp, n);
  mult_atv(tmp, atav, n);
}

int main(void) {
  int n = 24;
  double u[32];
  double v[32];
  double tmp[32];
  for (int i = 0; i < n; i++) { u[i] = 1.0; }
  for (int i = 0; i < 10; i++) {
    mult_atav(u, v, tmp, n);
    mult_atav(v, u, tmp, n);
  }
  double vbv = 0.0;
  double vv = 0.0;
  for (int i = 0; i < n; i++) {
    vbv += u[i] * v[i];
    vv += v[i] * v[i];
  }
  printf("%.9f\n", sqrt(vbv / vv));
  return 0;
}
|};
  }

let whetstone =
  {
    b_name = "whetstone";
    b_description = "the classic synthetic mix: FP loops, transcendentals, calls";
    b_source = {|
double t = 0.499975;
double t1 = 0.50025;
double t2 = 2.0;
double e1[5];

void pa(double *e) {
  for (int j = 0; j < 6; j++) {
    e[1] = (e[1] + e[2] + e[3] - e[4]) * t;
    e[2] = (e[1] + e[2] - e[3] + e[4]) * t;
    e[3] = (e[1] - e[2] + e[3] + e[4]) * t;
    e[4] = (-e[1] + e[2] + e[3] + e[4]) / t2;
  }
}

void p3(double x, double y, double *z) {
  double x1 = x;
  double y1 = y;
  x1 = t * (x1 + y1);
  y1 = t * (x1 + y1);
  *z = (x1 + y1) / t2;
}

int main(void) {
  int loop = 6;
  int n1 = 0;
  int n2 = 12 * loop;
  int n3 = 14 * loop;
  int n6 = 29 * loop;
  int n7 = 32 * loop;
  int n8 = 89 * loop;
  int n10 = 9 * loop;
  int n11 = 9 * loop;
  double x1 = 1.0;
  double x2 = -1.0;
  double x3 = -1.0;
  double x4 = -1.0;
  /* module 1: simple identifiers */
  for (int i = 0; i < n1; i++) {
    x1 = (x1 + x2 + x3 - x4) * t;
    x2 = (x1 + x2 - x3 + x4) * t;
    x3 = (x1 - x2 + x3 + x4) * t;
    x4 = (-x1 + x2 + x3 + x4) * t;
  }
  /* module 2: array elements */
  e1[1] = 1.0; e1[2] = -1.0; e1[3] = -1.0; e1[4] = -1.0;
  for (int i = 0; i < n2; i++) {
    e1[1] = (e1[1] + e1[2] + e1[3] - e1[4]) * t;
    e1[2] = (e1[1] + e1[2] - e1[3] + e1[4]) * t;
    e1[3] = (e1[1] - e1[2] + e1[3] + e1[4]) * t;
    e1[4] = (-e1[1] + e1[2] + e1[3] + e1[4]) * t;
  }
  /* module 3: array as parameter */
  for (int i = 0; i < n3; i++) { pa(e1); }
  /* module 6: integer arithmetic */
  int j = 1;
  int k = 2;
  int l = 3;
  for (int i = 0; i < n6; i++) {
    j = j * (k - j) * (l - k);
    k = l * k - (l - j) * k;
    l = (l - k) * (k + j);
    e1[l - 2] = j + k + l;
    e1[k - 2] = j * k * l;
  }
  /* module 7: trig */
  double x = 0.5;
  double y = 0.5;
  for (int i = 0; i < n7; i++) {
    x = t * atan(t2 * sin(x) * cos(x) / (cos(x + y) + cos(x - y) - 1.0));
    y = t * atan(t2 * sin(y) * cos(y) / (cos(x + y) + cos(x - y) - 1.0));
  }
  /* module 8: procedure calls */
  x = 1.0;
  y = 1.0;
  double z = 1.0;
  for (int i = 0; i < n8; i++) { p3(x, y, &z); }
  /* module 10: integer arithmetic */
  j = 2;
  k = 3;
  for (int i = 0; i < n10; i++) {
    j = j + k;
    k = j + k;
    j = k - j;
    k = k - j - j;
  }
  /* module 11: standard functions */
  x = 0.75;
  for (int i = 0; i < n11; i++) {
    x = sqrt(exp(log(x) / t1));
  }
  printf("whetstone done x=%.6f z=%.6f j=%d\n", x, z, j);
  return 0;
}
|};
  }

(** The peak-performance suite of Fig. 16 (binarytrees is reported
    separately in the paper's text, as here). *)
let perf_suite =
  [
    fannkuchredux; fasta; fastaredux; mandelbrot; meteor; nbody; spectralnorm;
    whetstone;
  ]

let all = (hello :: binarytrees :: perf_suite)

let find name = List.find_opt (fun b -> b.b_name = name) all
