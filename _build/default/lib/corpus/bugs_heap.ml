(** Heap out-of-bounds corpus: 17 programs (8 reads / 9 writes, one
    underflow of each).  These are the bugs every tool in the comparison
    finds — heap blocks are the one place shadow-memory redzones are
    precise — so they anchor the "found by all" part of the matrix. *)

open Groundtruth

let programs =
  [
    (* ---------------- reads ---------------- *)
    mk ~id:"HP-R01" ~project:"vector sum"
      ~description:"summing loop runs one element past the allocation"
      ~category:(oob Read Overflow Heap)
      {|
int main(void) {
  int n = 6;
  int *xs = (int *)malloc(n * sizeof(int));
  for (int i = 0; i < n; i++) { xs[i] = i + 1; }
  int sum = 0;
  for (int i = 0; i <= n; i++) { sum += xs[i]; }
  printf("sum %d\n", sum);
  free(xs);
  return 0;
}
|};
    mk ~id:"HP-R02" ~project:"sliding window"
      ~description:"first window probe reads the cell before the block"
      ~category:(oob Read Underflow Heap)
      {|
int main(void) {
  int *xs = (int *)malloc(8 * sizeof(int));
  for (int i = 0; i < 8; i++) { xs[i] = i; }
  int best = 0;
  for (int i = 0; i < 8; i++) {
    int prev = xs[i - 1]; /* i = 0 reads xs[-1] */
    if (xs[i] - prev > best) { best = xs[i] - prev; }
  }
  printf("best %d\n", best);
  free(xs);
  return 0;
}
|};
    mk ~id:"HP-R03" ~project:"name joiner"
      ~description:"heap string filled to capacity with no NUL; strlen runs on"
      ~category:(oob Read Overflow Heap)
      {|
int main(void) {
  char *buf = (char *)malloc(4);
  buf[0] = 'a'; buf[1] = 'b'; buf[2] = 'c'; buf[3] = 'd';
  printf("len %d\n", (int)strlen(buf));
  free(buf);
  return 0;
}
|};
    mk ~id:"HP-R04" ~project:"csv column"
      ~description:"column index from the header row is off by one"
      ~category:(oob Read Overflow Heap)
      {|
int main(void) {
  int cols = 3;
  double *row = (double *)malloc(cols * sizeof(double));
  row[0] = 1.5; row[1] = 2.5; row[2] = 3.5;
  double last = row[cols]; /* should be cols - 1 */
  printf("last %.1f\n", last);
  free(row);
  return 0;
}
|};
    mk ~id:"HP-R05" ~project:"substring scan"
      ~description:"memcmp length exceeds the remaining bytes"
      ~category:(oob Read Overflow Heap)
      {|
int main(void) {
  char *text = (char *)malloc(8);
  strcpy(text, "abcdefg");
  /* compare 6 bytes starting at offset 4: the first four match
     ("efg" plus NUL), so the scan reaches text[8..9] */
  int r = memcmp(text + 4, "efg\0qz", 6);
  printf("cmp %d\n", r);
  free(text);
  return 0;
}
|};
    mk ~id:"HP-R06" ~project:"shrink cache"
      ~description:"stale length used after realloc shrank the block"
      ~category:(oob Read Overflow Heap)
      {|
int main(void) {
  int n = 10;
  long *cache = (long *)malloc(n * sizeof(long));
  for (int i = 0; i < n; i++) { cache[i] = i * 10; }
  cache = (long *)realloc(cache, 4 * sizeof(long));
  long sum = 0;
  for (int i = 0; i < n; i++) { sum += cache[i]; } /* n is stale */
  printf("sum %ld\n", sum);
  free(cache);
  return 0;
}
|};
    mk ~id:"HP-R07" ~project:"packet view"
      ~description:"reads a 4-byte field at the last byte of the payload"
      ~category:(oob Read Overflow Heap)
      {|
int main(void) {
  unsigned char *pkt = (unsigned char *)malloc(9);
  memset(pkt, 7, 9);
  /* field at offset 8 is documented as 4 bytes; only 1 remains */
  int *field = (int *)(pkt + 8);
  printf("field %d\n", *field);
  free(pkt);
  return 0;
}
|};
    mk ~id:"HP-R08" ~project:"tree mirror"
      ~description:"child index 2*i+2 escapes the array-backed tree"
      ~category:(oob Read Overflow Heap)
      {|
int main(void) {
  int n = 7;
  int *tree = (int *)malloc(n * sizeof(int));
  for (int i = 0; i < n; i++) { tree[i] = i; }
  int sum = 0;
  for (int i = 0; i < n; i++) {
    if (2 * i + 1 <= n) { sum += tree[2 * i + 1]; } /* <= lets 7 through */
  }
  printf("sum %d\n", sum);
  free(tree);
  return 0;
}
|};
    (* ---------------- writes ---------------- *)
    mk ~id:"HP-W01" ~project:"string dup"
      ~description:"malloc(strlen) without the +1; strcpy writes the NUL past"
      ~category:(oob Write Overflow Heap)
      {|
int main(void) {
  const char *src = "hello world";
  char *copy = (char *)malloc(strlen(src)); /* missing + 1 */
  strcpy(copy, src);
  printf("%c%c\n", copy[0], copy[1]);
  free(copy);
  return 0;
}
|};
    mk ~id:"HP-W02" ~project:"fill table"
      ~description:"initialization loop uses <= on the element count"
      ~category:(oob Write Overflow Heap)
      {|
int main(void) {
  int n = 5;
  int *t = (int *)malloc(n * sizeof(int));
  for (int i = 0; i <= n; i++) { t[i] = -1; }
  printf("t0 %d\n", t[0]);
  free(t);
  return 0;
}
|};
    mk ~id:"HP-W03" ~project:"zero buffer"
      ~description:"memset size includes a header that is not there"
      ~category:(oob Write Overflow Heap)
      {|
int main(void) {
  char *blob = (char *)malloc(16);
  memset(blob, 0, 16 + 4); /* +4 for a 'header' that was never allocated */
  printf("%d\n", blob[0]);
  free(blob);
  return 0;
}
|};
    mk ~id:"HP-W04" ~project:"ring writer"
      ~description:"producer writes the slot before the buffer on wrap"
      ~category:(oob Write Underflow Heap)
      {|
int main(void) {
  int *ring = (int *)malloc(4 * sizeof(int));
  int w = 0;
  for (int i = 0; i < 3; i++) {
    w = w - 1;            /* decrement-then-wrap, wrongly ordered */
    if (w < -1) { w = 2; }
    ring[w] = i;          /* first iteration writes ring[-1] */
  }
  printf("%d\n", ring[0]);
  free(ring);
  return 0;
}
|};
    mk ~id:"HP-W05" ~project:"report line"
      ~description:"sprintf output larger than the exact-size heap buffer"
      ~category:(oob Write Overflow Heap)
      {|
int main(void) {
  char *line = (char *)malloc(10);
  sprintf(line, "%s: %d", "records", 123456);
  printf("%s\n", line);
  free(line);
  return 0;
}
|};
    mk ~id:"HP-W06" ~project:"grid transpose"
      ~description:"row and column counts swapped in the write index"
      ~category:(oob Write Overflow Heap)
      {|
int main(void) {
  int rows = 2;
  int cols = 5;
  int *g = (int *)malloc(rows * cols * sizeof(int));
  for (int r = 0; r < cols; r++) {       /* swapped bounds */
    for (int c = 0; c < rows; c++) {
      g[r * cols + c] = r + c;           /* r up to 4: index up to 21 */
    }
  }
  printf("%d\n", g[0]);
  free(g);
  return 0;
}
|};
    mk ~id:"HP-W07" ~project:"int list"
      ~description:"allocates n bytes but stores n ints"
      ~category:(oob Write Overflow Heap)
      {|
int main(void) {
  int n = 6;
  int *xs = (int *)malloc(n); /* should be n * sizeof(int) */
  for (int i = 0; i < n; i++) { xs[i] = i; }
  printf("%d\n", xs[0]);
  free(xs);
  return 0;
}
|};
    mk ~id:"HP-W08" ~project:"tag appender"
      ~description:"strcat beyond the allocation by the suffix length"
      ~category:(oob Write Overflow Heap)
      {|
int main(void) {
  char *s = (char *)malloc(8);
  strcpy(s, "item-01");
  strcat(s, "-done");  /* 7 + 5 + NUL = 13 > 8 */
  printf("%s\n", s);
  free(s);
  return 0;
}
|};
    mk ~id:"HP-W09" ~project:"sample decimator"
      ~description:"output size computed with integer division rounding down"
      ~category:(oob Write Overflow Heap)
      {|
int main(void) {
  int n = 7;
  int *out = (int *)malloc((n / 2) * sizeof(int)); /* 3 slots */
  int w = 0;
  for (int i = 0; i < n; i += 2) { out[w++] = i; } /* writes 4 */
  printf("wrote %d\n", w);
  free(out);
  return 0;
}
|};
  ]
