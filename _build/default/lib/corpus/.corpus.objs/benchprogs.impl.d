lib/corpus/benchprogs.ml: List
