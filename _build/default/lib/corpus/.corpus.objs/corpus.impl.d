lib/corpus/corpus.ml: Bugs_global Bugs_heap Bugs_misc Bugs_stack Groundtruth List
