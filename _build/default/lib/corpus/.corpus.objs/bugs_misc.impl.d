lib/corpus/bugs_misc.ml: Groundtruth
