lib/corpus/bugs_stack.ml: Groundtruth
