lib/corpus/bugs_heap.ml: Groundtruth
