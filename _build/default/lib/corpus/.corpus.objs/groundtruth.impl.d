lib/corpus/groundtruth.ml:
