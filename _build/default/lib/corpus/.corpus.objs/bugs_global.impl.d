lib/corpus/bugs_global.ml: Groundtruth
