lib/jit/simulate.ml: Array Benchprogs Costmodel Engine Float Hashtbl Interp Irfunc Irmod List Loader Option Pipeline Prng Stats Verify
