lib/jit/costmodel.ml: Hashtbl Interp Nexec
