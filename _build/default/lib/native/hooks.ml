(** Engine hook points.  The plain native engine uses [default]; the
    sanitizer simulators (lib/sanitizers) install closures here.  This
    mirrors how the real tools attach to a native process: ASan through
    compile-time-inserted checks ([on_sancheck]) plus intercepted
    allocation and libc entry points; Valgrind/Memcheck through dynamic
    per-access instrumentation ([on_load]/[on_store]) plus its own
    allocator wrappers. *)

type report = { tool : string; kind : string; message : string }

exception Sanitizer_report of report

type t = {
  tool_name : string;
  (* Binary instrumentation sees *all* code, including the precompiled
     libc (Valgrind); compile-time instrumentation does not (ASan).  When
     true, the native libc routes its own memory accesses through
     [on_load]/[on_store], and string functions run in their "replaced"
     byte-wise form (Valgrind redirects word-wise strlen and friends). *)
  mutable sees_libc : bool;
  (* Compile-time-inserted checks (ASan): run for Sancheck instructions. *)
  mutable on_sancheck : Instr.access_kind -> int64 -> int -> unit;
  (* Dynamic instrumentation (Memcheck): run on *every* access.  The
     store hook receives the stored value's definedness (V-bits). *)
  mutable on_load : int64 -> int -> unit;
  mutable on_store : int64 -> int -> bool -> unit;
  (* Notification that a global was laid out at [addr, addr+size);
     [zero_init] distinguishes tentative/zero-initialized globals, which
     ASan only instruments under -fno-common. *)
  mutable on_global : int64 -> int -> zero_init:bool -> unit;
  (* Allocator wrappers.  [None] means: use the plain native allocator. *)
  mutable malloc : (int -> int64) option;
  mutable free : (int64 -> unit) option;
  (* Usable payload size of a block the tool's allocator handed out (the
     tool wraps realloc and knows exact sizes; the plain allocator falls
     back to its header). *)
  mutable usable_size : int64 -> int option;
  (* Stack frames: padding inserted around every alloca, and
     notifications to poison/unpoison. *)
  mutable alloca_padding : int;
  mutable on_alloca : int64 -> int -> unit;
  mutable on_frame_exit : lo:int64 -> hi:int64 -> unit;
  (* Value definedness (Memcheck V-bits): whether a load yields defined
     data, and the report when undefined data decides a branch or
     reaches output. *)
  mutable load_defined : int64 -> int -> bool;
  mutable on_undef_use : string -> unit;
  (* Libc interception: if the tool intercepts [name], it validates
     pointer arguments before the native implementation runs. *)
  mutable intercept : string -> int64 list -> unit;
}

let default ~tool_name : t =
  {
    tool_name;
    sees_libc = false;
    on_sancheck = (fun _ _ _ -> ());
    on_load = (fun _ _ -> ());
    on_store = (fun _ _ _ -> ());
    on_global = (fun _ _ ~zero_init:_ -> ());
    malloc = None;
    free = None;
    usable_size = (fun _ -> None);
    alloca_padding = 0;
    on_alloca = (fun _ _ -> ());
    on_frame_exit = (fun ~lo:_ ~hi:_ -> ());
    load_defined = (fun _ _ -> true);
    on_undef_use = (fun _ -> ());
    intercept = (fun _ _ -> ());
  }

let report ~tool ~kind fmt =
  Format.kasprintf
    (fun message -> raise (Sanitizer_report { tool; kind; message }))
    fmt
