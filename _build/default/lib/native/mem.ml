(** The flat-memory native execution model: one linear address space, as
    the machine gives a process.  This is the substrate that Clang-style
    compilation targets in this reproduction and that the sanitizer
    simulators instrument.  Errors are *not defined* here: an
    out-of-bounds store silently corrupts a neighbour, a wild access
    outside the mapped range raises a simulated SIGSEGV — exactly the
    behaviours the paper's P1–P4 arguments rest on. *)

exception Segfault of int64

(* Address-space layout (16 MiB), LP64-flavoured but compact:
   page 0 unmapped; globals; heap growing up; stack growing down from
   [stack_top]; the argv/envp area *above* the stack, written by the
   "kernel" before any instrumented code runs (paper case study 1). *)
let null_guard = 0x1000
let globals_base = 0x0001_0000
let heap_base = 0x0010_0000
let heap_limit = 0x00D0_0000
let stack_top = 0x00E8_0000
let stack_limit = 0x00D0_0000
let argv_base = 0x00E8_0000
let func_base = 0x00F0_0000 (* synthetic code addresses for function ptrs *)
let mem_size = 0x0100_0000

type t = {
  bytes : Bytes.t;
  mutable brk : int;      (** heap bump pointer *)
  mutable global_top : int;
  mutable argv_top : int;
}

let create () =
  {
    bytes = Bytes.make mem_size '\000';
    brk = heap_base;
    global_top = globals_base;
    argv_top = argv_base;
  }

let check mem addr size =
  let a = Int64.to_int addr in
  if a < null_guard || a + size > mem_size || size < 0 then
    raise (Segfault addr);
  ignore mem

let load_int mem addr ~size : int64 =
  check mem addr size;
  let a = Int64.to_int addr in
  match size with
  | 1 -> Int64.of_int (Char.code (Bytes.get mem.bytes a))
  | 2 -> Int64.of_int (Bytes.get_uint16_le mem.bytes a)
  | 4 -> Int64.of_int32 (Bytes.get_int32_le mem.bytes a)
  | 8 -> Bytes.get_int64_le mem.bytes a
  | _ -> invalid_arg "Mem.load_int: bad size"

let store_int mem addr ~size (v : int64) : unit =
  check mem addr size;
  let a = Int64.to_int addr in
  match size with
  | 1 -> Bytes.set mem.bytes a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le mem.bytes a (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le mem.bytes a (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le mem.bytes a v
  | _ -> invalid_arg "Mem.store_int: bad size"

let load_float mem addr ~size : float =
  let bits = load_int mem addr ~size in
  if size = 4 then Int32.float_of_bits (Int64.to_int32 bits)
  else Int64.float_of_bits bits

let store_float mem addr ~size (v : float) : unit =
  let bits =
    if size = 4 then Int64.of_int32 (Int32.bits_of_float v)
    else Int64.bits_of_float v
  in
  store_int mem addr ~size bits

(** Read a NUL-terminated string (no checks beyond the address space —
    this is how the native model overruns silently). *)
let read_cstring mem addr : string =
  let buf = Buffer.create 16 in
  let rec go a =
    let c = load_int mem a ~size:1 in
    if c <> 0L then begin
      Buffer.add_char buf (Char.chr (Int64.to_int c));
      go (Int64.add a 1L)
    end
  in
  go addr;
  Buffer.contents buf

let write_string mem addr (s : string) : unit =
  String.iteri
    (fun i c ->
      store_int mem (Int64.add addr (Int64.of_int i)) ~size:1
        (Int64.of_int (Char.code c)))
    s

(** Reserve [size] bytes in the globals region, [gap] poisonable padding
    after it (the ASan engine lays out globals with redzone gaps). *)
let alloc_global mem ~size ~align ~gap : int64 =
  let base = Util.align_up mem.global_top (max align 1) in
  mem.global_top <- base + size + gap;
  if mem.global_top > heap_base then failwith "Mem: globals region overflow";
  Int64.of_int base

(** Reserve bytes in the argv/envp area above the stack. *)
let alloc_argv_area mem ~size : int64 =
  let base = Util.align_up mem.argv_top 8 in
  mem.argv_top <- base + size;
  if mem.argv_top > func_base then failwith "Mem: argv region overflow";
  Int64.of_int base
