lib/native/nexec.ml: Alloc Array Buffer Hashtbl Hooks Instr Int32 Int64 Irfunc Irmod Irtype Lazy List Mem Nlibc Nvalue String
