lib/native/nvalue.ml: Int64
