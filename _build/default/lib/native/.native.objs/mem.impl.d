lib/native/mem.ml: Buffer Bytes Char Int32 Int64 String Util
