lib/native/hooks.ml: Format Instr
