lib/native/alloc.ml: Int64 List Mem Util
