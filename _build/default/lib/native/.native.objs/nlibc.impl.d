lib/native/nlibc.ml: Alloc Buffer Bytes Char Float Hooks Int64 List Mem Nvalue Printf String
