(** Register values of the native executor.  Pointers are plain 64-bit
    addresses — there is nothing managed here.  Every value carries a
    definedness flag: the minimal V-bit propagation that lets the
    Memcheck simulator report "conditional jump depends on uninitialised
    value(s)" without a full binary-translation framework. *)

type t =
  | NI of int64 * bool  (** integer/pointer value, defined? *)
  | NF of float * bool

exception Prog_exit of int
exception Native_trap of string  (** SIGFPE and friends *)

let int_ v = NI (v, true)
let float_ v = NF (v, true)
let zero = NI (0L, true)

let as_int = function NI (v, _) -> v | NF (f, _) -> Int64.of_float f
let as_float = function NF (f, _) -> f | NI (v, _) -> Int64.to_float v
let defined = function NI (_, d) | NF (_, d) -> d

let with_def d = function NI (v, _) -> NI (v, d) | NF (f, _) -> NF (f, d)
