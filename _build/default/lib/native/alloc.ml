(** A first-fit free-list malloc on the flat memory.  Like a production
    allocator it keeps a 16-byte header in front of every block — which
    is precisely why a native double free or invalid free corrupts the
    allocator state silently instead of failing cleanly. *)

let header_size = 16
let magic_live = 0x11AABBCC_11AABBCCL
let magic_free = 0x22DDEEFF_22DDEEFFL

type t = {
  mem : Mem.t;
  mutable free_list : int64 list;  (** addresses of freed block headers *)
  mutable live_blocks : int;
  mutable total_allocated : int;
}

let create mem = { mem; free_list = []; live_blocks = 0; total_allocated = 0 }

let block_size t header = Int64.to_int (Mem.load_int t.mem header ~size:8)

let malloc t (size : int) : int64 =
  let size = max size 1 in
  let rounded = Util.align_up size 16 in
  (* First fit in the free list. *)
  let rec find acc = function
    | [] -> None
    | h :: rest ->
      if block_size t h >= rounded then begin
        t.free_list <- List.rev_append acc rest;
        Some h
      end
      else find (h :: acc) rest
  in
  let header =
    match find [] t.free_list with
    | Some h -> h
    | None ->
      let h = t.mem.Mem.brk in
      let next = h + header_size + rounded in
      if next > Mem.heap_limit then raise (Mem.Segfault (Int64.of_int h));
      t.mem.Mem.brk <- next;
      let h64 = Int64.of_int h in
      Mem.store_int t.mem h64 ~size:8 (Int64.of_int rounded);
      h64
  in
  Mem.store_int t.mem (Int64.add header 8L) ~size:8 magic_live;
  t.live_blocks <- t.live_blocks + 1;
  t.total_allocated <- t.total_allocated + rounded;
  Int64.add header (Int64.of_int header_size)

(** Native free: no checks whatsoever.  Freeing a stack pointer or
    freeing twice corrupts the free list — undefined behaviour, faithfully
    reproduced.  Returns the block's payload size when the header looked
    sane (used by the sanitizer wrappers). *)
let free t (p : int64) : int option =
  if p = 0L then None
  else begin
    let header = Int64.sub p (Int64.of_int header_size) in
    let size =
      try Some (block_size t header) with Mem.Segfault _ -> None
    in
    (try Mem.store_int t.mem (Int64.add header 8L) ~size:8 magic_free
     with Mem.Segfault _ -> ());
    t.free_list <- header :: t.free_list;
    t.live_blocks <- t.live_blocks - 1;
    size
  end

(** Is [p] the start of a live heap block?  (Used only by the *sanitizer*
    wrappers — the native allocator itself never checks.) *)
let block_status t (p : int64) : [ `Live of int | `Freed of int | `Unknown ] =
  let header = Int64.sub p (Int64.of_int header_size) in
  if Int64.to_int header < Mem.heap_base || Int64.to_int header >= t.mem.Mem.brk
  then `Unknown
  else begin
    try
      let size = block_size t header in
      let magic = Mem.load_int t.mem (Int64.add header 8L) ~size:8 in
      if magic = magic_live then `Live size
      else if magic = magic_free then `Freed size
      else `Unknown
    with Mem.Segfault _ -> `Unknown
  end
