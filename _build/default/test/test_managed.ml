(** Tests for the managed object model (paper §3.2–3.3): bounds,
    liveness, free checks, pointer cookies, and allocation mementos. *)

let alloc_i32_array ?(storage = Merror.Stack) n =
  Mobject.alloc ~storage
    ~mty:(Irtype.MArray (Irtype.MScalar Irtype.I32, n))
    (n * 4)

let addr obj moff = { Mobject.obj; moff }

let expect_category cat f =
  try
    f ();
    Alcotest.fail ("expected " ^ Merror.category_name cat)
  with Merror.Error (got, _) ->
    Alcotest.(check string) "error category" (Merror.category_name cat)
      (Merror.category_name got)

let oob access =
  Merror.Out_of_bounds
    { access; offset = 0; size = 0; obj_size = 0; storage = Merror.Stack }

(* ---------------- bounds ---------------- *)

let test_in_bounds_roundtrip () =
  let obj = alloc_i32_array 4 in
  Mobject.store_int (addr obj 8) ~size:4 0x1234L "t";
  Alcotest.(check int64) "read back" 0x1234L
    (Mobject.load_int (addr obj 8) ~size:4 "t")

let test_read_past_end () =
  let obj = alloc_i32_array 4 in
  expect_category (oob Merror.Read) (fun () ->
      ignore (Mobject.load_int (addr obj 16) ~size:4 "t"))

let test_write_past_end () =
  let obj = alloc_i32_array 4 in
  expect_category (oob Merror.Write) (fun () ->
      Mobject.store_int (addr obj 13) ~size:4 1L "t")

let test_negative_offset () =
  let obj = alloc_i32_array 4 in
  expect_category (oob Merror.Read) (fun () ->
      ignore (Mobject.load_int (addr obj (-1)) ~size:1 "t"))

let test_wide_read_of_narrow_object () =
  (* the printf("%ld", int) mechanism: 8-byte read of a 4-byte object *)
  let obj =
    Mobject.alloc ~storage:Merror.Vararg ~mty:(Irtype.MScalar Irtype.I32) 4
  in
  expect_category (oob Merror.Read) (fun () ->
      ignore (Mobject.load_int (addr obj 0) ~size:8 "t"))

let bounds_props =
  [
    QCheck.Test.make ~name:"valid accesses never raise"
      QCheck.(pair (int_range 1 64) (int_range 0 1000))
      (fun (n, seed) ->
        let rng = Prng.create seed in
        let obj = alloc_i32_array n in
        let ok = ref true in
        for _ = 1 to 20 do
          let size = Prng.pick rng [ 1; 2; 4; 8 ] in
          if (n * 4) - size >= 0 then begin
            let off = Prng.int rng ((n * 4) - size + 1) in
            try
              Mobject.store_int (addr obj off) ~size 42L "p";
              ignore (Mobject.load_int (addr obj off) ~size "p")
            with Merror.Error _ -> ok := false
          end
        done;
        !ok);
    QCheck.Test.make ~name:"out-of-bounds accesses always raise"
      QCheck.(pair (int_range 1 64) (int_range 0 1000))
      (fun (n, seed) ->
        let rng = Prng.create seed in
        let obj = alloc_i32_array n in
        let ok = ref true in
        for _ = 1 to 20 do
          let size = Prng.pick rng [ 1; 2; 4; 8 ] in
          let off =
            if Prng.int rng 2 = 0 then (n * 4) - size + 1 + Prng.int rng 32
            else - (1 + Prng.int rng 32)
          in
          match Mobject.load_int (addr obj off) ~size "p" with
          | _ -> ok := false
          | exception Merror.Error (Merror.Out_of_bounds _, _) -> ()
          | exception Merror.Error _ -> ok := false
        done;
        !ok);
  ]

(* ---------------- liveness / free ---------------- *)

let heap = Mheap.create ()

let test_use_after_free () =
  let obj = Mheap.malloc heap ~site:1 16 in
  let p = Mobject.Pobj (addr obj 0) in
  Mheap.free heap p "t";
  expect_category Merror.Use_after_free (fun () ->
      ignore (Mobject.load_int (addr obj 0) ~size:4 "t"))

let test_double_free () =
  let obj = Mheap.malloc heap ~site:2 16 in
  let p = Mobject.Pobj (addr obj 0) in
  Mheap.free heap p "t";
  expect_category Merror.Double_free (fun () -> Mheap.free heap p "t")

let test_invalid_free_stack () =
  let obj = alloc_i32_array 4 in
  expect_category (Merror.Invalid_free "") (fun () ->
      Mheap.free heap (Mobject.Pobj (addr obj 0)) "t")

let test_invalid_free_interior () =
  let obj = Mheap.malloc heap ~site:3 16 in
  expect_category (Merror.Invalid_free "") (fun () ->
      Mheap.free heap (Mobject.Pobj (addr obj 4)) "t")

let test_free_null_ok () = Mheap.free heap Mobject.Pnull "t"

let test_leak_tracking () =
  let fresh = Mheap.create () in
  let a = Mheap.malloc fresh ~site:4 8 in
  let _b = Mheap.malloc fresh ~site:4 8 in
  Mheap.free fresh (Mobject.Pobj (addr a 0)) "t";
  Alcotest.(check int) "one leaked" 1 (List.length (Mheap.leaked fresh))

(* ---------------- pointers ---------------- *)

let test_ptr_store_load () =
  let holder = alloc_i32_array 2 in
  let target = alloc_i32_array 1 in
  Mobject.store_ptr (addr holder 0) (Mobject.Pobj (addr target 0)) "t";
  match Mobject.load_ptr (addr holder 0) "t" with
  | Mobject.Pobj a ->
    Alcotest.(check int) "same object" target.Mobject.id a.Mobject.obj.Mobject.id
  | _ -> Alcotest.fail "expected object pointer"

let test_int_store_clobbers_ptr_slot () =
  let holder = alloc_i32_array 2 in
  let target = alloc_i32_array 1 in
  Mobject.store_ptr (addr holder 0) (Mobject.Pobj (addr target 0)) "t";
  Mobject.store_int (addr holder 2) ~size:4 0xAAAAL "t";
  (* the slot is gone, but the bytes still decode through the cookie of
     the *overwritten* image only if intact; a partial overwrite yields a
     forged pointer *)
  match Mobject.load_ptr (addr holder 0) "t" with
  | Mobject.Pobj _ -> Alcotest.fail "partial overwrite must kill the pointer"
  | Mobject.Pnull | Mobject.Pfunc _ | Mobject.Pinvalid _ -> ()

let test_cookie_roundtrip () =
  let obj = alloc_i32_array 3 in
  let p = Mobject.Pobj (addr obj 4) in
  let cookie = Mobject.ptr_to_int p in
  match Mobject.int_to_ptr cookie with
  | Mobject.Pobj a ->
    Alcotest.(check int) "object survives" obj.Mobject.id a.Mobject.obj.Mobject.id;
    Alcotest.(check int) "offset survives" 4 a.Mobject.moff
  | _ -> Alcotest.fail "cookie did not round-trip"

let test_forged_int_is_invalid () =
  match Mobject.int_to_ptr 0xDEAD_0000_0042L with
  | Mobject.Pinvalid _ -> ()
  | Mobject.Pnull -> Alcotest.fail "forged pointer decoded as null"
  | _ -> Alcotest.fail "forged pointer decoded as a live object"

let test_func_cookie_roundtrip () =
  let c = Mobject.register_func_cookie "qsort" in
  match Mobject.int_to_ptr c with
  | Mobject.Pfunc "qsort" -> ()
  | _ -> Alcotest.fail "function cookie did not round-trip"

(* ---------------- strings + class names ---------------- *)

let test_read_cstring () =
  let obj = Mobject.alloc ~storage:Merror.Stack
      ~mty:(Irtype.MArray (Irtype.MScalar Irtype.I8, 8)) 8 in
  Mobject.write_bytes (addr obj 0) "hi" "t";
  Alcotest.(check string) "string read" "hi" (Mobject.read_cstring (addr obj 0) "t")

let test_unterminated_cstring_traps () =
  let obj = Mobject.alloc ~storage:Merror.Stack
      ~mty:(Irtype.MArray (Irtype.MScalar Irtype.I8, 2)) 2 in
  Mobject.write_bytes (addr obj 0) "ab" "t";
  expect_category (oob Merror.Read) (fun () ->
      ignore (Mobject.read_cstring (addr obj 0) "t"))

let test_class_names () =
  Alcotest.(check string) "stack array" "I32AutomaticArray"
    (Mobject.class_name (alloc_i32_array 4));
  Alcotest.(check string) "heap object" "I8HeapArray"
    (Mobject.class_name (Mheap.malloc heap ~site:9 8))

(* ---------------- mementos ---------------- *)

let test_allocation_mementos () =
  let h = Mheap.create () in
  let first = Mheap.malloc h ~site:42 16 in
  Alcotest.(check string) "untyped at first" "I8HeapArray"
    (Mobject.class_name first);
  Mheap.observe h first Irtype.I64;
  let second = Mheap.malloc h ~site:42 16 in
  Alcotest.(check string) "typed by the memento" "I64HeapArray"
    (Mobject.class_name second)

let test_mementos_disabled () =
  let h = Mheap.create ~mementos:false () in
  let first = Mheap.malloc h ~site:43 16 in
  Mheap.observe h first Irtype.I64;
  let second = Mheap.malloc h ~site:43 16 in
  Alcotest.(check string) "stays untyped" "I8HeapArray"
    (Mobject.class_name second)

let () =
  Alcotest.run "managed"
    [
      ( "bounds",
        [
          Alcotest.test_case "in-bounds roundtrip" `Quick test_in_bounds_roundtrip;
          Alcotest.test_case "read past end" `Quick test_read_past_end;
          Alcotest.test_case "write past end" `Quick test_write_past_end;
          Alcotest.test_case "negative offset" `Quick test_negative_offset;
          Alcotest.test_case "wide read of narrow object" `Quick
            test_wide_read_of_narrow_object;
        ]
        @ List.map QCheck_alcotest.to_alcotest bounds_props );
      ( "free",
        [
          Alcotest.test_case "use-after-free" `Quick test_use_after_free;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "invalid free of stack" `Quick test_invalid_free_stack;
          Alcotest.test_case "invalid free interior" `Quick
            test_invalid_free_interior;
          Alcotest.test_case "free(NULL)" `Quick test_free_null_ok;
          Alcotest.test_case "leak tracking" `Quick test_leak_tracking;
        ] );
      ( "pointers",
        [
          Alcotest.test_case "store/load" `Quick test_ptr_store_load;
          Alcotest.test_case "int store clobbers slot" `Quick
            test_int_store_clobbers_ptr_slot;
          Alcotest.test_case "cookie roundtrip" `Quick test_cookie_roundtrip;
          Alcotest.test_case "forged int is invalid" `Quick
            test_forged_int_is_invalid;
          Alcotest.test_case "function cookie" `Quick test_func_cookie_roundtrip;
        ] );
      ( "strings+classes",
        [
          Alcotest.test_case "read_cstring" `Quick test_read_cstring;
          Alcotest.test_case "unterminated traps" `Quick
            test_unterminated_cstring_traps;
          Alcotest.test_case "class names" `Quick test_class_names;
        ] );
      ( "mementos",
        [
          Alcotest.test_case "site typing" `Quick test_allocation_mementos;
          Alcotest.test_case "disabled" `Quick test_mementos_disabled;
        ] );
    ]
