(** Tests for the implemented §6 future-work extensions and ablations:
    uninitialized-read detection, memory-leak reporting, the -fno-common
    ASan behaviour the paper mentions, and the fixed versions of the
    case-study bugs. *)

(* ---------------- uninitialized-read detection ---------------- *)

let run ?(detect_uninit = false) ?(argv = [ "prog" ]) ?(input = "") src =
  Loader.run_source ~detect_uninit ~argv ~input src

let expect_uninit src =
  let r = run ~detect_uninit:true src in
  match r.Interp.error with
  | Some (Merror.Uninitialized_read _, _) -> ()
  | Some (c, m) ->
    Alcotest.failf "wrong error %s: %s" (Merror.category_name c) m
  | None -> Alcotest.fail "expected uninitialized-read"

let expect_clean ?(detect_uninit = true) src =
  let r = run ~detect_uninit src in
  match r.Interp.error with
  | Some (_, m) -> Alcotest.fail ("unexpected error: " ^ m)
  | None -> ()

let test_uninit_local_scalar () =
  expect_uninit "int main(void) { int x; return x + 1; }"

let test_uninit_local_array () =
  expect_uninit
    "int main(void) { int xs[4]; xs[0] = 1; xs[1] = 2; return xs[3]; }"

let test_uninit_malloc () =
  expect_uninit
    "int main(void) { int *p = (int*)malloc(8); int v = p[1]; free(p); return v; }"

let test_calloc_is_initialized () =
  expect_clean
    "int main(void) { int *p = (int*)calloc(2, 4); int v = p[1]; free(p); return v; }"

let test_initializers_count_as_writes () =
  expect_clean
    {|
int main(void) {
  int xs[4] = {1, 2};      /* partial init zero-fills the rest */
  char s[8] = "ab";
  struct { int a; int b; } pair = {1};
  return xs[3] + s[7] + pair.b;
}
|}

let test_globals_start_initialized () =
  expect_clean "int g[4]; int main(void) { return g[3]; }"

let test_realloc_preserves_init_state () =
  expect_clean
    {|
int main(void) {
  int *p = (int *)malloc(2 * sizeof(int));
  p[0] = 1; p[1] = 2;
  p = (int *)realloc(p, 4 * sizeof(int));
  int v = p[0] + p[1];
  free(p);
  return v;
}
|};
  expect_uninit
    {|
int main(void) {
  int *p = (int *)malloc(2 * sizeof(int));
  p[0] = 1;
  p = (int *)realloc(p, 4 * sizeof(int));
  int v = p[3]; /* the grown tail was never written */
  free(p);
  return v;
}
|}

let test_printf_clean_under_uninit_tracking () =
  (* the managed libc initializes everything it reads; a correct program
     must not trip the detector *)
  expect_clean
    {|
int main(void) {
  char buf[32];
  sprintf(buf, "%d-%s-%.2f", 42, "mid", 1.5);
  printf("%s\n", buf);
  return 0;
}
|}

let test_uninit_off_by_default () =
  let r = run "int main(void) { int x; return x + 1; }" in
  Alcotest.(check bool) "no error when disabled" true (r.Interp.error = None)

let test_uninit_via_engine () =
  let r =
    Engine.run ~detect_uninit:true Engine.Safe_sulong
      "int main(void) { int x; return x; }"
  in
  match r.Engine.outcome with
  | Outcome.Detected { kind = "uninitialized-read"; _ } -> ()
  | o -> Alcotest.failf "expected uninitialized-read, got %s" (Outcome.to_string o)

(* ---------------- leak reporting ---------------- *)

let test_leak_details () =
  let r =
    run
      {|
char *dup_tag(const char *s) { return strdup(s); }
int main(void) {
  char *a = dup_tag("kept");
  char *b = (char *)malloc(100);
  free(b);
  (void)a;
  return 0;
}
|}
  in
  Alcotest.(check int) "one leak" 1 r.Interp.leaks;
  match r.Interp.leak_details with
  | [ line ] ->
    Alcotest.(check bool) "names the allocating function" true
      (Util.string_contains ~needle:"strdup" line);
    Alcotest.(check bool) "gives the size" true
      (Util.string_contains ~needle:"5 bytes" line)
  | l -> Alcotest.failf "expected one detail line, got %d" (List.length l)

let test_no_leaks_when_freed () =
  let r =
    run "int main(void) { void *p = malloc(64); free(p); return 0; }"
  in
  Alcotest.(check int) "no leaks" 0 r.Interp.leaks;
  Alcotest.(check (list string)) "no details" [] r.Interp.leak_details

(* ---------------- -fno-common ablation ---------------- *)

let zero_init_global_oob =
  (* votes is zero-initialized: a "common" symbol without -fno-common *)
  {|
int votes[4];
int main(int argc, char **argv) {
  votes[argc + 3] = 1; /* one past the end */
  return votes[0];
}
|}

let test_fno_common_matters () =
  let with_flag fno_common =
    Outcome.is_detected
      (Engine.run
         ~asan_options:
           { Engine.strtok_interceptor = false; quarantine_cap = 1 lsl 18;
             fno_common }
         (Engine.Asan Pipeline.O0) zero_init_global_oob)
        .Engine.outcome
  in
  Alcotest.(check bool) "found with -fno-common (the paper's setting)" true
    (with_flag true);
  Alcotest.(check bool) "missed without -fno-common" false (with_flag false)

let test_fno_common_initialized_globals_unaffected () =
  (* initialized globals are instrumented either way *)
  let src =
    {|
int table[4] = {1, 2, 3, 4};
int main(int argc, char **argv) { return table[argc + 3]; }
|}
  in
  let with_flag fno_common =
    Outcome.is_detected
      (Engine.run
         ~asan_options:
           { Engine.strtok_interceptor = false; quarantine_cap = 1 lsl 18;
             fno_common }
         (Engine.Asan Pipeline.O0) src)
        .Engine.outcome
  in
  Alcotest.(check bool) "found with" true (with_flag true);
  Alcotest.(check bool) "found without" true (with_flag false)

(* ---------------- call tracing ---------------- *)

let test_call_trace () =
  let m =
    Loader.load_program
      {|
int add(int a, int b) { return a + b; }
int main(void) { return add(1, 2); }
|}
  in
  let st = Interp.create ~trace:true m in
  let r = Interp.run st in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("trace mentions " ^ needle) true
        (Util.string_contains ~needle r.Interp.trace_output))
    [ "-> main"; "-> add(1, 2)"; "<- add = 3"; "<- main = 3" ]

let test_trace_off_by_default () =
  let r = Loader.run_source "int main(void) { return 0; }" in
  Alcotest.(check string) "no trace" "" r.Interp.trace_output

(* ---------------- module linking ---------------- *)

let test_link_user_overrides_libc () =
  (* a program defining its own strlen wins over the libc's *)
  let r =
    Loader.run_source
      {|
size_t strlen(const char *s) { (void)s; return 999; }
int main(void) { printf("%d\n", (int)strlen("ab")); return 0; }
|}
  in
  Alcotest.(check string) "override wins" "999\n" r.Interp.output

let test_link_tentative_definitions () =
  (* 'extern FILE *stdout;' in user code must not shadow the libc's
     initialized definition *)
  let r =
    Loader.run_source
      {|
extern FILE *stdout;
int main(void) { fputs("via stdout\n", stdout); return 0; }
|}
  in
  Alcotest.(check string) "stdout survives" "via stdout\n" r.Interp.output

(* ---------------- pipeline idempotence ---------------- *)

let test_o3_idempotent () =
  List.iter
    (fun (b : Benchprogs.bench) ->
      let m = Loader.compile_user b.Benchprogs.b_source in
      ignore (Pipeline.o3 m);
      let after_once = Irmod.instr_count m in
      ignore (Pipeline.o3 m);
      Alcotest.(check int)
        (b.Benchprogs.b_name ^ ": second -O3 run changes nothing")
        after_once (Irmod.instr_count m))
    [ Benchprogs.fannkuchredux; Benchprogs.nbody; Benchprogs.meteor ]

(* ---------------- determinism ---------------- *)

(* The managed runtime uses global registries (object ids, function
   cookies); back-to-back runs must still be bit-identical. *)
let test_runs_are_deterministic () =
  let src = Benchprogs.fasta.Benchprogs.b_source in
  let run_once tool =
    let r = Engine.run tool src in
    (r.Engine.output, r.Engine.steps, Outcome.to_string r.Engine.outcome)
  in
  List.iter
    (fun tool ->
      let a = run_once tool in
      let b = run_once tool in
      Alcotest.(check bool)
        (Engine.tool_name tool ^ " deterministic")
        true (a = b))
    [
      Engine.Safe_sulong; Engine.Clang Pipeline.O3; Engine.Asan Pipeline.O0;
      Engine.Valgrind Pipeline.O0;
    ]

let test_interleaved_runs_do_not_leak_state () =
  (* run A, then B, then A again: A's results must not change *)
  let a_src = "int main(void) { int *p = (int*)malloc(8); p[2] = 1; return 0; }" in
  let b_src = Benchprogs.binarytrees.Benchprogs.b_source in
  let run_a () =
    Outcome.to_string (Engine.run Engine.Safe_sulong a_src).Engine.outcome
  in
  let first = run_a () in
  ignore (Engine.run Engine.Safe_sulong b_src);
  Alcotest.(check string) "A unchanged after B" first (run_a ())

(* ---------------- ablations report ---------------- *)

let test_ablations_table () =
  let rendered = Table.render (Ablations.table ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (Util.string_contains ~needle rendered))
    [
      "quarantine"; "strtok"; "fno-common"; "inlining";
      "identical behaviour";
    ];
  (* every flipped row must actually flip *)
  Alcotest.(check bool) "has FOUND rows" true
    (Util.string_contains ~needle:"FOUND" rendered);
  Alcotest.(check bool) "has missed rows" true
    (Util.string_contains ~needle:"missed" rendered)

(* ---------------- fixed versions of the case studies ---------------- *)

let fixed_programs =
  List.filter_map
    (fun (p : Groundtruth.program) ->
      Option.map (fun fixed -> (p, fixed)) p.Groundtruth.fixed)
    Corpus.all

let test_fixes_exist_for_all_special_bugs () =
  Alcotest.(check int) "all 8 case-study bugs have fixes" 8
    (List.length fixed_programs)

let test_fixed_versions_run_clean_everywhere () =
  List.iter
    (fun ((p : Groundtruth.program), fixed) ->
      List.iter
        (fun tool ->
          let r =
            Engine.run ~argv:p.Groundtruth.argv ~input:p.Groundtruth.input tool
              fixed
          in
          match r.Engine.outcome with
          | Outcome.Finished _ -> ()
          | o ->
            Alcotest.failf "%s (fixed) under %s: %s" p.Groundtruth.id
              (Engine.tool_name tool) (Outcome.to_string o))
        [
          Engine.Safe_sulong; Engine.Clang Pipeline.O0; Engine.Clang Pipeline.O3;
          Engine.Asan Pipeline.O0; Engine.Valgrind Pipeline.O0;
        ])
    fixed_programs

let test_fixed_output_sensible () =
  (* the GL-R02 fix rejects the out-of-range input *)
  match Corpus.find "GL-R02" with
  | Some { Groundtruth.fixed = Some fixed; input; _ } ->
    let r = Engine.run ~input Engine.Safe_sulong fixed in
    Alcotest.(check string) "rejects input 50" "out of range\n" r.Engine.output
  | _ -> Alcotest.fail "GL-R02 should carry a fix"

let () =
  Alcotest.run "extensions"
    [
      ( "uninitialized reads",
        [
          Alcotest.test_case "local scalar" `Quick test_uninit_local_scalar;
          Alcotest.test_case "local array" `Quick test_uninit_local_array;
          Alcotest.test_case "malloc'd memory" `Quick test_uninit_malloc;
          Alcotest.test_case "calloc initialized" `Quick
            test_calloc_is_initialized;
          Alcotest.test_case "initializers are writes" `Quick
            test_initializers_count_as_writes;
          Alcotest.test_case "globals initialized" `Quick
            test_globals_start_initialized;
          Alcotest.test_case "realloc preserves state" `Quick
            test_realloc_preserves_init_state;
          Alcotest.test_case "printf clean" `Quick
            test_printf_clean_under_uninit_tracking;
          Alcotest.test_case "off by default" `Quick test_uninit_off_by_default;
          Alcotest.test_case "through the engine API" `Quick
            test_uninit_via_engine;
        ] );
      ( "leak reporting",
        [
          Alcotest.test_case "details" `Quick test_leak_details;
          Alcotest.test_case "clean when freed" `Quick test_no_leaks_when_freed;
        ] );
      ( "fno-common",
        [
          Alcotest.test_case "zero-init global gated by flag" `Quick
            test_fno_common_matters;
          Alcotest.test_case "initialized globals unaffected" `Quick
            test_fno_common_initialized_globals_unaffected;
        ] );
      ( "tracing+linking+pipelines",
        [
          Alcotest.test_case "call trace" `Quick test_call_trace;
          Alcotest.test_case "trace off by default" `Quick
            test_trace_off_by_default;
          Alcotest.test_case "user overrides libc" `Quick
            test_link_user_overrides_libc;
          Alcotest.test_case "tentative definitions" `Quick
            test_link_tentative_definitions;
          Alcotest.test_case "-O3 idempotent" `Quick test_o3_idempotent;
        ] );
      ( "determinism+ablations",
        [
          Alcotest.test_case "runs are deterministic" `Slow
            test_runs_are_deterministic;
          Alcotest.test_case "no state leaks between runs" `Quick
            test_interleaved_runs_do_not_leak_state;
          Alcotest.test_case "ablations table" `Slow test_ablations_table;
        ] );
      ( "fixed case studies",
        [
          Alcotest.test_case "fixes exist" `Quick
            test_fixes_exist_for_all_special_bugs;
          Alcotest.test_case "fixed versions run clean" `Slow
            test_fixed_versions_run_clean_everywhere;
          Alcotest.test_case "fixed output sensible" `Quick
            test_fixed_output_sensible;
        ] );
    ]
