(** Safe Sulong interpreter tests: the shared semantic battery, every
    error class of the paper, the varargs machinery, and engine limits. *)

let run ?(argv = [ "prog" ]) ?(input = "") src = Loader.run_source ~argv ~input src

let check_case (c : Cases.case) () =
  let r = run ~input:c.Cases.input c.Cases.src in
  (match r.Interp.error with
  | Some (_, msg) -> Alcotest.failf "%s: unexpected error: %s" c.Cases.name msg
  | None -> ());
  Alcotest.(check string) c.Cases.name c.Cases.expected r.Interp.output

let semantic_tests =
  List.map
    (fun (c : Cases.case) -> Alcotest.test_case c.Cases.name `Quick (check_case c))
    Cases.all

(* ---------------- error detection ---------------- *)

let expect_error ?(argv = [ "prog" ]) ?(input = "") category src () =
  let r = run ~argv ~input src in
  match r.Interp.error with
  | Some (got, _) ->
    Alcotest.(check string) "category" category (Merror.category_name got)
  | None -> Alcotest.failf "expected %s, program finished" category

let detection_tests =
  [
    Alcotest.test_case "stack overflow write" `Quick
      (expect_error "out-of-bounds"
         "int main(void) { int a[3]; a[3] = 1; return 0; }");
    Alcotest.test_case "stack underflow read" `Quick
      (expect_error "out-of-bounds"
         "int main(void) { int a[3]; int i = -1; return a[i]; }");
    Alcotest.test_case "heap overflow" `Quick
      (expect_error "out-of-bounds"
         "int main(void) { int *p = (int*)malloc(8); p[2] = 1; free(p); return 0; }");
    Alcotest.test_case "global overflow" `Quick
      (expect_error "out-of-bounds"
         "int g[2]; int main(int argc, char **argv) { return g[argc + 1]; }");
    Alcotest.test_case "main-args overflow" `Quick
      (expect_error "out-of-bounds"
         "int main(int argc, char **argv) { return argv[9] != 0; }");
    Alcotest.test_case "use-after-free" `Quick
      (expect_error "use-after-free"
         "int main(void) { int *p = (int*)malloc(4); free(p); return *p; }");
    Alcotest.test_case "double free" `Quick
      (expect_error "double-free"
         "int main(void) { int *p = (int*)malloc(4); free(p); free(p); return 0; }");
    Alcotest.test_case "invalid free of global" `Quick
      (expect_error "invalid-free"
         "int g; int main(void) { free(&g); return 0; }");
    Alcotest.test_case "invalid free of interior pointer" `Quick
      (expect_error "invalid-free"
         "int main(void) { char *p = (char*)malloc(8); free(p + 1); return 0; }");
    Alcotest.test_case "NULL read" `Quick
      (expect_error "null-dereference" "int main(void) { int *p = 0; return *p; }");
    Alcotest.test_case "NULL write" `Quick
      (expect_error "null-dereference"
         "int main(void) { int *p = 0; *p = 4; return 0; }");
    Alcotest.test_case "NULL through struct" `Quick
      (expect_error "null-dereference"
         "struct s { int v; }; int main(void) { struct s *p = 0; return p->v; }");
    Alcotest.test_case "NULL function pointer call" `Quick
      (expect_error "null-dereference"
         "int main(void) { int (*f)(void) = 0; return f(); }");
    Alcotest.test_case "missing vararg" `Quick
      (expect_error "out-of-bounds"
         {|int main(void) { printf("%d %d\n", 1); return 0; }|});
    Alcotest.test_case "printf %ld with int" `Quick
      (expect_error "out-of-bounds"
         {|int main(void) { int x = 1; printf("%ld\n", x); return 0; }|});
    Alcotest.test_case "division by zero" `Quick
      (expect_error "division-by-zero"
         "int main(int argc, char **argv) { return 10 / (argc - 1); }");
    Alcotest.test_case "free of forged pointer" `Quick
      (expect_error "invalid-free"
         "int main(void) { free((void*)0x12345); return 0; }");
    Alcotest.test_case "call through data pointer" `Quick
      (expect_error "type-violation"
         "int main(void) { int x = 1; int (*f)(void) = (int(*)(void))&x; return f(); }");
    Alcotest.test_case "deref of forged integer pointer" `Quick
      (expect_error "type-violation"
         "int main(void) { long v = 0x777777; int *p = (int*)v; return *p; }");
  ]

(* ---------------- error message quality ---------------- *)

let test_message_contents () =
  let r = run "int main(void) { int a[4]; a[4] = 1; return 0; }" in
  match r.Interp.error with
  | Some (_, msg) ->
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("mentions " ^ needle) true
          (Util.string_contains ~needle msg))
      [ "offset 16"; "16-byte"; "automatic"; "I32AutomaticArray"; "write" ]
  | None -> Alcotest.fail "expected an error"

let test_storage_in_messages () =
  let check src needle =
    let r = run src in
    match r.Interp.error with
    | Some (_, msg) ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (Util.string_contains ~needle msg)
    | None -> Alcotest.fail "expected error"
  in
  check "int main(void) { int *p = (int*)malloc(8); free(p); free(p); return 0; }"
    "twice";
  check "int g[2]; int main(int argc, char **argv) { return g[argc+1]; }" "static";
  check "int main(int argc, char **argv) { return argv[8] != 0; }" "main-arguments"

(* ---------------- pointer cookies through C ---------------- *)

let test_ptr_int_roundtrip_in_c () =
  let r =
    run
      {|
int main(void) {
  int x = 42;
  long cookie = (long)&x;
  int *p = (int *)cookie;
  printf("%d\n", *p);
  return 0;
}
|}
  in
  Alcotest.(check string) "roundtrip works" "42\n" r.Interp.output

(* ---------------- varargs machinery ---------------- *)

let test_count_and_get_varargs () =
  let r =
    run
      {|
int sum_all(int n, ...) {
  struct __varargs ap;
  __va_start(&ap);
  int total = 0;
  for (int i = 0; i < n; i++) {
    total += *(int *)__va_next(&ap);
  }
  __va_end(&ap);
  return total;
}
int main(void) {
  printf("%d %d\n", sum_all(3, 10, 20, 30), sum_all(0));
  return 0;
}
|}
  in
  (match r.Interp.error with
  | Some (_, m) -> Alcotest.fail m
  | None -> ());
  Alcotest.(check string) "user variadic function" "60 0\n" r.Interp.output

(* ---------------- limits ---------------- *)

let test_step_limit () =
  let r = Loader.run_source ~step_limit:10_000 "int main(void) { while (1) {} return 0; }" in
  Alcotest.(check bool) "timed out" true r.Interp.timed_out

let test_recursion_guard () =
  let r = run "int f(int n) { return f(n + 1); } int main(void) { return f(0); }" in
  match r.Interp.error with
  | Some (Merror.Stack_overflow_guard, _) -> ()
  | Some (_, m) -> Alcotest.fail ("wrong error: " ^ m)
  | None -> Alcotest.fail "expected stack overflow guard"

let test_leak_report () =
  let r = run "int main(void) { malloc(10); malloc(20); return 0; }" in
  Alcotest.(check int) "two leaks" 2 r.Interp.leaks

let test_exit_code () =
  let r = run "int main(void) { return 42; }" in
  Alcotest.(check int) "exit code" 42 r.Interp.exit_code;
  let r2 = run "int main(void) { exit(3); return 0; }" in
  Alcotest.(check int) "exit()" 3 r2.Interp.exit_code

let test_argv_passing () =
  let r =
    run ~argv:[ "prog"; "alpha"; "beta" ]
      {|
int main(int argc, char **argv) {
  printf("%d %s %s\n", argc, argv[1], argv[2]);
  return 0;
}
|}
  in
  Alcotest.(check string) "argv contents" "3 alpha beta\n" r.Interp.output

let () =
  Alcotest.run "interp"
    [
      ("semantics", semantic_tests);
      ("detection", detection_tests);
      ( "messages",
        [
          Alcotest.test_case "message contents" `Quick test_message_contents;
          Alcotest.test_case "storage kinds" `Quick test_storage_in_messages;
        ] );
      ( "pointers+varargs",
        [
          Alcotest.test_case "ptr/int roundtrip" `Quick test_ptr_int_roundtrip_in_c;
          Alcotest.test_case "user variadic function" `Quick
            test_count_and_get_varargs;
        ] );
      ( "limits",
        [
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "recursion guard" `Quick test_recursion_guard;
          Alcotest.test_case "leak report" `Quick test_leak_report;
          Alcotest.test_case "exit codes" `Quick test_exit_code;
          Alcotest.test_case "argv passing" `Quick test_argv_passing;
        ] );
    ]
