(** Tests for the synthetic vulnerability-database study (Figures 1–2):
    the keyword classifier, the generator's window and determinism, and
    the shape properties the paper's figures show. *)

let cat = Alcotest.testable
    (fun ppf c -> Fmt.string ppf (Entry.category_name c)) ( = )

(* ---------------- classifier ---------------- *)

let test_classify_spatial () =
  List.iter
    (fun text ->
      Alcotest.(check (option cat)) text (Some Entry.Spatial) (Classify.classify text))
    [
      "A heap-based buffer overflow in libfoo allows code execution";
      "Out-of-bounds read in the PNG decoder";
      "Stack-based buffer overflow via long hostname";
      "An OUT OF BOUNDS write corrupts memory";
      "a buffer underflow in the parser";
    ]

let test_classify_temporal () =
  List.iter
    (fun text ->
      Alcotest.(check (option cat)) text (Some Entry.Temporal) (Classify.classify text))
    [
      "Use-after-free in the DOM implementation";
      "use after free when closing the tab";
      "a dangling pointer is dereferenced on shutdown";
    ]

let test_classify_null () =
  Alcotest.(check (option cat)) "null deref" (Some Entry.Null_deref)
    (Classify.classify "NULL pointer dereference in the SSL module")

let test_classify_other () =
  List.iter
    (fun text ->
      Alcotest.(check (option cat)) text (Some Entry.Other) (Classify.classify text))
    [
      "double free in the allocator wrapper";
      "an invalid free occurs when a stack buffer is passed to free";
      "format string vulnerability in the log facility";
    ]

let test_classify_priority () =
  (* a UAF that also mentions memory corruption wording stays temporal *)
  Alcotest.(check (option cat)) "temporal wins" (Some Entry.Temporal)
    (Classify.classify
       "use-after-free leading to a heap-based buffer overflow later")

let test_classify_unknown () =
  Alcotest.(check (option cat)) "vague text unclassified" None
    (Classify.classify "an unspecified issue with unknown impact")

(* ---------------- generator ---------------- *)

let test_generator_deterministic () =
  let a = Gen.generate Gen.Cve and b = Gen.generate Gen.Cve in
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  Alcotest.(check bool) "same ids" true
    (List.for_all2 (fun (x : Entry.t) (y : Entry.t) -> x.Entry.id = y.Entry.id) a b)

let test_generator_window () =
  List.iter
    (fun (e : Entry.t) ->
      let ok =
        (e.Entry.year > 2012 || e.Entry.month >= 3)
        && (e.Entry.year < 2017 || e.Entry.month <= 9)
        && e.Entry.year >= 2012 && e.Entry.year <= 2017
      in
      Alcotest.(check bool) (e.Entry.id ^ " in window") true ok)
    (Gen.generate Gen.Cve)

let test_exploits_fewer_than_vulns () =
  Alcotest.(check bool) "ExploitDB smaller than CVE" true
    (List.length (Gen.generate Gen.Exploitdb)
    < List.length (Gen.generate Gen.Cve))

(* ---------------- trends (the figures' shapes) ---------------- *)

let cve_trends = lazy (Classify.trends (Gen.generate Gen.Cve))

let test_trend_category_order () =
  (* spatial > temporal > null > other, in every year, as in Fig. 1 *)
  List.iter
    (fun (y : Classify.yearly) ->
      Alcotest.(check bool)
        (Printf.sprintf "%d: spatial leads" y.Classify.year)
        true
        (y.Classify.spatial > y.Classify.temporal
        && y.Classify.temporal > y.Classify.other);
      Alcotest.(check bool)
        (Printf.sprintf "%d: null between" y.Classify.year)
        true
        (y.Classify.null_deref > y.Classify.other))
    (Lazy.force cve_trends)

let test_spatial_all_time_high () =
  let trends = Lazy.force cve_trends in
  let spatial year =
    (List.find (fun y -> y.Classify.year = year) trends).Classify.spatial
  in
  (* 2017 only covers 9 months, so compare 2016 to 2012-2014 *)
  Alcotest.(check bool) "rising" true (spatial 2016 > spatial 2013);
  Alcotest.(check bool) "well above the start" true
    (float_of_int (spatial 2016) > 1.5 *. float_of_int (spatial 2013))

let test_all_years_present () =
  Alcotest.(check (list int)) "years"
    [ 2012; 2013; 2014; 2015; 2016; 2017 ]
    (List.map (fun y -> y.Classify.year) (Lazy.force cve_trends))

let test_unclassified_fraction_small () =
  let trends = Lazy.force cve_trends in
  let total =
    Util.sum_by
      (fun (y : Classify.yearly) ->
        y.Classify.spatial + y.Classify.temporal + y.Classify.null_deref
        + y.Classify.other + y.Classify.unclassified)
      trends
  in
  let un = Util.sum_by (fun y -> y.Classify.unclassified) trends in
  Alcotest.(check bool) "under 15%" true
    (float_of_int un < 0.15 *. float_of_int total)

let test_figures_render () =
  let r1 = Figures12.run Gen.Cve in
  let s = Table.render (Figures12.table r1) in
  Alcotest.(check bool) "mentions 2017" true (Util.string_contains ~needle:"2017" s);
  let chart = Figures12.chart r1 in
  Alcotest.(check bool) "chart has legend" true
    (Util.string_contains ~needle:"Spatial" chart)

let () =
  Alcotest.run "bugdb"
    [
      ( "classifier",
        [
          Alcotest.test_case "spatial" `Quick test_classify_spatial;
          Alcotest.test_case "temporal" `Quick test_classify_temporal;
          Alcotest.test_case "null" `Quick test_classify_null;
          Alcotest.test_case "other" `Quick test_classify_other;
          Alcotest.test_case "priority" `Quick test_classify_priority;
          Alcotest.test_case "unknown" `Quick test_classify_unknown;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "window" `Quick test_generator_window;
          Alcotest.test_case "exploits fewer" `Quick test_exploits_fewer_than_vulns;
        ] );
      ( "trends",
        [
          Alcotest.test_case "category order" `Quick test_trend_category_order;
          Alcotest.test_case "spatial all-time high" `Quick
            test_spatial_all_time_high;
          Alcotest.test_case "all years" `Quick test_all_years_present;
          Alcotest.test_case "unclassified small" `Quick
            test_unclassified_fraction_small;
          Alcotest.test_case "figures render" `Quick test_figures_render;
        ] );
    ]
