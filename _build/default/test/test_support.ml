(** Unit and property tests for lib/support. *)

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create 11 and b = Prng.create 11 in
  for _ = 1 to 100 do
    check_int "same sequence" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_differs_by_seed () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_prng_pick () =
  let rng = Prng.create 3 in
  for _ = 1 to 50 do
    let v = Prng.pick rng [ 1; 2; 3 ] in
    Alcotest.(check bool) "pick from list" true (List.mem v [ 1; 2; 3 ])
  done

let test_prng_poisson_nonneg () =
  let rng = Prng.create 4 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "poisson >= 0" true (Prng.poisson rng ~lambda:5.0 >= 0)
  done

let prng_props =
  [
    QCheck.Test.make ~name:"Prng.int within bound"
      QCheck.(pair small_int (int_range 1 10000))
      (fun (seed, bound) ->
        let rng = Prng.create seed in
        let v = Prng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~name:"Prng.shuffle preserves elements"
      QCheck.(pair small_int (small_list int))
      (fun (seed, xs) ->
        let rng = Prng.create seed in
        List.sort compare (Prng.shuffle rng xs) = List.sort compare xs);
    QCheck.Test.make ~name:"Prng.float within bound"
      QCheck.(small_int)
      (fun seed ->
        let rng = Prng.create seed in
        let f = Prng.float rng 3.5 in
        f >= 0.0 && f < 3.5);
  ]

(* ---------------- Stats ---------------- *)

let test_mean_median () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_quantiles () =
  let xs = [ 0.0; 1.0; 2.0; 3.0; 4.0 ] in
  check_float "q0" 0.0 (Stats.quantile xs 0.0);
  check_float "q25" 1.0 (Stats.quantile xs 0.25);
  check_float "q50" 2.0 (Stats.quantile xs 0.5);
  check_float "q100" 4.0 (Stats.quantile xs 1.0);
  check_float "interpolated" 1.5 (Stats.quantile [ 1.0; 2.0 ] 0.5)

let test_boxplot_relative () =
  let b = Stats.boxplot [ 2.0; 4.0; 6.0; 8.0 ] in
  let r = Stats.boxplot_relative b ~denom:2.0 in
  check_float "low scaled" 1.0 r.Stats.low;
  check_float "high scaled" 4.0 r.Stats.high

let test_stddev () =
  check_float "stddev constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "variance" 2.0 (Stats.variance [ 1.0; 3.0; 1.0; 3.0; 1.0; 3.0 ] +. 1.0)

let stats_props =
  [
    QCheck.Test.make ~name:"boxplot is ordered"
      QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (float_range 0.0 1000.0))
      (fun xs ->
        let b = Stats.boxplot xs in
        b.Stats.low <= b.Stats.q1 && b.Stats.q1 <= b.Stats.med
        && b.Stats.med <= b.Stats.q3 && b.Stats.q3 <= b.Stats.high);
    QCheck.Test.make ~name:"mean within min/max"
      QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (float_range (-100.) 100.))
      (fun xs ->
        let m = Stats.mean xs in
        m >= List.fold_left min infinity xs -. 1e-9
        && m <= List.fold_left max neg_infinity xs +. 1e-9);
  ]

(* ---------------- Table / Chart / Util ---------------- *)

let test_table_render () =
  let t =
    Table.create ~title:"demo" ~header:[ "a"; "bb" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yyy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains title" true (Util.string_contains ~needle:"demo" s);
  Alcotest.(check bool) "contains cell" true (Util.string_contains ~needle:"yyy" s)

let test_table_bad_row () =
  let t = Table.create ~title:"" ~header:[ "a" ] () in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_boxplot_line () =
  let b = { Stats.low = 0.0; q1 = 0.25; med = 0.5; q3 = 0.75; high = 1.0 } in
  let line = Chart.boxplot_line ~width:11 ~lo:0.0 ~hi:1.0 b in
  Alcotest.(check int) "width" 11 (String.length line);
  Alcotest.(check char) "median marker" 'M' line.[5]

let test_string_contains () =
  Alcotest.(check bool) "positive" true (Util.string_contains ~needle:"bc" "abcd");
  Alcotest.(check bool) "negative" false (Util.string_contains ~needle:"xy" "abcd");
  Alcotest.(check bool) "empty needle" true (Util.string_contains ~needle:"" "abcd");
  Alcotest.(check bool) "needle too long" false (Util.string_contains ~needle:"abcde" "abcd")

let test_align_up () =
  check_int "already aligned" 16 (Util.align_up 16 8);
  check_int "rounds up" 24 (Util.align_up 17 8);
  check_int "align 1" 17 (Util.align_up 17 1)

let util_props =
  [
    QCheck.Test.make ~name:"string_contains finds embedded needle"
      QCheck.(triple printable_string printable_string printable_string)
      (fun (a, n, b) -> Util.string_contains ~needle:n (a ^ n ^ b));
    QCheck.Test.make ~name:"align_up is aligned and minimal"
      QCheck.(pair (int_range 0 100000) (int_range 1 64))
      (fun (x, a) ->
        let r = Util.align_up x a in
        r mod a = 0 && r >= x && r - x < a);
    QCheck.Test.make ~name:"take length"
      QCheck.(pair (int_range 0 20) (small_list int))
      (fun (n, xs) -> List.length (Util.take n xs) = min n (List.length xs));
  ]

let () =
  Alcotest.run "support"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed-dependent" `Quick test_prng_differs_by_seed;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          Alcotest.test_case "poisson nonneg" `Quick test_prng_poisson_nonneg;
        ]
        @ List.map QCheck_alcotest.to_alcotest prng_props );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_mean_median;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "boxplot relative" `Quick test_boxplot_relative;
          Alcotest.test_case "stddev" `Quick test_stddev;
        ]
        @ List.map QCheck_alcotest.to_alcotest stats_props );
      ( "table+chart+util",
        [
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "table arity" `Quick test_table_bad_row;
          Alcotest.test_case "boxplot line" `Quick test_boxplot_line;
          Alcotest.test_case "string_contains" `Quick test_string_contains;
          Alcotest.test_case "align_up" `Quick test_align_up;
        ]
        @ List.map QCheck_alcotest.to_alcotest util_props );
    ]
