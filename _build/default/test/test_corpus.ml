(** The headline reproduction assertions (paper §4.1): the corpus
    distribution matches Tables 1–2 exactly, Safe Sulong finds all 68
    bugs, ASan finds 60 at -O0 and 56 at -O3 (a strict subset), the
    8 bugs missed by both tools are exactly the engineered case-study
    set, and Valgrind lands at "slightly more than half". *)

let runs = lazy (Effectiveness.run_corpus ())

let found tool r = Effectiveness.found r tool
let count tool = List.length (List.filter (found tool) (Lazy.force runs))

(* ---------------- distribution (Tables 1-2) ---------------- *)

let test_corpus_size () =
  Alcotest.(check int) "68 bugs" 68 (List.length Corpus.all)

let test_unique_ids () =
  let ids = List.map (fun p -> p.Groundtruth.id) Corpus.all in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_distribution_matches_paper () =
  let d = Corpus.distribution Corpus.all in
  let p = Corpus.paper_distribution in
  Alcotest.(check int) "buffer overflows" p.Corpus.overflows d.Corpus.overflows;
  Alcotest.(check int) "NULL dereferences" p.Corpus.null_derefs d.Corpus.null_derefs;
  Alcotest.(check int) "use-after-free" p.Corpus.use_after_free d.Corpus.use_after_free;
  Alcotest.(check int) "varargs" p.Corpus.varargs d.Corpus.varargs;
  Alcotest.(check int) "reads" p.Corpus.reads d.Corpus.reads;
  Alcotest.(check int) "writes" p.Corpus.writes d.Corpus.writes;
  Alcotest.(check int) "underflows" p.Corpus.underflows d.Corpus.underflows;
  Alcotest.(check int) "overflows" p.Corpus.oob_overflows d.Corpus.oob_overflows;
  Alcotest.(check int) "stack" p.Corpus.stack d.Corpus.stack;
  Alcotest.(check int) "heap" p.Corpus.heap d.Corpus.heap;
  Alcotest.(check int) "global" p.Corpus.global d.Corpus.global;
  Alcotest.(check int) "main args" p.Corpus.main_args d.Corpus.main_args

(* ---------------- detection counts ---------------- *)

let test_sulong_finds_all () =
  let missed =
    List.filter_map
      (fun r ->
        if found Engine.Safe_sulong r then None
        else Some r.Effectiveness.program.Groundtruth.id)
      (Lazy.force runs)
  in
  Alcotest.(check (list string)) "Safe Sulong finds all 68" [] missed

let test_asan_o0_count () =
  Alcotest.(check int) "ASan -O0 finds 60" 60 (count (Engine.Asan Pipeline.O0))

let test_asan_o3_count () =
  Alcotest.(check int) "ASan -O3 finds 56" 56 (count (Engine.Asan Pipeline.O3))

let test_asan_o3_subset_of_o0 () =
  List.iter
    (fun r ->
      if found (Engine.Asan Pipeline.O3) r then
        Alcotest.(check bool)
          ("O3 find implies O0 find: " ^ r.Effectiveness.program.Groundtruth.id)
          true
          (found (Engine.Asan Pipeline.O0) r))
    (Lazy.force runs)

let test_asan_o3_loses_exactly_the_folded () =
  let lost =
    List.filter_map
      (fun r ->
        if
          found (Engine.Asan Pipeline.O0) r
          && not (found (Engine.Asan Pipeline.O3) r)
        then Some r.Effectiveness.program.Groundtruth.id
        else None)
      (Lazy.force runs)
  in
  let expected =
    List.map (fun p -> p.Groundtruth.id) Corpus.expected_o3_folded
  in
  Alcotest.(check (list string)) "the 4 folded bugs"
    (List.sort compare expected) (List.sort compare lost)

let test_valgrind_about_half () =
  let o0 = count (Engine.Valgrind Pipeline.O0) in
  let o3 = count (Engine.Valgrind Pipeline.O3) in
  Alcotest.(check bool)
    (Printf.sprintf "Valgrind -O0 about half (got %d)" o0)
    true
    (o0 >= 32 && o0 <= 40);
  Alcotest.(check bool)
    (Printf.sprintf "Valgrind -O3 about half (got %d)" o3)
    true
    (o3 >= 22 && o3 <= 40)

let test_valgrind_o0_o3_sets_differ_but_overlap () =
  let set level =
    List.filter_map
      (fun r ->
        if found (Engine.Valgrind level) r then
          Some r.Effectiveness.program.Groundtruth.id
        else None)
      (Lazy.force runs)
  in
  let o0 = set Pipeline.O0 and o3 = set Pipeline.O3 in
  let inter = List.filter (fun id -> List.mem id o3) o0 in
  Alcotest.(check bool) "sets overlap" true (List.length inter > 20);
  Alcotest.(check bool) "sets differ" true (o0 <> o3)

let test_missed_by_both_is_the_case_study_set () =
  let c = Effectiveness.compare_tools (Lazy.force runs) in
  let expected =
    List.map (fun p -> p.Groundtruth.id) Corpus.expected_missed_by_both
  in
  Alcotest.(check (list string)) "exactly the 8 case-study bugs"
    (List.sort compare expected)
    (List.sort compare c.Effectiveness.missed_by_both)

let test_eight_special_bugs () =
  Alcotest.(check int) "8 engineered misses" 8
    (List.length Corpus.expected_missed_by_both);
  Alcotest.(check int) "4 O3-folded" 4 (List.length Corpus.expected_o3_folded)

(* ---------------- per-program sanity ---------------- *)

let test_sulong_category_matches_ground_truth () =
  (* For each detected bug the reported category must be consistent with
     the ground truth (varargs bugs surface as OOB reads of the varargs
     machinery, which is how the paper describes their detection too). *)
  List.iter
    (fun (r : Effectiveness.run) ->
      match List.assoc_opt Engine.Safe_sulong r.Effectiveness.results with
      | Some (Outcome.Detected { kind; _ }) -> begin
        let p = r.Effectiveness.program in
        let ok =
          match p.Groundtruth.category with
          | Groundtruth.Oob _ -> kind = "out-of-bounds"
          | Groundtruth.Null_dereference -> kind = "null-dereference"
          | Groundtruth.Use_after_free -> kind = "use-after-free"
          | Groundtruth.Varargs -> kind = "out-of-bounds" || kind = "varargs"
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s reported as %s" p.Groundtruth.id kind)
          true ok
      end
      | _ -> ())
    (Lazy.force runs)

let test_table1_table2_render () =
  let runs = Lazy.force runs in
  let t1 = Table.render (Effectiveness.table1 runs) in
  Alcotest.(check bool) "table1 shows 61" true
    (Util.string_contains ~needle:"61" t1);
  let t2 = Table.render (Effectiveness.table2 runs) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table2 has " ^ needle) true
        (Util.string_contains ~needle t2))
    [ "32"; "29"; "53"; "17" ]

let () =
  Alcotest.run "corpus"
    [
      ( "distribution",
        [
          Alcotest.test_case "size" `Quick test_corpus_size;
          Alcotest.test_case "unique ids" `Quick test_unique_ids;
          Alcotest.test_case "matches the paper exactly" `Quick
            test_distribution_matches_paper;
          Alcotest.test_case "special sets sized" `Quick test_eight_special_bugs;
        ] );
      ( "detection",
        [
          Alcotest.test_case "Safe Sulong finds all 68" `Slow test_sulong_finds_all;
          Alcotest.test_case "ASan -O0 finds 60" `Slow test_asan_o0_count;
          Alcotest.test_case "ASan -O3 finds 56" `Slow test_asan_o3_count;
          Alcotest.test_case "ASan -O3 subset of -O0" `Slow
            test_asan_o3_subset_of_o0;
          Alcotest.test_case "-O3 loses exactly the folded 4" `Slow
            test_asan_o3_loses_exactly_the_folded;
          Alcotest.test_case "Valgrind about half" `Slow test_valgrind_about_half;
          Alcotest.test_case "Valgrind O0/O3 overlap but differ" `Slow
            test_valgrind_o0_o3_sets_differ_but_overlap;
          Alcotest.test_case "missed-by-both = the 8 case studies" `Slow
            test_missed_by_both_is_the_case_study_set;
          Alcotest.test_case "categories match ground truth" `Slow
            test_sulong_category_matches_ground_truth;
          Alcotest.test_case "tables render" `Slow test_table1_table2_render;
        ] );
    ]
