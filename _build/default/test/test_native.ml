(** Native-engine tests: the same semantic battery as the managed
    interpreter (at -O0 and -O3 — every pipeline implements the same C),
    plus the undefined behaviours that only exist natively: silent
    corruption, argv/envp leaks, SIGSEGV. *)

let run_native ?(level = Pipeline.O0) ?(argv = [ "prog" ]) ?(input = "") src =
  Engine.run ~argv ~input (Engine.Clang level) src

let check_case level (c : Cases.case) () =
  let r = run_native ~level ~input:c.Cases.input c.Cases.src in
  (match r.Engine.outcome with
  | Outcome.Finished _ -> ()
  | o -> Alcotest.failf "%s: abnormal outcome %s" c.Cases.name (Outcome.to_string o));
  Alcotest.(check string) c.Cases.name c.Cases.expected r.Engine.output

let battery level =
  List.map
    (fun (c : Cases.case) ->
      Alcotest.test_case c.Cases.name `Quick (check_case level c))
    Cases.all

(* ---------------- undefined behaviour, natively ---------------- *)

let test_silent_stack_corruption () =
  let r =
    run_native
      {|
int main(void) {
  int canary = 1234;
  int arr[4];
  for (int i = 0; i <= 5; i++) { arr[i] = 99; }
  printf("%d\n", canary);
  return 0;
}
|}
  in
  (* the overflow silently overwrote the neighbouring local *)
  Alcotest.(check string) "canary clobbered" "99\n" r.Engine.output

let test_argv_oob_leaks_environment () =
  let r =
    run_native
      {|
int main(int argc, char **argv) {
  printf("%s\n", argv[3]);
  return 0;
}
|}
  in
  Alcotest.(check bool) "an environment variable leaks" true
    (Util.string_contains ~needle:"=" r.Engine.output)

let test_null_deref_segfaults () =
  let r = run_native "int main(void) { int *p = 0; return *p; }" in
  match r.Engine.outcome with
  | Outcome.Crashed what ->
    Alcotest.(check bool) "SIGSEGV" true (Util.string_contains ~needle:"SIGSEGV" what)
  | o -> Alcotest.failf "expected crash, got %s" (Outcome.to_string o)

let test_wild_pointer_segfaults () =
  let r =
    run_native "int main(void) { int *p = (int *)99999999999L; return *p; }"
  in
  match r.Engine.outcome with
  | Outcome.Crashed _ -> ()
  | o -> Alcotest.failf "expected crash, got %s" (Outcome.to_string o)

let test_sigfpe () =
  let r = run_native "int main(int argc, char **argv) { return 7 / (argc - 1); }" in
  match r.Engine.outcome with
  | Outcome.Crashed what ->
    Alcotest.(check bool) "SIGFPE" true (Util.string_contains ~needle:"SIGFPE" what)
  | o -> Alcotest.failf "expected SIGFPE, got %s" (Outcome.to_string o)

let test_use_after_free_reads_stale_or_reused () =
  (* no crash, no diagnosis: the data is simply still there (or reused) *)
  let r =
    run_native
      {|
int main(void) {
  int *p = (int *)malloc(4);
  *p = 77;
  free(p);
  printf("%d\n", *p);
  return 0;
}
|}
  in
  match r.Engine.outcome with
  | Outcome.Finished 0 -> ()
  | o -> Alcotest.failf "expected silent completion, got %s" (Outcome.to_string o)

let test_heap_reuse_after_free () =
  let r =
    run_native
      {|
int main(void) {
  char *a = (char *)malloc(16);
  free(a);
  char *b = (char *)malloc(16);
  /* the allocator reuses the freed block: UAF aliases new data */
  printf("%d\n", a == b);
  free(b);
  return 0;
}
|}
  in
  Alcotest.(check string) "block reused" "1\n" r.Engine.output

let test_stack_exhaustion_crashes () =
  let r =
    run_native
      "int f(int n) { int pad[64]; pad[0] = n; return f(n + 1) + pad[0]; } \
       int main(void) { return f(0); }"
  in
  match r.Engine.outcome with
  | Outcome.Crashed _ -> ()
  | o -> Alcotest.failf "expected stack crash, got %s" (Outcome.to_string o)

(* ---------------- word-wise strlen ---------------- *)

let test_wordwise_strlen_reads_past_nul () =
  (* correctness is unaffected; the point is that it does not crash and
     produces the right length despite reading in 8-byte gulps *)
  let r =
    run_native
      {|
int main(void) {
  char s[3] = "ab";
  printf("%d %d %d\n", (int)strlen(s), (int)strlen(""), (int)strlen("0123456789a"));
  return 0;
}
|}
  in
  Alcotest.(check string) "lengths" "2 0 11\n" r.Engine.output

let () =
  Alcotest.run "native"
    [
      ("semantics -O0", battery Pipeline.O0);
      ("semantics -O3", battery Pipeline.O3);
      ( "undefined behaviour",
        [
          Alcotest.test_case "silent stack corruption" `Quick
            test_silent_stack_corruption;
          Alcotest.test_case "argv leak" `Quick test_argv_oob_leaks_environment;
          Alcotest.test_case "NULL segfault" `Quick test_null_deref_segfaults;
          Alcotest.test_case "wild pointer segfault" `Quick
            test_wild_pointer_segfaults;
          Alcotest.test_case "SIGFPE" `Quick test_sigfpe;
          Alcotest.test_case "silent use-after-free" `Quick
            test_use_after_free_reads_stale_or_reused;
          Alcotest.test_case "heap reuse" `Quick test_heap_reuse_after_free;
          Alcotest.test_case "stack exhaustion" `Quick
            test_stack_exhaustion_crashes;
          Alcotest.test_case "word-wise strlen" `Quick
            test_wordwise_strlen_reads_past_nul;
        ] );
    ]
