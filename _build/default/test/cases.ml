(** Shared semantic test battery: C programs with their expected output.
    [Test_interp] checks them under Safe Sulong; [Test_native] checks the
    native engine and the optimized pipelines against the same
    expectations — every engine must implement the same C. *)

type case = {
  name : string;
  src : string;
  expected : string;
  input : string;
}

let c ?(input = "") name src expected = { name; src; expected; input }

let all =
  [
    c "arithmetic basics" {|
int main(void) {
  printf("%d %d %d %d %d\n", 7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3);
  printf("%d %d\n", -7 / 3, -7 % 3);
  return 0;
}
|} "10 4 21 2 1\n-2 -1\n";
    c "integer widths and wrapping" {|
int main(void) {
  char c = (char)200;
  unsigned char uc = (unsigned char)200;
  short s = (short)70000;
  unsigned int u = 4000000000u;
  printf("%d %d %d %u\n", c, uc, s, u);
  printf("%u\n", u + 600000000u);
  return 0;
}
|} "-56 200 4464 4000000000\n305032704\n";
    c "unsigned comparison and division" {|
int main(void) {
  unsigned int a = 4000000000u;
  unsigned int b = 5;
  printf("%d %u %u\n", a > b, a / 7u, a % 7u);
  size_t big = (size_t)-1;
  printf("%d\n", (size_t)1 < big);
  return 0;
}
|} "1 571428571 3\n1\n";
    c "shifts" {|
int main(void) {
  int x = -16;
  unsigned int u = 0x80000000u;
  printf("%d %d %u %d\n", 1 << 10, x >> 2, u >> 4, 5 << 1);
  return 0;
}
|} "1024 -4 134217728 10\n";
    c "floats and conversions" {|
int main(void) {
  double d = 7.9;
  float f = 2.5f;
  printf("%d %.2f %.1f\n", (int)d, d / 2.0, (double)f * 3.0);
  printf("%d\n", (int)-2.7);
  return 0;
}
|} "7 3.95 7.5\n-2\n";
    c "char arithmetic and ctype" {|
int main(void) {
  char ch = 'a';
  printf("%c %c %d\n", ch - 32, toupper(ch), isdigit('5'));
  printf("%d %d\n", isspace(' '), isalpha('_'));
  return 0;
}
|} "A A 1\n1 0\n";
    c "comparison chains and logic" {|
int main(void) {
  int a = 3;
  printf("%d %d %d %d\n", a == 3, a != 3, a < 4 && a > 2, a < 2 || a > 10);
  printf("%d %d\n", !a, !!a);
  return 0;
}
|} "1 0 1 0\n0 1\n";
    c "short-circuit side effects" {|
int hits = 0;
int bump(void) { hits++; return 1; }
int main(void) {
  int r1 = 0 && bump();
  int r2 = 1 || bump();
  int r3 = 1 && bump();
  printf("%d %d %d hits=%d\n", r1, r2, r3, hits);
  return 0;
}
|} "0 1 1 hits=1\n";
    c "ternary and comma" {|
int main(void) {
  int x = 10;
  int y = (x > 5) ? 100 : 200;
  int z = (x++, x * 2);
  printf("%d %d %d\n", x, y, z);
  return 0;
}
|} "11 100 22\n";
    c "compound assignment" {|
int main(void) {
  int x = 10;
  x += 5; x -= 3; x *= 2; x /= 3; x %= 5;
  printf("%d\n", x);
  int bits = 0xF0;
  bits &= 0x3C; bits |= 0x01; bits ^= 0x10; bits <<= 2; bits >>= 1;
  printf("%d\n", bits);
  return 0;
}
|} "3\n66\n";
    c "pre/post increment" {|
int main(void) {
  int i = 5;
  printf("%d %d %d %d %d\n", i++, i, ++i, i--, --i);
  return 0;
}
|} "5 6 7 7 5\n";
    c "loops: while, do, for, break, continue" {|
int main(void) {
  int sum = 0;
  for (int i = 0; i < 10; i++) {
    if (i == 3) { continue; }
    if (i == 8) { break; }
    sum += i;
  }
  int n = 0;
  do { n++; } while (n < 3);
  int m = 10;
  while (m > 0) { m -= 4; }
  printf("%d %d %d\n", sum, n, m);
  return 0;
}
|} "25 3 -2\n";
    c "switch with fallthrough and default" {|
const char *grade(int score) {
  switch (score / 10) {
    case 10:
    case 9: return "A";
    case 8: return "B";
    case 7: return "C";
    default: return "F";
  }
}
int main(void) {
  printf("%s %s %s %s\n", grade(95), grade(87), grade(100), grade(12));
  return 0;
}
|} "A B A F\n";
    c "2D arrays" {|
int main(void) {
  int m[3][4];
  for (int r = 0; r < 3; r++)
    for (int col = 0; col < 4; col++)
      m[r][col] = r * 10 + col;
  printf("%d %d %d\n", m[0][0], m[1][3], m[2][2]);
  int *flat = &m[0][0];
  printf("%d\n", flat[7]);
  return 0;
}
|} "0 13 22\n13\n";
    c "pointer arithmetic and differences" {|
int main(void) {
  int xs[5] = {10, 20, 30, 40, 50};
  int *p = xs;
  int *q = &xs[4];
  printf("%d %d %ld\n", *(p + 2), *(q - 1), (long)(q - p));
  p += 3;
  printf("%d\n", *p);
  return 0;
}
|} "30 40 4\n40\n";
    c "structs, nesting, pointers" {|
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; };
int area(const struct rect *r) {
  return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
}
int main(void) {
  struct rect r;
  r.lo.x = 1; r.lo.y = 2; r.hi.x = 5; r.hi.y = 7;
  printf("%d\n", area(&r));
  struct point *p = &r.lo;
  p->x = 0;
  printf("%d\n", area(&r));
  return 0;
}
|} "20\n25\n";
    c "function pointers" {|
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
int main(void) {
  int (*ops[2])(int, int) = {add, mul};
  printf("%d %d %d\n", apply(add, 3, 4), apply(mul, 3, 4), ops[1](5, 6));
  return 0;
}
|} "7 12 30\n";
    c "recursion" {|
int ack(int m, int n) {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
int main(void) {
  printf("%d\n", ack(2, 3));
  return 0;
}
|} "9\n";
    c "sizeof" {|
struct s { char c; long l; };
int main(void) {
  int xs[10];
  printf("%d %d %d %d %d\n", (int)sizeof(char), (int)sizeof(int),
         (int)sizeof(long), (int)sizeof(struct s), (int)sizeof(xs));
  printf("%d\n", (int)sizeof xs[0]);
  return 0;
}
|} "1 4 8 16 40\n4\n";
    c "string library" {|
int main(void) {
  char buf[32];
  strcpy(buf, "hello");
  strcat(buf, ", world");
  printf("%s %d\n", buf, (int)strlen(buf));
  printf("%d %d %d\n", strcmp("abc", "abd") < 0, strcmp("abc", "abc"),
         strncmp("abcdef", "abcxyz", 3));
  printf("%s\n", strchr("hello", 'l'));
  printf("%s\n", strstr("finding a needle here", "needle"));
  return 0;
}
|} "hello, world 12\n1 0 0\nllo\nneedle here\n";
    c "strtok tokenizing" {|
int main(void) {
  char buf[32] = "one,two;;three";
  for (char *t = strtok(buf, ",;"); t != 0; t = strtok(0, ",;")) {
    printf("[%s]", t);
  }
  printf("\n");
  return 0;
}
|} "[one][two][three]\n";
    c "mem functions" {|
int main(void) {
  char a[8];
  memset(a, 'x', 7);
  a[7] = '\0';
  char b[8];
  memcpy(b, a, 8);
  printf("%s %d\n", b, memcmp(a, b, 8));
  char overlap[16] = "0123456789";
  memmove(overlap + 2, overlap, 8);
  printf("%s\n", overlap);
  return 0;
}
|} "xxxxxxx 0\n0101234567\n";
    c "number parsing" {|
int main(void) {
  printf("%d %ld %d\n", atoi("  42abc"), atol("-123456789"), atoi("nope"));
  printf("%.3f %.3f\n", atof("3.25"), atof("-1.5e2"));
  return 0;
}
|} "42 -123456789 0\n3.250 -150.000\n";
    c "strtol with endptr and bases" {|
int main(void) {
  char *end;
  long a = strtol("  1234xyz", &end, 10);
  printf("%ld [%s]\n", a, end);
  printf("%ld %ld %ld\n", strtol("0xff", 0, 0), strtol("070", 0, 0),
         strtol("-42", 0, 10));
  long none = strtol("zzz", &end, 10);
  printf("%ld %d\n", none, *end == 'z');
  return 0;
}
|} "1234 [xyz]\n255 56 -42\n0 1\n";
    c "strpbrk, memchr, strcasecmp" {|
int main(void) {
  const char *s = "hello, world";
  printf("[%s]\n", strpbrk(s, ",!"));
  char data[8] = {1, 2, 3, 9, 5, 6, 7, 8};
  char *hit = (char *)memchr(data, 9, 8);
  printf("%d\n", (int)(hit - data));
  printf("%d %d %d\n", strcasecmp("Hello", "hELLo"), strcasecmp("abc", "abd") < 0,
         strncasecmp("ABCdef", "abcXYZ", 3));
  return 0;
}
|} "[, world]\n3\n0 1 0\n";
    c "bsearch" {|
int cmp_int(const void *a, const void *b) {
  return *(const int *)a - *(const int *)b;
}
int main(void) {
  int xs[7] = {2, 4, 8, 16, 32, 64, 128};
  int key = 16;
  int *hit = (int *)bsearch(&key, xs, 7, sizeof(int), cmp_int);
  printf("%d %d\n", hit != 0, (int)(hit - xs));
  int missing = 5;
  printf("%d\n", bsearch(&missing, xs, 7, sizeof(int), cmp_int) == 0);
  return 0;
}
|} "1 3\n1\n";
    c "qsort with comparator" {|
int cmp_desc(const void *a, const void *b) {
  return *(const int *)b - *(const int *)a;
}
int main(void) {
  int xs[6] = {3, 1, 4, 1, 5, 9};
  qsort(xs, 6, sizeof(int), cmp_desc);
  for (int i = 0; i < 6; i++) { printf("%d", xs[i]); }
  printf("\n");
  return 0;
}
|} "954311\n";
    c "sprintf and formats" {|
int main(void) {
  char buf[64];
  int n = sprintf(buf, "[%5d][%-5d][%05d][%x][%X][%o]", 42, 42, 42, 255, 255, 8);
  printf("%s %d\n", buf, n);
  sprintf(buf, "%c%s%%", '@', "mid");
  printf("%s\n", buf);
  return 0;
}
|} "[   42][42   ][00042][ff][FF][10] 33\n@mid%\n";
    c "float formats" {|
int main(void) {
  printf("%f|%.0f|%.3f\n", 3.14159, 2.718, 1.0 / 3.0);
  printf("%e\n", 12345.678);
  return 0;
}
|} "3.141590|3|0.333\n1.234568e+04\n";
    c "scanf" ~input:"42 -17 3.5 hello x" {|
int main(void) {
  int a; int b; double d; char word[16]; char ch;
  int n = scanf("%d %d %lf %s %c", &a, &b, &d, word, &ch);
  printf("%d: %d %d %.1f %s %c\n", n, a, b, d, word, ch);
  return 0;
}
|} "5: 42 -17 3.5 hello x\n";
    c "fgets lines" ~input:"first line\nsecond\n" {|
int main(void) {
  char buf[32];
  while (fgets(buf, 32, stdin) != 0) { printf("> %s", buf); }
  return 0;
}
|} "> first line\n> second\n";
    c "heap data structures" {|
struct node { int v; struct node *next; };
int main(void) {
  struct node *head = 0;
  for (int i = 1; i <= 5; i++) {
    struct node *n = (struct node *)malloc(sizeof(struct node));
    n->v = i * i;
    n->next = head;
    head = n;
  }
  int sum = 0;
  while (head != 0) {
    sum += head->v;
    struct node *next = head->next;
    free(head);
    head = next;
  }
  printf("%d\n", sum);
  return 0;
}
|} "55\n";
    c "calloc zeroing and realloc growth" {|
int main(void) {
  int *xs = (int *)calloc(4, sizeof(int));
  int zero_sum = xs[0] + xs[1] + xs[2] + xs[3];
  xs[0] = 11; xs[3] = 44;
  xs = (int *)realloc(xs, 8 * sizeof(int));
  printf("%d %d %d\n", zero_sum, xs[0], xs[3]);
  free(xs);
  return 0;
}
|} "0 11 44\n";
    c "global initializers" {|
int counters[4] = {1, 2};
const char *names[] = {"alpha", "beta", "gamma"};
struct cfg { int id; const char *label; };
struct cfg config = {7, "main"};
double factor = 2.5;
int main(void) {
  printf("%d %d %d %d\n", counters[0], counters[1], counters[2], counters[3]);
  printf("%s %s\n", names[2], config.label);
  printf("%d %.1f\n", config.id, factor);
  return 0;
}
|} "1 2 0 0\ngamma main\n7 2.5\n";
    c "string literal identity and indexing" {|
int main(void) {
  const char *s = "abcdef";
  printf("%c %c %d\n", s[0], *(s + 5), s[6]);
  char local[4] = "ab";
  printf("%d %d\n", local[2], local[3]);
  return 0;
}
|} "a f 0\n0 0\n";
    c "enum values" {|
enum state { IDLE, RUNNING = 5, DONE };
int main(void) {
  enum state s = DONE;
  printf("%d %d %d\n", IDLE, RUNNING, s);
  return 0;
}
|} "0 5 6\n";
    c "math functions" {|
int main(void) {
  printf("%.4f %.4f %.4f\n", sqrt(2.0), pow(2.0, 10.0), fabs(-3.25));
  printf("%.4f %.4f\n", floor(2.7), ceil(-2.7));
  printf("%.4f\n", fmod(7.5, 2.0));
  return 0;
}
|} "1.4142 1024.0000 3.2500\n2.0000 -2.0000\n1.5000\n";
    c "variadic printf width of arguments" {|
int main(void) {
  printf("%d %ld %u %c %s %.1f\n", -5, 123456789012345L, 77u, 'Z', "str", 0.5);
  return 0;
}
|} "-5 123456789012345 77 Z str 0.5\n";
    c "void casts and expression statements" {|
int effect = 0;
int touch(void) { effect++; return 9; }
int main(void) {
  (void)touch();
  touch();
  printf("%d\n", effect);
  return 0;
}
|} "2\n";
    c "nested function calls" {|
int inc(int x) { return x + 1; }
int twice(int x) { return x * 2; }
int main(void) {
  printf("%d\n", inc(twice(inc(inc(3)))));
  return 0;
}
|} "11\n";
    c "do not confuse typedef with variable" {|
typedef int number;
int main(void) {
  number n = 3;
  int number2 = n * 2;
  printf("%d\n", number2);
  return 0;
}
|} "6\n";
    c "pointer to pointer" {|
int main(void) {
  int x = 5;
  int *p = &x;
  int **pp = &p;
  **pp = 9;
  printf("%d %d\n", x, **pp);
  int y = 100;
  *pp = &y;
  printf("%d\n", *p);
  return 0;
}
|} "9 9\n100\n";
    c "array of structs" {|
struct item { int id; int qty; };
int main(void) {
  struct item cart[3];
  for (int i = 0; i < 3; i++) { cart[i].id = 100 + i; cart[i].qty = i * 2; }
  int total = 0;
  for (int i = 0; i < 3; i++) { total += cart[i].qty; }
  printf("%d %d %d\n", cart[0].id, cart[2].id, total);
  struct item *p = &cart[1];
  p->qty = 99;
  printf("%d\n", cart[1].qty);
  return 0;
}
|} "100 102 6\n99\n";
    c "struct with array field through pointer" {|
struct buf { int len; char data[12]; };
void fill(struct buf *b, const char *s) {
  b->len = (int)strlen(s);
  strcpy(b->data, s);
}
int main(void) {
  struct buf b;
  fill(&b, "nested");
  printf("%d %s %c\n", b.len, b.data, b.data[2]);
  return 0;
}
|} "6 nested s\n";
    c "char signedness in comparisons" {|
int main(void) {
  char c = (char)0x80;          /* -128 as signed char */
  unsigned char u = (unsigned char)0x80;
  printf("%d %d %d %d\n", c < 0, u > 127, c == -128, (int)u);
  return 0;
}
|} "1 1 1 128\n";
    c "unsigned wraparound in loop" {|
int main(void) {
  unsigned int u = 3;
  int steps = 0;
  while (u != 0) { u--; steps++; }
  u--;                           /* wraps to UINT_MAX */
  printf("%d %u\n", steps, u);
  return 0;
}
|} "3 4294967295\n";
    c "long arithmetic" {|
int main(void) {
  long big = 1000000007L;
  long sq = big * big;           /* wraps in 64-bit, well-defined here */
  printf("%ld %ld\n", big * 3, sq % 1000);
  unsigned long ub = (unsigned long)-1;
  printf("%lu\n", ub / 2u + 1u);
  return 0;
}
|} "3000000021 49\n9223372036854775808\n";
    c "hex/octal literals and bitmasks" {|
int main(void) {
  int flags = 0x0F | 010;        /* 15 | 8 */
  printf("%d %x %d\n", flags, flags & 0xFC, flags >> 2);
  return 0;
}
|} "15 c 3\n";
    c "nested conditionals and else-if chains" {|
const char *bucket(int n) {
  if (n < 0) { return "neg"; }
  else if (n == 0) { return "zero"; }
  else if (n < 10) { return "small"; }
  else { return n < 100 ? "medium" : "large"; }
}
int main(void) {
  printf("%s %s %s %s %s\n", bucket(-5), bucket(0), bucket(3), bucket(42),
         bucket(1000));
  return 0;
}
|} "neg zero small medium large\n";
    c "string escape coverage" {|
int main(void) {
  printf("tab:\there\n");
  printf("quote:\"q\" backslash:\\ char:%c\n", '\'');
  char nul_embedded[5] = "a\0b";
  printf("%d %d\n", nul_embedded[0], nul_embedded[2]);
  return 0;
}
|} "tab:\there\nquote:\"q\" backslash:\\ char:'\n97 98\n";
    c "pointer comparisons within object" {|
int main(void) {
  int xs[4] = {1, 2, 3, 4};
  int *lo = &xs[0];
  int *hi = &xs[3];
  printf("%d %d %d\n", lo < hi, hi - lo == 3, lo + 3 == hi);
  return 0;
}
|} "1 1 1\n";
    c "static-size matrix via function" {|
int det2(int m[2][2]) {
  return m[0][0] * m[1][1] - m[0][1] * m[1][0];
}
int main(void) {
  int m[2][2] = {{3, 1}, {4, 2}};
  printf("%d\n", det2(m));
  return 0;
}
|} "2\n";
    c "do-while with continue" {|
int main(void) {
  int i = 0;
  int evens = 0;
  do {
    i++;
    if (i % 2 != 0) { continue; }
    evens++;
  } while (i < 10);
  printf("%d %d\n", i, evens);
  return 0;
}
|} "10 5\n";
    c "exit code propagation" {|
int main(void) {
  if (1) { exit(3); }
  return 0;
}
|} "";
  ]
