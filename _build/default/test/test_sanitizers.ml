(** Sanitizer-simulator tests: shadow memory invariants, ASan's detection
    set and deliberate gaps, the quarantine heuristic (paper P3), and
    Memcheck's A/V-bit behaviour. *)

(* ---------------- shadow ---------------- *)

let test_shadow_poison_check () =
  let s = Shadow.create () in
  Shadow.poison s ~kind:Shadow.Heap_redzone 100L 16;
  (match Shadow.check s 96L 8 with
  | Some (Shadow.Heap_redzone, at) -> Alcotest.(check int64) "first bad" 100L at
  | _ -> Alcotest.fail "expected redzone hit");
  Alcotest.(check bool) "before is clean" false (Shadow.is_poisoned s 90L 10);
  Shadow.unpoison s 100L 16;
  Alcotest.(check bool) "unpoisoned" false (Shadow.is_poisoned s 96L 24)

let test_shadow_kinds_survive () =
  let s = Shadow.create () in
  Shadow.poison s ~kind:Shadow.Heap_freed 200L 8;
  match Shadow.check s 204L 1 with
  | Some (Shadow.Heap_freed, _) -> ()
  | _ -> Alcotest.fail "kind lost"

let shadow_props =
  [
    QCheck.Test.make ~name:"poison then check finds it"
      QCheck.(pair (int_range 4096 100000) (int_range 1 64))
      (fun (addr, size) ->
        let s = Shadow.create () in
        Shadow.poison s ~kind:Shadow.Stack_redzone (Int64.of_int addr) size;
        Shadow.is_poisoned s (Int64.of_int addr) size);
    QCheck.Test.make ~name:"unpoison restores cleanliness"
      QCheck.(pair (int_range 4096 100000) (int_range 1 64))
      (fun (addr, size) ->
        let s = Shadow.create () in
        let a = Int64.of_int addr in
        Shadow.poison s ~kind:Shadow.Global_redzone a size;
        Shadow.unpoison s a size;
        not (Shadow.is_poisoned s a size));
  ]

(* ---------------- ASan behaviour ---------------- *)

let run_asan ?(level = Pipeline.O0) ?(asan_options = Engine.default_asan)
    ?(argv = [ "prog" ]) ?(input = "") src =
  Engine.run ~argv ~input ~asan_options (Engine.Asan level) src

let detected r = Outcome.is_detected r.Engine.outcome

let test_asan_finds_basics () =
  let check name src =
    Alcotest.(check bool) name true (detected (run_asan src))
  in
  check "stack overflow" "int main(void) { int a[4]; a[4] = 1; return a[0]; }";
  check "stack underflow" "int main(int argc, char **argv) { int a[4]; a[argc-2] = 1; return a[0]; }";
  check "heap overflow"
    "int main(void) { int *p = (int*)malloc(8); p[2] = 1; free(p); return 0; }";
  check "heap underflow"
    "int main(void) { int *p = (int*)malloc(8); p[-1] = 1; free(p); return 0; }";
  check "global overflow"
    "int g[3]; int main(int argc, char **argv) { return g[argc + 2]; }";
  check "use-after-free"
    "int main(void) { int *p = (int*)malloc(4); free(p); return *p; }";
  check "double free"
    "int main(void) { int *p = (int*)malloc(4); free(p); free(p); return 0; }";
  check "bad free"
    "int main(void) { int x; free(&x); return 0; }"

let test_asan_report_kinds () =
  let kind src =
    match (run_asan src).Engine.outcome with
    | Outcome.Detected { kind; _ } -> kind
    | o -> Outcome.to_string o
  in
  Alcotest.(check string) "stack kind" "stack-buffer-overflow"
    (kind "int main(void) { int a[4]; a[4] = 1; return a[0]; }");
  Alcotest.(check string) "heap kind" "heap-buffer-overflow"
    (kind "int main(void) { char *p = (char*)malloc(4); p[4] = 1; free(p); return 0; }");
  Alcotest.(check string) "uaf kind" "heap-use-after-free"
    (kind "int main(void) { int *p = (int*)malloc(4); free(p); return *p; }")

let test_asan_misses_main_args () =
  Alcotest.(check bool) "argv OOB missed" false
    (detected
       (run_asan {|int main(int argc, char **argv) { printf("%s\n", argv[4]); return 0; }|}))

let test_asan_misses_strtok_by_default_finds_with_fix () =
  let src = {|
int main(void) {
  char buf[16] = "a b";
  char sep[1] = {' '};
  char *t = strtok(buf, sep);
  printf("%s\n", t);
  return 0;
}
|} in
  Alcotest.(check bool) "missed without interceptor" false (detected (run_asan src));
  Alcotest.(check bool) "found with the later fix" true
    (detected
       (run_asan
          ~asan_options:{ Engine.strtok_interceptor = true; quarantine_cap = 1 lsl 18; fno_common = true }
          src))

let test_asan_quarantine_heuristic () =
  (* paper P3: a small quarantine lets quick reallocation hide UAF *)
  let src = {|
int main(void) {
  char *stale = (char *)malloc(64);
  stale[0] = 'x';
  free(stale);
  /* churn: force the quarantine to recycle the stale block */
  for (int i = 0; i < 64; i++) {
    char *fresh = (char *)malloc(64);
    fresh[0] = 'y';
    free(fresh);
  }
  char *reuse1 = (char *)malloc(64);
  char *reuse2 = (char *)malloc(64);
  reuse1[0] = 'z';
  reuse2[0] = 'z';
  printf("%c\n", stale[0]); /* use after free */
  return 0;
}
|} in
  Alcotest.(check bool) "big quarantine catches it" true
    (detected
       (run_asan ~asan_options:{ Engine.strtok_interceptor = false; quarantine_cap = 1 lsl 20; fno_common = true } src));
  Alcotest.(check bool) "no quarantine misses it" false
    (detected
       (run_asan ~asan_options:{ Engine.strtok_interceptor = false; quarantine_cap = 0; fno_common = true } src))

let test_asan_redzone_is_finite () =
  (* an overflow that lands in the next object's valid bytes is missed *)
  let src = {|
const char *table[2] = {"a", "b"};
char filler[4096];
int main(void) {
  printf("%s\n", table[40] == 0 ? "(nothing)" : "(something)");
  return 0;
}
|} in
  Alcotest.(check bool) "beyond-redzone miss" false (detected (run_asan src))

let test_asan_interceptor_checks_strcpy () =
  Alcotest.(check bool) "strcpy overflow via interceptor" true
    (detected
       (run_asan
          {|int main(void) { char d[4]; strcpy(d, "much too long"); return d[0]; }|}))

let test_asan_clean_program_unaffected () =
  let r = run_asan {|int main(void) { printf("fine\n"); return 0; }|} in
  Alcotest.(check bool) "no report" false (detected r);
  Alcotest.(check string) "output intact" "fine\n" r.Engine.output

(* ---------------- Memcheck behaviour ---------------- *)

let run_vg ?(level = Pipeline.O0) ?(argv = [ "prog" ]) ?(input = "") src =
  Engine.run ~argv ~input (Engine.Valgrind level) src

let test_vg_finds_heap_misses_stack_global () =
  Alcotest.(check bool) "heap found" true
    (detected
       (run_vg "int main(void) { int *p = (int*)malloc(8); p[2] = 1; free(p); return 0; }"));
  Alcotest.(check bool) "stack missed" false
    (detected (run_vg "int main(void) { int a[4]; a[5] = 2; return a[0]; }"));
  Alcotest.(check bool) "global missed" false
    (detected
       (run_vg "int g[4]; int main(int argc, char **argv) { g[argc+4] = 1; return g[0]; }"))

let test_vg_uaf_reliable () =
  (* valgrind does not recycle freed blocks: reliable UAF detection *)
  let src = {|
int main(void) {
  char *stale = (char *)malloc(64);
  free(stale);
  for (int i = 0; i < 64; i++) { free(malloc(64)); }
  return stale[0];
}
|} in
  Alcotest.(check bool) "UAF found despite churn" true (detected (run_vg src))

let test_vg_uninitialised_value () =
  let src = {|
int main(void) {
  int fresh[4];
  int probe[2] = {0, 0};
  int v = probe[1 + (int)sizeof(probe) / 4]; /* reads into fresh */
  if (v > 0) { printf("pos\n"); } else { printf("neg\n"); }
  return fresh[0] * 0;
}
|} in
  match (run_vg src).Engine.outcome with
  | Outcome.Detected { kind; _ } ->
    Alcotest.(check string) "uninit kind" "uninitialised-value" kind
  | o -> Alcotest.failf "expected uninit report, got %s" (Outcome.to_string o)

let test_vg_defined_flow_is_quiet () =
  let r =
    run_vg
      {|int main(void) { int x = 3; if (x > 2) { printf("ok\n"); } return 0; }|}
  in
  Alcotest.(check bool) "no false positive" false (detected r);
  Alcotest.(check string) "output" "ok\n" r.Engine.output

let test_vg_sees_libc_heap_traffic () =
  (* the overflow happens inside strcpy (libc): binary instrumentation
     sees it when the destination is a heap block *)
  Alcotest.(check bool) "strcpy heap overflow" true
    (detected
       (run_vg
          {|int main(void) { char *d = (char*)malloc(4); strcpy(d, "overlong"); free(d); return 0; }|}))

let test_vg_bad_free () =
  Alcotest.(check bool) "invalid free" true
    (detected (run_vg "int main(void) { int x; free(&x); return 0; }"));
  Alcotest.(check bool) "double free" true
    (detected
       (run_vg "int main(void) { int *p = (int*)malloc(4); free(p); free(p); return 0; }"))

let () =
  Alcotest.run "sanitizers"
    [
      ( "shadow",
        [
          Alcotest.test_case "poison/check/unpoison" `Quick test_shadow_poison_check;
          Alcotest.test_case "kinds survive" `Quick test_shadow_kinds_survive;
        ]
        @ List.map QCheck_alcotest.to_alcotest shadow_props );
      ( "asan",
        [
          Alcotest.test_case "finds the basics" `Quick test_asan_finds_basics;
          Alcotest.test_case "report kinds" `Quick test_asan_report_kinds;
          Alcotest.test_case "misses main args" `Quick test_asan_misses_main_args;
          Alcotest.test_case "strtok gap + fix" `Quick
            test_asan_misses_strtok_by_default_finds_with_fix;
          Alcotest.test_case "quarantine heuristic" `Quick
            test_asan_quarantine_heuristic;
          Alcotest.test_case "finite redzone" `Quick test_asan_redzone_is_finite;
          Alcotest.test_case "strcpy interceptor" `Quick
            test_asan_interceptor_checks_strcpy;
          Alcotest.test_case "clean program unaffected" `Quick
            test_asan_clean_program_unaffected;
        ] );
      ( "memcheck",
        [
          Alcotest.test_case "heap yes, stack/global no" `Quick
            test_vg_finds_heap_misses_stack_global;
          Alcotest.test_case "UAF reliable" `Quick test_vg_uaf_reliable;
          Alcotest.test_case "uninitialised value" `Quick
            test_vg_uninitialised_value;
          Alcotest.test_case "no false positive on defined flow" `Quick
            test_vg_defined_flow_is_quiet;
          Alcotest.test_case "sees libc heap traffic" `Quick
            test_vg_sees_libc_heap_traffic;
          Alcotest.test_case "bad frees" `Quick test_vg_bad_free;
        ] );
    ]
