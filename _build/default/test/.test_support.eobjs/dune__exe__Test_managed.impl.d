test/test_managed.ml: Alcotest Irtype List Merror Mheap Mobject Prng QCheck QCheck_alcotest
