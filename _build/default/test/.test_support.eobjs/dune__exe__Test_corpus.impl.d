test/test_corpus.ml: Alcotest Corpus Effectiveness Engine Groundtruth Lazy List Outcome Pipeline Printf Table Util
