test/test_bugdb.mli:
