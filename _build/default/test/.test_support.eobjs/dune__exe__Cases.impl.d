test/cases.ml:
