test/test_support.ml: Alcotest Chart List Prng QCheck QCheck_alcotest Stats String Table Util
