test/test_managed.mli:
