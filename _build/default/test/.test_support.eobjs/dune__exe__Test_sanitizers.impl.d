test/test_sanitizers.ml: Alcotest Engine Int64 List Outcome Pipeline QCheck QCheck_alcotest Shadow
