test/test_bugdb.ml: Alcotest Classify Entry Figures12 Fmt Gen Lazy List Printf Table Util
