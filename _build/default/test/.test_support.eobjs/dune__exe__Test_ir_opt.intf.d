test/test_ir_opt.mli:
