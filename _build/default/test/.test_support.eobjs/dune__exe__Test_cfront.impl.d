test/test_cfront.ml: Alcotest Ast Ctype Diag Fmt Layout Lexer List Parser Sema Token
