test/test_interp.ml: Alcotest Cases Interp List Loader Merror Util
