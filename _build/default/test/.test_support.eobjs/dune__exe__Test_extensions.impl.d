test/test_extensions.ml: Ablations Alcotest Benchprogs Corpus Engine Groundtruth Interp Irmod List Loader Merror Option Outcome Pipeline Table Util
