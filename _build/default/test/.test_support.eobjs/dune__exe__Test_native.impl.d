test/test_native.ml: Alcotest Cases Engine List Outcome Pipeline Util
