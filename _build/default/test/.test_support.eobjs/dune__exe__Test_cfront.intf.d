test/test_cfront.mli:
