test/test_perf.ml: Alcotest Benchprogs Engine Float Lazy List Option Outcome Pipeline Printf Prng Simulate Stats String Util
