test/test_sanitizers.mli:
