(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation and micro-benchmarks the machinery behind each one
    with Bechamel (one [Test.make] per table/figure).

    Usage:
      dune exec bench/main.exe             # all experiments + microbenches
      dune exec bench/main.exe fig16       # one experiment
      dune exec bench/main.exe micro       # only the Bechamel microbenches *)

open Bechamel
open Toolkit

(* ---------------- the microbenchmarks (one per table/figure) -------- *)

(* FIG1/FIG2: keyword classification over the synthetic databases. *)
let bench_fig12 =
  let entries = lazy (Gen.generate Gen.Cve) in
  Test.make ~name:"fig1+2: classify CVE database"
    (Staged.stage (fun () -> ignore (Classify.trends (Lazy.force entries))))

(* TAB1/TAB2/CMP: one representative corpus program under Safe Sulong
   (the unit of work the effectiveness experiment repeats 68 x 5 times). *)
let bench_tab12 =
  let p = List.hd Corpus.all in
  Test.make ~name:"tab1+2: corpus program under Safe Sulong"
    (Staged.stage (fun () ->
         ignore
           (Engine.run ~argv:p.Groundtruth.argv ~input:p.Groundtruth.input
              Engine.Safe_sulong p.Groundtruth.source)))

let bench_cmp_asan =
  let p = List.hd Corpus.all in
  Test.make ~name:"cmp: corpus program under ASan"
    (Staged.stage (fun () ->
         ignore
           (Engine.run ~argv:p.Groundtruth.argv ~input:p.Groundtruth.input
              (Engine.Asan Pipeline.O0) p.Groundtruth.source)))

(* STARTUP: front end + libc link for hello world (the work behind the
   start-up numbers). *)
let bench_startup =
  Test.make ~name:"startup: load hello world"
    (Staged.stage (fun () ->
         ignore (Loader.load_program Benchprogs.hello.Benchprogs.b_source)))

(* FIG15: one meteor iteration in the managed interpreter (the unit the
   warm-up experiment repeats). *)
let bench_fig15 =
  let m = lazy (Loader.load_program Benchprogs.meteor.Benchprogs.b_source) in
  Test.make ~name:"fig15: meteor iteration (managed interpreter)"
    (Staged.stage (fun () ->
         let st = Interp.create (Irmod.copy (Lazy.force m)) in
         ignore (Interp.run st)))

(* FIG16: one benchmark under the native engine at -O0, plus the -O3
   pipeline itself (the peak measurement's units of work). *)
let bench_fig16_o0 =
  let m = lazy (Loader.compile_user Benchprogs.whetstone.Benchprogs.b_source) in
  Test.make ~name:"fig16: whetstone native -O0"
    (Staged.stage (fun () ->
         let st = Nexec.create (Irmod.copy (Lazy.force m)) in
         ignore (Nexec.run st)))

let bench_fig16_o3pipe =
  Test.make ~name:"fig16: the -O3 pipeline on whetstone"
    (Staged.stage (fun () ->
         let m = Loader.compile_user Benchprogs.whetstone.Benchprogs.b_source in
         Pipeline.compile_native ~level:Pipeline.O3 m))

(* Ablation benches from DESIGN.md par.5. *)
let bench_ablation_mementos =
  Test.make ~name:"ablation: binarytrees with allocation mementos"
    (Staged.stage (fun () ->
         ignore
           (Engine.run ~mementos:true Engine.Safe_sulong
              Benchprogs.binarytrees.Benchprogs.b_source)))

let bench_ablation_no_mementos =
  Test.make ~name:"ablation: binarytrees without mementos"
    (Staged.stage (fun () ->
         ignore
           (Engine.run ~mementos:false Engine.Safe_sulong
              Benchprogs.binarytrees.Benchprogs.b_source)))

let bench_ablation_inline =
  Test.make ~name:"ablation: -O3 + inlining pipeline on whetstone"
    (Staged.stage (fun () ->
         let m = Loader.compile_user Benchprogs.whetstone.Benchprogs.b_source in
         ignore (Inline.run m);
         Pipeline.compile_native ~level:Pipeline.O3 m))

let all_micro =
  [
    bench_fig12; bench_tab12; bench_cmp_asan; bench_startup; bench_fig15;
    bench_fig16_o0; bench_fig16_o3pipe; bench_ablation_mementos;
    bench_ablation_no_mementos; bench_ablation_inline;
  ]

let run_micro () =
  print_endline "\nMICRO - Bechamel microbenchmarks (one per experiment)";
  print_endline "=====================================================";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-52s %14.0f ns/run\n" name est
          | _ -> Printf.printf "  %-52s (no estimate)\n" name)
        ols)
    all_micro

(* ---------------- entry point ---------------- *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match which with
  | "fig1" -> Report.fig1 ()
  | "fig2" -> Report.fig2 ()
  | "tab1" | "tab2" | "cmp" -> Report.effectiveness ()
  | "startup" -> Report.startup ()
  | "fig15" -> Report.fig15 ()
  | "fig16" -> Report.fig16 ()
  | "ablations" -> Report.ablations ()
  | "micro" -> run_micro ()
  | "all" | _ ->
    Report.run_all ();
    run_micro ());
  print_newline ()
