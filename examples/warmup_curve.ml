(** The warm-up experiment (paper Fig. 15): execute meteor repeatedly and
    watch Safe Sulong go from slowest (AST interpretation) to fastest
    (compiled under safe semantics), crossing Valgrind and then ASan.

    Run with: dune exec examples/warmup_curve.exe *)

let () =
  print_endline "measuring meteor under every engine (one profiled run each)...";
  let ms = Measure.measure_bench Benchprogs.meteor in
  let w = Simulate.warmup ~duration_s:30 ms in
  Printf.printf "first Safe Sulong iteration completed at %.1f s\n"
    w.Simulate.wr_first_iteration_s;
  Printf.printf "functions compiled by the (simulated) Graal compiler:\n";
  List.iter
    (fun (t, f) -> Printf.printf "  %5.1f s  %s\n" t f)
    w.Simulate.wr_compiles;
  print_newline ();
  List.iter
    (fun (s : Simulate.warmup_series) ->
      Printf.printf "%-12s iterations/s: " s.Simulate.ws_tool;
      List.iter (fun (_, n) -> Printf.printf "%d " n) s.Simulate.ws_points;
      print_newline ())
    w.Simulate.wr_series;
  print_newline ();
  print_string
    (Chart.line_chart ~title:"Fig. 15: meteor warm-up (iterations per second)"
       (List.map
          (fun (s : Simulate.warmup_series) ->
            {
              Chart.name = s.Simulate.ws_tool;
              points =
                List.map
                  (fun (sec, n) -> (float_of_int sec, float_of_int n))
                  s.Simulate.ws_points;
            })
          w.Simulate.wr_series))
