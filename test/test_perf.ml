(** Performance-reproduction tests (paper §4.2–4.3): benchmark
    correctness across engines, and the qualitative shape assertions for
    start-up, warm-up and peak performance. *)

(* ---------------- benchmark correctness ---------------- *)

let outputs_agree (b : Benchprogs.bench) () =
  let out tool =
    let r = Engine.run tool b.Benchprogs.b_source in
    (match r.Engine.outcome with
    | Outcome.Finished 0 -> ()
    | o ->
      Alcotest.failf "%s under %s: %s" b.Benchprogs.b_name
        (Engine.tool_name tool) (Outcome.to_string o));
    r.Engine.output
  in
  let reference = out (Engine.Clang Pipeline.O0) in
  Alcotest.(check bool) "produces output" true (String.length reference > 0);
  List.iter
    (fun tool -> Alcotest.(check string) (Engine.tool_name tool) reference (out tool))
    [ Engine.Safe_sulong; Engine.Clang Pipeline.O3; Engine.Asan Pipeline.O0 ]

let bench_tests =
  List.map
    (fun (b : Benchprogs.bench) ->
      Alcotest.test_case b.Benchprogs.b_name `Slow (outputs_agree b))
    Benchprogs.all

(* ---------------- spot checks on benchmark results ---------------- *)

let bench_output name =
  match Benchprogs.find name with
  | Some b -> (Engine.run Engine.Safe_sulong b.Benchprogs.b_source).Engine.output
  | None -> Alcotest.fail ("no benchmark " ^ name)

let test_fannkuch_value () =
  (* Pfannkuchen(7) = 16 is the published value *)
  Alcotest.(check bool) "Pfannkuchen(7) = 16" true
    (Util.string_contains ~needle:"Pfannkuchen(7) = 16" (bench_output "fannkuchredux"))

let test_meteor_value () =
  (* domino tilings of 5x6 = 1183 (OEIS A004003 family) *)
  Alcotest.(check string) "tilings" "1183 solutions found\n" (bench_output "meteor")

let test_nbody_energy_conserved () =
  let out = bench_output "nbody" in
  match String.split_on_char '\n' out with
  | before :: after :: _ ->
    let e0 = float_of_string before and e1 = float_of_string after in
    Alcotest.(check bool) "energy roughly conserved" true
      (Float.abs (e0 -. e1) < 1e-3);
    Alcotest.(check bool) "energy negative" true (e0 < 0.0)
  | _ -> Alcotest.fail "unexpected nbody output"

let test_spectralnorm_value () =
  let out = bench_output "spectralnorm" in
  let v = float_of_string (String.trim out) in
  (* the published constant is 1.274224...; n=24 is close *)
  Alcotest.(check bool) "close to 1.2742" true (Float.abs (v -. 1.2742) < 0.01)

(* ---------------- peak shape (Fig. 16) ---------------- *)

let measurements =
  lazy (List.map Measure.measure_bench (Benchprogs.binarytrees :: Benchprogs.perf_suite))

let find_ms name =
  List.find (fun m -> m.Simulate.ms_name = name) (Lazy.force measurements)

let test_o3_faster_than_o0 () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Simulate.ms_name ^ ": O3 <= O0") true
        (m.Simulate.clang_o3 <= m.Simulate.clang_o0))
    (Lazy.force measurements)

let test_asan_slower_than_o0 () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Simulate.ms_name ^ ": ASan > O0") true
        (m.Simulate.asan > m.Simulate.clang_o0))
    (Lazy.force measurements)

let test_sulong_peak_beats_asan () =
  (* "In almost all benchmarks, Safe Sulong was faster than ASan" *)
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Simulate.ms_name ^ ": Sulong < ASan") true
        (Simulate.sulong_peak_cycles m < m.Simulate.asan))
    (Lazy.force measurements)

let test_valgrind_slowest () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Simulate.ms_name ^ ": Valgrind slowest") true
        (m.Simulate.valgrind > m.Simulate.asan))
    (Lazy.force measurements)

let test_binarytrees_story () =
  (* the paper's allocation-intensity result: ASan ~14x, Valgrind ~58x,
     Safe Sulong only ~1.7x *)
  let m = find_ms "binarytrees" in
  let asan_x = m.Simulate.asan /. m.Simulate.clang_o0 in
  let vg_x = m.Simulate.valgrind /. m.Simulate.clang_o0 in
  let sulong_x = Simulate.sulong_peak_cycles m /. m.Simulate.clang_o0 in
  Alcotest.(check bool) (Printf.sprintf "ASan heavy (%.1fx)" asan_x) true
    (asan_x > 8.0);
  Alcotest.(check bool) (Printf.sprintf "Valgrind heavier (%.1fx)" vg_x) true
    (vg_x > 25.0);
  Alcotest.(check bool) (Printf.sprintf "Sulong mild (%.2fx)" sulong_x) true
    (sulong_x < 3.0)

let test_valgrind_range () =
  (* paper: 10x-58x across 5 benchmarks, lower on FP-heavy ones *)
  List.iter
    (fun m ->
      let x = m.Simulate.valgrind /. m.Simulate.clang_o0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s valgrind factor %.1f in [2, 70]" m.Simulate.ms_name x)
        true
        (x >= 2.0 && x <= 70.0))
    (Lazy.force measurements)

let test_sulong_worst_is_fastaredux () =
  (* rank order: fastaredux is Safe Sulong's worst benchmark *)
  let rel m = Simulate.sulong_peak_cycles m /. m.Simulate.clang_o0 in
  let worst =
    List.fold_left
      (fun (wn, wv) m ->
        if m.Simulate.ms_name = "binarytrees" then (wn, wv)
        else begin
          let v = rel m in
          if v > wv then (m.Simulate.ms_name, v) else (wn, wv)
        end)
      ("", 0.0) (Lazy.force measurements)
  in
  Alcotest.(check string) "worst benchmark" "fastaredux" (fst worst)

let test_peak_boxplots_sane () =
  let rng = Prng.create 5 in
  let row = Simulate.peak ~rng (find_ms "mandelbrot") in
  Alcotest.(check bool) "O0 median is 1.0" true
    (Float.abs (row.Simulate.pk_clang_o0.Stats.med -. 1.0) < 0.05);
  Alcotest.(check bool) "boxes ordered" true
    (row.Simulate.pk_sulong.Stats.low <= row.Simulate.pk_sulong.Stats.high)

(* ---------------- start-up (paper §4.2) ---------------- *)

let test_startup_ordering () =
  let rows = Simulate.startup (Measure.measure_bench Benchprogs.hello) in
  let ms tool =
    (List.find (fun r -> r.Simulate.su_tool = tool) rows).Simulate.su_ms
  in
  Alcotest.(check bool) "Sulong slowest to start" true
    (ms "Safe Sulong" > ms "Valgrind");
  Alcotest.(check bool) "Valgrind beats only Sulong" true
    (ms "Valgrind" > ms "ASan");
  Alcotest.(check bool) "Sulong around 600ms" true
    (ms "Safe Sulong" > 450.0 && ms "Safe Sulong" < 800.0);
  Alcotest.(check bool) "Valgrind around 500ms" true
    (ms "Valgrind" > 350.0 && ms "Valgrind" < 650.0);
  Alcotest.(check bool) "ASan under 10ms" true (ms "ASan" < 10.0)

(* ---------------- warm-up (Fig. 15) ---------------- *)

let test_warmup_shape () =
  let ms = Measure.measure_bench Benchprogs.meteor in
  let w = Simulate.warmup ~duration_s:30 ms in
  let series name =
    (List.find (fun s -> s.Simulate.ws_tool = name) w.Simulate.wr_series)
      .Simulate.ws_points
  in
  let rate_at points sec = Option.value (List.assoc_opt sec points) ~default:0 in
  let sulong = series "Safe Sulong" and asan = series "ASan" in
  let vg = series "Valgrind" in
  (* start: Sulong slowest *)
  Alcotest.(check bool) "Sulong starts slower than Valgrind" true
    (rate_at sulong 1 < rate_at vg 1);
  (* the first iteration takes a while *)
  Alcotest.(check bool) "first iteration after 1s" true
    (w.Simulate.wr_first_iteration_s > 1.0);
  (* end: Sulong fastest (the paper's peak result) *)
  Alcotest.(check bool) "Sulong ends above ASan" true
    (rate_at sulong 29 > rate_at asan 29);
  Alcotest.(check bool) "ASan above Valgrind throughout" true
    (rate_at asan 29 > rate_at vg 29);
  (* ASan and Valgrind have no visible warm-up *)
  Alcotest.(check bool) "ASan flat" true
    (abs (rate_at asan 2 - rate_at asan 29) <= 2);
  (* compiles happened *)
  Alcotest.(check bool) "functions were compiled" true
    (List.length w.Simulate.wr_compiles >= 3)

let test_warmup_crossover_order () =
  let ms = Measure.measure_bench Benchprogs.meteor in
  let w = Simulate.warmup ~duration_s:30 ms in
  let series name =
    (List.find (fun s -> s.Simulate.ws_tool = name) w.Simulate.wr_series)
      .Simulate.ws_points
  in
  let first_sec_above a b =
    let rec go = function
      | [] -> None
      | (sec, _) :: rest ->
        let ra = Option.value (List.assoc_opt sec a) ~default:0 in
        let rb = Option.value (List.assoc_opt sec b) ~default:0 in
        if ra > rb && ra > 0 then Some sec else go rest
    in
    go a
  in
  let sulong = series "Safe Sulong" in
  let vg = series "Valgrind" and asan = series "ASan" in
  match (first_sec_above sulong vg, first_sec_above sulong asan) with
  | Some cross_vg, Some cross_asan ->
    Alcotest.(check bool)
      (Printf.sprintf "passes Valgrind (s %d) before ASan (s %d)" cross_vg
         cross_asan)
      true (cross_vg <= cross_asan)
  | _ -> Alcotest.fail "Safe Sulong never overtook the other tools"

(* ---------------- ablation: mementos ---------------- *)

let test_mementos_ablation () =
  (* with mementos disabled, behaviour is identical (checking is
     byte-granular either way); the reported object classes differ *)
  let src = Benchprogs.binarytrees.Benchprogs.b_source in
  let with_m = Engine.run ~mementos:true Engine.Safe_sulong src in
  let without_m = Engine.run ~mementos:false Engine.Safe_sulong src in
  Alcotest.(check string) "same output" with_m.Engine.output without_m.Engine.output;
  Alcotest.(check int) "same step count" with_m.Engine.steps without_m.Engine.steps

let () =
  Alcotest.run "perf"
    [
      ("benchmark correctness", bench_tests);
      ( "benchmark values",
        [
          Alcotest.test_case "fannkuch" `Quick test_fannkuch_value;
          Alcotest.test_case "meteor tilings" `Quick test_meteor_value;
          Alcotest.test_case "nbody energy" `Quick test_nbody_energy_conserved;
          Alcotest.test_case "spectralnorm" `Quick test_spectralnorm_value;
        ] );
      ( "peak shape",
        [
          Alcotest.test_case "O3 <= O0" `Slow test_o3_faster_than_o0;
          Alcotest.test_case "ASan > O0" `Slow test_asan_slower_than_o0;
          Alcotest.test_case "Sulong beats ASan" `Slow test_sulong_peak_beats_asan;
          Alcotest.test_case "Valgrind slowest" `Slow test_valgrind_slowest;
          Alcotest.test_case "binarytrees story" `Slow test_binarytrees_story;
          Alcotest.test_case "Valgrind range" `Slow test_valgrind_range;
          Alcotest.test_case "Sulong worst on fastaredux" `Slow
            test_sulong_worst_is_fastaredux;
          Alcotest.test_case "boxplots sane" `Slow test_peak_boxplots_sane;
        ] );
      ( "startup+warmup",
        [
          Alcotest.test_case "startup ordering" `Slow test_startup_ordering;
          Alcotest.test_case "warmup shape" `Slow test_warmup_shape;
          Alcotest.test_case "crossover order" `Slow test_warmup_crossover_order;
          Alcotest.test_case "mementos ablation" `Slow test_mementos_ablation;
        ] );
    ]
