(** Safe Sulong interpreter tests: the shared semantic battery, every
    error class of the paper, the varargs machinery, and engine limits. *)

let run ?(argv = [ "prog" ]) ?(input = "") src = Loader.run_source ~argv ~input src

let check_case (c : Cases.case) () =
  let r = run ~input:c.Cases.input c.Cases.src in
  (match r.Interp.error with
  | Some (_, msg) -> Alcotest.failf "%s: unexpected error: %s" c.Cases.name msg
  | None -> ());
  Alcotest.(check string) c.Cases.name c.Cases.expected r.Interp.output

let semantic_tests =
  List.map
    (fun (c : Cases.case) -> Alcotest.test_case c.Cases.name `Quick (check_case c))
    Cases.all

(* ---------------- error detection ---------------- *)

let expect_error ?(argv = [ "prog" ]) ?(input = "") category src () =
  let r = run ~argv ~input src in
  match r.Interp.error with
  | Some (got, _) ->
    Alcotest.(check string) "category" category (Merror.category_name got)
  | None -> Alcotest.failf "expected %s, program finished" category

let detection_tests =
  [
    Alcotest.test_case "stack overflow write" `Quick
      (expect_error "out-of-bounds"
         "int main(void) { int a[3]; a[3] = 1; return 0; }");
    Alcotest.test_case "stack underflow read" `Quick
      (expect_error "out-of-bounds"
         "int main(void) { int a[3]; int i = -1; return a[i]; }");
    Alcotest.test_case "heap overflow" `Quick
      (expect_error "out-of-bounds"
         "int main(void) { int *p = (int*)malloc(8); p[2] = 1; free(p); return 0; }");
    Alcotest.test_case "global overflow" `Quick
      (expect_error "out-of-bounds"
         "int g[2]; int main(int argc, char **argv) { return g[argc + 1]; }");
    Alcotest.test_case "main-args overflow" `Quick
      (expect_error "out-of-bounds"
         "int main(int argc, char **argv) { return argv[9] != 0; }");
    Alcotest.test_case "use-after-free" `Quick
      (expect_error "use-after-free"
         "int main(void) { int *p = (int*)malloc(4); free(p); return *p; }");
    Alcotest.test_case "double free" `Quick
      (expect_error "double-free"
         "int main(void) { int *p = (int*)malloc(4); free(p); free(p); return 0; }");
    Alcotest.test_case "invalid free of global" `Quick
      (expect_error "invalid-free"
         "int g; int main(void) { free(&g); return 0; }");
    Alcotest.test_case "invalid free of interior pointer" `Quick
      (expect_error "invalid-free"
         "int main(void) { char *p = (char*)malloc(8); free(p + 1); return 0; }");
    Alcotest.test_case "NULL read" `Quick
      (expect_error "null-dereference" "int main(void) { int *p = 0; return *p; }");
    Alcotest.test_case "NULL write" `Quick
      (expect_error "null-dereference"
         "int main(void) { int *p = 0; *p = 4; return 0; }");
    Alcotest.test_case "NULL through struct" `Quick
      (expect_error "null-dereference"
         "struct s { int v; }; int main(void) { struct s *p = 0; return p->v; }");
    Alcotest.test_case "NULL function pointer call" `Quick
      (expect_error "null-dereference"
         "int main(void) { int (*f)(void) = 0; return f(); }");
    Alcotest.test_case "missing vararg" `Quick
      (expect_error "out-of-bounds"
         {|int main(void) { printf("%d %d\n", 1); return 0; }|});
    Alcotest.test_case "printf %ld with int" `Quick
      (expect_error "out-of-bounds"
         {|int main(void) { int x = 1; printf("%ld\n", x); return 0; }|});
    Alcotest.test_case "division by zero" `Quick
      (expect_error "division-by-zero"
         "int main(int argc, char **argv) { return 10 / (argc - 1); }");
    Alcotest.test_case "free of forged pointer" `Quick
      (expect_error "invalid-free"
         "int main(void) { free((void*)0x12345); return 0; }");
    Alcotest.test_case "call through data pointer" `Quick
      (expect_error "type-violation"
         "int main(void) { int x = 1; int (*f)(void) = (int(*)(void))&x; return f(); }");
    Alcotest.test_case "deref of forged integer pointer" `Quick
      (expect_error "type-violation"
         "int main(void) { long v = 0x777777; int *p = (int*)v; return *p; }");
  ]

(* ---------------- error message quality ---------------- *)

let test_message_contents () =
  let r = run "int main(void) { int a[4]; a[4] = 1; return 0; }" in
  match r.Interp.error with
  | Some (_, msg) ->
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("mentions " ^ needle) true
          (Util.string_contains ~needle msg))
      [ "offset 16"; "16-byte"; "automatic"; "I32AutomaticArray"; "write" ]
  | None -> Alcotest.fail "expected an error"

let test_storage_in_messages () =
  let check src needle =
    let r = run src in
    match r.Interp.error with
    | Some (_, msg) ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (Util.string_contains ~needle msg)
    | None -> Alcotest.fail "expected error"
  in
  check "int main(void) { int *p = (int*)malloc(8); free(p); free(p); return 0; }"
    "twice";
  check "int g[2]; int main(int argc, char **argv) { return g[argc+1]; }" "static";
  check "int main(int argc, char **argv) { return argv[8] != 0; }" "main-arguments"

(* ---------------- pointer cookies through C ---------------- *)

let test_ptr_int_roundtrip_in_c () =
  let r =
    run
      {|
int main(void) {
  int x = 42;
  long cookie = (long)&x;
  int *p = (int *)cookie;
  printf("%d\n", *p);
  return 0;
}
|}
  in
  Alcotest.(check string) "roundtrip works" "42\n" r.Interp.output

(* ---------------- varargs machinery ---------------- *)

let test_count_and_get_varargs () =
  let r =
    run
      {|
int sum_all(int n, ...) {
  struct __varargs ap;
  __va_start(&ap);
  int total = 0;
  for (int i = 0; i < n; i++) {
    total += *(int *)__va_next(&ap);
  }
  __va_end(&ap);
  return total;
}
int main(void) {
  printf("%d %d\n", sum_all(3, 10, 20, 30), sum_all(0));
  return 0;
}
|}
  in
  (match r.Interp.error with
  | Some (_, m) -> Alcotest.fail m
  | None -> ());
  Alcotest.(check string) "user variadic function" "60 0\n" r.Interp.output

(* ---------------- pre-resolution edge cases ---------------- *)

(* Phi parallel-copy regression: LLVM phis are a parallel copy, so two
   same-block phis that read each other's registers must observe the
   *old* values.  The seed interpreter assigned phis sequentially, which
   collapses the classic swap loop (a,b = b,a) to (b,b).  The C front
   end never emits phis (locals are allocas), so the test builds the IR
   by hand — the same shape mem2reg produces for a swap loop. *)
let swap_phi_module () =
  (* regs: 0=a 1=b 2=i 3=i' 4=cond 5=a*10 6=a*10+b *)
  let imm v = Instr.ImmInt (Int64.of_int v, Irtype.I32) in
  let f =
    {
      Irfunc.name = "main";
      params = [];
      ret = Some Irtype.I32;
      variadic = false;
      blocks =
        [
          { Irfunc.label = "entry"; instrs = []; term = Instr.Br "loop" };
          {
            Irfunc.label = "loop";
            instrs =
              [
                Instr.Phi (0, Irtype.I32, [ ("entry", imm 1); ("loop", Instr.Reg 1) ]);
                Instr.Phi (1, Irtype.I32, [ ("entry", imm 2); ("loop", Instr.Reg 0) ]);
                Instr.Phi (2, Irtype.I32, [ ("entry", imm 0); ("loop", Instr.Reg 3) ]);
                Instr.Binop (3, Instr.Add, Irtype.I32, Instr.Reg 2, imm 1);
                Instr.Icmp (4, Instr.Islt, Irtype.I32, Instr.Reg 3, imm 3);
              ];
            term = Instr.Condbr (Instr.Reg 4, "loop", "done");
          };
          {
            Irfunc.label = "done";
            instrs =
              [
                Instr.Binop (5, Instr.Mul, Irtype.I32, Instr.Reg 0, imm 10);
                Instr.Binop (6, Instr.Add, Irtype.I32, Instr.Reg 5, Instr.Reg 1);
              ];
            term = Instr.Ret (Some (Irtype.I32, Instr.Reg 6));
          };
        ];
      next_reg = 7;
      src_pos = (0, 0);
      src_file = "<test>";
    }
  in
  let m = Irmod.create () in
  Irmod.add_func m f;
  m

let test_phi_parallel_copy () =
  let st = Interp.create (swap_phi_module ()) in
  let r = Interp.run st in
  (* after 3 parallel swaps of (1,2): a=1 b=2 -> 12; the sequential
     (buggy) execution returns 22 *)
  Alcotest.(check int) "parallel swap survives the loop" 12 r.Interp.exit_code

let test_unknown_symbol_call () =
  (* A direct call to a symbol that is neither a user function nor a
     builtin must raise the interpreter's clean "unknown builtin" error
     when (and only when) the call executes — not an unresolved-index
     crash at prepare/link time. *)
  let f =
    {
      Irfunc.name = "main";
      params = [];
      ret = Some Irtype.I32;
      variadic = false;
      blocks =
        [
          {
            Irfunc.label = "entry";
            instrs =
              [ Instr.Call (Some 0, Some Irtype.I32, Instr.Direct "no_such_symbol", []) ];
            term = Instr.Ret (Some (Irtype.I32, Instr.Reg 0));
          };
        ];
      next_reg = 1;
      src_pos = (0, 0);
      src_file = "<test>";
    }
  in
  let m = Irmod.create () in
  Irmod.add_func m f;
  let st = Interp.create m in
  (* creating (= preparing and linking) must not raise... *)
  match Interp.run st with
  | exception Failure msg ->
    (* ...while calling must fail with the pre-resolution-era message *)
    Alcotest.(check bool) ("clean message: " ^ msg) true
      (Util.string_contains ~needle:"unknown builtin no_such_symbol" msg)
  | _ -> Alcotest.fail "expected a Failure for the unknown symbol"

let test_unknown_symbol_never_called () =
  (* Same unknown symbol, but on a never-executed path: linking must not
     fail, and the program must finish normally. *)
  let imm v = Instr.ImmInt (Int64.of_int v, Irtype.I32) in
  let f =
    {
      Irfunc.name = "main";
      params = [];
      ret = Some Irtype.I32;
      variadic = false;
      blocks =
        [
          { Irfunc.label = "entry"; instrs = []; term = Instr.Condbr (imm 0, "dead", "out") };
          {
            Irfunc.label = "dead";
            instrs =
              [ Instr.Call (Some 0, Some Irtype.I32, Instr.Direct "no_such_symbol", []) ];
            term = Instr.Br "out";
          };
          { Irfunc.label = "out"; instrs = []; term = Instr.Ret (Some (Irtype.I32, imm 5)) };
        ];
      next_reg = 1;
      src_pos = (0, 0);
      src_file = "<test>";
    }
  in
  let m = Irmod.create () in
  Irmod.add_func m f;
  let r = Interp.run (Interp.create m) in
  Alcotest.(check int) "dead unknown call is harmless" 5 r.Interp.exit_code

let test_never_executed_block () =
  let r =
    run
      {|
int main(int argc, char **argv) {
  if (argc > 100) { printf("dead\n"); return 9; }
  return 0;
}
|}
  in
  (match r.Interp.error with
  | Some (_, m) -> Alcotest.fail m
  | None -> ());
  Alcotest.(check string) "dead block not executed" "" r.Interp.output;
  Alcotest.(check int) "live path exit code" 0 r.Interp.exit_code

let check_output name src expected () =
  let r = run src in
  (match r.Interp.error with
  | Some (_, m) -> Alcotest.failf "%s: unexpected error: %s" name m
  | None -> ());
  Alcotest.(check string) name expected r.Interp.output

let test_switch_dense_small =
  check_output "switch dense below threshold"
    {|
int main(void) {
  int i;
  for (i = 0; i < 6; i++) {
    int v;
    switch (i) {
    case 0: v = 10; break;
    case 1: v = 20; break;
    case 2: v = 30; break;
    default: v = -1; break;
    }
    printf("%d ", v);
  }
  printf("\n");
  return 0;
}
|}
    "10 20 30 -1 -1 -1 \n"

let test_switch_sparse_small =
  check_output "switch sparse below threshold"
    {|
int main(void) {
  int keys[5] = { 1, 100, 1000, 7, 100 };
  int i;
  for (i = 0; i < 5; i++) {
    switch (keys[i]) {
    case 1: printf("a"); break;
    case 100: printf("b"); break;
    case 1000: printf("c"); break;
    default: printf("?"); break;
    }
  }
  printf("\n");
  return 0;
}
|}
    "abc?b\n"

let test_switch_dense_large =
  check_output "switch dense above hashtable threshold"
    {|
int main(void) {
  int i;
  for (i = 0; i < 12; i++) {
    int v;
    switch (i) {
    case 0: v = 3; break;
    case 1: v = 6; break;
    case 2: v = 9; break;
    case 3: v = 12; break;
    case 4: v = 15; break;
    case 5: v = 18; break;
    case 6: v = 21; break;
    case 7: v = 24; break;
    case 8: v = 27; break;
    case 9: v = 30; break;
    default: v = -7; break;
    }
    printf("%d ", v);
  }
  printf("\n");
  return 0;
}
|}
    "3 6 9 12 15 18 21 24 27 30 -7 -7 \n"

let test_switch_sparse_large =
  check_output "switch sparse above hashtable threshold"
    {|
int classify(int x) {
  switch (x) {
  case -100: return 1;
  case 3: return 2;
  case 17: return 3;
  case 29: return 4;
  case 51: return 5;
  case 777: return 6;
  case 1000: return 7;
  case 4096: return 8;
  case 65535: return 9;
  case -7: return 10;
  default: return 0;
  }
}
int main(void) {
  printf("%d %d %d %d %d\n",
         classify(-100), classify(777), classify(65535), classify(5),
         classify(-7));
  return 0;
}
|}
    "1 6 9 0 10\n"

let test_indirect_call_cache_flip =
  (* The one-entry inline cache must survive a callee that changes on
     every iteration (permanent miss path) and still call the right
     function. *)
  check_output "indirect call target flips each iteration"
    {|
int add1(int x) { return x + 1; }
int mul2(int x) { return x * 2; }
int main(void) {
  int (*fp)(int);
  int s = 0;
  int i;
  for (i = 0; i < 6; i++) {
    if (i % 2) fp = add1; else fp = mul2;
    s += fp(i);
  }
  printf("%d\n", s);
  return 0;
}
|}
    "24\n"

(* ---------------- single-precision rounding and NaN pinning -------- *)

(* Pins the float semantics every engine must share, bit-exactly:
   - F32 arithmetic rounds each result to binary32 (reverting the
     [Irtype.round_result] fix keeps the double-precision intermediate
     and changes the first printed line);
   - int-to-F32 conversion rounds ((float)16777217 is 2^24);
   - NaN comparison semantics: ordered comparisons are false, [!=] is
     true ([exec_fcmp]'s Fne on NaN);
   - float-to-int conversion is saturating with NaN -> 0
     ([Irtype.float_to_int]).
   Float values print as IEEE-754 bits through a double store, never
   through a decimal formatter. *)
let f32_nan_src =
  {|
int main(void) {
  float one = 1.0f;
  float three = 3.0f;
  float a = 16777216.0f + one;
  float q = one / three;
  int n = 16777217;
  float c = (float)n;
  double z = 0.0;
  double qn = z / z;
  double big = 1e300;
  double pa = (double)a;
  double pq = (double)q;
  double pc = (double)c;
  printf("%lx %lx %lx\n", *(unsigned long *)&pa, *(unsigned long *)&pq,
         *(unsigned long *)&pc);
  printf("%d %d %d %d %d %d\n", qn == qn, qn != qn, qn < qn, qn <= qn,
         qn > qn, qn >= qn);
  printf("%ld %ld %ld\n", (long)qn, (long)big, (long)(0.0 - big));
  return 0;
}
|}

let f32_nan_expected =
  "4170000000000000 3fd5555560000000 4170000000000000\n\
   0 1 0 0 0 0\n\
   0 9223372036854775807 -9223372036854775808\n"

let test_f32_nan_semantics () =
  let r = run f32_nan_src in
  (match r.Interp.error with
  | Some (_, m) -> Alcotest.failf "unexpected error: %s" m
  | None -> ());
  Alcotest.(check string) "interpreter output" f32_nan_expected r.Interp.output

(* The same source through every oracle configuration: interpreter,
   forced-hot tier, fold on/off, safe-jit, and the native pipeline at
   -O0/-O3 must all print the same bits. *)
let test_f32_nan_all_engines () =
  match Oracle.check ~expected:f32_nan_expected f32_nan_src with
  | Oracle.Agree out ->
    Alcotest.(check string) "agreed output" f32_nan_expected out
  | Oracle.Reject why -> Alcotest.failf "rejected: %s" why
  | Oracle.Diverge { mismatch; _ } -> Alcotest.failf "diverged: %s" mismatch

(* ---------------- limits ---------------- *)

let test_step_limit () =
  let r = Loader.run_source ~step_limit:10_000 "int main(void) { while (1) {} return 0; }" in
  Alcotest.(check bool) "timed out" true r.Interp.timed_out

let test_recursion_guard () =
  let r = run "int f(int n) { return f(n + 1); } int main(void) { return f(0); }" in
  match r.Interp.error with
  | Some (Merror.Stack_overflow_guard, _) -> ()
  | Some (_, m) -> Alcotest.fail ("wrong error: " ^ m)
  | None -> Alcotest.fail "expected stack overflow guard"

let test_leak_report () =
  let r = run "int main(void) { malloc(10); malloc(20); return 0; }" in
  Alcotest.(check int) "two leaks" 2 r.Interp.leaks

let test_exit_code () =
  let r = run "int main(void) { return 42; }" in
  Alcotest.(check int) "exit code" 42 r.Interp.exit_code;
  let r2 = run "int main(void) { exit(3); return 0; }" in
  Alcotest.(check int) "exit()" 3 r2.Interp.exit_code

let test_argv_passing () =
  let r =
    run ~argv:[ "prog"; "alpha"; "beta" ]
      {|
int main(int argc, char **argv) {
  printf("%d %s %s\n", argc, argv[1], argv[2]);
  return 0;
}
|}
  in
  Alcotest.(check string) "argv contents" "3 alpha beta\n" r.Interp.output

let () =
  Alcotest.run "interp"
    [
      ("semantics", semantic_tests);
      ("detection", detection_tests);
      ( "messages",
        [
          Alcotest.test_case "message contents" `Quick test_message_contents;
          Alcotest.test_case "storage kinds" `Quick test_storage_in_messages;
        ] );
      ( "pointers+varargs",
        [
          Alcotest.test_case "ptr/int roundtrip" `Quick test_ptr_int_roundtrip_in_c;
          Alcotest.test_case "user variadic function" `Quick
            test_count_and_get_varargs;
        ] );
      ( "pre-resolution",
        [
          Alcotest.test_case "phi parallel copy (swap loop)" `Quick
            test_phi_parallel_copy;
          Alcotest.test_case "unknown symbol: clean error when called" `Quick
            test_unknown_symbol_call;
          Alcotest.test_case "unknown symbol: harmless when dead" `Quick
            test_unknown_symbol_never_called;
          Alcotest.test_case "never-executed block" `Quick
            test_never_executed_block;
          Alcotest.test_case "switch dense small" `Quick test_switch_dense_small;
          Alcotest.test_case "switch sparse small" `Quick
            test_switch_sparse_small;
          Alcotest.test_case "switch dense large" `Quick test_switch_dense_large;
          Alcotest.test_case "switch sparse large" `Quick
            test_switch_sparse_large;
          Alcotest.test_case "indirect call inline-cache miss path" `Quick
            test_indirect_call_cache_flip;
        ] );
      ( "float semantics",
        [
          Alcotest.test_case "F32 rounding + NaN pinning" `Quick
            test_f32_nan_semantics;
          Alcotest.test_case "same bits in every engine" `Quick
            test_f32_nan_all_engines;
        ] );
      ( "limits",
        [
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "recursion guard" `Quick test_recursion_guard;
          Alcotest.test_case "leak report" `Quick test_leak_report;
          Alcotest.test_case "exit codes" `Quick test_exit_code;
          Alcotest.test_case "argv passing" `Quick test_argv_passing;
        ] );
    ]
