(** Tests for the work-stealing campaign driver (lib/difftest/campaign),
    its framed worker transport (lib/difftest/wire), the persistent
    ledger, and the deduplicating bug store (lib/bugdb/bugstore).

    The fault-injection cases fork real worker processes and SIGKILL
    them mid-campaign, so this suite runs as its own executable under
    the @farm alias (wired into the default @runtest). *)

let features = Cgen.int_only

(* Two campaign runs "match" when they cover the same seeds and agree on
   every verdict; only rp_elapsed_s may differ. *)
let report_fingerprint (r : Difftest.report) : string =
  Printf.sprintf "start=%d seeds=%d features=%s agree=%d reject=%d divs=[%s]"
    r.Difftest.rp_seed_start r.Difftest.rp_seeds r.Difftest.rp_features
    r.Difftest.rp_agree r.Difftest.rp_reject
    (String.concat ";"
       (List.map
          (fun d ->
            Printf.sprintf "%d:%s:%s" d.Difftest.dv_seed d.Difftest.dv_mismatch
              (Difftest.signature_key d.Difftest.dv_sig))
          r.Difftest.rp_divergences))

(* ---------------- chunking and shard boundaries ---------------- *)

let check_cover what ~seed_start ~seeds (chunks : Campaign.chunk list) =
  (* Exactly-once coverage: the chunks, in order, tile the seed range. *)
  let next = ref seed_start in
  List.iter
    (fun c ->
      if c.Campaign.ck_start <> !next then
        Alcotest.failf "%s: chunk starts at %d, expected %d" what
          c.Campaign.ck_start !next;
      if c.Campaign.ck_len <= 0 then
        Alcotest.failf "%s: empty chunk at %d" what c.Campaign.ck_start;
      next := c.Campaign.ck_start + c.Campaign.ck_len)
    chunks;
  Alcotest.(check int) (what ^ ": chunks end at range end") (seed_start + seeds)
    !next

let test_chunks_of () =
  let chunks ~seed_start ~seeds ~chunk_size =
    Campaign.chunks_of ~seed_start ~seeds ~chunk_size
  in
  check_cover "even split" ~seed_start:0 ~seeds:20
    (chunks ~seed_start:0 ~seeds:20 ~chunk_size:5);
  check_cover "remainder" ~seed_start:0 ~seeds:23
    (chunks ~seed_start:0 ~seeds:23 ~chunk_size:5);
  check_cover "offset start" ~seed_start:1000 ~seeds:7
    (chunks ~seed_start:1000 ~seeds:7 ~chunk_size:3);
  check_cover "chunk larger than range" ~seed_start:3 ~seeds:4
    (chunks ~seed_start:3 ~seeds:4 ~chunk_size:100);
  check_cover "chunk of one" ~seed_start:0 ~seeds:5
    (chunks ~seed_start:0 ~seeds:5 ~chunk_size:1);
  Alcotest.(check int) "empty range has no chunks" 0
    (List.length (chunks ~seed_start:0 ~seeds:0 ~chunk_size:5));
  Alcotest.(check int) "even split count" 4
    (List.length (chunks ~seed_start:0 ~seeds:20 ~chunk_size:5));
  Alcotest.(check int) "remainder adds a short tail chunk" 5
    (List.length (chunks ~seed_start:0 ~seeds:23 ~chunk_size:5))

let test_shard_range () =
  let cover ~seed_start ~seeds ~jobs =
    (* Shards must tile the range in order, exactly once. *)
    let next = ref seed_start in
    for i = 0 to jobs - 1 do
      let s, n = Difftest.shard_range ~seed_start ~seeds ~jobs i in
      if n > 0 then begin
        Alcotest.(check int)
          (Printf.sprintf "shard %d/%d starts where %d ended" i jobs (i - 1))
          !next s;
        next := s + n
      end
    done;
    Alcotest.(check int)
      (Printf.sprintf "shards of %d over %d cover the range" seeds jobs)
      (seed_start + seeds) !next
  in
  cover ~seed_start:0 ~seeds:100 ~jobs:4;
  cover ~seed_start:0 ~seeds:101 ~jobs:4;
  cover ~seed_start:17 ~seeds:3 ~jobs:8;
  cover ~seed_start:0 ~seeds:1 ~jobs:1

(* ---------------- wire framing ---------------- *)

let test_wire_roundtrip () =
  let r, w = Unix.pipe () in
  let sent = ("hello", [ 1; 2; 3 ], 4.5) in
  Wire.send w sent;
  (match Wire.recv r with
  | Ok v ->
    Alcotest.(check bool) "value round-trips" true (v = sent)
  | Error `Eof -> Alcotest.fail "unexpected EOF"
  | Error (`Corrupt msg) -> Alcotest.failf "unexpected corruption: %s" msg);
  Unix.close w;
  (match Wire.recv r with
  | Error `Eof -> ()
  | Ok _ -> Alcotest.fail "expected EOF after close"
  | Error (`Corrupt msg) -> Alcotest.failf "EOF read as corruption: %s" msg);
  Unix.close r

let test_wire_detects_corruption () =
  (* Capture a frame, flip one payload byte, replay it. *)
  let r, w = Unix.pipe () in
  Wire.send w (42, "payload");
  Unix.close w;
  let buf = Bytes.create 65536 in
  let n = Unix.read r buf 0 (Bytes.length buf) in
  Unix.close r;
  Alcotest.(check bool) "frame is header + payload" true (n > 16);
  Bytes.set buf (n - 1) (Char.chr (Char.code (Bytes.get buf (n - 1)) lxor 0xff));
  let r2, w2 = Unix.pipe () in
  let _ = Unix.write w2 buf 0 n in
  Unix.close w2;
  (match Wire.recv r2 with
  | Error (`Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "corrupted frame accepted"
  | Error `Eof -> Alcotest.fail "corrupted frame read as EOF");
  Unix.close r2;
  (* A truncated frame (killed writer) must read as corruption or EOF,
     never as a value. *)
  let r3, w3 = Unix.pipe () in
  let _ = Unix.write w3 buf 0 (n / 2) in
  Unix.close w3;
  (match Wire.recv r3 with
  | Ok _ -> Alcotest.fail "truncated frame accepted"
  | Error (`Eof | `Corrupt _) -> ());
  Unix.close r3

let test_wire_rejects_garbage () =
  let r, w = Unix.pipe () in
  let junk = Bytes.of_string "this is not a SULG frame, not even close." in
  let _ = Unix.write w junk 0 (Bytes.length junk) in
  Unix.close w;
  (match Wire.recv r with
  | Error (`Corrupt _ | `Eof) -> ()
  | Ok _ -> Alcotest.fail "garbage accepted as a frame");
  Unix.close r

(* ---------------- campaign vs in-process oracle ---------------- *)

let seeds = 18

let baseline =
  lazy (Difftest.run ~features ~seed_start:0 ~seeds ())

let test_campaign_matches_run () =
  let o = Campaign.run ~features ~jobs:2 ~chunk:4 ~seed_start:0 ~seeds () in
  Alcotest.(check string) "campaign report equals in-process run"
    (report_fingerprint (Lazy.force baseline))
    (report_fingerprint o.Campaign.co_report);
  check_cover "campaign chunks" ~seed_start:0 ~seeds
    (List.map
       (fun cr ->
         { Campaign.ck_start = cr.Campaign.cr_start; ck_len = cr.Campaign.cr_len })
       o.Campaign.co_chunks);
  Alcotest.(check int) "no worker deaths" 0 o.Campaign.co_worker_deaths;
  Alcotest.(check bool) "not interrupted" false o.Campaign.co_interrupted

let test_campaign_streams_progress () =
  (* The ?progress callback must fire as chunks complete (not once at
     the end), monotonically, and reach the full seed count. *)
  let calls = ref [] in
  let _ =
    Campaign.run ~features ~jobs:2 ~chunk:4 ~seed_start:0 ~seeds
      ~progress:(fun n -> calls := n :: !calls)
      ()
  in
  let calls = List.rev !calls in
  Alcotest.(check bool) "several progress events" true (List.length calls >= 3);
  Alcotest.(check bool) "monotonic" true
    (fst
       (List.fold_left
          (fun (ok, prev) n -> (ok && n > prev, n))
          (true, -1) calls));
  Alcotest.(check int) "last event covers all seeds" seeds
    (List.nth calls (List.length calls - 1))

let test_campaign_survives_worker_death () =
  (* Chaos hook: SIGKILL the worker right after it is handed its chunk,
     twice, at different points in the campaign.  The driver must
     requeue the lost chunks, respawn workers, and produce the same
     report as an unkilled run — every seed exactly once. *)
  let kills = ref 2 in
  let chaos (ck : Campaign.chunk) =
    if !kills > 0 && ck.Campaign.ck_start mod 8 = 4 then begin
      decr kills;
      true
    end
    else false
  in
  let o =
    Campaign.run ~features ~jobs:2 ~chunk:4 ~seed_start:0 ~seeds ~chaos ()
  in
  Alcotest.(check bool) "workers died" true (o.Campaign.co_worker_deaths >= 1);
  Alcotest.(check bool) "chunks were requeued" true
    (o.Campaign.co_requeues >= 1);
  Alcotest.(check string) "report identical to unkilled run"
    (report_fingerprint (Lazy.force baseline))
    (report_fingerprint o.Campaign.co_report);
  check_cover "chunks still tile the range" ~seed_start:0 ~seeds
    (List.map
       (fun cr ->
         { Campaign.ck_start = cr.Campaign.cr_start; ck_len = cr.Campaign.cr_len })
       o.Campaign.co_chunks)

(* ---------------- ledger round-trip ---------------- *)

let with_temp f =
  let file = Filename.temp_file "sulong-campaign" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () -> f file)

let test_ledger_roundtrip () =
  with_temp (fun ledger ->
      let o1 =
        Campaign.run ~features ~jobs:2 ~chunk:4 ~ledger ~seed_start:0 ~seeds ()
      in
      (* Simulate a crash: drop the last complete line and leave a torn
         fragment of it behind. *)
      let ic = open_in_bin ledger in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
      let keep = List.filteri (fun i _ -> i < List.length lines - 1) lines in
      let torn = List.nth lines (List.length lines - 1) in
      let oc = open_out_bin ledger in
      List.iter (fun l -> output_string oc (l ^ "\n")) keep;
      output_string oc (String.sub torn 0 (String.length torn / 2));
      close_out oc;
      let o2 = Campaign.resume ~jobs:2 ~ledger () in
      Alcotest.(check bool) "resume skipped completed seeds" true
        (o2.Campaign.co_resumed_seeds > 0
        && o2.Campaign.co_resumed_seeds < seeds);
      Alcotest.(check string) "resumed report equals original"
        (report_fingerprint o1.Campaign.co_report)
        (report_fingerprint o2.Campaign.co_report);
      (* After resume the ledger must be whole again: a second resume
         parses it and has nothing left to do. *)
      let o3 = Campaign.resume ~ledger () in
      Alcotest.(check int) "ledger now complete" seeds
        o3.Campaign.co_resumed_seeds;
      Alcotest.(check string) "second resume still matches"
        (report_fingerprint o1.Campaign.co_report)
        (report_fingerprint o3.Campaign.co_report))

let test_ledger_rejects_garbage () =
  let expect_error what file =
    match Campaign.load_ledger ~file with
    | _ -> Alcotest.failf "%s: bogus ledger accepted" what
    | exception Campaign.Ledger_error _ -> ()
  in
  with_temp (fun file ->
      let oc = open_out_bin file in
      output_string oc "{\"ledger\": \"some-other-tool\", \"version\": 1}\n";
      close_out oc;
      expect_error "wrong tag" file);
  with_temp (fun file ->
      let oc = open_out_bin file in
      close_out oc;
      expect_error "empty file" file);
  with_temp (fun file ->
      (* A malformed line that is NOT final is corruption, not a torn
         append — it must raise rather than silently dropping seeds. *)
      let header =
        Campaign.header_line
          {
            Campaign.lh_seed_start = 0;
            lh_seeds = 10;
            lh_features = features;
            lh_chunk = 5;
            lh_shrink = false;
            lh_shrink_budget = 200;
          }
      in
      let oc = open_out_bin file in
      output_string oc (header ^ "\n");
      output_string oc "{\"chunk_start\": 0, \"len\": 5, \"ag\n";
      output_string oc
        "{\"chunk_start\": 5, \"len\": 5, \"agree\": 5, \"rejects\": 0, \
         \"divergences\": []}\n";
      close_out oc;
      expect_error "mid-file corruption" file)

(* A chunk line carrying everything at once — a divergence with hostile
   characters, flight-recorder events and a reduced form, plus per-seed
   stats — must survive the serialize/parse round trip (the ledger is
   the only path where these travel as JSON rather than Marshal). *)
let test_ledger_divergence_roundtrip () =
  let d =
    {
      Difftest.dv_seed = 42;
      dv_mismatch = "outcome \"a\" vs b\\c";
      dv_sig =
        { Difftest.sg_kind = "detected:oob"; sg_loc = "t.c:3:1"; sg_configs = 6 };
      dv_source = "int main(void) {\n  return \"x\"[9];\n}";
      dv_reduced = Some "int main(void) { return 1; }";
      dv_oracle_calls = 17;
      dv_events =
        [ "#0     tier-up        main (ops=3, invocations=1)"; "#1     deopt  main (\"oob\")" ];
    }
  in
  let cr =
    {
      Campaign.cr_start = 40;
      cr_len = 5;
      cr_agree = 4;
      cr_reject = 0;
      cr_divergences = [ d ];
      cr_stats =
        [
          { Difftest.ss_seed = 40; ss_elapsed_s = 0.125; ss_steps = 9001 };
          { Difftest.ss_seed = 41; ss_elapsed_s = 0.5; ss_steps = 12 };
        ];
    }
  in
  let cr' =
    Campaign.chunk_result_of_json (Trace.parse_json (Campaign.chunk_line cr))
  in
  Alcotest.(check int) "start" cr.Campaign.cr_start cr'.Campaign.cr_start;
  (match cr'.Campaign.cr_divergences with
  | [ d' ] ->
    Alcotest.(check int) "seed" d.Difftest.dv_seed d'.Difftest.dv_seed;
    Alcotest.(check string) "mismatch" d.Difftest.dv_mismatch
      d'.Difftest.dv_mismatch;
    Alcotest.(check string) "source" d.Difftest.dv_source d'.Difftest.dv_source;
    Alcotest.(check (option string)) "reduced" d.Difftest.dv_reduced
      d'.Difftest.dv_reduced;
    Alcotest.(check (list string)) "events" d.Difftest.dv_events
      d'.Difftest.dv_events;
    Alcotest.(check int) "configs" d.Difftest.dv_sig.Difftest.sg_configs
      d'.Difftest.dv_sig.Difftest.sg_configs
  | ds -> Alcotest.failf "expected 1 divergence, got %d" (List.length ds));
  match cr'.Campaign.cr_stats with
  | [ s0; s1 ] ->
    Alcotest.(check int) "stat seed" 40 s0.Difftest.ss_seed;
    Alcotest.(check (float 1e-6)) "stat elapsed" 0.125 s0.Difftest.ss_elapsed_s;
    Alcotest.(check int) "stat steps" 9001 s0.Difftest.ss_steps;
    Alcotest.(check int) "stat seed 2" 41 s1.Difftest.ss_seed
  | ss -> Alcotest.failf "expected 2 seed stats, got %d" (List.length ss)

(* ---------------- bug store ---------------- *)

let test_bugstore_dedup () =
  let t = Bugstore.create () in
  let record ~seed ~repro =
    Bugstore.record t ~key:"detected:oob @ t.c:3:1 # 0x6" ~kind:"detected:oob"
      ~loc:"t.c:3:1" ~configs:6 ~seed ~mismatch:"exit status differs" ~repro
  in
  Alcotest.(check bool) "first sighting is new" true
    (record ~seed:50 ~repro:"int main() { return 0; }" = `New);
  Alcotest.(check bool) "same signature is a dup" true
    (record ~seed:12 ~repro:"short" = `Dup);
  Alcotest.(check bool) "other signature is new" true
    (Bugstore.record t ~key:"other" ~kind:"finished:1" ~loc:"" ~configs:1
       ~seed:99 ~mismatch:"m" ~repro:"r"
    = `New);
  Alcotest.(check int) "two unique signatures" 2 (Bugstore.size t);
  let e =
    List.find
      (fun e -> e.Bugstore.be_kind = "detected:oob")
      (Bugstore.entries t)
  in
  Alcotest.(check int) "count accumulates" 2 e.Bugstore.be_count;
  Alcotest.(check int) "first seed is the minimum" 12 e.Bugstore.be_first_seed;
  Alcotest.(check string) "shortest reproducer wins" "short"
    e.Bugstore.be_repro

let test_bugstore_save_load () =
  with_temp (fun file ->
      let t = Bugstore.create () in
      ignore
        (Bugstore.record t ~key:"k \"quoted\"\n" ~kind:"detected:div0"
           ~loc:"a.c:1:2" ~configs:3 ~seed:7 ~mismatch:"m\twith\ttabs"
           ~repro:"line1\nline2\n");
      ignore
        (Bugstore.record t ~key:"k2" ~kind:"finished:3" ~loc:"" ~configs:128
           ~seed:1 ~mismatch:"m2" ~repro:"r2");
      Bugstore.save t ~file;
      let t2 = Bugstore.load ~file in
      Alcotest.(check int) "size survives" (Bugstore.size t)
        (Bugstore.size t2);
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (Printf.sprintf "entry %s round-trips" a.Bugstore.be_key)
            true (a = b))
        (Bugstore.entries t) (Bugstore.entries t2);
      (* Loading a missing file starts an empty store (first campaign). *)
      Sys.remove file;
      Alcotest.(check int) "missing file loads empty" 0
        (Bugstore.size (Bugstore.load ~file)))

let test_signature_key () =
  let obs_sig =
    {
      Difftest.sg_kind = "detected:oob|finished:0";
      sg_loc = "t.c:4:9";
      sg_configs = 0x44;
    }
  in
  Alcotest.(check string) "rendered key"
    "detected:oob|finished:0 @ t.c:4:9 # 0x44"
    (Difftest.signature_key obs_sig);
  Alcotest.(check string) "missing location renders as -"
    "finished:1 @ - # 0x2"
    (Difftest.signature_key
       { Difftest.sg_kind = "finished:1"; sg_loc = ""; sg_configs = 2 })

let () =
  Alcotest.run "campaign"
    [
      ( "chunking",
        [
          Alcotest.test_case "chunks_of boundaries" `Quick test_chunks_of;
          Alcotest.test_case "shard_range boundaries" `Quick test_shard_range;
        ] );
      ( "wire",
        [
          Alcotest.test_case "round-trip and EOF" `Quick test_wire_roundtrip;
          Alcotest.test_case "detects corruption" `Quick
            test_wire_detects_corruption;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
        ] );
      ( "driver",
        [
          Alcotest.test_case "matches in-process run" `Slow
            test_campaign_matches_run;
          Alcotest.test_case "streams progress" `Slow
            test_campaign_streams_progress;
          Alcotest.test_case "survives worker death" `Slow
            test_campaign_survives_worker_death;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "write, tear, resume" `Slow test_ledger_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_ledger_rejects_garbage;
          Alcotest.test_case "divergence with events + stats round-trips"
            `Quick test_ledger_divergence_roundtrip;
        ] );
      ( "bug store",
        [
          Alcotest.test_case "dedups by signature" `Quick test_bugstore_dedup;
          Alcotest.test_case "save/load round-trip" `Quick
            test_bugstore_save_load;
          Alcotest.test_case "signature key rendering" `Quick
            test_signature_key;
        ] );
    ]
