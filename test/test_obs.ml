(** Tests for the observability subsystem (lib/obs): metric histogram
    bucketing and cross-process merging, trace span nesting and Chrome
    JSON well-formedness, ASan-style provenance reports (one golden bug
    per [Merror] kind plus a whole-corpus sweep), and the C11 6.8.4.2
    switch-label conversion semantics the differential campaign now
    exercises without the old [(long)] scrutinee cast. *)

(* Naive substring search; enough for asserting on rendered reports. *)
let contains (haystack : string) (needle : string) : bool =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let with_metrics (f : unit -> 'a) : 'a =
  Metrics.reset ();
  Metrics.enabled := true;
  Fun.protect f ~finally:(fun () ->
      Metrics.enabled := false;
      Metrics.reset ())

(* ---------------- metrics: log2 bucketing ---------------- *)

let test_bucket_of () =
  let check what expected v =
    Alcotest.(check int) what expected (Metrics.bucket_of v)
  in
  check "zero" 0 0.0;
  check "negative" 0 (-3.0);
  check "below one" 0 0.99;
  check "nan" 0 Float.nan;
  check "one" 1 1.0;
  check "just under two" 1 1.99;
  check "two" 2 2.0;
  check "three" 2 3.0;
  check "four" 3 4.0;
  check "1024" 11 1024.0;
  check "2^62" 63 4.611686018427387904e18;
  check "huge saturates" 63 1e300;
  check "infinity saturates" 63 Float.infinity

let test_histogram_observe () =
  with_metrics (fun () ->
      let h = Metrics.histogram "t.h" in
      List.iter (Metrics.observe h) [ 0.0; 1.0; 1.5; 2.0; 1000.0 ];
      Alcotest.(check int) "count" 5 h.Metrics.h_count;
      Alcotest.(check (float 1e-9)) "sum" 1004.5 h.Metrics.h_sum;
      Alcotest.(check int) "bucket 0" 1 h.Metrics.h_buckets.(0);
      Alcotest.(check int) "bucket 1" 2 h.Metrics.h_buckets.(1);
      Alcotest.(check int) "bucket 2" 1 h.Metrics.h_buckets.(2);
      Alcotest.(check int) "bucket 10" 1 h.Metrics.h_buckets.(10))

(* Merging a snapshot twice must double counters and histogram buckets
   but keep the max for gauges — the sharded-difftest aggregation
   semantics. *)
let test_snapshot_merge () =
  with_metrics (fun () ->
      Metrics.add (Metrics.counter "t.c") 7;
      Metrics.set (Metrics.gauge "t.g") 3.5;
      Metrics.observe (Metrics.histogram "t.h") 5.0;
      let sn = Metrics.snapshot () in
      Metrics.reset ();
      Metrics.merge sn;
      Metrics.merge sn;
      let m = Metrics.snapshot () in
      Alcotest.(check (list (pair string int)))
        "counters add" [ ("t.c", 14) ] m.Metrics.sn_counters;
      Alcotest.(check (list (pair string (float 1e-9))))
        "gauges keep max" [ ("t.g", 3.5) ] m.Metrics.sn_gauges;
      match m.Metrics.sn_histograms with
      | [ (name, count, sum, buckets) ] ->
        Alcotest.(check string) "histogram name" "t.h" name;
        Alcotest.(check int) "histogram count adds" 2 count;
        Alcotest.(check (float 1e-9)) "histogram sum adds" 10.0 sum;
        Alcotest.(check int) "histogram bucket adds" 2 buckets.(3)
      | hs ->
        Alcotest.fail
          (Printf.sprintf "expected one histogram, got %d" (List.length hs)))

let test_disabled_time_is_noop () =
  Metrics.reset ();
  Metrics.enabled := false;
  Alcotest.(check int) "result passes through" 42
    (Metrics.time "t.never" (fun () -> 42));
  let sn = Metrics.snapshot () in
  Alcotest.(check int) "no histogram created" 0
    (List.length sn.Metrics.sn_histograms)

(* ---------------- metrics: JSON float safety ---------------- *)

(* JSON has no NaN/Infinity literals; a gauge set from a 0/0 rate must
   render as null, not "nan" (which every parser rejects). *)
let test_json_float_nonfinite () =
  Alcotest.(check string) "nan" "null" (Metrics.json_float Float.nan);
  Alcotest.(check string) "+inf" "null" (Metrics.json_float Float.infinity);
  Alcotest.(check string) "-inf" "null" (Metrics.json_float Float.neg_infinity);
  Alcotest.(check string) "finite" "3.5" (Metrics.json_float 3.5);
  Alcotest.(check string) "integral" "42" (Metrics.json_float 42.0)

let test_to_json_nonfinite_parses () =
  with_metrics (fun () ->
      Metrics.set (Metrics.gauge "t.rate") (0.0 /. 0.0);
      Metrics.set (Metrics.gauge "t.peak") Float.infinity;
      let doc = Metrics.to_json () in
      Alcotest.(check bool) "no bare nan" false (contains doc "nan");
      Alcotest.(check bool) "no bare inf" false (contains doc "inf");
      match Trace.parse_json doc with
      | _ -> ()
      | exception Trace.Bad msg ->
        Alcotest.fail ("metrics JSON with non-finite gauges rejected: " ^ msg))

(* ---------------- metrics: quantile interpolation ---------------- *)

(* Bucket 0 spans [0,1), bucket i spans [2^(i-1), 2^i); positions inside
   a bucket interpolate linearly. *)
let test_quantile_interpolation () =
  let bs = Array.make 64 0 in
  bs.(1) <- 4;
  (* four samples in [1,2): p50 lands halfway through the bucket *)
  Alcotest.(check (float 1e-9)) "p50 mid-bucket" 1.5
    (Metrics.quantile ~count:4 bs 0.50);
  Alcotest.(check (float 1e-9)) "p100 bucket top" 2.0
    (Metrics.quantile ~count:4 bs 1.0);
  let bs2 = Array.make 64 0 in
  bs2.(1) <- 2;
  bs2.(3) <- 2;
  (* two in [1,2), two in [4,8): p90's target rank 3.6 sits 0.8 into
     the second populated bucket -> 4 + 0.8*4 = 7.2 *)
  Alcotest.(check (float 1e-9)) "p90 across buckets" 7.2
    (Metrics.quantile ~count:4 bs2 0.90);
  Alcotest.(check (float 1e-9)) "empty histogram" 0.0
    (Metrics.quantile ~count:0 bs2 0.99)

let test_quantiles_in_renderings () =
  with_metrics (fun () ->
      let h = Metrics.histogram "t.lat" in
      List.iter (Metrics.observe h) [ 1.0; 1.2; 1.4; 1.6 ];
      let txt = Metrics.to_text () in
      Alcotest.(check bool) "to_text has p50" true (contains txt "p50=1.5");
      Alcotest.(check bool) "to_text has p99" true (contains txt "p99=");
      let doc = Metrics.to_json () in
      Alcotest.(check bool) "to_json has p50" true (contains doc "\"p50\":1.5");
      match Trace.parse_json doc with
      | _ -> ()
      | exception Trace.Bad msg -> Alcotest.fail ("metrics JSON rejected: " ^ msg))

(* ---------------- tracing: spans and validation ---------------- *)

let test_span_nesting () =
  Trace.start ();
  Trace.span "outer" (fun () ->
      Trace.span "inner" (fun () -> ());
      Trace.instant ~args:[ ("k", "v") ] "tick");
  let doc = Trace.finish () in
  (match Trace.validate doc with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("trace rejected: " ^ msg));
  Alcotest.(check bool) "outer present" true (contains doc "\"outer\"");
  Alcotest.(check bool) "inner present" true (contains doc "\"inner\"");
  Alcotest.(check bool) "instant args present" true (contains doc "\"k\":\"v\"")

(* The "E" must be emitted on the exception path too, or the document
   ends with an unclosed span. *)
let test_span_exception_safe () =
  Trace.start ();
  (try Trace.span "boom" (fun () -> failwith "inside") with Failure _ -> ());
  match Trace.validate (Trace.finish ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("trace rejected: " ^ msg)

let test_validate_rejects () =
  let rejected what doc =
    match Trace.validate doc with
    | Ok () -> Alcotest.fail (what ^ ": bad document accepted")
    | Error _ -> ()
  in
  rejected "truncated JSON" "{";
  rejected "missing traceEvents" "{}";
  rejected "traceEvents not an array" "{\"traceEvents\":3}";
  rejected "unclosed span"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1}]}";
  rejected "mismatched close"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1},{\"name\":\"b\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":1}]}";
  rejected "close without open"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"E\",\"ts\":0,\"pid\":1,\"tid\":1}]}";
  rejected "unknown phase"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"Q\",\"ts\":0,\"pid\":1,\"tid\":1}]}";
  match Trace.validate "{\"traceEvents\":[]}" with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("empty trace rejected: " ^ msg)

(* When no sink is installed, every call must be a silent no-op. *)
let test_trace_inactive_noop () =
  Alcotest.(check bool) "inactive" false (Trace.active ());
  Trace.instant "nothing";
  Alcotest.(check int) "span passes through" 9 (Trace.span "s" (fun () -> 9))

(* Hostile strings — quotes, backslashes, control characters — pushed
   through every emitter; the resulting document must stay parseable
   and the validator must accept it. *)
let test_trace_escaping_torture () =
  let nasty = "qu\"ote\\back\nnew\tline\x01ctl" in
  Trace.start ();
  Trace.span nasty ~args:[ (nasty, nasty) ] (fun () ->
      Trace.instant ~args:[ ("k\"", "v\\") ] nasty);
  Trace.counter nasty [ (nasty, 1.5); ("n", Float.nan) ];
  Trace.metadata ~pid:7 ~name:"process_name" nasty;
  let doc = Trace.finish () in
  (match Trace.validate doc with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("torture trace rejected: " ^ msg));
  match Trace.parse_json doc with
  | Trace.Jobj fields ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Trace.Jarr evs) ->
      (* every hostile name must round-trip through escape+parse *)
      let names =
        List.filter_map
          (function
            | Trace.Jobj f -> (
              match List.assoc_opt "name" f with
              | Some (Trace.Jstr s) -> Some s
              | _ -> None)
            | _ -> None)
          evs
      in
      Alcotest.(check bool) "nasty name round-trips" true
        (List.mem nasty names)
    | _ -> Alcotest.fail "traceEvents not an array")
  | _ -> Alcotest.fail "torture trace did not parse to an object"
  | exception Trace.Bad msg ->
    Alcotest.fail ("torture trace did not parse: " ^ msg)

(* "M" metadata events label pid/tid tracks; the validator must accept
   the phase and the document must carry the label. *)
let test_trace_metadata_event () =
  Trace.start ();
  Trace.metadata ~pid:1234 ~name:"process_name" "worker 3";
  Trace.metadata ~pid:1234 ~tid:2 ~name:"thread_name" "replay";
  let doc = Trace.finish () in
  (match Trace.validate doc with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("metadata trace rejected: " ^ msg));
  Alcotest.(check bool) "ph M present" true (contains doc "\"ph\":\"M\"");
  Alcotest.(check bool) "worker label present" true (contains doc "worker 3");
  Alcotest.(check bool) "explicit pid present" true (contains doc "\"pid\":1234")

(* ---------------- flight recorder: ring semantics ---------------- *)

let test_events_ring_capacity () =
  with_metrics (fun () ->
      Events.reset ();
      for i = 0 to 299 do
        Events.record
          (Events.Cache_hit { ev_key = Printf.sprintf "k%d" i })
      done;
      let entries = Events.recent () in
      Alcotest.(check int) "ring keeps last capacity entries" Events.capacity
        (List.length entries);
      (match entries with
      | first :: _ ->
        Alcotest.(check int) "oldest surviving seq" (300 - Events.capacity)
          first.Events.e_seq
      | [] -> Alcotest.fail "empty ring");
      let last = List.nth entries (List.length entries - 1) in
      Alcotest.(check int) "newest seq" 299 last.Events.e_seq;
      (* per-kind counters count every record, not just survivors *)
      Alcotest.(check int) "events.cache_hit counter" 300
        (Metrics.counter "events.cache_hit").Metrics.c_value;
      Events.reset ();
      Alcotest.(check int) "reset empties the ring" 0
        (List.length (Events.recent ())))

let test_events_mask_and_render () =
  with_metrics (fun () ->
      Events.reset ();
      Events.mask (fun () ->
          Events.record (Events.Deopt { ev_fn = "f"; ev_kind = "oob"; ev_osr = false }));
      Alcotest.(check int) "masked record dropped" 0
        (List.length (Events.recent ()));
      Events.record
        (Events.Tier_up { ev_fn = "hot"; ev_ops = 12; ev_invocations = 3; ev_osr = true });
      match Events.to_lines () with
      | [ line ] ->
        Alcotest.(check bool) "renders kind" true (contains line "tier-up");
        Alcotest.(check bool) "renders fn" true (contains line "hot");
        Alcotest.(check bool) "renders hotness" true (contains line "ops=12");
        Alcotest.(check bool) "renders osr flag" true
          (contains line "at loop header")
      | ls -> Alcotest.failf "expected one line, got %d" (List.length ls))


(* ---------------- guest profiler: delta attribution ---------------- *)

(* Synthetic step counters drive the delta bookkeeping: every steps-
   since-last-event span lands on the node that was current when the
   event fired, and the books always sum to the final counter. *)
let test_profile_delta_attribution () =
  let p = Profile.create () in
  Profile.enter p ~steps:10 "main";
  (* 10 steps of pre-main glue -> root *)
  Profile.enter p ~steps:30 "f";
  (* 20 steps of main before the call *)
  Profile.leave p ~steps:75;
  (* 45 steps inside f *)
  Profile.finalize p ~steps:100;
  (* 25 steps of main after the return *)
  Alcotest.(check int) "conservation: folded sums == counter" 100
    (Profile.total_steps p);
  let folded = Profile.folded p in
  Alcotest.(check bool) "root glue line" true (contains folded "(engine) 10\n");
  Alcotest.(check bool) "main self" true
    (contains folded "(engine);main 45\n");
  Alcotest.(check bool) "f under main" true
    (contains folded "(engine);main;f 45\n")

let test_profile_block_attribution () =
  let p = Profile.create () in
  Profile.enter p ~steps:0 "main";
  let entry = Profile.block_stat p ~func:"main" ~label:"entry" in
  let body = Profile.block_stat p ~func:"main" ~label:"for.body" in
  Profile.note_block p ~steps:0 entry;
  Profile.note_block p ~steps:12 body;
  (* the 12 steps belong to entry, the block being left *)
  Profile.finalize p ~steps:40;
  Alcotest.(check int) "entry block" 12 entry.Profile.bs_steps;
  Alcotest.(check int) "body block" 28 body.Profile.bs_steps;
  Alcotest.(check int) "block books complete" 40 (Profile.total_block_steps p)

(* [Interp.reset] rewinds the step counter; [rewind] must re-arm the
   deltas without discarding earlier runs (bench iterations sum). *)
let test_profile_rewind_accumulates () =
  let p = Profile.create () in
  Profile.enter p ~steps:10 "main";
  Profile.finalize p ~steps:100;
  Profile.rewind p;
  Profile.enter p ~steps:7 "main";
  Profile.finalize p ~steps:9;
  Alcotest.(check int) "two runs sum" 109 (Profile.total_steps p);
  match Profile.by_function p with
  | fs :: _ ->
    Alcotest.(check string) "main hottest" "main" fs.Profile.fs_name;
    Alcotest.(check int) "calls across runs" 2 fs.Profile.fs_calls
  | [] -> Alcotest.fail "no function stats"

(* ---------------- provenance: one golden bug per kind -------------- *)

(* Each program is written as an explicit line list so the expected
   fault line is visible in the test itself (line 1 = first element). *)
let run_lines ?(argv = [ "prog" ]) (lines : string list) : Interp.run_result =
  Loader.run_source ~argv (String.concat "\n" lines)

let check_report ~kind ~line ?(detail = []) (r : Interp.run_result) :
    Bugreport.t =
  (match r.Interp.error with
  | Some (cat, _) ->
    Alcotest.(check string) "error kind" kind (Merror.category_name cat)
  | None -> Alcotest.fail (kind ^ ": no error detected"));
  match r.Interp.report with
  | None -> Alcotest.fail (kind ^ ": no provenance report")
  | Some rep ->
    Alcotest.(check string) "report kind" kind rep.Bugreport.br_kind;
    (match Bugreport.fault_frame rep with
    | None -> Alcotest.fail (kind ^ ": no faulting source location")
    | Some f ->
      Alcotest.(check string) "faulting file" "<input>" f.Bugreport.bf_file;
      Alcotest.(check int) "faulting line" line f.Bugreport.bf_line);
    Alcotest.(check bool) "stack non-empty" true (rep.Bugreport.br_stack <> []);
    let rendered = Bugreport.render rep in
    List.iter
      (fun needle ->
        if not (contains rendered needle) then
          Alcotest.fail
            (Printf.sprintf "%s: report lacks %S:\n%s" kind needle rendered))
      detail;
    rep

let test_report_out_of_bounds () =
  let r =
    run_lines
      [
        "int main(void) {";
        "  int *p = malloc(3 * sizeof(int));";
        "  p[3] = 7;";
        "  return 0;";
        "}";
      ]
  in
  let rep =
    check_report ~kind:"out-of-bounds" ~line:3
      ~detail:
        [
          "write of 4 byte(s) at offset 12";
          "object bounds: [0, 12)";
          "access range: [12, 16)";
          "at <input>:3";
          "in main";
        ]
      r
  in
  Alcotest.(check bool) "has bounds detail" true (rep.Bugreport.br_detail <> [])

let test_report_use_after_free () =
  let r =
    run_lines
      [
        "int main(void) {";
        "  int *p = malloc(4);";
        "  free(p);";
        "  return *p;";
        "}";
      ]
  in
  ignore (check_report ~kind:"use-after-free" ~line:4 r)

let test_report_double_free () =
  let r =
    run_lines
      [
        "int main(void) {";
        "  int *p = malloc(4);";
        "  free(p);";
        "  free(p);";
        "  return 0;";
        "}";
      ]
  in
  ignore (check_report ~kind:"double-free" ~line:4 r)

let test_report_invalid_free () =
  let r =
    run_lines
      [
        "int main(void) {";
        "  int x = 0;";
        "  free(&x);";
        "  return 0;";
        "}";
      ]
  in
  ignore (check_report ~kind:"invalid-free" ~line:3 r)

let test_report_null_deref () =
  let r =
    run_lines
      [ "int main(void) {"; "  int *p = 0;"; "  return *p;"; "}" ]
  in
  ignore (check_report ~kind:"null-dereference" ~line:3 r)

let test_report_varargs () =
  let r =
    run_lines
      [
        "int bad(int n, ...) {";
        "  return *(int *)get_vararg(3);";
        "}";
        "int main(void) { return bad(1, 2); }";
      ]
  in
  ignore (check_report ~kind:"varargs" ~line:2 r)

(* Every provenance report must embed the flight-recorder ring: the
   managed-error raise itself is recorded, so even an untiered run has
   at least one event. *)
let test_bugreport_embeds_events () =
  Events.reset ();
  let r =
    run_lines [ "int main(void) {"; "  int *p = 0;"; "  return *p;"; "}" ]
  in
  match r.Interp.report with
  | None -> Alcotest.fail "no report"
  | Some rep ->
    Alcotest.(check bool) "report carries events" true
      (rep.Bugreport.br_events <> []);
    let rendered = Bugreport.render rep in
    Alcotest.(check bool) "render has events section" true
      (contains rendered "recent engine events:");
    Alcotest.(check bool) "error raise recorded" true
      (contains rendered "null-dereference")

let test_report_division_by_zero () =
  let r =
    run_lines
      [ "int main(int argc, char **argv) {"; "  return 7 / (argc - 1);"; "}" ]
  in
  ignore (check_report ~kind:"division-by-zero" ~line:2 r)

(* The stack trace must name every active call, innermost first, with
   the caller's line pointing at the call site. *)
let test_report_stack_trace () =
  let r =
    run_lines
      [
        "int inner(int *p) { return p[5]; }";
        "int outer(int *p) { return inner(p); }";
        "int main(void) {";
        "  int *p = malloc(4);";
        "  return outer(p);";
        "}";
      ]
  in
  match r.Interp.report with
  | None -> Alcotest.fail "no report"
  | Some rep ->
    let funcs = List.map (fun f -> f.Bugreport.bf_func) rep.Bugreport.br_stack in
    Alcotest.(check (list string))
      "call stack innermost first" [ "inner"; "outer"; "main" ] funcs;
    let lines = List.map (fun f -> f.Bugreport.bf_line) rep.Bugreport.br_stack in
    Alcotest.(check (list int)) "per-frame lines" [ 1; 2; 5 ] lines

(* Every corpus bug must come back with a provenance report carrying a
   real C source line (acceptance criterion for the PR).  Mirrors
   Engine.run_sulong's knobs. *)
let test_corpus_reports () =
  List.iter
    (fun (p : Groundtruth.program) ->
      let m = Loader.load_program p.Groundtruth.source in
      Pipeline.compile_sulong m;
      let st =
        Interp.create ~step_limit:200_000_000 ~mementos:true
          ~input:p.Groundtruth.input m
      in
      let r = Interp.run ~argv:p.Groundtruth.argv st in
      match (r.Interp.error, r.Interp.report) with
      | None, _ ->
        Alcotest.fail (p.Groundtruth.id ^ ": Safe Sulong missed the bug")
      | Some _, None ->
        Alcotest.fail (p.Groundtruth.id ^ ": no provenance report")
      | Some (cat, _), Some rep ->
        (match Bugreport.fault_frame rep with
        | None ->
          Alcotest.fail (p.Groundtruth.id ^ ": no faulting source line")
        | Some f ->
          if f.Bugreport.bf_line <= 0 then
            Alcotest.fail (p.Groundtruth.id ^ ": nonpositive fault line"));
        (match cat with
        | Merror.Out_of_bounds _ ->
          if
            not
              (List.exists
                 (fun d -> contains d "object bounds")
                 rep.Bugreport.br_detail)
          then Alcotest.fail (p.Groundtruth.id ^ ": no bounds detail")
        | _ -> ()))
    Corpus.all

(* ---------------- switch: C11 6.8.4.2 label conversion ------------- *)

(* A case label wider than the promoted controlling type is converted to
   that type: 0x100000001 on an int scrutinee matches 1. *)
let test_switch_label_conversion () =
  let r =
    run_lines
      [
        "int main(void) {";
        "  int x = 1;";
        "  switch (x) {";
        "  case 0x100000001: return 42;";
        "  default: return 7;";
        "  }";
        "}";
      ]
  in
  Alcotest.(check int) "label converted to int" 42 r.Interp.exit_code

(* The controlling expression undergoes integer promotion first: a char
   scrutinee switches as int, so the same wide label still matches. *)
let test_switch_scrutinee_promotion () =
  let r =
    run_lines
      [
        "int main(void) {";
        "  char c = 1;";
        "  switch (c) {";
        "  case 0x100000001: return 5;";
        "  default: return 9;";
        "  }";
        "}";
      ]
  in
  Alcotest.(check int) "char promoted to int" 5 r.Interp.exit_code

(* Labels that collide only after conversion are a compile-time error
   (C11 6.8.4.2p3: no two case labels with the same converted value). *)
let test_switch_duplicate_after_conversion () =
  let src =
    String.concat "\n"
      [
        "int main(void) {";
        "  switch (1) {";
        "  case 1: return 1;";
        "  case 0x100000001: return 2;";
        "  }";
        "  return 0;";
        "}";
      ]
  in
  match Loader.run_source src with
  | exception Diag.Error (_, msg) ->
    Alcotest.(check bool)
      "mentions duplicate label" true
      (contains msg "duplicate case label")
  | _ -> Alcotest.fail "duplicate-after-conversion label accepted"

(* C11 6.8.4.2p1: the controlling expression shall have integer type. *)
let test_switch_rejects_non_integer () =
  let src =
    String.concat "\n"
      [
        "int main(void) {";
        "  double d = 1.0;";
        "  switch (d) { default: return 0; }";
        "}";
      ]
  in
  match Loader.run_source src with
  | exception Diag.Error (_, _) -> ()
  | _ -> Alcotest.fail "floating switch scrutinee accepted"

(* A long scrutinee keeps 64-bit labels distinct: no false sharing. *)
let test_switch_long_scrutinee_exact () =
  let r =
    run_lines
      [
        "int main(void) {";
        "  long x = 0x100000001;";
        "  switch (x) {";
        "  case 1: return 3;";
        "  case 0x100000001: return 11;";
        "  default: return 4;";
        "  }";
        "}";
      ]
  in
  Alcotest.(check int) "long labels stay distinct" 11 r.Interp.exit_code

(* ---------------- runner ---------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "log2 bucketing" `Quick test_bucket_of;
          Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
          Alcotest.test_case "snapshot merge" `Quick test_snapshot_merge;
          Alcotest.test_case "disabled time is a no-op" `Quick
            test_disabled_time_is_noop;
          Alcotest.test_case "non-finite floats render as null" `Quick
            test_json_float_nonfinite;
          Alcotest.test_case "to_json with non-finite gauges parses" `Quick
            test_to_json_nonfinite_parses;
          Alcotest.test_case "quantile interpolation" `Quick
            test_quantile_interpolation;
          Alcotest.test_case "p50/p90/p99 in renderings" `Quick
            test_quantiles_in_renderings;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception-safe spans" `Quick
            test_span_exception_safe;
          Alcotest.test_case "validator rejects malformed" `Quick
            test_validate_rejects;
          Alcotest.test_case "inactive sink is a no-op" `Quick
            test_trace_inactive_noop;
          Alcotest.test_case "escaping torture stays well-formed" `Quick
            test_trace_escaping_torture;
          Alcotest.test_case "metadata events label tracks" `Quick
            test_trace_metadata_event;
        ] );
      ( "events",
        [
          Alcotest.test_case "ring capacity and ordering" `Quick
            test_events_ring_capacity;
          Alcotest.test_case "mask suppresses, render shapes" `Quick
            test_events_mask_and_render;
          Alcotest.test_case "bug reports embed the ring" `Quick
            test_bugreport_embeds_events;
        ] );
      ( "profile",
        [
          Alcotest.test_case "delta attribution + conservation" `Quick
            test_profile_delta_attribution;
          Alcotest.test_case "block attribution" `Quick
            test_profile_block_attribution;
          Alcotest.test_case "rewind accumulates across runs" `Quick
            test_profile_rewind_accumulates;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "out-of-bounds golden" `Quick
            test_report_out_of_bounds;
          Alcotest.test_case "use-after-free golden" `Quick
            test_report_use_after_free;
          Alcotest.test_case "double-free golden" `Quick
            test_report_double_free;
          Alcotest.test_case "invalid-free golden" `Quick
            test_report_invalid_free;
          Alcotest.test_case "null-dereference golden" `Quick
            test_report_null_deref;
          Alcotest.test_case "varargs golden" `Quick test_report_varargs;
          Alcotest.test_case "division-by-zero golden" `Quick
            test_report_division_by_zero;
          Alcotest.test_case "stack trace shape" `Quick
            test_report_stack_trace;
          Alcotest.test_case "whole-corpus sweep" `Slow test_corpus_reports;
        ] );
      ( "switch",
        [
          Alcotest.test_case "label conversion" `Quick
            test_switch_label_conversion;
          Alcotest.test_case "scrutinee promotion" `Quick
            test_switch_scrutinee_promotion;
          Alcotest.test_case "duplicate after conversion" `Quick
            test_switch_duplicate_after_conversion;
          Alcotest.test_case "non-integer scrutinee rejected" `Quick
            test_switch_rejects_non_integer;
          Alcotest.test_case "long scrutinee exact" `Quick
            test_switch_long_scrutinee_exact;
        ] );
    ]
