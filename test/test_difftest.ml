(** Tests for the cross-engine differential oracle (lib/difftest) and
    the constant-folding divergence fixes it pinned down. *)

(* ---------------- float->int conversion semantics ---------------- *)

let test_float_to_int_edges () =
  let check what expected f =
    Alcotest.(check int64) what expected (Irtype.float_to_int f)
  in
  check "NaN -> 0" 0L Float.nan;
  check "+inf saturates" Int64.max_int Float.infinity;
  check "-inf saturates" Int64.min_int Float.neg_infinity;
  check "1e300 saturates" Int64.max_int 1e300;
  check "-1e300 saturates" Int64.min_int (-1e300);
  check "truncation toward zero" 12L 12.9;
  check "negative truncation toward zero" (-12L) (-12.9);
  check "exact power of two" (Int64.shift_left 1L 62) 4.611686018427387904e18;
  check "zero" 0L 0.0

(* Reverting lib/opt/fold.ml's Fptosi/Fptoui case to [Int64.of_float]
   fails here directly (NaN folds to Int64.min_int on x86-64). *)
let test_fold_cast_matches_engines () =
  let fold f =
    match
      Fold.fold_cast Instr.Fptosi Irtype.F64 Irtype.I64
        (Instr.ImmFloat (f, Irtype.F64))
    with
    | Some (Instr.ImmInt (v, Irtype.I64)) -> v
    | _ -> Alcotest.fail "expected a folded integer immediate"
  in
  Alcotest.(check int64) "folded NaN" 0L (fold Float.nan);
  Alcotest.(check int64) "folded +inf" Int64.max_int (fold Float.infinity);
  Alcotest.(check int64)
    "folded -inf" Int64.min_int
    (fold Float.neg_infinity);
  Alcotest.(check int64)
    "fold agrees with Irtype.float_to_int" (Irtype.float_to_int 1e19)
    (fold 1e19)

(* ---------------- checked-in regression reproducers ---------------- *)

let test_regressions () =
  List.iter
    (fun ((name, _, _) as reg) ->
      match Difftest.check_regression reg with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "regression %s failed:\n%s" name msg)
    Difftest.regressions

(* ---------------- generator properties ---------------- *)

let test_generator_well_formed () =
  for seed = 1 to 60 do
    let p = Cgen.generate ~seed in
    if not (Cprog.well_formed p) then
      Alcotest.failf "seed %d generates an ill-formed program:\n%s" seed
        (Cprog.render p)
  done

let test_generator_deterministic () =
  let a = Cprog.render (Cgen.generate ~seed:20180324) in
  let b = Cprog.render (Cgen.generate ~seed:20180324) in
  Alcotest.(check string) "same seed, same program" a b;
  let c = Cprog.render (Cgen.generate ~seed:20180325) in
  Alcotest.(check bool) "different seed, different program" true (a <> c)

let test_generator_mutates_globals () =
  (* Globals are mutable at runtime: some seeds must actually store to
     one (the ROADMAP item this closes), and such a program must still
     agree across every configuration — the rendering snapshots the
     reference-predicted initial values before the body runs. *)
  let open Cprog in
  let rec stmt_stores gs s =
    match s with
    | Assign (n, _) -> List.mem n gs
    | AStore _ | FStore _ -> false
    | If (_, a, b) -> List.exists (stmt_stores gs) (a @ b)
    | Loop (_, _, b) -> List.exists (stmt_stores gs) b
    | Switch (_, arms, d) ->
      List.exists (stmt_stores gs) (List.concat_map snd arms @ d)
  in
  let stores_global p =
    List.exists
      (stmt_stores (List.map (fun (n, _, _) -> n) p.globals))
      p.body
  in
  let hits =
    List.filter
      (fun s -> stores_global (Cgen.generate ~seed:s))
      (List.init 40 (fun i -> i))
  in
  Alcotest.(check bool) "some seed stores a global" true (hits <> []);
  List.iter
    (fun s ->
      match Difftest.run_seed s with
      | `Agree -> ()
      | `Reject w -> Alcotest.failf "seed %d rejected: %s" s w
      | `Diverge d ->
        Alcotest.failf "seed %d diverged (%s):\n%s" s d.Difftest.dv_mismatch
          d.Difftest.dv_source)
    (match hits with s :: _ -> [ s ] | [] -> [])

(* ---------------- the oracle smoke run ---------------- *)

let test_oracle_smoke () =
  (* A fixed seed range; every seed must agree across all seven
     configurations (and with the reference evaluator on the constant
     prefix).  Rejections would indicate the generator escaped the
     supported subset — also a bug. *)
  for seed = 1 to 25 do
    match Difftest.run_seed seed with
    | `Agree -> ()
    | `Reject why -> Alcotest.failf "seed %d rejected: %s" seed why
    | `Diverge d ->
      Alcotest.failf "seed %d diverged (%s):\n%s" seed d.Difftest.dv_mismatch
        d.Difftest.dv_source
  done

let test_oracle_deterministic () =
  let verdict seed =
    match Difftest.run_seed seed with
    | `Agree -> "agree"
    | `Reject w -> "reject:" ^ w
    | `Diverge d -> "diverge:" ^ d.Difftest.dv_mismatch
  in
  Alcotest.(check string) "stable verdict" (verdict 99) (verdict 99)

(* ---------------- the shrinker ---------------- *)

let test_shrinker_reduces () =
  (* A synthetic "divergence": the predicate holds as long as an
     unsigned right shift survives anywhere in the program.  The
     reducer must strip the unrelated junk while preserving the
     predicate and well-formedness. *)
  let open Cprog in
  let shr = Bin (Shr, Const (-1L, U32), Const (4L, I32)) in
  let p =
    {
      seed = 0;
      enums = [ ("E0", shr); ("E1", Const (7L, I32)) ];
      globals = [ ("g0", I64, Bin (Add, Const (1L, I64), Const (2L, I64))) ];
      fields = [];
      arrays = [ ("a0", I32, 4) ];
      rcs = [ ("rc0", Bin (Mul, Const (3L, I32), Const (9L, I32))) ];
      locals = [ ("v0", I32, Const (5L, I32)) ];
      body =
        [
          Loop ("i0", 4, [ AStore ("a0", Ixv "i0", Var ("v0", I32)) ]);
          If (Var ("v0", I32), [ Assign ("v0", Const (9L, I32)) ], []);
        ];
    }
  in
  Alcotest.(check bool) "fixture well-formed" true (well_formed p);
  let rec has_shr = function
    | Bin (Shr, _, _) -> true
    | Bin (_, a, b) -> has_shr a || has_shr b
    | Un (_, a) | Cast (_, a) -> has_shr a
    | Cond (c, a, b) -> has_shr c || has_shr a || has_shr b
    | Const _ | EnumRef _ | Var _ | Read _ | Field _ -> false
  in
  let prog_has_shr q =
    List.exists (fun (_, e) -> has_shr e) q.enums
    || List.exists (fun (_, _, e) -> has_shr e) q.globals
    || List.exists (fun (_, e) -> has_shr e) q.rcs
  in
  Alcotest.(check bool) "fixture satisfies predicate" true (prog_has_shr p);
  let r = Shrink.reduce ~test:prog_has_shr ~budget:500 p in
  let q = r.Shrink.reduced in
  Alcotest.(check bool) "reduced still well-formed" true (well_formed q);
  Alcotest.(check bool) "reduced still satisfies predicate" true
    (prog_has_shr q);
  Alcotest.(check bool) "reduced is smaller" true (size q < size p);
  Alcotest.(check bool) "junk body dropped" true (q.body = []);
  Alcotest.(check bool) "junk global dropped" true (q.globals = [])

(* ---------------- reference evaluator spot checks ---------------- *)

let test_reference_evaluator () =
  let open Cprog in
  let e v = eval [] v in
  (* (0u - 1u) >> 4 at unsigned int. *)
  Alcotest.(check int64) "unsigned shr" 268435455L
    (e (Bin (Shr, Bin (Sub, Const (0L, U32), Const (1L, U32)), Const (4L, I32))));
  (* -1 < 1u converts -1 to unsigned int. *)
  Alcotest.(check int64) "unsigned compare" 0L
    (e (Bin (Lt, Const (-1L, I32), Const (1L, U32))));
  (* Narrow unsigned char widens by zero-extension: (0u8 - 1u8) is
     promoted to int 255 before negation questions arise. *)
  Alcotest.(check int64) "u8 promotes to int" 255L
    (e (Cast (I32, Const (-1L, U8))));
  (* Shift result type is the promoted left operand: char << 8. *)
  Alcotest.(check int64) "char shifts at int width" 25600L
    (e (Bin (Shl, Const (100L, I8), Const (8L, I32))));
  (* Expected-prefix assembly. *)
  let p =
    {
      seed = 1;
      enums = [ ("E0", Const (3L, I32)) ];
      globals = [ ("g0", U8, Const (300L, I32)) ];
      fields = [];
      arrays = [];
      rcs = [ ("rc0", Bin (Add, EnumRef "E0", Const (1L, I32))) ];
      locals = [];
      body = [];
    }
  in
  Alcotest.(check string) "expected prefix" "E0=3\ng0=44\nrc0=4\n"
    (expected_prefix p)

let () =
  Alcotest.run "difftest"
    [
      ( "folding semantics",
        [
          Alcotest.test_case "float->int edge values" `Quick
            test_float_to_int_edges;
          Alcotest.test_case "fold_cast matches engines" `Quick
            test_fold_cast_matches_engines;
          Alcotest.test_case "reference evaluator" `Quick
            test_reference_evaluator;
        ] );
      ( "regressions",
        [ Alcotest.test_case "checked-in reproducers" `Quick test_regressions ]
      );
      ( "generator",
        [
          Alcotest.test_case "well-formed output" `Quick
            test_generator_well_formed;
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "mutates globals" `Quick
            test_generator_mutates_globals;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "fixed-seed smoke run" `Slow test_oracle_smoke;
          Alcotest.test_case "deterministic verdict" `Quick
            test_oracle_deterministic;
        ] );
      ( "shrinker",
        [ Alcotest.test_case "greedy reduction" `Quick test_shrinker_reduces ]
      );
    ]
