(** Tests for the cross-engine differential oracle (lib/difftest) and
    the constant-folding / float-rounding divergence fixes it pinned
    down. *)

(* ---------------- float->int conversion semantics ---------------- *)

let test_float_to_int_edges () =
  let check what expected f =
    Alcotest.(check int64) what expected (Irtype.float_to_int f)
  in
  check "NaN -> 0" 0L Float.nan;
  check "+inf saturates" Int64.max_int Float.infinity;
  check "-inf saturates" Int64.min_int Float.neg_infinity;
  check "1e300 saturates" Int64.max_int 1e300;
  check "-1e300 saturates" Int64.min_int (-1e300);
  check "truncation toward zero" 12L 12.9;
  check "negative truncation toward zero" (-12L) (-12.9);
  check "exact power of two" (Int64.shift_left 1L 62) 4.611686018427387904e18;
  check "zero" 0L 0.0

(* Reverting lib/opt/fold.ml's Fptosi/Fptoui case to [Int64.of_float]
   fails here directly (NaN folds to Int64.min_int on x86-64). *)
let test_fold_cast_matches_engines () =
  let fold f =
    match
      Fold.fold_cast Instr.Fptosi Irtype.F64 Irtype.I64
        (Instr.ImmFloat (f, Irtype.F64))
    with
    | Some (Instr.ImmInt (v, Irtype.I64)) -> v
    | _ -> Alcotest.fail "expected a folded integer immediate"
  in
  Alcotest.(check int64) "folded NaN" 0L (fold Float.nan);
  Alcotest.(check int64) "folded +inf" Int64.max_int (fold Float.infinity);
  Alcotest.(check int64)
    "folded -inf" Int64.min_int
    (fold Float.neg_infinity);
  Alcotest.(check int64)
    "fold agrees with Irtype.float_to_int" (Irtype.float_to_int 1e19)
    (fold 1e19)

(* ---------------- checked-in regression reproducers ---------------- *)

let test_regressions () =
  List.iter
    (fun ((name, _, _) as reg) ->
      match Difftest.check_regression reg with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "regression %s failed:\n%s" name msg)
    Difftest.regressions

(* ---------------- generator properties ---------------- *)

let feature_sets =
  [
    Cgen.int_only;
    { Cgen.int_only with Cgen.f_float = true };
    { Cgen.int_only with Cgen.f_call = true };
    { Cgen.int_only with Cgen.f_mem = true };
    { Cgen.int_only with Cgen.f_ptr = true };
    { Cgen.int_only with Cgen.f_call = true; Cgen.f_ptr = true };
    Cgen.all_features;
  ]

let test_generator_well_formed () =
  List.iter
    (fun features ->
      for seed = 1 to 40 do
        let p = Cgen.generate ~features ~seed () in
        if not (Cprog.well_formed p) then
          Alcotest.failf "seed %d (features %s) is ill-formed:\n%s" seed
            (Cgen.features_name features)
            (Cprog.render p)
      done)
    feature_sets

let test_generator_deterministic () =
  let gen seed = Cprog.render (Cgen.generate ~seed ()) in
  Alcotest.(check string) "same seed, same program" (gen 20180324)
    (gen 20180324);
  Alcotest.(check bool) "different seed, different program" true
    (gen 20180324 <> gen 20180325)

let test_features_parse () =
  Alcotest.(check string) "parse all" "int,float,call,mem,ptr"
    (Cgen.features_name (Cgen.features_of_string "float,call,mem,ptr"));
  Alcotest.(check string) "parse subset" "int,float"
    (Cgen.features_name (Cgen.features_of_string "int,float"));
  Alcotest.(check string) "parse ptr" "int,ptr"
    (Cgen.features_name (Cgen.features_of_string "ptr"));
  Alcotest.(check string) "parse base" "int"
    (Cgen.features_name (Cgen.features_of_string "int"));
  (* Round-trip: [features_name] output re-parses to the same set, for
     every subset of the flags. *)
  List.iter
    (fun f ->
      let name = Cgen.features_name f in
      Alcotest.(check string)
        (Printf.sprintf "round-trip %s" name)
        name
        (Cgen.features_name (Cgen.features_of_string name)))
    (List.concat_map
       (fun f_float ->
         List.concat_map
           (fun f_call ->
             List.concat_map
               (fun f_mem ->
                 List.map
                   (fun f_ptr -> { Cgen.f_float; f_call; f_mem; f_ptr })
                   [ false; true ])
               [ false; true ])
           [ false; true ])
       [ false; true ]);
  Alcotest.(check bool) "unknown rejected" true
    (try
       ignore (Cgen.features_of_string "int,quux");
       false
     with Invalid_argument _ -> true)

let test_generator_uses_features () =
  (* Each feature flag must actually inject its constructs somewhere in
     a modest seed range — otherwise a campaign "with floats" would
     silently test nothing new. *)
  let open Cprog in
  let rec expr_has pred e =
    pred e
    ||
    match e with
    | Un (_, a) | Cast (_, a) -> expr_has pred a
    | Bin (_, a, b) -> expr_has pred a || expr_has pred b
    | Cond (c, a, b) ->
      expr_has pred c || expr_has pred a || expr_has pred b
    | Call (_, _, args) -> List.exists (expr_has pred) args
    | Const _ | FConst _ | EnumRef _ | Var _ | Read _ | Field _ | Strlen _
    | PRead _ | PCmp _ | PDiff _ ->
      false
  in
  let rec stmt_exprs s =
    match s with
    | Assign (_, e) | AStore (_, _, e) | FStore (_, e) | PStore (_, _, e) ->
      [ e ]
    | If (c, a, b) -> c :: List.concat_map stmt_exprs (a @ b)
    | Loop (_, _, b) -> List.concat_map stmt_exprs b
    | Switch (e, arms, d) ->
      e :: List.concat_map stmt_exprs (List.concat_map snd arms @ d)
    | Memcpy _ | Memset _ -> []
  in
  let prog_exprs p =
    List.map snd p.enums
    @ List.map (fun (_, _, e) -> e) p.globals
    @ List.map snd p.rcs
    @ List.map (fun (_, _, e) -> e) p.locals
    @ List.concat_map stmt_exprs p.body
    @ List.concat_map
        (fun f ->
          List.map (fun (_, _, e) -> e) f.fn_locals
          @ List.concat_map stmt_exprs f.fn_body
          @ [ f.fn_ret_expr ])
        p.funcs
  in
  let rec stmt_has_mem s =
    match s with
    | Memcpy _ | Memset _ -> true
    | If (_, a, b) -> List.exists stmt_has_mem (a @ b)
    | Loop (_, _, b) -> List.exists stmt_has_mem b
    | Switch (_, arms, d) ->
      List.exists stmt_has_mem (List.concat_map snd arms @ d)
    | Assign _ | AStore _ | FStore _ | PStore _ -> false
  in
  let progs features =
    List.init 30 (fun s -> Cgen.generate ~features ~seed:(s + 1) ())
  in
  let some_expr features pred =
    List.exists
      (fun p -> List.exists (expr_has pred) (prog_exprs p))
      (progs features)
  in
  Alcotest.(check bool) "float feature emits float constants" true
    (some_expr
       { Cgen.int_only with Cgen.f_float = true }
       (function FConst _ -> true | _ -> false));
  Alcotest.(check bool) "call feature emits calls" true
    (some_expr
       { Cgen.int_only with Cgen.f_call = true }
       (function Call _ -> true | _ -> false));
  Alcotest.(check bool) "mem feature emits strlen" true
    (some_expr
       { Cgen.int_only with Cgen.f_mem = true }
       (function Strlen _ -> true | _ -> false));
  Alcotest.(check bool) "mem feature emits memcpy/memset" true
    (List.exists
       (fun p -> List.exists stmt_has_mem p.body)
       (progs { Cgen.int_only with Cgen.f_mem = true }));
  let rec stmt_has_pstore s =
    match s with
    | PStore _ -> true
    | If (_, a, b) -> List.exists stmt_has_pstore (a @ b)
    | Loop (_, _, b) -> List.exists stmt_has_pstore b
    | Switch (_, arms, d) ->
      List.exists stmt_has_pstore (List.concat_map snd arms @ d)
    | Assign _ | AStore _ | FStore _ | Memcpy _ | Memset _ -> false
  in
  let ptr_progs = progs { Cgen.int_only with Cgen.f_ptr = true } in
  Alcotest.(check bool) "ptr feature declares pointers" true
    (List.exists (fun p -> p.ptrs <> []) ptr_progs);
  Alcotest.(check bool) "ptr feature emits aliases" true
    (List.exists
       (fun p ->
         List.exists
           (fun (_, _, pi) -> match pi with Palias _ -> true | _ -> false)
           p.ptrs)
       ptr_progs);
  Alcotest.(check bool) "ptr feature emits pointer loads" true
    (List.exists
       (fun p ->
         List.exists
           (expr_has (function PRead _ -> true | _ -> false))
           (prog_exprs p))
       ptr_progs);
  Alcotest.(check bool) "ptr feature emits pointer compares" true
    (List.exists
       (fun p ->
         List.exists
           (expr_has (function PCmp _ | PDiff _ -> true | _ -> false))
           (prog_exprs p))
       ptr_progs);
  Alcotest.(check bool) "ptr feature emits pointer stores" true
    (List.exists
       (fun p -> List.exists stmt_has_pstore p.body)
       ptr_progs);
  Alcotest.(check bool)
    "ptr+call emits pointer-typed helper parameters" true
    (List.exists
       (fun p ->
         List.exists
           (fun f ->
             List.exists
               (fun (_, s) -> match s with Pt _ -> true | _ -> false)
               f.fn_params)
           p.funcs)
       (progs { Cgen.int_only with Cgen.f_call = true; Cgen.f_ptr = true }));
  Alcotest.(check bool) "int-only emits none of the above" true
    (List.for_all
       (fun p ->
         p.funcs = []
         && p.ptrs = []
         && (not (List.exists stmt_has_mem p.body))
         && not
              (List.exists
                 (expr_has (function
                   | FConst _ | Call _ | Strlen _ | PRead _ | PCmp _ | PDiff _
                     -> true
                   | _ -> false))
                 (prog_exprs p)))
       (progs Cgen.int_only))

let test_generator_mutates_globals () =
  (* Globals are mutable at runtime: some seeds must actually store to
     one, and such a program must still agree across every
     configuration — the rendering snapshots the reference-predicted
     initial values before the body runs. *)
  let open Cprog in
  let rec stmt_stores gs s =
    match s with
    | Assign (n, _) -> List.mem n gs
    | AStore _ | FStore _ | PStore _ | Memcpy _ | Memset _ -> false
    | If (_, a, b) -> List.exists (stmt_stores gs) (a @ b)
    | Loop (_, _, b) -> List.exists (stmt_stores gs) b
    | Switch (_, arms, d) ->
      List.exists (stmt_stores gs) (List.concat_map snd arms @ d)
  in
  let stores_global p =
    List.exists
      (stmt_stores (List.map (fun (n, _, _) -> n) p.globals))
      p.body
  in
  let hits =
    List.filter
      (fun s -> stores_global (Cgen.generate ~seed:s ()))
      (List.init 40 (fun i -> i))
  in
  Alcotest.(check bool) "some seed stores a global" true (hits <> []);
  List.iter
    (fun s ->
      match Difftest.run_seed s with
      | `Agree -> ()
      | `Reject w -> Alcotest.failf "seed %d rejected: %s" s w
      | `Diverge d ->
        Alcotest.failf "seed %d diverged (%s):\n%s" s d.Difftest.dv_mismatch
          d.Difftest.dv_source)
    (match hits with s :: _ -> [ s ] | [] -> [])

(* ---------------- the oracle smoke run ---------------- *)

let test_oracle_smoke () =
  (* A fixed seed range per feature set; every seed must agree across
     all configurations (and with the reference evaluator on the
     predicted prefix).  Rejections would indicate the generator escaped
     the supported subset — also a bug. *)
  List.iter
    (fun features ->
      for seed = 1 to 10 do
        match Difftest.run_seed ~features seed with
        | `Agree -> ()
        | `Reject why ->
          Alcotest.failf "seed %d (features %s) rejected: %s" seed
            (Cgen.features_name features) why
        | `Diverge d ->
          Alcotest.failf "seed %d (features %s) diverged (%s):\n%s" seed
            (Cgen.features_name features) d.Difftest.dv_mismatch
            d.Difftest.dv_source
      done)
    feature_sets

let test_oracle_deterministic () =
  let verdict seed =
    match Difftest.run_seed seed with
    | `Agree -> "agree"
    | `Reject w -> "reject:" ^ w
    | `Diverge d -> "diverge:" ^ d.Difftest.dv_mismatch
  in
  Alcotest.(check string) "stable verdict" (verdict 99) (verdict 99)

(* ---------------- the shrinker ---------------- *)

let test_shrinker_reduces () =
  (* A synthetic "divergence": the predicate holds as long as an
     unsigned right shift survives anywhere in the program.  The
     reducer must strip the unrelated junk while preserving the
     predicate and well-formedness. *)
  let open Cprog in
  let shr = Bin (Shr, Const (-1L, U32), Const (4L, I32)) in
  let p =
    {
      seed = 0;
      enums = [ ("E0", shr); ("E1", Const (7L, I32)) ];
      globals = [ ("g0", I64, Bin (Add, Const (1L, I64), Const (2L, I64))) ];
      fields = [];
      arrays = [ ("a0", I32, 4) ];
      funcs = [];
      rcs = [ ("rc0", Bin (Mul, Const (3L, I32), Const (9L, I32))) ];
      locals = [ ("v0", It I32, Const (5L, I32)) ];
      ptrs = [ ("p0", I32, PaddrArr ("a0", 1)) ];
      body =
        [
          Loop ("i0", 4, [ AStore ("a0", Ixv "i0", Var ("v0", It I32)) ]);
          If (Var ("v0", It I32), [ Assign ("v0", Const (9L, I32)) ], []);
        ];
    }
  in
  Alcotest.(check bool) "fixture well-formed" true (well_formed p);
  let rec has_shr = function
    | Bin (Shr, _, _) -> true
    | Bin (_, a, b) -> has_shr a || has_shr b
    | Un (_, a) | Cast (_, a) -> has_shr a
    | Cond (c, a, b) -> has_shr c || has_shr a || has_shr b
    | Call (_, _, args) -> List.exists has_shr args
    | Const _ | FConst _ | EnumRef _ | Var _ | Read _ | Field _ | Strlen _
    | PRead _ | PCmp _ | PDiff _ ->
      false
  in
  let prog_has_shr q =
    List.exists (fun (_, e) -> has_shr e) q.enums
    || List.exists (fun (_, _, e) -> has_shr e) q.globals
    || List.exists (fun (_, e) -> has_shr e) q.rcs
  in
  Alcotest.(check bool) "fixture satisfies predicate" true (prog_has_shr p);
  let r = Shrink.reduce ~test:prog_has_shr ~budget:500 p in
  let q = r.Shrink.reduced in
  Alcotest.(check bool) "reduced still well-formed" true (well_formed q);
  Alcotest.(check bool) "reduced still satisfies predicate" true
    (prog_has_shr q);
  Alcotest.(check bool) "reduced is smaller" true (size q < size p);
  Alcotest.(check bool) "junk body dropped" true (q.body = []);
  Alcotest.(check bool) "junk global dropped" true (q.globals = [])

let test_shrinker_drops_helper () =
  (* Dropping a helper must inline a type-correct constant at every
     call site (including other helpers), atomically — a dangling call
     would be ill-formed. *)
  let open Cprog in
  let h0 =
    {
      fn_name = "h0";
      fn_params = [ ("h0_p0", It I32) ];
      fn_locals = [ ("h0_v0", It I64, Var ("h0_p0", It I32)) ];
      fn_body = [];
      fn_ret = It I64;
      fn_ret_expr = Var ("h0_v0", It I64);
    }
  in
  let h1 =
    {
      fn_name = "h1";
      fn_params = [ ("h1_p0", Ft F64) ];
      fn_locals = [];
      fn_body = [];
      fn_ret = Ft F64;
      fn_ret_expr =
        Bin
          ( Add,
            Var ("h1_p0", Ft F64),
            Cast (Ft F64, Call ("h0", It I64, [ Const (2L, I32) ])) );
    }
  in
  let p =
    {
      seed = 0;
      enums = [];
      globals = [];
      fields = [];
      arrays = [];
      funcs = [ h0; h1 ];
      rcs =
        [
          ("rc0", Call ("h0", It I64, [ Const (7L, I32) ]));
          ("rc1", Call ("h1", Ft F64, [ FConst (1.5, F64) ]));
        ];
      locals = [];
      ptrs = [];
      body = [];
    }
  in
  Alcotest.(check bool) "fixture well-formed" true (well_formed p);
  (* The "divergence" lives in h1; shrinking must drop h0's *uses* only
     via inlining and keep the program well-formed throughout. *)
  let uses_h1 q =
    List.exists
      (fun (_, e) ->
        let rec has = function
          | Call ("h1", _, _) -> true
          | Call (_, _, args) -> List.exists has args
          | Un (_, a) | Cast (_, a) -> has a
          | Bin (_, a, b) -> has a || has b
          | Cond (c, a, b) -> has c || has a || has b
          | _ -> false
        in
        has e)
      q.rcs
  in
  let r = Shrink.reduce ~test:uses_h1 ~budget:300 p in
  let q = r.Shrink.reduced in
  Alcotest.(check bool) "reduced well-formed" true (well_formed q);
  Alcotest.(check bool) "h1 call survives" true (uses_h1 q);
  Alcotest.(check bool) "h0 was dropped" true
    (not (List.exists (fun f -> f.fn_name = "h0") q.funcs))

let test_shrinker_round_trip () =
  (* Property test over the full feature set: every well-formed shrink
     candidate must render to C the front end accepts — the shrinker
     may never present a reducer state the oracle cannot even compile.
     (Execution agreement is the campaign's job; compilation is the
     cheap invariant checked per candidate here.) *)
  let compiles q =
    match Loader.compile_user (Cprog.render q) with
    | (_ : Irmod.t) -> true
    | exception _ -> false
  in
  for seed = 1 to 200 do
    let p = Cgen.generate ~features:Cgen.all_features ~seed () in
    if not (Cprog.well_formed p) then
      Alcotest.failf "seed %d: generated program ill-formed" seed;
    let checked = ref 0 in
    List.iter
      (fun q ->
        if !checked < 6 && Cprog.well_formed q then begin
          incr checked;
          if not (compiles q) then
            Alcotest.failf
              "seed %d: well-formed shrink candidate does not compile:\n%s"
              seed (Cprog.render q)
        end)
      (Shrink.candidates p)
  done

(* ---------------- reference evaluator spot checks ---------------- *)

let test_reference_evaluator () =
  let open Cprog in
  let e v = eval_int const_env v in
  (* (0u - 1u) >> 4 at unsigned int. *)
  Alcotest.(check int64) "unsigned shr" 268435455L
    (e (Bin (Shr, Bin (Sub, Const (0L, U32), Const (1L, U32)), Const (4L, I32))));
  (* -1 < 1u converts -1 to unsigned int. *)
  Alcotest.(check int64) "unsigned compare" 0L
    (e (Bin (Lt, Const (-1L, I32), Const (1L, U32))));
  (* Narrow unsigned char widens by zero-extension: (0u8 - 1u8) is
     promoted to int 255 before negation questions arise. *)
  Alcotest.(check int64) "u8 promotes to int" 255L
    (e (Cast (It I32, Const (-1L, U8))));
  (* Shift result type is the promoted left operand: char << 8. *)
  Alcotest.(check int64) "char shifts at int width" 25600L
    (e (Bin (Shl, Const (100L, I8), Const (8L, I32))));
  (* Expected-prefix assembly. *)
  let p =
    {
      seed = 1;
      enums = [ ("E0", Const (3L, I32)) ];
      globals = [ ("g0", U8, Const (300L, I32)) ];
      fields = [];
      arrays = [];
      funcs = [];
      rcs = [ ("rc0", Bin (Add, EnumRef "E0", Const (1L, I32))) ];
      locals = [];
      ptrs = [];
      body = [];
    }
  in
  Alcotest.(check string) "expected prefix" "E0=3\ng0=44\nrc0=4\n"
    (expected_prefix p)

let test_reference_evaluator_floats () =
  let open Cprog in
  let ef v = match eval const_env v with VF f -> f | VI _ -> Alcotest.fail "expected float" in
  let ei v = eval_int const_env v in
  (* F32 addition rounds: 2^24 + 1 at float is 2^24. *)
  Alcotest.(check (float 0.0)) "f32 add rounds" 16777216.0
    (ef (Bin (Add, FConst (16777216.0, F32), FConst (1.0, F32))));
  (* The same addition at double keeps the exact sum. *)
  Alcotest.(check (float 0.0)) "f64 add exact" 16777217.0
    (ef (Bin (Add, FConst (16777216.0, F64), FConst (1.0, F64))));
  (* F32 division result, widened: the binary32 value of 1/3. *)
  Alcotest.(check int64) "f32 div bits" 0x3FD5555560000000L
    (Int64.bits_of_float
       (ef (Bin (Div, FConst (1.0, F32), FConst (3.0, F32)))));
  (* int-to-F32 conversion rounds. *)
  Alcotest.(check (float 0.0)) "sitofp f32 rounds" 16777216.0
    (ef (Cast (Ft F32, Const (16777217L, I32))));
  (* u64-to-double uses the unsigned value. *)
  Alcotest.(check int64) "uitofp u64 bits" 0x43F0000000000000L
    (Int64.bits_of_float (ef (Cast (Ft F64, Const (-1L, U64)))));
  (* Mixed comparison converts the int side to float. *)
  Alcotest.(check int64) "mixed cmp" 1L
    (ei (Bin (Lt, Const (1L, I32), FConst (1.5, F64))));
  (* 0.0 / 0.0 is NaN: ordered comparisons false, != true, and the
     saturating conversion maps it to 0. *)
  let nan_e = Bin (Div, FConst (0.0, F64), FConst (0.0, F64)) in
  Alcotest.(check int64) "NaN == is false" 0L (ei (Bin (Eq, nan_e, nan_e)));
  Alcotest.(check int64) "NaN < is false" 0L (ei (Bin (Lt, nan_e, nan_e)));
  Alcotest.(check int64) "NaN != is true" 1L (ei (Bin (Ne, nan_e, nan_e)));
  Alcotest.(check int64) "NaN -> int is 0" 0L (ei (Cast (It I64, nan_e)));
  (* Unary minus is 0.0 - x (so -(0.0) stays +0.0, like the engines). *)
  Alcotest.(check int64) "neg zero via unary minus" 0L
    (Int64.bits_of_float (ef (Un (Neg, FConst (0.0, F64)))));
  (* Float rcs predict the widened bit pattern. *)
  let p =
    {
      seed = 2;
      enums = [];
      globals = [];
      fields = [];
      arrays = [];
      funcs = [];
      rcs = [ ("rc0", Bin (Div, FConst (1.0, F32), FConst (3.0, F32))) ];
      locals = [];
      ptrs = [];
      body = [];
    }
  in
  Alcotest.(check string) "float expected prefix" "rc0=0.3333333432674408\n"
    (expected_prefix p)

let test_reference_evaluator_globals () =
  let open Cprog in
  (* Recomputations and helpers may read globals: the reference models
     the *initial* values, which is sound because every predicted line
     prints before the body's first mutation. *)
  let h0 =
    {
      fn_name = "h0";
      fn_params = [ ("h0_p0", It I32) ];
      fn_locals = [];
      fn_body = [];
      fn_ret = It I64;
      fn_ret_expr = Bin (Add, Var ("g0", It I32), Var ("h0_p0", It I32));
    }
  in
  let p =
    {
      seed = 3;
      enums = [];
      globals = [ ("g0", I32, Const (40L, I32)) ];
      fields = [];
      arrays = [];
      funcs = [ h0 ];
      rcs =
        [
          ("rc0", Bin (Add, Var ("g0", It I32), Const (1L, I32)));
          ("rc1", Call ("h0", It I64, [ Const (2L, I32) ]));
        ];
      locals = [];
      ptrs = [];
      body = [ Assign ("g0", Const (0L, I32)) ];
    }
  in
  Alcotest.(check bool) "global-reading program well-formed" true
    (well_formed p);
  Alcotest.(check string) "globals in rcs and helper calls"
    "g0=40\nrc0=41\nrc1=42\n" (expected_prefix p)

let test_reference_evaluator_calls () =
  let open Cprog in
  (* h0(p) = let v = p * 2 in loop 3 times: v = v + p; return v + 1
     — checks param binding, local init, loop execution and the return
     conversion. h1 calls h0 (prefix-restricted). *)
  let h0 =
    {
      fn_name = "h0";
      fn_params = [ ("h0_p0", It I32) ];
      fn_locals =
        [ ("h0_v0", It I32, Bin (Mul, Var ("h0_p0", It I32), Const (2L, I32))) ];
      fn_body =
        [
          Loop
            ( "h0_i0", 3,
              [
                Assign
                  ( "h0_v0",
                    Bin (Add, Var ("h0_v0", It I32), Var ("h0_p0", It I32)) );
              ] );
        ];
      fn_ret = It I64;
      fn_ret_expr = Bin (Add, Var ("h0_v0", It I32), Const (1L, I32));
    }
  in
  let h1 =
    {
      fn_name = "h1";
      fn_params = [ ("h1_p0", Ft F32) ];
      fn_locals = [];
      fn_body = [];
      fn_ret = Ft F32;
      fn_ret_expr =
        Bin
          ( Add,
            Var ("h1_p0", Ft F32),
            Cast (Ft F32, Call ("h0", It I64, [ Const (10L, I32) ])) );
    }
  in
  let env = { const_env with ev_funcs = [ h0; h1 ] } in
  (* h0(10): v = 20; +10 three times = 50; return 51. *)
  Alcotest.(check int64) "call with loop" 51L
    (eval_int env (Call ("h0", It I64, [ Const (10L, I32) ])));
  (* Argument conversion: the float argument truncates to int 10 at the
     I32 parameter, so the result is again 51. *)
  Alcotest.(check int64) "float arg converts" 51L
    (eval_int env (Call ("h0", It I64, [ FConst (10.9, F64) ])));
  (* h1(0.5) = 0.5 + 51.0f = 51.5 (exact at F32). *)
  (match eval env (Call ("h1", Ft F32, [ FConst (0.5, F32) ])) with
  | VF f -> Alcotest.(check (float 0.0)) "nested call" 51.5 f
  | VI _ -> Alcotest.fail "expected float");
  (* A self-call is not evaluable (callable set is the definition
     prefix): Not_const, not divergence. *)
  let selfy = { h0 with fn_name = "s"; fn_ret_expr = Call ("s", It I64, []) } in
  let env2 = { const_env with ev_funcs = [ selfy ] } in
  Alcotest.(check bool) "self-call raises Not_const" true
    (try
       ignore (eval env2 (Call ("s", It I64, [ Const (1L, I32) ])));
       false
     with Not_const -> true)

(* ------------------------------------------------------------------ *)
(* Exported reproducer corpus (bugdb export -> difftest --corpus)      *)
(* ------------------------------------------------------------------ *)

let test_load_corpus () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "difftest_corpus_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let write file s =
    let oc = open_out_bin (Filename.concat dir file) in
    output_string oc s;
    close_out oc
  in
  (* Entries come back sorted by file name, paired with .expected. *)
  let src = "int main(void) { printf(\"ok\\n\"); return 0; }\n" in
  write "b-bug.c" src;
  write "b-bug.expected" "ok\n";
  write "a-bug.c" src;
  write "a-bug.expected" "ok\n";
  write "notes.txt" "ignored";
  (match Difftest.load_corpus ~dir with
  | [ (n1, s1, e1); (n2, s2, e2) ] ->
    Alcotest.(check string) "first name" "a-bug" n1;
    Alcotest.(check string) "second name" "b-bug" n2;
    Alcotest.(check string) "source round-trips" src s1;
    Alcotest.(check string) "source round-trips" src s2;
    Alcotest.(check string) "expected round-trips" "ok\n" e1;
    Alcotest.(check string) "expected round-trips" "ok\n" e2
  | l ->
    Alcotest.failf "expected 2 corpus entries, got %d" (List.length l));
  (* Loaded entries run through the same oracle check as the
     checked-in regressions. *)
  List.iter
    (fun reg ->
      match Difftest.check_regression reg with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    (Difftest.load_corpus ~dir);
  (* A .c without its .expected is an error, not a silent skip. *)
  write "orphan.c" src;
  Alcotest.(check bool) "orphan .c rejected" true
    (try
       ignore (Difftest.load_corpus ~dir);
       false
     with Invalid_argument _ -> true);
  (* A missing directory is an empty corpus. *)
  Alcotest.(check int) "missing dir is empty" 0
    (List.length (Difftest.load_corpus ~dir:(dir ^ "_nonexistent")));
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir

let () =
  Alcotest.run "difftest"
    [
      ( "folding semantics",
        [
          Alcotest.test_case "float->int edge values" `Quick
            test_float_to_int_edges;
          Alcotest.test_case "fold_cast matches engines" `Quick
            test_fold_cast_matches_engines;
          Alcotest.test_case "reference evaluator" `Quick
            test_reference_evaluator;
          Alcotest.test_case "reference evaluator: floats" `Quick
            test_reference_evaluator_floats;
          Alcotest.test_case "reference evaluator: calls" `Quick
            test_reference_evaluator_calls;
          Alcotest.test_case "reference evaluator: globals" `Quick
            test_reference_evaluator_globals;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "checked-in reproducers" `Quick test_regressions;
          Alcotest.test_case "exported corpus loads and replays" `Quick
            test_load_corpus;
        ] );
      ( "generator",
        [
          Alcotest.test_case "well-formed output" `Quick
            test_generator_well_formed;
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "feature flags parse" `Quick test_features_parse;
          Alcotest.test_case "features reach the output" `Quick
            test_generator_uses_features;
          Alcotest.test_case "mutates globals" `Quick
            test_generator_mutates_globals;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "fixed-seed smoke run" `Slow test_oracle_smoke;
          Alcotest.test_case "deterministic verdict" `Quick
            test_oracle_deterministic;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "greedy reduction" `Quick test_shrinker_reduces;
          Alcotest.test_case "helper drop inlines callsites" `Quick
            test_shrinker_drops_helper;
          Alcotest.test_case "candidates stay compilable" `Slow
            test_shrinker_round_trip;
        ] );
    ]
