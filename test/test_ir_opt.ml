(** IR well-formedness and optimizer tests, including the differential
    property test: for randomly generated (well-defined) C programs, the
    -O3 pipeline, the backend fold and the safe-JIT pipeline must
    preserve observable behaviour exactly — across the managed *and* the
    native engine. *)

(* ---------------- verify ---------------- *)

let mk_func ~blocks : Irfunc.t =
  { Irfunc.name = "f"; params = []; ret = Some Irtype.I32; variadic = false;
    blocks; next_reg = 100; src_pos = (0, 0); src_file = "<test>" }

let mk_mod f : Irmod.t =
  { Irmod.globals = []; funcs = [ f ]; externs = [] }

let expect_invalid msg f =
  try
    Verify.verify (mk_mod f);
    Alcotest.fail ("expected Verify.Invalid: " ^ msg)
  with Verify.Invalid _ -> ()

let test_verify_undefined_reg () =
  expect_invalid "use of undefined register"
    (mk_func
       ~blocks:
         [
           { Irfunc.label = "entry"; instrs = [];
             term = Instr.Ret (Some (Irtype.I32, Instr.Reg 7)) };
         ])

let test_verify_unknown_block () =
  expect_invalid "branch to unknown block"
    (mk_func
       ~blocks:
         [ { Irfunc.label = "entry"; instrs = []; term = Instr.Br "nowhere" } ])

let test_verify_duplicate_label () =
  expect_invalid "duplicate label"
    (mk_func
       ~blocks:
         [
           { Irfunc.label = "a"; instrs = []; term = Instr.Br "a" };
           { Irfunc.label = "a"; instrs = []; term = Instr.Ret None };
         ])

let test_verify_double_def () =
  expect_invalid "register defined twice"
    (mk_func
       ~blocks:
         [
           {
             Irfunc.label = "entry";
             instrs =
               [
                 Instr.Binop (1, Instr.Add, Irtype.I32,
                              Instr.ImmInt (1L, Irtype.I32),
                              Instr.ImmInt (2L, Irtype.I32));
                 Instr.Binop (1, Instr.Add, Irtype.I32,
                              Instr.ImmInt (1L, Irtype.I32),
                              Instr.ImmInt (2L, Irtype.I32));
               ];
             term = Instr.Ret (Some (Irtype.I32, Instr.Reg 1));
           };
         ])

let test_verify_unknown_callee () =
  expect_invalid "unknown callee"
    (mk_func
       ~blocks:
         [
           {
             Irfunc.label = "entry";
             instrs = [ Instr.Call (None, None, Instr.Direct "ghost", []) ];
             term = Instr.Ret (Some (Irtype.I32, Instr.ImmInt (0L, Irtype.I32)));
           };
         ])

let test_accepts_frontend_output () =
  let m = Loader.load_program "int main(void) { return 0; }" in
  Verify.verify m

(* ---------------- CFG analyses ---------------- *)

(* A diamond with a loop:
     entry -> header; header -> body | exit; body -> left | right;
     left/right -> latch; latch -> header *)
let diamond_loop () : Irfunc.t =
  let b label term = { Irfunc.label; instrs = []; term } in
  let imm = Instr.ImmInt (1L, Irtype.I1) in
  mk_func
    ~blocks:
      [
        b "entry" (Instr.Br "header");
        b "header" (Instr.Condbr (imm, "body", "exit"));
        b "body" (Instr.Condbr (imm, "left", "right"));
        b "left" (Instr.Br "latch");
        b "right" (Instr.Br "latch");
        b "latch" (Instr.Br "header");
        b "exit" (Instr.Ret (Some (Irtype.I32, Instr.ImmInt (0L, Irtype.I32))));
      ]

let test_cfg_dominators () =
  let f = diamond_loop () in
  let info = Cfg.compute f in
  let idom l = Hashtbl.find_opt info.Cfg.idom l in
  Alcotest.(check (option string)) "header idom" (Some "entry") (idom "header");
  Alcotest.(check (option string)) "body idom" (Some "header") (idom "body");
  Alcotest.(check (option string)) "latch idom" (Some "body") (idom "latch");
  Alcotest.(check (option string)) "exit idom" (Some "header") (idom "exit");
  Alcotest.(check bool) "entry dominates all" true
    (Cfg.dominates info "entry" "latch");
  Alcotest.(check bool) "body does not dominate exit" false
    (Cfg.dominates info "body" "exit")

let test_cfg_dominance_frontier () =
  let f = diamond_loop () in
  let info = Cfg.compute f in
  let df l =
    List.sort compare (Option.value (Hashtbl.find_opt info.Cfg.df l) ~default:[])
  in
  (* left and right join at latch; the loop makes header its own frontier *)
  Alcotest.(check (list string)) "df(left)" [ "latch" ] (df "left");
  Alcotest.(check (list string)) "df(right)" [ "latch" ] (df "right");
  Alcotest.(check (list string)) "df(latch)" [ "header" ] (df "latch")

let test_cfg_natural_loops () =
  let f = diamond_loop () in
  let info = Cfg.compute f in
  match Cfg.natural_loops f info with
  | [ (header, body) ] ->
    Alcotest.(check string) "loop header" "header" header;
    Alcotest.(check (list string)) "loop body"
      [ "body"; "header"; "latch"; "left"; "right" ]
      (List.sort compare body)
  | loops -> Alcotest.failf "expected one loop, got %d" (List.length loops)

let test_cfg_unreachable_removal () =
  let b label term = { Irfunc.label; instrs = []; term } in
  let f =
    mk_func
      ~blocks:
        [
          b "entry" (Instr.Ret (Some (Irtype.I32, Instr.ImmInt (0L, Irtype.I32))));
          b "island" (Instr.Br "island2");
          b "island2" (Instr.Br "island");
        ]
  in
  Cfg.remove_unreachable f;
  Alcotest.(check (list string)) "islands removed" [ "entry" ]
    (List.map (fun (b : Irfunc.block) -> b.Irfunc.label) f.Irfunc.blocks)

(* ---------------- individual passes ---------------- *)

let compile src = Loader.compile_user src

let count_instrs pred (m : Irmod.t) =
  List.fold_left
    (fun acc (f : Irfunc.t) ->
      let n = ref 0 in
      Irfunc.iter_instrs f (fun _ i -> if pred i then incr n);
      acc + !n)
    0 m.Irmod.funcs

let is_alloca = function Instr.Alloca _ -> true | _ -> false
let is_store = function Instr.Store _ -> true | _ -> false

let test_mem2reg_promotes_scalars () =
  let m = compile "int f(int a, int b) { int x = a + b; int y = x * 2; return y - a; }" in
  Alcotest.(check bool) "allocas before" true (count_instrs is_alloca m > 0);
  ignore (Mem2reg.run m);
  ignore (Dce.run ~semantics:`Ub m);
  Verify.verify m;
  Alcotest.(check int) "no allocas after" 0 (count_instrs is_alloca m)

let test_mem2reg_keeps_escaping () =
  let m = compile "void g(int *p); int f(void) { int x = 1; g(&x); return x; }" in
  ignore (Mem2reg.run m);
  Alcotest.(check bool) "escaping alloca kept" true (count_instrs is_alloca m > 0)

let test_fold_constants () =
  let m = compile "int f(void) { return (3 + 4) * 2 - 6; }" in
  ignore (Fold.run m);
  ignore (Dce.run ~semantics:`Ub m);
  let f = List.find (fun (f : Irfunc.t) -> f.Irfunc.name = "f") m.Irmod.funcs in
  match (Irfunc.entry f).Irfunc.term with
  | Instr.Ret (Some (_, Instr.ImmInt (8L, _))) -> ()
  | t -> Alcotest.fail ("expected folded ret 8, got " ^ Irprint.term_to_string t)

let test_fold_branch () =
  let m = compile "int f(void) { if (1 < 2) { return 10; } return 20; }" in
  ignore (Fold.run m);
  ignore (Simplifycfg.run m);
  Verify.verify m;
  let f = List.find (fun (f : Irfunc.t) -> f.Irfunc.name = "f") m.Irmod.funcs in
  Alcotest.(check int) "single block after folding" 1 (List.length f.Irfunc.blocks)

let test_dse_removes_dead_object_stores () =
  let m =
    compile
      "int f(int n) { int arr[10]; for (int i = 0; i < n; i++) { arr[i] = i; } return 0; }"
  in
  ignore (Mem2reg.run m);
  let stores_before = count_instrs is_store m in
  ignore (Dse.run m);
  Verify.verify m;
  Alcotest.(check bool) "dead stores removed" true
    (count_instrs is_store m < stores_before);
  Alcotest.(check int) "dead array removed with them" 0 (count_instrs is_alloca m)

let test_ubopt_deletes_dead_loop () =
  let m =
    compile "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return 0; }"
  in
  ignore (Pipeline.o3 m);
  Verify.verify m;
  let f = List.find (fun (f : Irfunc.t) -> f.Irfunc.name = "f") m.Irmod.funcs in
  Alcotest.(check int) "loop deleted to a single block" 1
    (List.length f.Irfunc.blocks)

let test_ubopt_removes_null_check_after_deref () =
  let m =
    compile
      "int f(int *p) { int v = *p; if (p == 0) { return -1; } return v; }"
  in
  (* value numbering comes from mem2reg, as in the real pipeline *)
  ignore (Mem2reg.run m);
  let before = count_instrs (function Instr.Icmp _ -> true | _ -> false) m in
  ignore (Ubopt.run m);
  ignore (Fold.run m);
  Verify.verify m;
  let after = count_instrs (function Instr.Icmp _ -> true | _ -> false) m in
  Alcotest.(check bool) "null check folded" true (after < before)

let test_backendfold_removes_constant_oob () =
  let m =
    compile "int count[7]; int main(void) { return count[7]; }"
  in
  let loads m = count_instrs (function Instr.Load _ -> true | _ -> false) m in
  Alcotest.(check bool) "load before" true (loads m > 0);
  ignore (Backendfold.run m);
  Verify.verify m;
  Alcotest.(check int) "constant OOB load deleted" 0 (loads m)

let test_backendfold_keeps_inbounds () =
  let m = compile "int count[7]; int main(void) { return count[6]; }" in
  ignore (Backendfold.run m);
  Alcotest.(check bool) "in-bounds load kept" true
    (count_instrs (function Instr.Load _ -> true | _ -> false) m > 0)

let test_simplifycfg_merges () =
  let m = compile "int f(void) { int x = 1; { int y = 2; x += y; } return x; }" in
  ignore (Mem2reg.run m);
  ignore (Simplifycfg.run m);
  Verify.verify m

(* ---------------- differential property test ---------------- *)

(* Random well-defined C expression programs: every engine and pipeline
   must print the same output.  Shifts are masked and divisors forced
   nonzero so behaviour is defined identically everywhere. *)
let gen_expr rng max_depth =
  let vars = [ "a"; "b"; "c"; "d" ] in
  let rec go depth =
    if depth = 0 || Prng.int rng 100 < 25 then
      match Prng.int rng 3 with
      | 0 -> Prng.pick rng vars
      | 1 -> string_of_int (Prng.int rng 200 - 100)
      | _ -> Prng.pick rng vars
    else begin
      match Prng.int rng 12 with
      | 0 -> Printf.sprintf "(%s + %s)" (go (depth - 1)) (go (depth - 1))
      | 1 -> Printf.sprintf "(%s - %s)" (go (depth - 1)) (go (depth - 1))
      | 2 -> Printf.sprintf "(%s * %s)" (go (depth - 1)) (go (depth - 1))
      | 3 -> Printf.sprintf "(%s / %d)" (go (depth - 1)) (1 + Prng.int rng 9)
      | 4 -> Printf.sprintf "(%s %% %d)" (go (depth - 1)) (1 + Prng.int rng 9)
      | 5 -> Printf.sprintf "(%s & %s)" (go (depth - 1)) (go (depth - 1))
      | 6 -> Printf.sprintf "(%s | %s)" (go (depth - 1)) (go (depth - 1))
      | 7 -> Printf.sprintf "(%s ^ %s)" (go (depth - 1)) (go (depth - 1))
      | 8 -> Printf.sprintf "(%s << %d)" (go (depth - 1)) (Prng.int rng 8)
      | 9 -> Printf.sprintf "(%s >> %d)" (go (depth - 1)) (Prng.int rng 8)
      | 10 ->
        Printf.sprintf "(%s < %s ? %s : %s)" (go (depth - 1)) (go (depth - 1))
          (go (depth - 1)) (go (depth - 1))
      | _ -> Printf.sprintf "(- %s)" (go (depth - 1))
    end
  in
  go max_depth

let gen_program rng =
  let a = Prng.int rng 100 in
  let b = Prng.int rng 100 - 50 in
  let c = Prng.int rng 1000 in
  let d = Prng.int rng 100 in
  Printf.sprintf
    {|
int main(void) {
  int a = %d;
  int b = %d;
  long c = %d;
  unsigned int d = %du;
  long r0 = %s;
  long r1 = %s;
  long r2 = %s;
  int loop_sum = 0;
  for (int i = 0; i < 9; i++) {
    loop_sum += (int)((r0 + i) ^ (r1 - i));
    if (loop_sum > 100000) { loop_sum /= 3; }
  }
  printf("%%ld %%ld %%ld %%d\n", r0, r1, r2, loop_sum);
  return 0;
}
|}
    a b c d (gen_expr rng 4) (gen_expr rng 4) (gen_expr rng 4)

let run_output tool src =
  let r = Engine.run tool src in
  match r.Engine.outcome with
  | Outcome.Finished _ -> r.Engine.output
  | o -> "ABNORMAL: " ^ Outcome.to_string o

let test_differential_random_programs () =
  let rng = Prng.create 20180324 in
  for i = 1 to 25 do
    let src = gen_program rng in
    let reference = run_output (Engine.Clang Pipeline.O0) src in
    List.iter
      (fun (name, tool) ->
        let out = run_output tool src in
        if out <> reference then
          Alcotest.failf "program %d: %s output %S differs from O0 %S\nsource:\n%s"
            i name out reference src)
      [
        ("sulong", Engine.Safe_sulong);
        ("clang -O3", Engine.Clang Pipeline.O3);
        ("asan -O0", Engine.Asan Pipeline.O0);
        ("valgrind -O0", Engine.Valgrind Pipeline.O0);
      ]
  done

let test_safe_jit_preserves_behaviour () =
  let rng = Prng.create 99 in
  for _ = 1 to 10 do
    let src = gen_program rng in
    let m = Loader.load_program src in
    let st = Interp.create m in
    let r0 = Interp.run st in
    let m2 = Loader.load_program src in
    ignore (Pipeline.safe_jit m2);
    Verify.verify m2;
    let st2 = Interp.create m2 in
    let r2 = Interp.run st2 in
    Alcotest.(check string) "safe-jit output" r0.Interp.output r2.Interp.output;
    Alcotest.(check bool) "safe-jit executes fewer ops" true
      (r2.Interp.steps <= r0.Interp.steps)
  done

(* ---------------- inlining ---------------- *)

let test_inline_preserves_behaviour () =
  let rng = Prng.create 1234 in
  for _ = 1 to 8 do
    let src = gen_program rng in
    let reference = run_output (Engine.Clang Pipeline.O0) src in
    let m = Loader.load_program src in
    ignore (Inline.run m);
    Verify.verify m;
    let st = Interp.create m in
    let out = (Interp.run st).Interp.output in
    Alcotest.(check string) "inlined program agrees" reference out
  done

let test_inline_small_functions () =
  let m =
    compile
      {|
int sq(int x) { return x * x; }
int main(void) { return sq(3) + sq(4); }
|}
  in
  Alcotest.(check bool) "inlined something" true (Inline.run m);
  Verify.verify m;
  let main = List.find (fun (f : Irfunc.t) -> f.Irfunc.name = "main") m.Irmod.funcs in
  let calls = ref 0 in
  Irfunc.iter_instrs main (fun _ i ->
      match i with Instr.Call _ -> incr calls | _ -> ());
  Alcotest.(check int) "no calls remain in main" 0 !calls

let test_inline_skips_recursion_and_variadics () =
  let m =
    compile
      {|
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main(void) { return fact(5); }
|}
  in
  ignore (Inline.run m);
  Verify.verify m;
  let main = List.find (fun (f : Irfunc.t) -> f.Irfunc.name = "main") m.Irmod.funcs in
  let calls = ref 0 in
  Irfunc.iter_instrs main (fun _ i ->
      match i with Instr.Call _ -> incr calls | _ -> ());
  Alcotest.(check bool) "recursive call kept" true (!calls >= 1)

let test_inlining_hides_more_bugs () =
  (* The P2 escalation: with inlining, a constant argument turns a
     dynamic OOB into a provably-constant one that the backend deletes —
     check and all.  Safe Sulong, executing front-end IR, still sees it. *)
  let src =
    {|
const char *errors[3] = {"ok", "warning", "fatal"};
const char *describe(int code) { return errors[code]; }
int main(void) {
  printf("%s\n", describe(3));
  return 0;
}
|}
  in
  (* without inlining: ASan -O3 finds the OOB (index unknown per function) *)
  let plain = Engine.run (Engine.Asan Pipeline.O3) src in
  Alcotest.(check bool) "found without inlining" true
    (Outcome.is_detected plain.Engine.outcome);
  (* with inlining + the same pipeline: the access folds away *)
  let m = Loader.compile_user src in
  ignore (Inline.run m);
  ignore (Pipeline.o3 m);
  ignore (Pipeline.backend m);
  Asan.instrument m;
  Verify.verify m;
  let mem = Mem.create () in
  let alloc = Alloc.create mem in
  let _, hooks = Asan.make ~mem ~alloc () in
  let st = Nexec.create ~hooks ~global_gap:32 ~mem ~alloc m in
  let r = Nexec.run st in
  Alcotest.(check bool) "missed with inlining" true (r.Nexec.report = None);
  (* and Safe Sulong still finds it regardless *)
  Alcotest.(check bool) "Safe Sulong unaffected" true
    (Outcome.is_detected (Engine.run Engine.Safe_sulong src).Engine.outcome)

(* ---------------- textual IR round trip ---------------- *)

let roundtrip_module (m : Irmod.t) =
  let printed = Irprint.module_to_string m in
  let reparsed =
    try Irparse.parse printed
    with Irparse.Parse_error (line, msg) ->
      Alcotest.failf "parse error at line %d: %s\n%s" line msg printed
  in
  Verify.verify reparsed;
  let reprinted = Irprint.module_to_string reparsed in
  if printed <> reprinted then begin
    (* locate the first differing line for a readable failure *)
    let a = String.split_on_char '\n' printed in
    let b = String.split_on_char '\n' reprinted in
    let rec first_diff i = function
      | x :: xs, y :: ys ->
        if x <> y then Alcotest.failf "roundtrip line %d:\n  was: %s\n  got: %s" i x y
        else first_diff (i + 1) (xs, ys)
      | [], y :: _ -> Alcotest.failf "roundtrip extra line %d: %s" i y
      | x :: _, [] -> Alcotest.failf "roundtrip missing line %d: %s" i x
      | [], [] -> ()
    in
    first_diff 1 (a, b)
  end;
  reparsed

let test_roundtrip_simple () =
  ignore
    (roundtrip_module
       (Loader.compile_user
          {|
struct pair { int a; long b; };
struct pair box = {1, 2};
double weights[3] = {0.5, 1.5, 2.5};
const char *label = "hi\n";
int helper(int x) { return x * 2; }
int (*fn)(int) = helper;
int main(void) {
  struct pair local;
  local.a = helper(box.a);
  switch (local.a) { case 2: return 1; default: return 0; }
}
|}))

let test_roundtrip_optimized () =
  (* phis, folded branches, the whole -O3 shape *)
  let m =
    Loader.compile_user
      {|
int loop(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) { s += i * i; }
  return s;
}
int main(void) { return loop(10) & 0xff; }
|}
  in
  Pipeline.compile_native ~level:Pipeline.O3 m;
  ignore (roundtrip_module m)

let test_roundtrip_instrumented () =
  let m = Loader.compile_user "int main(void) { int a[3]; a[0] = 1; return a[0]; }" in
  Asan.instrument m;
  ignore (roundtrip_module m)

let test_roundtrip_full_program () =
  (* the libc-linked meteor module: ~everything the IR can express *)
  ignore (roundtrip_module (Loader.load_program Benchprogs.meteor.Benchprogs.b_source))

let test_parsed_ir_executes () =
  let src = {|
int main(void) {
  int total = 0;
  for (int i = 1; i <= 5; i++) { total += i; }
  printf("total=%d\n", total);
  return 0;
}
|} in
  let m = Loader.load_program src in
  let st = Interp.create m in
  let expected = (Interp.run st).Interp.output in
  let reparsed = Irparse.parse (Irprint.module_to_string (Loader.load_program src)) in
  let st2 = Interp.create reparsed in
  Alcotest.(check string) "reparsed module runs identically" expected
    (Interp.run st2).Interp.output

let test_parse_errors_have_lines () =
  let expect_error text =
    try
      ignore (Irparse.parse text);
      Alcotest.fail "expected parse error"
    with Irparse.Parse_error (line, _) ->
      Alcotest.(check bool) "line number positive" true (line >= 1)
  in
  expect_error "define i32 @f( {\n}";
  expect_error "@g = global i32 frog\n";
  expect_error "define i32 @f() {\nentry:\n  %1 = frobnicate i32 1\n  ret i32 %1\n}"

let gen_roundtrip_prop =
  QCheck.Test.make ~count:15 ~name:"random programs round-trip through text"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let m = Loader.compile_user (gen_program rng) in
      let printed = Irprint.module_to_string m in
      let reparsed = Irparse.parse printed in
      Irprint.module_to_string reparsed = printed)

(* ---------------- heap-program fuzzing ---------------- *)

(* Random *valid* heap workloads: allocations with tracked sizes, only
   in-bounds accesses, resizes and frees.  Every engine must produce the
   same checksum — this exercises the allocators, managed object model,
   shadow redzones and quarantine on the happy path. *)
let gen_heap_program rng =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "int main(void) {\n  long checksum = 0;\n";
  let sizes = Array.make 6 0 in
  for v = 0 to 5 do
    let n = 1 + Prng.int rng 24 in
    sizes.(v) <- n;
    add "  int *a%d = (int *)%s;\n" v
      (if Prng.int rng 2 = 0 then Printf.sprintf "malloc(%d * sizeof(int))" n
       else Printf.sprintf "calloc(%d, sizeof(int))" n);
    add "  for (int i = 0; i < %d; i++) { a%d[i] = i * %d; }\n" n v (v + 1)
  done;
  for _ = 1 to 25 do
    let v = Prng.int rng 6 in
    let n = sizes.(v) in
    match Prng.int rng 4 with
    | 0 ->
      let i = Prng.int rng n in
      add "  a%d[%d] = a%d[%d] + %d;\n" v i v (Prng.int rng n) (Prng.int rng 100)
    | 1 -> add "  checksum += a%d[%d];\n" v (Prng.int rng n)
    | 2 ->
      (* grow (never shrink, so tracked indices stay valid) *)
      let n' = n + 1 + Prng.int rng 16 in
      sizes.(v) <- n';
      add "  a%d = (int *)realloc(a%d, %d * sizeof(int));\n" v v n';
      add "  for (int i = %d; i < %d; i++) { a%d[i] = i; }\n" n n' v
    | _ ->
      let fresh = 2 + Prng.int rng 20 in
      sizes.(v) <- fresh;
      add "  free(a%d);\n" v;
      add "  a%d = (int *)malloc(%d * sizeof(int));\n" v fresh;
      add "  for (int i = 0; i < %d; i++) { a%d[i] = i + %d; }\n" fresh v v
  done;
  for v = 0 to 5 do
    add "  for (int i = 0; i < %d; i++) { checksum += a%d[i]; }\n" sizes.(v) v;
    add "  free(a%d);\n" v
  done;
  add "  printf(\"%%ld\\n\", checksum);\n  return 0;\n}\n";
  Buffer.contents buf

let test_heap_fuzz_across_engines () =
  let rng = Prng.create 424242 in
  for i = 1 to 12 do
    let src = gen_heap_program rng in
    let reference = run_output (Engine.Clang Pipeline.O0) src in
    List.iter
      (fun (name, tool) ->
        let out = run_output tool src in
        if out <> reference then
          Alcotest.failf "heap program %d: %s output %S vs O0 %S\n%s" i name out
            reference src)
      [
        ("sulong", Engine.Safe_sulong);
        ("clang -O3", Engine.Clang Pipeline.O3);
        ("asan", Engine.Asan Pipeline.O0);
        ("valgrind", Engine.Valgrind Pipeline.O0);
      ]
  done

let test_o3_reduces_work () =
  let src = Benchprogs.fannkuchredux.Benchprogs.b_source in
  let o0 = Engine.run (Engine.Clang Pipeline.O0) src in
  let o3 = Engine.run (Engine.Clang Pipeline.O3) src in
  Alcotest.(check bool) "O3 executes fewer operations" true
    (o3.Engine.steps < o0.Engine.steps)

let () =
  Alcotest.run "ir+opt"
    [
      ( "verify",
        [
          Alcotest.test_case "undefined register" `Quick test_verify_undefined_reg;
          Alcotest.test_case "unknown block" `Quick test_verify_unknown_block;
          Alcotest.test_case "duplicate label" `Quick test_verify_duplicate_label;
          Alcotest.test_case "double definition" `Quick test_verify_double_def;
          Alcotest.test_case "unknown callee" `Quick test_verify_unknown_callee;
          Alcotest.test_case "frontend output verifies" `Quick
            test_accepts_frontend_output;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "dominators" `Quick test_cfg_dominators;
          Alcotest.test_case "dominance frontier" `Quick
            test_cfg_dominance_frontier;
          Alcotest.test_case "natural loops" `Quick test_cfg_natural_loops;
          Alcotest.test_case "unreachable removal" `Quick
            test_cfg_unreachable_removal;
        ] );
      ( "passes",
        [
          Alcotest.test_case "mem2reg promotes" `Quick test_mem2reg_promotes_scalars;
          Alcotest.test_case "mem2reg keeps escaping" `Quick
            test_mem2reg_keeps_escaping;
          Alcotest.test_case "constant folding" `Quick test_fold_constants;
          Alcotest.test_case "branch folding" `Quick test_fold_branch;
          Alcotest.test_case "dead-object store elimination" `Quick
            test_dse_removes_dead_object_stores;
          Alcotest.test_case "dead loop deletion" `Quick
            test_ubopt_deletes_dead_loop;
          Alcotest.test_case "null-check removal after deref" `Quick
            test_ubopt_removes_null_check_after_deref;
          Alcotest.test_case "backend folds constant OOB" `Quick
            test_backendfold_removes_constant_oob;
          Alcotest.test_case "backend keeps in-bounds" `Quick
            test_backendfold_keeps_inbounds;
          Alcotest.test_case "cfg simplification verifies" `Quick
            test_simplifycfg_merges;
        ] );
      ( "inlining",
        [
          Alcotest.test_case "preserves behaviour" `Slow
            test_inline_preserves_behaviour;
          Alcotest.test_case "inlines small functions" `Quick
            test_inline_small_functions;
          Alcotest.test_case "skips recursion" `Quick
            test_inline_skips_recursion_and_variadics;
          Alcotest.test_case "hides more bugs under -O3 (P2)" `Quick
            test_inlining_hides_more_bugs;
          Alcotest.test_case "globaldce reaps inlined callees" `Quick
            (fun () ->
              let m =
                compile
                  {|
int sq(int x) { return x * x; }
int helper_unused(int x) { return x + 1; }
int main(void) { return sq(4); }
|}
              in
              ignore (Inline.run m);
              ignore (Globaldce.run m);
              Verify.verify m;
              Alcotest.(check (list string)) "only main survives" [ "main" ]
                (List.map (fun (f : Irfunc.t) -> f.Irfunc.name) m.Irmod.funcs));
        ] );
      ( "textual roundtrip",
        [
          Alcotest.test_case "globals+structs+switch" `Quick test_roundtrip_simple;
          Alcotest.test_case "optimized IR (phis)" `Quick test_roundtrip_optimized;
          Alcotest.test_case "instrumented IR" `Quick test_roundtrip_instrumented;
          Alcotest.test_case "full libc-linked module" `Quick
            test_roundtrip_full_program;
          Alcotest.test_case "parsed IR executes" `Quick test_parsed_ir_executes;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_parse_errors_have_lines;
          QCheck_alcotest.to_alcotest gen_roundtrip_prop;
        ] );
      ( "differential",
        [
          Alcotest.test_case "random programs agree across engines" `Slow
            test_differential_random_programs;
          Alcotest.test_case "safe-jit preserves behaviour" `Slow
            test_safe_jit_preserves_behaviour;
          Alcotest.test_case "heap fuzzing across engines" `Slow
            test_heap_fuzz_across_engines;
          Alcotest.test_case "-O3 reduces executed work" `Quick
            test_o3_reduces_work;
        ] );
    ]
