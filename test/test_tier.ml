(** Tier-equivalence coverage: the closure-compiled tier must be
    observably bit-identical to the interpreter.

    The contract (DESIGN.md §9): for any program, running with a tier
    controller attached changes wall-clock only — output, exit status,
    error category, the provenance report's faulting C file:line:col,
    step counts, and difftest outcomes all stay exactly the same.  The
    sweep below forces every function hot ([threshold:0]) so the whole
    corpus executes closure-compiled, including the error paths that
    exercise deoptimization. *)

let step_limit = 50_000_000

(* Run [p] through the standard Safe Sulong pipeline, optionally with
   the tier controller forced hot so every function compiles at first
   call. *)
let run_program ?tier (p : Groundtruth.program) : Interp.run_result =
  let m = Loader.load_program p.Groundtruth.source in
  Pipeline.compile_sulong m;
  let tier =
    match tier with
    | Some `Forced -> Some (Tier.controller ~threshold:0 ())
    | None -> None
  in
  let st =
    Interp.create ~step_limit ~mementos:true ~input:p.Groundtruth.input ?tier m
  in
  Interp.run ~argv:p.Groundtruth.argv st

(* Everything the paper's reports surface, flattened for comparison.
   [report] is reduced to the rendered text, which covers the error
   kind, the faulting C file:line:col, the bounds detail and the
   managed stack.  The flight-recorder section is blanked: engine
   events (tier-up, deopt) intentionally differ across tiers — the
   equivalence contract covers guest-observable behavior only. *)
let observe (r : Interp.run_result) : string =
  let error =
    match r.Interp.error with
    | None -> "ok"
    | Some (cat, msg) -> Merror.category_name cat ^ ": " ^ msg
  in
  let report =
    match r.Interp.report with
    | None -> "<no report>"
    | Some rep -> Bugreport.render { rep with Bugreport.br_events = [] }
  in
  Printf.sprintf
    "exit=%d timed_out=%b steps=%d leaks=%d error=%s\noutput:\n%s\nreport:\n%s"
    r.Interp.exit_code r.Interp.timed_out r.Interp.steps r.Interp.leaks error
    r.Interp.output report

let check_program (p : Groundtruth.program) =
  let interp = observe (run_program p) in
  let tiered = observe (run_program ~tier:`Forced p) in
  Alcotest.(check string) ("tier equivalence: " ^ p.Groundtruth.id) interp
    tiered

(* ---------------- whole-corpus sweep ---------------- *)

(* Every corpus program contains a real memory error, so this sweep
   exercises the deopt path (compiled body raises a managed error, the
   provenance replay re-runs in the pure interpreter) on all 68 bugs
   and the clean warm path on the repaired variants. *)
let test_corpus_sweep () = List.iter check_program Corpus.all

let test_fixed_sweep () =
  List.iter
    (fun p ->
      match p.Groundtruth.fixed with
      | None -> ()
      | Some src ->
        check_program
          { p with Groundtruth.id = p.Groundtruth.id ^ "/fixed"; source = src })
    Corpus.all

(* ---------------- tier-up really happens ---------------- *)

let test_tier_actually_compiles () =
  let p = List.hd Corpus.all in
  let compiles = Metrics.counter "jit.compiles" in
  let before = compiles.Metrics.c_value in
  ignore (run_program ~tier:`Forced p);
  if compiles.Metrics.c_value <= before then
    Alcotest.fail "forced-hot run compiled no function"

let test_deopt_fires_on_managed_error () =
  (* Every corpus bug raises a managed error; with every function
     forced hot the raise happens inside a compiled body, so the
     deopt counter must move. *)
  let p = List.hd Corpus.all in
  let deopts = Metrics.counter "jit.deopts" in
  let before = deopts.Metrics.c_value in
  let r = run_program ~tier:`Forced p in
  (match r.Interp.error with
  | Some _ -> ()
  | None -> Alcotest.fail "corpus program unexpectedly ran clean");
  if deopts.Metrics.c_value <= before then
    Alcotest.fail "managed error in compiled code did not deoptimize"

(* The production threshold must leave short programs un-tiered: the
   controller's hotness check is the shared [Hotness] policy. *)
let test_default_threshold_stays_cold () =
  let compiles = Metrics.counter "jit.compiles" in
  let before = compiles.Metrics.c_value in
  let p = List.hd Corpus.all in
  let m = Loader.load_program p.Groundtruth.source in
  Pipeline.compile_sulong m;
  let st =
    Interp.create ~step_limit ~mementos:true ~input:p.Groundtruth.input
      ~tier:(Tier.controller ()) m
  in
  ignore (Interp.run ~argv:p.Groundtruth.argv st);
  Alcotest.(check int) "no compiles below the 1M-op threshold" before
    compiles.Metrics.c_value

(* ---------------- single-precision rounding and NaN pinning -------- *)

(* The closure-compiled tier goes through [Closcomp], whose float ops
   must round F32 results to binary32 exactly like the interpreter
   ([Irtype.round_result]).  This pins the reproducers from
   test_interp.ml on the forced-hot path: 16777216.0f + 1.0f, an F32
   division whose double intermediate differs, (float)16777217, NaN
   comparison truth table, and saturating float-to-int. *)
let f32_nan_src =
  {|
int main(void) {
  float one = 1.0f;
  float three = 3.0f;
  float a = 16777216.0f + one;
  float q = one / three;
  int n = 16777217;
  float c = (float)n;
  double z = 0.0;
  double qn = z / z;
  double big = 1e300;
  double pa = (double)a;
  double pq = (double)q;
  double pc = (double)c;
  printf("%lx %lx %lx\n", *(unsigned long *)&pa, *(unsigned long *)&pq,
         *(unsigned long *)&pc);
  printf("%d %d %d %d %d %d\n", qn == qn, qn != qn, qn < qn, qn <= qn,
         qn > qn, qn >= qn);
  printf("%ld %ld %ld\n", (long)qn, (long)big, (long)(0.0 - big));
  return 0;
}
|}

let f32_nan_expected =
  "4170000000000000 3fd5555560000000 4170000000000000\n\
   0 1 0 0 0 0\n\
   0 9223372036854775807 -9223372036854775808\n"

let test_f32_nan_tiered () =
  let m = Loader.load_program f32_nan_src in
  Pipeline.compile_sulong m;
  let st =
    Interp.create ~step_limit ~mementos:true ~input:""
      ~tier:(Tier.controller ~threshold:0 ()) m
  in
  let r = Interp.run ~argv:[ "prog" ] st in
  (match r.Interp.error with
  | Some (_, m) -> Alcotest.failf "unexpected error: %s" m
  | None -> ());
  Alcotest.(check string) "tiered output" f32_nan_expected r.Interp.output

(* ---------------- on-stack replacement ---------------- *)

(* A single long [main] invocation: with a low (but non-zero) threshold
   the function is cold at its only call, becomes hot inside the loop,
   and the interpreter's loop-header probe must transfer the live frame
   into the compiled register files mid-iteration (DESIGN.md §11).  The
   observable results must match a plain interpreter run exactly. *)
let osr_src =
  {|
int main(void) {
  long s = 0;
  double f = 1.0;
  for (int i = 0; i < 200000; i++) {
    s += i & 7;
    f = f + 0.5;
  }
  printf("%ld %f\n", s, f);
  return 0;
}
|}

let run_src ?tier ?(argv = [ "prog" ]) (src : string) : Interp.run_result =
  let m = Loader.load_program src in
  Pipeline.compile_sulong m;
  let st = Interp.create ~step_limit ~mementos:true ~input:"" ?tier m in
  Interp.run ~argv st

let test_osr_fires_and_matches () =
  let osr = Metrics.counter "jit.osr_entries" in
  let before = osr.Metrics.c_value in
  let interp = observe (run_src osr_src) in
  Alcotest.(check int) "interp run never OSRs" before osr.Metrics.c_value;
  let tiered =
    observe (run_src ~tier:(Tier.controller ~threshold:1000 ()) osr_src)
  in
  if osr.Metrics.c_value <= before then
    Alcotest.fail "hot loop in a single invocation did not OSR";
  Alcotest.(check string) "OSR run bit-identical" interp tiered

(* ---------------- deoptimization out of unboxed frames ---------------- *)

(* The callee's registers classify into the unboxed float file and its
   locals scalar-replace into virtual slots; the out-of-bounds access at
   the end then raises a managed error from inside the compiled body.
   Error category, faulting C source position, step count and the
   provenance report must be what the interpreter produces. *)
let float_deopt_src =
  {|
double kernel(double *a, int n, int i) {
  double s = 0.0;
  float t = 1.5f;
  for (int j = 0; j < n; j++) {
    s = s + a[j] * t;
    t = t * 2.0f;
  }
  return s + a[i];
}
int main(void) {
  double a[4];
  for (int k = 0; k < 4; k++) a[k] = k * 0.5;
  printf("%f\n", kernel(a, 4, 7));
  return 0;
}
|}

let test_deopt_from_float_frame () =
  let deopts = Metrics.counter "jit.deopts" in
  let interp = observe (run_src float_deopt_src) in
  let before = deopts.Metrics.c_value in
  let tiered =
    observe (run_src ~tier:(Tier.controller ~threshold:0 ()) float_deopt_src)
  in
  if deopts.Metrics.c_value <= before then
    Alcotest.fail "error in compiled float kernel did not deoptimize";
  Alcotest.(check string) "deopt out of unboxed-float frame" interp tiered

(* Same shape, but the error fires after the loop made [main] hot — so
   the failing frame is one the interpreter handed over mid-loop via
   OSR, not one built by a compiled entry. *)
let osr_deopt_src =
  {|
int main(void) {
  int a[8];
  int s = 0;
  for (int i = 0; i < 8; i++) a[i] = i;
  for (int i = 0; i < 100000; i++) s += i & 3;
  return a[s / 10000] + (s & 1);
}
|}

let test_deopt_from_osr_frame () =
  let osr = Metrics.counter "jit.osr_entries" in
  let deopts = Metrics.counter "jit.deopts" in
  let interp = observe (run_src osr_deopt_src) in
  let o0 = osr.Metrics.c_value and d0 = deopts.Metrics.c_value in
  let tiered =
    observe (run_src ~tier:(Tier.controller ~threshold:1000 ()) osr_deopt_src)
  in
  if osr.Metrics.c_value <= o0 then Alcotest.fail "loop never OSR'd";
  if deopts.Metrics.c_value <= d0 then
    Alcotest.fail "error after OSR did not deoptimize";
  Alcotest.(check string) "deopt out of an OSR'd loop" interp tiered

(* ---------------- scalar-replaced slots keep allocation ids ----------- *)

(* Pointer-to-integer casts expose object ids through cookies, so if the
   compiled tier virtualized the [x]/[y] allocas without consuming their
   allocation ids (Mobject.fresh_id), the malloc'd object would take a
   different id than under the interpreter and the printed cookie (and
   the error report for the out-of-bounds store) would differ. *)
let slot_id_src =
  {|
int f(void) {
  int x = 5;
  int *p = malloc(3 * sizeof(int));
  int y = 2;
  printf("%ld\n", (long)p);
  p[x] = y;
  return 0;
}
int main(void) { return f(); }
|}

let test_slot_allocation_ids () =
  let interp = observe (run_src slot_id_src) in
  let tiered =
    observe (run_src ~tier:(Tier.controller ~threshold:0 ()) slot_id_src)
  in
  Alcotest.(check string) "allocation-id sequence survives slots" interp tiered

(* ---------------- compiled-body cache across reset ---------------- *)

(* [Interp.reset] must preserve [pf_tier] (the compiled-body cache): a
   second run replays bit-identically without recompiling anything. *)
let test_reset_keeps_compiled_bodies () =
  let compiles = Metrics.counter "jit.compiles" in
  let m = Loader.load_program osr_src in
  Pipeline.compile_sulong m;
  let st =
    Interp.create ~step_limit ~mementos:true ~input:""
      ~tier:(Tier.controller ~threshold:0 ()) m
  in
  let first = observe (Interp.run ~argv:[ "prog" ] st) in
  let after_first = compiles.Metrics.c_value in
  Interp.reset st;
  let second = observe (Interp.run ~argv:[ "prog" ] st) in
  Alcotest.(check int) "no recompilation after reset" after_first
    compiles.Metrics.c_value;
  Alcotest.(check string) "cached body replays bit-identically" first second

(* ---------------- guest profiler across tiers ---------------- *)

(* The profiler's two laws (DESIGN.md §13), pinned on real programs:

   1. Conservation: the folded stacks and the per-function table sum to
      exactly the engine's final step counter — no step unattributed,
      none double-counted.
   2. Cross-tier agreement: per-function attribution from a forced-hot
      tiered run is bit-identical to the interpreter's (both tiers
      charge calls to the caller, returns to the callee, and edge phi
      copies to the predecessor block). *)

let profile_src =
  {|
int cmp(int a, int b) { return a - b; }
int work(int n) {
  int s = 0;
  for (int i = 0; i < n; i++)
    s += cmp(i, n - i);
  return s;
}
int main(void) {
  long t = 0;
  for (int r = 0; r < 50; r++)
    t += work(100);
  printf("%ld\n", t);
  return 0;
}
|}

let run_profiled ?tier (src : string) : Profile.t * Interp.run_result =
  let m = Loader.load_program src in
  Pipeline.compile_sulong m;
  let prof = Profile.create () in
  let st =
    Interp.create ~step_limit ~mementos:true ~input:"" ?tier ~profile:prof m
  in
  let r = Interp.run ~argv:[ "prog" ] st in
  (prof, r)

let folded_sum (folded : string) : int =
  String.split_on_char '\n' folded
  |> List.fold_left
       (fun acc line ->
         match String.rindex_opt line ' ' with
         | None -> acc
         | Some i -> (
           match
             int_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
           with
           | Some n -> acc + n
           | None -> acc))
       0

let func_table (p : Profile.t) : (string * int * int) list =
  List.map
    (fun fs -> (fs.Profile.fs_name, fs.Profile.fs_steps, fs.Profile.fs_calls))
    (Profile.by_function p)

let test_profile_conservation () =
  let check_engine what tier =
    let prof, r = run_profiled ?tier profile_src in
    (match r.Interp.error with
    | Some (_, m) -> Alcotest.failf "%s: unexpected error: %s" what m
    | None -> ());
    Alcotest.(check int)
      (what ^ ": folded sums == engine steps")
      r.Interp.steps
      (folded_sum (Profile.folded prof));
    Alcotest.(check int)
      (what ^ ": tree total == engine steps")
      r.Interp.steps (Profile.total_steps prof)
  in
  check_engine "interp" None;
  check_engine "tiered" (Some (Tier.controller ~threshold:0 ()))

let test_profile_tier_agreement () =
  let compiles = Metrics.counter "jit.compiles" in
  let before = compiles.Metrics.c_value in
  let pi, ri = run_profiled profile_src in
  let pt, rt =
    run_profiled ~tier:(Tier.controller ~threshold:0 ()) profile_src
  in
  if compiles.Metrics.c_value <= before then
    Alcotest.fail "forced-hot profiled run compiled nothing";
  Alcotest.(check int) "step counters agree" ri.Interp.steps rt.Interp.steps;
  Alcotest.(check (list (triple string int int)))
    "per-function attribution bit-identical" (func_table pi) (func_table pt);
  Alcotest.(check string) "folded stacks bit-identical"
    (Profile.folded pi) (Profile.folded pt)

(* The whole corpus, profiled under both tiers: conservation must hold
   even when the run ends in a managed error (the error path finalizes
   the books mid-frame), and the attribution must still agree. *)
let test_profile_corpus_agreement () =
  List.iter
    (fun (p : Groundtruth.program) ->
      let run ?tier () =
        let m = Loader.load_program p.Groundtruth.source in
        Pipeline.compile_sulong m;
        let prof = Profile.create () in
        let st =
          Interp.create ~step_limit ~mementos:true ~input:p.Groundtruth.input
            ?tier ~profile:prof m
        in
        let r = Interp.run ~argv:p.Groundtruth.argv st in
        (prof, r)
      in
      let pi, ri = run () in
      let pt, _ = run ~tier:(Tier.controller ~threshold:0 ()) () in
      Alcotest.(check int)
        (p.Groundtruth.id ^ ": conservation under error")
        ri.Interp.steps (Profile.total_steps pi);
      Alcotest.(check (list (triple string int int)))
        (p.Groundtruth.id ^ ": attribution agrees")
        (func_table pi) (func_table pt))
    Corpus.all

(* ---------------- difftest seeds ---------------- *)

(* The oracle's 8 configurations include [sulong/tiered]; any
   interp-vs-tiered disagreement on a generated program surfaces as a
   divergence here.  (The @difftest alias sweeps 2000 seeds; this keeps
   a 200-seed floor inside the plain test binary.) *)
let test_difftest_seeds () =
  for seed = 0 to 199 do
    match Difftest.run_seed seed with
    | `Agree | `Reject _ -> ()
    | `Diverge d ->
      Alcotest.failf "seed %d diverges: %s" seed d.Difftest.dv_mismatch
  done

let () =
  Alcotest.run "tier"
    [
      ( "equivalence",
        [
          Alcotest.test_case "whole corpus, interp vs tiered" `Quick
            test_corpus_sweep;
          Alcotest.test_case "repaired corpus, interp vs tiered" `Quick
            test_fixed_sweep;
        ] );
      ( "controller",
        [
          Alcotest.test_case "forced-hot run compiles" `Quick
            test_tier_actually_compiles;
          Alcotest.test_case "managed error deoptimizes" `Quick
            test_deopt_fires_on_managed_error;
          Alcotest.test_case "default threshold stays cold" `Quick
            test_default_threshold_stays_cold;
        ] );
      ( "float semantics",
        [
          Alcotest.test_case "F32 rounding + NaN pinning, forced hot" `Quick
            test_f32_nan_tiered;
        ] );
      ( "osr",
        [
          Alcotest.test_case "hot loop OSRs mid-invocation, bit-identical"
            `Quick test_osr_fires_and_matches;
          Alcotest.test_case "deopt out of an OSR'd loop" `Quick
            test_deopt_from_osr_frame;
        ] );
      ( "deopt",
        [
          Alcotest.test_case "deopt out of an unboxed-float frame" `Quick
            test_deopt_from_float_frame;
        ] );
      ( "slots",
        [
          Alcotest.test_case "scalar replacement keeps allocation ids" `Quick
            test_slot_allocation_ids;
        ] );
      ( "cache",
        [
          Alcotest.test_case "reset keeps compiled bodies, replay identical"
            `Quick test_reset_keeps_compiled_bodies;
        ] );
      ( "profile",
        [
          Alcotest.test_case "conservation: folded sums == step counter"
            `Quick test_profile_conservation;
          Alcotest.test_case "tier-1 vs tier-2 attribution bit-identical"
            `Quick test_profile_tier_agreement;
          Alcotest.test_case "whole corpus profiled, both tiers agree" `Quick
            test_profile_corpus_agreement;
        ] );
      ( "difftest",
        [
          Alcotest.test_case "seeds 0-199, zero divergences" `Quick
            test_difftest_seeds;
        ] );
    ]
