(** Front-end tests: lexer, parser, type checker, layout. *)

let lex src = Lexer.tokenize src
let toks src = List.map (fun t -> t.Token.tok) (lex src)

let token = Alcotest.testable (fun ppf t -> Fmt.string ppf (Token.to_string t)) ( = )

let check_tokens msg expected src =
  Alcotest.(check (list token)) msg (expected @ [ Token.EOF ]) (toks src)

(* ---------------- lexer ---------------- *)

let test_lex_ints () =
  check_tokens "decimal" [ Token.INT_LIT (42L, Ctype.IInt, Ctype.Signed) ] "42";
  check_tokens "hex" [ Token.INT_LIT (255L, Ctype.IInt, Ctype.Signed) ] "0xFF";
  check_tokens "octal" [ Token.INT_LIT (8L, Ctype.IInt, Ctype.Signed) ] "010";
  check_tokens "long suffix" [ Token.INT_LIT (7L, Ctype.ILong, Ctype.Signed) ] "7L";
  check_tokens "unsigned suffix"
    [ Token.INT_LIT (7L, Ctype.IInt, Ctype.Unsigned) ] "7u";
  check_tokens "ul suffix"
    [ Token.INT_LIT (7L, Ctype.ILong, Ctype.Unsigned) ] "7UL";
  (* C11 6.4.4.1p5: the type is the first in the list that fits the
     value — decimal unsuffixed goes int -> long (signed only), hex may
     land on the unsigned variant of each width. *)
  check_tokens "decimal beyond int is long"
    [ Token.INT_LIT (5000000000L, Ctype.ILong, Ctype.Signed) ] "5000000000";
  check_tokens "hex beyond int is unsigned int"
    [ Token.INT_LIT (0x80000000L, Ctype.IInt, Ctype.Unsigned) ] "0x80000000";
  check_tokens "hex beyond unsigned int is long"
    [ Token.INT_LIT (0x100000001L, Ctype.ILong, Ctype.Signed) ] "0x100000001";
  check_tokens "hex beyond long is unsigned long"
    [ Token.INT_LIT (-1L, Ctype.ILong, Ctype.Unsigned) ] "0xFFFFFFFFFFFFFFFF"

let test_lex_floats () =
  check_tokens "double" [ Token.FLOAT_LIT (1.5, Ctype.FDouble) ] "1.5";
  check_tokens "float suffix" [ Token.FLOAT_LIT (2.0, Ctype.FFloat) ] "2.0f";
  check_tokens "exponent" [ Token.FLOAT_LIT (1e5, Ctype.FDouble) ] "1e5";
  check_tokens "negative exponent" [ Token.FLOAT_LIT (1.5e-3, Ctype.FDouble) ] "1.5e-3"

let test_lex_minus_not_part_of_number () =
  check_tokens "subtraction"
    [
      Token.INT_LIT (1L, Ctype.IInt, Ctype.Signed);
      Token.PUNCT "-";
      Token.INT_LIT (2L, Ctype.IInt, Ctype.Signed);
    ]
    "1-2"

let test_lex_strings_chars () =
  check_tokens "string" [ Token.STR_LIT "hi\n" ] {|"hi\n"|};
  check_tokens "concat" [ Token.STR_LIT "ab" ] {|"a" "b"|};
  check_tokens "char" [ Token.CHAR_LIT 'x' ] "'x'";
  check_tokens "escaped char" [ Token.CHAR_LIT '\n' ] {|'\n'|};
  check_tokens "nul escape" [ Token.CHAR_LIT '\000' ] {|'\0'|};
  check_tokens "hex escape" [ Token.CHAR_LIT '\065' ] {|'\x41'|}

let test_lex_comments () =
  check_tokens "line comment" [ Token.KW "int" ] "int // trailing\n";
  check_tokens "block comment" [ Token.KW "int"; Token.KW "int" ]
    "int /* a \n b */ int"

let test_lex_punct_longest_match () =
  check_tokens "shift assign" [ Token.PUNCT "<<=" ] "<<=";
  check_tokens "arrow" [ Token.IDENT "a"; Token.PUNCT "->"; Token.IDENT "b" ] "a->b";
  check_tokens "decrement"
    [ Token.IDENT "a"; Token.PUNCT "--"; Token.PUNCT "-"; Token.IDENT "b" ]
    "a-- -b";
  check_tokens "ellipsis" [ Token.PUNCT "..." ] "..."

let test_lex_define () =
  check_tokens "object macro"
    [
      Token.KW "int"; Token.IDENT "a"; Token.PUNCT "[";
      Token.INT_LIT (10L, Ctype.IInt, Ctype.Signed); Token.PUNCT "]";
      Token.PUNCT ";";
    ]
    "#define N 10\nint a[N];";
  check_tokens "macro in macro"
    [ Token.INT_LIT (4L, Ctype.IInt, Ctype.Signed);
      Token.PUNCT "+";
      Token.INT_LIT (4L, Ctype.IInt, Ctype.Signed) ]
    "#define A 4\n#define B A\nB+B"

let test_lex_include_skipped () =
  check_tokens "include line ignored" [ Token.KW "int" ] "#include <stdio.h>\nint"

let test_lex_errors () =
  let expect_error src =
    try
      ignore (lex src);
      Alcotest.fail "expected lexer error"
    with Diag.Error _ -> ()
  in
  expect_error "\"unterminated";
  expect_error "'a";
  expect_error "#define F(x) x";
  expect_error "#pragma once";
  expect_error "@"

(* ---------------- parser ---------------- *)

let parse src = Parser.parse_string src

let expect_parse_error msg src =
  try
    ignore (parse src);
    Alcotest.fail ("expected parse error: " ^ msg)
  with Diag.Error _ -> ()

let test_parse_globals () =
  let prog = parse "int x = 4; double d; char *s = \"hi\";" in
  let vars =
    List.filter_map (function Ast.Gvar d -> Some d.Ast.d_name | _ -> None) prog
  in
  Alcotest.(check (list string)) "globals" [ "x"; "d"; "s" ] vars

let test_parse_function_pointer_decl () =
  let prog = parse "int (*cmp)(const void *, const void *);" in
  match prog with
  | [ Ast.Gvar d ] -> begin
    match d.Ast.d_ty with
    | Ctype.Ptr (Ctype.Func fsig) ->
      Alcotest.(check int) "two params" 2 (List.length fsig.Ctype.params)
    | t -> Alcotest.fail ("expected function pointer, got " ^ Ctype.to_string t)
  end
  | _ -> Alcotest.fail "expected a single declaration"

let test_parse_array_of_function_pointers () =
  let prog = parse "int (*hooks[4])(int);" in
  match prog with
  | [ Ast.Gvar d ] -> begin
    match d.Ast.d_ty with
    | Ctype.Array (Ctype.Ptr (Ctype.Func _), Some 4) -> ()
    | t -> Alcotest.fail ("unexpected type " ^ Ctype.to_string t)
  end
  | _ -> Alcotest.fail "expected a single declaration"

let test_parse_enum_constants () =
  let prog = parse "enum color { RED, GREEN = 5, BLUE }; int x[BLUE];" in
  let sizes =
    List.filter_map
      (function
        | Ast.Gvar d -> (match d.Ast.d_ty with
          | Ctype.Array (_, Some n) -> Some n
          | _ -> None)
        | _ -> None)
      prog
  in
  Alcotest.(check (list int)) "BLUE = 6" [ 6 ] sizes

let test_parse_typedef () =
  let prog = parse "typedef unsigned short u16; u16 x;" in
  let tys =
    List.filter_map (function Ast.Gvar d -> Some d.Ast.d_ty | _ -> None) prog
  in
  Alcotest.(check bool) "typedef resolved" true
    (tys = [ Ctype.Int (Ctype.IShort, Ctype.Unsigned) ])

let test_parse_size_t_unsigned () =
  (* regression: typedef signedness must survive decl-spec resolution *)
  let prog = parse "size_t n;" in
  match prog with
  | [ Ast.Gvar d ] ->
    Alcotest.(check bool) "size_t is unsigned long" true
      (Ctype.equal d.Ast.d_ty Ctype.ulong_t)
  | _ -> Alcotest.fail "expected one declaration"

let test_parse_struct_def () =
  let prog = parse "struct point { int x; int y; char tag[8]; };" in
  match prog with
  | [ Ast.Gstruct ("point", fields) ] ->
    Alcotest.(check (list string)) "fields" [ "x"; "y"; "tag" ]
      (List.map (fun (f : Ast.field) -> f.Ast.f_name) fields)
  | _ -> Alcotest.fail "expected struct definition"

let test_parse_const_expr_sizes () =
  let prog = parse "int a[3 + 4 * 2]; int b[(1 << 4) | 1];" in
  let sizes =
    List.filter_map
      (function
        | Ast.Gvar d -> (match d.Ast.d_ty with
          | Ctype.Array (_, Some n) -> Some n
          | _ -> None)
        | _ -> None)
      prog
  in
  Alcotest.(check (list int)) "const arithmetic" [ 11; 17 ] sizes

let test_parse_errors () =
  expect_parse_error "missing semicolon" "int x";
  expect_parse_error "bad declarator" "int 4x;";
  expect_parse_error "unbalanced" "int f( { }";
  expect_parse_error "nonconst array size" "int x; int a[x];"

(* ---------------- sema ---------------- *)

let check_src src =
  let prog = parse src in
  ignore (Sema.check prog)

let expect_sema_error msg src =
  try
    check_src src;
    Alcotest.fail ("expected sema error: " ^ msg)
  with Diag.Error _ -> ()

let test_sema_accepts () =
  check_src "int main(void) { int a[2] = {1, 2}; return a[0] + a[1]; }";
  check_src "double f(double x) { return x * 2.0; } int main(void) { return (int)f(1.0); }";
  check_src
    "struct s { int v; }; int main(void) { struct s x; x.v = 1; struct s *p = &x; return p->v; }";
  check_src "int main(void) { char buf[4] = \"abc\"; return buf[0]; }"

let test_sema_rejects () =
  expect_sema_error "undeclared" "int main(void) { return nope; }";
  expect_sema_error "call arity" "int f(int a) { return a; } int main(void) { return f(); }";
  expect_sema_error "too many args"
    "int f(int a) { return a; } int main(void) { return f(1, 2); }";
  expect_sema_error "bad member" "struct s { int v; }; int main(void) { struct s x; return x.w; }";
  expect_sema_error "member of non-struct" "int main(void) { int x; return x.v; }";
  expect_sema_error "deref non-pointer" "int main(void) { int x; return *x; }";
  expect_sema_error "assign to rvalue" "int main(void) { 1 = 2; return 0; }";
  expect_sema_error "return value from void"
    "void f(void) { return 1; } int main(void) { return 0; }";
  expect_sema_error "struct/int assignment"
    "struct s { int v; }; int main(void) { struct s x; x = 3; return 0; }";
  expect_sema_error "struct parameter by value"
    "struct s { int v; }; int f(struct s x) { return x.v; } int main(void) { return 0; }";
  expect_sema_error "struct return by value"
    "struct s { int v; }; struct s f(void) { struct s x; return x; } int main(void) { return 0; }"

let test_sema_array_completion () =
  let prog = parse "int xs[] = {1, 2, 3, 4}; char s[] = \"hello\";" in
  ignore (Sema.check prog);
  let sizes =
    List.filter_map
      (function
        | Ast.Gvar d -> (match d.Ast.d_ty with
          | Ctype.Array (_, n) -> n
          | _ -> None)
        | _ -> None)
      prog
  in
  Alcotest.(check (list int)) "completed sizes" [ 4; 6 ] sizes

let test_usual_arith () =
  Alcotest.(check bool) "int+uint is unsigned" true
    (Ctype.usual_arith Ctype.int_t Ctype.uint_t = Ctype.uint_t);
  Alcotest.(check bool) "char promotes to int" true
    (Ctype.usual_arith Ctype.char_t Ctype.char_t = Ctype.int_t);
  Alcotest.(check bool) "int+double is double" true
    (Ctype.usual_arith Ctype.int_t Ctype.double_t = Ctype.double_t);
  Alcotest.(check bool) "long+uint is long" true
    (Ctype.usual_arith Ctype.long_t Ctype.uint_t = Ctype.long_t)

(* ---------------- layout ---------------- *)

let layout_env_of src =
  let prog = parse src in
  let env = Sema.check prog in
  env.Sema.layout

let test_layout_scalars () =
  let lenv = Layout.make_env () in
  Alcotest.(check int) "char" 1 (Layout.size lenv Ctype.char_t);
  Alcotest.(check int) "short" 2 (Layout.size lenv Ctype.short_t);
  Alcotest.(check int) "int" 4 (Layout.size lenv Ctype.int_t);
  Alcotest.(check int) "long" 8 (Layout.size lenv Ctype.long_t);
  Alcotest.(check int) "pointer" 8 (Layout.size lenv (Ctype.Ptr Ctype.Void));
  Alcotest.(check int) "array" 40 (Layout.size lenv (Ctype.Array (Ctype.int_t, Some 10)))

let test_layout_struct_padding () =
  let lenv = layout_env_of "struct s { char c; int i; char d; };" in
  (* c at 0, 3 bytes padding, i at 4, d at 8, tail padding to align 4 *)
  Alcotest.(check int) "size with padding" 12 (Layout.size lenv (Ctype.Struct "s"));
  Alcotest.(check int) "align" 4 (Layout.align lenv (Ctype.Struct "s"));
  let off_i, ty_i = Layout.field_offset lenv "s" "i" in
  Alcotest.(check int) "i offset" 4 off_i;
  Alcotest.(check bool) "i type" true (Ctype.equal ty_i Ctype.int_t);
  let off_d, _ = Layout.field_offset lenv "s" "d" in
  Alcotest.(check int) "d offset" 8 off_d

let test_layout_nested () =
  let lenv =
    layout_env_of
      "struct inner { long l; char c; }; struct outer { char tag; struct inner in; int k; };"
  in
  Alcotest.(check int) "inner size" 16 (Layout.size lenv (Ctype.Struct "inner"));
  let off_in, _ = Layout.field_offset lenv "outer" "in" in
  Alcotest.(check int) "inner aligned to 8" 8 off_in;
  Alcotest.(check int) "outer size" 32 (Layout.size lenv (Ctype.Struct "outer"))

let test_layout_field_index () =
  let lenv = layout_env_of "struct s { int a; int b; int c; };" in
  Alcotest.(check int) "index of b" 1 (Layout.field_index lenv "s" "b");
  Alcotest.(check int) "index of c" 2 (Layout.field_index lenv "s" "c")

let () =
  Alcotest.run "cfront"
    [
      ( "lexer",
        [
          Alcotest.test_case "ints" `Quick test_lex_ints;
          Alcotest.test_case "floats" `Quick test_lex_floats;
          Alcotest.test_case "minus binds as operator" `Quick
            test_lex_minus_not_part_of_number;
          Alcotest.test_case "strings and chars" `Quick test_lex_strings_chars;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "punct longest match" `Quick
            test_lex_punct_longest_match;
          Alcotest.test_case "#define" `Quick test_lex_define;
          Alcotest.test_case "#include skipped" `Quick test_lex_include_skipped;
          Alcotest.test_case "errors" `Quick test_lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "globals" `Quick test_parse_globals;
          Alcotest.test_case "function pointer" `Quick
            test_parse_function_pointer_decl;
          Alcotest.test_case "array of function pointers" `Quick
            test_parse_array_of_function_pointers;
          Alcotest.test_case "enum constants" `Quick test_parse_enum_constants;
          Alcotest.test_case "typedef" `Quick test_parse_typedef;
          Alcotest.test_case "size_t is unsigned" `Quick test_parse_size_t_unsigned;
          Alcotest.test_case "struct definition" `Quick test_parse_struct_def;
          Alcotest.test_case "constant array sizes" `Quick
            test_parse_const_expr_sizes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "sema",
        [
          Alcotest.test_case "accepts valid programs" `Quick test_sema_accepts;
          Alcotest.test_case "rejects invalid programs" `Quick test_sema_rejects;
          Alcotest.test_case "array completion" `Quick test_sema_array_completion;
          Alcotest.test_case "usual arithmetic conversions" `Quick
            test_usual_arith;
        ] );
      ( "layout",
        [
          Alcotest.test_case "scalars" `Quick test_layout_scalars;
          Alcotest.test_case "struct padding" `Quick test_layout_struct_padding;
          Alcotest.test_case "nested structs" `Quick test_layout_nested;
          Alcotest.test_case "field index" `Quick test_layout_field_index;
        ] );
    ]
