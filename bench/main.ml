(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation and micro-benchmarks the machinery behind each one
    with Bechamel (one [Test.make] per table/figure).

    Usage:
      dune exec bench/main.exe             # all experiments + microbenches
      dune exec bench/main.exe fig16       # one experiment
      dune exec bench/main.exe micro       # only the Bechamel microbenches
      dune exec bench/main.exe micro --json BENCH_interp.json
                                           # machine-readable ns/op, for
                                           # tracking the perf trajectory
                                           # across PRs *)

open Bechamel
open Toolkit

(* ---------------- the microbenchmarks (one per table/figure) -------- *)

(* Each microbenchmark is a named thunk; the Bechamel tests and the
   --json timing harness are both built from this list. *)

(* FIG1/FIG2: keyword classification over the synthetic databases. *)
let thunk_fig12 =
  let entries = lazy (Gen.generate Gen.Cve) in
  fun () -> ignore (Classify.trends (Lazy.force entries))

(* TAB1/TAB2/CMP: one representative corpus program under Safe Sulong
   (the unit of work the effectiveness experiment repeats 68 x 5 times). *)
let thunk_tab12 =
  let p = List.hd Corpus.all in
  fun () ->
    ignore
      (Engine.run ~argv:p.Groundtruth.argv ~input:p.Groundtruth.input
         Engine.Safe_sulong p.Groundtruth.source)

let thunk_cmp_asan =
  let p = List.hd Corpus.all in
  fun () ->
    ignore
      (Engine.run ~argv:p.Groundtruth.argv ~input:p.Groundtruth.input
         (Engine.Asan Pipeline.O0) p.Groundtruth.source)

(* STARTUP: front end + libc link for hello world (the work behind the
   start-up numbers). *)
let thunk_startup =
  fun () -> ignore (Loader.load_program Benchprogs.hello.Benchprogs.b_source)

(* Reset-based unit of work for the managed rows: the state (and, for
   the tiered rows, the tier controller) is created once and rewound
   with [Interp.reset] between iterations.  [pf_tier] survives the
   reset — the compiled-body cache — so the tiered rows time warm
   execution rather than per-iteration recompilation, the same shape as
   the paper's warmed-up measurements.  Sharing one module between the
   interp and tiered states is safe: the interpreter only reads the
   module it prepares. *)
let reset_thunk ?(tiered = false) (m : Irmod.t Lazy.t) : unit -> unit =
  let st =
    lazy
      (let m = Lazy.force m in
       if tiered then Interp.create ~tier:(Tier.controller ~threshold:0 ()) m
       else Interp.create m)
  in
  fun () ->
    let st = Lazy.force st in
    Interp.reset st;
    ignore (Interp.run st)

(* FIG15: one meteor iteration in the managed interpreter (the unit the
   warm-up experiment repeats). *)
let fig15_module =
  lazy (Loader.load_program Benchprogs.meteor.Benchprogs.b_source)

let thunk_fig15 = reset_thunk fig15_module

(* FIG15 warm: the same meteor iteration with the tier controller forced
   hot, so the whole run executes in the closure-compiled tier — the
   interp-vs-tiered ratio of the two fig15 rows is the repo's stand-in
   for the paper's warmed-up-Graal speedup. *)
let thunk_fig15_tiered = reset_thunk ~tiered:true fig15_module

(* DISPATCH: isolates the interpreter's control-transfer machinery —
   direct calls, an indirect call through a flipping function pointer,
   and a switch — with almost no memory traffic, so the cost of branch /
   call / switch dispatch dominates.  This is the path the pre-resolution
   pass (prepare -> link -> execute) optimizes. *)
let dispatch_src =
  {|
int add1(int x) { return x + 1; }
int mul2(int x) { return x * 2; }
int pick(int i) {
  switch (i & 7) {
  case 0: return 1;
  case 1: return 3;
  case 2: return 5;
  case 3: return 7;
  case 4: return 11;
  case 5: return 13;
  case 6: return 17;
  default: return 19;
  }
}
int main(void) {
  long s = 0;
  int (*fp)(int);
  for (int i = 0; i < 120000; i++) {
    if (i & 1) fp = add1; else fp = mul2;
    s += fp(i);
    s += add1(i);
    s += pick(i);
  }
  printf("%ld\n", s);
  return 0;
}
|}

let dispatch_module = lazy (Loader.load_program dispatch_src)
let thunk_dispatch = reset_thunk dispatch_module
let thunk_dispatch_tiered = reset_thunk ~tiered:true dispatch_module

(* FIG16 managed: whetstone in the managed interpreter and in the
   closure-compiled tier — float-heavy, so the tiered row exercises the
   unboxed F64 register file end to end. *)
let whetstone_module =
  lazy (Loader.load_program Benchprogs.whetstone.Benchprogs.b_source)

let thunk_fig16_interp = reset_thunk whetstone_module
let thunk_fig16_tiered = reset_thunk ~tiered:true whetstone_module

(* FIG16: one benchmark under the native engine at -O0, plus the -O3
   pipeline itself (the peak measurement's units of work). *)
let thunk_fig16_o0 =
  let m = lazy (Loader.compile_user Benchprogs.whetstone.Benchprogs.b_source) in
  fun () ->
    let st = Nexec.create (Irmod.copy (Lazy.force m)) in
    ignore (Nexec.run st)

let thunk_fig16_o3pipe =
  fun () ->
    let m = Loader.compile_user Benchprogs.whetstone.Benchprogs.b_source in
    Pipeline.compile_native ~level:Pipeline.O3 m

(* Ablation benches from DESIGN.md par.5. *)
let thunk_ablation_mementos =
  fun () ->
    ignore
      (Engine.run ~mementos:true Engine.Safe_sulong
         Benchprogs.binarytrees.Benchprogs.b_source)

let thunk_ablation_no_mementos =
  fun () ->
    ignore
      (Engine.run ~mementos:false Engine.Safe_sulong
         Benchprogs.binarytrees.Benchprogs.b_source)

let thunk_ablation_inline =
  fun () ->
    let m = Loader.compile_user Benchprogs.whetstone.Benchprogs.b_source in
    ignore (Inline.run m);
    Pipeline.compile_native ~level:Pipeline.O3 m

let all_micro : (string * (unit -> unit)) list =
  [
    ("fig1+2: classify CVE database", thunk_fig12);
    ("tab1+2: corpus program under Safe Sulong", thunk_tab12);
    ("cmp: corpus program under ASan", thunk_cmp_asan);
    ("startup: load hello world", thunk_startup);
    ("fig15: meteor iteration (managed interpreter)", thunk_fig15);
    ("fig15: meteor iteration (closure-compiled tier)", thunk_fig15_tiered);
    ("fig16: whetstone (managed interpreter)", thunk_fig16_interp);
    ("fig16: whetstone (closure-compiled tier)", thunk_fig16_tiered);
    ("fig16: whetstone native -O0", thunk_fig16_o0);
    ("fig16: the -O3 pipeline on whetstone", thunk_fig16_o3pipe);
    ("ablation: binarytrees with allocation mementos", thunk_ablation_mementos);
    ("ablation: binarytrees without mementos", thunk_ablation_no_mementos);
    ("ablation: -O3 + inlining pipeline on whetstone", thunk_ablation_inline);
    (* last: its heavy allocation perturbs the GC for whatever follows *)
    ("micro: call/switch dispatch (managed interpreter)", thunk_dispatch);
    ("micro: call/switch dispatch (closure-compiled tier)", thunk_dispatch_tiered);
  ]

let run_micro () =
  print_endline "\nMICRO - Bechamel microbenchmarks (one per experiment)";
  print_endline "=====================================================";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun (name, thunk) ->
      let test = Test.make ~name (Staged.stage thunk) in
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-52s %14.0f ns/run\n" name est
          | _ -> Printf.printf "  %-52s (no estimate)\n" name)
        ols)
    all_micro

(* ---------------- machine-readable perf trajectory ------------------ *)

(* A self-contained timing loop (no OLS): runs each thunk for at least
   [quota_s] seconds and at least [min_runs] times and reports the best
   run's ns/op (the minimum filters out GC pauses inherited from the
   preceding benchmarks, which a mean folds in).  The JSON schema is
   stable across PRs:
     [{"name": ..., "ns_per_op": ..., "runs": ...}, ...] *)

let time_thunk ?(quota_s = 0.5) ?(min_runs = 5) (thunk : unit -> unit) :
    float * int =
  thunk ();
  (* warm-up: fill caches, force the lazies *)
  Gc.major ();
  (* don't charge this bench for the previous one's garbage *)
  let t0 = Sys.time () in
  let best = ref infinity in
  let runs = ref 0 in
  while Sys.time () -. t0 < quota_s || !runs < min_runs do
    let s = Sys.time () in
    thunk ();
    let d = Sys.time () -. s in
    if d < !best then best := d;
    incr runs
  done;
  (!best *. 1e9, !runs)

let json_escape = Util.json_escape

(* One metered meteor iteration: the observability counters for the Fig
   15 unit of work, reported as extra rows ({"name", "value"}) next to
   the ns/op rows.  The registry is enabled only around this run, so
   the timing rows above are measured with metrics off. *)
let metrics_rows () : string list =
  Metrics.reset ();
  Metrics.enabled := true;
  (* a fresh state, not [thunk_fig15]'s cached one: the interpreter
     samples [Metrics.enabled] at [create] time, and the shared timing
     state was (deliberately) created with metrics off *)
  (let st = Interp.create (Lazy.force fig15_module) in
   ignore (Interp.run st));
  Metrics.enabled := false;
  let sn = Metrics.snapshot () in
  let row name v =
    Printf.sprintf "  {\"name\": \"obs: %s\", \"value\": %s}"
      (json_escape name) v
  in
  List.map (fun (n, v) -> row n (string_of_int v)) sn.Metrics.sn_counters
  @ List.map (fun (n, v) -> row n (Metrics.float_str v)) sn.Metrics.sn_gauges
  @ List.concat_map
      (fun (n, count, sum, _) ->
        let mean = if count = 0 then 0.0 else sum /. float_of_int count in
        [
          row (n ^ ".count") (string_of_int count);
          row (n ^ ".mean") (Metrics.float_str mean);
        ])
      sn.Metrics.sn_histograms

let run_json file =
  let timings =
    List.map
      (fun (name, thunk) ->
        let ns, runs = time_thunk thunk in
        Printf.eprintf "  %-52s %14.0f ns/op (%d runs)\n%!" name ns runs;
        (name, ns, runs))
      all_micro
  in
  let rows =
    List.map
      (fun (name, ns, runs) ->
        Printf.sprintf "  {\"name\": \"%s\", \"ns_per_op\": %.0f, \"runs\": %d}"
          (json_escape name) ns runs)
      timings
  in
  (* Per-benchmark interp/tiered speedups: the wall-clock ratio of each
     (managed interpreter, closure-compiled tier) row pair.  The meteor
     pair keeps its legacy row name "fig15: interp/tiered speedup" — the
     headline tiered-engine number (the acceptance bar for the unboxed /
     inlining / OSR tier is >= 3x). *)
  let find name =
    List.find_map
      (fun (n, ns, _) -> if n = name then Some ns else None)
      timings
  in
  let speedup_pairs =
    [
      ( "fig15: interp/tiered speedup",
        "fig15: meteor iteration (managed interpreter)",
        "fig15: meteor iteration (closure-compiled tier)" );
      ( "fig16: whetstone interp/tiered speedup",
        "fig16: whetstone (managed interpreter)",
        "fig16: whetstone (closure-compiled tier)" );
      ( "micro: dispatch interp/tiered speedup",
        "micro: call/switch dispatch (managed interpreter)",
        "micro: call/switch dispatch (closure-compiled tier)" );
    ]
  in
  let rows =
    rows
    @ List.filter_map
        (fun (row_name, interp_name, tiered_name) ->
          match (find interp_name, find tiered_name) with
          | Some interp_ns, Some tiered_ns when tiered_ns > 0.0 ->
            let speedup = interp_ns /. tiered_ns in
            Printf.eprintf "  %-52s %14.2f x\n%!" row_name speedup;
            Some
              (Printf.sprintf "  {\"name\": \"%s\", \"value\": %.2f}"
                 (json_escape row_name) speedup)
          | _ -> None)
        speedup_pairs
  in
  let rows = rows @ metrics_rows () in
  let oc = open_out file in
  output_string oc ("[\n" ^ String.concat ",\n" rows ^ "\n]\n");
  close_out oc;
  Printf.eprintf "wrote %s\n%!" file

(* ---------------- entry point ---------------- *)

let () =
  (* --json FILE anywhere on the command line switches to the
     machine-readable mode (implies the microbenchmarks). *)
  let json_file = ref None in
  let words = ref [] in
  let argv = Array.to_list Sys.argv in
  let rec scan = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_file := Some file;
      scan rest
    | "--json" :: [] -> json_file := Some "BENCH_interp.json"
    | w :: rest ->
      words := w :: !words;
      scan rest
  in
  scan (List.tl argv);
  match !json_file with
  | Some file -> run_json file
  | None ->
    let which = match List.rev !words with w :: _ -> w | [] -> "all" in
    (match which with
    | "fig1" -> Report.fig1 ()
    | "fig2" -> Report.fig2 ()
    | "tab1" | "tab2" | "cmp" -> Report.effectiveness ()
    | "startup" -> Report.startup ()
    | "fig15" -> Report.fig15 ()
    | "fig16" -> Report.fig16 ()
    | "ablations" -> Report.ablations ()
    | "micro" -> run_micro ()
    | "all" | _ ->
      Report.run_all ();
      run_micro ());
    print_newline ()
