(** Program loading: compile a user C source with the prelude visible,
    compile the managed libc (cached — Safe Sulong parses libc at every
    start-up, which the start-up cost model charges for; *we* cache the
    front-end work and only account for it in the model), and link.

    The result is the module Safe Sulong interprets: user code first (its
    definitions win), libc filling in the rest. *)

let libc_cache : Irmod.t option ref = ref None

(** The cached libc front-end product, shared.  Callers must treat the
    result — and anything a module linked from it aliases — as frozen:
    copy before running a mutating pass. *)
let libc_module_shared () : Irmod.t =
  match !libc_cache with
  | Some m -> m
  | None ->
    let m, _env =
      Lower.frontend ~string_prefix:".libc.str" ~file:"<libc>"
        Libc_src.source
    in
    libc_cache := Some m;
    m

(** The libc as an IR module (front-end output, unoptimized). *)
let libc_module () : Irmod.t = Irmod.copy (libc_module_shared ())

(* The prelude is prepended to every user source before lexing; start
   the lexer's line counter below 1 so the *user's* first line is line 1
   in diagnostics and provenance reports.  The prelude holds only
   declarations, so no negative line ever reaches an executed Srcloc. *)
let prelude_lines =
  String.fold_left
    (fun acc c -> if c = '\n' then acc + 1 else acc)
    0 Libc_src.prelude

(** Compile [src] (user program) against the prelude, without linking. *)
let compile_user ?(file = "<input>") (src : string) : Irmod.t =
  let m, _env =
    Lower.frontend ~file ~start_line:(1 - prelude_lines)
      (Libc_src.prelude ^ src)
  in
  m

(** Compile and link a complete program: user code + managed libc. *)
let load_program ?file (src : string) : Irmod.t =
  let user = compile_user ?file src in
  let linked = Trace.span "link" (fun () -> Irmod.link user (libc_module ())) in
  Trace.span "verify" (fun () -> Verify.verify linked);
  linked

(** Convenience for tests and examples: compile, link, interpret.  All
    interpreter knobs (step/depth limits, call tracing, PRNG seed) pass
    straight through to [Interp.create]. *)
let run_source ?(argv = [ "program" ]) ?(input = "") ?step_limit
    ?depth_limit ?(mementos = true) ?(detect_uninit = false) ?trace ?seed
    (src : string) : Interp.run_result =
  let m = load_program src in
  let st =
    Interp.create ?step_limit ?depth_limit ~mementos ~detect_uninit ?trace
      ?seed ~input m
  in
  Interp.run ~argv st
