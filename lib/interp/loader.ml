(** Program loading: compile a user C source with the prelude visible,
    compile the managed libc (cached — Safe Sulong parses libc at every
    start-up, which the start-up cost model charges for; *we* cache the
    front-end work and only account for it in the model), and link.

    The result is the module Safe Sulong interprets: user code first (its
    definitions win), libc filling in the rest. *)

let libc_cache : Irmod.t option ref = ref None

(** The libc as an IR module (front-end output, unoptimized). *)
let libc_module () : Irmod.t =
  match !libc_cache with
  | Some m -> Irmod.copy m
  | None ->
    let m, _env = Lower.frontend ~string_prefix:".libc.str" Libc_src.source in
    libc_cache := Some m;
    Irmod.copy m

(** Compile [src] (user program) against the prelude, without linking. *)
let compile_user (src : string) : Irmod.t =
  let m, _env = Lower.frontend (Libc_src.prelude ^ src) in
  m

(** Compile and link a complete program: user code + managed libc. *)
let load_program (src : string) : Irmod.t =
  let user = compile_user src in
  let linked = Irmod.link user (libc_module ()) in
  Verify.verify linked;
  linked

(** Convenience for tests and examples: compile, link, interpret.  All
    interpreter knobs (step/depth limits, call tracing, PRNG seed) pass
    straight through to [Interp.create]. *)
let run_source ?(argv = [ "program" ]) ?(input = "") ?step_limit
    ?depth_limit ?(mementos = true) ?(detect_uninit = false) ?trace ?seed
    (src : string) : Interp.run_result =
  let m = load_program src in
  let st =
    Interp.create ?step_limit ?depth_limit ~mementos ~detect_uninit ?trace
      ?seed ~input m
  in
  Interp.run ~argv st
