(** The LLVM-IR interpreter at the core of Safe Sulong (paper §3).

    The public surface is intentionally small: build a state from a
    linked module with [create] (which runs the prepare -> link
    pre-resolution pass, see DESIGN.md), execute it with [run], and read
    the execution profile.  The prepared-code representation is an
    implementation detail and changes freely between versions. *)

exception Exit_program of int
exception Step_limit_exceeded

(** Per-function dynamic operation counts, consumed by the JIT cost
    model (lib/jit) to reproduce the paper's performance figures. *)
type counters = {
  mutable c_ops : int;        (** integer/other IR operations executed *)
  mutable c_fp : int;         (** floating-point operations *)
  mutable c_mem : int;        (** loads + stores *)
  mutable c_calls : int;      (** calls executed *)
  mutable c_invocations : int;(** times this function was entered *)
}

type profile = {
  funcs : (string, counters) Hashtbl.t;
  mutable p_allocs : int;
  mutable p_alloc_bytes : int;
  mutable p_steps : int;
}

(** An execution state: prepared code, globals, heap, profile. *)
type state

type run_result = {
  exit_code : int;
  output : string;
  error : (Merror.category * string) option;
  steps : int;
  run_profile : profile;
  leaks : int;  (** unfreed heap objects at exit (paper §6 extension) *)
  leak_details : string list;
      (** one line per leaked object: class, size, allocating function *)
  trace_output : string;  (** call trace, when enabled (empty otherwise) *)
  timed_out : bool;
  report : Bugreport.t option;
      (** structured provenance report for [error]: faulting C source
          location, bounds detail, and the managed call stack *)
}

(** Prepare and link [m] for execution.  Every function is compiled to
    the pre-resolved form (branch targets as block indices, phi parallel
    copies on the edges, call sites linked to user functions or host
    builtins), so no name is resolved on the execution hot path. *)
val create :
  ?step_limit:int ->
  ?depth_limit:int ->
  ?mementos:bool ->
  ?detect_uninit:bool ->
  ?trace:bool ->
  ?input:string ->
  ?seed:int ->
  ?provenance:bool ->
  Irmod.t ->
  state

(** [provenance] (default false) keeps source-location markers in the
    prepared code so the current line is tracked eagerly.  The default
    strips them from the dispatch loop; when a managed error fires, the
    program is re-executed once with eager tracking to recover the
    faulting source location (deterministic deoptimizing replay). *)

(** Execute [main].  The state is single-shot: create a fresh one per
    run. *)
val run : ?argv:string list -> state -> run_result
