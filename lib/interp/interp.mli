(** The LLVM-IR interpreter at the core of Safe Sulong (paper §3).

    Most clients only need the narrow surface at the bottom: build a
    state from a linked module with [create] (which runs the prepare ->
    link pre-resolution pass, see DESIGN.md), execute it with [run], and
    read the execution profile.

    The prepared-code representation and the execution helpers are also
    exposed: they are the compilation unit of the tier-2 closure
    compiler ([Jit.Closcomp]), which translates prepared functions into
    nested OCaml closures and must match the interpreter's observable
    behavior bit for bit (outputs, [steps] accounting, managed errors).
    A [tierctl] plugged into [create ~tier] turns on profile-driven
    tier-up with deoptimization (DESIGN.md §9). *)

exception Exit_program of int
exception Step_limit_exceeded

(** Per-function dynamic operation counts, consumed by the JIT cost
    model (lib/jit) to reproduce the paper's performance figures and by
    the tier controller's hotness policy. *)
type counters = {
  mutable c_ops : int;        (** integer/other IR operations executed *)
  mutable c_fp : int;         (** floating-point operations *)
  mutable c_mem : int;        (** loads + stores *)
  mutable c_calls : int;      (** calls executed *)
  mutable c_invocations : int;(** times this function was entered *)
}

type profile = {
  funcs : (string, counters) Hashtbl.t;
  mutable p_allocs : int;
  mutable p_alloc_bytes : int;
  mutable p_steps : int;
}

(** Cost class charged to the profile for one executed operation. *)
type opclass = Cop | Cfp | Cmem

(** Per-opcode dispatch counts and inline-cache statistics, collected
    only when metrics were enabled at [create] time. *)
type opstats = {
  mutable os_alloca : int;
  mutable os_load : int;
  mutable os_store : int;
  mutable os_gep : int;
  mutable os_binop : int;
  mutable os_icmp : int;
  mutable os_fcmp : int;
  mutable os_cast : int;
  mutable os_select : int;
  mutable os_sancheck : int;
  mutable os_call : int;
  mutable os_term : int;
  mutable os_phi_copy : int;
  mutable os_ic_hit : int;
  mutable os_ic_miss : int;
}

(* ------------------------------------------------------------------ *)
(* Prepared code (see interp.ml for the full commentary)               *)
(* ------------------------------------------------------------------ *)

type pval =
  | Preg of int             (** read a register of the current frame *)
  | Pimm of Mval.t          (** pre-boxed constant *)
  | Pfail of string         (** unresolved reference; raises on use *)

type pgep = { pg_static : int; pg_dyn : (pval * int) array }

type phicopy =
  | Pc_none
  | Pc_copy of int array * pval array  (** destination regs, sources *)
  | Pc_missing

type pedge =
  | Edge of int * phicopy        (** target block index + phi copies *)
  | Edge_unknown of string

type pswitch =
  | Sw_linear of int64 array * pedge array
  | Sw_table of (int64, pedge) Hashtbl.t

type pterm =
  | Pret of pval option
  | Pbr of pedge
  | Pcondbr of pval * pedge * pedge
  | Pswitch of pval * pswitch * pedge
  | Punreachable

type pinstr =
  | Palloca of int * Irtype.mty * int
  | Pload of int * Irtype.scalar * pval
  | Pstore of Irtype.scalar * pval * pval
  | Pgep of int * pval * pgep
  | Pbinop of int * Instr.binop * Irtype.scalar * pval * pval * opclass
  | Picmp of int * Instr.icmp * Irtype.scalar * pval * pval
  | Pfcmp of int * Instr.fcmp * pval * pval
  | Pcast of int * Instr.cast * Irtype.scalar * Irtype.scalar * pval
  | Pselect of int * pval * pval * pval
  | Psancheck
  | Pcall of int * pcallee * pval array * Irtype.scalar array
  | Ploc of int * int

and pcallee =
  | Pdirect of call_target ref
  | Pindirect of pval * icache

and call_target =
  | Tgt_user of pfunc
  | Tgt_builtin of string * (state -> Mval.t array -> Mval.t option)
  | Tgt_unknown of string

and icache = { mutable ic_name : string; mutable ic_target : call_target }

and pblock = {
  pb_label : string;
  pb_instrs : pinstr array;
  pb_term : pterm;
  pb_index : int;  (** position in [pf_blocks] *)
  mutable pb_osr : bool;
      (** loop header (target of a back edge): the interpreter probes the
          tier controller here for on-stack replacement *)
}

and pfunc = {
  pf_ir : Irfunc.t;
  pf_name : string;
  pf_context : string;
  pf_blocks : pblock array;
  pf_entry_copies : phicopy;
  pf_nregs : int;
  pf_nparams : int;
  pf_param_regs : int array;
  pf_variadic : bool;
  pf_counters : counters;
  mutable pf_tier : tier;
}

(** Current execution tier of a function.  [Tier_deopt]: a managed error
    fired in compiled code; the function stays interpreted for the rest
    of the run. *)
and tier =
  | Tier_interp
  | Tier_compiled of compiled
  | Tier_deopt

(** A compiled function: normal entry plus an optional on-stack
    replacement entry for functions with loop headers.  [cb_frame] /
    [cb_release], when provided, let [call_function] recycle frames
    through a per-function free list instead of allocating register
    files on every invocation: [cb_frame args scalars] returns a frame
    with the compiled register-file layout already installed (arrays
    zeroed, parameters copied), and [cb_release] returns it to the pool
    after a normal return — never after an error, since the erroring
    frame stays reachable from [frames] for reporting. *)
and compiled = {
  cb_entry : compiled_body;
  cb_osr : osr_body option;
  cb_frame : (Mval.t array -> Irtype.scalar array -> frame) option;
  cb_release : (frame -> unit) option;
}

(** A compiled function body: runs the function from its entry block in
    an already-set-up frame (registers allocated, parameters copied).
    It must charge [steps] exactly like the interpreter so the timeout
    point — observable behavior — is identical across tiers. *)
and compiled_body = state -> frame -> Mval.t option

(** OSR entry: [osr st fr idx] resumes mid-invocation at block [idx]
    (whose phi copies already ran) after transferring the interpreter
    frame into the compiled register files. *)
and osr_body = state -> frame -> int -> Mval.t option

(** Tier controller: hotness policy + compiler, built by [Jit.Tier]. *)
and tierctl = {
  tc_hot : counters -> bool;
  tc_compile : state -> pfunc -> compiled;
}

and frame = {
  fr_func : pfunc;
  mutable fr_regs : Mval.t array;
      (** boxed register file; compiled bodies that inlined callees
          re-install an enlarged file *)
  mutable fr_iregs : int array;
      (** unboxed small-integer register file for compiled bodies;
          [[||]] in interpreted frames *)
  mutable fr_fregs : float array;
      (** unboxed F32/F64 register file (compiled bodies only) *)
  mutable fr_pobj : Mobject.t array;
  mutable fr_poff : int array;
      (** unboxed pointer register file, split pointee/offset *)
  mutable fr_args : Mval.t array;
  mutable fr_arg_scalars : Irtype.scalar array;
  fr_variadic : bool;
  fr_nparams : int;
  mutable fr_line : int;
  mutable fr_col : int;
}

and state = {
  m : Irmod.t;
  funcs : (string, pfunc) Hashtbl.t;
  globals : (string, Mobject.t) Hashtbl.t;
  heap : Mheap.t;
  out : Buffer.t;
  mutable input : string;
  mutable input_pos : int;
  mutable steps : int;
  step_limit : int;
  mutable depth : int;
  depth_limit : int;
  profile : profile;
  mutable frames : frame list;
  rng : Prng.t;
  trace : Buffer.t option;
  obs : bool;
  opstats : opstats;
  seed : int;
  tier : tierctl option;
  prof : Profile.t option;
      (** guest profiler handle; [None] (the default) keeps the hot
          paths branch-free.  Shared with compiled bodies, which capture
          it at compile time. *)
  detect_uninit : bool;
  mutable snapshot : Mobject.checkpoint option;
      (** object-registry state right after [create]; used by [reset] *)
  provenance : bool;
}

(* ------------------------------------------------------------------ *)
(* Execution helpers (shared with the tier-2 closure compiler)         *)
(* ------------------------------------------------------------------ *)

(** "in function <name>" of the innermost frame. *)
val context : state -> string

(** Evaluate a prepared operand against a frame. *)
val pv : frame -> pval -> Mval.t

(** Account one executed operation of class [cls] against the step
    budget and the frame's function counters; raises
    [Step_limit_exceeded] past the limit. *)
val charge : state -> frame -> opclass -> unit

val exec_binop :
  state -> Instr.binop -> Irtype.scalar -> Mval.t -> Mval.t -> Mval.t

val exec_icmp : Instr.icmp -> Irtype.scalar -> Mval.t -> Mval.t -> Mval.t
val exec_fcmp : Instr.fcmp -> Mval.t -> Mval.t -> Mval.t
val exec_cast :
  Instr.cast -> Irtype.scalar -> Irtype.scalar -> Mval.t -> Mval.t

val exec_load : state -> Irtype.scalar -> Mval.t -> Mval.t
val exec_store : state -> Irtype.scalar -> Mval.t -> Mval.t -> unit
val exec_gep : state -> frame -> Mval.t -> pgep -> Mval.t

(** Call a prepared function: depth check, tier-up check, frame setup,
    body execution in the function's current tier (with the deopt
    contract for compiled bodies), frame teardown. *)
val call_function :
  state -> pfunc -> Mval.t array -> Irtype.scalar array -> Mval.t option

(** Dispatch a resolved call target (user function / builtin). *)
val exec_target :
  state -> call_target -> Mval.t array -> Irtype.scalar array -> Mval.t option

(** Resolve a callee name: user function shadows builtin; unknown names
    fail only when called.  Used on indirect-call inline-cache misses. *)
val resolve_callee : state -> string -> call_target

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type run_result = {
  exit_code : int;
  output : string;
  error : (Merror.category * string) option;
  steps : int;
  run_profile : profile;
  leaks : int;  (** unfreed heap objects at exit (paper §6 extension) *)
  leak_details : string list;
      (** one line per leaked object: class, size, allocating function *)
  trace_output : string;  (** call trace, when enabled (empty otherwise) *)
  timed_out : bool;
  report : Bugreport.t option;
      (** structured provenance report for [error]: faulting C source
          location, bounds detail, and the managed call stack *)
}

(** Prepare and link [m] for execution.  Every function is compiled to
    the pre-resolved form (branch targets as block indices, phi parallel
    copies on the edges, call sites linked to user functions or host
    builtins), so no name is resolved on the execution hot path. *)
val create :
  ?step_limit:int ->
  ?depth_limit:int ->
  ?mementos:bool ->
  ?detect_uninit:bool ->
  ?trace:bool ->
  ?input:string ->
  ?seed:int ->
  ?tier:tierctl ->
  ?profile:Profile.t ->
  ?provenance:bool ->
  Irmod.t ->
  state

(** [tier] (default none) plugs in the tier controller: hot functions
    are swapped to their closure-compiled body at the next call and
    deoptimize back to the interpreter on any managed error.

    [profile] (default none) attaches a guest profiler: every call,
    return and block entry flushes the step delta into a per-function /
    per-block attribution tree (see [Profile]).  Both tiers feed the same
    handle, and the attribution is pinned to agree between them.

    [provenance] (default false) keeps source-location markers in the
    prepared code so the current line is tracked eagerly.  The default
    strips them from the dispatch loop; when a managed error fires, the
    program is re-executed once with eager tracking — and never a tier
    controller — to recover the faulting source location (deterministic
    deoptimizing replay). *)

(** Rewind a prepared state so the next [run] replays bit-identically to
    a fresh [create] of the same module — same outputs, step counts,
    error reports and observable object ids — without re-preparing and
    without discarding compiled tiers ([pf_tier] survives: this is the
    compiled-body cache).  [?input] replaces the program input; omitted,
    the previous input is kept (and rewound). *)
val reset : ?input:string -> state -> unit

(** Execute [main].  A state is good for one run; [reset] it (or create
    a fresh one) before running again. *)
val run : ?argv:string list -> state -> run_result
