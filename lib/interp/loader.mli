(** Program loading: compile a user C source against the prelude, link
    the managed libc, and (optionally) run the result. *)

(** The managed libc as a fresh IR module (front-end output, cached and
    deep-copied per call). *)
val libc_module : unit -> Irmod.t

(** The cached libc module itself, without the per-call deep copy.  The
    result must be treated as frozen: a module linked from it aliases
    its functions, so run mutating passes only on an [Irmod.copy].  Used
    by the differential oracle, whose managed configurations copy before
    any middle-end rewrite. *)
val libc_module_shared : unit -> Irmod.t

(** Compile a user program (prelude visible, libc *not* linked) — what
    the native engines execute against the precompiled libc.  [file] is
    the source-file name recorded in diagnostics and bug reports. *)
val compile_user : ?file:string -> string -> Irmod.t

(** Compile and link the complete managed program (user + libc); the
    module Safe Sulong interprets.  Verifies the result. *)
val load_program : ?file:string -> string -> Irmod.t

(** Compile, link and interpret in one call.  The optional arguments
    pass through to [Interp.create]. *)
val run_source :
  ?argv:string list ->
  ?input:string ->
  ?step_limit:int ->
  ?depth_limit:int ->
  ?mementos:bool ->
  ?detect_uninit:bool ->
  ?trace:bool ->
  ?seed:int ->
  string ->
  Interp.run_result
