(** The LLVM-IR interpreter at the core of Safe Sulong (paper §3).

    It executes both the user application and the managed libc.  Every
    load, store and free goes through [Mobject]'s automatic checks, so
    all the paper's error classes are detected without any explicit
    instrumentation of the program.  Host builtins (the functions
    "implemented in Java" in the paper) provide the system-call layer:
    character I/O, exit, the variadic-argument introspection functions
    [count_varargs]/[get_vararg], and the allocation primitives.

    Execution follows a prepare -> link -> execute architecture (see
    DESIGN.md): [prepare_func] compiles every function into a fully
    resolved form — branch targets are block indices carrying
    pre-compiled phi parallel-copies, immediates are pre-boxed [Mval.t]s,
    global references are resolved to their objects, and call sites are
    linked to their user function or host builtin once per module — so
    the hot loop performs no string hashing or comparison per executed
    branch, phi, switch or direct call.  This mirrors what Truffle's
    partial evaluation removes ahead of time in the paper's system.

    The interpreter also collects an execution profile (per-function
    dynamic operation counts) that the JIT cost model (lib/jit) consumes
    to reproduce the paper's start-up/warm-up/peak measurements.  The
    pre-resolution pass is profile-transparent: the [charge] classes and
    per-function counters are exactly those of the naive interpreter. *)

exception Exit_program of int
exception Step_limit_exceeded

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable c_ops : int;        (** integer/other IR operations executed *)
  mutable c_fp : int;         (** floating-point operations *)
  mutable c_mem : int;        (** loads + stores *)
  mutable c_calls : int;      (** calls executed *)
  mutable c_invocations : int;(** times this function was entered *)
}

let fresh_counters () =
  { c_ops = 0; c_fp = 0; c_mem = 0; c_calls = 0; c_invocations = 0 }

type profile = {
  funcs : (string, counters) Hashtbl.t;
  mutable p_allocs : int;
  mutable p_alloc_bytes : int;
  mutable p_steps : int;
}

let fresh_profile () =
  { funcs = Hashtbl.create 32; p_allocs = 0; p_alloc_bytes = 0; p_steps = 0 }

(** Cost class charged to the profile for one executed operation. *)
type opclass = Cop | Cfp | Cmem

(* ------------------------------------------------------------------ *)
(* Observability counters                                              *)
(* ------------------------------------------------------------------ *)

(* Per-opcode dispatch counts and inline-cache statistics, updated on
   the hot path only when metrics were enabled at [create] time (one
   predictable branch per op otherwise) and flushed into the global
   [Metrics] registry when the run finishes. *)
type opstats = {
  mutable os_alloca : int;
  mutable os_load : int;
  mutable os_store : int;
  mutable os_gep : int;
  mutable os_binop : int;
  mutable os_icmp : int;
  mutable os_fcmp : int;
  mutable os_cast : int;
  mutable os_select : int;
  mutable os_sancheck : int;
  mutable os_call : int;
  mutable os_term : int;
  mutable os_phi_copy : int;
  mutable os_ic_hit : int;
  mutable os_ic_miss : int;
}

let fresh_opstats () =
  {
    os_alloca = 0;
    os_load = 0;
    os_store = 0;
    os_gep = 0;
    os_binop = 0;
    os_icmp = 0;
    os_fcmp = 0;
    os_cast = 0;
    os_select = 0;
    os_sancheck = 0;
    os_call = 0;
    os_term = 0;
    os_phi_copy = 0;
    os_ic_hit = 0;
    os_ic_miss = 0;
  }

(* ------------------------------------------------------------------ *)
(* Prepared code                                                       *)
(* ------------------------------------------------------------------ *)

(* The prepared form is fully linked: every name the IR refers to has
   been resolved at prepare/link time, every immediate is a pre-boxed
   managed value, and control-flow edges carry their phi parallel-copy.
   The only work left per operand is an array read. *)

type pval =
  | Preg of int             (** read a register of the current frame *)
  | Pimm of Mval.t          (** pre-boxed constant (immediates, globals,
                                function addresses, null) *)
  | Pfail of string         (** unresolved reference; raises on use, so a
                                never-executed bad operand stays silent,
                                exactly like the unprepared interpreter *)

(** Pre-split GEP: constant field offsets and constant indices are folded
    into one static byte delta; only truly dynamic indices remain. *)
type pgep = { pg_static : int; pg_dyn : (pval * int) array }

(** Phi parallel-copy attached to a CFG edge: all sources are read before
    any destination is written (LLVM phi semantics). *)
type phicopy =
  | Pc_none
  | Pc_copy of int array * pval array  (** destination regs, sources *)
  | Pc_missing
      (** the target block has a phi with no entry for this predecessor;
          fails only if the edge is actually taken at run time *)

type pedge =
  | Edge of int * phicopy        (** target block index + phi copies *)
  | Edge_unknown of string       (** branch to a label that does not
                                     exist; fails only when taken *)

type pswitch =
  | Sw_linear of int64 array * pedge array  (** few cases: linear scan *)
  | Sw_table of (int64, pedge) Hashtbl.t    (** many cases: hashed on the
                                                int64 key, no strings *)

type pterm =
  | Pret of pval option
  | Pbr of pedge
  | Pcondbr of pval * pedge * pedge
  | Pswitch of pval * pswitch * pedge  (** (value, cases, default) *)
  | Punreachable

type pinstr =
  | Palloca of int * Irtype.mty * int  (** (reg, type, precomputed size) *)
  | Pload of int * Irtype.scalar * pval
  | Pstore of Irtype.scalar * pval * pval
  | Pgep of int * pval * pgep
  | Pbinop of int * Instr.binop * Irtype.scalar * pval * pval * opclass
  | Picmp of int * Instr.icmp * Irtype.scalar * pval * pval
  | Pfcmp of int * Instr.fcmp * pval * pval
  | Pcast of int * Instr.cast * Irtype.scalar * Irtype.scalar * pval
  | Pselect of int * pval * pval * pval
  | Psancheck
  | Pcall of int * pcallee * pval array * Irtype.scalar array
      (** (result reg or -1, callee, prepared args, arg scalars) *)
  | Ploc of int * int
      (** source-provenance marker: updates the frame's current line/col;
          free — never charged, so modeled cycles are unchanged *)

and pcallee =
  | Pdirect of call_target ref
      (** patched by [link_module] once per module *)
  | Pindirect of pval * icache

(** Where a call goes, resolved ahead of execution.  Builtins carry
    their name so the closure compiler can recognize the effect-free
    ones when deciding whether a callee is inlinable. *)
and call_target =
  | Tgt_user of pfunc
  | Tgt_builtin of string * (state -> Mval.t array -> Mval.t option)
  | Tgt_unknown of string  (** raises the unprepared interpreter's
                               "unknown builtin" error when called *)

(** One-entry inline cache for indirect calls, keyed on the callee name
    carried by the function pointer (physical equality fast path). *)
and icache = { mutable ic_name : string; mutable ic_target : call_target }

and pblock = {
  pb_label : string;
  pb_instrs : pinstr array;  (** phis excluded; they live on the edges *)
  pb_term : pterm;
  pb_index : int;            (** position in [pf_blocks] *)
  mutable pb_osr : bool;
      (** loop header: target of some back edge.  The interpreter probes
          the tier controller here, so a single long-running call (one
          hot [main] loop) can enter compiled code mid-invocation via
          on-stack replacement. *)
}

and pfunc = {
  pf_ir : Irfunc.t;
  pf_name : string;
  pf_context : string;        (** "in function <name>", built once *)
  pf_blocks : pblock array;
  pf_entry_copies : phicopy;
  pf_nregs : int;             (** register file size, >= 1 *)
  pf_nparams : int;
  pf_param_regs : int array;  (** parameter registers, in order *)
  pf_variadic : bool;
  pf_counters : counters;
  mutable pf_tier : tier;     (** current execution tier of this function *)
}

(* ------------------------------------------------------------------ *)
(* Tiered execution                                                    *)
(* ------------------------------------------------------------------ *)

(* The interpreter is tier 1.  A state may carry a tier controller
   ([tierctl], built by lib/jit): at every call it checks whether the
   callee's accumulated operation counters crossed the hotness threshold
   and, if so, swaps the function's entry to a compiled closure
   ([compiled_body], produced by the closure compiler over the prepared
   representation below).  The compiled body is observably equivalent to
   the interpreter — same outputs, same [steps] accounting (hence the
   same timeout point), same managed errors — except faster.  When a
   managed error fires inside compiled code the function *deoptimizes*:
   it is permanently dropped back to the interpreter and the error
   propagates, so the deoptimizing provenance replay (which never tiers
   up) reports the bug exactly as the marker-carrying interpreter
   would. *)

and tier =
  | Tier_interp                (** cold: threaded interpreter *)
  | Tier_compiled of compiled  (** hot: closure-compiled (tier 2) *)
  | Tier_deopt
      (** a managed error fired in compiled code; the function stays in
          the interpreter for the rest of the run *)

(** A compiled function: the normal entry plus, when the function has
    loop headers, an on-stack-replacement entry that starts execution at
    an arbitrary block index after transferring the interpreter frame
    into the compiled register files. *)
and compiled = {
  cb_entry : compiled_body;
  cb_osr : osr_body option;
  cb_frame : (Mval.t array -> Irtype.scalar array -> frame) option;
      (** allocate-or-recycle a frame with the compiled register-file
          layout installed and parameters copied; [None] falls back to
          the generic frame construction in [call_function] (and then
          [cb_entry] must install its own register files) *)
  cb_release : (frame -> unit) option;
      (** return a [cb_frame]-obtained frame to the free list after a
          normal return.  Never called on the error path: the erroring
          frame stays reachable from [frames] for reporting. *)
}

(** A compiled function body: runs the function from its entry block in
    an already-set-up frame (registers allocated, parameters copied). *)
and compiled_body = state -> frame -> Mval.t option

(** OSR entry: [osr st fr idx] resumes mid-invocation at block [idx],
    whose phi copies the interpreter has already executed. *)
and osr_body = state -> frame -> int -> Mval.t option

(** Tier controller: policy ([tc_hot], shared with the warm-up
    simulation via [Jit.Hotness]) + mechanism ([tc_compile], the closure
    compiler).  Kept abstract here so lib/interp does not depend on
    lib/jit. *)
and tierctl = {
  tc_hot : counters -> bool;
  tc_compile : state -> pfunc -> compiled;
}

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

and frame = {
  fr_func : pfunc;
  mutable fr_regs : Mval.t array;
      (** boxed register file.  Mutable because a compiled body that
          inlined callees re-installs an enlarged file covering the
          callees' register ranges. *)
  mutable fr_iregs : int array;
      (** unboxed small-integer register file, used only by compiled
          bodies (the closure compiler proves which registers always
          hold <=32-bit integers and keeps them out of [fr_regs]);
          [[||]] in interpreted frames *)
  mutable fr_fregs : float array;
      (** unboxed F32/F64 register file (compiled bodies only) *)
  mutable fr_pobj : Mobject.t array;
  mutable fr_poff : int array;
      (** unboxed pointer register file, split pointee/offset; holds only
          object pointers for registers the compiler proved
          write-before-read ([Mobject.dummy] elsewhere) *)
  mutable fr_args : Mval.t array;  (** all incoming arguments *)
  mutable fr_arg_scalars : Irtype.scalar array;
  fr_variadic : bool;
  fr_nparams : int;
  mutable fr_line : int;  (** C line of the last [Ploc] executed (0: none) *)
  mutable fr_col : int;
}

and state = {
  m : Irmod.t;
  funcs : (string, pfunc) Hashtbl.t;
  globals : (string, Mobject.t) Hashtbl.t;
  heap : Mheap.t;
  out : Buffer.t;
  mutable input : string;
  mutable input_pos : int;
  mutable steps : int;
  step_limit : int;
  mutable depth : int;
  depth_limit : int;
  profile : profile;
  mutable frames : frame list;  (** innermost first *)
  rng : Prng.t;                 (** backs the libc rand() builtin *)
  trace : Buffer.t option;      (** call tracing, when enabled *)
  obs : bool;                   (** metrics enabled at create time *)
  opstats : opstats;
  seed : int;                   (** rng seed, kept for deterministic rerun *)
  tier : tierctl option;        (** tier controller; [None]: interp only *)
  prof : Profile.t option;
      (** guest profiler handle; [None] (the default) keeps the hot
          paths at one predictable branch per block/call.  Shared with
          compiled bodies: the closure compiler captures it at compile
          time, so both tiers attribute into the same books. *)
  detect_uninit : bool;         (** uninitialized-read detection, kept so
                                    [reset] can restore the global flag *)
  mutable snapshot : Mobject.checkpoint option;
      (** object-registry state right after [create]; reinstalled by
          [reset] so re-runs replay the same observable object ids *)
  provenance : bool;
      (** true: [Ploc] markers stay in the prepared body and track the
          current source line eagerly (slower dispatch loop).  false
          (default): markers are stripped at prepare time and a fault
          triggers one deterministic re-execution with [provenance=true]
          to recover the source location — the fast path pays nothing. *)
}

let context st =
  match st.frames with
  | fr :: _ -> fr.fr_func.pf_context
  | [] -> "at top level"

(* ------------------------------------------------------------------ *)
(* Global materialization                                              *)
(* ------------------------------------------------------------------ *)

let rec fill_init st (obj : Mobject.t) (mty : Irtype.mty) (off : int)
    (init : Irmod.ginit) =
  let addr moff = { Mobject.obj; moff } in
  match (init, mty) with
  | Irmod.Gzero, _ -> ()
  | Irmod.Gint v, Irtype.MScalar s ->
    if Irtype.is_float_scalar s then
      Mobject.store_float (addr off) ~size:(Irtype.scalar_size s)
        (Int64.to_float v) "global init"
    else
      Mobject.store_int (addr off) ~size:(Irtype.scalar_size s) v "global init"
  | Irmod.Gfloat f, Irtype.MScalar s ->
    Mobject.store_float (addr off) ~size:(Irtype.scalar_size s) f "global init"
  | Irmod.Gstring s, _ -> Mobject.write_bytes (addr off) s "global init"
  | Irmod.Garray items, Irtype.MArray (elem, _) ->
    let esize = Irtype.mty_size elem in
    List.iteri (fun i item -> fill_init st obj elem (off + (i * esize)) item) items
  | Irmod.Gstruct_init items, Irtype.MStruct s ->
    List.iteri
      (fun i item ->
        if i < List.length s.Irtype.s_fields then begin
          let field = List.nth s.Irtype.s_fields i in
          fill_init st obj field.Irtype.mf_ty
            (off + field.Irtype.mf_off) item
        end)
      items
  | Irmod.Gglobal_addr name, _ -> begin
    match Hashtbl.find_opt st.globals name with
    | Some target ->
      Mobject.store_ptr (addr off)
        (Mobject.Pobj { Mobject.obj = target; moff = 0 })
        "global init"
    | None -> failwith ("interp: global init references unknown @" ^ name)
  end
  | Irmod.Gfunc_addr name, _ ->
    Mobject.store_ptr (addr off) (Mobject.Pfunc name) "global init"
  | Irmod.Gint v, _ ->
    (* e.g. (FILE * )1 stored in a pointer-typed global *)
    Mobject.store_int (addr off) ~size:8 v "global init"
  | (Irmod.Gfloat _ | Irmod.Garray _ | Irmod.Gstruct_init _), _ ->
    failwith "interp: malformed global initializer"

let materialize_globals st =
  List.iter
    (fun (g : Irmod.global) ->
      let size = Irtype.mty_size g.Irmod.g_ty in
      let obj =
        Mobject.alloc ~storage:Merror.Global ~mty:g.Irmod.g_ty size
      in
      Hashtbl.replace st.globals g.Irmod.g_name obj)
    st.m.Irmod.globals;
  List.iter
    (fun (g : Irmod.global) ->
      let obj = Hashtbl.find st.globals g.Irmod.g_name in
      fill_init st obj g.Irmod.g_ty 0 g.Irmod.g_init)
    st.m.Irmod.globals

(* ------------------------------------------------------------------ *)
(* Value evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let[@inline] pv (fr : frame) (v : pval) : Mval.t =
  match v with
  | Preg r -> fr.fr_regs.(r)
  | Pimm v -> v
  | Pfail msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let exec_binop st (op : Instr.binop) (s : Irtype.scalar) (a : Mval.t)
    (b : Mval.t) : Mval.t =
  match op with
  | Instr.FAdd ->
    Mval.Vfloat (Irtype.round_result s (Mval.as_float a +. Mval.as_float b))
  | Instr.FSub ->
    Mval.Vfloat (Irtype.round_result s (Mval.as_float a -. Mval.as_float b))
  | Instr.FMul ->
    Mval.Vfloat (Irtype.round_result s (Mval.as_float a *. Mval.as_float b))
  | Instr.FDiv ->
    Mval.Vfloat (Irtype.round_result s (Mval.as_float a /. Mval.as_float b))
  | _ ->
    (* No local closures here: this runs once per arithmetic op. *)
    let x = Mval.as_int a and y = Mval.as_int b in
    let result =
      match op with
      | Instr.Add -> Int64.add x y
      | Instr.Sub -> Int64.sub x y
      | Instr.Mul -> Int64.mul x y
      | Instr.Sdiv ->
        if y = 0L then Merror.raise_error Merror.Division_by_zero (context st);
        Int64.div x y
      | Instr.Udiv ->
        if y = 0L then Merror.raise_error Merror.Division_by_zero (context st);
        Int64.unsigned_div (Irtype.unsigned_of s x) (Irtype.unsigned_of s y)
      | Instr.Srem ->
        if y = 0L then Merror.raise_error Merror.Division_by_zero (context st);
        Int64.rem x y
      | Instr.Urem ->
        if y = 0L then Merror.raise_error Merror.Division_by_zero (context st);
        Int64.unsigned_rem (Irtype.unsigned_of s x) (Irtype.unsigned_of s y)
      | Instr.Shl -> Int64.shift_left x (Int64.to_int y land 63)
      | Instr.Lshr ->
        Int64.shift_right_logical (Irtype.unsigned_of s x)
          (Int64.to_int y land 63)
      | Instr.Ashr -> Int64.shift_right x (Int64.to_int y land 63)
      | Instr.And -> Int64.logand x y
      | Instr.Or -> Int64.logor x y
      | Instr.Xor -> Int64.logxor x y
      | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv -> assert false
    in
    Mval.Vint (Irtype.normalize_int s result)

let exec_icmp (op : Instr.icmp) (s : Irtype.scalar) (a : Mval.t) (b : Mval.t) :
    Mval.t =
  let x = Mval.as_int a and y = Mval.as_int b in
  let r =
    match op with
    | Instr.Ieq -> x = y
    | Instr.Ine -> x <> y
    | Instr.Islt -> x < y
    | Instr.Isle -> x <= y
    | Instr.Isgt -> x > y
    | Instr.Isge -> x >= y
    | Instr.Iult ->
      Int64.unsigned_compare (Irtype.unsigned_of s x) (Irtype.unsigned_of s y) < 0
    | Instr.Iule ->
      Int64.unsigned_compare (Irtype.unsigned_of s x) (Irtype.unsigned_of s y) <= 0
    | Instr.Iugt ->
      Int64.unsigned_compare (Irtype.unsigned_of s x) (Irtype.unsigned_of s y) > 0
    | Instr.Iuge ->
      Int64.unsigned_compare (Irtype.unsigned_of s x) (Irtype.unsigned_of s y) >= 0
  in
  Mval.Vint (if r then 1L else 0L)

let exec_fcmp (op : Instr.fcmp) (a : Mval.t) (b : Mval.t) : Mval.t =
  let x = Mval.as_float a and y = Mval.as_float b in
  let r =
    match op with
    | Instr.Feq -> x = y
    | Instr.Fne -> x <> y
    | Instr.Flt -> x < y
    | Instr.Fle -> x <= y
    | Instr.Fgt -> x > y
    | Instr.Fge -> x >= y
  in
  Mval.Vint (if r then 1L else 0L)

let exec_cast (op : Instr.cast) (from : Irtype.scalar) (into : Irtype.scalar)
    (v : Mval.t) : Mval.t =
  match op with
  | Instr.Trunc -> Mval.Vint (Irtype.normalize_int into (Mval.as_int v))
  | Instr.Zext ->
    Mval.Vint (Irtype.normalize_int into (Irtype.unsigned_of from (Mval.as_int v)))
  | Instr.Sext -> Mval.Vint (Irtype.normalize_int into (Mval.as_int v))
  | Instr.Fptrunc -> Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float v))
  | Instr.Fpext -> Mval.Vfloat (Mval.as_float v)
  | Instr.Fptosi | Instr.Fptoui ->
    let f = Mval.as_float v in
    Mval.Vint (Irtype.normalize_int into (Irtype.float_to_int f))
  | Instr.Sitofp ->
    Mval.Vfloat (Irtype.round_result into (Int64.to_float (Mval.as_int v)))
  | Instr.Uitofp ->
    let u = Irtype.unsigned_of from (Mval.as_int v) in
    let f =
      if u >= 0L then Int64.to_float u
      else Int64.to_float u +. 18446744073709551616.0
    in
    Mval.Vfloat (Irtype.round_result into f)
  | Instr.Ptrtoint -> begin
    match v with
    | Mval.Vptr (Mobject.Pobj a) ->
      Mobject.register a.Mobject.obj;
      Mval.Vint (Irtype.normalize_int into (Mobject.ptr_to_int (Mobject.Pobj a)))
    | Mval.Vptr (Mobject.Pfunc name) ->
      Mval.Vint (Mobject.register_func_cookie name)
    | v -> Mval.Vint (Irtype.normalize_int into (Mval.as_int v))
  end
  | Instr.Inttoptr -> Mval.Vptr (Mobject.int_to_ptr (Mval.as_int v))
  | Instr.Bitcast -> begin
    match (Irtype.is_float_scalar from, Irtype.is_float_scalar into) with
    | true, false ->
      let f = Mval.as_float v in
      let bits =
        if into = Irtype.I32 then Int64.of_int32 (Int32.bits_of_float f)
        else Int64.bits_of_float f
      in
      Mval.Vint (Irtype.normalize_int into bits)
    | false, true ->
      let bits = Mval.as_int v in
      if into = Irtype.F32 then
        Mval.Vfloat (Int32.float_of_bits (Int64.to_int32 bits))
      else Mval.Vfloat (Int64.float_of_bits bits)
    | _ -> v
  end

(* ------------------------------------------------------------------ *)
(* Memory access                                                       *)
(* ------------------------------------------------------------------ *)

let deref st (p : Mobject.ptr) : Mobject.addr =
  match p with
  | Mobject.Pobj a -> a
  | Mobject.Pnull -> Merror.raise_error Merror.Null_deref (context st)
  | Mobject.Pfunc name ->
    Merror.raise_error
      (Merror.Type_violation ("dereference of function pointer &" ^ name))
      (context st)
  | Mobject.Pinvalid c ->
    Merror.raise_error
      (Merror.Type_violation
         (Printf.sprintf "dereference of forged pointer 0x%Lx" c))
      (context st)

let exec_load st (s : Irtype.scalar) (p : Mval.t) : Mval.t =
  let a = deref st (Mval.as_ptr (context st) p) in
  (* Allocation memento: first typed access of an untyped heap object.
     (Matches, not [=]/[<>]: no polymorphic compare per memory op.) *)
  (match (a.Mobject.obj.Mobject.storage, s) with
  | Merror.Heap, Irtype.I8 -> ()
  | Merror.Heap, _ -> Mheap.observe st.heap a.Mobject.obj s
  | _ -> ());
  match s with
  | Irtype.Ptr -> Mval.Vptr (Mobject.load_ptr a (context st))
  | Irtype.F32 | Irtype.F64 ->
    Mval.Vfloat (Mobject.load_float a ~size:(Irtype.scalar_size s) (context st))
  | _ ->
    let raw = Mobject.load_int a ~size:(Irtype.scalar_size s) (context st) in
    Mval.Vint (Irtype.normalize_int s raw)

let exec_store st (s : Irtype.scalar) (v : Mval.t) (p : Mval.t) : unit =
  let a = deref st (Mval.as_ptr (context st) p) in
  (match (a.Mobject.obj.Mobject.storage, s) with
  | Merror.Heap, Irtype.I8 -> ()
  | Merror.Heap, _ -> Mheap.observe st.heap a.Mobject.obj s
  | _ -> ());
  match s with
  | Irtype.Ptr -> Mobject.store_ptr a (Mval.as_ptr (context st) v) (context st)
  | Irtype.F32 | Irtype.F64 ->
    Mobject.store_float a ~size:(Irtype.scalar_size s) (Mval.as_float v)
      (context st)
  | _ ->
    Mobject.store_int a ~size:(Irtype.scalar_size s) (Mval.as_int v)
      (context st)

let exec_gep st (fr : frame) (base : Mval.t) (g : pgep) : Mval.t =
  (* After constant folding most GEPs have zero or one dynamic index;
     keep those paths free of closures and refs. *)
  let delta =
    match g.pg_dyn with
    | [||] -> g.pg_static
    | [| (v, stride) |] ->
      g.pg_static + (Int64.to_int (Mval.as_int (pv fr v)) * stride)
    | dyn ->
      let d = ref g.pg_static in
      for i = 0 to Array.length dyn - 1 do
        let v, stride = dyn.(i) in
        d := !d + (Int64.to_int (Mval.as_int (pv fr v)) * stride)
      done;
      !d
  in
  match Mval.as_ptr (context st) base with
  | Mobject.Pnull -> Mval.Vptr Mobject.Pnull (* checked at the access *)
  | Mobject.Pobj a -> Mval.Vptr (Mobject.Pobj { a with Mobject.moff = a.Mobject.moff + delta })
  | Mobject.Pfunc _ as p ->
    Mval.Vptr (Mobject.Pinvalid (Int64.add (Mobject.ptr_to_int p) (Int64.of_int delta)))
  | Mobject.Pinvalid c -> Mval.Vptr (Mobject.Pinvalid (Int64.add c (Int64.of_int delta)))

(* ------------------------------------------------------------------ *)
(* Builtins: the host ("Java") side of the runtime                     *)
(* ------------------------------------------------------------------ *)

let arg_int args i = Mval.as_int args.(i)
let arg_float args i = Mval.as_float args.(i)

let nearest_variadic_frame st : frame option =
  List.find_opt (fun fr -> fr.fr_variadic) st.frames

let builtin_malloc st size =
  st.profile.p_allocs <- st.profile.p_allocs + 1;
  st.profile.p_alloc_bytes <- st.profile.p_alloc_bytes + size;
  if st.obs then
    Metrics.observe_int (Metrics.histogram "heap.alloc_size_bytes") size;
  (* Allocation site: the current function gives memento locality. *)
  let site, site_name =
    match st.frames with
    | fr :: _ ->
      let name = fr.fr_func.pf_name in
      (Hashtbl.hash name, name)
    | [] -> (-1, "?")
  in
  Mheap.name_site st.heap ~site site_name;
  Mheap.malloc st.heap ~site size

let read_input_char st =
  if st.input_pos < String.length st.input then begin
    let c = st.input.[st.input_pos] in
    st.input_pos <- st.input_pos + 1;
    Char.code c
  end
  else -1

(** Resolve a builtin name to its implementation.  Called at link time
    (once per call site) and on indirect-call cache misses — never on the
    per-call hot path. *)
let lookup_builtin (name : string) :
    (state -> Mval.t array -> Mval.t option) option =
  match name with
  | "__sulong_putchar" ->
    Some
      (fun st args ->
        Buffer.add_char st.out
          (Char.chr (Int64.to_int (arg_int args 0) land 0xff));
        Some (Mval.Vint (arg_int args 0)))
  | "__sulong_exit" ->
    Some (fun _st args -> raise (Exit_program (Int64.to_int (arg_int args 0))))
  | "__sulong_abort" -> Some (fun _st _args -> raise (Exit_program 134))
  | "count_varargs" ->
    Some
      (fun st _args ->
        match nearest_variadic_frame st with
        | Some fr ->
          Some
            (Mval.Vint (Int64.of_int (Array.length fr.fr_args - fr.fr_nparams)))
        | None ->
          Merror.raise_error
            (Merror.Varargs_error "count_varargs outside a variadic function")
            (context st))
  | "get_vararg" ->
    Some
      (fun st args ->
        let ctx = context st in
        match nearest_variadic_frame st with
        | Some fr ->
          let i = Int64.to_int (arg_int args 0) in
          let nvar = Array.length fr.fr_args - fr.fr_nparams in
          if i < 0 || i >= nvar then
            Merror.raise_error
              (Merror.Varargs_error
                 (Printf.sprintf "access to variadic argument %d of %d" i nvar))
              ctx
          else begin
            (* Expose a pointer to a cell holding the argument; the cell
               has exactly the argument's size, so over-wide reads (%ld on
               an int) are out-of-bounds (paper §3.4). *)
            let v = fr.fr_args.(fr.fr_nparams + i) in
            let s = fr.fr_arg_scalars.(fr.fr_nparams + i) in
            let size = Irtype.scalar_size s in
            let cell =
              Mobject.alloc ~storage:Merror.Vararg ~mty:(Irtype.MScalar s) size
            in
            let a = { Mobject.obj = cell; moff = 0 } in
            (match (s, v) with
            | Irtype.Ptr, _ -> Mobject.store_ptr a (Mval.as_ptr ctx v) ctx
            | (Irtype.F32 | Irtype.F64), _ ->
              Mobject.store_float a ~size (Mval.as_float v) ctx
            | _, _ -> Mobject.store_int a ~size (Mval.as_int v) ctx);
            Some (Mval.Vptr (Mobject.Pobj a))
          end
        | None ->
          Merror.raise_error
            (Merror.Varargs_error "get_vararg outside a variadic function")
            (context st))
  | "__sulong_format_pointer" ->
    Some (fun _st args -> Some (Mval.Vint (Mval.as_int args.(0))))
  | "__sulong_read_char" ->
    Some (fun st _args -> Some (Mval.Vint (Int64.of_int (read_input_char st))))
  | "__sulong_unread_char" ->
    Some
      (fun st args ->
        if st.input_pos > 0 && Int64.to_int (arg_int args 0) >= 0 then
          st.input_pos <- st.input_pos - 1;
        Some (Mval.Vint 0L))
  | "malloc" ->
    Some
      (fun st args ->
        let size = Int64.to_int (arg_int args 0) in
        let obj = builtin_malloc st size in
        Some (Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 })))
  | "calloc" ->
    Some
      (fun st args ->
        let n = Int64.to_int (arg_int args 0) in
        let esize = Int64.to_int (arg_int args 1) in
        let obj = builtin_malloc st (n * esize) in
        (* calloc'd memory is zeroed, hence initialized *)
        Mobject.mark_initialized obj ~off:0 ~size:(n * esize);
        Some (Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 })))
  | "realloc" ->
    Some
      (fun st args ->
        let ctx = context st in
        let p = Mval.as_ptr ctx args.(0) in
        let size = Int64.to_int (arg_int args 1) in
        match p with
        | Mobject.Pnull ->
          let obj = builtin_malloc st size in
          Some (Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 }))
        | Mobject.Pobj a ->
          let old = a.Mobject.obj in
          let fresh = builtin_malloc st size in
          (* copy the overlapping prefix, bytes and pointer slots alike *)
          (match old.Mobject.data with
          | Some src ->
            let n = min size old.Mobject.byte_size in
            (match fresh.Mobject.data with
            | Some dst -> Bytes.blit src 0 dst 0 n
            | None -> ());
            (match (old.Mobject.init_map, fresh.Mobject.init_map) with
            | Some om, Some fm -> Bytes.blit om 0 fm 0 n
            | _, Some _ -> Mobject.mark_initialized fresh ~off:0 ~size:n
            | _ -> ());
            (match old.Mobject.ptr_slots with
            | None -> ()
            | Some old_slots ->
              let fresh_slots =
                match fresh.Mobject.ptr_slots with
                | Some s -> s
                | None ->
                  let s = Hashtbl.create (Hashtbl.length old_slots) in
                  fresh.Mobject.ptr_slots <- Some s;
                  s
              in
              Hashtbl.iter
                (fun off p ->
                  if off + 8 <= n then Hashtbl.replace fresh_slots off p)
                old_slots)
          | None -> Merror.raise_error Merror.Use_after_free ctx);
          Mheap.free st.heap p ctx;
          Some (Mval.Vptr (Mobject.Pobj { Mobject.obj = fresh; moff = 0 }))
        | Mobject.Pfunc _ | Mobject.Pinvalid _ ->
          Merror.raise_error
            (Merror.Invalid_free "bad pointer passed to realloc") ctx)
  | "free" ->
    Some
      (fun st args ->
        let ctx = context st in
        Mheap.free st.heap (Mval.as_ptr ctx args.(0)) ctx;
        None)
  | "__sulong_sqrt" ->
    Some (fun _st args -> Some (Mval.Vfloat (sqrt (arg_float args 0))))
  | "__sulong_sin" ->
    Some (fun _st args -> Some (Mval.Vfloat (sin (arg_float args 0))))
  | "__sulong_cos" ->
    Some (fun _st args -> Some (Mval.Vfloat (cos (arg_float args 0))))
  | "__sulong_atan" ->
    Some (fun _st args -> Some (Mval.Vfloat (atan (arg_float args 0))))
  | "__sulong_exp" ->
    Some (fun _st args -> Some (Mval.Vfloat (exp (arg_float args 0))))
  | "__sulong_log" ->
    Some (fun _st args -> Some (Mval.Vfloat (log (arg_float args 0))))
  | "__sulong_pow" ->
    Some
      (fun _st args ->
        Some (Mval.Vfloat (Float.pow (arg_float args 0) (arg_float args 1))))
  | "__sulong_rand" ->
    Some
      (fun st _args -> Some (Mval.Vint (Int64.of_int (Prng.int st.rng 0x7FFFFFFF))))
  | "__sulong_format_double" ->
    (* (v, conv, prec, out, cap) -> length: renders v like C's
       printf("%.*<conv>", prec, v) into the caller-provided buffer.
       The decimal conversion itself happens host-side in [Floatfmt] so
       the managed libc, the native model and the difftest oracle share
       one float renderer (DESIGN.md §10). *)
    Some
      (fun st args ->
        let ctx = context st in
        let v = arg_float args 0 in
        let conv = Char.chr (Int64.to_int (arg_int args 1) land 0xff) in
        let prec = Int64.to_int (arg_int args 2) in
        let cap = Int64.to_int (arg_int args 4) in
        let s = Floatfmt.format conv prec v in
        let s =
          if String.length s > max 0 (cap - 1) then
            String.sub s 0 (max 0 (cap - 1))
          else s
        in
        (match Mval.as_ptr ctx args.(3) with
        | Mobject.Pobj a ->
          Mobject.write_bytes a s ctx;
          Mobject.store_int
            { a with Mobject.moff = a.Mobject.moff + String.length s }
            ~size:1 0L ctx
        | Mobject.Pnull -> Merror.raise_error Merror.Null_deref ctx
        | Mobject.Pfunc _ | Mobject.Pinvalid _ ->
          Merror.raise_error
            (Merror.Type_violation "bad buffer passed to format_double") ctx);
        Some (Mval.Vint (Int64.of_int (String.length s))))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Preparation: compile one function into the linked form              *)
(* ------------------------------------------------------------------ *)

(** Switch terminators with at least this many cases use a hashtable
    keyed on the int64 case value instead of a linear scan. *)
let switch_table_threshold = 8

let prepare_value st (v : Instr.value) : pval =
  match v with
  | Instr.Reg r -> Preg r
  | Instr.ImmInt (v, s) -> Pimm (Mval.Vint (Irtype.normalize_int s v))
  | Instr.ImmFloat (f, _) -> Pimm (Mval.Vfloat f)
  | Instr.Null -> Pimm Mval.vnull
  | Instr.GlobalAddr name -> begin
    match Hashtbl.find_opt st.globals name with
    | Some obj -> Pimm (Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 }))
    | None -> Pfail ("interp: unknown global @" ^ name)
  end
  | Instr.FuncAddr name -> Pimm (Mval.Vptr (Mobject.Pfunc name))

let prepare_instr st (i : Instr.instr) : pinstr =
  match i with
  | Instr.Alloca (r, mty) -> Palloca (r, mty, Irtype.mty_size mty)
  | Instr.Load (r, s, p) -> Pload (r, s, prepare_value st p)
  | Instr.Store (s, v, p) -> Pstore (s, prepare_value st v, prepare_value st p)
  | Instr.Gep (r, base, idx) ->
    let static = ref 0 and dyn = ref [] in
    List.iter
      (fun gi ->
        match gi with
        | Instr.Gfield (_, off) -> static := !static + off
        | Instr.Gindex (v, stride) -> begin
          match prepare_value st v with
          | Pimm (Mval.Vint k) -> static := !static + (Int64.to_int k * stride)
          | p -> dyn := (p, stride) :: !dyn
        end)
      idx;
    Pgep
      ( r,
        prepare_value st base,
        { pg_static = !static; pg_dyn = Array.of_list (List.rev !dyn) } )
  | Instr.Binop (r, op, s, a, b) ->
    let cls =
      match op with
      | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv -> Cfp
      | _ -> Cop
    in
    Pbinop (r, op, s, prepare_value st a, prepare_value st b, cls)
  | Instr.Icmp (r, op, s, a, b) ->
    Picmp (r, op, s, prepare_value st a, prepare_value st b)
  | Instr.Fcmp (r, op, _, a, b) ->
    Pfcmp (r, op, prepare_value st a, prepare_value st b)
  | Instr.Cast (r, op, from, into, v) ->
    Pcast (r, op, from, into, prepare_value st v)
  | Instr.Select (r, _, c, a, b) ->
    Pselect (r, prepare_value st c, prepare_value st a, prepare_value st b)
  | Instr.Call (r, _, callee, cargs) ->
    let pargs =
      Array.of_list (List.map (fun (_, v) -> prepare_value st v) cargs)
    in
    let scalars = Array.of_list (List.map fst cargs) in
    let pc =
      match callee with
      | Instr.Direct name -> Pdirect (ref (Tgt_unknown name))
      | Instr.Indirect v ->
        Pindirect
          (prepare_value st v, { ic_name = ""; ic_target = Tgt_unknown "" })
    in
    Pcall ((match r with Some r -> r | None -> -1), pc, pargs, scalars)
  | Instr.Sancheck _ -> Psancheck
  | Instr.Srcloc (line, col) -> Ploc (line, col)
  | Instr.Phi _ ->
    (* phis are compiled into the incoming edges, never into the body *)
    assert false

let prepare_func (st : state) (f : Irfunc.t) : pfunc =
  let blocks = Array.of_list f.Irfunc.blocks in
  let nblocks = Array.length blocks in
  let index = Hashtbl.create (max nblocks 1) in
  Array.iteri
    (fun i (b : Irfunc.block) -> Hashtbl.replace index b.Irfunc.label i)
    blocks;
  (* Per-block phi lists, in program order; they execute as one parallel
     copy on the incoming edge. *)
  let phis =
    Array.map
      (fun (b : Irfunc.block) ->
        List.filter_map
          (function Instr.Phi (r, _, inc) -> Some (r, inc) | _ -> None)
          b.Irfunc.instrs)
      blocks
  in
  let resolve_edge from_label target =
    match Hashtbl.find_opt index target with
    | None -> Edge_unknown target
    | Some j ->
      let copies =
        match phis.(j) with
        | [] -> Pc_none
        | ps ->
          if
            List.for_all (fun (_, inc) -> List.mem_assoc from_label inc) ps
          then
            Pc_copy
              ( Array.of_list (List.map fst ps),
                Array.of_list
                  (List.map
                     (fun (_, inc) ->
                       prepare_value st (List.assoc from_label inc))
                     ps) )
          else Pc_missing
      in
      Edge (j, copies)
  in
  let prep_block bidx (b : Irfunc.block) : pblock =
    let from_label = b.Irfunc.label in
    let body =
      List.filter
        (function
          | Instr.Phi _ -> false
          (* provenance markers cost a dispatch-loop iteration each, so
             the fast path drops them; a fault re-executes with
             [provenance=true] to recover source locations *)
          | Instr.Srcloc _ -> st.provenance
          | _ -> true)
        b.Irfunc.instrs
    in
    let term =
      match b.Irfunc.term with
      | Instr.Ret (Some (_, v)) -> Pret (Some (prepare_value st v))
      | Instr.Ret None -> Pret None
      | Instr.Br l -> Pbr (resolve_edge from_label l)
      | Instr.Condbr (c, a, bl) ->
        Pcondbr
          (prepare_value st c, resolve_edge from_label a,
           resolve_edge from_label bl)
      | Instr.Switch (v, cases, default) ->
        let impl =
          if List.length cases >= switch_table_threshold then begin
            let tbl = Hashtbl.create (2 * List.length cases) in
            List.iter
              (fun (k, l) ->
                (* first case wins on duplicate keys, like the scan *)
                if not (Hashtbl.mem tbl k) then
                  Hashtbl.replace tbl k (resolve_edge from_label l))
              cases;
            Sw_table tbl
          end
          else
            Sw_linear
              ( Array.of_list (List.map fst cases),
                Array.of_list
                  (List.map (fun (_, l) -> resolve_edge from_label l) cases) )
        in
        Pswitch (prepare_value st v, impl, resolve_edge from_label default)
      | Instr.Unreachable -> Punreachable
    in
    {
      pb_label = from_label;
      pb_instrs = Array.of_list (List.map (prepare_instr st) body);
      pb_term = term;
      pb_index = bidx;
      pb_osr = false;
    }
  in
  let counters = fresh_counters () in
  Hashtbl.replace st.profile.funcs f.Irfunc.name counters;
  let pblocks = Array.mapi prep_block blocks in
  (* Mark loop headers: any edge i -> j with j <= i makes j an OSR
     candidate (covers self-loops and the structured loops the C
     front end emits). *)
  Array.iteri
    (fun i blk ->
      let mark = function
        | Edge (j, _) when j <= i -> pblocks.(j).pb_osr <- true
        | Edge _ | Edge_unknown _ -> ()
      in
      match blk.pb_term with
      | Pbr e -> mark e
      | Pcondbr (_, a, b) ->
        mark a;
        mark b
      | Pswitch (_, impl, default) ->
        (match impl with
        | Sw_linear (_, edges) -> Array.iter mark edges
        | Sw_table tbl -> Hashtbl.iter (fun _ e -> mark e) tbl);
        mark default
      | Pret _ | Punreachable -> ())
    pblocks;
  {
    pf_ir = f;
    pf_name = f.Irfunc.name;
    pf_context = "in function " ^ f.Irfunc.name;
    pf_blocks = pblocks;
    pf_entry_copies =
      (if nblocks > 0 && phis.(0) <> [] then Pc_missing else Pc_none);
    pf_nregs = max f.Irfunc.next_reg 1;
    pf_nparams = List.length f.Irfunc.params;
    pf_param_regs = Array.of_list (List.map fst f.Irfunc.params);
    pf_variadic = f.Irfunc.variadic;
    pf_counters = counters;
    pf_tier = Tier_interp;
  }

(** Resolve a callee name to its target: a user function shadows a
    builtin of the same name; unknown names fail only when called. *)
let resolve_callee st (name : string) : call_target =
  match Hashtbl.find_opt st.funcs name with
  | Some pf -> Tgt_user pf
  | None -> begin
    match lookup_builtin name with
    | Some fn -> Tgt_builtin (name, fn)
    | None -> Tgt_unknown name
  end

(** Link pass: patch every direct call site once all functions of the
    module have been prepared. *)
let link_module st =
  Hashtbl.iter
    (fun _ pf ->
      Array.iter
        (fun blk ->
          Array.iter
            (function
              | Pcall (_, Pdirect tgt, _, _) -> begin
                match !tgt with
                | Tgt_unknown name -> tgt := resolve_callee st name
                | Tgt_user _ | Tgt_builtin _ -> ()
              end
              | _ -> ())
            blk.pb_instrs)
        pf.pf_blocks)
    st.funcs

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* [profile.p_steps] is NOT bumped here: it always equals [st.steps]
   and is synced once when [run] builds its result. *)
let charge st (fr : frame) (cls : opclass) =
  st.steps <- st.steps + 1;
  (match cls with
  | Cmem -> fr.fr_func.pf_counters.c_mem <- fr.fr_func.pf_counters.c_mem + 1
  | Cfp -> fr.fr_func.pf_counters.c_fp <- fr.fr_func.pf_counters.c_fp + 1
  | Cop -> fr.fr_func.pf_counters.c_ops <- fr.fr_func.pf_counters.c_ops + 1);
  if st.steps > st.step_limit then raise Step_limit_exceeded

let rec call_function st (pf : pfunc) (args : Mval.t array)
    (arg_scalars : Irtype.scalar array) : Mval.t option =
  st.depth <- st.depth + 1;
  if st.depth > st.depth_limit then
    Merror.raise_error Merror.Stack_overflow_guard (context st);
  (match st.trace with
  | Some buf ->
    Buffer.add_string buf
      (Printf.sprintf "%s-> %s(%s)\n"
         (String.make (min st.depth 40) ' ')
         pf.pf_name
         (String.concat ", "
            (List.map Mval.to_string (Array.to_list args))))
  | None -> ());
  pf.pf_counters.c_invocations <- pf.pf_counters.c_invocations + 1;
  (* Tier-up check: a hot function swaps its entry to the compiled
     closure at the next call (never mid-invocation). *)
  (match st.tier with
  | Some ctl -> begin
    match pf.pf_tier with
    | Tier_interp when ctl.tc_hot pf.pf_counters ->
      Events.record
        (Events.Tier_up
           {
             ev_fn = pf.pf_name;
             ev_ops =
               pf.pf_counters.c_ops + pf.pf_counters.c_fp
               + pf.pf_counters.c_mem;
             ev_invocations = pf.pf_counters.c_invocations;
             ev_osr = false;
           });
      pf.pf_tier <- Tier_compiled (ctl.tc_compile st pf)
    | Tier_interp | Tier_compiled _ | Tier_deopt -> ()
  end
  | None -> ());
  let fr =
    match pf.pf_tier with
    | Tier_compiled { cb_frame = Some acquire; _ } ->
      (* pooled frame, register files installed and parameters copied *)
      acquire args arg_scalars
    | Tier_compiled { cb_frame = None; _ } | Tier_interp | Tier_deopt ->
      let regs = Array.make pf.pf_nregs Mval.zero in
      let fr =
        {
          fr_func = pf;
          fr_regs = regs;
          fr_iregs = [||];
          fr_fregs = [||];
          fr_pobj = [||];
          fr_poff = [||];
          fr_args = args;
          fr_arg_scalars = arg_scalars;
          fr_variadic = pf.pf_variadic;
          fr_nparams = pf.pf_nparams;
          fr_line = 0;
          fr_col = 0;
        }
      in
      let bound = min pf.pf_nparams (Array.length args) in
      for i = 0 to bound - 1 do
        regs.(pf.pf_param_regs.(i)) <- args.(i)
      done;
      fr
  in
  st.frames <- fr :: st.frames;
  (* Guest-profiler call event.  The call instruction's own charge
     already landed on the caller (the [Pcall] site charges before
     dispatch, in both tiers), so everything from here to the matching
     [leave] is the callee's. *)
  (match st.prof with
  | Some p -> Profile.enter p ~steps:st.steps pf.pf_name
  | None -> ());
  let result =
    match pf.pf_tier with
    | Tier_compiled c -> exec_compiled st pf fr c.cb_entry
    | Tier_interp | Tier_deopt ->
      exec_block st fr pf.pf_blocks.(0) pf.pf_entry_copies
  in
  (match st.prof with
  | Some p -> Profile.leave p ~steps:st.steps
  | None -> ());
  (match st.trace with
  | Some buf ->
    Buffer.add_string buf
      (Printf.sprintf "%s<- %s = %s\n"
         (String.make (min st.depth 40) ' ')
         pf.pf_name
         (match result with Some v -> Mval.to_string v | None -> "void"))
  | None -> ());
  st.frames <- List.tl st.frames;
  st.depth <- st.depth - 1;
  (* The frame is dead (popped, result extracted): recycle it.  An
     OSR'd invocation can reach here with a generically-built frame
     that tiered up mid-call; adopting it into the pool is fine — the
     OSR transfer installed the same register-file layout [cb_frame]
     would have. *)
  (match pf.pf_tier with
  | Tier_compiled { cb_release = Some release; cb_frame = Some _; _ } ->
    release fr
  | _ -> ());
  result

(** Run a compiled body under the deopt contract: a managed error drops
    the function back to tier 1 permanently ([Tier_deopt]) and
    propagates, so error reporting — including the deoptimizing
    provenance replay, which never tiers up — sees exactly the
    interpreter's behavior.  [Exit_program], [Step_limit_exceeded] and
    internal failures pass through untouched: they are not managed
    errors and carry no source provenance. *)
and exec_compiled st (pf : pfunc) (fr : frame) (body : compiled_body) :
    Mval.t option =
  try body st fr
  with Merror.Error (cat, _) as e ->
    pf.pf_tier <- Tier_deopt;
    Metrics.incr (Metrics.counter "jit.deopts");
    Events.record
      (Events.Deopt
         {
           ev_fn = pf.pf_name;
           ev_kind = Merror.category_name cat;
           ev_osr = false;
         });
    Trace.instant ~args:[ ("function", pf.pf_name); ("tier", "interp") ]
      "jit-deopt";
    raise e

and exec_block st (fr : frame) (blk : pblock) (copies : phicopy) :
    Mval.t option =
  (match copies with
  | Pc_none -> ()
  | Pc_copy (dests, srcs) ->
    (* Parallel copy: read every source before writing any destination,
       so same-block phis referencing each other see the old values. *)
    let n = Array.length dests in
    if n = 1 then begin
      charge st fr Cop;
      fr.fr_regs.(dests.(0)) <- pv fr srcs.(0)
    end
    else begin
      let tmp = Array.make n Mval.zero in
      for i = 0 to n - 1 do
        charge st fr Cop;
        tmp.(i) <- pv fr srcs.(i)
      done;
      for i = 0 to n - 1 do
        fr.fr_regs.(dests.(i)) <- tmp.(i)
      done
    end;
    if st.obs then st.opstats.os_phi_copy <- st.opstats.os_phi_copy + n
  | Pc_missing -> failwith "interp: phi has no incoming edge for predecessor");
  (* On-stack replacement: at a loop header, probe the tier controller
     so a single long-running invocation can tier up mid-call.  The phi
     copies above already ran, so the compiled OSR entry starts at the
     block body with a frame-transfer of the live registers. *)
  match st.tier with
  | Some ctl when blk.pb_osr ->
    let pf = fr.fr_func in
    (match pf.pf_tier with
    | Tier_interp when ctl.tc_hot pf.pf_counters ->
      Events.record
        (Events.Tier_up
           {
             ev_fn = pf.pf_name;
             ev_ops =
               pf.pf_counters.c_ops + pf.pf_counters.c_fp
               + pf.pf_counters.c_mem;
             ev_invocations = pf.pf_counters.c_invocations;
             ev_osr = true;
           });
      pf.pf_tier <- Tier_compiled (ctl.tc_compile st pf)
    | Tier_interp | Tier_compiled _ | Tier_deopt -> ());
    (match pf.pf_tier with
    | Tier_compiled { cb_osr = Some osr; _ } ->
      exec_compiled_osr st pf fr osr blk.pb_index
    | Tier_compiled { cb_osr = None; _ } | Tier_interp | Tier_deopt ->
      exec_instrs st fr blk)
  | Some _ | None -> exec_instrs st fr blk

(** Run a compiled OSR entry under the same deopt contract as
    [exec_compiled]. *)
and exec_compiled_osr st (pf : pfunc) (fr : frame) (osr : osr_body)
    (idx : int) : Mval.t option =
  Metrics.incr (Metrics.counter "jit.osr_entries");
  Events.record
    (Events.Osr_enter
       { ev_fn = pf.pf_name; ev_block = pf.pf_blocks.(idx).pb_label });
  try osr st fr idx
  with Merror.Error (cat, _) as e ->
    pf.pf_tier <- Tier_deopt;
    Metrics.incr (Metrics.counter "jit.deopts");
    Events.record
      (Events.Deopt
         {
           ev_fn = pf.pf_name;
           ev_kind = Merror.category_name cat;
           ev_osr = true;
         });
    Trace.instant ~args:[ ("function", pf.pf_name); ("tier", "interp") ]
      "jit-deopt";
    raise e

and exec_instrs st (fr : frame) (blk : pblock) : Mval.t option =
  (* Guest-profiler block event.  Placed after the edge's phi copies
     (charged by [exec_block] above, credited to the predecessor — the
     closure compiler runs copies before the target block's closure,
     so both tiers split the edge cost identically). *)
  (match st.prof with
  | Some p ->
    Profile.note_block p ~steps:st.steps
      (Profile.block_stat p ~func:fr.fr_func.pf_name ~label:blk.pb_label)
  | None -> ());
  let instrs = blk.pb_instrs in
  let n = Array.length instrs in
  let rec run i =
    if i >= n then exec_term st fr blk.pb_term
    else begin
      (match instrs.(i) with
      | Palloca (r, mty, size) ->
        charge st fr Cop;
        if st.obs then st.opstats.os_alloca <- st.opstats.os_alloca + 1;
        let obj = Mobject.alloc ~storage:Merror.Stack ~mty size in
        fr.fr_regs.(r) <- Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 })
      | Pload (r, s, p) ->
        charge st fr Cmem;
        if st.obs then st.opstats.os_load <- st.opstats.os_load + 1;
        fr.fr_regs.(r) <- exec_load st s (pv fr p)
      | Pstore (s, v, p) ->
        charge st fr Cmem;
        if st.obs then st.opstats.os_store <- st.opstats.os_store + 1;
        exec_store st s (pv fr v) (pv fr p)
      | Pgep (r, base, g) ->
        charge st fr Cop;
        if st.obs then st.opstats.os_gep <- st.opstats.os_gep + 1;
        fr.fr_regs.(r) <- exec_gep st fr (pv fr base) g
      | Pbinop (r, op, s, a, b, cls) ->
        charge st fr cls;
        if st.obs then st.opstats.os_binop <- st.opstats.os_binop + 1;
        fr.fr_regs.(r) <- exec_binop st op s (pv fr a) (pv fr b)
      | Picmp (r, op, s, a, b) ->
        charge st fr Cop;
        if st.obs then st.opstats.os_icmp <- st.opstats.os_icmp + 1;
        fr.fr_regs.(r) <- exec_icmp op s (pv fr a) (pv fr b)
      | Pfcmp (r, op, a, b) ->
        charge st fr Cfp;
        if st.obs then st.opstats.os_fcmp <- st.opstats.os_fcmp + 1;
        fr.fr_regs.(r) <- exec_fcmp op (pv fr a) (pv fr b)
      | Pcast (r, op, from, into, v) ->
        charge st fr Cop;
        if st.obs then st.opstats.os_cast <- st.opstats.os_cast + 1;
        fr.fr_regs.(r) <- exec_cast op from into (pv fr v)
      | Pselect (r, c, a, b) ->
        charge st fr Cop;
        if st.obs then st.opstats.os_select <- st.opstats.os_select + 1;
        let cv = Mval.as_int (pv fr c) in
        fr.fr_regs.(r) <- pv fr (if cv <> 0L then a else b)
      | Psancheck ->
        charge st fr Cop;
        if st.obs then st.opstats.os_sancheck <- st.opstats.os_sancheck + 1
      | Ploc (line, col) ->
        (* provenance marker: free — no [charge], so [steps] and the
           modeled cycle counts are bit-identical with metrics off/on *)
        fr.fr_line <- line;
        fr.fr_col <- col
      | Pcall (r, callee, pargs, scalars) ->
        charge st fr Cop;
        if st.obs then st.opstats.os_call <- st.opstats.os_call + 1;
        fr.fr_func.pf_counters.c_calls <- fr.fr_func.pf_counters.c_calls + 1;
        let na = Array.length pargs in
        let argv = Array.make na Mval.zero in
        for k = 0 to na - 1 do
          argv.(k) <- pv fr pargs.(k)
        done;
        let result =
          match callee with
          | Pdirect tgt -> exec_target st !tgt argv scalars
          | Pindirect (v, ic) -> begin
            match Mval.as_ptr (context st) (pv fr v) with
            | Mobject.Pfunc name ->
              let tgt =
                if name == ic.ic_name || String.equal name ic.ic_name then begin
                  if st.obs then
                    st.opstats.os_ic_hit <- st.opstats.os_ic_hit + 1;
                  ic.ic_target
                end
                else begin
                  (* inline-cache miss: re-resolve and remember *)
                  if st.obs then
                    st.opstats.os_ic_miss <- st.opstats.os_ic_miss + 1;
                  let t = resolve_callee st name in
                  ic.ic_name <- name;
                  ic.ic_target <- t;
                  t
                end
              in
              exec_target st tgt argv scalars
            | Mobject.Pnull -> Merror.raise_error Merror.Null_deref (context st)
            | Mobject.Pobj _ | Mobject.Pinvalid _ ->
              Merror.raise_error
                (Merror.Type_violation "indirect call through a data pointer")
                (context st)
          end
        in
        if r >= 0 then
          fr.fr_regs.(r) <-
            (match result with Some v -> v | None -> Mval.zero));
      run (i + 1)
    end
  in
  run 0

and exec_target st (tgt : call_target) argv scalars : Mval.t option =
  match tgt with
  | Tgt_user pf -> call_function st pf argv scalars
  | Tgt_builtin (_, fn) -> fn st argv
  | Tgt_unknown name -> failwith ("interp: unknown builtin " ^ name)

and exec_term st (fr : frame) (t : pterm) : Mval.t option =
  charge st fr Cop;
  if st.obs then st.opstats.os_term <- st.opstats.os_term + 1;
  match t with
  | Pret (Some v) -> Some (pv fr v)
  | Pret None -> None
  | Pbr e -> goto st fr e
  | Pcondbr (c, a, b) ->
    goto st fr (if Mval.as_int (pv fr c) <> 0L then a else b)
  | Pswitch (v, impl, default) ->
    let x = Mval.as_int (pv fr v) in
    let e =
      match impl with
      | Sw_linear (keys, edges) ->
        let nk = Array.length keys in
        let rec find i =
          if i >= nk then default
          else if Int64.equal keys.(i) x then edges.(i)
          else find (i + 1)
        in
        find 0
      | Sw_table tbl -> begin
        match Hashtbl.find_opt tbl x with Some e -> e | None -> default
      end
    in
    goto st fr e
  | Punreachable ->
    Merror.raise_error
      (Merror.Type_violation "reached an unreachable instruction")
      (context st)

and goto st (fr : frame) (e : pedge) : Mval.t option =
  match e with
  | Edge (idx, copies) -> exec_block st fr fr.fr_func.pf_blocks.(idx) copies
  | Edge_unknown l -> failwith ("interp: jump to unknown block " ^ l)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type run_result = {
  exit_code : int;
  output : string;
  error : (Merror.category * string) option;
  steps : int;
  run_profile : profile;
  leaks : int;  (** unfreed heap objects at exit (paper §6 extension) *)
  leak_details : string list;
      (** one line per leaked object: class, size, allocating function *)
  trace_output : string;  (** call trace, when enabled (empty otherwise) *)
  timed_out : bool;
  report : Bugreport.t option;
      (** structured provenance report for [error]: faulting C source
          location, bounds detail, and the managed call stack *)
}

(* ASan-style detail lines derived from the structured error payload. *)
let detail_of_category (cat : Merror.category) : string list =
  let plural n = if n = 1 then "" else "s" in
  match cat with
  | Merror.Out_of_bounds { access; offset; size; obj_size; storage } ->
    [
      Printf.sprintf "%s of %d byte%s at offset %d"
        (String.capitalize_ascii (Merror.access_name access))
        size (plural size) offset;
      Printf.sprintf "object bounds: [0, %d) in %s storage; access range: [%d, %d)"
        obj_size (Merror.storage_name storage) offset (offset + size);
    ]
  | Merror.Uninitialized_read { offset; size; storage } ->
    [
      Printf.sprintf
        "Read of %d uninitialized byte%s at offset %d of a %s object" size
        (plural size) offset
        (Merror.storage_name storage);
    ]
  | _ -> []

let create ?(step_limit = 500_000_000) ?(depth_limit = 4096)
    ?(mementos = true) ?(detect_uninit = false) ?(trace = false)
    ?(input = "") ?(seed = 42) ?tier ?profile:prof ?(provenance = false)
    (m : Irmod.t) : state =
  Mobject.reset ();
  Mobject.track_uninitialized := detect_uninit;
  let profile = fresh_profile () in
  let st =
    {
      m;
      funcs = Hashtbl.create 64;
      globals = Hashtbl.create 64;
      heap = Mheap.create ~mementos ();
      out = Buffer.create 1024;
      input;
      input_pos = 0;
      steps = 0;
      step_limit;
      depth = 0;
      depth_limit;
      profile;
      frames = [];
      rng = Prng.create seed;
      trace = (if trace then Some (Buffer.create 1024) else None);
      obs = !Metrics.enabled;
      opstats = fresh_opstats ();
      seed;
      tier;
      prof;
      detect_uninit;
      snapshot = None;
      provenance;
    }
  in
  (* prepare -> link: globals first (operand resolution needs their
     objects), then every function, then the cross-function call links. *)
  Trace.span "prepare" (fun () ->
      materialize_globals st;
      List.iter
        (fun f -> Hashtbl.replace st.funcs f.Irfunc.name (prepare_func st f))
        m.Irmod.funcs);
  Trace.span "link" (fun () -> link_module st);
  (* Registry snapshot for [reset]: everything registered so far belongs
     to the module image; run-time objects (argv, stack, heap) get ids
     above this watermark and are forgotten between runs. *)
  st.snapshot <- Some (Mobject.checkpoint ());
  st

(** Rewind a prepared state so [run] replays bit-identically to a fresh
    [create] of the same module — without re-preparing and, crucially,
    without discarding [pf_tier]: compiled bodies survive, which is the
    compiled-body cache the tiered engine and the benchmarks rely on.
    ([Tier_deopt] also survives: a function that deoptimized re-runs
    interpreted, which is observably identical, and skips pointless
    recompilation.)

    Everything observable is restored: the object registry prefix (ids
    are observable through pointer cookies and error messages), global
    byte images, the heap (including allocation-site mementos), the rng,
    buffers, counters, and the uninitialized-read flag — even if other
    engine states were created (and reset the global registry) in
    between. *)
let reset ?input (st : state) : unit =
  (match st.snapshot with
  | Some ck -> Mobject.restore ck
  | None -> failwith "interp: reset on an incompletely created state");
  Mobject.track_uninitialized := st.detect_uninit;
  Mheap.clear st.heap;
  (* Re-zero and re-fill the global images in place: prepared code holds
     [Pimm] pointers to these physical objects, so they must be reused,
     not reallocated. *)
  List.iter
    (fun (g : Irmod.global) ->
      match Hashtbl.find_opt st.globals g.Irmod.g_name with
      | Some obj ->
        (match obj.Mobject.data with
        | Some b -> Bytes.fill b 0 (Bytes.length b) '\000'
        | None -> ());
        obj.Mobject.ptr_slots <- None;
        fill_init st obj g.Irmod.g_ty 0 g.Irmod.g_init
      | None -> ())
    st.m.Irmod.globals;
  Buffer.clear st.out;
  (match input with Some s -> st.input <- s | None -> ());
  st.input_pos <- 0;
  st.steps <- 0;
  st.depth <- 0;
  st.frames <- [];
  Hashtbl.iter
    (fun _ pf ->
      let c = pf.pf_counters in
      c.c_ops <- 0;
      c.c_fp <- 0;
      c.c_mem <- 0;
      c.c_calls <- 0;
      c.c_invocations <- 0)
    st.funcs;
  st.profile.p_allocs <- 0;
  st.profile.p_alloc_bytes <- 0;
  st.profile.p_steps <- 0;
  let os = st.opstats in
  os.os_alloca <- 0;
  os.os_load <- 0;
  os.os_store <- 0;
  os.os_gep <- 0;
  os.os_binop <- 0;
  os.os_icmp <- 0;
  os.os_fcmp <- 0;
  os.os_cast <- 0;
  os.os_select <- 0;
  os.os_sancheck <- 0;
  os.os_call <- 0;
  os.os_term <- 0;
  os.os_phi_copy <- 0;
  os.os_ic_hit <- 0;
  os.os_ic_miss <- 0;
  (match st.trace with Some b -> Buffer.clear b | None -> ());
  (* Step counter rewound to zero: re-arm the profiler's delta markers
     (accumulated attribution survives — bench iterations sum). *)
  (match st.prof with Some p -> Profile.rewind p | None -> ());
  Prng.reseed st.rng st.seed

(** Build the [main] argument objects: an argv array of [MainArgs]
    storage whose size is exactly argc+1 pointers (argv[argc] = NULL), so
    any access past it is out of bounds — the paper's case study 1. *)
let build_argv (argv : string list) : Mval.t * Mval.t =
  let argc = List.length argv in
  let arr =
    Mobject.alloc ~storage:Merror.MainArgs
      ~mty:(Irtype.MArray (Irtype.MScalar Irtype.Ptr, argc + 1))
      ((argc + 1) * 8)
  in
  List.iteri
    (fun i s ->
      let strobj =
        Mobject.alloc ~storage:Merror.MainArgs
          ~mty:(Irtype.MArray (Irtype.MScalar Irtype.I8, String.length s + 1))
          (String.length s + 1)
      in
      Mobject.write_bytes { Mobject.obj = strobj; moff = 0 } s "argv setup";
      Mobject.store_ptr
        { Mobject.obj = arr; moff = i * 8 }
        (Mobject.Pobj { Mobject.obj = strobj; moff = 0 })
        "argv setup")
    argv;
  ( Mval.Vint (Int64.of_int argc),
    Mval.Vptr (Mobject.Pobj { Mobject.obj = arr; moff = 0 }) )

(** Snapshot the managed call stack (innermost first) into a provenance
    report.  Works because [call_function] pops [st.frames] only on a
    normal return: when [Merror.Error] propagates out, the stack at the
    faulting instruction is still intact. *)
let report_of_error st (cat : Merror.category) (msg : string) : Bugreport.t =
  {
    Bugreport.br_kind = Merror.category_name cat;
    br_message = msg;
    br_detail = detail_of_category cat;
    br_stack =
      List.map
        (fun (fr : frame) ->
          {
            Bugreport.bf_func = fr.fr_func.pf_name;
            bf_file = fr.fr_func.pf_ir.Irfunc.src_file;
            bf_line = fr.fr_line;
            bf_col = fr.fr_col;
          })
        st.frames;
    (* The flight recorder's ring at detection time.  During the
       deoptimizing provenance replay recording is masked, so these are
       the decisions of the run that found the bug, not the replay's. *)
    br_events = Events.to_lines ();
  }

let flush_metrics st =
  if st.obs then begin
    let os = st.opstats in
    let c name v = if v <> 0 then Metrics.add (Metrics.counter name) v in
    c "interp.op.alloca" os.os_alloca;
    c "interp.op.load" os.os_load;
    c "interp.op.store" os.os_store;
    c "interp.op.gep" os.os_gep;
    c "interp.op.binop" os.os_binop;
    c "interp.op.icmp" os.os_icmp;
    c "interp.op.fcmp" os.os_fcmp;
    c "interp.op.cast" os.os_cast;
    c "interp.op.select" os.os_select;
    c "interp.op.sancheck" os.os_sancheck;
    c "interp.op.call" os.os_call;
    c "interp.op.terminator" os.os_term;
    c "interp.phi_copies" os.os_phi_copy;
    c "interp.ic.hits" os.os_ic_hit;
    c "interp.ic.misses" os.os_ic_miss;
    c "interp.steps" st.steps;
    c "heap.allocs" st.heap.Mheap.alloc_count;
    c "heap.frees" st.heap.Mheap.free_count;
    c "heap.alloc_bytes" st.heap.Mheap.alloc_bytes;
    let peak = Metrics.gauge "heap.peak_bytes" in
    if float_of_int st.heap.Mheap.peak_bytes > peak.Metrics.g_value then
      Metrics.set peak (float_of_int st.heap.Mheap.peak_bytes)
  end

let rec run ?(argv = [ "program" ]) (st : state) : run_result =
  let finish ?(code = 0) ?error ?report ~timed_out () =
    (* [p_steps] mirrors [st.steps]; it is synced here once instead of
       being double-written on every charge *)
    st.profile.p_steps <- st.steps;
    flush_metrics st;
    let leaked = Mheap.leaked st.heap in
    {
      exit_code = code;
      output = Buffer.contents st.out;
      error;
      steps = st.steps;
      run_profile = st.profile;
      leaks = List.length leaked;
      leak_details =
        List.map
          (fun (obj : Mobject.t) ->
            Printf.sprintf "%d bytes, %s (allocated in %s) never freed"
              obj.Mobject.byte_size (Mobject.class_name obj)
              (Mheap.site_name st.heap obj.Mobject.site))
          leaked;
      trace_output =
        (match st.trace with Some b -> Buffer.contents b | None -> "");
      timed_out;
      report;
    }
  in
  match Hashtbl.find_opt st.funcs "main" with
  | None -> failwith "interp: program has no main function"
  | Some main -> begin
    let vargc, vargv = build_argv argv in
    let args, scalars =
      if main.pf_nparams >= 2 then
        ([| vargc; vargv |], [| Irtype.I32; Irtype.Ptr |])
      else ([||], [||])
    in
    let finish ?code ?error ?report ~timed_out () =
      (* Close the profiler's books with the final counter value even
         when an error or timeout left the guest stack deep — the
         conservation law (folded sums = steps) holds on every path. *)
      (match st.prof with
      | Some p -> Profile.finalize p ~steps:st.steps
      | None -> ());
      finish ?code ?error ?report ~timed_out ()
    in
    try
      let r =
        Trace.span "execute" (fun () -> call_function st main args scalars)
      in
      let code =
        match r with Some v -> Int64.to_int (Mval.as_int v) land 0xff | None -> 0
      in
      finish ~code ~timed_out:false ()
    with
    | Exit_program code -> finish ~code ~timed_out:false ()
    | Merror.Error (cat, msg) ->
      Events.record
        (Events.Error_raised
           { ev_kind = Merror.category_name cat; ev_msg = msg });
      let report =
        if st.provenance then report_of_error st cat msg
        else
          (* Fast path has no line markers: deoptimize — re-execute the
             same program deterministically with eager provenance
             tracking and take the report from the replayed fault. *)
          match rerun_for_report st argv cat with
          | Some r -> r
          | None -> report_of_error st cat msg (* frames, no lines *)
      in
      finish ~code:255 ~error:(cat, msg) ~report ~timed_out:false ()
    | Step_limit_exceeded -> finish ~code:255 ~timed_out:true ()
  end

(** Replay [st.m] from scratch with [provenance=true] and return the
    report of the replayed fault.  Execution is deterministic (seeded
    rng, fixed input, [Ploc] is never charged so step counts agree), so
    the replay faults at the same instruction; the replay runs with
    metrics suppressed to avoid double-counting.  Returns [None] if the
    replay somehow diverges (different error category). *)
and rerun_for_report (st : state) (argv : string list)
    (cat : Merror.category) : Bugreport.t option =
  let saved = !Metrics.enabled in
  Metrics.enabled := false;
  Fun.protect
    ~finally:(fun () -> Metrics.enabled := saved)
    (fun () ->
      (* Flight-recorder mask: the replay re-raises the same managed
         error (and never tiers up), so without the mask the ring would
         gain a duplicate error event and the report would describe the
         replay instead of the original run. *)
      Events.mask @@ fun () ->
      try
        (* No [~tier]: the replay always runs in the marker-carrying
           interpreter, so the report is the same whether the original
           fault came from interpreted or compiled code. *)
        let st2 =
          create ~step_limit:st.step_limit ~depth_limit:st.depth_limit
            ~mementos:st.heap.Mheap.mementos_enabled
            ~detect_uninit:st.detect_uninit ~input:st.input
            ~seed:st.seed ~provenance:true st.m
        in
        let r = run ~argv st2 in
        match (r.error, r.report) with
        | Some (cat2, _), (Some _ as rep) when cat2 = cat -> rep
        | _ -> None
      with _ -> None)
