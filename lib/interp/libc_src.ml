(** The managed libc (paper §3.1): written in standard C, optimized for
    safety instead of performance, and executed *on the interpreter* so
    that every internal access is checked.  Host builtins with the
    [__sulong_] prefix play the role of the paper's Java-implemented
    system-call layer; [count_varargs]/[get_vararg] are the
    variadic-argument introspection functions of Fig. 9.

    Because the libc itself runs on checked memory, the classic
    interceptor gaps of ASan cannot occur here: [strtok] scanning an
    unterminated delimiter string, or [printf] reading a [long] where an
    [int] was passed, trap inside these very functions. *)

(** Declarations visible to every compiled program (in place of the
    system headers, which the lexer skips). *)
let prelude = {|
struct __file;
struct __varargs { int counter; void **args; };

void *malloc(size_t size);
void *calloc(size_t n, size_t size);
void *realloc(void *p, size_t size);
void free(void *p);
void exit(int code);
void abort(void);
int rand(void);
void srand(unsigned int seed);
int abs(int x);
long labs(long x);
int atoi(const char *s);
long atol(const char *s);
double atof(const char *s);
size_t strlen(const char *s);
char *strcpy(char *dst, const char *src);
char *strncpy(char *dst, const char *src, size_t n);
char *strcat(char *dst, const char *src);
char *strncat(char *dst, const char *src, size_t n);
int strcmp(const char *a, const char *b);
int strncmp(const char *a, const char *b, size_t n);
char *strchr(const char *s, int c);
char *strrchr(const char *s, int c);
char *strstr(const char *hay, const char *needle);
char *strtok(char *s, const char *delim);
char *strdup(const char *s);
size_t strspn(const char *s, const char *accept);
size_t strcspn(const char *s, const char *reject);
char *strpbrk(const char *s, const char *accept);
void *memchr(const void *s, int c, size_t n);
int strcasecmp(const char *a, const char *b);
int strncasecmp(const char *a, const char *b, size_t n);
long strtol(const char *s, char **end, int base);
void *bsearch(const void *key, const void *base, size_t n, size_t size,
              int (*cmp)(const void *, const void *));
void *memcpy(void *dst, const void *src, size_t n);
void *memmove(void *dst, const void *src, size_t n);
void *memset(void *p, int c, size_t n);
int memcmp(const void *a, const void *b, size_t n);
int printf(const char *fmt, ...);
int fprintf(FILE *f, const char *fmt, ...);
int sprintf(char *buf, const char *fmt, ...);
int snprintf(char *buf, size_t n, const char *fmt, ...);
int puts(const char *s);
int putchar(int c);
int fputs(const char *s, FILE *f);
int fputc(int c, FILE *f);
int getchar(void);
int fgetc(FILE *f);
char *fgets(char *buf, int n, FILE *f);
int scanf(const char *fmt, ...);
int fscanf(FILE *f, const char *fmt, ...);
int isdigit(int c);
int isalpha(int c);
int isalnum(int c);
int isspace(int c);
int isupper(int c);
int islower(int c);
int toupper(int c);
int tolower(int c);
double sqrt(double x);
double sin(double x);
double cos(double x);
double atan(double x);
double exp(double x);
double log(double x);
double pow(double x, double y);
double fabs(double x);
double floor(double x);
double ceil(double x);
double fmod(double x, double y);
void qsort(void *base, size_t n, size_t size, int (*cmp)(const void *, const void *));
void __va_start(va_list ap);
void *__va_next(va_list ap);
void __va_end(va_list ap);
int count_varargs(void);
void *get_vararg(int i);
long __sulong_format_pointer(void *p);
long __sulong_format_double(double v, int conv, int prec, char *out, long cap);
int __sulong_putchar(int c);
int __sulong_read_char(FILE *f);
int __sulong_unread_char(int c);
void __sulong_exit(int code);
void __sulong_abort(void);
double __sulong_sqrt(double x);
double __sulong_sin(double x);
double __sulong_cos(double x);
double __sulong_atan(double x);
double __sulong_exp(double x);
double __sulong_log(double x);
double __sulong_pow(double x, double y);
int __sulong_rand(void);
extern FILE *stdin;
extern FILE *stdout;
extern FILE *stderr;
|}

(** The libc implementation itself.  126 functions in the paper; here the
    set the corpus, examples and benchmarks need — each one plain,
    standard C with no word-size tricks (contrast with the word-wise
    strlen of production libcs, paper P4). *)
let source = prelude ^ {|

FILE *stdin = (FILE *)1;
FILE *stdout = (FILE *)2;
FILE *stderr = (FILE *)3;

/* ---------------- varargs: the paper's Fig. 9 ---------------- */

void __va_start(va_list ap) {
  int n = count_varargs();
  ap->args = (void **)malloc(sizeof(void *) * n);
  for (ap->counter = n - 1; ap->counter != -1; ap->counter = ap->counter - 1) {
    ap->args[ap->counter] = get_vararg(ap->counter);
  }
  ap->counter = 0;
}

void *__va_next(va_list ap) {
  /* An access past the end of args[] is an out-of-bounds read of the
     malloc'ed array: exactly how Safe Sulong catches missing variadic
     arguments. */
  void *p = ap->args[ap->counter];
  ap->counter = ap->counter + 1;
  return p;
}

void __va_end(va_list ap) {
  free(ap->args);
}

/* ---------------- ctype ---------------- */

int isdigit(int c) { return c >= '0' && c <= '9'; }
int isalpha(int c) { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'); }
int isalnum(int c) { return isdigit(c) || isalpha(c); }
int isspace(int c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f';
}
int isupper(int c) { return c >= 'A' && c <= 'Z'; }
int islower(int c) { return c >= 'a' && c <= 'z'; }
int toupper(int c) { if (islower(c)) { return c - 'a' + 'A'; } return c; }
int tolower(int c) { if (isupper(c)) { return c - 'A' + 'a'; } return c; }

/* ---------------- string ---------------- */

size_t strlen(const char *s) {
  size_t n = 0;
  while (s[n] != '\0') { n = n + 1; }
  return n;
}

char *strcpy(char *dst, const char *src) {
  size_t i = 0;
  while (src[i] != '\0') { dst[i] = src[i]; i = i + 1; }
  dst[i] = '\0';
  return dst;
}

char *strncpy(char *dst, const char *src, size_t n) {
  size_t i = 0;
  while (i < n && src[i] != '\0') { dst[i] = src[i]; i = i + 1; }
  while (i < n) { dst[i] = '\0'; i = i + 1; }
  return dst;
}

char *strcat(char *dst, const char *src) {
  strcpy(dst + strlen(dst), src);
  return dst;
}

char *strncat(char *dst, const char *src, size_t n) {
  size_t len = strlen(dst);
  size_t i = 0;
  while (i < n && src[i] != '\0') { dst[len + i] = src[i]; i = i + 1; }
  dst[len + i] = '\0';
  return dst;
}

int strcmp(const char *a, const char *b) {
  size_t i = 0;
  while (a[i] != '\0' && a[i] == b[i]) { i = i + 1; }
  return (unsigned char)a[i] - (unsigned char)b[i];
}

int strncmp(const char *a, const char *b, size_t n) {
  size_t i = 0;
  if (n == 0) { return 0; }
  while (i + 1 < n && a[i] != '\0' && a[i] == b[i]) { i = i + 1; }
  return (unsigned char)a[i] - (unsigned char)b[i];
}

char *strchr(const char *s, int c) {
  size_t i = 0;
  while (s[i] != '\0') {
    if (s[i] == (char)c) { return (char *)(s + i); }
    i = i + 1;
  }
  if (c == 0) { return (char *)(s + i); }
  return 0;
}

char *strrchr(const char *s, int c) {
  char *found = 0;
  size_t i = 0;
  while (s[i] != '\0') {
    if (s[i] == (char)c) { found = (char *)(s + i); }
    i = i + 1;
  }
  if (c == 0) { return (char *)(s + i); }
  return found;
}

char *strstr(const char *hay, const char *needle) {
  if (needle[0] == '\0') { return (char *)hay; }
  size_t i = 0;
  while (hay[i] != '\0') {
    size_t j = 0;
    while (needle[j] != '\0' && hay[i + j] == needle[j]) { j = j + 1; }
    if (needle[j] == '\0') { return (char *)(hay + i); }
    i = i + 1;
  }
  return 0;
}

size_t strspn(const char *s, const char *accept) {
  size_t n = 0;
  while (s[n] != '\0' && strchr(accept, s[n]) != 0) { n = n + 1; }
  return n;
}

size_t strcspn(const char *s, const char *reject) {
  size_t n = 0;
  while (s[n] != '\0' && strchr(reject, s[n]) == 0) { n = n + 1; }
  return n;
}

char *__strtok_save = 0;

char *strtok(char *s, const char *delim) {
  if (s == 0) { s = __strtok_save; }
  if (s == 0) { return 0; }
  s = s + strspn(s, delim);
  if (*s == '\0') { __strtok_save = 0; return 0; }
  char *tok = s;
  s = s + strcspn(s, delim);
  if (*s != '\0') {
    *s = '\0';
    __strtok_save = s + 1;
  } else {
    __strtok_save = 0;
  }
  return tok;
}

char *strdup(const char *s) {
  size_t n = strlen(s);
  char *copy = (char *)malloc(n + 1);
  if (copy != 0) { strcpy(copy, s); }
  return copy;
}

char *strpbrk(const char *s, const char *accept) {
  size_t i = 0;
  while (s[i] != '\0') {
    if (strchr(accept, s[i]) != 0) { return (char *)(s + i); }
    i = i + 1;
  }
  return 0;
}

void *memchr(const void *s, int c, size_t n) {
  const unsigned char *p = (const unsigned char *)s;
  for (size_t i = 0; i < n; i = i + 1) {
    if (p[i] == (unsigned char)c) { return (void *)(p + i); }
  }
  return 0;
}

int strcasecmp(const char *a, const char *b) {
  size_t i = 0;
  while (a[i] != '\0' && tolower((unsigned char)a[i]) == tolower((unsigned char)b[i])) {
    i = i + 1;
  }
  return tolower((unsigned char)a[i]) - tolower((unsigned char)b[i]);
}

int strncasecmp(const char *a, const char *b, size_t n) {
  if (n == 0) { return 0; }
  size_t i = 0;
  while (i + 1 < n && a[i] != '\0'
         && tolower((unsigned char)a[i]) == tolower((unsigned char)b[i])) {
    i = i + 1;
  }
  return tolower((unsigned char)a[i]) - tolower((unsigned char)b[i]);
}

long strtol(const char *s, char **end, int base) {
  size_t i = 0;
  while (isspace((unsigned char)s[i])) { i = i + 1; }
  int negative = 0;
  if (s[i] == '-') { negative = 1; i = i + 1; }
  else if (s[i] == '+') { i = i + 1; }
  if ((base == 0 || base == 16) && s[i] == '0'
      && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    base = 16;
    i = i + 2;
  } else if (base == 0 && s[i] == '0') {
    base = 8;
  } else if (base == 0) {
    base = 10;
  }
  long value = 0;
  int any = 0;
  while (1) {
    int c = (unsigned char)s[i];
    int digit;
    if (isdigit(c)) { digit = c - '0'; }
    else if (c >= 'a' && c <= 'z') { digit = c - 'a' + 10; }
    else if (c >= 'A' && c <= 'Z') { digit = c - 'A' + 10; }
    else { break; }
    if (digit >= base) { break; }
    value = value * base + digit;
    any = 1;
    i = i + 1;
  }
  if (end != 0) {
    if (any) { *end = (char *)(s + i); }
    else { *end = (char *)s; }
  }
  if (negative) { return -value; }
  return value;
}

void *bsearch(const void *key, const void *base, size_t n, size_t size,
              int (*cmp)(const void *, const void *)) {
  size_t lo = 0;
  size_t hi = n;
  const char *b = (const char *)base;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    int r = cmp(key, b + mid * size);
    if (r == 0) { return (void *)(b + mid * size); }
    if (r < 0) { hi = mid; } else { lo = mid + 1; }
  }
  return 0;
}

void *memcpy(void *dst, const void *src, size_t n) {
  char *d = (char *)dst;
  const char *s = (const char *)src;
  for (size_t i = 0; i < n; i = i + 1) { d[i] = s[i]; }
  return dst;
}

void *memmove(void *dst, const void *src, size_t n) {
  char *d = (char *)dst;
  const char *s = (const char *)src;
  if (d < s) {
    for (size_t i = 0; i < n; i = i + 1) { d[i] = s[i]; }
  } else {
    size_t i = n;
    while (i > 0) { i = i - 1; d[i] = s[i]; }
  }
  return dst;
}

void *memset(void *p, int c, size_t n) {
  char *d = (char *)p;
  for (size_t i = 0; i < n; i = i + 1) { d[i] = (char)c; }
  return p;
}

int memcmp(const void *a, const void *b, size_t n) {
  const unsigned char *x = (const unsigned char *)a;
  const unsigned char *y = (const unsigned char *)b;
  for (size_t i = 0; i < n; i = i + 1) {
    if (x[i] != y[i]) { return x[i] - y[i]; }
  }
  return 0;
}

/* ---------------- stdlib ---------------- */

void exit(int code) { __sulong_exit(code); }
void abort(void) { __sulong_abort(); }

int abs(int x) { if (x < 0) { return -x; } return x; }
long labs(long x) { if (x < 0) { return -x; } return x; }

int rand(void) { return __sulong_rand(); }
void srand(unsigned int seed) { (void)seed; }

long atol(const char *s) {
  long value = 0;
  int negative = 0;
  size_t i = 0;
  while (isspace((unsigned char)s[i])) { i = i + 1; }
  if (s[i] == '-') { negative = 1; i = i + 1; }
  else if (s[i] == '+') { i = i + 1; }
  while (isdigit((unsigned char)s[i])) {
    value = value * 10 + (s[i] - '0');
    i = i + 1;
  }
  if (negative) { return -value; }
  return value;
}

int atoi(const char *s) { return (int)atol(s); }

double atof(const char *s) {
  double value = 0.0;
  int negative = 0;
  size_t i = 0;
  while (isspace((unsigned char)s[i])) { i = i + 1; }
  if (s[i] == '-') { negative = 1; i = i + 1; }
  else if (s[i] == '+') { i = i + 1; }
  while (isdigit((unsigned char)s[i])) {
    value = value * 10.0 + (double)(s[i] - '0');
    i = i + 1;
  }
  if (s[i] == '.') {
    i = i + 1;
    double place = 0.1;
    while (isdigit((unsigned char)s[i])) {
      value = value + place * (double)(s[i] - '0');
      place = place * 0.1;
      i = i + 1;
    }
  }
  if (s[i] == 'e' || s[i] == 'E') {
    i = i + 1;
    int esign = 1;
    if (s[i] == '-') { esign = -1; i = i + 1; }
    else if (s[i] == '+') { i = i + 1; }
    int e = 0;
    while (isdigit((unsigned char)s[i])) { e = e * 10 + (s[i] - '0'); i = i + 1; }
    while (e > 0) {
      if (esign > 0) { value = value * 10.0; } else { value = value * 0.1; }
      e = e - 1;
    }
  }
  if (negative) { return -value; }
  return value;
}

void qsort(void *base, size_t n, size_t size,
           int (*cmp)(const void *, const void *)) {
  /* Insertion sort: quadratic but simple and safe; the paper's libc is
     "optimized for safety instead of performance". */
  char *b = (char *)base;
  for (size_t i = 1; i < n; i = i + 1) {
    size_t j = i;
    while (j > 0 && cmp(b + j * size, b + (j - 1) * size) < 0) {
      for (size_t k = 0; k < size; k = k + 1) {
        char tmp = b[j * size + k];
        b[j * size + k] = b[(j - 1) * size + k];
        b[(j - 1) * size + k] = tmp;
      }
      j = j - 1;
    }
  }
}

/* ---------------- math ---------------- */

double sqrt(double x) { return __sulong_sqrt(x); }
double sin(double x) { return __sulong_sin(x); }
double cos(double x) { return __sulong_cos(x); }
double atan(double x) { return __sulong_atan(x); }
double exp(double x) { return __sulong_exp(x); }
double log(double x) { return __sulong_log(x); }
double pow(double x, double y) { return __sulong_pow(x, y); }
double fabs(double x) { if (x < 0.0) { return -x; } return x; }
double floor(double x) {
  long i = (long)x;
  if (x < 0.0 && (double)i != x) { i = i - 1; }
  return (double)i;
}
double ceil(double x) {
  long i = (long)x;
  if (x > 0.0 && (double)i != x) { i = i + 1; }
  return (double)i;
}
double fmod(double x, double y) {
  double q = floor(x / y);
  return x - q * y;
}

/* ---------------- stdio: output ---------------- */

int putchar(int c) { return __sulong_putchar(c); }
int fputc(int c, FILE *f) { (void)f; return __sulong_putchar(c); }
int getchar(void) { return __sulong_read_char(stdin); }
int fgetc(FILE *f) { return __sulong_read_char(f); }

int puts(const char *s) {
  size_t i = 0;
  while (s[i] != '\0') { __sulong_putchar(s[i]); i = i + 1; }
  __sulong_putchar('\n');
  return 0;
}

int fputs(const char *s, FILE *f) {
  (void)f;
  size_t i = 0;
  while (s[i] != '\0') { __sulong_putchar(s[i]); i = i + 1; }
  return 0;
}

char *fgets(char *buf, int n, FILE *f) {
  int i = 0;
  while (i < n - 1) {
    int c = __sulong_read_char(f);
    if (c < 0) { break; }
    buf[i] = (char)c;
    i = i + 1;
    if (c == '\n') { break; }
  }
  if (i == 0) { return 0; }
  buf[i] = '\0';
  return buf;
}

/* ---------------- stdio: the printf engine ---------------- */

void __emit(int to_stream, char *buf, size_t cap, size_t *pos, int c) {
  if (to_stream) {
    __sulong_putchar(c);
  } else if (*pos + 1 < cap) {
    buf[*pos] = (char)c;
  }
  *pos = *pos + 1;
}

void __emit_padded(int to_stream, char *buf, size_t cap, size_t *pos,
                   const char *digits, int len, int width, int zero,
                   int left) {
  int pad = width - len;
  if (!left) {
    while (pad > 0) {
      __emit(to_stream, buf, cap, pos, zero ? '0' : ' ');
      pad = pad - 1;
    }
  }
  for (int i = 0; i < len; i = i + 1) {
    __emit(to_stream, buf, cap, pos, digits[i]);
  }
  if (left) {
    while (pad > 0) { __emit(to_stream, buf, cap, pos, ' '); pad = pad - 1; }
  }
}

int __format_unsigned(unsigned long v, char *out, int base, int upper) {
  char tmp[32];
  int n = 0;
  const char *lower_digits = "0123456789abcdef";
  const char *upper_digits = "0123456789ABCDEF";
  if (v == 0) { tmp[n] = '0'; n = n + 1; }
  while (v != 0) {
    int d = (int)(v % (unsigned long)base);
    if (upper) { tmp[n] = upper_digits[d]; } else { tmp[n] = lower_digits[d]; }
    n = n + 1;
    v = v / (unsigned long)base;
  }
  for (int i = 0; i < n; i = i + 1) { out[i] = tmp[n - 1 - i]; }
  return n;
}

/* %f / %e / %g delegate the decimal conversion to the host-side shared
   renderer ([Floatfmt] via the __sulong_format_double intrinsic): the
   managed libc, the native model's libc, and the difftest reference
   evaluator then agree on every digit by construction, which is what
   lets generated programs print float results as decimals instead of
   bit-punning them through an unsigned long. */
void __format_float(int to_stream, char *buf, size_t cap, size_t *pos,
                    double v, int conv, int prec, int width, int zero,
                    int left) {
  char digits[352];
  int n = (int)__sulong_format_double(v, conv, prec, digits, 352);
  __emit_padded(to_stream, buf, cap, pos, digits, n, width, zero, left);
}

int __vformat(int to_stream, char *buf, size_t cap, const char *fmt,
              va_list ap) {
  size_t pos = 0;
  size_t i = 0;
  char digits[72];
  while (fmt[i] != '\0') {
    char c = fmt[i];
    if (c != '%') {
      __emit(to_stream, buf, cap, &pos, c);
      i = i + 1;
      continue;
    }
    i = i + 1;
    int left = 0;
    int zero = 0;
    while (fmt[i] == '-' || fmt[i] == '0' || fmt[i] == '+' || fmt[i] == ' ') {
      if (fmt[i] == '-') { left = 1; }
      if (fmt[i] == '0') { zero = 1; }
      i = i + 1;
    }
    int width = 0;
    while (isdigit((unsigned char)fmt[i])) {
      width = width * 10 + (fmt[i] - '0');
      i = i + 1;
    }
    int prec = -1;
    if (fmt[i] == '.') {
      i = i + 1;
      prec = 0;
      while (isdigit((unsigned char)fmt[i])) {
        prec = prec * 10 + (fmt[i] - '0');
        i = i + 1;
      }
    }
    int longmod = 0;
    while (fmt[i] == 'l' || fmt[i] == 'z' || fmt[i] == 'h') {
      if (fmt[i] == 'l' || fmt[i] == 'z') { longmod = 1; }
      i = i + 1;
    }
    char conv = fmt[i];
    i = i + 1;
    if (conv == '%') {
      __emit(to_stream, buf, cap, &pos, '%');
    } else if (conv == 'd' || conv == 'i') {
      long v;
      /* Reading a long where an int was passed overflows the 4-byte
         variadic cell: the paper's printf("%ld", int) bug. */
      if (longmod) { v = *(long *)__va_next(ap); }
      else { v = (long)*(int *)__va_next(ap); }
      int n = 0;
      unsigned long mag;
      if (v < 0) { digits[0] = '-'; n = 1; mag = (unsigned long)(-v); }
      else { mag = (unsigned long)v; }
      n = n + __format_unsigned(mag, digits + n, 10, 0);
      __emit_padded(to_stream, buf, cap, &pos, digits, n, width, zero, left);
    } else if (conv == 'u') {
      unsigned long v;
      if (longmod) { v = *(unsigned long *)__va_next(ap); }
      else { v = (unsigned long)(unsigned int)*(int *)__va_next(ap); }
      int n = __format_unsigned(v, digits, 10, 0);
      __emit_padded(to_stream, buf, cap, &pos, digits, n, width, zero, left);
    } else if (conv == 'x' || conv == 'X') {
      unsigned long v;
      if (longmod) { v = *(unsigned long *)__va_next(ap); }
      else { v = (unsigned long)(unsigned int)*(int *)__va_next(ap); }
      int n = __format_unsigned(v, digits, 16, conv == 'X');
      __emit_padded(to_stream, buf, cap, &pos, digits, n, width, zero, left);
    } else if (conv == 'o') {
      unsigned long v;
      if (longmod) { v = *(unsigned long *)__va_next(ap); }
      else { v = (unsigned long)(unsigned int)*(int *)__va_next(ap); }
      int n = __format_unsigned(v, digits, 8, 0);
      __emit_padded(to_stream, buf, cap, &pos, digits, n, width, zero, left);
    } else if (conv == 'c') {
      int v = *(int *)__va_next(ap);
      __emit(to_stream, buf, cap, &pos, v);
    } else if (conv == 's') {
      char *s = *(char **)__va_next(ap);
      int len = (int)strlen(s);
      if (prec >= 0 && len > prec) { len = prec; }
      __emit_padded(to_stream, buf, cap, &pos, s, len, width, 0, left);
    } else if (conv == 'p') {
      void *p = *(void **)__va_next(ap);
      long cookie = __sulong_format_pointer(p);
      digits[0] = '0';
      digits[1] = 'x';
      int n = 2 + __format_unsigned((unsigned long)cookie, digits + 2, 16, 0);
      __emit_padded(to_stream, buf, cap, &pos, digits, n, width, 0, left);
    } else if (conv == 'f' || conv == 'F' || conv == 'e' || conv == 'E' ||
               conv == 'g' || conv == 'G') {
      double v = *(double *)__va_next(ap);
      __format_float(to_stream, buf, cap, &pos, v, conv, prec, width, zero,
                     left);
    } else {
      __emit(to_stream, buf, cap, &pos, '%');
      __emit(to_stream, buf, cap, &pos, conv);
    }
  }
  if (!to_stream) {
    if (cap > 0) {
      size_t end = pos;
      if (end >= cap) { end = cap - 1; }
      buf[end] = '\0';
    }
  }
  return (int)pos;
}

int printf(const char *fmt, ...) {
  struct __varargs ap;
  __va_start(&ap);
  int n = __vformat(1, 0, 0, fmt, &ap);
  __va_end(&ap);
  return n;
}

int fprintf(FILE *f, const char *fmt, ...) {
  (void)f;
  struct __varargs ap;
  __va_start(&ap);
  int n = __vformat(1, 0, 0, fmt, &ap);
  __va_end(&ap);
  return n;
}

int sprintf(char *buf, const char *fmt, ...) {
  struct __varargs ap;
  __va_start(&ap);
  int n = __vformat(0, buf, (size_t)-1, fmt, &ap);
  __va_end(&ap);
  return n;
}

int snprintf(char *buf, size_t size, const char *fmt, ...) {
  struct __varargs ap;
  __va_start(&ap);
  int n = __vformat(0, buf, size, fmt, &ap);
  __va_end(&ap);
  return n;
}

/* ---------------- stdio: the scanf engine ---------------- */

int __scan_skip_space(FILE *f) {
  int c = __sulong_read_char(f);
  while (c >= 0 && isspace(c)) { c = __sulong_read_char(f); }
  return c;
}

int __vscan(FILE *f, const char *fmt, va_list ap) {
  int assigned = 0;
  size_t i = 0;
  while (fmt[i] != '\0') {
    char fc = fmt[i];
    if (isspace((unsigned char)fc)) {
      int c = __scan_skip_space(f);
      __sulong_unread_char(c);
      i = i + 1;
      continue;
    }
    if (fc != '%') {
      int c = __sulong_read_char(f);
      if (c != fc) { __sulong_unread_char(c); return assigned; }
      i = i + 1;
      continue;
    }
    i = i + 1;
    int longmod = 0;
    while (fmt[i] == 'l' || fmt[i] == 'z' || fmt[i] == 'h') {
      if (fmt[i] == 'l' || fmt[i] == 'z') { longmod = 1; }
      i = i + 1;
    }
    char conv = fmt[i];
    i = i + 1;
    if (conv == 'd' || conv == 'i' || conv == 'u') {
      int c = __scan_skip_space(f);
      int negative = 0;
      if (c == '-') { negative = 1; c = __sulong_read_char(f); }
      else if (c == '+') { c = __sulong_read_char(f); }
      if (!(c >= '0' && c <= '9')) { __sulong_unread_char(c); return assigned; }
      long value = 0;
      while (c >= '0' && c <= '9') {
        value = value * 10 + (c - '0');
        c = __sulong_read_char(f);
      }
      __sulong_unread_char(c);
      if (negative) { value = -value; }
      if (longmod) {
        long *dest = *(long **)__va_next(ap);
        *dest = value;
      } else {
        int *dest = *(int **)__va_next(ap);
        *dest = (int)value;
      }
      assigned = assigned + 1;
    } else if (conv == 'f' || conv == 'g' || conv == 'e') {
      int c = __scan_skip_space(f);
      char numbuf[64];
      int n = 0;
      while (c >= 0 && n < 63 &&
             (isdigit(c) || c == '-' || c == '+' || c == '.' || c == 'e' ||
              c == 'E')) {
        numbuf[n] = (char)c;
        n = n + 1;
        c = __sulong_read_char(f);
      }
      __sulong_unread_char(c);
      if (n == 0) { return assigned; }
      numbuf[n] = '\0';
      double value = atof(numbuf);
      if (longmod) {
        double *dest = *(double **)__va_next(ap);
        *dest = value;
      } else {
        float *dest = *(float **)__va_next(ap);
        *dest = (float)value;
      }
      assigned = assigned + 1;
    } else if (conv == 's') {
      int c = __scan_skip_space(f);
      if (c < 0) { return assigned; }
      char *out = *(char **)__va_next(ap);
      int n = 0;
      while (c >= 0 && !isspace(c)) {
        out[n] = (char)c;
        n = n + 1;
        c = __sulong_read_char(f);
      }
      __sulong_unread_char(c);
      out[n] = '\0';
      assigned = assigned + 1;
    } else if (conv == 'c') {
      int c = __sulong_read_char(f);
      if (c < 0) { return assigned; }
      char *dest = *(char **)__va_next(ap);
      *dest = (char)c;
      assigned = assigned + 1;
    } else {
      return assigned;
    }
  }
  return assigned;
}

int scanf(const char *fmt, ...) {
  struct __varargs ap;
  __va_start(&ap);
  int n = __vscan(stdin, fmt, &ap);
  __va_end(&ap);
  return n;
}

int fscanf(FILE *f, const char *fmt, ...) {
  struct __varargs ap;
  __va_start(&ap);
  int n = __vscan(f, fmt, &ap);
  __va_end(&ap);
  return n;
}
|}
