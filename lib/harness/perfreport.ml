(** Formatting for the performance experiments: start-up (§4.2), warm-up
    (Fig. 15) and peak performance (Fig. 16). *)

(* ---------------- start-up ---------------- *)

let startup_table () : Table.t =
  let ms = Measure.measure_bench Benchprogs.hello in
  let rows = Simulate.startup ms in
  let t =
    Table.create
      ~title:
        "Start-up cost on \"Hello, World!\" (paper: Sulong just over 600 ms, \
         Valgrind about 500 ms, ASan under 10 ms)"
      ~header:[ "tool"; "start-up (ms)" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  List.iter
    (fun (r : Simulate.startup_row) ->
      Table.add_row t [ r.Simulate.su_tool; Printf.sprintf "%.1f" r.Simulate.su_ms ])
    rows;
  t

(* ---------------- warm-up (Fig. 15) ---------------- *)

let warmup_report ?(duration_s = 30) () : string =
  let ms = Measure.measure_bench Benchprogs.meteor in
  let w = Simulate.warmup ~duration_s ms in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Figure 15: warm-up on meteor (iterations completed per second).\n\
        First Safe Sulong iteration completed at %.1f s; %d functions \
        compiled.\n"
       w.Simulate.wr_first_iteration_s
       (List.length w.Simulate.wr_compiles));
  let series =
    List.map
      (fun (s : Simulate.warmup_series) ->
        {
          Chart.name = s.Simulate.ws_tool;
          points =
            List.map
              (fun (sec, n) -> (float_of_int sec, float_of_int n))
              s.Simulate.ws_points;
        })
      w.Simulate.wr_series
  in
  Buffer.add_string buf (Chart.line_chart ~title:"iterations/s over time" series);
  Buffer.add_string buf "Graal compilations (time s: function):\n";
  List.iter
    (fun (t, f) -> Buffer.add_string buf (Printf.sprintf "  %5.1f  %s\n" t f))
    w.Simulate.wr_compiles;
  (* the numeric series, like the paper's plotted points *)
  List.iter
    (fun (s : Simulate.warmup_series) ->
      Buffer.add_string buf (Printf.sprintf "%-12s" s.Simulate.ws_tool);
      List.iter
        (fun (_, n) -> Buffer.add_string buf (Printf.sprintf " %4d" n))
        s.Simulate.ws_points;
      Buffer.add_char buf '\n')
    w.Simulate.wr_series;
  Buffer.contents buf

(* ---------------- peak (Fig. 16) ---------------- *)

let peak_rows ?(seed = 7) () : Simulate.peak_row list * Simulate.peak_row =
  let rng = Prng.create seed in
  let rows =
    List.map (fun b -> Simulate.peak ~rng (Measure.measure_bench b))
      Benchprogs.perf_suite
  in
  let binarytrees = Simulate.peak ~rng (Measure.measure_bench Benchprogs.binarytrees) in
  (rows, binarytrees)

let peak_table (rows : Simulate.peak_row list) (bt : Simulate.peak_row) : Table.t =
  let t =
    Table.create
      ~title:
        "Figure 16: execution time relative to Clang -O0 (median of 10 runs; \
         lower is better).  Valgrind is reported as a slowdown factor, as \
         in the paper's text; binarytrees is reported separately."
      ~header:
        [ "benchmark"; "Clang -O0"; "Clang -O3"; "ASan -O0"; "Safe Sulong";
          "Valgrind x" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ] ()
  in
  let fmt (b : Stats.boxplot) = Printf.sprintf "%.2f" b.Stats.med in
  List.iter
    (fun (r : Simulate.peak_row) ->
      Table.add_row t
        [
          r.Simulate.pk_bench;
          fmt r.Simulate.pk_clang_o0;
          fmt r.Simulate.pk_clang_o3;
          fmt r.Simulate.pk_asan;
          fmt r.Simulate.pk_sulong;
          Printf.sprintf "%.1f" r.Simulate.pk_valgrind_slowdown;
        ])
    (rows @ [ bt ]);
  t

let peak_boxplots (rows : Simulate.peak_row list) : string =
  let buf = Buffer.create 2048 in
  let hi =
    List.fold_left
      (fun acc (r : Simulate.peak_row) ->
        Float.max acc r.Simulate.pk_asan.Stats.high)
      1.0 rows
    +. 0.2
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Box plots (scale 0 .. %.1fx Clang -O0; '=' box, 'M' median):\n" hi);
  List.iter
    (fun (r : Simulate.peak_row) ->
      Buffer.add_string buf (Printf.sprintf "%-14s\n" r.Simulate.pk_bench);
      List.iter
        (fun (name, b) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-12s |%s|\n" name
               (Chart.boxplot_line ~width:56 ~lo:0.0 ~hi b)))
        [
          ("Clang -O0", r.Simulate.pk_clang_o0);
          ("Clang -O3", r.Simulate.pk_clang_o3);
          ("ASan -O0", r.Simulate.pk_asan);
          ("Safe Sulong", r.Simulate.pk_sulong);
        ])
    rows;
  Buffer.contents buf

let print_peak () =
  let rows, bt = peak_rows () in
  Table.print (peak_table rows bt);
  print_string (peak_boxplots rows);
  (rows, bt)
