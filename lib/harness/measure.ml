(** Run the performance benchmarks under every engine and price the
    resulting dynamic profiles with [Costmodel], producing the
    [Simulate.measurement] consumed by the paper's three time-domain
    experiments (start-up, warm-up, peak).  Lives in the harness layer so
    that [lib/jit] — which the tiered engine itself links — stays free of
    [Engine]/[Corpus] dependencies. *)

let profile_exn = function
  | Some p -> p
  | None -> failwith "measure: engine did not produce a profile"

(** Run [src] under all engines once and price the profiles. *)
let measure ?(argv = [ "bench" ]) ?(input = "") ~name (src : string) :
    Simulate.measurement =
  let run tool = Engine.run ~argv ~input ~step_limit:500_000_000 tool src in
  let o0 = run (Engine.Clang Pipeline.O0) in
  let o3 = run (Engine.Clang Pipeline.O3) in
  let asan_r = run (Engine.Asan Pipeline.O0) in
  let vg_r = run (Engine.Valgrind Pipeline.O0) in
  let sulong_r = run Engine.Safe_sulong in
  (* Safe Sulong compiled tier: interpret the safe-jit-optimized module
     to measure what Graal-compiled code would execute. *)
  let compiled_m = Loader.load_program src in
  ignore (Pipeline.safe_jit compiled_m);
  Verify.verify compiled_m;
  let compiled_st = Interp.create ~input compiled_m in
  let compiled_run = Interp.run ~argv compiled_st in
  (match compiled_run.Interp.error with
  | Some (_, msg) -> failwith ("measure: compiled-tier run failed: " ^ msg)
  | None -> ());
  let interp_profile = profile_exn sulong_r.Engine.managed_profile in
  let sulong_interp_fns =
    Hashtbl.fold
      (fun fname c acc ->
        let ops = Hotness.total_ops c in
        if ops + c.Interp.c_calls = 0 then acc
        else (fname, Costmodel.sulong_interp_fn_cycles c, ops) :: acc)
      interp_profile.Interp.funcs []
  in
  let sulong_compiled_fns =
    Hashtbl.fold
      (fun fname c acc ->
        (fname, Costmodel.sulong_compiled_fn_cycles c) :: acc)
      compiled_run.Interp.run_profile.Interp.funcs []
  in
  let static_sizes =
    List.map
      (fun (f : Irfunc.t) -> (f.Irfunc.name, Irfunc.instr_count f))
      compiled_m.Irmod.funcs
  in
  {
    Simulate.ms_name = name;
    clang_o0 = Costmodel.clang_cycles (profile_exn o0.Engine.native_profile);
    clang_o3 = Costmodel.clang_cycles (profile_exn o3.Engine.native_profile);
    asan = Costmodel.asan_cycles (profile_exn asan_r.Engine.native_profile);
    valgrind = Costmodel.valgrind_cycles (profile_exn vg_r.Engine.native_profile);
    valgrind_translation =
      Costmodel.valgrind_translation_cycles
        (profile_exn vg_r.Engine.native_profile);
    sulong_interp_fns;
    sulong_compiled_fns;
    sulong_alloc =
      Costmodel.sulong_alloc_cycles
        ~allocs:interp_profile.Interp.p_allocs
        ~bytes:interp_profile.Interp.p_alloc_bytes;
    static_sizes;
    sulong_module_instrs = Irmod.instr_count compiled_m;
  }

let measure_bench (b : Benchprogs.bench) : Simulate.measurement =
  measure ~name:b.Benchprogs.b_name b.Benchprogs.b_source
