(** The guest profiler: exact per-function and per-block attribution of
    managed steps (and wall time) for the C program under execution.

    The engine already pays for one precise clock — every executed
    instruction bumps [st.steps] at a charge site, in both the
    interpreter and the closure-compiled tier.  The profiler piggybacks
    on it with *delta attribution*: instead of touching the profile per
    instruction, the engine notifies it only at control events (function
    enter/leave, basic-block entry), and each notification flushes
    [steps - last_steps] into the node for the current guest stack and
    into the current block's stat.  Between two notifications every
    charged step belongs to exactly one (stack, block) pair, so the
    books balance to the step counter *exactly*:

      sum over folded stacks of self-steps = [st.steps]

    — the conservation law pinned by test_obs/test_tier.  Wall time is
    sampled (gettimeofday) only at function enter/leave, never at block
    granularity, keeping the per-block hook a handful of integer ops.

    The same [t] is shared by tier-1 and tier-2: the interpreter calls
    [enter]/[leave]/[note_block] from [call_function]/[exec_instrs], and
    the closure compiler captures the handle at compile time, wrapping
    each block closure and each inlined call with the same hooks — so
    per-function attribution is identical whichever tier executed the
    code (pinned by test_tier). *)

type blockstat = {
  bs_func : string;
  bs_label : string;
  mutable bs_steps : int;
}

(** One node per distinct guest call stack ([pn_name] is the innermost
    frame; the path to the root spells the stack). *)
type node = {
  pn_name : string;
  pn_children : (string, node) Hashtbl.t;
  mutable pn_self_steps : int;  (** steps charged with this exact stack *)
  mutable pn_self_s : float;  (** wall seconds, same attribution *)
  mutable pn_calls : int;
}

type frame = { fr_node : node; fr_saved_block : blockstat option }

type t = {
  pr_root : node;
  mutable pr_stack : frame list;  (** enclosing frames; current is [pr_cur] *)
  mutable pr_cur : node;
  mutable pr_cur_block : blockstat option;
  mutable pr_last_steps : int;  (** step counter at the last flush *)
  mutable pr_last_s : float;  (** wall clock at the last time flush *)
  pr_blocks : (string, blockstat) Hashtbl.t;  (** key: "func:label" *)
}

let fresh_node name =
  {
    pn_name = name;
    pn_children = Hashtbl.create 4;
    pn_self_steps = 0;
    pn_self_s = 0.0;
    pn_calls = 0;
  }

(** Steps charged before [main] (global initializers) or between guest
    frames land on the root node under this name. *)
let root_name = "(engine)"

let create () : t =
  let root = fresh_node root_name in
  {
    pr_root = root;
    pr_stack = [];
    pr_cur = root;
    pr_cur_block = None;
    pr_last_steps = 0;
    pr_last_s = Unix.gettimeofday ();
    pr_blocks = Hashtbl.create 64;
  }

(* Flush the steps accumulated since the last notification into the
   current stack node and the current block. *)
let flush_steps (p : t) ~(steps : int) : unit =
  let d = steps - p.pr_last_steps in
  if d <> 0 then begin
    p.pr_cur.pn_self_steps <- p.pr_cur.pn_self_steps + d;
    (match p.pr_cur_block with
    | Some b -> b.bs_steps <- b.bs_steps + d
    | None -> ());
    p.pr_last_steps <- steps
  end

let flush_time (p : t) : unit =
  let now = Unix.gettimeofday () in
  p.pr_cur.pn_self_s <- p.pr_cur.pn_self_s +. (now -. p.pr_last_s);
  p.pr_last_s <- now

(** Guest call: push [name] onto the profile stack.  [steps] is the
    engine step counter at the call (the call instruction's own charge
    is attributed to the caller, matching both tiers' charge order). *)
let enter (p : t) ~(steps : int) (name : string) : unit =
  flush_steps p ~steps;
  flush_time p;
  let child =
    match Hashtbl.find_opt p.pr_cur.pn_children name with
    | Some n -> n
    | None ->
      let n = fresh_node name in
      Hashtbl.replace p.pr_cur.pn_children name n;
      n
  in
  child.pn_calls <- child.pn_calls + 1;
  p.pr_stack <- { fr_node = p.pr_cur; fr_saved_block = p.pr_cur_block } :: p.pr_stack;
  p.pr_cur <- child;
  (* No steps are charged between a call and its entry block's note, so
     clearing the block here loses nothing from the block books. *)
  p.pr_cur_block <- None

(** Guest return: pop one frame, restoring the caller's current block
    (the code after the call keeps charging the caller's block). *)
let leave (p : t) ~(steps : int) : unit =
  flush_steps p ~steps;
  flush_time p;
  match p.pr_stack with
  | fr :: rest ->
    p.pr_cur <- fr.fr_node;
    p.pr_cur_block <- fr.fr_saved_block;
    p.pr_stack <- rest
  | [] -> ()

(** Find-or-create the stat for block [label] of [func].  Resolved once
    per block at closure-compile time (tier-2) or per block execution
    (tier-1); [note_block] is the per-entry hot hook. *)
let block_stat (p : t) ~(func : string) ~(label : string) : blockstat =
  let key = func ^ ":" ^ label in
  match Hashtbl.find_opt p.pr_blocks key with
  | Some b -> b
  | None ->
    let b = { bs_func = func; bs_label = label; bs_steps = 0 } in
    Hashtbl.replace p.pr_blocks key b;
    b

(** Basic-block entry: steps since the last event belong to the block we
    are leaving; subsequent charges (including the edge's phi copies
    already charged by the predecessor before the jump) go to [bs]. *)
let note_block (p : t) ~(steps : int) (bs : blockstat) : unit =
  flush_steps p ~steps;
  p.pr_cur_block <- Some bs

(** End of run (normal exit, managed error, or step-limit timeout):
    flush the tail and unwind to the root so the books close with the
    final counter value even when the guest stack never returned. *)
let finalize (p : t) ~(steps : int) : unit =
  flush_steps p ~steps;
  flush_time p;
  p.pr_stack <- [];
  p.pr_cur <- p.pr_root;
  p.pr_cur_block <- None

(** [Interp.reset] rewinds the step counter to zero for a fresh run on
    the same state; re-arm the deltas without discarding what previous
    runs accumulated (bench iterations sum across runs). *)
let rewind (p : t) : unit =
  p.pr_stack <- [];
  p.pr_cur <- p.pr_root;
  p.pr_cur_block <- None;
  p.pr_last_steps <- 0;
  p.pr_last_s <- Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic child order for rendering. *)
let children_sorted (n : node) : node list =
  Hashtbl.fold (fun _ c acc -> c :: acc) n.pn_children []
  |> List.sort (fun a b -> compare a.pn_name b.pn_name)

(** Conservation check: total self-steps across every stack, root
    included.  Equals the engine's final step counter after
    [finalize]. *)
let total_steps (p : t) : int =
  let rec go n =
    Hashtbl.fold (fun _ c acc -> acc + go c) n.pn_children n.pn_self_steps
  in
  go p.pr_root

(** Total steps attributed at block granularity (excludes charges made
    with no current block, e.g. global initializers and call/return
    glue attributed only at function level). *)
let total_block_steps (p : t) : int =
  Hashtbl.fold (fun _ b acc -> acc + b.bs_steps) p.pr_blocks 0

(** Flamegraph-compatible folded stacks: one [a;b;c N] line per stack
    with nonzero self-steps, feedable straight into [flamegraph.pl] or
    speedscope.  The root's own line (engine glue outside any guest
    frame) renders as [(engine) N]. *)
let folded (p : t) : string =
  let b = Buffer.create 1024 in
  let rec go path n =
    let path = if path = "" then n.pn_name else path ^ ";" ^ n.pn_name in
    if n.pn_self_steps > 0 then
      Buffer.add_string b (Printf.sprintf "%s %d\n" path n.pn_self_steps);
    List.iter (go path) (children_sorted n)
  in
  go "" p.pr_root;
  Buffer.contents b

(* Per-function aggregation across all stacks. *)
type func_stat = {
  fs_name : string;
  fs_steps : int;
  fs_s : float;
  fs_calls : int;
}

let by_function (p : t) : func_stat list =
  let tbl : (string, int * float * int) Hashtbl.t = Hashtbl.create 32 in
  let rec go n =
    let s, t, c =
      match Hashtbl.find_opt tbl n.pn_name with
      | Some (s, t, c) -> (s, t, c)
      | None -> (0, 0.0, 0)
    in
    Hashtbl.replace tbl n.pn_name
      (s + n.pn_self_steps, t +. n.pn_self_s, c + n.pn_calls);
    Hashtbl.iter (fun _ c -> go c) n.pn_children
  in
  go p.pr_root;
  Hashtbl.fold
    (fun name (s, t, c) acc ->
      { fs_name = name; fs_steps = s; fs_s = t; fs_calls = c } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.fs_steps a.fs_steps with
         | 0 -> compare a.fs_name b.fs_name
         | c -> c)

(** Human-readable top-N table: self steps, share, calls, self wall
    time per guest function, plus the hottest basic blocks. *)
let top_table ?(n = 10) (p : t) : string =
  let total = total_steps p in
  let total_f = float_of_int (max 1 total) in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "guest profile: %d steps total\n" total);
  Buffer.add_string b
    (Printf.sprintf "  %-28s %14s %6s %10s %10s\n" "function" "self steps"
       "%" "calls" "self ms");
  List.iteri
    (fun i fs ->
      if i < n && fs.fs_steps > 0 then
        Buffer.add_string b
          (Printf.sprintf "  %-28s %14d %5.1f%% %10d %10.2f\n" fs.fs_name
             fs.fs_steps
             (100.0 *. float_of_int fs.fs_steps /. total_f)
             fs.fs_calls (fs.fs_s *. 1e3)))
    (by_function p);
  let blocks =
    Hashtbl.fold (fun _ bs acc -> bs :: acc) p.pr_blocks []
    |> List.filter (fun bs -> bs.bs_steps > 0)
    |> List.sort (fun a b ->
           match compare b.bs_steps a.bs_steps with
           | 0 -> compare (a.bs_func, a.bs_label) (b.bs_func, b.bs_label)
           | c -> c)
  in
  if blocks <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "  %-28s %14s %6s\n" "hot blocks" "self steps" "%");
    List.iteri
      (fun i bs ->
        if i < n then
          Buffer.add_string b
            (Printf.sprintf "  %-28s %14d %5.1f%%\n"
               (bs.bs_func ^ ":" ^ bs.bs_label)
               bs.bs_steps
               (100.0 *. float_of_int bs.bs_steps /. total_f)))
      blocks
  end;
  Buffer.contents b

(** JSON form: the stack tree plus the per-block table.  Numbers only,
    so no float-formatting hazards beyond [secs], rendered with [%g]
    guarded by the metrics JSON float rules. *)
let to_json (p : t) : string =
  let b = Buffer.create 4096 in
  let rec node n =
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"self_steps\":%d,\"self_s\":%s,\"calls\":%d,\"children\":["
         (Metrics.json_escape n.pn_name)
         n.pn_self_steps
         (Metrics.json_float n.pn_self_s)
         n.pn_calls);
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        node c)
      (children_sorted n);
    Buffer.add_string b "]}"
  in
  Buffer.add_string b "{\"total_steps\":";
  Buffer.add_string b (string_of_int (total_steps p));
  Buffer.add_string b ",\"tree\":";
  node p.pr_root;
  Buffer.add_string b ",\"blocks\":[";
  let blocks =
    Hashtbl.fold (fun _ bs acc -> bs :: acc) p.pr_blocks []
    |> List.sort (fun a b ->
           compare (a.bs_func, a.bs_label) (b.bs_func, b.bs_label))
  in
  List.iteri
    (fun i bs ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"func\":\"%s\",\"label\":\"%s\",\"steps\":%d}"
           (Metrics.json_escape bs.bs_func)
           (Metrics.json_escape bs.bs_label)
           bs.bs_steps))
    blocks;
  Buffer.add_string b "]}";
  Buffer.contents b
