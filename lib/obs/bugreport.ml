(** ASan-style bug reports with C source provenance.

    The interpreter fills one of these in when a managed error surfaces:
    the error kind and message come from [Merror], the faulting
    file:line and the call stack come from the [Srcloc] markers the
    front end threads into the IR (statement granularity), and the
    detail lines restate the access-vs-object-bounds arithmetic that
    makes the paper's reports (§6.1) actionable.

    This module is pure data + rendering so that [lib/obs] stays
    dependency-free; the interpreter owns the conversion from its
    runtime types. *)

type frame = {
  bf_func : string;
  bf_file : string;
  bf_line : int;  (** 0 when no Srcloc was executed yet in this frame *)
  bf_col : int;
}

type t = {
  br_kind : string;  (** [Merror.category_name], e.g. "out-of-bounds" *)
  br_message : string;
  br_detail : string list;
      (** access offset vs object bounds, storage class, ... *)
  br_stack : frame list;  (** innermost first *)
  br_events : string list;
      (** the engine flight recorder's ring at detection time
          ([Events.to_lines]), oldest first: the last-N tier-up / deopt
          / inline / cache decisions that led to this bug *)
}

let frame_loc (f : frame) : string =
  if f.bf_line <= 0 then f.bf_file
  else Printf.sprintf "%s:%d:%d" f.bf_file f.bf_line f.bf_col

(** The faulting source position: the innermost frame that has one. *)
let fault_frame (r : t) : frame option =
  List.find_opt (fun f -> f.bf_line > 0) r.br_stack

let render (r : t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "==Safe Sulong== ERROR: %s: %s\n" r.br_kind r.br_message);
  (match fault_frame r with
  | Some f ->
    Buffer.add_string b
      (Printf.sprintf "    at %s in %s\n" (frame_loc f) f.bf_func)
  | None -> ());
  List.iter (fun line -> Buffer.add_string b ("  " ^ line ^ "\n")) r.br_detail;
  List.iteri
    (fun i f ->
      Buffer.add_string b
        (Printf.sprintf "    #%d %s %s\n" i f.bf_func (frame_loc f)))
    r.br_stack;
  if r.br_events <> [] then begin
    Buffer.add_string b "  recent engine events:\n";
    List.iter
      (fun line -> Buffer.add_string b ("    " ^ line ^ "\n"))
      r.br_events
  end;
  Buffer.contents b
