(** Process-wide metrics registry: counters, gauges and log2-bucketed
    histograms.

    The registry stays compiled into every build.  Instrumentation sites
    on hot paths guard on a single bool ([enabled], usually captured once
    into a local at setup time), so the disabled cost is one predictable
    branch.  Sites off the hot path may call the helpers unconditionally;
    they are cheap either way.

    Snapshots are plain marshalable data so that sharded runs (difftest
    [--jobs]) can ship a child's registry over a pipe and [merge] it into
    the parent: counters and histograms add, gauges keep the maximum. *)

let enabled = ref false

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(** Bucket [i] counts observations [v] with [2^(i-1) <= v < 2^i] (bucket
    0 counts [v < 1], i.e. zero and negatives). *)
let buckets = 64

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace counters name c;
    c

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    Hashtbl.replace gauges name g;
    g

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; h_count = 0; h_sum = 0.0; h_buckets = Array.make buckets 0 }
    in
    Hashtbl.replace histograms name h;
    h

let add (c : counter) (n : int) = c.c_value <- c.c_value + n
let incr (c : counter) = c.c_value <- c.c_value + 1
let set (g : gauge) (v : float) = g.g_value <- v

let bucket_of (v : float) : int =
  if not (v >= 1.0) then 0
  else begin
    (* index of the highest set bit of floor(v), + 1; values >= 2^62
       saturate into the last bucket *)
    let x = if v >= 4.611686018427387904e18 then Int64.max_int else Int64.of_float v in
    let rec go i x = if x = 0L then i else go (i + 1) (Int64.shift_right_logical x 1) in
    min (buckets - 1) (go 0 x)
  end

let observe (h : histogram) (v : float) =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let observe_int (h : histogram) (v : int) = observe h (float_of_int v)

(** Run [f] and record the elapsed time in microseconds into [name]
    when metrics are enabled (the histogram is only created on use). *)
let time (name : string) (f : unit -> 'a) : 'a =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let finally () =
      observe (histogram name) ((Unix.gettimeofday () -. t0) *. 1e6)
    in
    Fun.protect ~finally f
  end

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset histograms

(* ------------------------------------------------------------------ *)
(* Snapshots and cross-process merging                                 *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_histograms : (string * int * float * int array) list;
}

let snapshot () : snapshot =
  {
    sn_counters =
      Hashtbl.fold (fun _ c acc -> (c.c_name, c.c_value) :: acc) counters []
      |> List.sort compare;
    sn_gauges =
      Hashtbl.fold (fun _ g acc -> (g.g_name, g.g_value) :: acc) gauges []
      |> List.sort compare;
    sn_histograms =
      Hashtbl.fold
        (fun _ h acc -> (h.h_name, h.h_count, h.h_sum, Array.copy h.h_buckets) :: acc)
        histograms []
      |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b);
  }

(** Fold [s] into the live registry: counters and histogram buckets add,
    gauges keep the max (shard-aggregate semantics). *)
let merge (s : snapshot) : unit =
  List.iter (fun (n, v) -> add (counter n) v) s.sn_counters;
  List.iter (fun (n, v) -> let g = gauge n in if v > g.g_value then g.g_value <- v)
    s.sn_gauges;
  List.iter
    (fun (n, count, sum, bs) ->
      let h = histogram n in
      h.h_count <- h.h_count + count;
      h.h_sum <- h.h_sum +. sum;
      Array.iteri (fun i v -> h.h_buckets.(i) <- h.h_buckets.(i) + v) bs)
    s.sn_histograms

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(** JSON-safe float rendering.  JSON has no literal for NaN or the
    infinities, and [float_str] happily emits "nan"/"inf" (a gauge set
    from a 0/0 rate, a histogram sum that overflowed), which no parser
    accepts.  Non-finite values render as [null]; finite ones defer to
    [float_str]. *)
let json_float v =
  match Float.classify_float v with
  | Float.FP_nan | Float.FP_infinite -> "null"
  | _ -> float_str v

(** Estimate the [q]-quantile (0 <= q <= 1) of a log2-bucketed
    histogram by linear interpolation inside the bucket holding the
    target rank: bucket 0 spans [0, 1), bucket i spans [2^(i-1), 2^i).
    Coarse by construction (the bucket bounds are exact, positions
    inside a bucket are assumed uniform), but enough to read a latency
    histogram without a plotting step. *)
let quantile ~(count : int) (bs : int array) (q : float) : float =
  if count <= 0 then 0.0
  else begin
    let target = q *. float_of_int count in
    let cum = ref 0.0 and result = ref 0.0 and found = ref false in
    Array.iteri
      (fun i v ->
        if (not !found) && v > 0 then begin
          let c = float_of_int v in
          if !cum +. c >= target then begin
            let lo = if i = 0 then 0.0 else Float.pow 2.0 (float_of_int (i - 1)) in
            let hi = Float.pow 2.0 (float_of_int i) in
            let frac = Float.max 0.0 (Float.min 1.0 ((target -. !cum) /. c)) in
            result := lo +. ((hi -. lo) *. frac);
            found := true
          end;
          cum := !cum +. c
        end)
      bs;
    !result
  end

let to_text () : string =
  let s = snapshot () in
  let b = Buffer.create 1024 in
  if s.sn_counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-44s %d\n" n v))
      s.sn_counters
  end;
  if s.sn_gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-44s %s\n" n (float_str v)))
      s.sn_gauges
  end;
  if s.sn_histograms <> [] then begin
    Buffer.add_string b "histograms:\n";
    List.iter
      (fun (n, count, sum, bs) ->
        let mean = if count = 0 then 0.0 else sum /. float_of_int count in
        Buffer.add_string b
          (Printf.sprintf "  %-44s count=%d mean=%s p50=%s p90=%s p99=%s\n" n
             count (float_str mean)
             (float_str (quantile ~count bs 0.50))
             (float_str (quantile ~count bs 0.90))
             (float_str (quantile ~count bs 0.99)));
        Array.iteri
          (fun i v ->
            if v > 0 then
              let lo = if i = 0 then 0.0 else Float.pow 2.0 (float_of_int (i - 1)) in
              Buffer.add_string b
                (Printf.sprintf "    [%12s, %12s) %d\n" (float_str lo)
                   (float_str (Float.pow 2.0 (float_of_int i))) v))
          bs)
      s.sn_histograms
  end;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () : string =
  let s = snapshot () in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"counters\":{";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape n) v))
    s.sn_counters;
  Buffer.add_string b "},\"gauges\":{";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape n) (json_float v)))
    s.sn_gauges;
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i (n, count, sum, bs) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":[%s]}"
           (json_escape n) count (json_float sum)
           (json_float (quantile ~count bs 0.50))
           (json_float (quantile ~count bs 0.90))
           (json_float (quantile ~count bs 0.99))
           (String.concat "," (List.map string_of_int (Array.to_list bs)))))
    s.sn_histograms;
  Buffer.add_string b "}}";
  Buffer.contents b
