(** Span/event tracing in Chrome [trace_event] JSON (the format
    chrome://tracing and Perfetto load: an object with a ["traceEvents"]
    array of ["ph"]-tagged events).

    One process-wide sink: [start] installs it, [span]/[instant] emit
    into it, [finish] returns the JSON document and uninstalls.  When no
    sink is installed every call is a no-op, so call sites need no
    guards.  Spans use duration events ("ph":"B"/"E") so nesting is the
    emission order; [span] is exception-safe (the "E" is emitted on the
    error path too, keeping the JSON well formed). *)

type sink = {
  buf : Buffer.t;
  mutable count : int;
  t0 : float;
  pid : int;
}

let sink : sink option ref = ref None

let active () = !sink <> None

let start () =
  sink := Some { buf = Buffer.create 4096; count = 0; t0 = Unix.gettimeofday (); pid = Unix.getpid () }

let ts (s : sink) : int =
  int_of_float ((Unix.gettimeofday () -. s.t0) *. 1e6)

let emit (s : sink) ~(ph : string) ~(name : string) (args : (string * string) list) =
  if s.count > 0 then Buffer.add_char s.buf ',';
  s.count <- s.count + 1;
  Buffer.add_string s.buf
    (Printf.sprintf "\n{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":1"
       (Metrics.json_escape name) ph (ts s) s.pid);
  (match args with
  | [] -> ()
  | args ->
    Buffer.add_string s.buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char s.buf ',';
        Buffer.add_string s.buf
          (Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k) (Metrics.json_escape v)))
      args;
    Buffer.add_char s.buf '}');
  (if ph = "i" then Buffer.add_string s.buf ",\"s\":\"t\"");
  Buffer.add_char s.buf '}'

(** Emit an instant event (a point-in-time marker). *)
let instant ?(args = []) (name : string) =
  match !sink with None -> () | Some s -> emit s ~ph:"i" ~name args

(** Emit a counter sample (ph "C"): [series] maps series names to
    numeric values, which chrome://tracing and Perfetto chart over time
    — the campaign driver emits throughput/in-flight samples this way so
    a long run shows up as a live graph, not just instants. *)
let counter (name : string) (series : (string * float) list) =
  match !sink with
  | None -> ()
  | Some s ->
    if s.count > 0 then Buffer.add_char s.buf ',';
    s.count <- s.count + 1;
    Buffer.add_string s.buf
      (Printf.sprintf
         "\n{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"tid\":1,\"args\":{"
         (Metrics.json_escape name) (ts s) s.pid);
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char s.buf ',';
        Buffer.add_string s.buf
          (Printf.sprintf "\"%s\":%s" (Metrics.json_escape k)
             (Metrics.json_float v)))
      series;
    Buffer.add_string s.buf "}}"

(** Emit a Chrome metadata event ("ph":"M") such as "process_name" or
    "thread_name", attached to an explicit [pid]/[tid] rather than the
    sink's own: the campaign driver labels each forked worker's pid so
    Perfetto shows a "worker N" track instead of a bare number. *)
let metadata ?(tid = 1) ~(pid : int) ~(name : string) (value : string) =
  match !sink with
  | None -> ()
  | Some s ->
    if s.count > 0 then Buffer.add_char s.buf ',';
    s.count <- s.count + 1;
    Buffer.add_string s.buf
      (Printf.sprintf
         "\n{\"name\":\"%s\",\"ph\":\"M\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
         (Metrics.json_escape name) (ts s) pid tid
         (Metrics.json_escape value))

(** Run [f] inside a [name] span. *)
let span ?(args = []) (name : string) (f : unit -> 'a) : 'a =
  match !sink with
  | None -> f ()
  | Some s ->
    emit s ~ph:"B" ~name args;
    Fun.protect f ~finally:(fun () ->
        match !sink with None -> () | Some s -> emit s ~ph:"E" ~name [])

(** Close the sink and return the complete JSON document. *)
let finish () : string =
  match !sink with
  | None -> "{\"traceEvents\":[]}\n"
  | Some s ->
    sink := None;
    Printf.sprintf "{\"traceEvents\":[%s\n]}\n" (Buffer.contents s.buf)

(* ------------------------------------------------------------------ *)
(* Validation: a tiny JSON parser + trace_event schema checks.         *)
(* Used by the @obs alias so an emitter regression fails tier-1.       *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (pos := !pos + String.length word; v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents b
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail "bad \\u escape"
          | Some code ->
            (* keep it simple: only BMP, encoded as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%04x" code));
          pos := !pos + 4
        | Some c -> Buffer.add_char b c; advance ()
        | None -> fail "unterminated escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance (); skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws (); expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance (); skip_ws ();
      if peek () = Some ']' then (advance (); Jarr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Jarr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(** Check that [doc] is a Chrome-loadable trace: valid JSON, a top-level
    ["traceEvents"] array, every event carrying name/ph/ts/pid/tid with
    the right types, and "B"/"E" spans properly nested (LIFO with
    matching names) and fully closed. *)
let validate (doc : string) : (unit, string) result =
  try
    let j = parse_json doc in
    let events =
      match j with
      | Jobj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Jarr evs) -> evs
        | Some _ -> raise (Bad "traceEvents is not an array")
        | None -> raise (Bad "missing traceEvents"))
      | _ -> raise (Bad "top level is not an object")
    in
    let stack = ref [] in
    List.iteri
      (fun i ev ->
        let fields =
          match ev with
          | Jobj f -> f
          | _ -> raise (Bad (Printf.sprintf "event %d is not an object" i))
        in
        let str k =
          match List.assoc_opt k fields with
          | Some (Jstr s) -> s
          | _ -> raise (Bad (Printf.sprintf "event %d: missing string %S" i k))
        in
        let num k =
          match List.assoc_opt k fields with
          | Some (Jnum v) -> v
          | _ -> raise (Bad (Printf.sprintf "event %d: missing number %S" i k))
        in
        let name = str "name" in
        let ph = str "ph" in
        ignore (num "ts");
        ignore (num "pid");
        ignore (num "tid");
        match ph with
        | "B" -> stack := name :: !stack
        | "E" -> (
          match !stack with
          | top :: rest when top = name -> stack := rest
          | top :: _ ->
            raise (Bad (Printf.sprintf "event %d: E %S closes B %S" i name top))
          | [] -> raise (Bad (Printf.sprintf "event %d: E %S without B" i name)))
        | "i" | "X" | "C" | "M" -> ()
        | _ -> raise (Bad (Printf.sprintf "event %d: unknown ph %S" i ph)))
      events;
    (match !stack with
    | [] -> ()
    | top :: _ -> raise (Bad (Printf.sprintf "unclosed span %S" top)));
    Ok ()
  with Bad msg -> Error msg
