(** The engine flight recorder: an always-on, fixed-size ring buffer of
    structured engine decisions.

    The paper's pitch is diagnosability; a bug report that says *what*
    went wrong is only half the story when a tiered engine decided *how*
    the faulting code was running.  Every consequential engine decision
    — tier-up with the hotness numbers that triggered it, deopt with the
    managed-error kind, OSR entry, inline accept/reject with the cost
    model's inputs, compiled-body cache hit/miss, managed-error raise —
    is recorded here.  The ring is tiny (a few hundred entries), the
    record path is a couple of stores plus a counter bump, and every
    recorded kind is rare by construction (they happen per function or
    per error, never per instruction), so the recorder stays enabled in
    every build and every run.

    Consumers: [Bugreport] embeds [to_lines] in every provenance report,
    difftest attaches the ring to every divergence, and the per-kind
    [Metrics] counters ride the existing snapshot merge so campaign
    workers ship event summaries to the parent for free.

    [mask] suppresses recording during deoptimizing replay
    ([Interp.rerun_for_report]) so the report shows the decisions of the
    run that *found* the bug, not duplicates from the replay. *)

type event =
  | Tier_up of {
      ev_fn : string;
      ev_ops : int;  (** hotness counter (modeled ops) at the decision *)
      ev_invocations : int;
      ev_osr : bool;  (** decided at a loop header, not a call *)
    }
  | Deopt of {
      ev_fn : string;
      ev_kind : string;  (** managed-error category *)
      ev_osr : bool;  (** the discarded frame was OSR-entered *)
    }
  | Osr_enter of { ev_fn : string; ev_block : string }
  | Inline_accept of {
      ev_caller : string;
      ev_callee : string;
      ev_size : int;  (** callee instruction count *)
      ev_budget : int;  (** caller budget remaining before splicing *)
    }
  | Inline_reject of {
      ev_caller : string;
      ev_callee : string;
      ev_size : int;
      ev_budget : int;
      ev_reason : string;
    }
  | Cache_hit of { ev_key : string }
  | Cache_miss of { ev_key : string }
  | Error_raised of { ev_kind : string; ev_msg : string }

type entry = { e_seq : int; e_event : event }

let capacity = 256

let ring : entry option array = Array.make capacity None
let seq = ref 0
let masked = ref false

let kind_name = function
  | Tier_up _ -> "tier_up"
  | Deopt _ -> "deopt"
  | Osr_enter _ -> "osr_enter"
  | Inline_accept _ -> "inline_accept"
  | Inline_reject _ -> "inline_reject"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Error_raised _ -> "error_raised"

(** Record [ev] (a no-op under [mask]).  Also bumps the per-kind
    [events.<kind>] counter unconditionally: these are cold-path sites,
    and the counters are how campaign workers ship event summaries to
    the parent (the snapshot merge adds them up). *)
let record (ev : event) : unit =
  if not !masked then begin
    Metrics.incr (Metrics.counter ("events." ^ kind_name ev));
    ring.(!seq mod capacity) <- Some { e_seq = !seq; e_event = ev };
    incr seq
  end

(** Run [f] with recording suppressed (deoptimizing-replay paths). *)
let mask (f : unit -> 'a) : 'a =
  let saved = !masked in
  masked := true;
  Fun.protect ~finally:(fun () -> masked := saved) f

(** Clear the ring.  [Difftest.run_seed] resets per seed so the ring a
    divergence ships is exactly the decisions of that seed's runs,
    independent of what ran before it in the chunk. *)
let reset () : unit =
  Array.fill ring 0 capacity None;
  seq := 0

(** Entries still in the ring, oldest first. *)
let recent () : entry list =
  let n = !seq in
  let first = max 0 (n - capacity) in
  let acc = ref [] in
  for i = n - 1 downto first do
    match ring.(i mod capacity) with
    | Some e when e.e_seq = i -> acc := e :: !acc
    | _ -> ()
  done;
  !acc

let render (e : entry) : string =
  let body =
    match e.e_event with
    | Tier_up t ->
      Printf.sprintf "%-14s %s (ops=%d, invocations=%d%s)" "tier-up" t.ev_fn
        t.ev_ops t.ev_invocations
        (if t.ev_osr then ", at loop header" else "")
    | Deopt d ->
      Printf.sprintf "%-14s %s (%s%s)" "deopt" d.ev_fn d.ev_kind
        (if d.ev_osr then ", osr frame" else "")
    | Osr_enter o -> Printf.sprintf "%-14s %s @%s" "osr-enter" o.ev_fn o.ev_block
    | Inline_accept i ->
      Printf.sprintf "%-14s %s <- %s (size=%d, budget=%d)" "inline-accept"
        i.ev_caller i.ev_callee i.ev_size i.ev_budget
    | Inline_reject i ->
      Printf.sprintf "%-14s %s <- %s (size=%d, budget=%d): %s" "inline-reject"
        i.ev_caller i.ev_callee i.ev_size i.ev_budget i.ev_reason
    | Cache_hit c -> Printf.sprintf "%-14s %s" "cache-hit" c.ev_key
    | Cache_miss c -> Printf.sprintf "%-14s %s" "cache-miss" c.ev_key
    | Error_raised r -> Printf.sprintf "%-14s %s: %s" "error" r.ev_kind r.ev_msg
  in
  Printf.sprintf "#%-5d %s" e.e_seq body

(** The ring rendered one line per entry, oldest first — the form
    [Bugreport] and difftest divergences embed. *)
let to_lines () : string list = List.map render (recent ())
