(** The uniform tool driver: compile a C source through the pipeline a
    given tool implies and execute it, returning a comparable outcome.

    | tool           | middle end   | backend fold | libc            | checking                    |
    |----------------|--------------|--------------|-----------------|-----------------------------|
    | Safe Sulong    | none         | no           | managed C libc  | automatic managed checks    |
    | Clang -O0/-O3  | none / UB O3 | yes          | precompiled     | none (the native machine)   |
    | ASan -O0/-O3   | none / UB O3 | yes          | precompiled     | inserted checks+interceptors|
    | Valgrind (-O0/-O3 binaries) | same as Clang | yes | precompiled | dynamic per-access checks   | *)

type tool =
  | Safe_sulong
  | Clang of Pipeline.level
  | Asan of Pipeline.level
  | Valgrind of Pipeline.level

let tool_name = function
  | Safe_sulong -> "Safe Sulong"
  | Clang l -> "Clang " ^ Pipeline.level_name l
  | Asan l -> "ASan " ^ Pipeline.level_name l
  | Valgrind l -> "Valgrind " ^ Pipeline.level_name l

type result = {
  outcome : Outcome.t;
  output : string;
  steps : int;
  managed_profile : Interp.profile option;
  native_profile : Nexec.profile option;
  static_instrs : int;  (** size of the executed module, for cost models *)
}

let default_step_limit = 200_000_000

(** ASan options that the effectiveness experiment ablates. *)
type asan_options = {
  strtok_interceptor : bool;
  quarantine_cap : int;
  fno_common : bool;
}

let default_asan =
  { strtok_interceptor = false; quarantine_cap = 1 lsl 18; fno_common = true }

let run_sulong ~argv ~input ~step_limit ~mementos ~detect_uninit ~tier
    (src : string) : result =
  let m = Loader.load_program src in
  Pipeline.compile_sulong m;
  let st =
    match tier with
    | `Interp -> Interp.create ~step_limit ~mementos ~detect_uninit ~input m
    | `Tiered ->
      (* interpreter + profile-driven closure compiler with deopt; the
         observable behavior is identical to [`Interp] by contract *)
      Interp.create ~step_limit ~mementos ~detect_uninit ~input
        ~tier:(Tier.controller ()) m
  in
  let r = Interp.run ~argv st in
  let outcome =
    if r.Interp.timed_out then Outcome.Timeout
    else
      match r.Interp.error with
      | Some (cat, msg) ->
        Outcome.Detected
          { tool = "Safe Sulong"; kind = Merror.category_name cat; message = msg }
      | None -> Outcome.Finished r.Interp.exit_code
  in
  {
    outcome;
    output = r.Interp.output;
    steps = r.Interp.steps;
    managed_profile = Some r.Interp.run_profile;
    native_profile = None;
    static_instrs = Irmod.instr_count m;
  }

let native_outcome (r : Nexec.run_result) : Outcome.t =
  if r.Nexec.timed_out then Outcome.Timeout
  else
    match (r.Nexec.report, r.Nexec.crash) with
    | Some rep, _ ->
      Outcome.Detected
        { tool = rep.Hooks.tool; kind = rep.Hooks.kind; message = rep.Hooks.message }
    | None, Some (Nexec.Segv addr) -> Outcome.Crashed (Printf.sprintf "SIGSEGV at 0x%Lx" addr)
    | None, Some (Nexec.Trap t) -> Outcome.Crashed t
    | None, None -> Outcome.Finished r.Nexec.exit_code

let wrap_native (m : Irmod.t) (r : Nexec.run_result) ~(promote_crash : string option)
    : result =
  let outcome =
    match (native_outcome r, promote_crash) with
    | Outcome.Crashed what, Some tool ->
      (* Sanitizers catch fatal signals and report them. *)
      Outcome.Detected { tool; kind = "SEGV"; message = what }
    | o, _ -> o
  in
  {
    outcome;
    output = r.Nexec.output;
    steps = r.Nexec.steps;
    managed_profile = None;
    native_profile = Some r.Nexec.run_profile;
    static_instrs = Irmod.instr_count m;
  }

let run_clang_module ?(argv = [ "program" ]) ?(input = "")
    ?(step_limit = default_step_limit) ~level (user : Irmod.t) : result =
  (* [compile_native] rewrites in place; copy so the caller can reuse
     one front-ended module across levels (the differential oracle
     parses once and fans out from here). *)
  let m = Irmod.copy user in
  Pipeline.compile_native ~level m;
  let st = Nexec.create ~step_limit ~input m in
  wrap_native m (Nexec.run ~argv st) ~promote_crash:None

let run_clang ~level ~argv ~input ~step_limit (src : string) : result =
  run_clang_module ~argv ~input ~step_limit ~level (Loader.compile_user src)

let run_asan ~level ~options ~argv ~input ~step_limit (src : string) : result =
  let m = Loader.compile_user src in
  Pipeline.compile_native ~level m;
  (* Instrumentation attaches to whatever accesses survived compilation. *)
  Asan.instrument m;
  Verify.verify m;
  let mem = Mem.create () in
  let alloc = Alloc.create mem in
  let _asan, hooks =
    Asan.make ~quarantine_cap:options.quarantine_cap
      ~strtok_interceptor:options.strtok_interceptor
      ~fno_common:options.fno_common ~mem ~alloc ()
  in
  let st = Nexec.create ~hooks ~global_gap:32 ~step_limit ~input ~mem ~alloc m in
  wrap_native m (Nexec.run ~argv st) ~promote_crash:(Some "AddressSanitizer")

let run_valgrind ~level ~argv ~input ~step_limit (src : string) : result =
  let m = Loader.compile_user src in
  Pipeline.compile_native ~level m;
  let mem = Mem.create () in
  let alloc = Alloc.create mem in
  let _mc, hooks = Memcheck.make ~mem ~alloc () in
  let st = Nexec.create ~hooks ~step_limit ~input ~mem ~alloc m in
  wrap_native m (Nexec.run ~argv st) ~promote_crash:(Some "Memcheck")

(** Run [src] under [tool].  [tier] selects the Safe Sulong execution
    configuration: the interpreter alone (default) or the real two-tier
    engine (interpreter + closure compiler); other tools ignore it. *)
let run ?(argv = [ "program" ]) ?(input = "") ?(step_limit = default_step_limit)
    ?(mementos = true) ?(detect_uninit = false) ?(asan_options = default_asan)
    ?(tier = `Interp) (tool : tool) (src : string) : result =
  match tool with
  | Safe_sulong ->
    run_sulong ~argv ~input ~step_limit ~mementos ~detect_uninit ~tier src
  | Clang level -> run_clang ~level ~argv ~input ~step_limit src
  | Asan level ->
    run_asan ~level ~options:asan_options ~argv ~input ~step_limit src
  | Valgrind level -> run_valgrind ~level ~argv ~input ~step_limit src

(** All configurations the effectiveness experiment compares. *)
let comparison_tools : tool list =
  [
    Safe_sulong;
    Asan Pipeline.O0;
    Asan Pipeline.O3;
    Valgrind Pipeline.O0;
    Valgrind Pipeline.O3;
  ]
