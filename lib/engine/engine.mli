(** The uniform tool driver: compile a C source through the pipeline a
    given tool implies and execute it.

    | tool           | middle end   | backend fold | libc            | checking                    |
    |----------------|--------------|--------------|-----------------|-----------------------------|
    | Safe Sulong    | none         | no           | managed C libc  | automatic managed checks    |
    | Clang -O0/-O3  | none / UB O3 | yes          | precompiled     | none (the native machine)   |
    | ASan -O0/-O3   | none / UB O3 | yes          | precompiled     | inserted checks+interceptors|
    | Valgrind       | same as Clang| yes          | precompiled     | dynamic per-access checks   | *)

type tool =
  | Safe_sulong
  | Clang of Pipeline.level
  | Asan of Pipeline.level
  | Valgrind of Pipeline.level

val tool_name : tool -> string

type result = {
  outcome : Outcome.t;
  output : string;
  steps : int;  (** IR operations executed *)
  managed_profile : Interp.profile option;  (** Safe Sulong runs *)
  native_profile : Nexec.profile option;    (** native-engine runs *)
  static_instrs : int;  (** size of the executed module, for cost models *)
}

val default_step_limit : int

(** ASan options the effectiveness experiment ablates: the strtok
    interceptor the paper's authors later contributed, the quarantine
    byte budget (P3), and -fno-common (zero-initialized globals are
    instrumented only when true, as in the paper §4.1). *)
type asan_options = {
  strtok_interceptor : bool;
  quarantine_cap : int;
  fno_common : bool;
}

val default_asan : asan_options

(** Run [src] under [tool].  [detect_uninit] enables Safe Sulong's
    uninitialized-read detection; [mementos] toggles allocation-site
    typing (an ablation).  [tier] (Safe Sulong only, default [`Interp])
    selects the execution configuration: the threaded interpreter alone,
    or the real two-tier engine that closure-compiles hot functions and
    deoptimizes on managed errors — observably identical, faster warm. *)
val run :
  ?argv:string list ->
  ?input:string ->
  ?step_limit:int ->
  ?mementos:bool ->
  ?detect_uninit:bool ->
  ?asan_options:asan_options ->
  ?tier:[ `Interp | `Tiered ] ->
  tool ->
  string ->
  result

(** Run an already-front-ended user module (from [Loader.compile_user])
    under plain Clang semantics at [level].  The module is copied before
    the native pipeline rewrites it, so one front-end product can be
    reused across levels — the differential oracle's per-seed parse is
    done once, not once per configuration. *)
val run_clang_module :
  ?argv:string list ->
  ?input:string ->
  ?step_limit:int ->
  level:Pipeline.level ->
  Irmod.t ->
  result

(** The five configurations of the paper's effectiveness comparison. *)
val comparison_tools : tool list
