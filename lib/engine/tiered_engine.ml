(** The unified tiered-engine interface.

    Every way this repo can execute a managed program presents the same
    contract: prepare a module, run [main], return the interpreter's
    [run_result].  Three implementations:

    - [Interp_only] — tier 1 alone: the pre-resolved threaded
      interpreter ([Interp]).
    - [Closure_tiered] — the real two-tier engine: the interpreter plus
      the profile-driven closure compiler ([Jit.Tier] / [Jit.Closcomp]),
      with deoptimization back to tier 1 on managed errors.  Observable
      behavior is bit-identical to [Interp_only]; only wall-clock
      differs.
    - [Simulated] — the calibrated model layer ([Jit.Simulate] /
      [Jit.Costmodel]): executes the safe-jit-optimized module in the
      interpreter — the dynamic profile Graal-compiled code would
      execute, which the cost model prices for Figs 15/16.  Outputs
      match; step counts reflect the optimized module, not tier 1.

    [Engine.run ~tier] routes the full tool driver (C front end,
    pipeline, outcome classification) through the first two; this
    module is the common substrate those configurations and the
    simulation share. *)

module type S = sig
  val name : string
  val describe : string

  (** Which execution tiers the configuration really runs. *)
  val tiers : [ `Interp | `Tiered | `Modeled ]

  (** Execute an already-lowered module's [main]. *)
  val run :
    ?argv:string list ->
    ?input:string ->
    ?step_limit:int ->
    Irmod.t ->
    Interp.run_result
end

module Interp_only : S = struct
  let name = "interp"
  let describe = "tier-1 pre-resolved threaded interpreter only"
  let tiers = `Interp

  let run ?argv ?input ?step_limit m =
    let st = Interp.create ?input ?step_limit m in
    Interp.run ?argv st
end

module Closure_tiered : S = struct
  let name = "tiered"

  let describe =
    "interpreter + profile-driven closure compiler with deoptimization"

  let tiers = `Tiered

  let run ?argv ?input ?step_limit m =
    let st = Interp.create ?input ?step_limit ~tier:(Tier.controller ()) m in
    Interp.run ?argv st
end

module Simulated : S = struct
  let name = "simulated"

  let describe =
    "cost-model tier: interprets the safe-jit module Graal would compile"

  let tiers = `Modeled

  let run ?argv ?input ?step_limit m =
    let m = Irmod.copy m in
    ignore (Pipeline.safe_jit m);
    Verify.verify m;
    let st = Interp.create ?input ?step_limit m in
    Interp.run ?argv st
end

let all : (module S) list =
  [ (module Interp_only); (module Closure_tiered); (module Simulated) ]

(* ------------------------------------------------------------------ *)
(* Compiled-body cache                                                  *)
(* ------------------------------------------------------------------ *)

(** A cached runner: one prepared [Interp.state] per lowered module,
    rewound with [Interp.reset] between runs instead of re-created.
    [reset] replays bit-identically to a fresh [create] — same outputs,
    step counts, error reports, observable object ids — but [pf_tier]
    survives, so closure-compiled bodies carry over: the second and
    later runs of a hot program start warm and never recompile.  That
    is what lets repeated-execution workloads (bench warm iterations,
    the difftest oracle's managed configurations re-running one seed's
    program) pay preparation and compilation once.

    Keyed by module *physical* identity: every pipeline that changes IR
    does so on an [Irmod.copy], so [==] on the module implies the
    prepared code is still valid for it. *)
module Cached : sig
  type t

  val create :
    ?step_limit:int ->
    ?mementos:bool ->
    ?detect_uninit:bool ->
    tier:[ `Interp | `Tiered ] ->
    unit ->
    t

  (** Run [main] of [m], reusing (and rewinding) the prepared state from
      a previous run of the physically-same module.  [input] defaults to
      [""] on every run, exactly like a fresh [Interp.create]. *)
  val run :
    t -> ?argv:string list -> ?input:string -> Irmod.t -> Interp.run_result

  (** Number of prepared states currently held (test hook). *)
  val states : t -> int
end = struct
  type t = {
    step_limit : int option;
    mementos : bool option;
    detect_uninit : bool option;
    tier : [ `Interp | `Tiered ];
    mutable entries : (Irmod.t * Interp.state) list;  (** MRU first *)
  }

  (* The oracle holds 8 configurations of a seed at once; a handful of
     slots covers them with room to spare, and eviction just forgets a
     prepared state (correctness never depends on a hit). *)
  let max_entries = 16

  let create ?step_limit ?mementos ?detect_uninit ~tier () =
    { step_limit; mementos; detect_uninit; tier; entries = [] }

  let states t = List.length t.entries

  (* Modules carry no name; a coarse shape string is enough to tell
     cache traffic apart in the flight recorder. *)
  let cache_key (m : Irmod.t) : string =
    Printf.sprintf "module[%d funcs]" (List.length m.Irmod.funcs)

  let state_for (t : t) (m : Irmod.t) ~(input : string) : Interp.state =
    match List.partition (fun (m', _) -> m' == m) t.entries with
    | [ ((_, st) as hit) ], rest ->
      t.entries <- hit :: rest;
      Events.record (Events.Cache_hit { ev_key = cache_key m });
      Interp.reset ~input st;
      st
    | _ ->
      Events.record (Events.Cache_miss { ev_key = cache_key m });
      let tier =
        match t.tier with
        | `Interp -> None
        | `Tiered -> Some (Tier.controller ())
      in
      let st =
        Interp.create ?step_limit:t.step_limit ?mementos:t.mementos
          ?detect_uninit:t.detect_uninit ?tier ~input m
      in
      let kept =
        if List.length t.entries >= max_entries then
          List.filteri (fun i _ -> i < max_entries - 1) t.entries
        else t.entries
      in
      t.entries <- (m, st) :: kept;
      st

  let run t ?argv ?(input = "") m =
    Interp.run ?argv (state_for t m ~input)
end
