(** The unified tiered-engine interface.

    Every way this repo can execute a managed program presents the same
    contract: prepare a module, run [main], return the interpreter's
    [run_result].  Three implementations:

    - [Interp_only] — tier 1 alone: the pre-resolved threaded
      interpreter ([Interp]).
    - [Closure_tiered] — the real two-tier engine: the interpreter plus
      the profile-driven closure compiler ([Jit.Tier] / [Jit.Closcomp]),
      with deoptimization back to tier 1 on managed errors.  Observable
      behavior is bit-identical to [Interp_only]; only wall-clock
      differs.
    - [Simulated] — the calibrated model layer ([Jit.Simulate] /
      [Jit.Costmodel]): executes the safe-jit-optimized module in the
      interpreter — the dynamic profile Graal-compiled code would
      execute, which the cost model prices for Figs 15/16.  Outputs
      match; step counts reflect the optimized module, not tier 1.

    [Engine.run ~tier] routes the full tool driver (C front end,
    pipeline, outcome classification) through the first two; this
    module is the common substrate those configurations and the
    simulation share. *)

module type S = sig
  val name : string
  val describe : string

  (** Which execution tiers the configuration really runs. *)
  val tiers : [ `Interp | `Tiered | `Modeled ]

  (** Execute an already-lowered module's [main]. *)
  val run :
    ?argv:string list ->
    ?input:string ->
    ?step_limit:int ->
    Irmod.t ->
    Interp.run_result
end

module Interp_only : S = struct
  let name = "interp"
  let describe = "tier-1 pre-resolved threaded interpreter only"
  let tiers = `Interp

  let run ?argv ?input ?step_limit m =
    let st = Interp.create ?input ?step_limit m in
    Interp.run ?argv st
end

module Closure_tiered : S = struct
  let name = "tiered"

  let describe =
    "interpreter + profile-driven closure compiler with deoptimization"

  let tiers = `Tiered

  let run ?argv ?input ?step_limit m =
    let st = Interp.create ?input ?step_limit ~tier:(Tier.controller ()) m in
    Interp.run ?argv st
end

module Simulated : S = struct
  let name = "simulated"

  let describe =
    "cost-model tier: interprets the safe-jit module Graal would compile"

  let tiers = `Modeled

  let run ?argv ?input ?step_limit m =
    let m = Irmod.copy m in
    ignore (Pipeline.safe_jit m);
    Verify.verify m;
    let st = Interp.create ?input ?step_limit m in
    Interp.run ?argv st
end

let all : (module S) list =
  [ (module Interp_only); (module Closure_tiered); (module Simulated) ]
