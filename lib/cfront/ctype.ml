(** C types for the front end.

    The subset models what the corpus, the managed libc and the benchmark
    programs need: the integer kinds of a 64-bit Linux ABI (LP64), floats,
    pointers, fixed-size arrays, tagged structs and function types.  We do
    not model qualifiers (const/volatile) — they do not affect the dynamic
    semantics we reproduce. *)

type signedness = Signed | Unsigned

(** Integer kinds with LP64 widths: char=1, short=2, int=4, long=8. *)
type ikind = IChar | IShort | IInt | ILong

type fkind = FFloat | FDouble

type t =
  | Void
  | Int of ikind * signedness
  | Float of fkind
  | Ptr of t
  | Array of t * int option  (** [None] only in parameter position *)
  | Struct of string         (** struct tag; fields live in the program env *)
  | Func of fsig

and fsig = { ret : t; params : t list; variadic : bool }

let char_t = Int (IChar, Signed)
let uchar_t = Int (IChar, Unsigned)
let short_t = Int (IShort, Signed)
let int_t = Int (IInt, Signed)
let uint_t = Int (IInt, Unsigned)
let long_t = Int (ILong, Signed)
let ulong_t = Int (ILong, Unsigned)
let size_t = ulong_t
let float_t = Float FFloat
let double_t = Float FDouble

let ikind_size = function IChar -> 1 | IShort -> 2 | IInt -> 4 | ILong -> 8
let fkind_size = function FFloat -> 4 | FDouble -> 8

let is_integer = function Int _ -> true | _ -> false
let is_float = function Float _ -> true | _ -> false
let is_arith ty = is_integer ty || is_float ty
let is_pointer = function Ptr _ -> true | _ -> false
let is_scalar ty = is_arith ty || is_pointer ty
let is_array = function Array _ -> true | _ -> false
let is_struct = function Struct _ -> true | _ -> false
let is_void = function Void -> true | _ -> false
let is_func = function Func _ -> true | _ -> false

(** Integer conversion rank, for the usual arithmetic conversions. *)
let rank = function IChar -> 1 | IShort -> 2 | IInt -> 3 | ILong -> 4

(** Integer promotion: types narrower than [int] promote to [int]. *)
let promote ty =
  match ty with
  | Int (k, _) when rank k < rank IInt -> int_t
  | _ -> ty

(** Usual arithmetic conversions for a binary operator whose operands have
    arithmetic types [a] and [b]. *)
let usual_arith a b =
  match (a, b) with
  | Float FDouble, _ | _, Float FDouble -> double_t
  | Float FFloat, _ | _, Float FFloat -> float_t
  | _ -> begin
    match (promote a, promote b) with
    | Int (ka, sa), Int (kb, sb) ->
      if rank ka = rank kb then
        Int (ka, if sa = Unsigned || sb = Unsigned then Unsigned else Signed)
      else if rank ka > rank kb then Int (ka, sa)
      else Int (kb, sb)
    | _ -> invalid_arg "Ctype.usual_arith: non-arithmetic operand"
  end

let is_unsigned_int = function Int (_, Unsigned) -> true | _ -> false

(** [decay ty] converts array and function types to pointers, as happens
    when such values are used in expression (rvalue) position. *)
let decay = function
  | Array (elem, _) -> Ptr elem
  | Func _ as f -> Ptr f
  | ty -> ty

(* ------------------------------------------------------------------ *)
(* Integer-constant arithmetic                                         *)
(* ------------------------------------------------------------------ *)

(* The front end folds constants in a few places (constant expressions,
   global initializers); these helpers keep that folding bit-compatible
   with the engines, which store every integer register sign-extended to
   64 bits and renormalize on write (see [Irtype.normalize_int] /
   [Irtype.unsigned_of] — cfront cannot depend on the IR library, so the
   width arithmetic is mirrored here). *)

(** Truncate [v] to the width of integer type [ty] and sign-extend back
    to 64 bits — the canonical constant representation. *)
let normalize_const (ty : t) (v : int64) : int64 =
  match decay ty with
  | Int (k, _) ->
    let spare = 64 - (8 * ikind_size k) in
    if spare = 0 then v else Int64.shift_right (Int64.shift_left v spare) spare
  | _ -> v

(** Reinterpret canonical [v] as the unsigned value of [ty]'s width
    (zero-extended to 64 bits). *)
let zext_const (ty : t) (v : int64) : int64 =
  match decay ty with
  | Int (k, _) ->
    let size = ikind_size k in
    if size = 8 then v
    else Int64.logand v (Int64.sub (Int64.shift_left 1L (8 * size)) 1L)
  | _ -> v

(** Convert canonical constant [v] from [from_ty] to [to_ty], exactly as
    the lowering converts immediates (Zext for widening unsigned values,
    Sext otherwise, Trunc when narrowing). *)
let convert_const ~(from_ty : t) ~(to_ty : t) (v : int64) : int64 =
  let widened =
    match (decay from_ty, decay to_ty) with
    | (Int (kf, Unsigned) as f), Int (kt, _) when ikind_size kt > ikind_size kf
      ->
      zext_const f v
    | _ -> v
  in
  normalize_const to_ty widened

(** Structural type equality (struct types compare by tag). *)
let rec equal a b =
  match (a, b) with
  | Void, Void -> true
  | Int (ka, sa), Int (kb, sb) -> ka = kb && sa = sb
  | Float ka, Float kb -> ka = kb
  | Ptr a, Ptr b -> equal a b
  | Array (a, na), Array (b, nb) -> equal a b && na = nb
  | Struct ta, Struct tb -> ta = tb
  | Func fa, Func fb ->
    equal fa.ret fb.ret
    && List.length fa.params = List.length fb.params
    && List.for_all2 equal fa.params fb.params
    && fa.variadic = fb.variadic
  | (Void | Int _ | Float _ | Ptr _ | Array _ | Struct _ | Func _), _ -> false

let rec to_string = function
  | Void -> "void"
  | Int (IChar, Signed) -> "char"
  | Int (IChar, Unsigned) -> "unsigned char"
  | Int (IShort, Signed) -> "short"
  | Int (IShort, Unsigned) -> "unsigned short"
  | Int (IInt, Signed) -> "int"
  | Int (IInt, Unsigned) -> "unsigned int"
  | Int (ILong, Signed) -> "long"
  | Int (ILong, Unsigned) -> "unsigned long"
  | Float FFloat -> "float"
  | Float FDouble -> "double"
  | Ptr t -> to_string t ^ "*"
  | Array (t, Some n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Array (t, None) -> Printf.sprintf "%s[]" (to_string t)
  | Struct tag -> "struct " ^ tag
  | Func f ->
    Printf.sprintf "%s(*)(%s%s)" (to_string f.ret)
      (String.concat ", " (List.map to_string f.params))
      (if f.variadic then ", ..." else "")
