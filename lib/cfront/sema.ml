(** Type checker for the C subset.

    [check] walks the program, fills every expression's [ty] annotation
    in place, completes unsized array declarations from their
    initializers, and builds the program environment (struct layouts,
    globals, function signatures) used by the lowering and by the
    engines.

    The checker is deliberately permissive where real-world C is
    permissive (implicit pointer conversions, int/pointer comparisons
    against 0) — the *dynamic* checks are the point of this system, and
    the paper's §3.2 even relaxes type rules at run time. *)

type env = {
  layout : Layout.env;
  globals : (string, Ctype.t) Hashtbl.t;
  funcs : (string, Ctype.fsig) Hashtbl.t;
  mutable scopes : (string, Ctype.t) Hashtbl.t list;  (* innermost first *)
  mutable current_ret : Ctype.t;
}

let make_env () =
  {
    layout = Layout.make_env ();
    globals = Hashtbl.create 64;
    funcs = Hashtbl.create 64;
    scopes = [];
    current_ret = Ctype.Void;
  }

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> failwith "sema: scope underflow"

let add_local env name ty =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name ty
  | [] -> failwith "sema: no scope"

let lookup env name : Ctype.t option =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> begin
      match Hashtbl.find_opt scope name with
      | Some ty -> Some ty
      | None -> in_scopes rest
    end
  in
  match in_scopes env.scopes with
  | Some ty -> Some ty
  | None -> begin
    match Hashtbl.find_opt env.globals name with
    | Some ty -> Some ty
    | None -> begin
      match Hashtbl.find_opt env.funcs name with
      | Some fsig -> Some (Ctype.Func fsig)
      | None -> None
    end
  end

let err pos fmt = Diag.error pos fmt

(* Can a value of type [src] be used where [dst] is expected?  Loose:
   arithmetic-to-arithmetic always (implicit conversion), pointers to
   pointers (warn-free as C compilers only warn), integer literals to
   pointers (NULL), pointer to integer of full width. *)
let assignable ~dst ~src =
  let dst = Ctype.decay dst and src = Ctype.decay src in
  match (dst, src) with
  | d, s when Ctype.equal d s -> true
  | d, s when Ctype.is_arith d && Ctype.is_arith s -> true
  | Ctype.Ptr _, Ctype.Ptr _ -> true
  | Ctype.Ptr _, Ctype.Int _ -> true (* 0 literals and real-world casts *)
  | Ctype.Int (Ctype.ILong, _), Ctype.Ptr _ -> true
  | Ctype.Struct a, Ctype.Struct b -> a = b
  | _ -> false

let rec is_lvalue (e : Ast.expr) =
  match e.desc with
  | Ast.Ident _ | Ast.Index _ | Ast.Deref _ | Ast.Member _ | Ast.Arrow _ -> true
  | Ast.StrLit _ -> true
  | Ast.Cast (_, inner) -> is_lvalue inner (* tolerated extension *)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec check_expr env (e : Ast.expr) : Ctype.t =
  let ty = infer env e in
  e.ty <- ty;
  ty

and infer env (e : Ast.expr) : Ctype.t =
  let module A = Ast in
  match e.desc with
  | A.IntLit (_, k, s) -> Ctype.Int (k, s)
  | A.FloatLit (_, k) -> Ctype.Float k
  | A.CharLit _ -> Ctype.int_t
  | A.StrLit s -> Ctype.Array (Ctype.char_t, Some (String.length s + 1))
  | A.Ident name -> begin
    match lookup env name with
    | Some ty -> ty
    | None -> err e.pos "undeclared identifier %S" name
  end
  | A.Unop (A.Neg, a) ->
    let t = Ctype.decay (check_expr env a) in
    if not (Ctype.is_arith t) then err e.pos "unary - needs arithmetic operand";
    Ctype.promote t
  | A.Unop (A.Bitnot, a) ->
    let t = Ctype.decay (check_expr env a) in
    if not (Ctype.is_integer t) then err e.pos "~ needs integer operand";
    Ctype.promote t
  | A.Unop (A.Lognot, a) ->
    let t = Ctype.decay (check_expr env a) in
    if not (Ctype.is_scalar t) then err e.pos "! needs scalar operand";
    Ctype.int_t
  | A.Binop (op, a, b) -> check_binop env e.pos op a b
  | A.Assign (op, lhs, rhs) ->
    let lt = check_expr env lhs in
    let rt = check_expr env rhs in
    if not (is_lvalue lhs) then err e.pos "assignment target is not an lvalue";
    (match op with
    | None ->
      if not (assignable ~dst:lt ~src:rt) then
        err e.pos "cannot assign %s to %s" (Ctype.to_string rt)
          (Ctype.to_string lt)
    | Some bop ->
      (* Compound assignment: lhs op rhs must be well-typed. *)
      ignore (binop_result env e.pos bop lt rt));
    lt
  | A.Cond (c, t, f) ->
    let ct = Ctype.decay (check_expr env c) in
    if not (Ctype.is_scalar ct) then err e.pos "?: condition must be scalar";
    let tt = Ctype.decay (check_expr env t) in
    let ft = Ctype.decay (check_expr env f) in
    if Ctype.is_arith tt && Ctype.is_arith ft then Ctype.usual_arith tt ft
    else if Ctype.equal tt ft then tt
    else if Ctype.is_pointer tt then tt
    else if Ctype.is_pointer ft then ft
    else err e.pos "incompatible branches of ?:"
  | A.Cast (ty, a) ->
    ignore (check_expr env a);
    ty
  | A.Call (callee, args) -> check_call env e.pos callee args
  | A.Index (a, idx) -> begin
    let at = Ctype.decay (check_expr env a) in
    let it = Ctype.decay (check_expr env idx) in
    match (at, it) with
    | Ctype.Ptr elem, t when Ctype.is_integer t -> elem
    | t, Ctype.Ptr elem when Ctype.is_integer t -> elem
    | _ -> err e.pos "invalid subscript: %s[%s]" (Ctype.to_string at)
             (Ctype.to_string it)
  end
  | A.Member (a, f) -> begin
    match check_expr env a with
    | Ctype.Struct tag -> begin
      try snd (Layout.field_offset env.layout tag f)
      with Failure _ -> err e.pos "struct %s has no field %S" tag f
    end
    | t -> err e.pos ".%s on non-struct %s" f (Ctype.to_string t)
  end
  | A.Arrow (a, f) -> begin
    match Ctype.decay (check_expr env a) with
    | Ctype.Ptr (Ctype.Struct tag) -> begin
      try snd (Layout.field_offset env.layout tag f)
      with Failure _ -> err e.pos "struct %s has no field %S" tag f
    end
    | t -> err e.pos "->%s on non-struct-pointer %s" f (Ctype.to_string t)
  end
  | A.Deref a -> begin
    match Ctype.decay (check_expr env a) with
    | Ctype.Ptr elem -> elem
    | t -> err e.pos "dereference of non-pointer %s" (Ctype.to_string t)
  end
  | A.Addrof a ->
    let t = check_expr env a in
    if not (is_lvalue a) && not (Ctype.is_func t) then
      err e.pos "& needs an lvalue";
    (match t with Ctype.Func _ -> Ctype.Ptr t | _ -> Ctype.Ptr t)
  | A.SizeofTy _ -> Ctype.size_t
  | A.SizeofE a ->
    ignore (check_expr env a);
    Ctype.size_t
  | A.PreIncr a | A.PreDecr a | A.PostIncr a | A.PostDecr a ->
    let t = check_expr env a in
    if not (is_lvalue a) then err e.pos "++/-- needs an lvalue";
    let d = Ctype.decay t in
    if not (Ctype.is_arith d || Ctype.is_pointer d) then
      err e.pos "++/-- needs arithmetic or pointer operand";
    t
  | A.Comma (a, b) ->
    ignore (check_expr env a);
    check_expr env b

and check_binop env pos op a b : Ctype.t =
  let ta = check_expr env a in
  let tb = check_expr env b in
  binop_result env pos op ta tb

and binop_result env pos (op : Ast.binop) ta tb : Ctype.t =
  ignore env;
  let module A = Ast in
  let ta = Ctype.decay ta and tb = Ctype.decay tb in
  match op with
  | A.Add -> begin
    match (ta, tb) with
    | t, i when Ctype.is_pointer t && Ctype.is_integer i -> ta
    | i, t when Ctype.is_pointer t && Ctype.is_integer i -> tb
    | a, b when Ctype.is_arith a && Ctype.is_arith b -> Ctype.usual_arith a b
    | _ -> err pos "invalid operands to +"
  end
  | A.Sub -> begin
    match (ta, tb) with
    | t, i when Ctype.is_pointer t && Ctype.is_integer i -> ta
    | Ctype.Ptr _, Ctype.Ptr _ -> Ctype.long_t
    | a, b when Ctype.is_arith a && Ctype.is_arith b -> Ctype.usual_arith a b
    | _ -> err pos "invalid operands to -"
  end
  | A.Mul | A.Div ->
    if Ctype.is_arith ta && Ctype.is_arith tb then Ctype.usual_arith ta tb
    else err pos "invalid operands to multiplicative operator"
  | A.Mod | A.Band | A.Bor | A.Bxor ->
    if Ctype.is_integer ta && Ctype.is_integer tb then Ctype.usual_arith ta tb
    else err pos "invalid operands to integer operator"
  | A.Shl | A.Shr ->
    if Ctype.is_integer ta && Ctype.is_integer tb then Ctype.promote ta
    else err pos "invalid operands to shift"
  | A.Lt | A.Gt | A.Le | A.Ge | A.Eq | A.Ne ->
    if
      (Ctype.is_arith ta && Ctype.is_arith tb)
      || (Ctype.is_pointer ta && Ctype.is_pointer tb)
      || (Ctype.is_pointer ta && Ctype.is_integer tb)
      || (Ctype.is_integer ta && Ctype.is_pointer tb)
    then Ctype.int_t
    else err pos "invalid comparison"
  | A.Logand | A.Logor ->
    if Ctype.is_scalar ta && Ctype.is_scalar tb then Ctype.int_t
    else err pos "invalid operands to logical operator"

and check_call env pos callee args : Ctype.t =
  let fsig =
    match callee.Ast.desc with
    | Ast.Ident name -> begin
      match Hashtbl.find_opt env.funcs name with
      | Some fsig ->
        callee.Ast.ty <- Ctype.Func fsig;
        fsig
      | None -> begin
        match lookup env name with
        | Some ty -> begin
          callee.Ast.ty <- ty;
          match Ctype.decay ty with
          | Ctype.Ptr (Ctype.Func fsig) -> fsig
          | _ -> err pos "called object %S is not a function" name
        end
        | None -> err pos "call to undeclared function %S" name
      end
    end
    | _ -> begin
      match Ctype.decay (check_expr env callee) with
      | Ctype.Ptr (Ctype.Func fsig) -> fsig
      | Ctype.Func fsig -> fsig
      | t -> err pos "called object has type %s" (Ctype.to_string t)
    end
  in
  let nparams = List.length fsig.Ctype.params in
  let nargs = List.length args in
  if nargs < nparams then err pos "too few arguments (%d < %d)" nargs nparams;
  if nargs > nparams && not fsig.Ctype.variadic then
    err pos "too many arguments (%d > %d)" nargs nparams;
  List.iteri
    (fun i arg ->
      let at = check_expr env arg in
      if i < nparams then begin
        let pt = List.nth fsig.Ctype.params i in
        if not (assignable ~dst:pt ~src:at) then
          err arg.Ast.pos "argument %d: cannot pass %s as %s" (i + 1)
            (Ctype.to_string at) (Ctype.to_string pt)
      end)
    args;
  fsig.Ctype.ret

(* ------------------------------------------------------------------ *)
(* Initializers, declarations, statements                              *)
(* ------------------------------------------------------------------ *)

(* Complete [int a[] = {...}] and [char s[] = "..."] array sizes. *)
let complete_array_type (d : Ast.decl) =
  match (d.d_ty, d.d_init) with
  | Ctype.Array (elem, None), Some (Ast.Ilist items) ->
    d.d_ty <- Ctype.Array (elem, Some (List.length items))
  | Ctype.Array (elem, None), Some (Ast.Iexpr { desc = Ast.StrLit s; _ }) ->
    d.d_ty <- Ctype.Array (elem, Some (String.length s + 1))
  | _ -> ()

let rec check_init env pos (ty : Ctype.t) (init : Ast.init) =
  match (ty, init) with
  | _, Ast.Iexpr e ->
    let et = check_expr env e in
    (* A string literal can initialize a char array in place. *)
    let ok =
      match (ty, e.desc) with
      | Ctype.Array (Ctype.Int (Ctype.IChar, _), _), Ast.StrLit _ -> true
      | _ -> assignable ~dst:ty ~src:et
    in
    if not ok then
      err pos "cannot initialize %s with %s" (Ctype.to_string ty)
        (Ctype.to_string et)
  | Ctype.Array (elem, size), Ast.Ilist items ->
    (match size with
    | Some n when List.length items > n ->
      err pos "too many initializers for array of %d" n
    | _ -> ());
    List.iter (check_init env pos elem) items
  | Ctype.Struct tag, Ast.Ilist items ->
    let fields = Layout.struct_fields env.layout tag in
    if List.length items > List.length fields then
      err pos "too many initializers for struct %s" tag;
    List.iteri
      (fun i item ->
        let f = List.nth fields i in
        check_init env pos f.Ast.f_ty item)
      items
  | _, Ast.Ilist _ -> err pos "brace initializer for scalar %s" (Ctype.to_string ty)

let rec check_stmt env (s : Ast.stmt) =
  let module A = Ast in
  match s with
  | A.Sexpr e -> ignore (check_expr env e)
  | A.Sdecl decls ->
    List.iter
      (fun (d : A.decl) ->
        complete_array_type d;
        (match d.d_init with
        | Some init -> check_init env d.d_pos d.d_ty init
        | None -> ());
        add_local env d.d_name d.d_ty)
      decls
  | A.Sif (c, t, f) ->
    ignore (check_expr env c);
    check_stmt env t;
    Option.iter (check_stmt env) f
  | A.Swhile (c, body) ->
    ignore (check_expr env c);
    check_stmt env body
  | A.Sdo (body, c) ->
    check_stmt env body;
    ignore (check_expr env c)
  | A.Sfor (init, cond, step, body) ->
    push_scope env;
    Option.iter (check_stmt env) init;
    Option.iter (fun e -> ignore (check_expr env e)) cond;
    Option.iter (fun e -> ignore (check_expr env e)) step;
    check_stmt env body;
    pop_scope env
  | A.Sreturn (e, pos) -> begin
    match (e, env.current_ret) with
    | None, Ctype.Void -> ()
    | None, _ -> err pos "return without a value in non-void function"
    | Some e, ret ->
      let t = check_expr env e in
      if Ctype.is_void ret then err pos "return with a value in void function"
      else if not (assignable ~dst:ret ~src:t) then
        err pos "cannot return %s as %s" (Ctype.to_string t)
          (Ctype.to_string ret)
  end
  | A.Sbreak _ | A.Scontinue _ | A.Sempty | A.Scase _ | A.Sdefault _ -> ()
  | A.Sblock stmts ->
    push_scope env;
    List.iter (check_stmt env) stmts;
    pop_scope env
  | A.Sswitch (e, body, _) ->
    ignore (check_expr env e);
    (* C11 6.8.4.2p1: the controlling expression shall have integer
       type (it then undergoes integer promotion in the lowering). *)
    if not (Ctype.is_integer (Ctype.decay e.A.ty)) then
      err e.A.pos "switch controlling expression must have integer type";
    push_scope env;
    List.iter (check_stmt env) body;
    pop_scope env

let check_func env (f : Ast.func) =
  (* Structs by value are outside the supported subset (pass pointers);
     reject with a source position instead of failing in the lowering. *)
  List.iter
    (fun (name, ty) ->
      if Ctype.is_struct ty then
        err f.fn_pos "parameter %S: struct parameters must be passed by pointer"
          name)
    f.fn_params;
  if Ctype.is_struct f.fn_sig.Ctype.ret then
    err f.fn_pos "function %S: returning a struct by value is not supported"
      f.fn_name;
  env.current_ret <- f.fn_sig.Ctype.ret;
  push_scope env;
  List.iter (fun (name, ty) -> add_local env name ty) f.fn_params;
  List.iter (check_stmt env) f.fn_body;
  pop_scope env

(** Type-check a program; returns the environment for lowering. *)
let check (prog : Ast.program) : env =
  let env = make_env () in
  (* First pass: collect structs, typedefs resolved already, globals and
     function signatures so that forward references work. *)
  List.iter
    (fun g ->
      match g with
      | Ast.Gstruct (tag, fields) -> Layout.add_struct env.layout tag fields
      | Ast.Gfunc f -> Hashtbl.replace env.funcs f.fn_name f.fn_sig
      | Ast.Gfundecl (name, fsig) ->
        if not (Hashtbl.mem env.funcs name) then
          Hashtbl.replace env.funcs name fsig
      | Ast.Gvar d ->
        complete_array_type d;
        Hashtbl.replace env.globals d.d_name d.d_ty
      | Ast.Gtypedef _ | Ast.Genum _ -> ())
    prog;
  (* Second pass: check bodies and global initializers. *)
  List.iter
    (fun g ->
      match g with
      | Ast.Gvar d -> begin
        match d.d_init with
        | Some init -> check_init env d.d_pos d.d_ty init
        | None -> ()
      end
      | Ast.Gfunc f -> check_func env f
      | Ast.Gstruct _ | Ast.Gfundecl _ | Ast.Gtypedef _ | Ast.Genum _ -> ())
    prog;
  env
