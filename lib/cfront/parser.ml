(** Recursive-descent parser for the C subset.

    Typedef names are tracked in the parser (the classic lexer-feedback
    problem solved at the parser level: an identifier that names a typedef
    starts a declaration).  Enum constants are tracked too so that array
    sizes and case labels can be evaluated as constant expressions while
    parsing. *)

type p = {
  toks : Token.spanned array;
  mutable idx : int;
  typedefs : (string, Ctype.t) Hashtbl.t;
  enums : (string, int64) Hashtbl.t;
  mutable anon_count : int;
  mutable structs : (string * Ast.field list) list;  (* reversed *)
}

let make_state toks =
  let typedefs = Hashtbl.create 16 in
  (* Predefined typedefs, in place of the system headers we skip. *)
  Hashtbl.replace typedefs "size_t" Ctype.size_t;
  Hashtbl.replace typedefs "ssize_t" Ctype.long_t;
  Hashtbl.replace typedefs "ptrdiff_t" Ctype.long_t;
  Hashtbl.replace typedefs "intptr_t" Ctype.long_t;
  Hashtbl.replace typedefs "uintptr_t" Ctype.ulong_t;
  Hashtbl.replace typedefs "int8_t" Ctype.char_t;
  Hashtbl.replace typedefs "uint8_t" Ctype.uchar_t;
  Hashtbl.replace typedefs "int16_t" Ctype.short_t;
  Hashtbl.replace typedefs "uint16_t" (Ctype.Int (Ctype.IShort, Ctype.Unsigned));
  Hashtbl.replace typedefs "int32_t" Ctype.int_t;
  Hashtbl.replace typedefs "uint32_t" Ctype.uint_t;
  Hashtbl.replace typedefs "int64_t" Ctype.long_t;
  Hashtbl.replace typedefs "uint64_t" Ctype.ulong_t;
  Hashtbl.replace typedefs "FILE" (Ctype.Struct "__file");
  Hashtbl.replace typedefs "va_list" (Ctype.Ptr (Ctype.Struct "__varargs"));
  {
    toks = Array.of_list toks;
    idx = 0;
    typedefs;
    enums = Hashtbl.create 16;
    anon_count = 0;
    structs = [];
  }

let cur p = p.toks.(p.idx)
let cur_tok p = (cur p).Token.tok
let cur_pos p = (cur p).Token.pos
let advance p = if p.idx < Array.length p.toks - 1 then p.idx <- p.idx + 1

let peek_tok p n =
  let i = min (p.idx + n) (Array.length p.toks - 1) in
  p.toks.(i).Token.tok

let err p fmt = Diag.error (cur_pos p) fmt

let expect_punct p s =
  match cur_tok p with
  | Token.PUNCT x when x = s -> advance p
  | t -> err p "expected %S, found %s" s (Token.to_string t)

let expect_kw p s =
  match cur_tok p with
  | Token.KW x when x = s -> advance p
  | t -> err p "expected %S, found %s" s (Token.to_string t)

let accept_punct p s =
  match cur_tok p with
  | Token.PUNCT x when x = s ->
    advance p;
    true
  | _ -> false

let accept_kw p s =
  match cur_tok p with
  | Token.KW x when x = s ->
    advance p;
    true
  | _ -> false

let expect_ident p =
  match cur_tok p with
  | Token.IDENT s ->
    advance p;
    s
  | t -> err p "expected identifier, found %s" (Token.to_string t)

let is_typedef_name p name = Hashtbl.mem p.typedefs name

(* A token sequence starts a type when it begins with a type keyword, a
   struct/enum/union keyword, a qualifier, or a typedef name. *)
let starts_type p tok =
  match tok with
  | Token.KW
      ( "void" | "char" | "short" | "int" | "long" | "float" | "double"
      | "signed" | "unsigned" | "struct" | "enum" | "union" | "const"
      | "static" | "extern" | "volatile" | "typedef" ) ->
    true
  | Token.IDENT name -> is_typedef_name p name
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Declaration specifiers                                              *)
(* ------------------------------------------------------------------ *)

(* Consume decl specifiers; returns (base type, saw_typedef_keyword). *)
let rec parse_decl_specs p : Ctype.t * bool =
  let saw_typedef = ref false in
  let signed = ref None in
  let base = ref None in
  let long_count = ref 0 in
  let set_base ty =
    match !base with
    | None -> base := Some ty
    | Some _ -> err p "conflicting type specifiers"
  in
  let continue_loop = ref true in
  while !continue_loop do
    match cur_tok p with
    | Token.KW "typedef" ->
      saw_typedef := true;
      advance p
    | Token.KW ("const" | "static" | "extern" | "volatile") -> advance p
    | Token.KW "void" ->
      set_base Ctype.Void;
      advance p
    | Token.KW "char" ->
      set_base (Ctype.Int (Ctype.IChar, Ctype.Signed));
      advance p
    | Token.KW "short" ->
      set_base (Ctype.Int (Ctype.IShort, Ctype.Signed));
      advance p
    | Token.KW "int" ->
      (match !base with
      | Some (Ctype.Int _) -> ()  (* "short int", "long int" *)
      | Some _ -> err p "conflicting type specifiers"
      | None -> if !long_count = 0 then base := Some Ctype.int_t);
      advance p
    | Token.KW "long" ->
      incr long_count;
      advance p
    | Token.KW "float" ->
      set_base Ctype.float_t;
      advance p
    | Token.KW "double" ->
      set_base Ctype.double_t;
      advance p
    | Token.KW "signed" ->
      signed := Some Ctype.Signed;
      advance p
    | Token.KW "unsigned" ->
      signed := Some Ctype.Unsigned;
      advance p
    | Token.KW "struct" | Token.KW "union" -> set_base (parse_struct_spec p)
    | Token.KW "enum" -> set_base (parse_enum_spec p)
    | Token.IDENT name when is_typedef_name p name && !base = None
                            && !long_count = 0 && !signed = None ->
      set_base (Hashtbl.find p.typedefs name);
      advance p
    | _ -> continue_loop := false
  done;
  let ty =
    match (!base, !long_count, !signed) with
    | Some (Ctype.Int (k, base_sign)), n, s ->
      let k = if n > 0 then Ctype.ILong else k in
      Ctype.Int (k, Option.value s ~default:base_sign)
    | Some ty, 0, None -> ty
    | Some _, _, _ -> err p "conflicting type specifiers"
    | None, n, s when n > 0 || s <> None ->
      let k = if n > 0 then Ctype.ILong else Ctype.IInt in
      Ctype.Int (k, Option.value s ~default:Ctype.Signed)
    | None, _, _ -> err p "expected type specifier"
  in
  (ty, !saw_typedef)

and parse_struct_spec p : Ctype.t =
  advance p;
  (* struct/union; unions are parsed but rejected later if used *)
  let tag =
    match cur_tok p with
    | Token.IDENT name ->
      advance p;
      name
    | _ ->
      p.anon_count <- p.anon_count + 1;
      Printf.sprintf "__anon%d" p.anon_count
  in
  if accept_punct p "{" then begin
    let fields = ref [] in
    while not (accept_punct p "}") do
      let base, _ = parse_decl_specs p in
      let rec field_loop () =
        let name, ty = parse_declarator p base in
        (match name with
        | Some n -> fields := { Ast.f_name = n; f_ty = ty } :: !fields
        | None -> err p "struct field needs a name");
        if accept_punct p "," then field_loop ()
      in
      field_loop ();
      expect_punct p ";"
    done;
    p.structs <- (tag, List.rev !fields) :: p.structs
  end;
  Ctype.Struct tag

and parse_enum_spec p : Ctype.t =
  advance p;
  (match cur_tok p with
  | Token.IDENT _ -> advance p
  | _ -> ());
  if accept_punct p "{" then begin
    let next = ref 0L in
    let rec enum_loop () =
      match cur_tok p with
      | Token.PUNCT "}" -> advance p
      | Token.IDENT name ->
        advance p;
        let value =
          if accept_punct p "=" then const_expr p else !next
        in
        Hashtbl.replace p.enums name value;
        next := Int64.add value 1L;
        if accept_punct p "," then enum_loop ()
        else begin
          expect_punct p "}"
        end
      | t -> err p "expected enumerator, found %s" (Token.to_string t)
    in
    enum_loop ()
  end;
  Ctype.int_t

(* ------------------------------------------------------------------ *)
(* Declarators                                                         *)
(* ------------------------------------------------------------------ *)

(* Returns (optional name, complete type). *)
and parse_declarator p (base : Ctype.t) : string option * Ctype.t =
  (* Pointers wrap the base type from the inside out. *)
  let base = ref base in
  while accept_punct p "*" do
    while accept_kw p "const" || accept_kw p "volatile" do
      ()
    done;
    base := Ctype.Ptr !base
  done;
  parse_direct_declarator p !base

and parse_direct_declarator p base : string option * Ctype.t =
  (* The inner part: a name, a parenthesized declarator, or nothing
     (abstract declarator).  Suffixes ([n], (params)) then apply from the
     outside in; parenthesized inner declarators bind tighter, which we
     implement by deferring the inner parse's type transformation. *)
  let inner : [ `Name of string option | `Paren of int ] =
    match cur_tok p with
    | Token.IDENT name when not (is_typedef_name p name) ->
      advance p;
      `Name (Some name)
    | Token.PUNCT "(" when is_declarator_paren p ->
      advance p;
      let start = p.idx in
      skip_balanced_parens p;
      `Paren start
    | _ -> `Name None
  in
  (* Suffixes. *)
  let rec suffixes ty =
    if accept_punct p "[" then begin
      let size = if cur_tok p = Token.PUNCT "]" then None
        else Some (Int64.to_int (const_expr p))
      in
      expect_punct p "]";
      let elem = suffixes ty in
      Ctype.Array (elem, size)
    end
    else if accept_punct p "(" then begin
      let params, variadic = parse_params p in
      let ret = suffixes ty in
      Ctype.Func { Ctype.ret; params; variadic }
    end
    else ty
  in
  let full = suffixes base in
  match inner with
  | `Name name -> (name, full)
  | `Paren start ->
    (* Re-parse the parenthesized declarator with the suffixed type as
       its base. *)
    let save = p.idx in
    p.idx <- start;
    let name, ty = parse_declarator p full in
    expect_punct p ")";
    p.idx <- save;
    (name, ty)

(* A '(' after the pointer part starts an inner declarator — as in a
   function-pointer declaration "int ( *f )(int)" — rather than a
   parameter list, when the next token is '*', '(' or an identifier that
   is not a typedef name. *)
and is_declarator_paren p =
  match peek_tok p 1 with
  | Token.PUNCT "*" | Token.PUNCT "(" -> true
  | Token.IDENT name -> not (is_typedef_name p name)
  | _ -> false

and skip_balanced_parens p =
  (* We are just past the opening '('; skip to just past its ')'. *)
  let depth = ref 1 in
  while !depth > 0 do
    (match cur_tok p with
    | Token.PUNCT "(" -> incr depth
    | Token.PUNCT ")" -> decr depth
    | Token.EOF -> err p "unbalanced parentheses in declarator"
    | _ -> ());
    if !depth > 0 then advance p
  done;
  advance p (* past the final ')' *)

and parse_params p : Ctype.t list * bool =
  if accept_punct p ")" then ([], false)
  else if cur_tok p = Token.KW "void" && peek_tok p 1 = Token.PUNCT ")" then begin
    advance p;
    advance p;
    ([], false)
  end
  else begin
    let params = ref [] in
    let variadic = ref false in
    let rec loop () =
      if accept_punct p "..." then begin
        variadic := true;
        expect_punct p ")"
      end
      else begin
        let base, _ = parse_decl_specs p in
        let _, ty = parse_declarator p base in
        (* Parameters of array/function type adjust to pointers. *)
        params := Ctype.decay ty :: !params;
        if accept_punct p "," then loop () else expect_punct p ")"
      end
    in
    loop ();
    (List.rev !params, !variadic)
  end

(* Like parse_params but also records parameter names (for function
   definitions). *)
and parse_named_params p : (string * Ctype.t) list * bool =
  if accept_punct p ")" then ([], false)
  else if cur_tok p = Token.KW "void" && peek_tok p 1 = Token.PUNCT ")" then begin
    advance p;
    advance p;
    ([], false)
  end
  else begin
    let params = ref [] in
    let variadic = ref false in
    let rec loop () =
      if accept_punct p "..." then begin
        variadic := true;
        expect_punct p ")"
      end
      else begin
        let base, _ = parse_decl_specs p in
        let name, ty = parse_declarator p base in
        let name = Option.value name ~default:(Printf.sprintf "__arg%d" (List.length !params)) in
        params := (name, Ctype.decay ty) :: !params;
        if accept_punct p "," then loop () else expect_punct p ")"
      end
    in
    loop ();
    (List.rev !params, !variadic)
  end

(* ------------------------------------------------------------------ *)
(* Constant expressions (array sizes, case labels, enum values)        *)
(* ------------------------------------------------------------------ *)

and const_expr p : int64 =
  let e = parse_conditional p in
  eval_const p e

(* Constant expressions are folded *before* Sema annotates types, so the
   evaluator carries its own types bottom-up and follows the engines'
   semantics exactly: canonical sign-extended 64-bit values, normalized
   to the expression's width after every operation, logical shifts and
   unsigned compares/divisions for unsigned operands, shift counts
   masked [land 63] (see lib/opt/fold.ml and the engines).  Getting this
   wrong silently diverges folded constants from the runtime value of
   the same expression — exactly the class of bug the difftest oracle
   exists to catch. *)

(* Type of a constant expression (mirrors Sema's [infer] for the subset
   of forms legal in constant position). *)
and const_ty p (e : Ast.expr) : Ctype.t =
  let module A = Ast in
  (* Anything non-integer that sneaks in (pointer casts, floats) is
     treated as long; evaluation is 64-bit either way. *)
  let as_int ty = if Ctype.is_integer ty then ty else Ctype.long_t in
  match e.A.desc with
  | A.IntLit (_, k, s) -> Ctype.Int (k, s)
  | A.CharLit _ -> Ctype.int_t
  | A.Ident name when Hashtbl.mem p.enums name -> Ctype.int_t
  | A.Unop (A.Lognot, _) -> Ctype.int_t
  | A.Unop ((A.Neg | A.Bitnot), a) -> Ctype.promote (as_int (const_ty p a))
  | A.Binop ((A.Shl | A.Shr), a, _) -> Ctype.promote (as_int (const_ty p a))
  | A.Binop ((A.Lt | A.Gt | A.Le | A.Ge | A.Eq | A.Ne | A.Logand | A.Logor), _, _)
    ->
    Ctype.int_t
  | A.Binop (_, a, b) ->
    Ctype.usual_arith (as_int (const_ty p a)) (as_int (const_ty p b))
  | A.Cast (ty, _) -> as_int ty
  | A.Cond (_, t, f) ->
    Ctype.usual_arith (as_int (const_ty p t)) (as_int (const_ty p f))
  | _ -> Ctype.int_t

(* Canonical (sign-extended) value of [e] at type [const_ty p e]. *)
and eval_typed p (e : Ast.expr) : int64 =
  let module A = Ast in
  let conv a into =
    Ctype.convert_const ~from_ty:(const_ty p a) ~to_ty:into (eval_typed p a)
  in
  match e.A.desc with
  | A.IntLit (v, k, s) -> Ctype.normalize_const (Ctype.Int (k, s)) v
  | A.CharLit c -> Int64.of_int (Char.code c)
  | A.Ident name when Hashtbl.mem p.enums name -> Hashtbl.find p.enums name
  | A.Unop (A.Neg, a) ->
    let ty = const_ty p e in
    Ctype.normalize_const ty (Int64.neg (conv a ty))
  | A.Unop (A.Bitnot, a) ->
    let ty = const_ty p e in
    Ctype.normalize_const ty (Int64.lognot (conv a ty))
  | A.Unop (A.Lognot, a) -> if eval_typed p a = 0L then 1L else 0L
  | A.Binop ((A.Logand | A.Logor) as op, a, b) ->
    (* Short-circuit so the unevaluated side may divide by zero. *)
    let ta = eval_typed p a <> 0L in
    let r =
      match op with
      | A.Logand -> ta && eval_typed p b <> 0L
      | _ -> ta || eval_typed p b <> 0L
    in
    if r then 1L else 0L
  | A.Binop ((A.Lt | A.Gt | A.Le | A.Ge | A.Eq | A.Ne) as op, a, b) ->
    let as_int ty = if Ctype.is_integer ty then ty else Ctype.long_t in
    let common =
      Ctype.usual_arith (as_int (const_ty p a)) (as_int (const_ty p b))
    in
    let va = conv a common and vb = conv b common in
    let cmp =
      if Ctype.is_unsigned_int common then
        Int64.unsigned_compare (Ctype.zext_const common va)
          (Ctype.zext_const common vb)
      else compare va vb
    in
    let r =
      match op with
      | A.Lt -> cmp < 0
      | A.Gt -> cmp > 0
      | A.Le -> cmp <= 0
      | A.Ge -> cmp >= 0
      | A.Eq -> cmp = 0
      | _ -> cmp <> 0
    in
    if r then 1L else 0L
  | A.Binop ((A.Shl | A.Shr) as op, a, b) ->
    let ty = const_ty p e in
    let va = conv a ty in
    let count = Int64.to_int (eval_typed p b) land 63 in
    let r =
      match op with
      | A.Shl -> Int64.shift_left va count
      | _ ->
        if Ctype.is_unsigned_int ty then
          Int64.shift_right_logical (Ctype.zext_const ty va) count
        else Int64.shift_right va count
    in
    Ctype.normalize_const ty r
  | A.Binop (op, a, b) ->
    let ty = const_ty p e in
    let va = conv a ty and vb = conv b ty in
    let div_checked f =
      if vb = 0L then Diag.error e.A.pos "division by zero in constant"
      else f ()
    in
    let r =
      match op with
      | A.Add -> Int64.add va vb
      | A.Sub -> Int64.sub va vb
      | A.Mul -> Int64.mul va vb
      | A.Div ->
        div_checked (fun () ->
            if Ctype.is_unsigned_int ty then
              Int64.unsigned_div (Ctype.zext_const ty va)
                (Ctype.zext_const ty vb)
            else Int64.div va vb)
      | A.Mod ->
        div_checked (fun () ->
            if Ctype.is_unsigned_int ty then
              Int64.unsigned_rem (Ctype.zext_const ty va)
                (Ctype.zext_const ty vb)
            else Int64.rem va vb)
      | A.Band -> Int64.logand va vb
      | A.Bor -> Int64.logor va vb
      | A.Bxor -> Int64.logxor va vb
      | _ -> assert false (* handled above *)
    in
    Ctype.normalize_const ty r
  | A.SizeofTy _ | A.SizeofE _ ->
    Diag.error e.A.pos "sizeof in constant expressions is not supported here"
  | A.Cast (ty, a) ->
    if Ctype.is_integer ty then conv a ty else eval_typed p a
  | A.Cond (c, t, f) ->
    (* Only the chosen branch is evaluated (the other may divide by
       zero), but the result converts to the usual-arithmetic type of
       both, as the runtime lowering does. *)
    let ty = const_ty p e in
    if eval_typed p c <> 0L then conv t ty else conv f ty
  | _ -> Diag.error e.A.pos "expected a constant expression"

(* Consumers (array sizes, case labels, enum values) expect the value
   "as converted to long": zero-extended for unsigned expressions,
   sign-extended otherwise — the same conversion the lowering applies to
   the runtime value in those positions. *)
and eval_const p (e : Ast.expr) : int64 =
  let v = eval_typed p e in
  let ty = const_ty p e in
  if Ctype.is_unsigned_int ty then Ctype.zext_const ty v else v

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and parse_expr p : Ast.expr =
  let e = parse_assignment p in
  if accept_punct p "," then begin
    let rest = parse_expr p in
    Ast.mk e.Ast.pos (Ast.Comma (e, rest))
  end
  else e

and parse_assignment p : Ast.expr =
  let lhs = parse_conditional p in
  let pos = cur_pos p in
  let mk_assign op =
    advance p;
    let rhs = parse_assignment p in
    Ast.mk pos (Ast.Assign (op, lhs, rhs))
  in
  match cur_tok p with
  | Token.PUNCT "=" -> mk_assign None
  | Token.PUNCT "+=" -> mk_assign (Some Ast.Add)
  | Token.PUNCT "-=" -> mk_assign (Some Ast.Sub)
  | Token.PUNCT "*=" -> mk_assign (Some Ast.Mul)
  | Token.PUNCT "/=" -> mk_assign (Some Ast.Div)
  | Token.PUNCT "%=" -> mk_assign (Some Ast.Mod)
  | Token.PUNCT "<<=" -> mk_assign (Some Ast.Shl)
  | Token.PUNCT ">>=" -> mk_assign (Some Ast.Shr)
  | Token.PUNCT "&=" -> mk_assign (Some Ast.Band)
  | Token.PUNCT "|=" -> mk_assign (Some Ast.Bor)
  | Token.PUNCT "^=" -> mk_assign (Some Ast.Bxor)
  | _ -> lhs

and parse_conditional p : Ast.expr =
  let cond = parse_binary p 0 in
  if accept_punct p "?" then begin
    let then_e = parse_expr p in
    expect_punct p ":";
    let else_e = parse_conditional p in
    Ast.mk cond.Ast.pos (Ast.Cond (cond, then_e, else_e))
  end
  else cond

(* Precedence-climbing for binary operators; level 0 is '||'. *)
and binop_of_punct level s : Ast.binop option =
  match (level, s) with
  | 0, "||" -> Some Ast.Logor
  | 1, "&&" -> Some Ast.Logand
  | 2, "|" -> Some Ast.Bor
  | 3, "^" -> Some Ast.Bxor
  | 4, "&" -> Some Ast.Band
  | 5, "==" -> Some Ast.Eq
  | 5, "!=" -> Some Ast.Ne
  | 6, "<" -> Some Ast.Lt
  | 6, ">" -> Some Ast.Gt
  | 6, "<=" -> Some Ast.Le
  | 6, ">=" -> Some Ast.Ge
  | 7, "<<" -> Some Ast.Shl
  | 7, ">>" -> Some Ast.Shr
  | 8, "+" -> Some Ast.Add
  | 8, "-" -> Some Ast.Sub
  | 9, "*" -> Some Ast.Mul
  | 9, "/" -> Some Ast.Div
  | 9, "%" -> Some Ast.Mod
  | _ -> None

and parse_binary p level : Ast.expr =
  if level > 9 then parse_cast p
  else begin
    let lhs = ref (parse_binary p (level + 1)) in
    let continue_loop = ref true in
    while !continue_loop do
      match cur_tok p with
      | Token.PUNCT s -> begin
        match binop_of_punct level s with
        | Some op ->
          let pos = cur_pos p in
          advance p;
          let rhs = parse_binary p (level + 1) in
          lhs := Ast.mk pos (Ast.Binop (op, !lhs, rhs))
        | None -> continue_loop := false
      end
      | _ -> continue_loop := false
    done;
    !lhs
  end

and parse_cast p : Ast.expr =
  match cur_tok p with
  | Token.PUNCT "(" when starts_type p (peek_tok p 1) ->
    let pos = cur_pos p in
    advance p;
    let base, _ = parse_decl_specs p in
    let _, ty = parse_declarator p base in
    expect_punct p ")";
    let e = parse_cast p in
    Ast.mk pos (Ast.Cast (ty, e))
  | _ -> parse_unary p

and parse_unary p : Ast.expr =
  let pos = cur_pos p in
  match cur_tok p with
  | Token.PUNCT "-" ->
    advance p;
    Ast.mk pos (Ast.Unop (Ast.Neg, parse_cast p))
  | Token.PUNCT "+" ->
    advance p;
    parse_cast p
  | Token.PUNCT "!" ->
    advance p;
    Ast.mk pos (Ast.Unop (Ast.Lognot, parse_cast p))
  | Token.PUNCT "~" ->
    advance p;
    Ast.mk pos (Ast.Unop (Ast.Bitnot, parse_cast p))
  | Token.PUNCT "*" ->
    advance p;
    Ast.mk pos (Ast.Deref (parse_cast p))
  | Token.PUNCT "&" ->
    advance p;
    Ast.mk pos (Ast.Addrof (parse_cast p))
  | Token.PUNCT "++" ->
    advance p;
    Ast.mk pos (Ast.PreIncr (parse_unary p))
  | Token.PUNCT "--" ->
    advance p;
    Ast.mk pos (Ast.PreDecr (parse_unary p))
  | Token.KW "sizeof" ->
    advance p;
    if cur_tok p = Token.PUNCT "(" && starts_type p (peek_tok p 1) then begin
      advance p;
      let base, _ = parse_decl_specs p in
      let _, ty = parse_declarator p base in
      expect_punct p ")";
      Ast.mk pos (Ast.SizeofTy ty)
    end
    else Ast.mk pos (Ast.SizeofE (parse_unary p))
  | _ -> parse_postfix p

and parse_postfix p : Ast.expr =
  let e = ref (parse_primary p) in
  let continue_loop = ref true in
  while !continue_loop do
    let pos = cur_pos p in
    match cur_tok p with
    | Token.PUNCT "[" ->
      advance p;
      let idx = parse_expr p in
      expect_punct p "]";
      e := Ast.mk pos (Ast.Index (!e, idx))
    | Token.PUNCT "(" ->
      advance p;
      let args = ref [] in
      if not (accept_punct p ")") then begin
        let rec args_loop () =
          args := parse_assignment p :: !args;
          if accept_punct p "," then args_loop () else expect_punct p ")"
        in
        args_loop ()
      end;
      e := Ast.mk pos (Ast.Call (!e, List.rev !args))
    | Token.PUNCT "." ->
      advance p;
      let f = expect_ident p in
      e := Ast.mk pos (Ast.Member (!e, f))
    | Token.PUNCT "->" ->
      advance p;
      let f = expect_ident p in
      e := Ast.mk pos (Ast.Arrow (!e, f))
    | Token.PUNCT "++" ->
      advance p;
      e := Ast.mk pos (Ast.PostIncr !e)
    | Token.PUNCT "--" ->
      advance p;
      e := Ast.mk pos (Ast.PostDecr !e)
    | _ -> continue_loop := false
  done;
  !e

and parse_primary p : Ast.expr =
  let pos = cur_pos p in
  match cur_tok p with
  | Token.INT_LIT (v, k, s) ->
    advance p;
    Ast.mk pos (Ast.IntLit (v, k, s))
  | Token.FLOAT_LIT (f, k) ->
    advance p;
    Ast.mk pos (Ast.FloatLit (f, k))
  | Token.CHAR_LIT c ->
    advance p;
    Ast.mk pos (Ast.CharLit c)
  | Token.STR_LIT s ->
    advance p;
    Ast.mk pos (Ast.StrLit s)
  | Token.IDENT name ->
    advance p;
    if Hashtbl.mem p.enums name then
      Ast.mk pos (Ast.IntLit (Hashtbl.find p.enums name, Ctype.IInt, Ctype.Signed))
    else Ast.mk pos (Ast.Ident name)
  | Token.PUNCT "(" ->
    advance p;
    let e = parse_expr p in
    expect_punct p ")";
    e
  | t -> err p "expected expression, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Initializers, statements                                            *)
(* ------------------------------------------------------------------ *)

and parse_initializer p : Ast.init =
  if accept_punct p "{" then begin
    let items = ref [] in
    if not (accept_punct p "}") then begin
      let rec init_loop () =
        items := parse_initializer p :: !items;
        if accept_punct p "," then begin
          if cur_tok p = Token.PUNCT "}" then expect_punct p "}" else init_loop ()
        end
        else expect_punct p "}"
      in
      init_loop ()
    end;
    Ast.Ilist (List.rev !items)
  end
  else Ast.Iexpr (parse_assignment p)

and parse_local_decls p : Ast.decl list =
  let base, saw_typedef = parse_decl_specs p in
  if saw_typedef then err p "typedef inside a function is not supported";
  let decls = ref [] in
  let rec decl_loop () =
    let d_pos = cur_pos p in
    let name, ty = parse_declarator p base in
    let name =
      match name with Some n -> n | None -> err p "declaration needs a name"
    in
    let init = if accept_punct p "=" then Some (parse_initializer p) else None in
    decls := { Ast.d_name = name; d_ty = ty; d_init = init; d_pos } :: !decls;
    if accept_punct p "," then decl_loop ()
  in
  decl_loop ();
  expect_punct p ";";
  List.rev !decls

and parse_stmt p : Ast.stmt =
  let pos = cur_pos p in
  match cur_tok p with
  | Token.PUNCT ";" ->
    advance p;
    Ast.Sempty
  | Token.PUNCT "{" -> Ast.Sblock (parse_block p)
  | Token.KW "if" ->
    advance p;
    expect_punct p "(";
    let cond = parse_expr p in
    expect_punct p ")";
    let then_s = parse_stmt p in
    let else_s = if accept_kw p "else" then Some (parse_stmt p) else None in
    Ast.Sif (cond, then_s, else_s)
  | Token.KW "while" ->
    advance p;
    expect_punct p "(";
    let cond = parse_expr p in
    expect_punct p ")";
    Ast.Swhile (cond, parse_stmt p)
  | Token.KW "do" ->
    advance p;
    let body = parse_stmt p in
    expect_kw p "while";
    expect_punct p "(";
    let cond = parse_expr p in
    expect_punct p ")";
    expect_punct p ";";
    Ast.Sdo (body, cond)
  | Token.KW "for" ->
    advance p;
    expect_punct p "(";
    let init =
      if accept_punct p ";" then None
      else if starts_type p (cur_tok p) then Some (Ast.Sdecl (parse_local_decls p))
      else begin
        let e = parse_expr p in
        expect_punct p ";";
        Some (Ast.Sexpr e)
      end
    in
    let cond = if cur_tok p = Token.PUNCT ";" then None else Some (parse_expr p) in
    expect_punct p ";";
    let step = if cur_tok p = Token.PUNCT ")" then None else Some (parse_expr p) in
    expect_punct p ")";
    Ast.Sfor (init, cond, step, parse_stmt p)
  | Token.KW "return" ->
    advance p;
    let e = if cur_tok p = Token.PUNCT ";" then None else Some (parse_expr p) in
    expect_punct p ";";
    Ast.Sreturn (e, pos)
  | Token.KW "break" ->
    advance p;
    expect_punct p ";";
    Ast.Sbreak pos
  | Token.KW "continue" ->
    advance p;
    expect_punct p ";";
    Ast.Scontinue pos
  | Token.KW "switch" ->
    advance p;
    expect_punct p "(";
    let e = parse_expr p in
    expect_punct p ")";
    let body = parse_block p in
    Ast.Sswitch (e, body, pos)
  | Token.KW "case" ->
    advance p;
    let v = const_expr p in
    expect_punct p ":";
    Ast.Scase (v, pos)
  | Token.KW "default" ->
    advance p;
    expect_punct p ":";
    Ast.Sdefault pos
  | t when starts_type p t -> Ast.Sdecl (parse_local_decls p)
  | _ ->
    let e = parse_expr p in
    expect_punct p ";";
    Ast.Sexpr e

and parse_block p : Ast.stmt list =
  expect_punct p "{";
  let stmts = ref [] in
  while not (accept_punct p "}") do
    stmts := parse_stmt p :: !stmts
  done;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_external p (acc : Ast.global list ref) =
  let base, saw_typedef = parse_decl_specs p in
  if saw_typedef then begin
    let name, ty = parse_declarator p base in
    (match name with
    | Some n ->
      Hashtbl.replace p.typedefs n ty;
      acc := Ast.Gtypedef (n, ty) :: !acc
    | None -> err p "typedef needs a name");
    expect_punct p ";"
  end
  else if cur_tok p = Token.PUNCT ";" then
    (* struct/enum definition alone: already registered during specs *)
    advance p
  else begin
    let d_pos = cur_pos p in
    let name, ty = parse_declarator p base in
    let name =
      match name with Some n -> n | None -> err p "declaration needs a name"
    in
    match ty with
    | Ctype.Func fsig when cur_tok p = Token.PUNCT "{" ->
      (* Function definition: re-parse the parameter list for names.  We
         saved no parameter names in the type, so reconstruct from the
         declarator.  To keep things simple we require the common form
         [ret name(params) { ... }]: find the parameter names by
         re-walking the tokens is avoided by parsing definitions
         directly below in [parse_program]. *)
      ignore fsig;
      err p "internal: function definitions handled in parse_program"
    | Ctype.Func fsig ->
      acc := Ast.Gfundecl (name, fsig) :: !acc;
      expect_punct p ";"
    | _ ->
      let rec global_var name ty d_pos =
        let init =
          if accept_punct p "=" then Some (parse_initializer p) else None
        in
        acc :=
          Ast.Gvar { Ast.d_name = name; d_ty = ty; d_init = init; d_pos }
          :: !acc;
        if accept_punct p "," then begin
          let d_pos = cur_pos p in
          let name2, ty2 = parse_declarator p base in
          match name2 with
          | Some n -> global_var n ty2 d_pos
          | None -> err p "declaration needs a name"
        end
        else expect_punct p ";"
      in
      global_var name ty d_pos
  end

(* Detect a function definition at the current position: decl-specs
   declarator '('...')' '{'.  We do this by trial parse with rollback. *)
let is_function_definition p =
  let save = p.idx in
  let save_structs = p.structs in
  let save_anon = p.anon_count in
  let result =
    try
      let base, saw_typedef = parse_decl_specs p in
      if saw_typedef then false
      else begin
        let _name, ty = parse_declarator p base in
        match (ty, cur_tok p) with
        | Ctype.Func _, Token.PUNCT "{" -> true
        | _ -> false
      end
    with Diag.Error _ -> false
  in
  p.idx <- save;
  p.structs <- save_structs;
  p.anon_count <- save_anon;
  result

let parse_function_definition p : Ast.func =
  let fn_pos = cur_pos p in
  let base, _ = parse_decl_specs p in
  (* Declarator of the form: ptr* name ( named-params ) *)
  let base = ref base in
  while accept_punct p "*" do
    base := Ctype.Ptr !base
  done;
  let fn_name = expect_ident p in
  expect_punct p "(";
  let fn_params, variadic = parse_named_params p in
  let fn_sig =
    { Ctype.ret = !base; params = List.map snd fn_params; variadic }
  in
  let fn_body = parse_block p in
  { Ast.fn_name; fn_sig; fn_params; fn_body; fn_pos }

(** Parse a complete translation unit. *)
let parse (toks : Token.spanned list) : Ast.program =
  let p = make_state toks in
  let acc = ref [] in
  while cur_tok p <> Token.EOF do
    if is_function_definition p then
      acc := Ast.Gfunc (parse_function_definition p) :: !acc
    else parse_external p acc
  done;
  (* Struct definitions collected during parsing come first so that Sema
     knows the fields before any use. *)
  let structs =
    List.rev_map (fun (tag, fields) -> Ast.Gstruct (tag, fields)) p.structs
  in
  structs @ List.rev !acc

(** Convenience: parse a source string. *)
let parse_string ?start_line src = parse (Lexer.tokenize ?start_line src)
