(** Lexer for the C subset, including the two preprocessor features the
    corpus and the managed libc rely on: [#include <...>] lines are
    skipped (libc declarations are injected by the loader instead of read
    from headers), and object-like [#define NAME tokens] macros are
    expanded at the token level.  Anything fancier (function-like macros,
    conditionals) is rejected: all sources in this repository are under
    our control and avoid them. *)

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  macros : (string, Token.t list) Hashtbl.t;
}

let make src = { src; pos = 0; line = 1; col = 1; macros = Hashtbl.create 16 }

let peek_char st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_char2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek_char st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let current_pos st : Token.pos = { line = st.line; col = st.col }

let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments st
  | Some '/' when peek_char2 st = Some '/' ->
    while peek_char st <> None && peek_char st <> Some '\n' do
      advance st
    done;
    skip_ws_and_comments st
  | Some '/' when peek_char2 st = Some '*' ->
    advance st;
    advance st;
    let rec inside () =
      match peek_char st with
      | None -> Diag.error (current_pos st) "unterminated comment"
      | Some '*' when peek_char2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        inside ()
    in
    inside ();
    skip_ws_and_comments st
  | Some _ | None -> ()

let read_while st pred =
  let start = st.pos in
  while (match peek_char st with Some c -> pred c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Integer and float literals.  A leading 0x is hex; a lone leading 0
   followed by digits is octal.  Suffixes: l/L (long), u/U (unsigned),
   f/F (float), in any order/case for the integer ones. *)
let lex_number st pos =
  let body =
    read_while st (fun c ->
        is_hex_digit c || c = '.' || c = 'x' || c = 'X' || c = '+' || c = '-'
        || c = 'u' || c = 'U' || c = 'l' || c = 'L')
  in
  (* read_while above is too eager for '+'/'-': they belong to a literal
     only right after an exponent marker.  Back off if we swallowed an
     operator. *)
  let body, backoff =
    let is_hex =
      String.length body > 1 && (body.[1] = 'x' || body.[1] = 'X')
    in
    let valid_sign i =
      (not is_hex) && i > 0 && (body.[i - 1] = 'e' || body.[i - 1] = 'E')
    in
    let rec find i =
      if i >= String.length body then (body, 0)
      else if (body.[i] = '+' || body.[i] = '-') && not (valid_sign i) then
        (String.sub body 0 i, String.length body - i)
      else find (i + 1)
    in
    find 0
  in
  for _ = 1 to backoff do
    st.pos <- st.pos - 1;
    st.col <- st.col - 1
  done;
  let is_float_lit =
    String.contains body '.'
    || ((not (String.length body > 1 && (body.[1] = 'x' || body.[1] = 'X')))
       && (String.contains body 'e' || String.contains body 'E'))
  in
  if is_float_lit then begin
    let fkind, body =
      let n = String.length body in
      if n > 0 && (body.[n - 1] = 'f' || body.[n - 1] = 'F') then
        (Ctype.FFloat, String.sub body 0 (n - 1))
      else (Ctype.FDouble, body)
    in
    match float_of_string_opt body with
    | Some f -> Token.FLOAT_LIT (f, fkind)
    | None -> Diag.error pos "malformed float literal %S" body
  end
  else begin
    let rec strip_suffix body unsigned long =
      let n = String.length body in
      if n = 0 then (body, unsigned, long)
      else
        match body.[n - 1] with
        | 'u' | 'U' -> strip_suffix (String.sub body 0 (n - 1)) true long
        | 'l' | 'L' -> strip_suffix (String.sub body 0 (n - 1)) unsigned true
        | _ -> (body, unsigned, long)
    in
    let digits, unsigned, long = strip_suffix body false false in
    let value =
      if String.length digits > 1 && (digits.[1] = 'x' || digits.[1] = 'X')
      then Int64.of_string_opt digits
      else if String.length digits > 1 && digits.[0] = '0' then
        Int64.of_string_opt ("0o" ^ String.sub digits 1 (String.length digits - 1))
      else Int64.of_string_opt digits
    in
    match value with
    | Some v ->
      (* C11 6.4.4.1p5: the literal's type is the first in its list that
         can represent the value.  Decimal unsuffixed literals only ever
         go signed (int -> long); hex/octal ones may land on the
         unsigned variant of each width.  A hex value above 2^63-1 wraps
         negative in the int64 carrier and is unsigned long. *)
      let hexoct = String.length digits > 1 && digits.[0] = '0' in
      let fits_int = v >= 0L && v <= 0x7FFF_FFFFL in
      let fits_uint = v >= 0L && v <= 0xFFFF_FFFFL in
      let fits_long = v >= 0L in
      let ikind, sign =
        if long then
          (Ctype.ILong,
           if unsigned || ((not fits_long) && hexoct) then Ctype.Unsigned
           else Ctype.Signed)
        else if unsigned then
          ((if fits_uint then Ctype.IInt else Ctype.ILong), Ctype.Unsigned)
        else if fits_int then (Ctype.IInt, Ctype.Signed)
        else if hexoct && fits_uint then (Ctype.IInt, Ctype.Unsigned)
        else if fits_long then (Ctype.ILong, Ctype.Signed)
        else (Ctype.ILong, Ctype.Unsigned)
      in
      Token.INT_LIT (v, ikind, sign)
    | None -> Diag.error pos "malformed integer literal %S" body
  end

let lex_escape st pos =
  advance st;
  (* past the backslash *)
  match peek_char st with
  | None -> Diag.error pos "unterminated escape"
  | Some c -> begin
    advance st;
    match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '\'' -> '\''
    | '"' -> '"'
    | 'a' -> '\007'
    | 'b' -> '\b'
    | 'f' -> '\012'
    | 'v' -> '\011'
    | 'x' ->
      let hex = read_while st is_hex_digit in
      if hex = "" then Diag.error pos "malformed \\x escape"
      else Char.chr (int_of_string ("0x" ^ hex) land 0xff)
    | c -> Diag.error pos "unknown escape \\%c" c
  end

let lex_string st pos =
  advance st;
  (* past opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None | Some '\n' -> Diag.error pos "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      Buffer.add_char buf (lex_escape st pos);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let lex_char st pos =
  advance st;
  (* past opening quote *)
  let c =
    match peek_char st with
    | None -> Diag.error pos "unterminated char literal"
    | Some '\\' -> lex_escape st pos
    | Some c ->
      advance st;
      c
  in
  (match peek_char st with
  | Some '\'' -> advance st
  | _ -> Diag.error pos "unterminated char literal");
  c

(* Punctuators, longest first. *)
let puncts3 = [ "..."; "<<="; ">>=" ]

let puncts2 =
  [
    "->"; "++"; "--"; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+=";
    "-="; "*="; "/="; "%="; "&="; "|="; "^=";
  ]

let puncts1 =
  [
    "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "~"; "&"; "|"; "^"; "?"; ":";
    ";"; ","; "."; "("; ")"; "["; "]"; "{"; "}";
  ]

let try_punct st =
  let try_at n candidates =
    if st.pos + n <= String.length st.src then begin
      let s = String.sub st.src st.pos n in
      if List.mem s candidates then Some s else None
    end
    else None
  in
  match try_at 3 puncts3 with
  | Some s -> Some s
  | None -> begin
    match try_at 2 puncts2 with
    | Some s -> Some s
    | None -> try_at 1 puncts1
  end

(* Preprocessor directive at start of a '#' line.  The '#' has already
   been peeked (not consumed). *)
let lex_directive st expand_text =
  let pos = current_pos st in
  advance st;
  (* '#' *)
  let _ = read_while st (fun c -> c = ' ' || c = '\t') in
  let name = read_while st is_ident_char in
  let rest_of_line () =
    let s = read_while st (fun c -> c <> '\n') in
    s
  in
  match name with
  | "include" ->
    let _ = rest_of_line () in
    ()
  | "define" ->
    let _ = read_while st (fun c -> c = ' ' || c = '\t') in
    let macro_name = read_while st is_ident_char in
    if macro_name = "" then Diag.error pos "#define without a name";
    (match peek_char st with
    | Some '(' -> Diag.error pos "function-like macros are not supported"
    | _ -> ());
    let body = rest_of_line () in
    Hashtbl.replace st.macros macro_name (expand_text body)
  | other -> Diag.error pos "unsupported preprocessor directive #%s" other

(* One raw token (before macro expansion). *)
let rec next_raw st : Token.spanned option =
  skip_ws_and_comments st;
  let pos = current_pos st in
  match peek_char st with
  | None -> None
  | Some '#' when pos.col = 1 || at_line_start st ->
    lex_directive st (tokens_of_text st.macros);
    next_raw st
  | Some c when is_digit c -> Some { tok = lex_number st pos; pos }
  | Some '.' when (match peek_char2 st with Some d -> is_digit d | None -> false)
    -> Some { tok = lex_number st pos; pos }
  | Some c when is_ident_start c ->
    let name = read_while st is_ident_char in
    let tok = if Token.is_keyword name then Token.KW name else Token.IDENT name in
    Some { tok; pos }
  | Some '"' ->
    (* Adjacent string literals concatenate. *)
    let buf = Buffer.create 16 in
    Buffer.add_string buf (lex_string st pos);
    let rec more () =
      skip_ws_and_comments st;
      match peek_char st with
      | Some '"' ->
        Buffer.add_string buf (lex_string st (current_pos st));
        more ()
      | Some _ | None -> ()
    in
    more ();
    Some { tok = Token.STR_LIT (Buffer.contents buf); pos }
  | Some '\'' -> Some { tok = Token.CHAR_LIT (lex_char st pos); pos }
  | Some c -> begin
    match try_punct st with
    | Some p ->
      for _ = 1 to String.length p do
        advance st
      done;
      Some { tok = Token.PUNCT p; pos }
    | None -> Diag.error pos "unexpected character %C" c
  end

(* '#' directives must start a line (possibly after whitespace). *)
and at_line_start st =
  let rec back i =
    if i < 0 then true
    else
      match st.src.[i] with
      | ' ' | '\t' -> back (i - 1)
      | '\n' -> true
      | _ -> false
  in
  back (st.pos - 1)

(* Tokenize a macro body in the context of the current macro table. *)
and tokens_of_text macros text : Token.t list =
  let sub = { src = text; pos = 0; line = 1; col = 1; macros } in
  let rec go acc =
    match next_raw sub with
    | None -> List.rev acc
    | Some { tok; _ } -> go (tok :: acc)
  in
  go []

(** Expand object-like macros, with a depth limit to stop accidental
    recursion. *)
let expand_macros macros (toks : Token.spanned list) : Token.spanned list =
  let rec expand depth (t : Token.spanned) : Token.spanned list =
    match t.tok with
    | Token.IDENT name when depth < 8 && Hashtbl.mem macros name ->
      let body = Hashtbl.find macros name in
      List.concat_map
        (fun tok -> expand (depth + 1) { Token.tok; pos = t.pos })
        body
    | _ -> [ t ]
  in
  List.concat_map (expand 0) toks

(** Tokenize a full translation unit.  [start_line] renumbers the first
    line (it may be zero or negative: the loader uses this so user code
    compiled behind the libc prelude still reports its own 1-based
    lines). *)
let tokenize ?(start_line = 1) src : Token.spanned list =
  let st = make src in
  st.line <- start_line;
  let rec go acc =
    match next_raw st with
    | None -> List.rev ({ Token.tok = Token.EOF; pos = current_pos st } :: acc)
    | Some t -> go (t :: acc)
  in
  let raw = go [] in
  expand_macros st.macros raw
