(** The cross-engine differential oracle.

    Runs one C source through every engine configuration — the managed
    Safe Sulong interpreter (plain, folded, safe-JIT-optimized, and with
    front-end immediate folding disabled), plus the modeled Clang -O0 and
    -O3 native pipelines — and demands identical outcome, output and
    exit status from all of them.  Additionally, when the caller knows a
    reference-predicted prefix of the output (see [Cprog.expected_lines]),
    the common output must start with it: front-end constant folding is
    shared by every configuration, so a folding bug produces outputs
    that are *consistently* wrong and only an independent reference can
    convict them. *)

type observation = {
  ob_config : string;
  ob_key : string;  (** normalized outcome: [finished:N], [detected:K], … *)
  ob_output : string;
  ob_loc : string option;
      (** fault provenance [file:line:col] from the managed bug report,
          when the configuration detected an error with one — feeds the
          campaign's deduplication signature (Difftest.signature) *)
}

type verdict =
  | Agree of string  (** all configurations agree; common stdout *)
  | Reject of string
      (** every configuration failed identically before/without running
          (front-end rejection) or finished abnormally in the same way —
          the input is outside the supported subset, not a divergence *)
  | Diverge of { mismatch : string; observations : observation list }

type config = {
  cfg_name : string;
  cfg_target :
    [ `Managed of [ `Plain | `Tiered | `FoldOnly | `SafeJit ]
    | `Native of Pipeline.level ];
  cfg_fe_fold : bool;  (** front-end immediate folding ([Lower.fold_immediates]) *)
}

(** Every configuration the oracle compares.  The [nofefold] variants
    re-run lowering with immediate folding off, so literal conversions
    execute as real cast instructions — any disagreement between the
    folded and executed form of a conversion shows up as a divergence
    between these rows. *)
let configs : config list =
  [
    { cfg_name = "sulong"; cfg_target = `Managed `Plain; cfg_fe_fold = true };
    (* The real tier-2 engine, forced hot (threshold 0) so every
       function runs closure-compiled: generated programs are far too
       small to cross the production threshold, and the point is to
       convict any divergence between interpreted and compiled code. *)
    { cfg_name = "sulong/tiered"; cfg_target = `Managed `Tiered; cfg_fe_fold = true };
    { cfg_name = "sulong/nofefold"; cfg_target = `Managed `Plain; cfg_fe_fold = false };
    { cfg_name = "sulong/fold"; cfg_target = `Managed `FoldOnly; cfg_fe_fold = true };
    { cfg_name = "sulong/safe-jit"; cfg_target = `Managed `SafeJit; cfg_fe_fold = true };
    { cfg_name = "clang-O0"; cfg_target = `Native Pipeline.O0; cfg_fe_fold = true };
    { cfg_name = "clang-O0/nofefold"; cfg_target = `Native Pipeline.O0; cfg_fe_fold = false };
    { cfg_name = "clang-O3"; cfg_target = `Native Pipeline.O3; cfg_fe_fold = true };
  ]

(* Generated programs are tiny (loop bounds <= 16, nesting <= 2); a small
   step budget keeps a pathological case from stalling a whole run. *)
let step_limit = 10_000_000

(* Guest-step accounting for the campaign's per-seed cost ledger: every
   managed configuration's final [steps] adds to this process-wide
   total; callers read the delta around a [check] (native configurations
   execute no managed steps and contribute nothing). *)
let steps_counter = ref 0
let steps_total () = !steps_counter

let with_fe_fold flag f =
  let saved = !Lower.fold_immediates in
  Lower.fold_immediates := flag;
  Fun.protect ~finally:(fun () -> Lower.fold_immediates := saved) f

let outcome_key (o : Outcome.t) : string =
  match o with
  | Outcome.Finished n -> Printf.sprintf "finished:%d" n
  | Outcome.Detected { kind; _ } -> "detected:" ^ kind
  | Outcome.Crashed _ -> "crashed"
  | Outcome.Timeout -> "timeout"

(* Parse/sema/lower rejections and verifier failures turn into error
   keys; a rejection is uniform across configurations and classified as
   such by [check], while a config-dependent exception (e.g. a transform
   producing IR the verifier rejects) diverges. *)
let guard (f : unit -> 'a) : ('a, string) result =
  try Ok (f ()) with e -> Error ("error:" ^ Printexc.to_string e)

(** Front-end products shared by every configuration with the same
    immediate-folding setting: the user module is parsed once and the
    managed link (libc copy + link + verify) runs once, instead of once
    per configuration — the dominant per-seed cost for the tiny
    generated programs.  Safe to share because nothing downstream
    mutates them: the native pipeline and the managed middle-end
    configurations each rewrite an [Irmod.copy], and the interpreter
    only reads the module it prepares.  Lazy so a seed exercising only
    one folding mode never pays for the other, and so a front-end
    failure memoizes as the same error key the failing configurations
    all report. *)
type frontend = {
  fe_user : (Irmod.t, string) result Lazy.t;
  fe_managed : (Irmod.t, string) result Lazy.t;
}

let frontend_of (src : string) (fold : bool) : frontend =
  let fe_user =
    lazy (guard (fun () -> with_fe_fold fold (fun () -> Loader.compile_user src)))
  in
  let fe_managed =
    lazy
      (match Lazy.force fe_user with
      | Error _ as e -> e
      | Ok user ->
        guard (fun () ->
            let linked =
              (* the shared (uncopied) libc: [link] is pure and every
                 mutating configuration copies the linked module first *)
              Trace.span "link" (fun () ->
                  Irmod.link user (Loader.libc_module_shared ()))
            in
            Trace.span "verify" (fun () -> Verify.verify linked);
            linked))
  in
  { fe_user; fe_managed }

let run_config (fe : frontend) (c : config) : observation =
  let key, output, loc =
    match c.cfg_target with
    | `Native level -> (
      match Lazy.force fe.fe_user with
      | Error key -> (key, "", None)
      | Ok user -> (
        match
          guard (fun () -> Engine.run_clang_module ~step_limit ~level user)
        with
        | Error key -> (key, "", None)
        | Ok r -> (outcome_key r.Engine.outcome, r.Engine.output, None)))
    | `Managed mode -> (
      match Lazy.force fe.fe_managed with
      | Error key -> (key, "", None)
      | Ok linked -> (
        match
          guard (fun () ->
              let m =
                match mode with
                | `Plain | `Tiered -> linked
                | `FoldOnly ->
                  let m = Irmod.copy linked in
                  let rounds = ref 0 in
                  while !rounds < 8 && Fold.run m do
                    incr rounds
                  done;
                  Verify.verify m;
                  m
                | `SafeJit ->
                  let m = Irmod.copy linked in
                  ignore (Pipeline.safe_jit m);
                  Verify.verify m;
                  m
              in
              let tier =
                match mode with
                | `Tiered -> Some (Tier.controller ~threshold:0 ())
                | `Plain | `FoldOnly | `SafeJit -> None
              in
              let st =
                Interp.create ~step_limit ~mementos:true ~detect_uninit:false
                  ~input:"" ?tier m
              in
              Interp.run ~argv:[ "program" ] st)
        with
        | Error key -> (key, "", None)
        | Ok r ->
          steps_counter := !steps_counter + r.Interp.steps;
          let key =
            if r.Interp.timed_out then "timeout"
            else
              match r.Interp.error with
              | Some (cat, _) -> "detected:" ^ Merror.category_name cat
              | None -> Printf.sprintf "finished:%d" r.Interp.exit_code
          in
          let loc =
            match r.Interp.report with
            | None -> None
            | Some rep ->
              Option.map Bugreport.frame_loc (Bugreport.fault_frame rep)
          in
          (key, r.Interp.output, loc)))
  in
  { ob_config = c.cfg_name; ob_key = key; ob_output = output; ob_loc = loc }

let has_prefix ~prefix s =
  let pl = String.length prefix in
  String.length s >= pl && String.sub s 0 pl = prefix

let is_error key = has_prefix ~prefix:"error:" key

(** Compare [src] across all configurations.  [expected] is the
    reference-predicted output prefix, when available. *)
let check ?expected (src : string) : verdict =
  let fold_fe = frontend_of src true in
  let nofold_fe = frontend_of src false in
  let obs =
    List.map
      (fun c -> run_config (if c.cfg_fe_fold then fold_fe else nofold_fe) c)
      configs
  in
  match obs with
  | [] -> assert false
  | first :: rest ->
    let same o = o.ob_key = first.ob_key && o.ob_output = first.ob_output in
    let disagreeing = List.filter (fun o -> not (same o)) rest in
    if disagreeing <> [] then
      let d = List.hd disagreeing in
      let what =
        if d.ob_key <> first.ob_key then
          Printf.sprintf "outcome %s (%s) vs %s (%s)" first.ob_key
            first.ob_config d.ob_key d.ob_config
        else
          Printf.sprintf "output differs between %s and %s" first.ob_config
            d.ob_config
      in
      Diverge { mismatch = what; observations = obs }
    else if is_error first.ob_key then Reject first.ob_key
    else if first.ob_key <> "finished:0" then
      (* Uniform abnormal end: for generated inputs this means the
         generator escaped the well-defined subset, not that an engine
         misbehaved — surfaced as a reject so runs stay zero-divergence
         only when genuinely clean. *)
      Reject ("abnormal: " ^ first.ob_key)
    else begin
      match expected with
      | Some prefix when not (has_prefix ~prefix first.ob_output) ->
        Diverge
          {
            mismatch = "all configurations disagree with the reference \
                        evaluator on a constant expression";
            observations =
              obs
              @ [ { ob_config = "reference"; ob_key = "finished:0";
                    ob_output = prefix; ob_loc = None } ];
          }
      | _ -> Agree first.ob_output
    end
