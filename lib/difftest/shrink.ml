(** Greedy delta-debugging reducer for divergent difftest programs.

    Works on the typed mini-AST, not on source text: every candidate is
    re-validated with [Cprog.well_formed], so shrinking can never
    manufacture undefined behaviour (out-of-bounds index, zero divisor,
    oversized shift, overwritten strlen NUL) that would turn a genuine
    miscompilation report into garbage.  Candidates must be strictly
    smaller under [Cprog.size] (rendered length), which makes the greedy
    loop terminate; the oracle predicate is re-tested per candidate
    under a caller-supplied budget. *)

open Cprog

(* ---------------- expression reductions ---------------- *)

(* Children of [e], coerced to [e]'s static type so the replacement
   can't change the typing of the surrounding context. *)
let hoistable_children (e : expr) : expr list =
  let t = type_of e in
  let coerce s = if type_of s = t then s else Cast (t, s) in
  let kids =
    match e with
    | Un (_, a) | Cast (_, a) -> [ a ]
    | Bin (_, a, b) -> [ a; b ]
    | Cond (c, a, b) -> [ c; a; b ]
    | Call (_, _, args) ->
      (* Pointer arguments are bare names, not hoistable values. *)
      List.filter
        (fun a -> match type_of a with Pt _ -> false | It _ | Ft _ -> true)
        args
    | Const _ | FConst _ | EnumRef _ | Var _ | Read _ | Field _ | Strlen _
    | PRead _ | PCmp _ | PDiff _ ->
      []
  in
  List.map coerce kids

(* Nearest power of two: the float-constant analogue of "shrink toward
   zero/one" — powers of two have the simplest significands, so a
   surviving divergence is easier to reason about by hand. *)
let nearest_pow2 (f : float) : float =
  if f = 0.0 || f <> f || f -. f <> 0.0 then 1.0
  else 2.0 ** Float.round (Float.log2 (Float.abs f))

let expr_reductions (e : expr) : expr list =
  match type_of e with
  | Ft ft ->
    let cands =
      match e with
      | FConst (f, _) ->
        List.filter
          (fun c -> c <> f)
          [ 0.0; 1.0; round_f ft (nearest_pow2 f) ]
      | _ -> [ 0.0; 1.0 ]
    in
    hoistable_children e
    @ List.filter_map
        (fun c -> if fconst_ok c ft then Some (FConst (c, ft)) else None)
        cands
  | It t ->
    let consts =
      match e with
      | Const (0L, _) -> []
      | Const (1L, _) -> [ Const (0L, t) ]
      | _ -> [ Const (0L, t); Const (1L, t) ]
    in
    hoistable_children e @ consts
  | Pt _ ->
    (* A bare pointer value (a call's pointer argument): nothing to
       reduce — dropping the pointer itself is a separate candidate. *)
    []

(* Every subexpression occurrence of [e], paired with a rebuild of the
   whole expression from a replacement at that occurrence. *)
let rec expr_sites (e : expr) (rebuild : expr -> 'a) : (expr * (expr -> 'a)) list
    =
  (e, rebuild)
  ::
  (match e with
  | Un (u, a) -> expr_sites a (fun a' -> rebuild (Un (u, a')))
  | Bin (op, a, b) ->
    expr_sites a (fun a' -> rebuild (Bin (op, a', b)))
    @ expr_sites b (fun b' -> rebuild (Bin (op, a, b')))
  | Cast (t, a) -> expr_sites a (fun a' -> rebuild (Cast (t, a')))
  | Cond (c, a, b) ->
    expr_sites c (fun c' -> rebuild (Cond (c', a, b)))
    @ expr_sites a (fun a' -> rebuild (Cond (c, a', b)))
    @ expr_sites b (fun b' -> rebuild (Cond (c, a, b')))
  | Call (n, r, args) ->
    List.concat
      (List.mapi
         (fun i a ->
           expr_sites a (fun a' ->
               rebuild
                 (Call (n, r, List.mapi (fun j x -> if i = j then a' else x) args))))
         args)
  | Const _ | FConst _ | EnumRef _ | Var _ | Read _ | Field _ | Strlen _
  | PRead _ | PCmp _ | PDiff _ -> [])

(* ---------------- statement-level variants ---------------- *)

let replace_nth i x xs = List.mapi (fun j y -> if i = j then x else y) xs

let remove_nth i xs = List.filteri (fun j _ -> i <> j) xs

let splice_nth i repl xs =
  List.concat (List.mapi (fun j y -> if i = j then repl else [ y ]) xs)

(* Structural reductions of one statement: unwrap a structured statement
   into (a subset of) its children. *)
let stmt_unwraps (s : stmt) : stmt list list =
  match s with
  | If (_, a, b) -> [ a; b; a @ b ]
  | Loop (_, _, body) -> [ body ]
  | Switch (_, arms, d) -> [] :: d :: List.map snd arms
  | Assign _ | AStore _ | FStore _ | PStore _ | Memcpy _ | Memset _ -> [ [] ]

(* All one-change variants of a statement list: drop a statement, unwrap
   a structured statement, shrink a loop bound or a memcpy/memset
   length, drop a switch arm, or recurse into nested lists. *)
let rec stmts_variants (ss : stmt list) : stmt list list =
  let drops = List.mapi (fun i _ -> remove_nth i ss) ss in
  let unwraps =
    List.concat
      (List.mapi
         (fun i s -> List.map (fun repl -> splice_nth i repl ss) (stmt_unwraps s))
         ss)
  in
  let nested =
    List.concat
      (List.mapi
         (fun i s ->
           List.map (fun s' -> replace_nth i s' ss) (stmt_variants s))
         ss)
  in
  drops @ unwraps @ nested

and stmt_variants (s : stmt) : stmt list =
  match s with
  | If (c, a, b) ->
    List.map (fun a' -> If (c, a', b)) (stmts_variants a)
    @ List.map (fun b' -> If (c, a, b')) (stmts_variants b)
  | Loop (v, n, body) ->
    (if n > 1 then [ Loop (v, 1, body) ] else [])
    @ List.map (fun b' -> Loop (v, n, b')) (stmts_variants body)
  | Switch (e, arms, d) ->
    List.mapi (fun i _ -> Switch (e, remove_nth i arms, d)) arms
    @ List.concat
        (List.mapi
           (fun i (k, body) ->
             List.map
               (fun b' -> Switch (e, replace_nth i (k, b') arms, d))
               (stmts_variants body))
           arms)
    @ List.map (fun d' -> Switch (e, arms, d')) (stmts_variants d)
  | Memcpy (d, src, l) -> if l > 1 then [ Memcpy (d, src, 1) ] else []
  | Memset (a, v, l) ->
    (if v <> 0 then [ Memset (a, 0, l) ] else [])
    @ if l > 1 then [ Memset (a, v, 1) ] else []
  | Assign _ | AStore _ | FStore _ | PStore _ -> []

(* ---------------- expression sites of a whole program ---------------- *)

let rec stmt_expr_sites (s : stmt) (rb : stmt -> program) :
    (expr * (expr -> program)) list =
  match s with
  | Assign (n, e) -> expr_sites e (fun e' -> rb (Assign (n, e')))
  | AStore (a, ix, e) -> expr_sites e (fun e' -> rb (AStore (a, ix, e')))
  | FStore (f, e) -> expr_sites e (fun e' -> rb (FStore (f, e')))
  | PStore (n, ix, e) -> expr_sites e (fun e' -> rb (PStore (n, ix, e')))
  | If (c, a, b) ->
    expr_sites c (fun c' -> rb (If (c', a, b)))
    @ stmts_expr_sites a (fun a' -> rb (If (c, a', b)))
    @ stmts_expr_sites b (fun b' -> rb (If (c, a, b')))
  | Loop (v, n, body) ->
    stmts_expr_sites body (fun b' -> rb (Loop (v, n, b')))
  | Switch (e, arms, d) ->
    expr_sites e (fun e' -> rb (Switch (e', arms, d)))
    @ List.concat
        (List.mapi
           (fun i (k, body) ->
             stmts_expr_sites body (fun b' ->
                 rb (Switch (e, replace_nth i (k, b') arms, d))))
           arms)
    @ stmts_expr_sites d (fun d' -> rb (Switch (e, arms, d')))
  | Memcpy _ | Memset _ -> []

and stmts_expr_sites (ss : stmt list) (rb : stmt list -> program) :
    (expr * (expr -> program)) list =
  List.concat
    (List.mapi
       (fun i s -> stmt_expr_sites s (fun s' -> rb (replace_nth i s' ss)))
       ss)

let func_expr_sites (p : program) : (expr * (expr -> program)) list =
  List.concat
    (List.mapi
       (fun i f ->
         let rbf f' = { p with funcs = replace_nth i f' p.funcs } in
         List.concat
           (List.mapi
              (fun j (n, s, e) ->
                expr_sites e (fun e' ->
                    rbf
                      { f with
                        fn_locals = replace_nth j (n, s, e') f.fn_locals }))
              f.fn_locals)
         @ stmts_expr_sites f.fn_body (fun b -> rbf { f with fn_body = b })
         @ expr_sites f.fn_ret_expr (fun e' -> rbf { f with fn_ret_expr = e' }))
       p.funcs)

let program_expr_sites (p : program) : (expr * (expr -> program)) list =
  List.concat
    [
      List.concat
        (List.mapi
           (fun i (n, e) ->
             expr_sites e (fun e' ->
                 { p with enums = replace_nth i (n, e') p.enums }))
           p.enums);
      List.concat
        (List.mapi
           (fun i (n, t, e) ->
             expr_sites e (fun e' ->
                 { p with globals = replace_nth i (n, t, e') p.globals }))
           p.globals);
      func_expr_sites p;
      List.concat
        (List.mapi
           (fun i (n, e) ->
             expr_sites e (fun e' ->
                 { p with rcs = replace_nth i (n, e') p.rcs }))
           p.rcs);
      List.concat
        (List.mapi
           (fun i (n, t, e) ->
             expr_sites e (fun e' ->
                 { p with locals = replace_nth i (n, t, e') p.locals }))
           p.locals);
      stmts_expr_sites p.body (fun body -> { p with body });
    ]

(* ---------------- helper-function removal ---------------- *)

(* Replace every call to [name] (anywhere: other helpers, rcs, locals,
   body) with a type-correct constant, then drop the helper itself.  A
   plain entity drop would leave dangling calls that [well_formed]
   rejects, so the inlining must be program-wide and atomic. *)
let rec subst_call name repl (e : expr) : expr =
  let r = subst_call name repl in
  match e with
  | Call (n, _, _) when n = name -> repl
  | Call (n, rt, args) -> Call (n, rt, List.map r args)
  | Un (u, a) -> Un (u, r a)
  | Bin (op, a, b) -> Bin (op, r a, r b)
  | Cast (s, a) -> Cast (s, r a)
  | Cond (c, a, b) -> Cond (r c, r a, r b)
  | Const _ | FConst _ | EnumRef _ | Var _ | Read _ | Field _ | Strlen _
  | PRead _ | PCmp _ | PDiff _ -> e

let rec map_stmt_exprs f (s : stmt) : stmt =
  match s with
  | Assign (n, e) -> Assign (n, f e)
  | AStore (a, ix, e) -> AStore (a, ix, f e)
  | FStore (g, e) -> FStore (g, f e)
  | PStore (n, ix, e) -> PStore (n, ix, f e)
  | If (c, a, b) ->
    If (f c, List.map (map_stmt_exprs f) a, List.map (map_stmt_exprs f) b)
  | Loop (v, n, body) -> Loop (v, n, List.map (map_stmt_exprs f) body)
  | Switch (e, arms, d) ->
    Switch
      ( f e,
        List.map (fun (k, body) -> (k, List.map (map_stmt_exprs f) body)) arms,
        List.map (map_stmt_exprs f) d )
  | Memcpy _ | Memset _ -> s

let drop_func (p : program) (i : int) : program =
  let fc = List.nth p.funcs i in
  let repl =
    match fc.fn_ret with
    | It t | Pt t -> Const (0L, t) (* Pt unreachable: no pointer returns *)
    | Ft ft -> FConst (0.0, ft)
  in
  let fx = subst_call fc.fn_name repl in
  let map_func f =
    { f with
      fn_locals = List.map (fun (n, s, e) -> (n, s, fx e)) f.fn_locals;
      fn_body = List.map (map_stmt_exprs fx) f.fn_body;
      fn_ret_expr = fx f.fn_ret_expr }
  in
  { p with
    funcs = List.map map_func (remove_nth i p.funcs);
    rcs = List.map (fun (n, e) -> (n, fx e)) p.rcs;
    locals = List.map (fun (n, s, e) -> (n, s, fx e)) p.locals;
    body = List.map (map_stmt_exprs fx) p.body }

(* ---------------- pointer removal ---------------- *)

(* Drop pointer [i] wholesale: any later alias of it is rebased directly
   onto its initializer (static resolution composes, so the rebased
   alias resolves to the same cell), loads/compares of it collapse to
   zero constants, calls passing it rebind the argument to a surviving
   same-element-type pointer or collapse to a constant themselves, and
   stores through it disappear.  [well_formed] re-validates the result,
   so any rebase this gets wrong is filtered, never shipped. *)
let drop_ptr (p : program) (i : int) : program =
  let pn, pt, pinit = List.nth p.ptrs i in
  let rebase (n, t, pi) =
    match pi with
    | Palias (q, k) when q = pn -> begin
      match pinit with
      | PaddrScalar x ->
        (n, t, PaddrScalar x) (* extent 1 forces k = 0 when well-formed *)
      | PaddrArr (a, j) -> (n, t, PaddrArr (a, j + k))
      | Palias (r, j) -> (n, t, Palias (r, j + k))
    end
    | _ -> (n, t, pi)
  in
  let ptrs = List.map rebase (remove_nth i p.ptrs) in
  let replacement = List.find_opt (fun (_, t, _) -> t = pt) ptrs in
  let rec fx e =
    match e with
    | Var (n, Pt t) when n = pn -> begin
      match replacement with
      | Some (rn, _, _) -> Var (rn, Pt t)
      | None -> e (* left dangling here; the Call case collapses it *)
    end
    | PRead (n, t, _) when n = pn -> Const (0L, t)
    | PCmp (_, a, b) when a = pn || b = pn -> Const (0L, I32)
    | PDiff (a, b) when a = pn || b = pn -> Const (0L, I64)
    | Call (n, rt, args) ->
      let args' = List.map fx args in
      let dangling =
        List.exists (function Var (an, Pt _) -> an = pn | _ -> false) args'
      in
      if dangling then (
        match rt with
        | It t | Pt t -> Const (0L, t)
        | Ft ft -> FConst (0.0, ft))
      else Call (n, rt, args')
    | Un (u, a) -> Un (u, fx a)
    | Bin (op, a, b) -> Bin (op, fx a, fx b)
    | Cast (s, a) -> Cast (s, fx a)
    | Cond (c, a, b) -> Cond (fx c, fx a, fx b)
    | Const _ | FConst _ | EnumRef _ | Var _ | Read _ | Field _ | Strlen _
    | PRead _ | PCmp _ | PDiff _ -> e
  in
  let rec fstmt s =
    match s with
    | PStore (n, _, _) when n = pn -> None
    | PStore (n, ix, e) -> Some (PStore (n, ix, fx e))
    | Assign (n, e) -> Some (Assign (n, fx e))
    | AStore (a, ix, e) -> Some (AStore (a, ix, fx e))
    | FStore (f, e) -> Some (FStore (f, fx e))
    | If (c, a, b) -> Some (If (fx c, fstmts a, fstmts b))
    | Loop (v, n, body) -> Some (Loop (v, n, fstmts body))
    | Switch (e, arms, d) ->
      Some
        (Switch (fx e, List.map (fun (k, b) -> (k, fstmts b)) arms, fstmts d))
    | Memcpy _ | Memset _ -> Some s
  and fstmts ss = List.filter_map fstmt ss in
  { p with
    ptrs;
    funcs =
      List.map
        (fun f ->
          { f with
            fn_locals = List.map (fun (n, s, e) -> (n, s, fx e)) f.fn_locals;
            fn_body = fstmts f.fn_body;
            fn_ret_expr = fx f.fn_ret_expr })
        p.funcs;
    rcs = List.map (fun (n, e) -> (n, fx e)) p.rcs;
    locals = List.map (fun (n, s, e) -> (n, s, fx e)) p.locals;
    body = fstmts p.body }

(* ---------------- candidates ---------------- *)

(** All one-change reduction candidates, structural drops first (they
    remove the most text per oracle call). *)
let candidates (p : program) : program list =
  let entity_drops =
    List.mapi (fun i _ -> { p with enums = remove_nth i p.enums }) p.enums
    @ List.mapi (fun i _ -> { p with globals = remove_nth i p.globals }) p.globals
    @ List.mapi (fun i _ -> { p with fields = remove_nth i p.fields }) p.fields
    @ List.mapi (fun i _ -> { p with arrays = remove_nth i p.arrays }) p.arrays
    @ List.mapi (fun i _ -> drop_func p i) p.funcs
    @ List.mapi (fun i _ -> drop_ptr p i) p.ptrs
    @ List.mapi (fun i _ -> { p with rcs = remove_nth i p.rcs }) p.rcs
    @ List.mapi (fun i _ -> { p with locals = remove_nth i p.locals }) p.locals
  in
  let body_variants =
    List.map (fun body -> { p with body }) (stmts_variants p.body)
  in
  let func_body_variants =
    List.concat
      (List.mapi
         (fun i f ->
           List.map
             (fun b -> { p with funcs = replace_nth i { f with fn_body = b } p.funcs })
             (stmts_variants f.fn_body))
         p.funcs)
  in
  let expr_shrinks =
    List.concat
      (List.map
         (fun (e, rebuild) -> List.map rebuild (expr_reductions e))
         (program_expr_sites p))
  in
  entity_drops @ body_variants @ func_body_variants @ expr_shrinks

(* ---------------- the greedy loop ---------------- *)

type result = { reduced : program; oracle_calls : int }

(** [reduce ~test ~budget p] greedily applies the first size-reducing
    candidate that still satisfies [test] (the "still diverges"
    predicate), until a fixpoint or until [budget] oracle calls have
    been spent.  [p] itself is assumed to satisfy [test]. *)
let reduce ~(test : program -> bool) ~(budget : int) (p0 : program) : result =
  let calls = ref 0 in
  let try_p p =
    if !calls >= budget then false
    else begin
      incr calls;
      test p
    end
  in
  let rec go cur =
    if !calls >= budget then cur
    else begin
      let limit = size cur in
      let viable c = well_formed c && size c < limit in
      match List.find_opt (fun c -> viable c && try_p c) (candidates cur) with
      | Some smaller -> go smaller
      | None -> cur
    end
  in
  let reduced = go p0 in
  { reduced; oracle_calls = !calls }
