(** Greedy delta-debugging reducer for divergent difftest programs.

    Works on the typed mini-AST, not on source text: every candidate is
    re-validated with [Cprog.well_formed], so shrinking can never
    manufacture undefined behaviour (out-of-bounds index, zero divisor,
    oversized shift) that would turn a genuine miscompilation report
    into garbage.  Candidates must be strictly smaller under
    [Cprog.size] (rendered length), which makes the greedy loop
    terminate; the oracle predicate is re-tested per candidate under a
    caller-supplied budget. *)

open Cprog

(* ---------------- expression reductions ---------------- *)

(* Children of [e], coerced to [e]'s static type so the replacement
   can't change the typing of the surrounding context. *)
let hoistable_children (e : expr) : expr list =
  let t = type_of e in
  let coerce s = if type_of s = t then s else Cast (t, s) in
  let kids =
    match e with
    | Un (_, a) | Cast (_, a) -> [ a ]
    | Bin (_, a, b) -> [ a; b ]
    | Cond (c, a, b) -> [ c; a; b ]
    | Const _ | EnumRef _ | Var _ | Read _ | Field _ -> []
  in
  List.map coerce kids

let expr_reductions (e : expr) : expr list =
  let t = type_of e in
  let consts =
    match e with
    | Const (0L, _) -> []
    | Const (1L, _) -> [ Const (0L, t) ]
    | Const _ -> [ Const (0L, t); Const (1L, t) ]
    | _ -> [ Const (0L, t); Const (1L, t) ]
  in
  hoistable_children e @ consts

(* Every subexpression occurrence of [e], paired with a rebuild of the
   whole expression from a replacement at that occurrence. *)
let rec expr_sites (e : expr) (rebuild : expr -> 'a) : (expr * (expr -> 'a)) list
    =
  (e, rebuild)
  ::
  (match e with
  | Un (u, a) -> expr_sites a (fun a' -> rebuild (Un (u, a')))
  | Bin (op, a, b) ->
    expr_sites a (fun a' -> rebuild (Bin (op, a', b)))
    @ expr_sites b (fun b' -> rebuild (Bin (op, a, b')))
  | Cast (t, a) -> expr_sites a (fun a' -> rebuild (Cast (t, a')))
  | Cond (c, a, b) ->
    expr_sites c (fun c' -> rebuild (Cond (c', a, b)))
    @ expr_sites a (fun a' -> rebuild (Cond (c, a', b)))
    @ expr_sites b (fun b' -> rebuild (Cond (c, a, b')))
  | Const _ | EnumRef _ | Var _ | Read _ | Field _ -> [])

(* ---------------- statement-level variants ---------------- *)

let replace_nth i x xs = List.mapi (fun j y -> if i = j then x else y) xs

let remove_nth i xs = List.filteri (fun j _ -> i <> j) xs

let splice_nth i repl xs =
  List.concat (List.mapi (fun j y -> if i = j then repl else [ y ]) xs)

(* Structural reductions of one statement: unwrap a structured statement
   into (a subset of) its children. *)
let stmt_unwraps (s : stmt) : stmt list list =
  match s with
  | If (_, a, b) -> [ a; b; a @ b ]
  | Loop (_, _, body) -> [ body ]
  | Switch (_, arms, d) -> [] :: d :: List.map snd arms
  | Assign _ | AStore _ | FStore _ -> [ [] ]

(* All one-change variants of a statement list: drop a statement, unwrap
   a structured statement, shrink a loop bound, drop a switch arm, or
   recurse into nested lists. *)
let rec stmts_variants (ss : stmt list) : stmt list list =
  let drops = List.mapi (fun i _ -> remove_nth i ss) ss in
  let unwraps =
    List.concat
      (List.mapi
         (fun i s -> List.map (fun repl -> splice_nth i repl ss) (stmt_unwraps s))
         ss)
  in
  let nested =
    List.concat
      (List.mapi
         (fun i s ->
           List.map (fun s' -> replace_nth i s' ss) (stmt_variants s))
         ss)
  in
  drops @ unwraps @ nested

and stmt_variants (s : stmt) : stmt list =
  match s with
  | If (c, a, b) ->
    List.map (fun a' -> If (c, a', b)) (stmts_variants a)
    @ List.map (fun b' -> If (c, a, b')) (stmts_variants b)
  | Loop (v, n, body) ->
    (if n > 1 then [ Loop (v, 1, body) ] else [])
    @ List.map (fun b' -> Loop (v, n, b')) (stmts_variants body)
  | Switch (e, arms, d) ->
    List.mapi (fun i _ -> Switch (e, remove_nth i arms, d)) arms
    @ List.concat
        (List.mapi
           (fun i (k, body) ->
             List.map
               (fun b' -> Switch (e, replace_nth i (k, b') arms, d))
               (stmts_variants body))
           arms)
    @ List.map (fun d' -> Switch (e, arms, d')) (stmts_variants d)
  | Assign _ | AStore _ | FStore _ -> []

(* ---------------- expression sites of a whole program ---------------- *)

let rec stmt_expr_sites (s : stmt) (rb : stmt -> program) :
    (expr * (expr -> program)) list =
  match s with
  | Assign (n, e) -> expr_sites e (fun e' -> rb (Assign (n, e')))
  | AStore (a, ix, e) -> expr_sites e (fun e' -> rb (AStore (a, ix, e')))
  | FStore (f, e) -> expr_sites e (fun e' -> rb (FStore (f, e')))
  | If (c, a, b) ->
    expr_sites c (fun c' -> rb (If (c', a, b)))
    @ stmts_expr_sites a (fun a' -> rb (If (c, a', b)))
    @ stmts_expr_sites b (fun b' -> rb (If (c, a, b')))
  | Loop (v, n, body) ->
    stmts_expr_sites body (fun b' -> rb (Loop (v, n, b')))
  | Switch (e, arms, d) ->
    expr_sites e (fun e' -> rb (Switch (e', arms, d)))
    @ List.concat
        (List.mapi
           (fun i (k, body) ->
             stmts_expr_sites body (fun b' ->
                 rb (Switch (e, replace_nth i (k, b') arms, d))))
           arms)
    @ stmts_expr_sites d (fun d' -> rb (Switch (e, arms, d')))

and stmts_expr_sites (ss : stmt list) (rb : stmt list -> program) :
    (expr * (expr -> program)) list =
  List.concat
    (List.mapi
       (fun i s -> stmt_expr_sites s (fun s' -> rb (replace_nth i s' ss)))
       ss)

let program_expr_sites (p : program) : (expr * (expr -> program)) list =
  List.concat
    [
      List.concat
        (List.mapi
           (fun i (n, e) ->
             expr_sites e (fun e' ->
                 { p with enums = replace_nth i (n, e') p.enums }))
           p.enums);
      List.concat
        (List.mapi
           (fun i (n, t, e) ->
             expr_sites e (fun e' ->
                 { p with globals = replace_nth i (n, t, e') p.globals }))
           p.globals);
      List.concat
        (List.mapi
           (fun i (n, e) ->
             expr_sites e (fun e' ->
                 { p with rcs = replace_nth i (n, e') p.rcs }))
           p.rcs);
      List.concat
        (List.mapi
           (fun i (n, t, e) ->
             expr_sites e (fun e' ->
                 { p with locals = replace_nth i (n, t, e') p.locals }))
           p.locals);
      stmts_expr_sites p.body (fun body -> { p with body });
    ]

(* ---------------- candidates ---------------- *)

(** All one-change reduction candidates, structural drops first (they
    remove the most text per oracle call). *)
let candidates (p : program) : program list =
  let entity_drops =
    List.mapi (fun i _ -> { p with enums = remove_nth i p.enums }) p.enums
    @ List.mapi (fun i _ -> { p with globals = remove_nth i p.globals }) p.globals
    @ List.mapi (fun i _ -> { p with fields = remove_nth i p.fields }) p.fields
    @ List.mapi (fun i _ -> { p with arrays = remove_nth i p.arrays }) p.arrays
    @ List.mapi (fun i _ -> { p with rcs = remove_nth i p.rcs }) p.rcs
    @ List.mapi (fun i _ -> { p with locals = remove_nth i p.locals }) p.locals
  in
  let body_variants =
    List.map (fun body -> { p with body }) (stmts_variants p.body)
  in
  let expr_shrinks =
    List.concat
      (List.map
         (fun (e, rebuild) -> List.map rebuild (expr_reductions e))
         (program_expr_sites p))
  in
  entity_drops @ body_variants @ expr_shrinks

(* ---------------- the greedy loop ---------------- *)

type result = { reduced : program; oracle_calls : int }

(** [reduce ~test ~budget p] greedily applies the first size-reducing
    candidate that still satisfies [test] (the "still diverges"
    predicate), until a fixpoint or until [budget] oracle calls have
    been spent.  [p] itself is assumed to satisfy [test]. *)
let reduce ~(test : program -> bool) ~(budget : int) (p0 : program) : result =
  let calls = ref 0 in
  let try_p p =
    if !calls >= budget then false
    else begin
      incr calls;
      test p
    end
  in
  let rec go cur =
    if !calls >= budget then cur
    else begin
      let limit = size cur in
      let viable c = well_formed c && size c < limit in
      match List.find_opt (fun c -> viable c && try_p c) (candidates cur) with
      | Some smaller -> go smaller
      | None -> cur
    end
  in
  let reduced = go p0 in
  { reduced; oracle_calls = !calls }
