(** Work-stealing, fault-tolerant difftest campaigns.

    The original [--jobs] path forked one worker per contiguous shard
    and read a bare [Marshal.from_channel] payload from each: one dead
    worker aborted the whole campaign via [failwith] and discarded every
    finished shard, the [?progress] callback was silently dropped, and
    SIGINT left orphaned workers behind.  This driver replaces it:

    - the parent keeps a queue of small seed *chunks* and hands them to
      a pool of forked workers over pipes, so a fast worker steals the
      work a slow one would have serialized behind;
    - every message is a length-prefixed, checksummed [Wire] frame — a
      truncated or corrupted payload reads as a worker death, never as
      a parent crash;
    - a worker that dies is reaped and respawned, and its in-flight
      chunk is requeued: no seed is ever lost or run twice;
    - completed chunks are appended to a JSON ledger on disk as they
      arrive, so an interrupted campaign resumes from the last completed
      chunk ([resume]);
    - divergences are folded into a [Bugstore] keyed by provenance
      signature (error kind × file:line:col × disagreeing-config
      bitset), so ten thousand seeds hitting one bad fold surface as one
      bug with a first-seen seed and a smallest reproducer;
    - SIGINT reaps the pool and leaves the ledger flushed, so Ctrl-C is
      just a pause.

    The ledger is JSON Lines: the first line is a header object with the
    campaign parameters, each following line one completed chunk.  Every
    line is a complete JSON document, so an append interrupted mid-write
    corrupts at most the final line, which [load_ledger] drops. *)

type chunk = { ck_start : int; ck_len : int }

(** Split [seeds] seeds from [seed_start] into chunks of [chunk_size]
    (the last chunk takes the remainder). *)
let chunks_of ~seed_start ~seeds ~chunk_size : chunk list =
  let size = max 1 chunk_size in
  let rec go start acc =
    if start >= seed_start + seeds then List.rev acc
    else
      let len = min size (seed_start + seeds - start) in
      go (start + len) ({ ck_start = start; ck_len = len } :: acc)
  in
  if seeds <= 0 then [] else go seed_start []

type chunk_result = {
  cr_start : int;
  cr_len : int;
  cr_agree : int;
  cr_reject : int;
  cr_divergences : Difftest.divergence list;
  cr_stats : Difftest.seed_stat list;
      (** per-seed wall-clock and managed-step cost, ascending seed;
          [[]] when read from a ledger written before stats existed *)
}

(* Wire messages.  The worker exits cleanly on request-pipe EOF. *)
type to_worker = C_run of chunk
type from_worker = W_result of chunk_result * Metrics.snapshot

type outcome = {
  co_report : Difftest.report;
  co_chunks : chunk_result list;  (** ascending [cr_start]; includes resumed *)
  co_bugs : Bugstore.t;  (** deduplicated divergences, persisted via --bugdb *)
  co_new_bugs : int;  (** signatures first seen during this run *)
  co_worker_deaths : int;
  co_requeues : int;  (** in-flight chunks rescued from dead workers *)
  co_resumed_seeds : int;  (** seeds skipped thanks to the ledger *)
  co_interrupted : bool;  (** SIGINT: partial but resumable *)
}

(* ------------------------------------------------------------------ *)
(* The ledger                                                          *)
(* ------------------------------------------------------------------ *)

exception Ledger_error of string

type header = {
  lh_seed_start : int;
  lh_seeds : int;
  lh_features : Cgen.features;
  lh_chunk : int;
  lh_shrink : bool;
  lh_shrink_budget : int;
}

let ledger_tag = "sulong-difftest-campaign"

let header_line (h : header) : string =
  Printf.sprintf
    "{\"ledger\": \"%s\", \"version\": 1, \"seed_start\": %d, \"seeds\": %d, \
     \"features\": \"%s\", \"chunk\": %d, \"shrink\": %b, \"shrink_budget\": \
     %d}"
    ledger_tag h.lh_seed_start h.lh_seeds
    (Cgen.features_name h.lh_features)
    h.lh_chunk h.lh_shrink h.lh_shrink_budget

let divergence_json (d : Difftest.divergence) : string =
  let esc = Metrics.json_escape in
  Printf.sprintf
    "{\"seed\": %d, \"mismatch\": \"%s\", \"kind\": \"%s\", \"loc\": \"%s\", \
     \"configs\": %d, \"source\": \"%s\", \"reduced\": %s, \"oracle_calls\": \
     %d%s}"
    d.Difftest.dv_seed
    (esc d.Difftest.dv_mismatch)
    (esc d.Difftest.dv_sig.Difftest.sg_kind)
    (esc d.Difftest.dv_sig.Difftest.sg_loc)
    d.Difftest.dv_sig.Difftest.sg_configs
    (esc d.Difftest.dv_source)
    (match d.Difftest.dv_reduced with
    | None -> "null"
    | Some r -> "\"" ^ esc r ^ "\"")
    d.Difftest.dv_oracle_calls
    (match d.Difftest.dv_events with
    | [] -> ""
    | evs ->
      Printf.sprintf ", \"events\": [%s]"
        (String.concat ", " (List.map (fun e -> "\"" ^ esc e ^ "\"") evs)))

let seed_stat_json (s : Difftest.seed_stat) : string =
  Printf.sprintf "[%d, %.6f, %d]" s.Difftest.ss_seed s.Difftest.ss_elapsed_s
    s.Difftest.ss_steps

let chunk_line (cr : chunk_result) : string =
  Printf.sprintf
    "{\"chunk_start\": %d, \"len\": %d, \"agree\": %d, \"rejects\": %d, \
     \"divergences\": [%s], \"seed_stats\": [%s]}"
    cr.cr_start cr.cr_len cr.cr_agree cr.cr_reject
    (String.concat ", " (List.map divergence_json cr.cr_divergences))
    (String.concat ", " (List.map seed_stat_json cr.cr_stats))

(* JSON accessors over the Trace parser (shared with trace validation). *)
let jstr fields k =
  match List.assoc_opt k fields with
  | Some (Trace.Jstr s) -> s
  | _ -> raise (Ledger_error (Printf.sprintf "missing string %S" k))

let jnum fields k =
  match List.assoc_opt k fields with
  | Some (Trace.Jnum v) -> int_of_float v
  | _ -> raise (Ledger_error (Printf.sprintf "missing number %S" k))

let jbool fields k =
  match List.assoc_opt k fields with
  | Some (Trace.Jbool b) -> b
  | _ -> raise (Ledger_error (Printf.sprintf "missing bool %S" k))

let divergence_of_json (j : Trace.json) : Difftest.divergence =
  match j with
  | Trace.Jobj f ->
    {
      Difftest.dv_seed = jnum f "seed";
      dv_mismatch = jstr f "mismatch";
      dv_sig =
        {
          Difftest.sg_kind = jstr f "kind";
          sg_loc = jstr f "loc";
          sg_configs = jnum f "configs";
        };
      dv_source = jstr f "source";
      dv_reduced =
        (match List.assoc_opt "reduced" f with
        | Some (Trace.Jstr s) -> Some s
        | _ -> None);
      dv_oracle_calls = jnum f "oracle_calls";
      dv_events =
        (* absent in ledgers written before the flight recorder *)
        (match List.assoc_opt "events" f with
        | Some (Trace.Jarr evs) ->
          List.filter_map
            (function Trace.Jstr s -> Some s | _ -> None)
            evs
        | _ -> []);
    }
  | _ -> raise (Ledger_error "divergence is not an object")

let chunk_result_of_json (j : Trace.json) : chunk_result =
  match j with
  | Trace.Jobj f ->
    {
      cr_start = jnum f "chunk_start";
      cr_len = jnum f "len";
      cr_agree = jnum f "agree";
      cr_reject = jnum f "rejects";
      cr_divergences =
        (match List.assoc_opt "divergences" f with
        | Some (Trace.Jarr ds) -> List.map divergence_of_json ds
        | _ -> raise (Ledger_error "missing divergences array"));
      cr_stats =
        (* absent in ledgers written before per-seed stats *)
        (match List.assoc_opt "seed_stats" f with
        | Some (Trace.Jarr ss) ->
          List.filter_map
            (function
              | Trace.Jarr [ Trace.Jnum seed; Trace.Jnum el; Trace.Jnum st ]
                ->
                Some
                  {
                    Difftest.ss_seed = int_of_float seed;
                    ss_elapsed_s = el;
                    ss_steps = int_of_float st;
                  }
              | _ -> None)
            ss
        | _ -> []);
    }
  | _ -> raise (Ledger_error "chunk record is not an object")

let header_of_json (j : Trace.json) : header =
  match j with
  | Trace.Jobj f ->
    if (try jstr f "ledger" with Ledger_error _ -> "") <> ledger_tag then
      raise (Ledger_error "not a campaign ledger (bad tag)");
    {
      lh_seed_start = jnum f "seed_start";
      lh_seeds = jnum f "seeds";
      lh_features = Cgen.features_of_string (jstr f "features");
      lh_chunk = jnum f "chunk";
      lh_shrink = jbool f "shrink";
      lh_shrink_budget = jnum f "shrink_budget";
    }
  | _ -> raise (Ledger_error "header is not an object")

(** Parse a ledger file into its header, completed chunks, and the byte
    offset at which a resumed campaign should append.  A final line that
    fails to parse — or that the crashed writer never newline-terminated
    — is a write the previous campaign did not survive: it is dropped
    (its chunk simply reruns) and the append offset points at its first
    byte so [resume] can truncate the torn tail away.  A malformed line
    anywhere else is an error. *)
let load_ledger ~(file : string) : header * chunk_result list * int =
  let ic =
    try open_in_bin file
    with Sys_error msg -> raise (Ledger_error msg)
  in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let full = String.length s in
  let ends_nl = full > 0 && s.[full - 1] = '\n' in
  (* Split into (byte offset, line) pairs, dropping blank lines. *)
  let lines =
    let acc = ref [] and start = ref 0 in
    String.iteri
      (fun i c ->
        if c = '\n' then begin
          acc := (!start, String.sub s !start (i - !start)) :: !acc;
          start := i + 1
        end)
      s;
    if !start < full then acc := (!start, String.sub s !start (full - !start)) :: !acc;
    List.rev !acc |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  match lines with
  | [] -> raise (Ledger_error (file ^ ": empty ledger"))
  | (_, hd) :: rest ->
    let header =
      try header_of_json (Trace.parse_json hd)
      with Trace.Bad msg -> raise (Ledger_error (file ^ ": header: " ^ msg))
    in
    if rest = [] && not ends_nl then
      raise (Ledger_error (file ^ ": header line not newline-terminated"));
    let n = List.length rest in
    let append_at = ref full in
    let chunks =
      List.filteri
        (fun i (off, line) ->
          let torn msg =
            if i = n - 1 then begin
              (* torn final append: rerun that chunk *)
              append_at := off;
              false
            end
            else
              raise
                (Ledger_error (Printf.sprintf "%s: line %d: %s" file (i + 2) msg))
          in
          match Trace.parse_json line with
          | _ ->
            if i = n - 1 && not ends_nl then torn "missing final newline"
            else true
          | exception Trace.Bad msg -> torn msg)
        rest
      |> List.map (fun (_, line) -> chunk_result_of_json (Trace.parse_json line))
    in
    (* Resume-after-resume appends to the same file; keep one record per
       chunk start (they are identical re-runs anyway). *)
    let seen = Hashtbl.create 64 in
    let chunks =
      List.filter
        (fun cr ->
          if Hashtbl.mem seen cr.cr_start then false
          else begin
            Hashtbl.add seen cr.cr_start ();
            true
          end)
        chunks
    in
    (header, chunks, !append_at)

(** The [n] costliest seeds by wall-clock across [crs], descending.
    Chunks resumed from a pre-stats ledger carry no stats and simply
    don't compete. *)
let slowest_seeds ?(n = 10) (crs : chunk_result list) :
    Difftest.seed_stat list =
  List.concat_map (fun cr -> cr.cr_stats) crs
  |> List.sort (fun a b ->
         compare b.Difftest.ss_elapsed_s a.Difftest.ss_elapsed_s)
  |> List.filteri (fun i _ -> i < n)

(* ------------------------------------------------------------------ *)
(* Worker processes                                                    *)
(* ------------------------------------------------------------------ *)

let run_chunk ~features ~shrink ~shrink_budget (ck : chunk) : chunk_result =
  let agree = ref 0 and reject = ref 0 and divs = ref [] and stats = ref [] in
  for i = 0 to ck.ck_len - 1 do
    let r, stat =
      Difftest.run_seed_timed ~features ~shrink ~shrink_budget
        (ck.ck_start + i)
    in
    stats := stat :: !stats;
    match r with
    | `Agree -> incr agree
    | `Reject _ -> incr reject
    | `Diverge d -> divs := d :: !divs
  done;
  {
    cr_start = ck.ck_start;
    cr_len = ck.ck_len;
    cr_agree = !agree;
    cr_reject = !reject;
    cr_divergences = List.rev !divs;
    cr_stats = List.rev !stats;
  }

(* The worker: read a chunk request, run it, ship the result plus this
   chunk's metric snapshot, repeat until the request pipe closes.  The
   parent owns SIGINT shutdown, so workers ignore it; exit is always via
   [Unix._exit] (no atexit, no flushing of inherited channels). *)
let worker_loop ~features ~shrink ~shrink_budget (req : Unix.file_descr)
    (resp : Unix.file_descr) : 'a =
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  let code =
    try
      let rec loop () =
        match (Wire.recv req : (to_worker, Wire.error) result) with
        | Error `Eof -> 0
        | Error (`Corrupt _) -> 3
        | Ok (C_run ck) ->
          Metrics.reset ();
          let cr = run_chunk ~features ~shrink ~shrink_budget ck in
          Wire.send resp (W_result (cr, Metrics.snapshot ()));
          loop ()
      in
      loop ()
    with _ -> 2
  in
  Unix._exit code

type worker = {
  mutable w_pid : int;
  mutable w_req : Unix.file_descr;  (** parent -> worker *)
  mutable w_resp : Unix.file_descr;  (** worker -> parent *)
  mutable w_cur : chunk option;  (** in-flight chunk, requeued on death *)
  mutable w_alive : bool;
}

(** Fork a worker.  The child must close its inherited copies of every
    *other* worker's pipe ends ([others]): a later-forked worker holding
    an earlier worker's request-pipe write end would keep that worker's
    [Wire.recv] from ever seeing EOF, deadlocking the orderly
    shutdown. *)
let spawn ~features ~shrink ~shrink_budget
    ~(others : worker option array) () : worker =
  flush stdout;
  flush stderr;
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close req_w;
    Unix.close resp_r;
    Array.iter
      (function
        | Some o when o.w_alive ->
          (try Unix.close o.w_req with Unix.Unix_error _ -> ());
          (try Unix.close o.w_resp with Unix.Unix_error _ -> ())
        | _ -> ())
      others;
    worker_loop ~features ~shrink ~shrink_budget req_r resp_w
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    { w_pid = pid; w_req = req_w; w_resp = resp_r; w_cur = None; w_alive = true }

(** Close a worker's pipes and collect the process.  The EOF on its
    request pipe makes a healthy worker exit on its own; one that does
    not go within the grace period is killed, so shutdown can never
    deadlock on a wedged (or EOF-blind) child. *)
let reap ?(grace_s = 5.0) (w : worker) : unit =
  if w.w_alive then begin
    w.w_alive <- false;
    (try Unix.close w.w_req with Unix.Unix_error _ -> ());
    (try Unix.close w.w_resp with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. grace_s in
    let rec wait killed =
      match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
      | 0, _ ->
        if (not killed) && Unix.gettimeofday () > deadline then begin
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          wait true
        end
        else begin
          ignore (Unix.select [] [] [] 0.01);
          wait killed
        end
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait killed
      | exception Unix.Unix_error _ -> ()
    in
    wait false
  end

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

let drive ~(features : Cgen.features) ~(shrink : bool) ~(shrink_budget : int)
    ~(jobs : int) ~(chunk_size : int) ~(ledger_oc : out_channel option)
    ~(bugs : Bugstore.t) ~(progress : int -> unit)
    ~(chaos : chunk -> bool) ~(seed_start : int) ~(seeds : int)
    ~(done_chunks : chunk_result list) : outcome =
  let t0 = Unix.gettimeofday () in
  Trace.metadata ~pid:(Unix.getpid ()) ~name:"process_name" "campaign parent";
  let all = chunks_of ~seed_start ~seeds ~chunk_size in
  let completed : (int, chunk_result) Hashtbl.t =
    Hashtbl.create (List.length all)
  in
  let new_bugs = ref 0 in
  let record_bugs (cr : chunk_result) =
    List.iter
      (fun (d : Difftest.divergence) ->
        let s = d.Difftest.dv_sig in
        let repro =
          match d.Difftest.dv_reduced with
          | Some r -> r
          | None -> d.Difftest.dv_source
        in
        match
          Bugstore.record bugs
            ~key:(Difftest.signature_key s)
            ~kind:s.Difftest.sg_kind ~loc:s.Difftest.sg_loc
            ~configs:s.Difftest.sg_configs ~seed:d.Difftest.dv_seed
            ~mismatch:d.Difftest.dv_mismatch ~repro
        with
        | `New -> incr new_bugs
        | `Dup -> ())
      cr.cr_divergences
  in
  let resumed_seeds = ref 0 in
  List.iter
    (fun cr ->
      if not (Hashtbl.mem completed cr.cr_start) then begin
        Hashtbl.replace completed cr.cr_start cr;
        resumed_seeds := !resumed_seeds + cr.cr_len;
        record_bugs cr
      end)
    done_chunks;
  (* Bugs resumed from the ledger are known, not new. *)
  new_bugs := 0;
  let pending : chunk Queue.t = Queue.create () in
  List.iter
    (fun ck -> if not (Hashtbl.mem completed ck.ck_start) then Queue.add ck pending)
    all;
  let total_chunks = List.length all in
  let seeds_done = ref !resumed_seeds in
  let deaths = ref 0 and requeues = ref 0 in
  let interrupted = ref false in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> interrupted := true))
  in
  (* A dead worker's request pipe must raise EPIPE, not kill the parent. *)
  let old_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let jobs = max 1 (min jobs (max 1 (Queue.length pending))) in
  let workers = Array.make jobs None in
  let finally () =
    Array.iter
      (function
        | Some w when w.w_alive ->
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap w
        | _ -> ())
      workers;
    Sys.set_signal Sys.sigint old_int;
    (match old_pipe with
    | Some b -> Sys.set_signal Sys.sigpipe b
    | None -> ())
  in
  Fun.protect ~finally (fun () ->
      let worker_died w =
        incr deaths;
        (match w.w_cur with
        | Some ck when not (Hashtbl.mem completed ck.ck_start) ->
          Queue.add ck pending;
          incr requeues
        | _ -> ());
        w.w_cur <- None;
        reap w
      in
      let complete w (cr : chunk_result) (snap : Metrics.snapshot) =
        w.w_cur <- None;
        if not (Hashtbl.mem completed cr.cr_start) then begin
          Hashtbl.replace completed cr.cr_start cr;
          seeds_done := !seeds_done + cr.cr_len;
          Metrics.merge snap;
          (match ledger_oc with
          | Some oc ->
            output_string oc (chunk_line cr);
            output_char oc '\n';
            flush oc
          | None -> ());
          record_bugs cr;
          let elapsed = Unix.gettimeofday () -. t0 in
          Trace.counter "campaign"
            [
              ("seeds_done", float_of_int !seeds_done);
              ( "seeds_per_s",
                if elapsed > 0.0 then
                  float_of_int (!seeds_done - !resumed_seeds) /. elapsed
                else 0.0 );
              ("unique_bugs", float_of_int (Bugstore.size bugs));
            ];
          progress !seeds_done
        end
      in
      while Hashtbl.length completed < total_chunks && not !interrupted do
        (* Keep the pool at strength while work remains: replace dead
           slots, then feed every idle worker from the queue. *)
        Array.iteri
          (fun i slot ->
            match slot with
            | (None | Some { w_alive = false; _ })
              when not (Queue.is_empty pending) ->
              let w =
                spawn ~features ~shrink ~shrink_budget ~others:workers ()
              in
              (* Perfetto track label: the forked pid reads as
                 "worker N", not a bare number. *)
              Trace.metadata ~pid:w.w_pid ~name:"process_name"
                (Printf.sprintf "worker %d" i);
              workers.(i) <- Some w
            | _ -> ())
          workers;
        Array.iter
          (fun slot ->
            match slot with
            | Some w when w.w_alive && w.w_cur = None
                          && not (Queue.is_empty pending) -> (
              let ck = Queue.pop pending in
              match Wire.send w.w_req (C_run ck) with
              | () ->
                w.w_cur <- Some ck;
                (* test/chaos hook: SIGKILL mid-chunk; the death shows
                   up as EOF on the response pipe and the chunk is
                   requeued *)
                if chaos ck then begin
                  try Unix.kill w.w_pid Sys.sigkill
                  with Unix.Unix_error _ -> ()
                end
              | exception Unix.Unix_error _ ->
                Queue.add ck pending;
                worker_died w)
            | _ -> ())
          workers;
        let fds =
          Array.fold_left
            (fun acc slot ->
              match slot with
              | Some w when w.w_alive -> w.w_resp :: acc
              | _ -> acc)
            [] workers
        in
        (* [fds] can only be empty transiently (every chunk completed or
           a death emptied the pool while the queue refilled); the next
           iteration respawns.  Select with a timeout so a respawned
           idle pool is fed promptly. *)
        if fds <> [] then begin
          match Unix.select fds [] [] 0.5 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
            List.iter
              (fun fd ->
                let w =
                  Array.fold_left
                    (fun acc slot ->
                      match slot with
                      | Some w when w.w_alive && w.w_resp = fd -> Some w
                      | _ -> acc)
                    None workers
                in
                match w with
                | None -> ()
                | Some w -> (
                  match
                    (Wire.recv w.w_resp
                      : (from_worker, Wire.error) result)
                  with
                  | Ok (W_result (cr, snap)) -> complete w cr snap
                  | Error (`Eof | `Corrupt _) -> worker_died w))
              ready
        end
      done;
      (* Orderly shutdown: close request pipes, workers exit on EOF. *)
      Array.iter
        (function
          | Some w when w.w_alive ->
            if !interrupted then begin
              (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
            end;
            reap w
          | _ -> ())
        workers;
      let crs =
        Hashtbl.fold (fun _ cr acc -> cr :: acc) completed []
        |> List.sort (fun a b -> compare a.cr_start b.cr_start)
      in
      let report : Difftest.report =
        {
          Difftest.rp_seed_start = seed_start;
          rp_seeds = seeds;
          rp_features = Cgen.features_name features;
          rp_agree = List.fold_left (fun n cr -> n + cr.cr_agree) 0 crs;
          rp_reject = List.fold_left (fun n cr -> n + cr.cr_reject) 0 crs;
          rp_divergences = List.concat_map (fun cr -> cr.cr_divergences) crs;
          rp_elapsed_s = Unix.gettimeofday () -. t0;
        }
      in
      Difftest.record_report report;
      Metrics.add (Metrics.counter "campaign.chunks")
        (Hashtbl.length completed);
      Metrics.add (Metrics.counter "campaign.worker_deaths") !deaths;
      Metrics.add (Metrics.counter "campaign.requeues") !requeues;
      Metrics.add (Metrics.counter "campaign.resumed_seeds") !resumed_seeds;
      Metrics.set (Metrics.gauge "campaign.jobs") (float_of_int jobs);
      (if report.Difftest.rp_elapsed_s > 0.0 then
         Metrics.set
           (Metrics.gauge "campaign.seeds_per_s")
           (float_of_int (!seeds_done - !resumed_seeds)
           /. report.Difftest.rp_elapsed_s));
      Trace.instant
        ~args:
          [
            ("jobs", string_of_int jobs);
            ("seeds", string_of_int seeds);
            ("deaths", string_of_int !deaths);
            ("requeues", string_of_int !requeues);
            ("unique_bugs", string_of_int (Bugstore.size bugs));
          ]
        "campaign-merge";
      {
        co_report = report;
        co_chunks = crs;
        co_bugs = bugs;
        co_new_bugs = !new_bugs;
        co_worker_deaths = !deaths;
        co_requeues = !requeues;
        co_resumed_seeds = !resumed_seeds;
        co_interrupted = !interrupted;
      })

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let default_chunk = 25

let load_bugs = function
  | None -> Bugstore.create ()
  | Some file -> Bugstore.load ~file

let save_bugs bugdb (bugs : Bugstore.t) =
  match bugdb with
  | Some file -> Bugstore.save bugs ~file
  | None -> ()

(** Run a fresh campaign.  [ledger] (re)creates the ledger file;
    [bugdb] loads/saves the persistent bug store; [chaos] is a test
    hook that SIGKILLs the worker a chunk was just assigned to. *)
let run ?(features = Cgen.all_features) ?(shrink = false)
    ?(shrink_budget = 200) ?(jobs = 1) ?(chunk = default_chunk) ?ledger
    ?bugdb ?(progress = fun (_ : int) -> ())
    ?(chaos = fun (_ : chunk) -> false) ~(seed_start : int) ~(seeds : int) ()
    : outcome =
  let header =
    {
      lh_seed_start = seed_start;
      lh_seeds = seeds;
      lh_features = features;
      lh_chunk = chunk;
      lh_shrink = shrink;
      lh_shrink_budget = shrink_budget;
    }
  in
  let ledger_oc =
    match ledger with
    | None -> None
    | Some file ->
      let oc = open_out_bin file in
      output_string oc (header_line header);
      output_char oc '\n';
      flush oc;
      Some oc
  in
  let bugs = load_bugs bugdb in
  Fun.protect
    ~finally:(fun () ->
      match ledger_oc with Some oc -> close_out_noerr oc | None -> ())
    (fun () ->
      let o =
        drive ~features ~shrink ~shrink_budget ~jobs ~chunk_size:chunk
          ~ledger_oc ~bugs ~progress ~chaos ~seed_start ~seeds
          ~done_chunks:[]
      in
      save_bugs bugdb bugs;
      o)

(** Continue an interrupted campaign from its ledger: parameters come
    from the ledger header, completed chunks are skipped, and new
    completions append to the same file. *)
let resume ?(jobs = 1) ?bugdb ?(progress = fun (_ : int) -> ())
    ?(chaos = fun (_ : chunk) -> false) ~(ledger : string) () : outcome =
  let header, done_chunks, append_at = load_ledger ~file:ledger in
  (* Cut off a torn final line before appending, or the first new record
     would concatenate onto the fragment and poison the next resume. *)
  (let fd = Unix.openfile ledger [ Unix.O_WRONLY ] 0o644 in
   Fun.protect
     ~finally:(fun () -> Unix.close fd)
     (fun () -> Unix.ftruncate fd append_at));
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 ledger in
  let bugs = load_bugs bugdb in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let o =
        drive ~features:header.lh_features ~shrink:header.lh_shrink
          ~shrink_budget:header.lh_shrink_budget ~jobs
          ~chunk_size:header.lh_chunk ~ledger_oc:(Some oc) ~bugs ~progress
          ~chaos ~seed_start:header.lh_seed_start ~seeds:header.lh_seeds
          ~done_chunks
      in
      save_bugs bugdb bugs;
      o)
