(** Program representation for the cross-engine differential oracle.

    Generated programs live in a typed mini-AST rather than as strings so
    that (a) the generator can guarantee well-definedness by construction
    (in-bounds indices, nonzero divisors, in-range shift counts), (b) a
    reference evaluator can predict the value of every constant
    expression independently of the front end under test — the front end
    is shared by *all* engine configurations, so a wrong folded constant
    is consistently wrong and invisible to cross-configuration
    comparison — and (c) the shrinker can produce strictly smaller
    candidate programs that provably preserve those guarantees
    ([well_formed]).

    The subset is deliberately biased toward the arithmetic the engines
    must agree on bit-for-bit: integer arithmetic at every width and
    signedness, shifts, casts, comparisons, short-circuit logic, loops
    with constant bounds, structs and arrays with in-bounds indices —
    plus [float]/[double] arithmetic, comparisons and conversions,
    helper functions with parameters and returns, and the string/memory
    builtins ([memcpy]/[memset]/[strlen]).  Semantics the C standard
    leaves undefined or implementation-defined but our abstract machine
    defines (wrapping signed overflow, arithmetic right shift of
    negatives, saturating float-to-int conversion) are fair game: every
    configuration must still agree.

    Float results print as decimals — [printf("%.17g", (double)x)] —
    not as an IEEE-754 bit pun: every printf engine (the managed libc,
    the native model) and the reference evaluator render decimals
    through the one shared [Floatfmt], and 17 significant digits
    uniquely identify a binary64, so decimal equality still implies bit
    equality (modulo NaN payloads) and a formatter difference between
    engines is itself a reportable divergence (see [print_line]). *)

(* ------------------------------------------------------------------ *)
(* Types and constant arithmetic (LP64)                                *)
(* ------------------------------------------------------------------ *)

type ity = I8 | U8 | I16 | U16 | I32 | U32 | I64 | U64

(** Float scalar types.  [F32] values are always stored pre-rounded to
    single precision (the same invariant the engines keep). *)
type fty = F32 | F64

(** A scalar C type: integer, floating, or pointer-to-integer.  [Pt]
    appears only where pointers are legal by construction — helper
    parameters and the pointer declarations of [program.ptrs]; it never
    types an arithmetic operand ([well_formed] rejects those shapes). *)
type sty = It of ity | Ft of fty | Pt of ity

let all_itys = [ I8; U8; I16; U16; I32; U32; I64; U64 ]

let bits = function
  | I8 | U8 -> 8
  | I16 | U16 -> 16
  | I32 | U32 -> 32
  | I64 | U64 -> 64

let is_unsigned = function
  | U8 | U16 | U32 | U64 -> true
  | I8 | I16 | I32 | I64 -> false

let c_name = function
  | I8 -> "char"
  | U8 -> "unsigned char"
  | I16 -> "short"
  | U16 -> "unsigned short"
  | I32 -> "int"
  | U32 -> "unsigned int"
  | I64 -> "long"
  | U64 -> "unsigned long"

let f_name = function F32 -> "float" | F64 -> "double"

let sty_name = function
  | It t -> c_name t
  | Ft t -> f_name t
  | Pt t -> c_name t ^ " *"

let ity_bytes t = bits t / 8

(** Integer promotion: anything narrower than [int] promotes to [int].
    Floats are not promoted (C99: only *integer* promotions apply). *)
let promote t = if bits t < 32 then I32 else t

(** Usual arithmetic conversions (mirrors [Ctype.usual_arith] for the
    integer subset; LP64, so [long] can represent every [unsigned int]). *)
let usual a b =
  let a = promote a and b = promote b in
  if a = b then a
  else if a = U64 || b = U64 then U64
  else if bits a = 64 || bits b = 64 then I64
  else U32

let usual_f a b = if a = F64 || b = F64 then F64 else F32

(** Usual arithmetic conversions over both domains: [double] dominates
    [float] dominates every integer type. *)
let usual_sty a b =
  match (a, b) with
  | It x, It y -> It (usual x y)
  | Ft x, Ft y -> Ft (usual_f x y)
  | (Ft _ as f), It _ | It _, (Ft _ as f) -> f
  (* Pointers have no usual arithmetic conversion; give ill-typed shapes
     a stable answer so [type_of] stays total ([well_formed] rejects
     them before any engine sees the program). *)
  | Pt _, _ | _, Pt _ -> It I64

(** Canonical constant representation: truncate to the width of [t] and
    sign-extend back to 64 bits (the engines' register invariant). *)
let normalize t v =
  let b = bits t in
  if b = 64 then v else Int64.shift_right (Int64.shift_left v (64 - b)) (64 - b)

(** Reinterpret a canonical value as the unsigned value of [t]'s width. *)
let zext t v =
  let b = bits t in
  if b = 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L b) 1L)

(** C integer conversion on canonical values: zero-extend when widening
    from an unsigned type, then renormalize to the target width. *)
let convert ~from_ ~to_ v =
  let widened =
    if is_unsigned from_ && bits to_ > bits from_ then zext from_ v else v
  in
  normalize to_ widened

(** Value printed by [printf("%ld", (long)x)] for canonical [v] of type
    [t]: the conversion to [long] zero-extends narrower unsigned types. *)
let as_long t v = if is_unsigned t && bits t < 64 then zext t v else v

(* ---------------- float constant arithmetic ---------------- *)

(** Round to the nearest binary32 value — deliberately the same
    bit-store/load trick as [Irtype.round_to_f32], but written here
    independently: the reference evaluator shares no code with the
    engines it arbitrates. *)
let round_f32 (f : float) : float = Int32.float_of_bits (Int32.bits_of_float f)

let round_f ft f = match ft with F32 -> round_f32 f | F64 -> f

(** The defined float-to-integer conversion of our abstract machine
    (truncation toward zero, NaN to 0, saturation at the i64 range),
    reimplemented independently of [Irtype.float_to_int]. *)
let float_to_int_sat (f : float) : int64 =
  if f <> f then 0L
  else if f >= 9.223372036854775808e18 then Int64.max_int
  else if f <= -9.223372036854775808e18 then Int64.min_int
  else Int64.of_float f

(** Integer-to-float conversion: unsigned sources convert their
    zero-extended value (with the 2^64 correction for u64 values above
    [Int64.max_int]); an F32 destination rounds the converted value. *)
let int_to_float ~(from_ : ity) (ft : fty) (v : int64) : float =
  let f =
    if is_unsigned from_ then begin
      let u = zext from_ v in
      if u >= 0L then Int64.to_float u
      else Int64.to_float u +. 18446744073709551616.0
    end
    else Int64.to_float v
  in
  round_f ft f

(** The invariant every [FConst] must satisfy: finite (an inf/nan token
    would not render back), not negative zero (the front end lowers
    unary minus to [0.0 - x], so the token [-0.0] evaluates to +0.0 in
    every engine — negative zeros may still *arise* at runtime, they
    just cannot be literals), and pre-rounded for F32. *)
let fconst_ok (f : float) (ft : fty) : bool =
  f -. f = 0.0 (* finite: inf/nan fail this *)
  && (not (f = 0.0 && 1.0 /. f < 0.0))
  && (match ft with F32 -> f = round_f32 f | F64 -> true)

(* ------------------------------------------------------------------ *)
(* Expressions and statements                                          *)
(* ------------------------------------------------------------------ *)

type unop = Neg | Bnot | Lnot

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | BAnd | BOr | BXor
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr

(** Array subscript: a constant, or a surrounding loop's induction
    variable (whose bound the validator checks against the array size —
    the shrinker can never rewrite an index out of bounds). *)
type idx = Ixc of int | Ixv of string

type expr =
  | Const of int64 * ity
  | FConst of float * fty      (** must satisfy [fconst_ok] *)
  | EnumRef of string          (** enum constant; type [int] *)
  | Var of string * sty        (** scalar local, global, param, loop var *)
  | Read of string * ity * idx (** array element rvalue *)
  | Field of string * ity      (** [s.<field>] of the single struct var *)
  | Un of unop * expr
  | Bin of binop * expr * expr
  | Cast of sty * expr
  | Cond of expr * expr * expr
  | Call of string * sty * expr list
      (** direct call of a generated helper; carries the declared return
          type so [type_of] needs no symbol table.  An argument aligned
          to a pointer-typed parameter must be exactly [Var (p, Pt t)]
          for an in-scope pointer [p] — the only place a bare pointer
          value is a legal expression *)
  | Strlen of string
      (** [strlen] of a NUL-safe char array; type [unsigned long] *)
  | PRead of string * ity * idx
      (** load through a pointer: ["*p"] when the index is [Ixc 0],
          [p[k]] otherwise.  Kept in bounds of the pointer's statically
          resolved referent by [well_formed]; a helper's pointer
          parameter (no static referent) admits only [Ixc 0] *)
  | PCmp of binop * string * string
      (** pointer comparison by name; type [int].  [Eq]/[Ne] compare any
          two same-element-type pointers; relational operators require
          both to resolve to the same object (C99 6.5.8) *)
  | PDiff of string * string
      (** [(long)(p - q)] for two pointers into the same object; the
          element-count difference, type [long] *)

type stmt =
  | Assign of string * expr
      (** target is a scalar local or a mutable global (never a loop
          variable: those carry the bounds the index checks rely on) *)
  | AStore of string * idx * expr
  | FStore of string * expr
  | If of expr * stmt list * stmt list
  | Loop of string * int * stmt list
      (** [for (long i = 0; i < n; i = i + 1) body] *)
  | Switch of expr * (int * stmt list) list * stmt list
      (** scrutinee keeps its own (integer) C type; arms carry small
          distinct labels *)
  | Memcpy of string * string * int  (** dst array, src array, bytes *)
  | Memset of string * int * int     (** array, byte value, bytes *)
  | PStore of string * idx * expr
      (** store through a pointer: [*p = e] / [p[k] = e].  Main-body
          only; the write lands in the pointer's resolved referent (a
          scalar local/global or an array), aliasing whatever other
          names reach the same storage *)

(** A generated helper function.  Helpers are pure over their parameters
    and own locals: no globals, arrays, fields or builtins — so the
    reference evaluator can execute a call with constant arguments and
    predict its exact result, arbitrating the whole call machinery
    (argument conversion, parameter passing, returns) independently of
    the engines.  Helpers may call earlier-defined helpers only
    (acyclic by construction and by [well_formed]). *)
type func = {
  fn_name : string;
  fn_params : (string * sty) list;
  fn_locals : (string * sty * expr) list;
      (** initializers over params and earlier locals *)
  fn_body : stmt list;  (** [Assign] to own locals, [If], [Loop] only *)
  fn_ret : sty;
  fn_ret_expr : expr;
}

(** Pointer initializer: where a pointer points is static, decided at
    its (single) declaration — the address universe is generated, never
    computed at runtime, so every load/store through a pointer has a
    statically resolvable referent and offset that [well_formed] can
    check bounds against. *)
type pinit =
  | PaddrScalar of string     (** [&x]: a scalar local or global *)
  | PaddrArr of string * int  (** [a + k]: element [k] of array [a] *)
  | Palias of string * int    (** [q + k]: offset from an earlier pointer *)

type program = {
  seed : int;
  enums : (string * expr) list;  (** full integer constant expressions *)
  globals : (string * ity * expr) list;
      (** constant expressions restricted to the operator subset the
          global-initializer folder supports (no comparisons/ternary) *)
  fields : (string * ity * int64) list;  (** struct S fields + init *)
  arrays : (string * ity * int) list;    (** zero-initialized locals *)
  funcs : func list;                     (** helper functions, in order *)
  rcs : (string * expr) list;
      (** runtime recomputations of pure expressions (possibly float,
          possibly calling helpers with constant arguments, possibly
          reading globals — whose *initial* values the evaluator knows):
          evaluated by the engines, predicted by the reference
          evaluator *)
  locals : (string * sty * expr) list;   (** runtime initializers *)
  ptrs : (string * ity * pinit) list;
      (** pointer locals, declared after [locals] (so [&local] works)
          and never reassigned; [Palias] may reference earlier pointers
          only.  Pointer values are never printed — only the integer
          data reached through them is *)
  body : stmt list;
}

(** The statically resolved storage a pointer designates. *)
type referent = RScalar of string | RArr of string * int  (** name, len *)

let referent_extent = function RScalar _ -> 1 | RArr (_, len) -> len

(** Resolve pointer [name] to its referent and element offset by
    following the (acyclic, earlier-only) alias chain.  [None] when the
    chain dangles — ill-formed programs only. *)
let resolve_ptr (p : program) (name : string) : (referent * int) option =
  let rec go ptrs name =
    let rec find acc = function
      | [] -> None
      | (n, _, pi) :: _ when n = name -> Some (List.rev acc, pi)
      | x :: rest -> find (x :: acc) rest
    in
    match find [] ptrs with
    | None -> None
    | Some (prefix, pi) -> (
      match pi with
      | PaddrScalar x -> Some (RScalar x, 0)
      | PaddrArr (a, k) -> (
        match List.find_opt (fun (n, _, _) -> n = a) p.arrays with
        | Some (_, _, len) -> Some (RArr (a, len), k)
        | None -> None)
      | Palias (q, k) -> (
        match go prefix q with
        | Some (r, off) -> Some (r, off + k)
        | None -> None))
  in
  go p.ptrs name

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | LAnd -> "&&" | LOr -> "||"

(** Static type of an expression under the C rules the front end
    implements (shift result type is the promoted left operand;
    comparisons and logic yield [int]; [float] beats integers and
    [double] beats [float] in the usual conversions; unary minus does
    not promote floats).  Total: ill-typed shapes (which [well_formed]
    rejects) still get a stable answer so the shrinker can call this on
    arbitrary candidates. *)
let rec type_of (e : expr) : sty =
  match e with
  | Const (_, t) | Read (_, t, _) | Field (_, t) | PRead (_, t, _) -> It t
  | FConst (_, ft) -> Ft ft
  | Var (_, s) -> s
  | EnumRef _ -> It I32
  | Strlen _ -> It U64
  | PCmp _ -> It I32
  | PDiff _ -> It I64
  | Call (_, ret, _) -> ret
  | Un (Lnot, _) -> It I32
  | Un ((Neg | Bnot), a) -> begin
    match type_of a with It t -> It (promote t) | (Ft _ | Pt _) as f -> f
  end
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr), _, _) -> It I32
  | Bin ((Shl | Shr), a, _) -> begin
    match type_of a with It t -> It (promote t) | (Ft _ | Pt _) as f -> f
  end
  | Bin (_, a, b) -> usual_sty (type_of a) (type_of b)
  | Cast (s, _) -> s
  | Cond (_, a, b) -> usual_sty (type_of a) (type_of b)

let is_int_expr e = match type_of e with It _ -> true | Ft _ | Pt _ -> false

(* ------------------------------------------------------------------ *)
(* Reference evaluator                                                 *)
(* ------------------------------------------------------------------ *)

exception Not_const

type value = VI of int64 | VF of float

(** Evaluation environment: enum constants (already canonical at [int]),
    the helper functions callable by name, and the *initial* values of
    the program's globals ([VI] at the global's declared type).  Globals
    are sound to model because everything the reference predicts — enum
    lines, global snapshots, the [rcs] — is evaluated/printed before the
    body's first mutation.  This is the independent arbiter the oracle
    compares every configuration against: it shares no code with the
    front end's folders or the engines. *)
type env = {
  ev_enums : (string * int64) list;
  ev_funcs : func list;
  ev_globals : (string * value) list;
}

let const_env = { ev_enums = []; ev_funcs = []; ev_globals = [] }

let vi = function VI v -> v | VF _ -> raise Not_const
let vf = function VF f -> f | VI _ -> raise Not_const

(** C conversion between scalar values ([from_] is the source's static
    type): integer conversions renormalize, float-to-int saturates per
    our abstract machine, int-to-float uses the signedness of the
    source, and any F32 destination rounds. *)
let convert_val ~(from_ : sty) ~(to_ : sty) (v : value) : value =
  match (to_, from_, v) with
  | It t, It s, VI x -> VI (convert ~from_:s ~to_:t x)
  | It t, Ft _, VF f -> VI (normalize t (float_to_int_sat f))
  | Ft ft, It s, VI x -> VF (int_to_float ~from_:s ft x)
  | Ft ft, Ft _, VF f -> VF (round_f ft f)
  | _ -> raise Not_const

let max_loop_bound = 16

(** Evaluate [e]; [lookup] resolves in-scope variables (none at top
    level; helper-body evaluation passes its frame).  Anything whose
    value the reference cannot know (array reads, struct fields,
    [strlen], unresolved variables) raises [Not_const].  Defensive on
    ill-typed input — raises [Not_const] rather than looping or
    crashing, so [well_formed] can evaluate candidate programs safely. *)
let rec eval_var (env : env) (lookup : string -> value option) (e : expr) :
    value =
  let recur = eval_var env lookup in
  let conv a to_ = convert_val ~from_:(type_of a) ~to_ (recur a) in
  let int_at a t = vi (conv a (It t)) in
  let flo_at a ft = vf (conv a (Ft ft)) in
  match e with
  | Const (v, t) -> VI (normalize t v)
  | FConst (f, _) -> VF f
  | EnumRef n -> begin
    match List.assoc_opt n env.ev_enums with
    | Some v -> VI v
    | None -> raise Not_const
  end
  | Var (n, _) -> begin
    match lookup n with
    | Some v -> v
    | None -> begin
      (* Globals resolve to their initial values — valid wherever the
         reference predicts anything (all predictions print before the
         body's first mutation). *)
      match List.assoc_opt n env.ev_globals with
      | Some v -> v
      | None -> raise Not_const
    end
  end
  | Read _ | Field _ | Strlen _ | PRead _ | PCmp _ | PDiff _ ->
    raise Not_const
  | Un (Neg, a) -> begin
    match type_of a with
    | Ft ft ->
      (* The front end lowers unary minus to [0.0 - x]; mirror that
         exactly (it differs from IEEE negate on -0.0 and NaN sign). *)
      VF (round_f ft (0.0 -. vf (recur a)))
    | It t ->
      let pt = promote t in
      VI (normalize pt (Int64.neg (int_at a pt)))
    | Pt _ -> raise Not_const
  end
  | Un (Bnot, a) -> begin
    match type_of a with
    | It t ->
      let pt = promote t in
      VI (normalize pt (Int64.lognot (int_at a pt)))
    | Ft _ | Pt _ -> raise Not_const
  end
  | Un (Lnot, a) -> VI (if vi (recur a) = 0L then 1L else 0L)
  | Bin (LAnd, a, b) ->
    if vi (recur a) = 0L then VI 0L
    else VI (if vi (recur b) <> 0L then 1L else 0L)
  | Bin (LOr, a, b) ->
    if vi (recur a) <> 0L then VI 1L
    else VI (if vi (recur b) <> 0L then 1L else 0L)
  | Bin (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) -> begin
    match usual_sty (type_of a) (type_of b) with
    | Ft ft ->
      (* OCaml float comparison is IEEE: ordered comparisons are false
         on NaN operands and [<>] is true — the same semantics as the
         engines' [Fcmp]. *)
      let x = flo_at a ft and y = flo_at b ft in
      let r =
        match op with
        | Lt -> x < y
        | Le -> x <= y
        | Gt -> x > y
        | Ge -> x >= y
        | Eq -> x = y
        | _ -> x <> y
      in
      VI (if r then 1L else 0L)
    | It t ->
      let va = int_at a t and vb = int_at b t in
      let cmp =
        if is_unsigned t then Int64.unsigned_compare (zext t va) (zext t vb)
        else compare va vb
      in
      let r =
        match op with
        | Lt -> cmp < 0
        | Le -> cmp <= 0
        | Gt -> cmp > 0
        | Ge -> cmp >= 0
        | Eq -> cmp = 0
        | _ -> cmp <> 0
      in
      VI (if r then 1L else 0L)
    | Pt _ -> raise Not_const
  end
  | Bin (((Shl | Shr) as op), a, b) -> begin
    match type_of a with
    | Ft _ | Pt _ -> raise Not_const
    | It ta ->
      let t = promote ta in
      let x = int_at a t in
      let count = Int64.to_int (vi (recur b)) land 63 in
      let r =
        match op with
        | Shl -> Int64.shift_left x count
        | _ ->
          if is_unsigned t then Int64.shift_right_logical (zext t x) count
          else Int64.shift_right x count
      in
      VI (normalize t r)
  end
  | Bin (op, a, b) -> begin
    match usual_sty (type_of a) (type_of b) with
    | Ft ft -> begin
      let x = flo_at a ft and y = flo_at b ft in
      let r =
        match op with
        | Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div -> x /. y (* IEEE: inf/nan results are fine and defined *)
        | _ -> raise Not_const
      in
      VF (round_f ft r)
    end
    | It t ->
      let x = int_at a t and y = int_at b t in
      let r =
        match op with
        | Add -> Int64.add x y
        | Sub -> Int64.sub x y
        | Mul -> Int64.mul x y
        | Div ->
          if y = 0L then raise Not_const
          else if is_unsigned t then Int64.unsigned_div (zext t x) (zext t y)
          else Int64.div x y
        | Rem ->
          if y = 0L then raise Not_const
          else if is_unsigned t then Int64.unsigned_rem (zext t x) (zext t y)
          else Int64.rem x y
        | BAnd -> Int64.logand x y
        | BOr -> Int64.logor x y
        | BXor -> Int64.logxor x y
        | _ -> raise Not_const
      in
      VI (normalize t r)
    | Pt _ -> raise Not_const
  end
  | Cast (s, a) -> conv a s
  | Cond (c, a, b) ->
    let t = usual_sty (type_of a) (type_of b) in
    if vi (recur c) <> 0L then conv a t else conv b t
  | Call (name, _, args) -> begin
    (* Only functions defined *before* the callee are callable from its
       body, so restricting the environment to the definition prefix
       makes the evaluator structurally terminating even on (ill-formed)
       cyclic call graphs. *)
    let rec split acc = function
      | [] -> None
      | f :: rest ->
        if f.fn_name = name then Some (List.rev acc, f)
        else split (f :: acc) rest
    in
    match split [] env.ev_funcs with
    | None -> raise Not_const
    | Some (earlier, f) ->
      if List.length args <> List.length f.fn_params then raise Not_const;
      let argv = List.map2 (fun (_, ps) a -> conv a ps) f.fn_params args in
      eval_func { env with ev_funcs = earlier } f argv
  end

(** Execute a helper on already-converted argument values: bind params,
    run the local initializers, interpret the body (constant loop
    bounds, if/else, assignments to locals), convert the result to the
    declared return type. *)
and eval_func (env : env) (f : func) (argv : value list) : value =
  let vars : (string, value) Hashtbl.t = Hashtbl.create 8 in
  List.iter2 (fun (n, _) v -> Hashtbl.replace vars n v) f.fn_params argv;
  let lookup n = Hashtbl.find_opt vars n in
  let conv_to to_ e =
    convert_val ~from_:(type_of e) ~to_ (eval_var env lookup e)
  in
  List.iter (fun (n, s, e) -> Hashtbl.replace vars n (conv_to s e)) f.fn_locals;
  let rec exec s =
    match s with
    | Assign (n, e) -> begin
      match List.find_opt (fun (m, _, _) -> m = n) f.fn_locals with
      | Some (_, s, _) -> Hashtbl.replace vars n (conv_to s e)
      | None -> raise Not_const
    end
    | If (c, a, b) ->
      List.iter exec (if vi (eval_var env lookup c) <> 0L then a else b)
    | Loop (v, n, body) ->
      if n < 1 || n > max_loop_bound then raise Not_const;
      for k = 0 to n - 1 do
        Hashtbl.replace vars v (VI (Int64.of_int k));
        List.iter exec body
      done
    | AStore _ | FStore _ | Switch _ | Memcpy _ | Memset _ | PStore _ ->
      raise Not_const
  in
  List.iter exec f.fn_body;
  conv_to f.fn_ret f.fn_ret_expr

let eval (env : env) (e : expr) : value = eval_var env (fun _ -> None) e

(** Canonical integer value of a pure integer expression (raises
    [Not_const] on floats as well as on non-constants). *)
let eval_int (env : env) (e : expr) : int64 = vi (eval env e)

(** The enum environment: each constant's runtime value (canonical at
    [int], exactly what the parser's [IntLit] substitution produces). *)
let enum_env (p : program) : (string * int64) list =
  List.fold_left
    (fun env (n, e) ->
      let v =
        match type_of e with
        | It t -> as_long t (eval_int { const_env with ev_enums = env } e)
        | Ft _ | Pt _ -> raise Not_const
      in
      (n, normalize I32 v) :: env)
    [] p.enums
  |> List.rev

(** One reference-predicted output line: a decimal integer printed via
    [%ld], or a float result (double-widened) printed via [%.17g]. *)
type line = Lint of int64 | Lfloat of float

(** The output lines whose values the reference evaluator can predict:
    enum constants, global initial values, and the pure recomputed
    expressions — in print order.  Float recomputations predict the
    exact bit pattern of the (double-widened) result. *)
let expected_lines (p : program) : (string * line) list =
  let enums = enum_env p in
  let env0 = { ev_enums = enums; ev_funcs = p.funcs; ev_globals = [] } in
  (* Global initial values first (their initializers are [`Restricted]
     and cannot read other globals), then an environment carrying them
     for the rcs — which may read globals directly or through helpers. *)
  let gvals =
    List.map
      (fun (n, gt, e) ->
        match (type_of e, eval env0 e) with
        | It t, VI v -> (n, gt, convert ~from_:t ~to_:gt v)
        | _ -> raise Not_const)
      p.globals
  in
  let env =
    { env0 with ev_globals = List.map (fun (n, _, v) -> (n, VI v)) gvals }
  in
  List.map (fun (n, _) -> (n, Lint (List.assoc n enums))) p.enums
  @ List.map (fun (n, gt, v) -> (n, Lint (as_long gt v))) gvals
  @ List.map
      (fun (n, e) ->
        match (type_of e, eval env e) with
        | It t, VI v -> (n, Lint (as_long t v))
        | Ft _, VF f -> (n, Lfloat f)
        | _ -> raise Not_const)
      p.rcs

let expected_prefix (p : program) : string =
  String.concat ""
    (List.map
       (fun (n, l) ->
         match l with
         | Lint v -> Printf.sprintf "%s=%Ld\n" n v
         | Lfloat f -> Printf.sprintf "%s=%s\n" n (Floatfmt.format 'g' 17 f))
       (expected_lines p))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** Constants render to a form that parses back to the exact canonical
    value at the exact type: small non-negative values as a cast decimal
    literal, everything else as a cast 64-bit hex [unsigned long]
    literal (the cast truncates to the right width). *)
let render_const v t =
  let c = normalize t v in
  if c >= 0L && c < 0x8000_0000L then
    Printf.sprintf "((%s)%Ld)" (c_name t) c
  else Printf.sprintf "((%s)0x%Lxul)" (c_name t) c

(** Float constants render to a literal that parses back bit-exactly:
    17 significant digits round-trip any binary64 through the lexer's
    correctly-rounded decimal parse, and 9 digits round-trip any
    binary32 (including through the intermediate double).  Negative
    values render as unary minus on the absolute literal — exact,
    because [0.0 - |f|] is [f] for every finite nonzero [f], matching
    the front end's lowering of unary minus. *)
let render_fconst (f : float) (ft : fty) : string =
  let a = Float.abs f in
  let digits =
    match ft with
    | F64 -> Printf.sprintf "%.17g" a
    | F32 -> Printf.sprintf "%.9g" a
  in
  let has_marker =
    let found = ref false in
    String.iter (fun c -> if c = '.' || c = 'e' then found := true) digits;
    !found
  in
  let digits = if has_marker then digits else digits ^ ".0" in
  let lit = match ft with F32 -> digits ^ "f" | F64 -> digits in
  if f < 0.0 then "(-" ^ lit ^ ")" else lit

let render_idx = function Ixc k -> string_of_int k | Ixv v -> v

let rec render_expr (e : expr) : string =
  match e with
  | Const (v, t) -> render_const v t
  | FConst (f, ft) -> render_fconst f ft
  | EnumRef n | Var (n, _) -> n
  | Read (a, _, ix) -> Printf.sprintf "%s[%s]" a (render_idx ix)
  | Field (f, _) -> "s." ^ f
  | Un (Neg, a) -> "(- " ^ render_expr a ^ ")"
  | Un (Bnot, a) -> "(~ " ^ render_expr a ^ ")"
  | Un (Lnot, a) -> "(! " ^ render_expr a ^ ")"
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (render_expr a) (binop_str op)
      (render_expr b)
  | Cast (s, a) -> Printf.sprintf "((%s)%s)" (sty_name s) (render_expr a)
  | Cond (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (render_expr c) (render_expr a)
      (render_expr b)
  | Call (n, _, args) ->
    Printf.sprintf "%s(%s)" n (String.concat ", " (List.map render_expr args))
  | Strlen a -> Printf.sprintf "strlen(%s)" a
  (* "*p" vs "p[k]" deliberately exercises both front-end lowerings
     (Deref and Index) of the same load. *)
  | PRead (p, _, Ixc 0) -> Printf.sprintf "(*%s)" p
  | PRead (p, _, ix) -> Printf.sprintf "%s[%s]" p (render_idx ix)
  | PCmp (op, a, b) -> Printf.sprintf "(%s %s %s)" a (binop_str op) b
  | PDiff (a, b) -> Printf.sprintf "((long)(%s - %s))" a b

let rec render_stmt b ind (s : stmt) =
  let pad = String.make ind ' ' in
  match s with
  | Assign (n, e) ->
    Buffer.add_string b (Printf.sprintf "%s%s = %s;\n" pad n (render_expr e))
  | AStore (a, ix, e) ->
    Buffer.add_string b
      (Printf.sprintf "%s%s[%s] = %s;\n" pad a (render_idx ix) (render_expr e))
  | FStore (f, e) ->
    Buffer.add_string b (Printf.sprintf "%ss.%s = %s;\n" pad f (render_expr e))
  | If (c, t, []) ->
    Buffer.add_string b (Printf.sprintf "%sif (%s) {\n" pad (render_expr c));
    List.iter (render_stmt b (ind + 2)) t;
    Buffer.add_string b (pad ^ "}\n")
  | If (c, t, e) ->
    Buffer.add_string b (Printf.sprintf "%sif (%s) {\n" pad (render_expr c));
    List.iter (render_stmt b (ind + 2)) t;
    Buffer.add_string b (pad ^ "} else {\n");
    List.iter (render_stmt b (ind + 2)) e;
    Buffer.add_string b (pad ^ "}\n")
  | Loop (v, n, body) ->
    Buffer.add_string b
      (Printf.sprintf "%sfor (long %s = 0; %s < %d; %s = %s + 1) {\n" pad v v
         n v v);
    List.iter (render_stmt b (ind + 2)) body;
    Buffer.add_string b (pad ^ "}\n")
  | Switch (e, arms, dflt) ->
    (* No cast: the controlling expression keeps its own C type, which
       the front end promotes and converts the labels to (C11 6.8.4.2). *)
    Buffer.add_string b
      (Printf.sprintf "%sswitch (%s) {\n" pad (render_expr e));
    List.iter
      (fun (k, body) ->
        Buffer.add_string b (Printf.sprintf "%s  case %d: {\n" pad k);
        List.iter (render_stmt b (ind + 4)) body;
        Buffer.add_string b (pad ^ "    break;\n" ^ pad ^ "  }\n"))
      arms;
    Buffer.add_string b (pad ^ "  default: {\n");
    List.iter (render_stmt b (ind + 4)) dflt;
    Buffer.add_string b (pad ^ "    break;\n" ^ pad ^ "  }\n");
    Buffer.add_string b (pad ^ "}\n")
  | Memcpy (dst, src, len) ->
    Buffer.add_string b (Printf.sprintf "%smemcpy(%s, %s, %d);\n" pad dst src len)
  | Memset (a, v, len) ->
    Buffer.add_string b (Printf.sprintf "%smemset(%s, %d, %d);\n" pad a v len)
  | PStore (p, Ixc 0, e) ->
    Buffer.add_string b (Printf.sprintf "%s*%s = %s;\n" pad p (render_expr e))
  | PStore (p, ix, e) ->
    Buffer.add_string b
      (Printf.sprintf "%s%s[%s] = %s;\n" pad p (render_idx ix) (render_expr e))

let render_func b (f : func) =
  let params =
    match f.fn_params with
    | [] -> "void"
    | ps -> String.concat ", " (List.map (fun (n, s) -> sty_name s ^ " " ^ n) ps)
  in
  Buffer.add_string b
    (Printf.sprintf "static %s %s(%s) {\n" (sty_name f.fn_ret) f.fn_name params);
  List.iter
    (fun (n, s, e) ->
      Buffer.add_string b
        (Printf.sprintf "  %s %s = %s;\n" (sty_name s) n (render_expr e)))
    f.fn_locals;
  List.iter (render_stmt b 2) f.fn_body;
  Buffer.add_string b (Printf.sprintf "  return %s;\n}\n" (render_expr f.fn_ret_expr))

(** Float printing: widen to double (exact for any F32 value) and print
    the decimal with [%.17g].  All printf engines delegate decimal
    conversion to the shared [Floatfmt] (the managed libc through the
    [__sulong_format_double] intrinsic, the native model directly), so
    "equal value" gives equal output by construction, and 17 significant
    digits round-trip a binary64, so "equal output" still implies "equal
    value" (NaN payloads excepted) — the bit-pun through an unsigned
    long this replaces (DESIGN.md §10) is no longer needed to make the
    comparison sound. *)
let print_line b name (s : sty) what =
  match s with
  | It _ ->
    Buffer.add_string b
      (Printf.sprintf "  printf(\"%s=%%ld\\n\", (long)%s);\n" name what)
  | Ft _ ->
    Buffer.add_string b
      (Printf.sprintf "  printf(\"%s=%%.17g\\n\", (double)%s);\n" name what)
  | Pt _ -> () (* addresses are never printed: not deterministic *)

let render (p : program) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "/* difftest seed %d */\n" p.seed);
  if p.enums <> [] then begin
    Buffer.add_string b "enum {\n";
    List.iter
      (fun (n, e) ->
        Buffer.add_string b (Printf.sprintf "  %s = %s,\n" n (render_expr e)))
      p.enums;
    Buffer.add_string b "};\n"
  end;
  if p.fields <> [] then begin
    Buffer.add_string b "struct S {\n";
    List.iter
      (fun (f, t, _) ->
        Buffer.add_string b (Printf.sprintf "  %s %s;\n" (c_name t) f))
      p.fields;
    Buffer.add_string b "};\n"
  end;
  List.iter
    (fun (n, t, e) ->
      Buffer.add_string b
        (Printf.sprintf "static %s %s = %s;\n" (c_name t) n (render_expr e)))
    p.globals;
  List.iter (render_func b) p.funcs;
  Buffer.add_string b "int main(void) {\n";
  if p.fields <> [] then Buffer.add_string b "  struct S s;\n";
  List.iter
    (fun (a, t, len) ->
      Buffer.add_string b
        (Printf.sprintf "  %s %s[%d] = {0};\n" (c_name t) a len))
    p.arrays;
  List.iter
    (fun (f, t, v) ->
      Buffer.add_string b (Printf.sprintf "  s.%s = %s;\n" f (render_const v t)))
    p.fields;
  List.iter
    (fun (n, e) ->
      Buffer.add_string b
        (Printf.sprintf "  %s %s = %s;\n"
           (sty_name (type_of e)) n (render_expr e)))
    p.rcs;
  List.iter
    (fun (n, s, e) ->
      Buffer.add_string b
        (Printf.sprintf "  %s %s = %s;\n" (sty_name s) n (render_expr e)))
    p.locals;
  (* Pointers come after every addressable local so [&local] refers to a
     declared name; [a + 0] and [q + 0] shorten to the bare name (array
     decay / plain copy), and negative alias offsets render as [q - k]. *)
  let render_pinit = function
    | PaddrScalar x -> "&" ^ x
    | PaddrArr (a, 0) -> a
    | PaddrArr (a, k) -> Printf.sprintf "%s + %d" a k
    | Palias (q, 0) -> q
    | Palias (q, k) when k < 0 -> Printf.sprintf "%s - %d" q (-k)
    | Palias (q, k) -> Printf.sprintf "%s + %d" q k
  in
  List.iter
    (fun (n, t, pi) ->
      Buffer.add_string b
        (Printf.sprintf "  %s *%s = %s;\n" (c_name t) n (render_pinit pi)))
    p.ptrs;
  (* Globals are mutable at runtime (the body may assign them), but the
     reference evaluator predicts only their *initial* values — so those
     are snapshot before the body runs, and the snapshots feed the
     reference-checked print lines below.  The post-body values are
     printed separately as [g_end] lines the configurations must merely
     agree on among themselves. *)
  List.iter
    (fun (n, _, _) ->
      Buffer.add_string b (Printf.sprintf "  long snap_%s = (long)%s;\n" n n))
    p.globals;
  List.iter (render_stmt b 2) p.body;
  (* Print order: reference-predictable lines first (the expected
     prefix), then the runtime state dump the configurations must merely
     agree on among themselves. *)
  List.iter (fun (n, _) -> print_line b n (It I32) n) p.enums;
  List.iter (fun (n, _, _) -> print_line b n (It I64) ("snap_" ^ n)) p.globals;
  List.iter (fun (n, e) -> print_line b n (type_of e) n) p.rcs;
  List.iter (fun (n, s, _) -> print_line b n s n) p.locals;
  List.iter (fun (n, _, _) -> print_line b (n ^ "_end") (It I64) n) p.globals;
  List.iter
    (fun (f, _, _) -> print_line b ("s." ^ f) (It I64) ("s." ^ f))
    p.fields;
  List.iter
    (fun (a, _, len) ->
      Buffer.add_string b
        (Printf.sprintf
           "  {\n\
            \    long chk_%s = 0;\n\
            \    for (long ci_%s = 0; ci_%s < %d; ci_%s = ci_%s + 1) {\n\
            \      chk_%s = (chk_%s * 31) + (long)%s[ci_%s];\n\
            \    }\n\
            \    printf(\"%s=%%ld\\n\", chk_%s);\n\
            \  }\n"
           a a a len a a a a a a a a))
    p.arrays;
  Buffer.add_string b "  return 0;\n}\n";
  Buffer.contents b

(** Size metric for the shrinker: rendered length.  Monotone under every
    reduction we apply (structural drops, subexpression hoisting,
    constant simplification), which guarantees termination. *)
let size (p : program) : int = String.length (render p)

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

(** Expression contexts, each with its own operator/leaf subset:
    - [`Full]: what the parser's constant-expression evaluator accepts
      (enum values) — integer constants only;
    - [`Restricted]: what the global-initializer folder accepts (no
      comparisons, logic, ternary or bitwise-not) — integers only;
    - [`Pure]: runtime-evaluated but state-free (the [rcs]): adds float
      constants/arithmetic and helper calls, still no variables, array
      reads, fields or [strlen] — so the reference evaluator can predict
      the exact result;
    - [`Runtime locals loops]: full scalar scope of [main];
    - [`Func scope loops]: a helper body — parameters, own locals and
      loop variables only (no globals/arrays/fields/builtins, which is
      what keeps helpers pure). *)
type cmode = [ `Full | `Restricted ]

let max_array_len = 16

(** [well_formed p] checks every guarantee the generator establishes, so
    the shrinker (or a hand-written regression) can only produce
    programs that are well-defined under our abstract machine:
    referenced names exist with the recorded types, array indices are in
    bounds (loop-variable indices via the loop bound), divisors of
    *integer* divisions are provably nonzero (float division is IEEE and
    total), shift counts are constants within the promoted width, float
    constants are finite/pre-rounded/not [-0.0], helper calls are
    acyclic and arity-correct, [memcpy]/[memset] lengths fit the
    operands, every [strlen] argument is a char array whose final NUL
    can never be overwritten, enum values fit in [int], and switch
    labels are distinct. *)
let well_formed (p : program) : bool =
  let ok = ref true in
  let fail () = ok := false in
  (* Distinct names across every namespace (incl. loop variables and
     helper params/locals: C would allow shadowing, but a flat namespace
     keeps every shrinker rewrite trivially capture-free). *)
  let names = Hashtbl.create 32 in
  let declare n = if Hashtbl.mem names n then fail () else Hashtbl.replace names n () in
  List.iter (fun (n, _) -> declare n) p.enums;
  List.iter (fun (n, _, _) -> declare n) p.globals;
  List.iter (fun (f, _, _) -> declare ("s." ^ f)) p.fields;
  List.iter (fun (a, _, _) -> declare a) p.arrays;
  List.iter (fun (n, _) -> declare n) p.rcs;
  List.iter (fun (n, _, _) -> declare n) p.locals;
  List.iter (fun (n, _, _) -> declare n) p.ptrs;
  let rec declare_loop_vars s =
    match s with
    | Loop (v, _, body) ->
      declare v;
      List.iter declare_loop_vars body
    | If (_, a, b) ->
      List.iter declare_loop_vars a;
      List.iter declare_loop_vars b
    | Switch (_, arms, d) ->
      List.iter (fun (_, body) -> List.iter declare_loop_vars body) arms;
      List.iter declare_loop_vars d
    | Assign _ | AStore _ | FStore _ | PStore _ | Memcpy _ | Memset _ -> ()
  in
  List.iter declare_loop_vars p.body;
  List.iter
    (fun f ->
      declare f.fn_name;
      List.iter (fun (n, _) -> declare n) f.fn_params;
      List.iter (fun (n, _, _) -> declare n) f.fn_locals;
      List.iter declare_loop_vars f.fn_body)
    p.funcs;
  (* Lookup tables. *)
  let global_ty = List.map (fun (n, t, _) -> (n, t)) p.globals in
  let field_ty = List.map (fun (f, t, _) -> (f, t)) p.fields in
  let array_info = List.map (fun (a, t, len) -> (a, (t, len))) p.arrays in
  let array_bytes (t, len) = ity_bytes t * len in
  let local_ty = List.map (fun (n, s, _) -> (n, s)) p.locals in
  let func_by_name = List.map (fun f -> (f.fn_name, f)) p.funcs in
  (* Pointer table: every pointer resolves *statically* to a (referent,
     offset) pair with the offset strictly inside the referent's extent
     — that resolution is what makes every later deref/compare bounds-
     checkable without dataflow.  Pointers are single-assignment and an
     alias may only name an *earlier* pointer, so insertion order makes
     the chain check acyclic for free.  Targets are scalar locals,
     globals and arrays only: locals are merely config-compared and
     globals are snapshotted before the body runs, so a store through
     any pointer can never falsify a reference-predicted print line. *)
  let ptr_tbl : (string, ity * referent * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (n, t, pi) ->
      (match pi with
      | PaddrScalar x -> begin
        match (List.assoc_opt x local_ty, List.assoc_opt x global_ty) with
        | Some (It t'), None when t' = t ->
          Hashtbl.replace ptr_tbl n (t, RScalar x, 0)
        | None, Some t' when t' = t -> Hashtbl.replace ptr_tbl n (t, RScalar x, 0)
        | _ -> fail ()
      end
      | PaddrArr (a, k) -> begin
        match List.assoc_opt a array_info with
        | Some (t', len) when t' = t && k >= 0 && k < len ->
          Hashtbl.replace ptr_tbl n (t, RArr (a, len), k)
        | _ -> fail ()
      end
      | Palias (q, k) -> begin
        match Hashtbl.find_opt ptr_tbl q with
        | Some (t', r, off) when t' = t ->
          let off' = off + k in
          if off' >= 0 && off' < referent_extent r then
            Hashtbl.replace ptr_tbl n (t, r, off')
          else fail ()
        | _ -> fail ()
      end))
    p.ptrs;
  let ptr_scope = List.map (fun (n, t, _) -> (n, Pt t)) p.ptrs in
  (* Pointer names live in the same scope lists as scalars (with a [Pt]
     sty), but only these helpers may look them up — the Var case
     rejects [Pt] so pointer values cannot leak into scalar contexts. *)
  let scope_ptr_ty ~mode n =
    match mode with
    | `Runtime (locals, _) -> begin
      match List.assoc_opt n locals with Some (Pt t) -> Some t | _ -> None
    end
    | `Func (scope, _) -> begin
      match List.assoc_opt n scope with Some (Pt t) -> Some t | _ -> None
    end
    | `Full | `Restricted | `Pure -> None
  in
  let ptr_in_scope ~mode n t = scope_ptr_ty ~mode n = Some t in
  (* In-bounds proof for [p[ix]]: the static (referent, offset) plus a
     constant index — or a loop variable's bound — must stay strictly
     inside the referent's extent. *)
  let check_ptr_idx ~mode ~r ~off ix =
    let ext = referent_extent r in
    match ix with
    | Ixc k -> if off + k < 0 || off + k >= ext then fail ()
    | Ixv v -> begin
      let loops =
        match mode with
        | `Runtime (_, l) | `Func (_, l) -> l
        | `Full | `Restricted | `Pure -> []
      in
      match List.assoc_opt v loops with
      | Some bound -> if off + bound > ext then fail ()
      | None -> fail ()
    end
  in
  (* Generic expression check.  [funcs] is the callable set (a prefix of
     the definition order inside helper bodies, enforcing acyclicity). *)
  let rec check_expr ~(enums : string list) ~(funcs : (string * func) list)
      ~(mode :
         [ cmode
         | `Pure
         | `Runtime of (string * sty) list * (string * int) list
         | `Func of (string * sty) list * (string * int) list ]) (e : expr) =
    let recur = check_expr ~enums ~funcs ~mode in
    let const_mode = match mode with `Full | `Restricted -> true | _ -> false in
    (match (mode, e) with
    | `Restricted, (Un ((Bnot | Lnot), _) | Cond _)
    | `Restricted, Bin ((Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr), _, _) ->
      fail ()
    | _ -> ());
    match e with
    | Const _ -> ()
    | FConst (f, ft) ->
      if const_mode then fail ();
      if not (fconst_ok f ft) then fail ()
    | EnumRef n -> if not (List.mem n enums) then fail ()
    | Var (n, s) -> begin
      (* Pointer values never appear as bare rvalues: they are only
         dereferenced (PRead/PStore), compared (PCmp/PDiff) or passed
         verbatim to a pointer parameter — the Call case checks those
         arguments itself, so [recur] never reaches a [Pt] leaf. *)
      (match s with Pt _ -> fail () | It _ | Ft _ -> ());
      match mode with
      | `Runtime (locals, loops) ->
        let found =
          match List.assoc_opt n locals with
          | Some s' -> s' = s
          | None -> begin
            match List.assoc_opt n global_ty with
            | Some t' -> It t' = s
            | None -> List.mem_assoc n loops && s = It I64
          end
        in
        if not found then fail ()
      | `Func (scope, loops) ->
        (* Helpers may read globals: calls reachable from a reference-
           predicted context evaluate before the body's first mutation,
           so the initial value the evaluator uses is the true one. *)
        let found =
          match List.assoc_opt n scope with
          | Some s' -> s' = s
          | None -> begin
            match List.assoc_opt n global_ty with
            | Some t' -> It t' = s
            | None -> List.mem_assoc n loops && s = It I64
          end
        in
        if not found then fail ()
      | `Pure -> begin
        (* Recomputations evaluate before the body runs, so a global's
           initial value is exactly what the C program reads. *)
        match List.assoc_opt n global_ty with
        | Some t' -> if It t' <> s then fail ()
        | None -> fail ()
      end
      | `Full | `Restricted -> fail ()
    end
    | Read (a, t, ix) -> begin
      match (List.assoc_opt a array_info, mode) with
      | Some (t', len), `Runtime (_, loops) ->
        if t' <> t then fail ();
        (match ix with
        | Ixc k -> if k < 0 || k >= len then fail ()
        | Ixv v -> begin
          match List.assoc_opt v loops with
          | Some bound -> if bound > len then fail ()
          | None -> fail ()
        end)
      | _ -> fail ()
    end
    | Field (f, t) -> begin
      match mode with
      | `Runtime _ -> begin
        match List.assoc_opt f field_ty with
        | Some t' -> if t' <> t then fail ()
        | None -> fail ()
      end
      | _ -> fail ()
    end
    | Strlen a -> begin
      (* NUL-safety of the array's writes is a whole-program property,
         checked separately below. *)
      match mode with
      | `Runtime _ -> begin
        match List.assoc_opt a array_info with
        | Some ((I8 | U8), _) -> ()
        | _ -> fail ()
      end
      | _ -> fail ()
    end
    | PRead (pn, t, ix) -> begin
      if not (ptr_in_scope ~mode pn t) then fail ();
      match Hashtbl.find_opt ptr_tbl pn with
      | Some (_, r, off) -> check_ptr_idx ~mode ~r ~off ix
      | None ->
        (* Not a main pointer, so a helper's pointer parameter: no
           static referent, hence deref-only — any valid argument has
           extent >= 1 at its own offset, so exactly [*p] is safe. *)
        if ix <> Ixc 0 then fail ()
    end
    | PCmp (op, a, b) -> begin
      (match op with
      | Eq | Ne | Lt | Le | Gt | Ge -> ()
      | _ -> fail ());
      let ta = scope_ptr_ty ~mode a and tb = scope_ptr_ty ~mode b in
      (match (ta, tb) with
      | Some t, Some t' when t = t' -> ()
      | _ -> fail ());
      match op with
      | Eq | Ne -> ()
      | _ -> begin
        (* Relational comparison is only defined inside one object
           (C99 6.5.8p5), so both sides need the same static referent. *)
        match (Hashtbl.find_opt ptr_tbl a, Hashtbl.find_opt ptr_tbl b) with
        | Some (_, ra, _), Some (_, rb, _) -> if ra <> rb then fail ()
        | _ -> fail ()
      end
    end
    | PDiff (a, b) -> begin
      (match (scope_ptr_ty ~mode a, scope_ptr_ty ~mode b) with
      | Some t, Some t' when t = t' -> ()
      | _ -> fail ());
      (* Subtraction needs one object too (C99 6.5.6p9). *)
      match (Hashtbl.find_opt ptr_tbl a, Hashtbl.find_opt ptr_tbl b) with
      | Some (_, ra, _), Some (_, rb, _) -> if ra <> rb then fail ()
      | _ -> fail ()
    end
    | Call (name, rty, args) -> begin
      (match mode with
      | `Pure | `Runtime _ | `Func _ -> ()
      | `Full | `Restricted -> fail ());
      match List.assoc_opt name funcs with
      | None -> fail ()
      | Some f ->
        if f.fn_ret <> rty then fail ();
        if List.length args <> List.length f.fn_params then fail ()
        else
          List.iter2
            (fun (_, ps) arg ->
              match ps with
              | Pt pt -> begin
                (* Pointer arguments are passed verbatim — a bare name
                   with the parameter's exact element type — so the
                   callee's deref-only use stays in bounds. *)
                match arg with
                | Var (an, Pt at) when at = pt ->
                  if not (ptr_in_scope ~mode an pt) then fail ()
                | _ -> fail ()
              end
              | It _ | Ft _ -> recur arg)
            f.fn_params args
    end
    | Un (Neg, a) -> recur a
    | Un ((Bnot | Lnot), a) ->
      recur a;
      if not (is_int_expr a) then fail ()
    | Bin ((LAnd | LOr), a, b) ->
      recur a;
      recur b;
      if not (is_int_expr a && is_int_expr b) then fail ()
    | Bin ((Div | Rem), a, b) ->
      recur a;
      recur b;
      (match type_of e with
      | Pt _ -> fail ()
      | Ft _ ->
        (* Float division is total under IEEE; % never types as float. *)
        if (match e with Bin (Rem, _, _) -> true | _ -> false) then fail ()
      | It rty ->
        (* The divisor must be provably nonzero at the operation's type:
           either a constant that stays nonzero after conversion, or
           [x | odd] whose low bit survives any truncation. *)
        (match b with
        | Const (c, ct) ->
          if convert ~from_:ct ~to_:rty (normalize ct c) = 0L then fail ()
        | Bin (BOr, _, Const (c, _)) -> if Int64.logand c 1L <> 1L then fail ()
        | _ -> fail ()))
    | Bin ((Shl | Shr), a, b) -> begin
      recur a;
      match type_of a with
      | Ft _ | Pt _ -> fail ()
      | It ta -> begin
        match b with
        | Const (k, _) ->
          if k < 0L || k >= Int64.of_int (bits (promote ta)) then fail ()
        | _ -> fail ()
      end
    end
    | Bin (((BAnd | BOr | BXor) as _op), a, b) ->
      recur a;
      recur b;
      if not (is_int_expr a && is_int_expr b) then fail ()
    | Bin (_, a, b) ->
      recur a;
      recur b
    | Cast (s, a) ->
      (match (mode, s) with
      | (`Full | `Restricted), Ft _ -> fail ()
      | _, Pt _ -> fail () (* no casts to pointer types: provenance *)
      | _ -> ());
      recur a
    | Cond (c, a, b) ->
      recur c;
      if not (is_int_expr c) then fail ();
      recur a;
      recur b
  in
  (* Enums: full constant expressions over earlier enums; the value (as
     printed) must fit in [int], since C gives enum constants type
     [int]. *)
  let enums_so_far = ref [] in
  List.iter
    (fun (n, e) ->
      check_expr ~enums:!enums_so_far ~funcs:[] ~mode:`Full e;
      enums_so_far := n :: !enums_so_far)
    p.enums;
  let all_enums = List.map fst p.enums in
  (try
     List.iter
       (fun (_, v) -> if v < -2147483648L || v > 2147483647L then fail ())
       (enum_env p)
   with Not_const -> fail ());
  (* Globals: restricted constant expressions. *)
  List.iter
    (fun (_, _, e) -> check_expr ~enums:all_enums ~funcs:[] ~mode:`Restricted e)
    p.globals;
  List.iter
    (fun (_, _, len) -> if len < 1 || len > max_array_len then fail ())
    p.arrays;
  (* Helper functions: locals see params and earlier locals; bodies may
     assign own locals and use if/loops; only earlier helpers callable. *)
  let funcs_so_far = ref [] in
  List.iter
    (fun f ->
      let callable = List.rev !funcs_so_far in
      (* Only *parameters* may be pointer-typed: a pointer local or a
         pointer return value would need a static referent the callee
         cannot have. *)
      (match f.fn_ret with Pt _ -> fail () | It _ | Ft _ -> ());
      List.iter
        (fun (_, s, _) -> match s with Pt _ -> fail () | It _ | Ft _ -> ())
        f.fn_locals;
      let param_scope = f.fn_params in
      let scope_ref = ref param_scope in
      List.iter
        (fun (n, s, e) ->
          check_expr ~enums:all_enums ~funcs:callable
            ~mode:(`Func (!scope_ref, []))
            e;
          scope_ref := (n, s) :: !scope_ref)
        f.fn_locals;
      let full_scope = !scope_ref in
      let fn_local_names = List.map (fun (n, _, _) -> n) f.fn_locals in
      let rec check_fstmt loops s =
        let check_e =
          check_expr ~enums:all_enums ~funcs:callable
            ~mode:(`Func (full_scope, loops))
        in
        match s with
        | Assign (n, e) ->
          if not (List.mem n fn_local_names) then fail ();
          check_e e
        | If (c, a, b) ->
          check_e c;
          if not (is_int_expr c) then fail ();
          List.iter (check_fstmt loops) a;
          List.iter (check_fstmt loops) b
        | Loop (v, n, body) ->
          if n < 1 || n > max_loop_bound then fail ();
          List.iter (check_fstmt ((v, n) :: loops)) body
        | AStore _ | FStore _ | PStore _ | Switch _ | Memcpy _ | Memset _ ->
          (* no arrays, fields, builtins or pointer stores in a helper:
             reads (globals included) keep calls predictable, writes
             would not be *)
          fail ()
      in
      List.iter (check_fstmt []) f.fn_body;
      check_expr ~enums:all_enums ~funcs:callable ~mode:(`Func (full_scope, []))
        f.fn_ret_expr;
      funcs_so_far := (f.fn_name, f) :: !funcs_so_far)
    p.funcs;
  let all_funcs = func_by_name in
  (* Recomputations: pure expressions (floats and calls allowed; no
     state), whose reference value must actually evaluate. *)
  List.iter
    (fun (_, e) -> check_expr ~enums:all_enums ~funcs:all_funcs ~mode:`Pure e)
    p.rcs;
  (* Every constant expression must actually evaluate (guards hold). *)
  if !ok then (try ignore (expected_lines p) with Not_const -> fail ());
  (* Locals: runtime expressions over earlier locals. *)
  let locals_so_far = ref [] in
  List.iter
    (fun (n, s, e) ->
      (* Scalar locals only — pointers live in [p.ptrs], declared after
         every local so their initializers can take any address. *)
      (match s with Pt _ -> fail () | It _ | Ft _ -> ());
      check_expr ~enums:all_enums ~funcs:all_funcs
        ~mode:(`Runtime (!locals_so_far, []))
        e;
      locals_so_far := (n, s) :: !locals_so_far)
    p.locals;
  (* Body: all locals in scope; loop bounds within limits; assignments
     target scalar locals or globals, never loop variables (the index
     checks rely on their bounds).  Global stores are sound because the
     rendering snapshots the initial values before the body runs, so the
     reference-predicted print lines are unaffected. *)
  let rec check_stmt loops s =
    (* The body (and only the body) sees the pointers: declared after
       the last local initializer, never visible to helpers or rcs. *)
    let body_scope = local_ty @ ptr_scope in
    let check_e =
      check_expr ~enums:all_enums ~funcs:all_funcs
        ~mode:(`Runtime (body_scope, loops))
    in
    match s with
    | Assign (n, e) ->
      if not (List.mem_assoc n local_ty || List.mem_assoc n global_ty) then
        fail ();
      check_e e
    | AStore (a, ix, e) -> begin
      check_e e;
      match List.assoc_opt a array_info with
      | None -> fail ()
      | Some (_, len) -> begin
        match ix with
        | Ixc k -> if k < 0 || k >= len then fail ()
        | Ixv v -> begin
          match List.assoc_opt v loops with
          | Some bound -> if bound > len then fail ()
          | None -> fail ()
        end
      end
    end
    | FStore (f, e) ->
      if not (List.mem_assoc f field_ty) then fail ();
      check_e e
    | PStore (pn, ix, e) -> begin
      check_e e;
      (* Stored value converts to the element's integer type; float
         sources could overflow the conversion (UB), so keep them out. *)
      if not (is_int_expr e) then fail ();
      match Hashtbl.find_opt ptr_tbl pn with
      | Some (_, r, off) ->
        check_ptr_idx ~mode:(`Runtime (body_scope, loops)) ~r ~off ix
      | None -> fail ()
    end
    | If (c, a, b) ->
      check_e c;
      if not (is_int_expr c) then fail ();
      List.iter (check_stmt loops) a;
      List.iter (check_stmt loops) b
    | Loop (v, n, body) ->
      if n < 1 || n > max_loop_bound then fail ();
      List.iter (check_stmt ((v, n) :: loops)) body
    | Switch (e, arms, d) ->
      check_e e;
      if not (is_int_expr e) then fail ();
      let labels = List.map fst arms in
      if List.length (List.sort_uniq compare labels) <> List.length labels
      then fail ();
      List.iter (fun (_, body) -> List.iter (check_stmt loops) body) arms;
      List.iter (check_stmt loops) d
    | Memcpy (dst, src, len) -> begin
      if dst = src then fail ();
      match (List.assoc_opt dst array_info, List.assoc_opt src array_info) with
      | Some d, Some s ->
        if len < 1 || len > min (array_bytes d) (array_bytes s) then fail ()
      | _ -> fail ()
    end
    | Memset (a, v, len) -> begin
      if v < 0 || v > 255 then fail ();
      match List.assoc_opt a array_info with
      | Some info -> if len < 1 || len > array_bytes info then fail ()
      | None -> fail ()
    end
  in
  List.iter (check_stmt []) p.body;
  (* NUL-safety of strlen'd arrays: collect every [Strlen] target, then
     verify no write anywhere in the body can touch its final element —
     arrays are zero-initialized, so the last byte then provably stays
     NUL and every [strlen] terminates in bounds. *)
  let strlen_targets = ref [] in
  let rec scan_expr e =
    (match e with
    | Strlen a -> if not (List.mem a !strlen_targets) then
        strlen_targets := a :: !strlen_targets
    | _ -> ());
    match e with
    | Const _ | FConst _ | EnumRef _ | Var _ | Read _ | Field _ | Strlen _
    | PRead _ | PCmp _ | PDiff _ -> ()
    | Un (_, a) | Cast (_, a) -> scan_expr a
    | Bin (_, a, b) -> scan_expr a; scan_expr b
    | Cond (c, a, b) -> scan_expr c; scan_expr a; scan_expr b
    | Call (_, _, args) -> List.iter scan_expr args
  in
  let rec scan_stmt s =
    match s with
    | Assign (_, e) | AStore (_, _, e) | FStore (_, e) | PStore (_, _, e) ->
      scan_expr e
    | If (c, a, b) -> scan_expr c; List.iter scan_stmt a; List.iter scan_stmt b
    | Loop (_, _, body) -> List.iter scan_stmt body
    | Switch (e, arms, d) ->
      scan_expr e;
      List.iter (fun (_, body) -> List.iter scan_stmt body) arms;
      List.iter scan_stmt d
    | Memcpy _ | Memset _ -> ()
  in
  List.iter (fun (_, e) -> scan_expr e) p.rcs;
  List.iter (fun (_, _, e) -> scan_expr e) p.locals;
  List.iter scan_stmt p.body;
  List.iter
    (fun f ->
      List.iter (fun (_, _, e) -> scan_expr e) f.fn_locals;
      List.iter scan_stmt f.fn_body;
      scan_expr f.fn_ret_expr)
    p.funcs;
  List.iter
    (fun a ->
      match List.assoc_opt a array_info with
      | None -> fail ()
      | Some (_, len) ->
        (* Element type is I8/U8 (checked above), so bytes = elements. *)
        let rec scan_writes loops s =
          match s with
          | AStore (a', ix, _) when a' = a -> begin
            match ix with
            | Ixc k -> if k > len - 2 then fail ()
            | Ixv v -> begin
              match List.assoc_opt v loops with
              | Some bound -> if bound > len - 1 then fail ()
              | None -> ()
            end
          end
          | PStore (pn, ix, _) -> begin
            (* A store through a pointer can hit the array too: resolve
               the pointer's static referent and apply the same
               last-element protection as a direct [AStore]. *)
            match Hashtbl.find_opt ptr_tbl pn with
            | Some (_, RArr (a', _), off) when a' = a -> begin
              match ix with
              | Ixc k -> if off + k > len - 2 then fail ()
              | Ixv v -> begin
                match List.assoc_opt v loops with
                | Some bound -> if off + bound > len - 1 then fail ()
                | None -> ()
              end
            end
            | _ -> ()
          end
          | Memset (a', _, l) when a' = a -> if l > len - 1 then fail ()
          | Memcpy (d, _, l) when d = a -> if l > len - 1 then fail ()
          | If (_, x, y) ->
            List.iter (scan_writes loops) x;
            List.iter (scan_writes loops) y
          | Loop (v, n, body) -> List.iter (scan_writes ((v, n) :: loops)) body
          | Switch (_, arms, d) ->
            List.iter (fun (_, body) -> List.iter (scan_writes loops) body) arms;
            List.iter (scan_writes loops) d
          | Assign _ | AStore _ | FStore _ | Memcpy _ | Memset _ -> ()
        in
        List.iter (scan_writes []) p.body)
    !strlen_targets;
  !ok
