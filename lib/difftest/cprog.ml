(** Program representation for the cross-engine differential oracle.

    Generated programs live in a typed mini-AST rather than as strings so
    that (a) the generator can guarantee well-definedness by construction
    (in-bounds indices, nonzero divisors, in-range shift counts), (b) a
    reference evaluator can predict the value of every constant
    expression independently of the front end under test — the front end
    is shared by *all* engine configurations, so a wrong folded constant
    is consistently wrong and invisible to cross-configuration
    comparison — and (c) the shrinker can produce strictly smaller
    candidate programs that provably preserve those guarantees
    ([well_formed]).

    The subset is deliberately biased toward the arithmetic the engines
    must agree on bit-for-bit: integer arithmetic at every width and
    signedness, shifts, casts, comparisons, short-circuit logic, loops
    with constant bounds, structs and arrays with in-bounds indices.
    Semantics the C standard leaves undefined or implementation-defined
    but our abstract machine defines (wrapping signed overflow,
    arithmetic right shift of negatives) are fair game: every
    configuration must still agree. *)

(* ------------------------------------------------------------------ *)
(* Types and constant arithmetic (LP64)                                *)
(* ------------------------------------------------------------------ *)

type ity = I8 | U8 | I16 | U16 | I32 | U32 | I64 | U64

let all_itys = [ I8; U8; I16; U16; I32; U32; I64; U64 ]

let bits = function
  | I8 | U8 -> 8
  | I16 | U16 -> 16
  | I32 | U32 -> 32
  | I64 | U64 -> 64

let is_unsigned = function
  | U8 | U16 | U32 | U64 -> true
  | I8 | I16 | I32 | I64 -> false

let c_name = function
  | I8 -> "char"
  | U8 -> "unsigned char"
  | I16 -> "short"
  | U16 -> "unsigned short"
  | I32 -> "int"
  | U32 -> "unsigned int"
  | I64 -> "long"
  | U64 -> "unsigned long"

(** Integer promotion: anything narrower than [int] promotes to [int]. *)
let promote t = if bits t < 32 then I32 else t

(** Usual arithmetic conversions (mirrors [Ctype.usual_arith] for the
    integer subset; LP64, so [long] can represent every [unsigned int]). *)
let usual a b =
  let a = promote a and b = promote b in
  if a = b then a
  else if a = U64 || b = U64 then U64
  else if bits a = 64 || bits b = 64 then I64
  else U32

(** Canonical constant representation: truncate to the width of [t] and
    sign-extend back to 64 bits (the engines' register invariant). *)
let normalize t v =
  let b = bits t in
  if b = 64 then v else Int64.shift_right (Int64.shift_left v (64 - b)) (64 - b)

(** Reinterpret a canonical value as the unsigned value of [t]'s width. *)
let zext t v =
  let b = bits t in
  if b = 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L b) 1L)

(** C integer conversion on canonical values: zero-extend when widening
    from an unsigned type, then renormalize to the target width. *)
let convert ~from_ ~to_ v =
  let widened =
    if is_unsigned from_ && bits to_ > bits from_ then zext from_ v else v
  in
  normalize to_ widened

(** Value printed by [printf("%ld", (long)x)] for canonical [v] of type
    [t]: the conversion to [long] zero-extends narrower unsigned types. *)
let as_long t v = if is_unsigned t && bits t < 64 then zext t v else v

(* ------------------------------------------------------------------ *)
(* Expressions and statements                                          *)
(* ------------------------------------------------------------------ *)

type unop = Neg | Bnot | Lnot

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | BAnd | BOr | BXor
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr

(** Array subscript: a constant, or a surrounding loop's induction
    variable (whose bound the validator checks against the array size —
    the shrinker can never rewrite an index out of bounds). *)
type idx = Ixc of int | Ixv of string

type expr =
  | Const of int64 * ity
  | EnumRef of string          (** enum constant; type [int] *)
  | Var of string * ity        (** scalar local, global, or loop var *)
  | Read of string * ity * idx (** array element rvalue *)
  | Field of string * ity      (** [s.<field>] of the single struct var *)
  | Un of unop * expr
  | Bin of binop * expr * expr
  | Cast of ity * expr
  | Cond of expr * expr * expr

type stmt =
  | Assign of string * expr
      (** target is a scalar local or a mutable global (never a loop
          variable: those carry the bounds the index checks rely on) *)
  | AStore of string * idx * expr
  | FStore of string * expr
  | If of expr * stmt list * stmt list
  | Loop of string * int * stmt list
      (** [for (long i = 0; i < n; i = i + 1) body] *)
  | Switch of expr * (int * stmt list) list * stmt list
      (** scrutinee is cast to [long]; arms carry small distinct labels *)

type program = {
  seed : int;
  enums : (string * expr) list;  (** full constant expressions *)
  globals : (string * ity * expr) list;
      (** constant expressions restricted to the operator subset the
          global-initializer folder supports (no comparisons/ternary) *)
  fields : (string * ity * int64) list;  (** struct S fields + init *)
  arrays : (string * ity * int) list;    (** zero-initialized locals *)
  rcs : (string * expr) list;
      (** runtime recomputations of pure constant expressions: the same
          expression class as [enums], but evaluated by the engines *)
  locals : (string * ity * expr) list;   (** runtime initializers *)
  body : stmt list;
}

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | LAnd -> "&&" | LOr -> "||"

(** Static type of an expression under the C rules the front end
    implements (shift result type is the promoted left operand;
    comparisons and logic yield [int]). *)
let rec type_of (e : expr) : ity =
  match e with
  | Const (_, t) | Var (_, t) | Read (_, t, _) | Field (_, t) -> t
  | EnumRef _ -> I32
  | Un (Lnot, _) -> I32
  | Un ((Neg | Bnot), a) -> promote (type_of a)
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr), _, _) -> I32
  | Bin ((Shl | Shr), a, _) -> promote (type_of a)
  | Bin (_, a, b) -> usual (type_of a) (type_of b)
  | Cast (t, _) -> t
  | Cond (_, a, b) -> usual (type_of a) (type_of b)

(* ------------------------------------------------------------------ *)
(* Reference evaluator                                                 *)
(* ------------------------------------------------------------------ *)

exception Not_const

(** Canonical value of a pure constant expression at [type_of e]; [env]
    resolves enum constants (already canonical at [int]).  This is the
    independent arbiter the oracle compares every configuration against:
    it shares no code with the front end's folders or the engines. *)
let rec eval (env : (string * int64) list) (e : expr) : int64 =
  let conv a into = convert ~from_:(type_of a) ~to_:into (eval env a) in
  match e with
  | Const (v, t) -> normalize t v
  | EnumRef n -> (try List.assoc n env with Not_found -> raise Not_const)
  | Var _ | Read _ | Field _ -> raise Not_const
  | Un (Neg, a) ->
    let t = promote (type_of a) in
    normalize t (Int64.neg (conv a t))
  | Un (Bnot, a) ->
    let t = promote (type_of a) in
    normalize t (Int64.lognot (conv a t))
  | Un (Lnot, a) -> if eval env a = 0L then 1L else 0L
  | Bin (LAnd, a, b) ->
    if eval env a = 0L then 0L else if eval env b <> 0L then 1L else 0L
  | Bin (LOr, a, b) ->
    if eval env a <> 0L then 1L else if eval env b <> 0L then 1L else 0L
  | Bin (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
    let t = usual (type_of a) (type_of b) in
    let va = conv a t and vb = conv b t in
    let cmp =
      if is_unsigned t then Int64.unsigned_compare (zext t va) (zext t vb)
      else compare va vb
    in
    let r =
      match op with
      | Lt -> cmp < 0
      | Le -> cmp <= 0
      | Gt -> cmp > 0
      | Ge -> cmp >= 0
      | Eq -> cmp = 0
      | _ -> cmp <> 0
    in
    if r then 1L else 0L
  | Bin (((Shl | Shr) as op), a, b) ->
    let t = promote (type_of a) in
    let x = conv a t in
    let count = Int64.to_int (eval env b) land 63 in
    let r =
      match op with
      | Shl -> Int64.shift_left x count
      | _ ->
        if is_unsigned t then Int64.shift_right_logical (zext t x) count
        else Int64.shift_right x count
    in
    normalize t r
  | Bin (op, a, b) ->
    let t = usual (type_of a) (type_of b) in
    let x = conv a t and y = conv b t in
    let r =
      match op with
      | Add -> Int64.add x y
      | Sub -> Int64.sub x y
      | Mul -> Int64.mul x y
      | Div ->
        if y = 0L then raise Not_const
        else if is_unsigned t then Int64.unsigned_div (zext t x) (zext t y)
        else Int64.div x y
      | Rem ->
        if y = 0L then raise Not_const
        else if is_unsigned t then Int64.unsigned_rem (zext t x) (zext t y)
        else Int64.rem x y
      | BAnd -> Int64.logand x y
      | BOr -> Int64.logor x y
      | BXor -> Int64.logxor x y
      | _ -> assert false
    in
    normalize t r
  | Cast (t, a) -> conv a t
  | Cond (c, a, b) ->
    let t = usual (type_of a) (type_of b) in
    if eval env c <> 0L then conv a t else conv b t

(** The enum environment: each constant's runtime value (canonical at
    [int], exactly what the parser's [IntLit] substitution produces). *)
let enum_env (p : program) : (string * int64) list =
  List.fold_left
    (fun env (n, e) ->
      let v = as_long (type_of e) (eval env e) in
      (n, normalize I32 v) :: env)
    [] p.enums
  |> List.rev

(** The output lines whose values the reference evaluator can predict:
    enum constants, global initial values, and the pure recomputed
    expressions — in print order. *)
let expected_lines (p : program) : (string * int64) list =
  let env = enum_env p in
  List.map (fun (n, _) -> (n, List.assoc n env)) p.enums
  @ List.map
      (fun (n, gt, e) ->
        (n, as_long gt (convert ~from_:(type_of e) ~to_:gt (eval env e))))
      p.globals
  @ List.map (fun (n, e) -> (n, as_long (type_of e) (eval env e))) p.rcs

let expected_prefix (p : program) : string =
  String.concat ""
    (List.map
       (fun (n, v) -> Printf.sprintf "%s=%Ld\n" n v)
       (expected_lines p))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** Constants render to a form that parses back to the exact canonical
    value at the exact type: small non-negative values as a cast decimal
    literal, everything else as a cast 64-bit hex [unsigned long]
    literal (the cast truncates to the right width). *)
let render_const v t =
  let c = normalize t v in
  if c >= 0L && c < 0x8000_0000L then
    Printf.sprintf "((%s)%Ld)" (c_name t) c
  else Printf.sprintf "((%s)0x%Lxul)" (c_name t) c

let render_idx = function Ixc k -> string_of_int k | Ixv v -> v

let rec render_expr (e : expr) : string =
  match e with
  | Const (v, t) -> render_const v t
  | EnumRef n | Var (n, _) -> n
  | Read (a, _, ix) -> Printf.sprintf "%s[%s]" a (render_idx ix)
  | Field (f, _) -> "s." ^ f
  | Un (Neg, a) -> "(- " ^ render_expr a ^ ")"
  | Un (Bnot, a) -> "(~ " ^ render_expr a ^ ")"
  | Un (Lnot, a) -> "(! " ^ render_expr a ^ ")"
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (render_expr a) (binop_str op)
      (render_expr b)
  | Cast (t, a) -> Printf.sprintf "((%s)%s)" (c_name t) (render_expr a)
  | Cond (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (render_expr c) (render_expr a)
      (render_expr b)

let rec render_stmt b ind (s : stmt) =
  let pad = String.make ind ' ' in
  match s with
  | Assign (n, e) ->
    Buffer.add_string b (Printf.sprintf "%s%s = %s;\n" pad n (render_expr e))
  | AStore (a, ix, e) ->
    Buffer.add_string b
      (Printf.sprintf "%s%s[%s] = %s;\n" pad a (render_idx ix) (render_expr e))
  | FStore (f, e) ->
    Buffer.add_string b (Printf.sprintf "%ss.%s = %s;\n" pad f (render_expr e))
  | If (c, t, []) ->
    Buffer.add_string b (Printf.sprintf "%sif (%s) {\n" pad (render_expr c));
    List.iter (render_stmt b (ind + 2)) t;
    Buffer.add_string b (pad ^ "}\n")
  | If (c, t, e) ->
    Buffer.add_string b (Printf.sprintf "%sif (%s) {\n" pad (render_expr c));
    List.iter (render_stmt b (ind + 2)) t;
    Buffer.add_string b (pad ^ "} else {\n");
    List.iter (render_stmt b (ind + 2)) e;
    Buffer.add_string b (pad ^ "}\n")
  | Loop (v, n, body) ->
    Buffer.add_string b
      (Printf.sprintf "%sfor (long %s = 0; %s < %d; %s = %s + 1) {\n" pad v v
         n v v);
    List.iter (render_stmt b (ind + 2)) body;
    Buffer.add_string b (pad ^ "}\n")
  | Switch (e, arms, dflt) ->
    (* No cast: the controlling expression keeps its own C type, which
       the front end promotes and converts the labels to (C11 6.8.4.2).
       The old [(long)] wrapper papered over the missing conversion. *)
    Buffer.add_string b
      (Printf.sprintf "%sswitch (%s) {\n" pad (render_expr e));
    List.iter
      (fun (k, body) ->
        Buffer.add_string b (Printf.sprintf "%s  case %d: {\n" pad k);
        List.iter (render_stmt b (ind + 4)) body;
        Buffer.add_string b (pad ^ "    break;\n" ^ pad ^ "  }\n"))
      arms;
    Buffer.add_string b (pad ^ "  default: {\n");
    List.iter (render_stmt b (ind + 4)) dflt;
    Buffer.add_string b (pad ^ "    break;\n" ^ pad ^ "  }\n");
    Buffer.add_string b (pad ^ "}\n")

let render (p : program) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "/* difftest seed %d */\n" p.seed);
  if p.enums <> [] then begin
    Buffer.add_string b "enum {\n";
    List.iter
      (fun (n, e) ->
        Buffer.add_string b (Printf.sprintf "  %s = %s,\n" n (render_expr e)))
      p.enums;
    Buffer.add_string b "};\n"
  end;
  if p.fields <> [] then begin
    Buffer.add_string b "struct S {\n";
    List.iter
      (fun (f, t, _) ->
        Buffer.add_string b (Printf.sprintf "  %s %s;\n" (c_name t) f))
      p.fields;
    Buffer.add_string b "};\n"
  end;
  List.iter
    (fun (n, t, e) ->
      Buffer.add_string b
        (Printf.sprintf "static %s %s = %s;\n" (c_name t) n (render_expr e)))
    p.globals;
  Buffer.add_string b "int main(void) {\n";
  if p.fields <> [] then Buffer.add_string b "  struct S s;\n";
  List.iter
    (fun (a, t, len) ->
      Buffer.add_string b
        (Printf.sprintf "  %s %s[%d] = {0};\n" (c_name t) a len))
    p.arrays;
  List.iter
    (fun (f, t, v) ->
      Buffer.add_string b (Printf.sprintf "  s.%s = %s;\n" f (render_const v t)))
    p.fields;
  List.iter
    (fun (n, e) ->
      Buffer.add_string b
        (Printf.sprintf "  %s %s = %s;\n"
           (c_name (type_of e)) n (render_expr e)))
    p.rcs;
  List.iter
    (fun (n, t, e) ->
      Buffer.add_string b
        (Printf.sprintf "  %s %s = %s;\n" (c_name t) n (render_expr e)))
    p.locals;
  (* Globals are mutable at runtime (the body may assign them), but the
     reference evaluator predicts only their *initial* values — so those
     are snapshot before the body runs, and the snapshots feed the
     reference-checked print lines below.  The post-body values are
     printed separately as [g_end] lines the configurations must merely
     agree on among themselves. *)
  List.iter
    (fun (n, _, _) ->
      Buffer.add_string b (Printf.sprintf "  long snap_%s = (long)%s;\n" n n))
    p.globals;
  List.iter (render_stmt b 2) p.body;
  (* Print order: reference-predictable lines first (the expected
     prefix), then the runtime state dump the configurations must merely
     agree on among themselves. *)
  let print_long label what =
    Buffer.add_string b
      (Printf.sprintf "  printf(\"%s=%%ld\\n\", (long)%s);\n" label what)
  in
  List.iter (fun (n, _) -> print_long n n) p.enums;
  List.iter (fun (n, _, _) -> print_long n ("snap_" ^ n)) p.globals;
  List.iter (fun (n, _) -> print_long n n) p.rcs;
  List.iter (fun (n, _, _) -> print_long n n) p.locals;
  List.iter (fun (n, _, _) -> print_long (n ^ "_end") n) p.globals;
  List.iter (fun (f, _, _) -> print_long ("s." ^ f) ("s." ^ f)) p.fields;
  List.iter
    (fun (a, _, len) ->
      Buffer.add_string b
        (Printf.sprintf
           "  {\n\
            \    long chk_%s = 0;\n\
            \    for (long ci_%s = 0; ci_%s < %d; ci_%s = ci_%s + 1) {\n\
            \      chk_%s = (chk_%s * 31) + (long)%s[ci_%s];\n\
            \    }\n\
            \    printf(\"%s=%%ld\\n\", chk_%s);\n\
            \  }\n"
           a a a len a a a a a a a a))
    p.arrays;
  Buffer.add_string b "  return 0;\n}\n";
  Buffer.contents b

(** Size metric for the shrinker: rendered length.  Monotone under every
    reduction we apply (structural drops, subexpression hoisting,
    constant simplification), which guarantees termination. *)
let size (p : program) : int = String.length (render p)

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

(** Operator subsets legal in each constant context.  [`Full] is what
    the parser's constant-expression evaluator accepts (enum values);
    [`Restricted] is what the global-initializer folder accepts (no
    comparisons, logic, ternary or bitwise-not). *)
type cmode = [ `Full | `Restricted ]

let max_array_len = 16
let max_loop_bound = 16

(** [well_formed p] checks every guarantee the generator establishes, so
    the shrinker (or a hand-written regression) can only produce
    programs that are well-defined under our abstract machine:
    referenced names exist with the recorded types, array indices are in
    bounds (loop-variable indices via the loop bound), divisors are
    provably nonzero, shift counts are constants within the promoted
    width, enum values fit in [int], and switch labels are distinct. *)
let well_formed (p : program) : bool =
  let ok = ref true in
  let fail () = ok := false in
  (* Distinct names across every namespace (incl. loop variables). *)
  let names = Hashtbl.create 32 in
  let declare n = if Hashtbl.mem names n then fail () else Hashtbl.replace names n () in
  List.iter (fun (n, _) -> declare n) p.enums;
  List.iter (fun (n, _, _) -> declare n) p.globals;
  List.iter (fun (f, _, _) -> declare ("s." ^ f)) p.fields;
  List.iter (fun (a, _, _) -> declare a) p.arrays;
  List.iter (fun (n, _) -> declare n) p.rcs;
  List.iter (fun (n, _, _) -> declare n) p.locals;
  let rec declare_loop_vars s =
    match s with
    | Loop (v, _, body) ->
      declare v;
      List.iter declare_loop_vars body
    | If (_, a, b) ->
      List.iter declare_loop_vars a;
      List.iter declare_loop_vars b
    | Switch (_, arms, d) ->
      List.iter (fun (_, body) -> List.iter declare_loop_vars body) arms;
      List.iter declare_loop_vars d
    | Assign _ | AStore _ | FStore _ -> ()
  in
  List.iter declare_loop_vars p.body;
  (* Lookup tables. *)
  let global_ty = List.map (fun (n, t, _) -> (n, t)) p.globals in
  let field_ty = List.map (fun (f, t, _) -> (f, t)) p.fields in
  let array_info = List.map (fun (a, t, len) -> (a, (t, len))) p.arrays in
  let local_ty = List.map (fun (n, t, _) -> (n, t)) p.locals in
  (* Generic expression check.  [consts]: which constant mode, or
     [`Runtime locals loops] with the scalar scope and live loop
     bounds. *)
  let rec check_expr ~(enums : string list)
      ~(mode : [ cmode | `Runtime of (string * ity) list * (string * int) list ])
      (e : expr) =
    let recur = check_expr ~enums ~mode in
    let runtime_only () = match mode with `Runtime _ -> () | _ -> fail () in
    (match (mode, e) with
    | `Restricted, (Un ((Bnot | Lnot), _) | Cond _)
    | `Restricted, Bin ((Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr), _, _) ->
      fail ()
    | _ -> ());
    match e with
    | Const _ -> ()
    | EnumRef n -> if not (List.mem n enums) then fail ()
    | Var (n, t) -> begin
      runtime_only ();
      match mode with
      | `Runtime (locals, loops) ->
        let found =
          match List.assoc_opt n locals with
          | Some t' -> t' = t
          | None -> begin
            match List.assoc_opt n global_ty with
            | Some t' -> t' = t
            | None -> List.mem_assoc n loops && t = I64
          end
        in
        if not found then fail ()
      | _ -> ()
    end
    | Read (a, t, ix) -> begin
      runtime_only ();
      match (List.assoc_opt a array_info, mode) with
      | Some (t', len), `Runtime (_, loops) ->
        if t' <> t then fail ();
        (match ix with
        | Ixc k -> if k < 0 || k >= len then fail ()
        | Ixv v -> begin
          match List.assoc_opt v loops with
          | Some bound -> if bound > len then fail ()
          | None -> fail ()
        end)
      | _ -> fail ()
    end
    | Field (f, t) -> begin
      runtime_only ();
      match List.assoc_opt f field_ty with
      | Some t' -> if t' <> t then fail ()
      | None -> fail ()
    end
    | Un (_, a) -> recur a
    | Bin ((Div | Rem), a, b) ->
      recur a;
      recur b;
      (* The divisor must be provably nonzero at the operation's type:
         either a constant that stays nonzero after conversion, or
         [x | odd] whose low bit survives any truncation. *)
      let rty = type_of e in
      (match b with
      | Const (c, ct) ->
        if convert ~from_:ct ~to_:rty (normalize ct c) = 0L then fail ()
      | Bin (BOr, _, Const (c, _)) -> if Int64.logand c 1L <> 1L then fail ()
      | _ -> fail ())
    | Bin ((Shl | Shr), a, b) -> begin
      recur a;
      match b with
      | Const (k, _) ->
        if k < 0L || k >= Int64.of_int (bits (promote (type_of a))) then
          fail ()
      | _ -> fail ()
    end
    | Bin (_, a, b) ->
      recur a;
      recur b
    | Cast (_, a) -> recur a
    | Cond (c, a, b) ->
      recur c;
      recur a;
      recur b
  in
  (* Enums: full constant expressions over earlier enums; the value (as
     printed) must fit in [int], since C gives enum constants type
     [int]. *)
  let enums_so_far = ref [] in
  List.iter
    (fun (n, e) ->
      check_expr ~enums:!enums_so_far ~mode:`Full e;
      enums_so_far := n :: !enums_so_far)
    p.enums;
  let all_enums = List.map fst p.enums in
  (try
     List.iter
       (fun (_, v) ->
         if v < -2147483648L || v > 2147483647L then fail ())
       (let env = enum_env p in
        List.map (fun (n, _) -> (n, List.assoc n env)) p.enums)
   with Not_const -> fail ());
  (* Globals: restricted constant expressions. *)
  List.iter
    (fun (_, _, e) -> check_expr ~enums:all_enums ~mode:`Restricted e)
    p.globals;
  (* Every constant expression must actually evaluate (guards hold). *)
  (try ignore (expected_lines p) with Not_const -> fail ());
  List.iter
    (fun (_, _, len) -> if len < 1 || len > max_array_len then fail ())
    p.arrays;
  (* Recomputations: full constant expressions (runtime context accepts
     every operator, but purity is required for the reference value). *)
  List.iter (fun (_, e) -> check_expr ~enums:all_enums ~mode:`Full e) p.rcs;
  (* Locals: runtime expressions over earlier locals. *)
  let locals_so_far = ref [] in
  List.iter
    (fun (n, t, e) ->
      check_expr ~enums:all_enums ~mode:(`Runtime (!locals_so_far, [])) e;
      locals_so_far := (n, t) :: !locals_so_far)
    p.locals;
  (* Body: all locals in scope; loop bounds within limits; assignments
     target scalar locals or globals, never loop variables (the index
     checks rely on their bounds).  Global stores are sound because the
     rendering snapshots the initial values before the body runs, so the
     reference-predicted print lines are unaffected. *)
  let rec check_stmt loops s =
    let check_e = check_expr ~enums:all_enums ~mode:(`Runtime (local_ty, loops)) in
    match s with
    | Assign (n, e) ->
      if not (List.mem_assoc n local_ty || List.mem_assoc n global_ty) then
        fail ();
      check_e e
    | AStore (a, ix, e) -> begin
      check_e e;
      match List.assoc_opt a array_info with
      | None -> fail ()
      | Some (_, len) -> begin
        match ix with
        | Ixc k -> if k < 0 || k >= len then fail ()
        | Ixv v -> begin
          match List.assoc_opt v loops with
          | Some bound -> if bound > len then fail ()
          | None -> fail ()
        end
      end
    end
    | FStore (f, e) ->
      if not (List.mem_assoc f field_ty) then fail ();
      check_e e
    | If (c, a, b) ->
      check_e c;
      List.iter (check_stmt loops) a;
      List.iter (check_stmt loops) b
    | Loop (v, n, body) ->
      if n < 1 || n > max_loop_bound then fail ();
      List.iter (check_stmt ((v, n) :: loops)) body
    | Switch (e, arms, d) ->
      check_e e;
      let labels = List.map fst arms in
      if List.length (List.sort_uniq compare labels) <> List.length labels
      then fail ();
      List.iter (fun (_, body) -> List.iter (check_stmt loops) body) arms;
      List.iter (check_stmt loops) d
  in
  List.iter (check_stmt []) p.body;
  !ok
