(** Driver for the differential-testing campaign: generate a seed range,
    run each program through the oracle, optionally shrink divergent
    cases, and report machine-readable results.

    Checked-in regression programs pin the divergences this subsystem
    convicted: the front-end constant-folding bugs (logical-shift
    folding for unsigned operands, unsigned comparisons folded with
    signed compare, float-to-int casts folded with platform-dependent
    [Int64.of_float]) and the single-precision rounding bugs (F32
    add/div results and int-to-F32 conversions kept at double
    precision).  Reverting any one fix makes the corresponding
    regression fail. *)

type divergence = {
  dv_seed : int;
  dv_mismatch : string;
  dv_source : string;
  dv_reduced : string option;
  dv_oracle_calls : int;  (** oracle calls spent shrinking *)
}

type report = {
  rp_seed_start : int;
  rp_seeds : int;
  rp_features : string;  (** generator feature set, e.g. "int,float" *)
  rp_agree : int;
  rp_reject : int;
  rp_divergences : divergence list;
  rp_elapsed_s : float;
}

let diverges (p : Cprog.program) : bool =
  match Oracle.check ~expected:(Cprog.expected_prefix p) (Cprog.render p) with
  | Oracle.Diverge _ -> true
  | Oracle.Agree _ | Oracle.Reject _ -> false

(** Run one seed; [shrink] spends up to [shrink_budget] extra oracle
    calls reducing a divergent program. *)
let run_seed ?(features = Cgen.all_features) ?(shrink = false)
    ?(shrink_budget = 200) (seed : int) :
    [ `Agree | `Reject of string | `Diverge of divergence ] =
  let p = Cgen.generate ~features ~seed () in
  let src = Cprog.render p in
  match Oracle.check ~expected:(Cprog.expected_prefix p) src with
  | Oracle.Agree _ -> `Agree
  | Oracle.Reject why -> `Reject why
  | Oracle.Diverge { mismatch; _ } ->
    let reduced, calls =
      if shrink then begin
        let r = Shrink.reduce ~test:diverges ~budget:shrink_budget p in
        (Some (Cprog.render r.Shrink.reduced), r.Shrink.oracle_calls)
      end
      else (None, 0)
    in
    `Diverge
      {
        dv_seed = seed;
        dv_mismatch = mismatch;
        dv_source = src;
        dv_reduced = reduced;
        dv_oracle_calls = calls;
      }

(* Observability: campaign counters plus a trace instant every
   [progress_every] seeds, so a long campaign shows up as a heartbeat in
   the Chrome trace. *)
let progress_every = 100

let record_report (r : report) : unit =
  Metrics.add (Metrics.counter "difftest.seeds") r.rp_seeds;
  Metrics.add (Metrics.counter "difftest.agree") r.rp_agree;
  Metrics.add (Metrics.counter "difftest.rejects") r.rp_reject;
  Metrics.add
    (Metrics.counter "difftest.divergences")
    (List.length r.rp_divergences);
  if r.rp_seeds > 0 then
    Metrics.set
      (Metrics.gauge "difftest.divergence_rate")
      (float_of_int (List.length r.rp_divergences) /. float_of_int r.rp_seeds)

let run ?(features = Cgen.all_features) ?(shrink = false) ?(shrink_budget = 200)
    ?(progress = fun (_ : int) -> ()) ~(seed_start : int) ~(seeds : int) () :
    report =
  let t0 = Unix.gettimeofday () in
  let agree = ref 0 and reject = ref 0 and divs = ref [] in
  for i = 0 to seeds - 1 do
    let seed = seed_start + i in
    (match run_seed ~features ~shrink ~shrink_budget seed with
    | `Agree -> incr agree
    | `Reject _ -> incr reject
    | `Diverge d -> divs := d :: !divs);
    if (i + 1) mod progress_every = 0 || i = seeds - 1 then
      Trace.instant
        ~args:
          [
            ("done", string_of_int (i + 1));
            ("of", string_of_int seeds);
            ("divergences", string_of_int (List.length !divs));
          ]
        "difftest-progress";
    progress (i + 1)
  done;
  let r =
    {
      rp_seed_start = seed_start;
      rp_seeds = seeds;
      rp_features = Cgen.features_name features;
      rp_agree = !agree;
      rp_reject = !reject;
      rp_divergences = List.rev !divs;
      rp_elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  record_report r;
  r

(* ------------------------------------------------------------------ *)
(* Sharded campaigns (--jobs N)                                        *)
(* ------------------------------------------------------------------ *)

(** Contiguous shard [i] of [seeds] seeds split [jobs] ways: the first
    [seeds mod jobs] shards take one extra seed. *)
let shard_range ~seed_start ~seeds ~jobs i : int * int =
  let base = seeds / jobs and rem = seeds mod jobs in
  let len = base + if i < rem then 1 else 0 in
  let start = seed_start + (i * base) + min i rem in
  (start, len)

(** Fork one worker per shard and merge the per-shard reports and
    metric registries in the parent.  Each worker resets its inherited
    registry right after the fork, so [Metrics.merge] never
    double-counts the parent's pre-fork values; it ships
    [(report, Metrics.snapshot)] back over a pipe.  Tracing is per
    process, so worker trace events are dropped; the parent emits one
    merge instant with the aggregate. *)
let run_sharded ?(features = Cgen.all_features) ?(shrink = false)
    ?(shrink_budget = 200) ?(jobs = 1) ?progress ~(seed_start : int)
    ~(seeds : int) () : report =
  if jobs <= 1 || seeds <= 1 then
    run ~features ~shrink ~shrink_budget ?progress ~seed_start ~seeds ()
  else begin
    let t0 = Unix.gettimeofday () in
    let jobs = min jobs seeds in
    let children =
      List.init jobs (fun i ->
          let rd, wr = Unix.pipe () in
          match Unix.fork () with
          | 0 ->
            Unix.close rd;
            let status =
              try
                Metrics.reset ();
                let start, len = shard_range ~seed_start ~seeds ~jobs i in
                let r =
                  run ~features ~shrink ~shrink_budget ~seed_start:start
                    ~seeds:len ()
                in
                let oc = Unix.out_channel_of_descr wr in
                Marshal.to_channel oc (r, Metrics.snapshot ()) [];
                flush oc;
                0
              with _ -> 1
            in
            Unix._exit status
          | pid ->
            Unix.close wr;
            (i, pid, rd))
    in
    let shards =
      List.map
        (fun (i, pid, rd) ->
          let ic = Unix.in_channel_of_descr rd in
          let payload =
            try Some (Marshal.from_channel ic : report * Metrics.snapshot)
            with End_of_file | Failure _ -> None
          in
          close_in ic;
          let _, status = Unix.waitpid [] pid in
          match (payload, status) with
          | Some p, Unix.WEXITED 0 -> p
          | _ ->
            failwith
              (Printf.sprintf "difftest: shard %d (pid %d) died without a report"
                 i pid))
        children
    in
    List.iter (fun (_, sn) -> Metrics.merge sn) shards;
    let merged =
      List.fold_left
        (fun acc ((r : report), _) ->
          {
            acc with
            rp_agree = acc.rp_agree + r.rp_agree;
            rp_reject = acc.rp_reject + r.rp_reject;
            rp_divergences = acc.rp_divergences @ r.rp_divergences;
          })
        {
          rp_seed_start = seed_start;
          rp_seeds = seeds;
          rp_features = Cgen.features_name features;
          rp_agree = 0;
          rp_reject = 0;
          rp_divergences = [];
          rp_elapsed_s = 0.0;
        }
        shards
    in
    let merged =
      {
        merged with
        rp_divergences =
          List.sort (fun a b -> compare a.dv_seed b.dv_seed) merged.rp_divergences;
        rp_elapsed_s = Unix.gettimeofday () -. t0;
      }
    in
    (* The shard gauges merged with max; recompute the campaign-wide
       divergence rate from the merged report. *)
    if merged.rp_seeds > 0 then
      Metrics.set
        (Metrics.gauge "difftest.divergence_rate")
        (float_of_int (List.length merged.rp_divergences)
        /. float_of_int merged.rp_seeds);
    Trace.instant
      ~args:
        [
          ("jobs", string_of_int jobs);
          ("seeds", string_of_int seeds);
          ("divergences", string_of_int (List.length merged.rp_divergences));
        ]
      "difftest-sharded-merge";
    merged
  end

(* ------------------------------------------------------------------ *)
(* JSON log                                                            *)
(* ------------------------------------------------------------------ *)

let report_row (r : report) : string =
  let seeds_per_s =
    if r.rp_elapsed_s > 0.0 then float_of_int r.rp_seeds /. r.rp_elapsed_s
    else 0.0
  in
  Printf.sprintf
    "  {\"name\": \"difftest\", \"features\": \"%s\", \"seed_start\": %d, \
     \"seeds\": %d, \"agree\": %d, \"rejects\": %d, \"divergences\": %d, \
     \"elapsed_s\": %.3f, \"seeds_per_s\": %.1f%s}"
    r.rp_features r.rp_seed_start r.rp_seeds r.rp_agree r.rp_reject
    (List.length r.rp_divergences)
    r.rp_elapsed_s seeds_per_s
    (match r.rp_divergences with
    | [] -> ""
    | ds ->
      Printf.sprintf ", \"diverging_seeds\": [%s]"
        (String.concat ", "
           (List.map (fun d -> string_of_int d.dv_seed) ds)))

(** Append a row to a JSON-array log file (same shape as
    BENCH_interp.json), creating it when missing. *)
let append_row ~(file : string) (row : string) : unit =
  let existing =
    if Sys.file_exists file then begin
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    end
    else None
  in
  let content =
    match existing with
    | None -> "[\n" ^ row ^ "\n]\n"
    | Some s ->
      let trimmed = String.trim s in
      let body =
        (* Drop the closing bracket; keep prior rows. *)
        if String.length trimmed >= 1
           && trimmed.[String.length trimmed - 1] = ']'
        then String.trim (String.sub trimmed 0 (String.length trimmed - 1))
        else trimmed
      in
      if body = "[" then "[\n" ^ row ^ "\n]\n"
      else body ^ ",\n" ^ row ^ "\n]\n"
  in
  let oc = open_out_bin file in
  output_string oc content;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Regression reproducers                                              *)
(* ------------------------------------------------------------------ *)

(** [(name, source, exact expected output)].  Each program computes the
    same expression in a folded constant context *and* at runtime; with
    any folding fix reverted, the folded and reference values disagree
    and the oracle convicts the front end. *)
let regressions : (string * string * string) list =
  [
    ( "unsigned-shr-fold",
      (* (0u - 1u) >> 4 must use a *logical* shift at unsigned int:
         0xFFFFFFFF >> 4 = 0x0FFFFFFF.  The pre-fix folders shifted the
         canonical sign-extended value arithmetically, yielding -1. *)
      "enum { E = (0u - 1u) >> 4 };\n\
       static unsigned int g = (0u - 1u) >> 4;\n\
       int main(void) {\n\
      \  unsigned int x = 0u - 1u;\n\
      \  unsigned int y = x >> 4;\n\
      \  printf(\"%ld %ld %ld\\n\", (long)E, (long)g, (long)y);\n\
      \  return 0;\n\
       }\n",
      "268435455 268435455 268435455\n" );
    ( "unsigned-cmp-fold",
      (* Comparisons whose usual-arithmetic type is unsigned must
         compare zero-extended values: 0xFFFFFFFFu > 0u is 1, and
         -1 < 1u converts -1 to 0xFFFFFFFF so the result is 0.  The
         pre-fix folder used the signed polymorphic compare. *)
      "enum { GT = (0u - 1u) > 0u, LT = -1 < 1u };\n\
       int main(void) {\n\
      \  unsigned int a = 0u - 1u;\n\
      \  int m1 = -1;\n\
      \  unsigned int one = 1u;\n\
      \  int rgt = a > 0u;\n\
      \  int rlt = m1 < one;\n\
      \  printf(\"%ld %ld %ld %ld\\n\", (long)GT, (long)LT, (long)rgt, \
       (long)rlt);\n\
      \  return 0;\n\
       }\n",
      "1 0 1 0\n" );
    ( "global-init-conversion",
      (* A global initializer converts to the *declared* type before the
         image bytes are emitted: widening from a narrower unsigned type
         zero-extends.  The pre-fix folder emitted the canonical
         sign-extended value, baking 0xFFFF9373 (not 0x00009373) into
         the unsigned int — the first bug this oracle found by itself
         (seed 0 of the first campaign, shrunk to this form). *)
      "static unsigned int g = (unsigned short)0x9373ul;\n\
       static long h = 0x80000000u;\n\
       int main(void) {\n\
      \  unsigned short x = 0x9373ul;\n\
      \  unsigned int rg = x;\n\
      \  unsigned int u = 0x80000000u;\n\
      \  long rh = u;\n\
      \  printf(\"%ld %ld %ld %ld\\n\", (long)g, h, (long)rg, rh);\n\
      \  return 0;\n\
       }\n",
      "37747 2147483648 37747 2147483648\n" );
    ( "float-to-int-fold",
      (* Every float-to-int conversion — folded or executed, managed or
         native — goes through Irtype.float_to_int: truncation toward
         zero with NaN -> 0 and saturation at the integer range.  A
         folder reverting to Int64.of_float diverges from the engines on
         NaN/infinity at -O3 (where the cast folds) vs -O0 (where it
         executes). *)
      "int main(void) {\n\
      \  double zero = 0.0;\n\
      \  double big = 1e300;\n\
      \  long a = (long)(zero / zero);\n\
      \  long b = (long)(1.0 / zero);\n\
      \  long c = (long)(0.0 - (1.0 / zero));\n\
      \  long d = (long)big;\n\
      \  printf(\"%ld %ld %ld %ld\\n\", a, b, c, d);\n\
      \  return 0;\n\
       }\n",
      "0 9223372036854775807 -9223372036854775808 9223372036854775807\n" );
    ( "f32-add-rounding",
      (* Single-precision addition must round its result to binary32:
         16777216.0f + 1.0f is 16777216.0f (2^24 + 1 is not
         representable).  Pre-fix, every engine computed the sum at
         double precision and kept 16777217.0 (bits 0x4170000000000080),
         visible in the bit-exact printout.  [a] folds at -O3; [b]
         executes everywhere. *)
      "int main(void) {\n\
      \  float one = 1.0f;\n\
      \  float a = 16777216.0f + 1.0f;\n\
      \  float b = 16777216.0f + one;\n\
      \  double pa = (double)a;\n\
      \  double pb = (double)b;\n\
      \  printf(\"%lx %lx\\n\", *(unsigned long *)&pa, *(unsigned long \
       *)&pb);\n\
      \  return 0;\n\
       }\n",
      "4170000000000000 4170000000000000\n" );
    ( "f32-div-rounding",
      (* 1.0f / 3.0f rounded to binary32 widens to 0x3fd5555560000000;
         the unrounded double quotient is 0x3fd5555555555555.  Catches
         an engine (or the folder, at -O3) that skips the F32 rounding
         step on division specifically. *)
      "int main(void) {\n\
      \  float three = 3.0f;\n\
      \  float a = 1.0f / 3.0f;\n\
      \  float b = 1.0f / three;\n\
      \  double pa = (double)a;\n\
      \  double pb = (double)b;\n\
      \  printf(\"%lx %lx\\n\", *(unsigned long *)&pa, *(unsigned long \
       *)&pb);\n\
      \  return 0;\n\
       }\n",
      "3fd5555560000000 3fd5555560000000\n" );
    ( "sitofp-f32-rounding",
      (* An int-to-float conversion whose destination is binary32 must
         round: (float)16777217 is 16777216.0f.  Pre-fix, Sitofp
         produced the exact double 16777217.0 in an F32 slot — in the
         folder, the interpreter, the native emulator and the tier-2
         closure compiler alike. *)
      "int main(void) {\n\
      \  int n = 16777217;\n\
      \  float a = (float)16777217;\n\
      \  float b = (float)n;\n\
      \  double pa = (double)a;\n\
      \  double pb = (double)b;\n\
      \  printf(\"%lx %lx\\n\", *(unsigned long *)&pa, *(unsigned long \
       *)&pb);\n\
      \  return 0;\n\
       }\n",
      "4170000000000000 4170000000000000\n" );
  ]

(** Run one regression through the full oracle; the common output must
    equal the expected text exactly. *)
let check_regression ((name, src, expected) : string * string * string) :
    (unit, string) result =
  match Oracle.check ~expected src with
  | Oracle.Agree out when out = expected -> Ok ()
  | Oracle.Agree out ->
    Error (Printf.sprintf "%s: agreed on %S, expected %S" name out expected)
  | Oracle.Reject why -> Error (Printf.sprintf "%s: rejected: %s" name why)
  | Oracle.Diverge { mismatch; observations } ->
    Error
      (Printf.sprintf "%s: diverged: %s\n%s" name mismatch
         (String.concat "\n"
            (List.map
               (fun o ->
                 Printf.sprintf "  %-18s %-14s %S" o.Oracle.ob_config
                   o.Oracle.ob_key o.Oracle.ob_output)
               observations)))
