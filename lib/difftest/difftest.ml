(** Driver for the differential-testing campaign: generate a seed range,
    run each program through the oracle, optionally shrink divergent
    cases, and report machine-readable results.

    Checked-in regression programs pin the divergences this subsystem
    convicted: the front-end constant-folding bugs (logical-shift
    folding for unsigned operands, unsigned comparisons folded with
    signed compare, float-to-int casts folded with platform-dependent
    [Int64.of_float]) and the single-precision rounding bugs (F32
    add/div results and int-to-F32 conversions kept at double
    precision).  Reverting any one fix makes the corresponding
    regression fail. *)

(** Provenance signature of a divergence: the same underlying bug keeps
    convicting different seeds, so campaigns deduplicate on (error kind,
    faulting source position, which-configurations-disagree bitset)
    rather than on seeds.  [sg_kind] joins the distinct outcome keys
    observed ("detected:out-of-bounds|finished:0"); [sg_loc] is the
    managed bug report's [file:line:col] when one configuration produced
    a report (empty otherwise); [sg_configs] sets bit [i] when
    observation [i] — the order of [Oracle.configs], plus the reference
    evaluator as the final pseudo-observation — disagrees with
    observation 0. *)
type signature = {
  sg_kind : string;
  sg_loc : string;
  sg_configs : int;
}

let signature_of_observations (obs : Oracle.observation list) : signature =
  match obs with
  | [] -> { sg_kind = "?"; sg_loc = ""; sg_configs = 0 }
  | first :: _ ->
    let bits = ref 0 in
    List.iteri
      (fun i (o : Oracle.observation) ->
        if
          o.Oracle.ob_key <> first.Oracle.ob_key
          || o.Oracle.ob_output <> first.Oracle.ob_output
        then bits := !bits lor (1 lsl i))
      obs;
    let kinds =
      List.sort_uniq compare (List.map (fun o -> o.Oracle.ob_key) obs)
    in
    let loc =
      match List.filter_map (fun o -> o.Oracle.ob_loc) obs with
      | l :: _ -> l
      | [] -> ""
    in
    { sg_kind = String.concat "|" kinds; sg_loc = loc; sg_configs = !bits }

let signature_key (s : signature) : string =
  Printf.sprintf "%s @ %s # 0x%x" s.sg_kind
    (if s.sg_loc = "" then "-" else s.sg_loc)
    s.sg_configs

type divergence = {
  dv_seed : int;
  dv_mismatch : string;
  dv_sig : signature;
  dv_source : string;
  dv_reduced : string option;
  dv_oracle_calls : int;  (** oracle calls spent shrinking *)
  dv_events : string list;
      (** the engine flight recorder's ring at detection time
          ([Events.to_lines], oldest first): which tier-up / deopt /
          cache decisions preceded the divergence.  Captured before
          shrinking, which would flood the ring with reduction runs. *)
}

type report = {
  rp_seed_start : int;
  rp_seeds : int;
  rp_features : string;  (** generator feature set, e.g. "int,float" *)
  rp_agree : int;
  rp_reject : int;
  rp_divergences : divergence list;
  rp_elapsed_s : float;
}

let diverges (p : Cprog.program) : bool =
  match Oracle.check ~expected:(Cprog.expected_prefix p) (Cprog.render p) with
  | Oracle.Diverge _ -> true
  | Oracle.Agree _ | Oracle.Reject _ -> false

(** Run one seed; [shrink] spends up to [shrink_budget] extra oracle
    calls reducing a divergent program. *)
let run_seed ?(features = Cgen.all_features) ?(shrink = false)
    ?(shrink_budget = 200) (seed : int) :
    [ `Agree | `Reject of string | `Diverge of divergence ] =
  (* A fresh ring per seed keeps the recorded event trail deterministic
     (a campaign worker and an in-process rerun of the same seed attach
     identical [dv_events] to the divergence). *)
  Events.reset ();
  let p = Cgen.generate ~features ~seed () in
  let src = Cprog.render p in
  match Oracle.check ~expected:(Cprog.expected_prefix p) src with
  | Oracle.Agree _ -> `Agree
  | Oracle.Reject why -> `Reject why
  | Oracle.Diverge { mismatch; observations } ->
    let events = Events.to_lines () in
    let reduced, calls =
      if shrink then begin
        let r = Shrink.reduce ~test:diverges ~budget:shrink_budget p in
        (Some (Cprog.render r.Shrink.reduced), r.Shrink.oracle_calls)
      end
      else (None, 0)
    in
    `Diverge
      {
        dv_seed = seed;
        dv_mismatch = mismatch;
        dv_sig = signature_of_observations observations;
        dv_source = src;
        dv_reduced = reduced;
        dv_oracle_calls = calls;
        dv_events = events;
      }

(** Per-seed cost record for the campaign ledger: wall-clock spent on
    the seed (including shrinking) and the guest steps its managed
    configurations executed.  What lets a [--resume] print a
    slowest-seeds table without rerunning anything. *)
type seed_stat = {
  ss_seed : int;
  ss_elapsed_s : float;
  ss_steps : int;
}

(** [run_seed] plus its cost: wall time and the [Oracle.steps_total]
    delta (shrink replays count toward the seed that needed them). *)
let run_seed_timed ?features ?shrink ?shrink_budget (seed : int) :
    [ `Agree | `Reject of string | `Diverge of divergence ] * seed_stat =
  let t0 = Unix.gettimeofday () in
  let s0 = Oracle.steps_total () in
  let r = run_seed ?features ?shrink ?shrink_budget seed in
  ( r,
    {
      ss_seed = seed;
      ss_elapsed_s = Unix.gettimeofday () -. t0;
      ss_steps = Oracle.steps_total () - s0;
    } )

(* Observability: campaign counters plus a trace instant every
   [progress_every] seeds, so a long campaign shows up as a heartbeat in
   the Chrome trace. *)
let progress_every = 100

let record_report (r : report) : unit =
  Metrics.add (Metrics.counter "difftest.seeds") r.rp_seeds;
  Metrics.add (Metrics.counter "difftest.agree") r.rp_agree;
  Metrics.add (Metrics.counter "difftest.rejects") r.rp_reject;
  Metrics.add
    (Metrics.counter "difftest.divergences")
    (List.length r.rp_divergences);
  if r.rp_seeds > 0 then
    Metrics.set
      (Metrics.gauge "difftest.divergence_rate")
      (float_of_int (List.length r.rp_divergences) /. float_of_int r.rp_seeds)

let run ?(features = Cgen.all_features) ?(shrink = false) ?(shrink_budget = 200)
    ?(progress = fun (_ : int) -> ()) ~(seed_start : int) ~(seeds : int) () :
    report =
  let t0 = Unix.gettimeofday () in
  let agree = ref 0 and reject = ref 0 and divs = ref [] in
  for i = 0 to seeds - 1 do
    let seed = seed_start + i in
    (match run_seed ~features ~shrink ~shrink_budget seed with
    | `Agree -> incr agree
    | `Reject _ -> incr reject
    | `Diverge d -> divs := d :: !divs);
    if (i + 1) mod progress_every = 0 || i = seeds - 1 then
      Trace.instant
        ~args:
          [
            ("done", string_of_int (i + 1));
            ("of", string_of_int seeds);
            ("divergences", string_of_int (List.length !divs));
          ]
        "difftest-progress";
    progress (i + 1)
  done;
  let r =
    {
      rp_seed_start = seed_start;
      rp_seeds = seeds;
      rp_features = Cgen.features_name features;
      rp_agree = !agree;
      rp_reject = !reject;
      rp_divergences = List.rev !divs;
      rp_elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  record_report r;
  r

(* ------------------------------------------------------------------ *)
(* Sharded campaigns (--jobs N)                                        *)
(* ------------------------------------------------------------------ *)

(** Contiguous shard [i] of [seeds] seeds split [jobs] ways: the first
    [seeds mod jobs] shards take one extra seed.

    This was the unit of the original fork-per-shard driver, where one
    dead worker aborted the whole campaign and discarded every finished
    shard.  Multi-process campaigns now run through [Campaign.run],
    which hands out small chunks from a work-stealing queue, respawns
    dead workers, and requeues their in-flight chunk — [shard_range]
    remains the static split used when a caller wants one contiguous
    range per worker (and keeps its boundary tests). *)
let shard_range ~seed_start ~seeds ~jobs i : int * int =
  let base = seeds / jobs and rem = seeds mod jobs in
  let len = base + if i < rem then 1 else 0 in
  let start = seed_start + (i * base) + min i rem in
  (start, len)

(* ------------------------------------------------------------------ *)
(* JSON log                                                            *)
(* ------------------------------------------------------------------ *)

let report_row ?(jobs = 1) ?(worker_deaths = 0) (r : report) : string =
  let seeds_per_s =
    if r.rp_elapsed_s > 0.0 then float_of_int r.rp_seeds /. r.rp_elapsed_s
    else 0.0
  in
  Printf.sprintf
    "  {\"name\": \"difftest\", \"features\": \"%s\", \"seed_start\": %d, \
     \"seeds\": %d, \"agree\": %d, \"rejects\": %d, \"divergences\": %d, \
     \"elapsed_s\": %.3f, \"seeds_per_s\": %.1f%s%s}"
    r.rp_features r.rp_seed_start r.rp_seeds r.rp_agree r.rp_reject
    (List.length r.rp_divergences)
    r.rp_elapsed_s seeds_per_s
    (if jobs > 1 then
       Printf.sprintf ", \"jobs\": %d, \"worker_deaths\": %d" jobs
         worker_deaths
     else "")
    (match r.rp_divergences with
    | [] -> ""
    | ds ->
      Printf.sprintf ", \"diverging_seeds\": [%s]"
        (String.concat ", "
           (List.map (fun d -> string_of_int d.dv_seed) ds)))

(** Append a row to a JSON-array log file (same shape as
    BENCH_interp.json), creating it when missing. *)
let append_row ~(file : string) (row : string) : unit =
  let existing =
    if Sys.file_exists file then begin
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    end
    else None
  in
  let content =
    match existing with
    | None -> "[\n" ^ row ^ "\n]\n"
    | Some s ->
      let trimmed = String.trim s in
      let body =
        (* Drop the closing bracket; keep prior rows. *)
        if String.length trimmed >= 1
           && trimmed.[String.length trimmed - 1] = ']'
        then String.trim (String.sub trimmed 0 (String.length trimmed - 1))
        else trimmed
      in
      if body = "[" then "[\n" ^ row ^ "\n]\n"
      else body ^ ",\n" ^ row ^ "\n]\n"
  in
  let oc = open_out_bin file in
  output_string oc content;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Regression reproducers                                              *)
(* ------------------------------------------------------------------ *)

(** [(name, source, exact expected output)].  Each program computes the
    same expression in a folded constant context *and* at runtime; with
    any folding fix reverted, the folded and reference values disagree
    and the oracle convicts the front end. *)
let regressions : (string * string * string) list =
  [
    ( "unsigned-shr-fold",
      (* (0u - 1u) >> 4 must use a *logical* shift at unsigned int:
         0xFFFFFFFF >> 4 = 0x0FFFFFFF.  The pre-fix folders shifted the
         canonical sign-extended value arithmetically, yielding -1. *)
      "enum { E = (0u - 1u) >> 4 };\n\
       static unsigned int g = (0u - 1u) >> 4;\n\
       int main(void) {\n\
      \  unsigned int x = 0u - 1u;\n\
      \  unsigned int y = x >> 4;\n\
      \  printf(\"%ld %ld %ld\\n\", (long)E, (long)g, (long)y);\n\
      \  return 0;\n\
       }\n",
      "268435455 268435455 268435455\n" );
    ( "unsigned-cmp-fold",
      (* Comparisons whose usual-arithmetic type is unsigned must
         compare zero-extended values: 0xFFFFFFFFu > 0u is 1, and
         -1 < 1u converts -1 to 0xFFFFFFFF so the result is 0.  The
         pre-fix folder used the signed polymorphic compare. *)
      "enum { GT = (0u - 1u) > 0u, LT = -1 < 1u };\n\
       int main(void) {\n\
      \  unsigned int a = 0u - 1u;\n\
      \  int m1 = -1;\n\
      \  unsigned int one = 1u;\n\
      \  int rgt = a > 0u;\n\
      \  int rlt = m1 < one;\n\
      \  printf(\"%ld %ld %ld %ld\\n\", (long)GT, (long)LT, (long)rgt, \
       (long)rlt);\n\
      \  return 0;\n\
       }\n",
      "1 0 1 0\n" );
    ( "global-init-conversion",
      (* A global initializer converts to the *declared* type before the
         image bytes are emitted: widening from a narrower unsigned type
         zero-extends.  The pre-fix folder emitted the canonical
         sign-extended value, baking 0xFFFF9373 (not 0x00009373) into
         the unsigned int — the first bug this oracle found by itself
         (seed 0 of the first campaign, shrunk to this form). *)
      "static unsigned int g = (unsigned short)0x9373ul;\n\
       static long h = 0x80000000u;\n\
       int main(void) {\n\
      \  unsigned short x = 0x9373ul;\n\
      \  unsigned int rg = x;\n\
      \  unsigned int u = 0x80000000u;\n\
      \  long rh = u;\n\
      \  printf(\"%ld %ld %ld %ld\\n\", (long)g, h, (long)rg, rh);\n\
      \  return 0;\n\
       }\n",
      "37747 2147483648 37747 2147483648\n" );
    ( "float-to-int-fold",
      (* Every float-to-int conversion — folded or executed, managed or
         native — goes through Irtype.float_to_int: truncation toward
         zero with NaN -> 0 and saturation at the integer range.  A
         folder reverting to Int64.of_float diverges from the engines on
         NaN/infinity at -O3 (where the cast folds) vs -O0 (where it
         executes). *)
      "int main(void) {\n\
      \  double zero = 0.0;\n\
      \  double big = 1e300;\n\
      \  long a = (long)(zero / zero);\n\
      \  long b = (long)(1.0 / zero);\n\
      \  long c = (long)(0.0 - (1.0 / zero));\n\
      \  long d = (long)big;\n\
      \  printf(\"%ld %ld %ld %ld\\n\", a, b, c, d);\n\
      \  return 0;\n\
       }\n",
      "0 9223372036854775807 -9223372036854775808 9223372036854775807\n" );
    ( "f32-add-rounding",
      (* Single-precision addition must round its result to binary32:
         16777216.0f + 1.0f is 16777216.0f (2^24 + 1 is not
         representable).  Pre-fix, every engine computed the sum at
         double precision and kept 16777217.0 (bits 0x4170000000000080),
         visible in the bit-exact printout.  [a] folds at -O3; [b]
         executes everywhere. *)
      "int main(void) {\n\
      \  float one = 1.0f;\n\
      \  float a = 16777216.0f + 1.0f;\n\
      \  float b = 16777216.0f + one;\n\
      \  double pa = (double)a;\n\
      \  double pb = (double)b;\n\
      \  printf(\"%lx %lx\\n\", *(unsigned long *)&pa, *(unsigned long \
       *)&pb);\n\
      \  return 0;\n\
       }\n",
      "4170000000000000 4170000000000000\n" );
    ( "f32-div-rounding",
      (* 1.0f / 3.0f rounded to binary32 widens to 0x3fd5555560000000;
         the unrounded double quotient is 0x3fd5555555555555.  Catches
         an engine (or the folder, at -O3) that skips the F32 rounding
         step on division specifically. *)
      "int main(void) {\n\
      \  float three = 3.0f;\n\
      \  float a = 1.0f / 3.0f;\n\
      \  float b = 1.0f / three;\n\
      \  double pa = (double)a;\n\
      \  double pb = (double)b;\n\
      \  printf(\"%lx %lx\\n\", *(unsigned long *)&pa, *(unsigned long \
       *)&pb);\n\
      \  return 0;\n\
       }\n",
      "3fd5555560000000 3fd5555560000000\n" );
    ( "sitofp-f32-rounding",
      (* An int-to-float conversion whose destination is binary32 must
         round: (float)16777217 is 16777216.0f.  Pre-fix, Sitofp
         produced the exact double 16777217.0 in an F32 slot — in the
         folder, the interpreter, the native emulator and the tier-2
         closure compiler alike. *)
      "int main(void) {\n\
      \  int n = 16777217;\n\
      \  float a = (float)16777217;\n\
      \  float b = (float)n;\n\
      \  double pa = (double)a;\n\
      \  double pb = (double)b;\n\
      \  printf(\"%lx %lx\\n\", *(unsigned long *)&pa, *(unsigned long \
       *)&pb);\n\
      \  return 0;\n\
       }\n",
      "4170000000000000 4170000000000000\n" );
    ( "mem2reg-late-phi-operand",
      (* Two-round promotion: round 1 promotes the pointer alloca [p0],
         turning [*p0] into direct loads of [v0]'s alloca; round 2
         promotes [v0] itself.  A phi's incoming operand names a value
         from its *predecessor*, a block the renaming walk's pre-order
         dominator-tree traversal may visit after the phi's own block —
         pre-fix, the walk rewrote the phi before the predecessor's
         load had a substitution, then deleted the load, leaving the
         safe-jit and -O3 pipelines with IR that fails verification
         ("phi uses undefined register").  Found by the first ptr
         campaign (seeds 411 and 479), shrunk to this form. *)
      "static short g0 = 0;\n\
       static unsigned short g1 = 1;\n\
       int main(void) {\n\
      \  unsigned int v0 = 7;\n\
      \  unsigned int *p0 = &v0;\n\
      \  g1 = ((*p0) && g0);\n\
      \  int r = (g0 ? 1 : (*p0));\n\
      \  printf(\"g1_end=%ld\\n\", (long)g1);\n\
      \  printf(\"r=%ld\\n\", (long)r);\n\
      \  return 0;\n\
       }\n",
      "g1_end=0\nr=7\n" );
  ]

(** Run one regression through the full oracle; the common output must
    equal the expected text exactly. *)
let check_regression ((name, src, expected) : string * string * string) :
    (unit, string) result =
  match Oracle.check ~expected src with
  | Oracle.Agree out when out = expected -> Ok ()
  | Oracle.Agree out ->
    Error (Printf.sprintf "%s: agreed on %S, expected %S" name out expected)
  | Oracle.Reject why -> Error (Printf.sprintf "%s: rejected: %s" name why)
  | Oracle.Diverge { mismatch; observations } ->
    Error
      (Printf.sprintf "%s: diverged: %s\n%s" name mismatch
         (String.concat "\n"
            (List.map
               (fun o ->
                 Printf.sprintf "  %-18s %-14s %S" o.Oracle.ob_config
                   o.Oracle.ob_key o.Oracle.ob_output)
               observations)))

(** On-disk regressions corpus, as written by `sulong bugdb export`:
    [<name>.c] next to [<name>.expected], both read whole.  Entries are
    the same [(name, source, expected)] triples as [regressions], so
    [check_regression] runs them unchanged.  A missing directory is an
    empty corpus; a [.c] without its [.expected] is an error (a corpus
    that silently skips members would pass vacuously). *)
let load_corpus ~(dir : string) : (string * string * string) list =
  if not (Sys.file_exists dir) then []
  else
    let read file =
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".c" then begin
             let name = Filename.chop_suffix f ".c" in
             let expected_file = Filename.concat dir (name ^ ".expected") in
             if not (Sys.file_exists expected_file) then
               invalid_arg
                 (Printf.sprintf "corpus %s: %s has no %s.expected" dir f name);
             Some (name, read (Filename.concat dir f), read expected_file)
           end
           else None)
