(** Framed, checksummed messages over pipes for the campaign driver.

    The old sharded path shipped bare [Marshal.from_channel] payloads: a
    worker dying mid-write left the parent blocked on (or crashing in)
    an unframed, half-written value.  Here every message is a frame

      4 bytes magic | 4 bytes payload length | 8 bytes FNV-1a checksum
      | payload (Marshal bytes)

    so the parent can always tell a complete message from a truncated or
    corrupted one and treat anything else as a worker death.  All
    lengths are little-endian via [Bytes.set_*]. *)

let magic = 0x53554C47l (* "SULG" *)

(** Frames above this are certainly garbage (a campaign message is a
    chunk of seed results, a few KB with sources attached). *)
let max_payload = 64 * 1024 * 1024

let fnv1a64 (b : Bytes.t) : int64 =
  let h = ref 0xCBF29CE484222325L in
  for i = 0 to Bytes.length b - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h 0x100000001B3L
  done;
  !h

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

(** [None] on clean EOF before the first byte; [Some false] on EOF
    mid-buffer (a truncated frame); [Some true] when [len] bytes were
    read. *)
let read_all fd b off len : bool option =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match Unix.read fd b (off + !got) (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  if !got = 0 && len > 0 then None else Some (!got = len)

type error = [ `Eof | `Corrupt of string ]

let send (fd : Unix.file_descr) (v : 'a) : unit =
  let payload = Marshal.to_bytes v [] in
  let len = Bytes.length payload in
  let header = Bytes.create 16 in
  Bytes.set_int32_le header 0 magic;
  Bytes.set_int32_le header 4 (Int32.of_int len);
  Bytes.set_int64_le header 8 (fnv1a64 payload);
  write_all fd header 0 16;
  write_all fd payload 0 len

let recv (fd : Unix.file_descr) : ('a, error) result =
  let header = Bytes.create 16 in
  match read_all fd header 0 16 with
  | None -> Error `Eof
  | Some false -> Error (`Corrupt "truncated header")
  | Some true ->
    if Bytes.get_int32_le header 0 <> magic then
      Error (`Corrupt "bad magic")
    else begin
      let len = Int32.to_int (Bytes.get_int32_le header 4) in
      if len < 0 || len > max_payload then
        Error (`Corrupt (Printf.sprintf "implausible length %d" len))
      else begin
        let payload = Bytes.create len in
        match read_all fd payload 0 len with
        | (None | Some false) when len > 0 ->
          Error (`Corrupt "truncated payload")
        | _ ->
          let sum = fnv1a64 payload in
          if sum <> Bytes.get_int64_le header 8 then
            Error (`Corrupt "checksum mismatch")
          else
            Ok (Marshal.from_bytes payload 0)
      end
    end
