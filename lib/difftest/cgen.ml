(** Seed-driven generator of well-defined differential-test programs.

    All randomness flows through [Support.Prng] (SplitMix64), so a seed
    reproduces the same program bit-for-bit on every run — divergence
    reports are replayable by seed alone.

    The generator establishes, by construction, every invariant that
    [Cprog.well_formed] checks: divisors are [x | odd] or nonzero
    constants, shift counts are constants below the promoted width of
    the left operand, array indices are constants below the length or
    loop variables whose bound is, and enum values fit in [int]. *)

open Cprog

(* Biased toward the 32/64-bit types where the interesting conversion
   and signedness behaviour lives, but all widths appear. *)
let pick_ity rng : ity =
  match Prng.int rng 12 with
  | 0 -> I8
  | 1 -> U8
  | 2 -> I16
  | 3 -> U16
  | 4 | 5 -> I32
  | 6 | 7 -> U32
  | 8 | 9 -> I64
  | _ -> U64

(** Boundary-heavy constants: zero/one, small, all-ones, sign bit, max
    positive, alternating bits, and uniform noise. *)
let interesting rng (t : ity) : int64 =
  let b = bits t in
  let v =
    match Prng.int rng 9 with
    | 0 -> 0L
    | 1 -> 1L
    | 2 | 3 -> Int64.of_int (Prng.int rng 100)
    | 4 -> -1L
    | 5 -> Int64.shift_left 1L (b - 1)
    | 6 -> Int64.sub (Int64.shift_left 1L (b - 1)) 1L
    | 7 -> 0x5555555555555555L
    | _ -> Prng.next_int64 rng
  in
  normalize t v

let gen_const rng = let t = pick_ity rng in Const (interesting rng t, t)

let odd_const rng =
  let t = pick_ity rng in
  Const (normalize t (Int64.of_int ((2 * Prng.int rng 64) + 1)), t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(** Leaves legal in the current context. *)
type leaves = {
  lv_enums : string list;
  lv_scalars : (string * ity) list;  (** locals, globals, loop vars *)
  lv_arrays : (string * ity * int) list;
  lv_fields : (string * ity) list;
  lv_loops : (string * int) list;  (** in-scope loop vars with bounds *)
}

let const_leaves enums =
  { lv_enums = enums; lv_scalars = []; lv_arrays = []; lv_fields = [];
    lv_loops = [] }

let gen_leaf rng (lv : leaves) : expr =
  let options =
    [ `Const; `Const ]
    @ (if lv.lv_enums <> [] then [ `Enum ] else [])
    @ (if lv.lv_scalars <> [] then [ `Scalar; `Scalar; `Scalar ] else [])
    @ (if lv.lv_arrays <> [] then [ `Read ] else [])
    @ (if lv.lv_fields <> [] then [ `Field ] else [])
  in
  match Prng.pick rng options with
  | `Const -> gen_const rng
  | `Enum -> EnumRef (Prng.pick rng lv.lv_enums)
  | `Scalar ->
    let n, t = Prng.pick rng lv.lv_scalars in
    Var (n, t)
  | `Read ->
    let a, t, len = Prng.pick rng lv.lv_arrays in
    let usable =
      List.filter (fun (_, bound) -> bound <= len) lv.lv_loops
    in
    let ix =
      if usable <> [] && Prng.int rng 2 = 0 then
        Ixv (fst (Prng.pick rng usable))
      else Ixc (Prng.int rng len)
    in
    Read (a, t, ix)
  | `Field ->
    let f, t = Prng.pick rng lv.lv_fields in
    Field (f, t)

(** [gen_expr rng ~mode ~lv ~depth] — [mode] matches the constant-context
    operator subsets of [Cprog.well_formed]. *)
let rec gen_expr rng ~(mode : [ `Full | `Restricted ]) ~(lv : leaves)
    ~(depth : int) : expr =
  if depth <= 0 || Prng.int rng 4 = 0 then gen_leaf rng lv
  else begin
    let sub () = gen_expr rng ~mode ~lv ~depth:(depth - 1) in
    let arith = [ `Bop Add; `Bop Sub; `Bop Mul; `Bop BAnd; `Bop BOr; `Bop BXor ] in
    let common =
      arith @ [ `DivLike Div; `DivLike Rem; `Shift Shl; `Shift Shr;
                `Neg; `Cast; `Cast ]
    in
    let full_only =
      [ `Bop Lt; `Bop Le; `Bop Gt; `Bop Ge; `Bop Eq; `Bop Ne;
        `Bop LAnd; `Bop LOr; `Bnot; `Lnot; `Ternary ]
    in
    let ops = match mode with `Full -> common @ full_only | `Restricted -> common in
    match Prng.pick rng ops with
    | `Bop op -> Bin (op, sub (), sub ())
    | `DivLike op ->
      (* Guard: [x | odd] is nonzero at every width. *)
      Bin (op, sub (), Bin (BOr, sub (), odd_const rng))
    | `Shift op ->
      let a = sub () in
      let w = bits (promote (type_of a)) in
      Bin (op, a, Const (Int64.of_int (Prng.int rng w), I32))
    | `Neg -> Un (Neg, sub ())
    | `Bnot -> Un (Bnot, sub ())
    | `Lnot -> Un (Lnot, sub ())
    | `Cast -> Cast (pick_ity rng, sub ())
    | `Ternary -> Cond (sub (), sub (), sub ())
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type genstate = { mutable next_loop : int }

let rec gen_stmt rng st ~(lv : leaves) ~(assignable : (string * ity) list)
    ~(depth : int) : stmt =
  let rexpr ?(depth = 3) () = gen_expr rng ~mode:`Full ~lv ~depth in
  let structured = depth > 0 in
  let options =
    [ `Assign; `Assign; `Assign ]
    @ (if lv.lv_arrays <> [] then [ `AStore ] else [])
    @ (if lv.lv_fields <> [] then [ `FStore ] else [])
    @ (if structured then [ `If; `Loop; `Switch ] else [])
  in
  match Prng.pick rng options with
  | `Assign ->
    (* [assignable] holds scalar locals *and* globals (loop variables are
       deliberately absent: their bounds guarantee in-bounds indexing). *)
    let n, _ = Prng.pick rng assignable in
    Assign (n, rexpr ())
  | `AStore ->
    let a, _, len = Prng.pick rng lv.lv_arrays in
    let usable = List.filter (fun (_, b) -> b <= len) lv.lv_loops in
    let ix =
      if usable <> [] && Prng.int rng 2 = 0 then
        Ixv (fst (Prng.pick rng usable))
      else Ixc (Prng.int rng len)
    in
    AStore (a, ix, rexpr ())
  | `FStore ->
    let f, _ = Prng.pick rng lv.lv_fields in
    FStore (f, rexpr ())
  | `If ->
    let nthen = 1 + Prng.int rng 2 and nelse = Prng.int rng 2 in
    If
      ( rexpr ~depth:2 (),
        gen_stmts rng st ~lv ~assignable ~depth:(depth - 1) ~n:nthen,
        gen_stmts rng st ~lv ~assignable ~depth:(depth - 1) ~n:nelse )
  | `Loop ->
    let v = Printf.sprintf "i%d" st.next_loop in
    st.next_loop <- st.next_loop + 1;
    let bound = 1 + Prng.int rng 8 in
    let lv' =
      { lv with
        lv_loops = (v, bound) :: lv.lv_loops;
        lv_scalars = (v, I64) :: lv.lv_scalars }
    in
    Loop
      ( v, bound,
        gen_stmts rng st ~lv:lv' ~assignable ~depth:(depth - 1)
          ~n:(1 + Prng.int rng 2) )
  | `Switch ->
    let nlabels = 2 + Prng.int rng 2 in
    let labels =
      List.sort_uniq compare (List.init nlabels (fun _ -> Prng.int rng 8))
    in
    Switch
      ( rexpr ~depth:2 (),
        List.map
          (fun k ->
            (k, gen_stmts rng st ~lv ~assignable ~depth:(depth - 1) ~n:1))
          labels,
        gen_stmts rng st ~lv ~assignable ~depth:(depth - 1) ~n:1 )

and gen_stmts rng st ~lv ~assignable ~depth ~n =
  List.init n (fun _ -> gen_stmt rng st ~lv ~assignable ~depth)

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let generate ~(seed : int) : program =
  let rng = Prng.create seed in
  (* Enum constants: retry until the value fits in [int] (C gives enum
     constants type [int]; out-of-range values would be truncated
     differently by different folders — the very ambiguity we exclude
     from *well-defined* inputs). *)
  let n_enums = 1 + Prng.int rng 3 in
  let enums = ref [] and env = ref [] in
  for i = 0 to n_enums - 1 do
    let name = Printf.sprintf "E%d" i in
    let fallback () =
      let v = Int64.of_int (Prng.int rng 1000) in
      (Const (v, I32), v)
    in
    let rec try_gen attempts =
      let e =
        gen_expr rng ~mode:`Full
          ~lv:(const_leaves (List.map fst !enums))
          ~depth:(1 + Prng.int rng 3)
      in
      match as_long (type_of e) (eval !env e) with
      | v when v >= -2147483648L && v <= 2147483647L -> (e, v)
      | _ -> if attempts > 0 then try_gen (attempts - 1) else fallback ()
      | exception Not_const ->
        if attempts > 0 then try_gen (attempts - 1) else fallback ()
    in
    let e, v = try_gen 10 in
    enums := !enums @ [ (name, e) ];
    env := (name, normalize I32 v) :: !env
  done;
  let enums = !enums in
  let enum_names = List.map fst enums in
  (* Globals: restricted constant initializers. *)
  let n_globals = 1 + Prng.int rng 3 in
  let globals =
    List.init n_globals (fun i ->
        ( Printf.sprintf "g%d" i,
          pick_ity rng,
          gen_expr rng ~mode:`Restricted ~lv:(const_leaves enum_names)
            ~depth:(1 + Prng.int rng 3) ))
  in
  (* Struct fields (possibly none) with constant initial stores. *)
  let fields =
    if Prng.int rng 3 = 0 then []
    else
      List.init
        (2 + Prng.int rng 2)
        (fun i ->
          let t = pick_ity rng in
          (Printf.sprintf "f%d" i, t, interesting rng t))
  in
  (* Arrays, zero-initialized. *)
  let arrays =
    List.init (Prng.int rng 3) (fun i ->
        (Printf.sprintf "a%d" i, pick_ity rng, 2 + Prng.int rng 7))
  in
  (* Recomputed constant expressions: the oracle checks the engines'
     runtime result of these against the reference evaluator, and (via
     the enum/global sections) the front end's folded result of the same
     expression class. *)
  let rcs =
    List.init
      (2 + Prng.int rng 3)
      (fun i ->
        ( Printf.sprintf "rc%d" i,
          gen_expr rng ~mode:`Full ~lv:(const_leaves enum_names)
            ~depth:(2 + Prng.int rng 3) ))
  in
  (* Scalar locals; initializers may read anything already declared. *)
  let n_locals = 3 + Prng.int rng 4 in
  let locals = ref [] in
  let base_lv declared =
    { lv_enums = enum_names;
      lv_scalars = List.map (fun (n, t, _) -> (n, t)) globals @ declared;
      lv_arrays = arrays;
      lv_fields = List.map (fun (f, t, _) -> (f, t)) fields;
      lv_loops = [] }
  in
  for i = 0 to n_locals - 1 do
    let declared = List.map (fun (n, t, _) -> (n, t)) !locals in
    let t = pick_ity rng in
    locals :=
      !locals
      @ [ ( Printf.sprintf "v%d" i,
            t,
            gen_expr rng ~mode:`Full ~lv:(base_lv declared) ~depth:3 ) ]
  done;
  let locals = !locals in
  let local_tys = List.map (fun (n, t, _) -> (n, t)) locals in
  let st = { next_loop = 0 } in
  (* The body may store to globals as well as locals: the rendering
     snapshots the reference-predicted initial values before the body. *)
  let body =
    gen_stmts rng st
      ~lv:(base_lv local_tys)
      ~assignable:(List.map (fun (n, t, _) -> (n, t)) globals @ local_tys)
      ~depth:2
      ~n:(3 + Prng.int rng 6)
  in
  { seed; enums; globals; fields; arrays; rcs; locals; body }
