(** Seed-driven generator of well-defined differential-test programs.

    All randomness flows through [Support.Prng] (SplitMix64), so a seed
    reproduces the same program bit-for-bit on every run — divergence
    reports are replayable by seed alone.

    The generator establishes, by construction, every invariant that
    [Cprog.well_formed] checks: divisors of integer divisions are
    [x | odd] or nonzero constants, shift counts are constants below the
    promoted width of the left operand, array indices are constants
    below the length or loop variables whose bound is, enum values fit
    in [int], float constants are finite/pre-rounded/non-negative-zero,
    helper functions call only earlier-defined helpers, and writes to
    char arrays never touch the final element (so [strlen] stays in
    bounds).

    Generation is *want-directed*: every expression is grown toward a
    requested domain ([`I] integer or [`F] floating), which keeps the
    guard obligations decidable locally — an integer division's operands
    are integer by construction, so the [x | odd] divisor guard is never
    silently washed out by a float conversion. *)

open Cprog

(* ------------------------------------------------------------------ *)
(* Feature flags                                                       *)
(* ------------------------------------------------------------------ *)

(** What the generated programs may contain beyond integer arithmetic.
    [int] is the always-on base; the flags below gate the extensions so
    a divergence campaign can bisect by language area. *)
type features = {
  f_float : bool;  (** float/double scalars, arithmetic, conversions *)
  f_call : bool;   (** generated helper functions and direct calls *)
  f_mem : bool;    (** memcpy/memset/strlen over generated arrays *)
  f_ptr : bool;
      (** address-of, in-bounds pointer arithmetic, aliased loads and
          stores, pointer-typed helper parameters, pointer comparisons —
          plus helpers/rcs reading globals (the reference evaluator
          models their initial values) *)
}

let int_only = { f_float = false; f_call = false; f_mem = false; f_ptr = false }
let all_features = { f_float = true; f_call = true; f_mem = true; f_ptr = true }

let features_name f =
  "int"
  ^ (if f.f_float then ",float" else "")
  ^ (if f.f_call then ",call" else "")
  ^ (if f.f_mem then ",mem" else "")
  ^ if f.f_ptr then ",ptr" else ""

(** Parse a [--features] flag value: a comma-separated subset of
    [int,float,call,mem,ptr] ([int] is implied). *)
let features_of_string (s : string) : features =
  List.fold_left
    (fun acc tok ->
      match String.trim tok with
      | "" | "int" -> acc
      | "float" -> { acc with f_float = true }
      | "call" -> { acc with f_call = true }
      | "mem" -> { acc with f_mem = true }
      | "ptr" -> { acc with f_ptr = true }
      | "all" -> all_features
      | t ->
        invalid_arg
          (Printf.sprintf "unknown feature %S (want int,float,call,mem,ptr)" t))
    int_only
    (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Scalars and constants                                               *)
(* ------------------------------------------------------------------ *)

(* Biased toward the 32/64-bit types where the interesting conversion
   and signedness behaviour lives, but all widths appear. *)
let pick_ity rng : ity =
  match Prng.int rng 12 with
  | 0 -> I8
  | 1 -> U8
  | 2 -> I16
  | 3 -> U16
  | 4 | 5 -> I32
  | 6 | 7 -> U32
  | 8 | 9 -> I64
  | _ -> U64

let pick_fty rng : fty = if Prng.int rng 2 = 0 then F32 else F64

(** Boundary-heavy constants: zero/one, small, all-ones, sign bit, max
    positive, alternating bits, and uniform noise. *)
let interesting rng (t : ity) : int64 =
  let b = bits t in
  let v =
    match Prng.int rng 9 with
    | 0 -> 0L
    | 1 -> 1L
    | 2 | 3 -> Int64.of_int (Prng.int rng 100)
    | 4 -> -1L
    | 5 -> Int64.shift_left 1L (b - 1)
    | 6 -> Int64.sub (Int64.shift_left 1L (b - 1)) 1L
    | 7 -> 0x5555555555555555L
    | _ -> Prng.next_int64 rng
  in
  normalize t v

let gen_const rng = let t = pick_ity rng in Const (interesting rng t, t)

let odd_const rng =
  let t = pick_ity rng in
  Const (normalize t (Int64.of_int ((2 * Prng.int rng 64) + 1)), t)

(** Boundary-heavy float constants: exact small values, values at the
    binary32 integer-precision cliff (2^24), magnitudes that overflow or
    round when narrowed to [float], and uniform bit noise — retried
    through [fconst_ok] (finite, not -0.0, pre-rounded for F32). *)
let interesting_float rng (ft : fty) : float =
  let pick () =
    match Prng.int rng 13 with
    | 0 -> 0.0
    | 1 -> 1.0
    | 2 -> -1.0
    | 3 -> 0.5
    | 4 -> 1.5
    | 5 -> 0.1
    | 6 -> 16777216.0 (* 2^24 *)
    | 7 -> 16777217.0 (* rounds to 2^24 as a float *)
    | 8 -> 1e30
    | 9 -> 1e-30
    | 10 -> 3.4028234663852886e38 (* FLT_MAX *)
    | 11 -> float_of_int (Prng.int rng 1000) /. 8.0
    | _ -> Int64.float_of_bits (Prng.next_int64 rng)
  in
  let rec go attempts =
    let f = round_f ft (pick ()) in
    if fconst_ok f ft then f
    else if attempts > 0 then go (attempts - 1)
    else 1.0
  in
  go 10

let gen_fconst rng =
  let ft = pick_fty rng in
  FConst (interesting_float rng ft, ft)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(** What the generator knows about an in-scope pointer — the same
    static resolution [well_formed] recomputes, carried forward so every
    deref/store index can be drawn from the provably-in-bounds range. *)
type pinfo = {
  pi_name : string;
  pi_ty : ity;  (** element type *)
  pi_obj : string;
      (** referent object name; [""] for a helper's pointer parameter
          (no static referent: deref-only, never relational) *)
  pi_off : int;  (** static element offset inside the referent *)
  pi_ext : int;  (** referent extent in elements (1 for scalars) *)
  pi_char_guard : bool;
      (** referent is a char array: writes spare the final element so
          its NUL survives for [strlen] (mirrors [gen_index]) *)
}

(** Leaves legal in the current context. *)
type leaves = {
  lv_enums : string list;
  lv_scalars : (string * sty) list;  (** locals, globals, params, loop vars *)
  lv_arrays : (string * ity * int) list;
  lv_fields : (string * ity) list;
  lv_loops : (string * int) list;  (** in-scope loop vars with bounds *)
  lv_funcs : func list;            (** callable helpers *)
  lv_strlen : string list;         (** char arrays usable with strlen *)
  lv_ptrs : pinfo list;            (** in-scope pointers *)
}

let const_leaves enums =
  { lv_enums = enums; lv_scalars = []; lv_arrays = []; lv_fields = [];
    lv_loops = []; lv_funcs = []; lv_strlen = []; lv_ptrs = [] }

(** Expression contexts, matching the validity modes of
    [Cprog.well_formed]: the two constant modes are integer-only and
    call-free; [`Pure] adds floats and helper calls but stays state-free
    (the leaves record carries no variables there); [`Runtime] and
    [`Func] are distinguished only by what the caller puts in [lv]. *)
type gmode = [ `Full | `Restricted | `Pure | `Runtime | `Func ]

let is_char = function I8 | U8 -> true | _ -> false

(* Index into array [a] of length [len]: a constant below the writable
   limit, or an in-scope loop variable whose bound is.  [for_write] on a
   char array additionally spares the final element, preserving its NUL
   for strlen. *)
let gen_index rng (lv : leaves) ~(for_write : bool) (t : ity) (len : int) : idx
    =
  let limit = if for_write && is_char t then len - 1 else len in
  let limit = max limit 1 in
  let usable = List.filter (fun (_, b) -> b <= limit) lv.lv_loops in
  if usable <> [] && Prng.int rng 2 = 0 then Ixv (fst (Prng.pick rng usable))
  else Ixc (Prng.int rng limit)

(* Index for an access through pointer [pi]: drawn from the range its
   static (offset, extent) proves in bounds.  A helper's pointer
   parameter has no static referent, so only [*p] is safe there. *)
let gen_ptr_index rng (lv : leaves) ~(for_write : bool) (pi : pinfo) : idx =
  if pi.pi_obj = "" then Ixc 0
  else begin
    let ext =
      if for_write && pi.pi_char_guard then pi.pi_ext - 1 else pi.pi_ext
    in
    let limit = max 1 (ext - pi.pi_off) in
    let usable = List.filter (fun (_, b) -> b <= limit) lv.lv_loops in
    if usable <> [] && Prng.int rng 2 = 0 then Ixv (fst (Prng.pick rng usable))
    else Ixc (Prng.int rng limit)
  end

let rec gen_expr rng ~(feat : features) ~(mode : gmode) ~(lv : leaves)
    ~(depth : int) ~(want : [ `I | `F ]) : expr =
  let float_ok =
    feat.f_float && (match mode with `Full | `Restricted -> false | _ -> true)
  in
  let cmp_ok = match mode with `Restricted -> false | _ -> true in
  let want = if want = `F && not float_ok then `I else want in
  let sub ?(d = depth - 1) w = gen_expr rng ~feat ~mode ~lv ~depth:d ~want:w in
  (* A helper is callable here only if every pointer parameter can be
     fed an in-scope pointer of the exact element type (arguments to
     pointer parameters are bare names, never synthesized). *)
  let ptr_args_available f =
    List.for_all
      (fun (_, ps) ->
        match ps with
        | Pt t -> List.exists (fun pi -> pi.pi_ty = t) lv.lv_ptrs
        | It _ | Ft _ -> true)
      f.fn_params
  in
  let int_funcs =
    List.filter
      (fun f ->
        (match f.fn_ret with It _ -> true | Ft _ | Pt _ -> false)
        && ptr_args_available f)
      lv.lv_funcs
  in
  let flt_funcs =
    List.filter
      (fun f ->
        (match f.fn_ret with Ft _ -> true | It _ | Pt _ -> false)
        && ptr_args_available f)
      lv.lv_funcs
  in
  let gen_call f =
    Call
      ( f.fn_name, f.fn_ret,
        List.map
          (fun (_, ps) ->
            match ps with
            | Pt t ->
              let cands = List.filter (fun pi -> pi.pi_ty = t) lv.lv_ptrs in
              let pi = Prng.pick rng cands in
              Var (pi.pi_name, Pt t)
            | Ft _ ->
              sub ~d:(min (depth - 1) 2)
                (if Prng.int rng 3 = 0 then `I else `F)
            | It _ -> sub ~d:(min (depth - 1) 2) `I)
          f.fn_params )
  in
  let leaf () =
    match want with
    | `F -> begin
      let fvars =
        List.filter (fun (_, s) -> match s with Ft _ -> true | _ -> false)
          lv.lv_scalars
      in
      if fvars <> [] && Prng.int rng 2 = 0 then
        let n, s = Prng.pick rng fvars in
        Var (n, s)
      else gen_fconst rng
    end
    | `I -> begin
      let ivars =
        List.filter (fun (_, s) -> match s with It _ -> true | _ -> false)
          lv.lv_scalars
      in
      let options =
        [ `Const; `Const ]
        @ (if lv.lv_enums <> [] then [ `Enum ] else [])
        @ (if ivars <> [] then [ `Scalar; `Scalar; `Scalar ] else [])
        @ (if lv.lv_arrays <> [] then [ `Read ] else [])
        @ (if lv.lv_fields <> [] then [ `Field ] else [])
        @ (if feat.f_mem && lv.lv_strlen <> [] then [ `StrlenL ] else [])
        @ if lv.lv_ptrs <> [] then [ `PReadL; `PReadL; `PCmpL ] else []
      in
      match Prng.pick rng options with
      | `Const -> gen_const rng
      | `Enum -> EnumRef (Prng.pick rng lv.lv_enums)
      | `Scalar ->
        let n, s = Prng.pick rng ivars in
        Var (n, s)
      | `Read ->
        let a, t, len = Prng.pick rng lv.lv_arrays in
        Read (a, t, gen_index rng lv ~for_write:false t len)
      | `Field ->
        let f, t = Prng.pick rng lv.lv_fields in
        Field (f, t)
      | `StrlenL -> Strlen (Prng.pick rng lv.lv_strlen)
      | `PReadL ->
        let pi = Prng.pick rng lv.lv_ptrs in
        PRead (pi.pi_name, pi.pi_ty, gen_ptr_index rng lv ~for_write:false pi)
      | `PCmpL ->
        (* Eq/Ne is defined between any two same-element-type pointers;
           relational comparison and subtraction need one object — only
           pointers with a (matching) static referent qualify. *)
        let a = Prng.pick rng lv.lv_ptrs in
        let same_ty = List.filter (fun b -> b.pi_ty = a.pi_ty) lv.lv_ptrs in
        let b = Prng.pick rng same_ty in
        let same_obj = a.pi_obj <> "" && a.pi_obj = b.pi_obj in
        if same_obj && Prng.int rng 3 = 0 then PDiff (a.pi_name, b.pi_name)
        else
          let ops =
            if same_obj then [ Eq; Ne; Lt; Le; Gt; Ge ] else [ Eq; Ne ]
          in
          PCmp (Prng.pick rng ops, a.pi_name, b.pi_name)
    end
  in
  if depth <= 0 || Prng.int rng 4 = 0 then leaf ()
  else begin
    match want with
    | `F ->
      let ops =
        [ `FBop Add; `FBop Sub; `FBop Mul; `FBop Div; `FNeg; `FCast; `FCond ]
        @ (if feat.f_call && flt_funcs <> [] then [ `FCall; `FCall ] else [])
        @ [ `FLeaf ]
      in
      begin
        match Prng.pick rng ops with
        | `FBop op ->
          (* One operand may be an integer: the usual conversions pull
             it to the float domain, exercising int-to-float at runtime
             vs. fold time. *)
          let b = if Prng.int rng 4 = 0 then sub `I else sub `F in
          Bin (op, sub `F, b)
        | `FNeg -> Un (Neg, sub `F)
        | `FCast -> Cast (Ft (pick_fty rng), sub (if Prng.int rng 3 = 0 then `I else `F))
        | `FCond -> Cond (sub ~d:(min (depth - 1) 2) `I, sub `F, sub `F)
        | `FCall -> gen_call (Prng.pick rng flt_funcs)
        | `FLeaf -> leaf ()
      end
    | `I ->
      let arith =
        [ `Bop Add; `Bop Sub; `Bop Mul; `Bop BAnd; `Bop BOr; `Bop BXor ]
      in
      let common =
        arith
        @ [ `DivLike Div; `DivLike Rem; `Shift Shl; `Shift Shr;
            `Neg; `Cast; `Cast ]
      in
      let cmp_only =
        [ `Bop Lt; `Bop Le; `Bop Gt; `Bop Ge; `Bop Eq; `Bop Ne;
          `Bop LAnd; `Bop LOr; `Bnot; `Lnot; `Ternary ]
      in
      let float_in =
        if float_ok then [ `FCmp; `FCmp; `F2I ] else []
      in
      let calls =
        if feat.f_call && int_funcs <> [] then [ `ICall; `ICall ] else []
      in
      let ops =
        common @ (if cmp_ok then cmp_only @ float_in else []) @ calls
      in
      begin
        match Prng.pick rng ops with
        | `Bop op -> Bin (op, sub `I, sub `I)
        | `DivLike op ->
          (* Guard: [x | odd] is nonzero at every width. *)
          Bin (op, sub `I, Bin (BOr, sub `I, odd_const rng))
        | `Shift op ->
          let a = sub `I in
          let w =
            match type_of a with
            | It t -> bits (promote t)
            | Ft _ | Pt _ -> 32
          in
          Bin (op, a, Const (Int64.of_int (Prng.int rng w), I32))
        | `Neg -> Un (Neg, sub `I)
        | `Bnot -> Un (Bnot, sub `I)
        | `Lnot -> Un (Lnot, sub `I)
        | `Cast -> Cast (It (pick_ity rng), sub `I)
        | `Ternary ->
          Cond (sub ~d:(min (depth - 1) 2) `I, sub `I, sub `I)
        | `FCmp ->
          (* Float comparison yields int; it is the one place float
             values influence integer control flow. *)
          let op =
            Prng.pick rng [ Lt; Le; Gt; Ge; Eq; Ne ]
          in
          let b = if Prng.int rng 4 = 0 then sub `I else sub `F in
          Bin (op, sub `F, b)
        | `F2I ->
          (* Float-to-integer conversion: saturating and total in our
             abstract machine, so no guard is needed. *)
          Cast (It (pick_ity rng), sub `F)
        | `ICall -> gen_call (Prng.pick rng int_funcs)
      end
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type genstate = { mutable next_loop : int; loop_prefix : string }

let fresh_loop_var st =
  let v = Printf.sprintf "%si%d" st.loop_prefix st.next_loop in
  st.next_loop <- st.next_loop + 1;
  v

let want_for (s : sty) rng ~(float_ok : bool) : [ `I | `F ] =
  match s with
  | Ft _ -> if Prng.int rng 4 = 0 then `I else `F
  | It _ | Pt _ -> if float_ok && Prng.int rng 6 = 0 then `F else `I

let rec gen_stmt rng st ~(feat : features) ~(lv : leaves)
    ~(assignable : (string * sty) list) ~(depth : int) : stmt =
  let float_ok = feat.f_float in
  let rexpr ?(depth = 3) want =
    gen_expr rng ~feat ~mode:`Runtime ~lv ~depth ~want
  in
  let structured = depth > 0 in
  let memcpy_ok = feat.f_mem && List.length lv.lv_arrays >= 2 in
  (* A pointer is a store target only when its static window proves at
     least one element writable (char referents spare the NUL slot). *)
  let writable_ptrs =
    List.filter
      (fun pi ->
        pi.pi_obj <> ""
        && (if pi.pi_char_guard then pi.pi_ext - 1 else pi.pi_ext) - pi.pi_off
           >= 1)
      lv.lv_ptrs
  in
  let options =
    [ `Assign; `Assign; `Assign ]
    @ (if lv.lv_arrays <> [] then [ `AStore ] else [])
    @ (if lv.lv_fields <> [] then [ `FStore ] else [])
    @ (if feat.f_mem && lv.lv_arrays <> [] then [ `Memset ] else [])
    @ (if memcpy_ok then [ `Memcpy ] else [])
    @ (if writable_ptrs <> [] then [ `PStoreS; `PStoreS ] else [])
    @ (if structured then [ `If; `Loop; `Switch ] else [])
  in
  match Prng.pick rng options with
  | `Assign ->
    (* [assignable] holds scalar locals *and* globals (loop variables are
       deliberately absent: their bounds guarantee in-bounds indexing). *)
    let n, s = Prng.pick rng assignable in
    Assign (n, rexpr (want_for s rng ~float_ok))
  | `AStore ->
    let a, t, len = Prng.pick rng lv.lv_arrays in
    let w = if float_ok && Prng.int rng 6 = 0 then `F else `I in
    AStore (a, gen_index rng lv ~for_write:true t len, rexpr w)
  | `FStore ->
    let f, _ = Prng.pick rng lv.lv_fields in
    FStore (f, rexpr `I)
  | `PStoreS ->
    (* Integer stored values only: a float source could overflow the
       conversion to the element type, which is UB. *)
    let pi = Prng.pick rng writable_ptrs in
    PStore (pi.pi_name, gen_ptr_index rng lv ~for_write:true pi, rexpr `I)
  | `Memset ->
    let a, t, len = Prng.pick rng lv.lv_arrays in
    let cap = ity_bytes t * len - if is_char t then 1 else 0 in
    Memset (a, Prng.int rng 256, 1 + Prng.int rng cap)
  | `Memcpy ->
    let rec pick_two () =
      let d = Prng.pick rng lv.lv_arrays and s = Prng.pick rng lv.lv_arrays in
      let (dn, _, _) = d and (sn, _, _) = s in
      if dn = sn then pick_two () else (d, s)
    in
    let (dn, dt, dl), (sn, st_, sl) = pick_two () in
    let cap_dst = (ity_bytes dt * dl) - if is_char dt then 1 else 0 in
    let cap = min cap_dst (ity_bytes st_ * sl) in
    Memcpy (dn, sn, 1 + Prng.int rng cap)
  | `If ->
    let nthen = 1 + Prng.int rng 2 and nelse = Prng.int rng 2 in
    If
      ( rexpr ~depth:2 `I,
        gen_stmts rng st ~feat ~lv ~assignable ~depth:(depth - 1) ~n:nthen,
        gen_stmts rng st ~feat ~lv ~assignable ~depth:(depth - 1) ~n:nelse )
  | `Loop ->
    let v = fresh_loop_var st in
    let bound = 1 + Prng.int rng 8 in
    let lv' =
      { lv with
        lv_loops = (v, bound) :: lv.lv_loops;
        lv_scalars = (v, It I64) :: lv.lv_scalars }
    in
    Loop
      ( v, bound,
        gen_stmts rng st ~feat ~lv:lv' ~assignable ~depth:(depth - 1)
          ~n:(1 + Prng.int rng 2) )
  | `Switch ->
    let nlabels = 2 + Prng.int rng 2 in
    let labels =
      List.sort_uniq compare (List.init nlabels (fun _ -> Prng.int rng 8))
    in
    Switch
      ( rexpr ~depth:2 `I,
        List.map
          (fun k ->
            (k, gen_stmts rng st ~feat ~lv ~assignable ~depth:(depth - 1) ~n:1))
          labels,
        gen_stmts rng st ~feat ~lv ~assignable ~depth:(depth - 1) ~n:1 )

and gen_stmts rng st ~feat ~lv ~assignable ~depth ~n =
  List.init n (fun _ -> gen_stmt rng st ~feat ~lv ~assignable ~depth)

(* ------------------------------------------------------------------ *)
(* Helper functions                                                    *)
(* ------------------------------------------------------------------ *)

(* Helper-body statements: assignments to the helper's own locals, plus
   if/loops — exactly the [`Func] statement subset of [well_formed]. *)
let rec gen_fstmt rng st ~feat ~(lv : leaves)
    ~(assignable : (string * sty) list) ~(depth : int) : stmt =
  let rexpr ?(depth = 2) want =
    gen_expr rng ~feat ~mode:`Func ~lv ~depth ~want
  in
  let structured = depth > 0 in
  let options =
    [ `Assign; `Assign ] @ if structured then [ `If; `Loop ] else []
  in
  match Prng.pick rng options with
  | `Assign ->
    let n, s = Prng.pick rng assignable in
    Assign (n, rexpr (want_for s rng ~float_ok:feat.f_float))
  | `If ->
    If
      ( rexpr `I,
        gen_fstmts rng st ~feat ~lv ~assignable ~depth:(depth - 1)
          ~n:(1 + Prng.int rng 2),
        gen_fstmts rng st ~feat ~lv ~assignable ~depth:(depth - 1)
          ~n:(Prng.int rng 2) )
  | `Loop ->
    let v = fresh_loop_var st in
    let bound = 1 + Prng.int rng 8 in
    let lv' =
      { lv with
        lv_loops = (v, bound) :: lv.lv_loops;
        lv_scalars = (v, It I64) :: lv.lv_scalars }
    in
    Loop
      ( v, bound,
        gen_fstmts rng st ~feat ~lv:lv' ~assignable ~depth:(depth - 1)
          ~n:(1 + Prng.int rng 2) )

and gen_fstmts rng st ~feat ~lv ~assignable ~depth ~n =
  List.init n (fun _ -> gen_fstmt rng st ~feat ~lv ~assignable ~depth)

let pick_sty rng ~feat : sty =
  if feat.f_float && Prng.int rng 3 = 0 then Ft (pick_fty rng)
  else It (pick_ity rng)

(** One helper function: 1–3 typed parameters, at least one mutable
    local, a small body of assignments/ifs/loops, and a return
    expression over the full scope.  [earlier] helpers are callable from
    everywhere inside (acyclic by construction). *)
let gen_func rng ~feat ~(idx : int) ~(earlier : func list)
    ~(enum_names : string list) ~(globals : (string * sty) list) : func =
  let fn_name = Printf.sprintf "h%d" idx in
  let fn_params =
    List.init
      (1 + Prng.int rng 3)
      (fun k ->
        let s =
          if feat.f_ptr && Prng.int rng 4 = 0 then Pt (pick_ity rng)
          else pick_sty rng ~feat
        in
        (Printf.sprintf "%s_p%d" fn_name k, s))
  in
  (* A pointer parameter has no static referent ([pi_obj = ""]): the
     body may only dereference it as [*p] or compare it for (in)equality
     — exactly what any valid argument makes safe. *)
  let param_ptrs =
    List.filter_map
      (fun (n, s) ->
        match s with
        | Pt t ->
          Some
            { pi_name = n; pi_ty = t; pi_obj = ""; pi_off = 0; pi_ext = 1;
              pi_char_guard = false }
        | It _ | Ft _ -> None)
      fn_params
  in
  let base_lv scope =
    { (const_leaves enum_names) with
      lv_scalars = scope @ globals;
      lv_funcs = earlier;
      lv_ptrs = param_ptrs }
  in
  let scope = ref fn_params in
  let fn_locals =
    List.init
      (1 + Prng.int rng 2)
      (fun k ->
        let n = Printf.sprintf "%s_v%d" fn_name k in
        let s = pick_sty rng ~feat in
        let e =
          gen_expr rng ~feat ~mode:`Func ~lv:(base_lv !scope) ~depth:2
            ~want:(want_for s rng ~float_ok:feat.f_float)
        in
        scope := (n, s) :: !scope;
        (n, s, e))
  in
  let full_scope = !scope in
  let st = { next_loop = 0; loop_prefix = fn_name ^ "_" } in
  let assignable = List.map (fun (n, s, _) -> (n, s)) fn_locals in
  let fn_body =
    gen_fstmts rng st ~feat ~lv:(base_lv full_scope) ~assignable ~depth:1
      ~n:(Prng.int rng 3)
  in
  let fn_ret = pick_sty rng ~feat in
  let fn_ret_expr =
    gen_expr rng ~feat ~mode:`Func ~lv:(base_lv full_scope) ~depth:3
      ~want:(want_for fn_ret rng ~float_ok:feat.f_float)
  in
  { fn_name; fn_params; fn_locals; fn_body; fn_ret; fn_ret_expr }

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let generate ?(features = all_features) ~(seed : int) () : program =
  let feat = features in
  let rng = Prng.create seed in
  (* Enum constants: retry until the value fits in [int] (C gives enum
     constants type [int]; out-of-range values would be truncated
     differently by different folders — the very ambiguity we exclude
     from *well-defined* inputs). *)
  let n_enums = 1 + Prng.int rng 3 in
  let enums = ref [] and env = ref [] in
  for i = 0 to n_enums - 1 do
    let name = Printf.sprintf "E%d" i in
    let fallback () =
      let v = Int64.of_int (Prng.int rng 1000) in
      (Const (v, I32), v)
    in
    let rec try_gen attempts =
      let e =
        gen_expr rng ~feat ~mode:`Full
          ~lv:(const_leaves (List.map fst !enums))
          ~depth:(1 + Prng.int rng 3) ~want:`I
      in
      match
        (match type_of e with
        | It t -> as_long t (eval_int { const_env with ev_enums = !env } e)
        | Ft _ | Pt _ -> raise Not_const)
      with
      | v when v >= -2147483648L && v <= 2147483647L -> (e, v)
      | _ -> if attempts > 0 then try_gen (attempts - 1) else fallback ()
      | exception Not_const ->
        if attempts > 0 then try_gen (attempts - 1) else fallback ()
    in
    let e, v = try_gen 10 in
    enums := !enums @ [ (name, e) ];
    env := (name, normalize I32 v) :: !env
  done;
  let enums = !enums in
  let enum_names = List.map fst enums in
  (* Globals: restricted constant initializers (integer-only). *)
  let n_globals = 1 + Prng.int rng 3 in
  let globals =
    List.init n_globals (fun i ->
        ( Printf.sprintf "g%d" i,
          pick_ity rng,
          gen_expr rng ~feat ~mode:`Restricted ~lv:(const_leaves enum_names)
            ~depth:(1 + Prng.int rng 3) ~want:`I ))
  in
  (* Struct fields (possibly none) with constant initial stores. *)
  let fields =
    if Prng.int rng 3 = 0 then []
    else
      List.init
        (2 + Prng.int rng 2)
        (fun i ->
          let t = pick_ity rng in
          (Printf.sprintf "f%d" i, t, interesting rng t))
  in
  (* Arrays, zero-initialized.  With [mem] on, at least two arrays exist
     (so memcpy has distinct operands) and at least one is a char array
     (so strlen has a NUL-safe target). *)
  let arrays =
    if feat.f_mem then begin
      let n = 2 + Prng.int rng 2 in
      List.init n (fun i ->
          let t =
            if i = 0 then (if Prng.int rng 2 = 0 then I8 else U8)
            else pick_ity rng
          in
          (Printf.sprintf "a%d" i, t, 3 + Prng.int rng 6))
    end
    else
      List.init (Prng.int rng 3) (fun i ->
          (Printf.sprintf "a%d" i, pick_ity rng, 2 + Prng.int rng 7))
  in
  let strlen_arrays =
    List.filter_map
      (fun (a, t, _) -> if is_char t then Some a else None)
      arrays
  in
  (* Helper functions (acyclic: each sees only earlier ones).  With
     [ptr] on they may also read globals: the reference evaluator models
     the initial values, and every predicted call evaluates before the
     body's first mutation. *)
  let global_scope =
    if feat.f_ptr then List.map (fun (n, t, _) -> (n, It t)) globals else []
  in
  let funcs =
    if not feat.f_call then []
    else begin
      let n = 1 + Prng.int rng 2 in
      let acc = ref [] in
      for i = 0 to n - 1 do
        acc :=
          !acc
          @ [ gen_func rng ~feat ~idx:i ~earlier:!acc ~enum_names
                ~globals:global_scope ]
      done;
      !acc
    end
  in
  (* Recomputed pure expressions: the oracle checks the engines' runtime
     result of these against the reference evaluator — including float
     results (compared bit-exactly), helper calls with constant
     arguments (arbitrating the whole call machinery), and — with [ptr]
     — global reads (arbitrating the initializer fold). *)
  let rc_lv =
    { (const_leaves enum_names) with
      lv_funcs = funcs;
      lv_scalars = global_scope }
  in
  let rcs =
    List.init
      (2 + Prng.int rng 3)
      (fun i ->
        let want = if feat.f_float && Prng.int rng 3 = 0 then `F else `I in
        ( Printf.sprintf "rc%d" i,
          gen_expr rng ~feat ~mode:`Pure ~lv:rc_lv ~depth:(2 + Prng.int rng 3)
            ~want ))
  in
  (* Scalar locals; initializers may read anything already declared. *)
  let n_locals = 3 + Prng.int rng 4 in
  let locals = ref [] in
  let base_lv declared =
    { lv_enums = enum_names;
      lv_scalars = List.map (fun (n, t, _) -> (n, It t)) globals @ declared;
      lv_arrays = arrays;
      lv_fields = List.map (fun (f, t, _) -> (f, t)) fields;
      lv_loops = [];
      lv_funcs = funcs;
      lv_strlen = strlen_arrays;
      lv_ptrs = [] }
  in
  for i = 0 to n_locals - 1 do
    let declared = List.map (fun (n, s, _) -> (n, s)) !locals in
    let s = pick_sty rng ~feat in
    locals :=
      !locals
      @ [ ( Printf.sprintf "v%d" i,
            s,
            gen_expr rng ~feat ~mode:`Runtime ~lv:(base_lv declared) ~depth:3
              ~want:(want_for s rng ~float_ok:feat.f_float) ) ]
  done;
  let locals = !locals in
  let local_tys = List.map (fun (n, s, _) -> (n, s)) locals in
  (* The address universe: single-assignment pointers into int-typed
     locals, globals and array elements, plus aliases rebased anywhere
     inside an earlier pointer's referent (two names, one object).  The
     static (referent, offset, extent) rides along as [pinfo], so every
     use emitted below is in bounds by construction.  Finally, each
     helper pointer-parameter type that can be satisfied gets a
     guaranteed pointer, keeping pointer-taking helpers callable. *)
  let ptr_decls = ref [] and ptr_infos = ref [] in
  let fresh_ptr () = Printf.sprintf "p%d" (List.length !ptr_infos) in
  let add_scalar_ptr (n, t) =
    let pname = fresh_ptr () in
    ptr_decls := !ptr_decls @ [ (pname, t, PaddrScalar n) ];
    ptr_infos :=
      !ptr_infos
      @ [ { pi_name = pname; pi_ty = t; pi_obj = n; pi_off = 0; pi_ext = 1;
            pi_char_guard = false } ]
  in
  let add_arr_ptr (a, t, len) k =
    let pname = fresh_ptr () in
    ptr_decls := !ptr_decls @ [ (pname, t, PaddrArr (a, k)) ];
    ptr_infos :=
      !ptr_infos
      @ [ { pi_name = pname; pi_ty = t; pi_obj = a; pi_off = k; pi_ext = len;
            pi_char_guard = is_char t } ]
  in
  let add_alias q =
    let off' = Prng.int rng q.pi_ext in
    let pname = fresh_ptr () in
    ptr_decls := !ptr_decls @ [ (pname, q.pi_ty, Palias (q.pi_name, off' - q.pi_off)) ];
    ptr_infos := !ptr_infos @ [ { q with pi_name = pname; pi_off = off' } ]
  in
  if feat.f_ptr then begin
    let scalar_objs =
      List.filter_map
        (fun (n, s, _) ->
          match s with It t -> Some (n, t) | Ft _ | Pt _ -> None)
        locals
      @ List.map (fun (n, t, _) -> (n, t)) globals
    in
    let n_ptrs = 2 + Prng.int rng 3 in
    for _ = 1 to n_ptrs do
      let can_alias = !ptr_infos <> [] in
      if can_alias && Prng.int rng 3 = 0 then
        add_alias (Prng.pick rng !ptr_infos)
      else if arrays <> [] && Prng.int rng 2 = 0 then begin
        let (a, t, len) = Prng.pick rng arrays in
        add_arr_ptr (a, t, len) (Prng.int rng len)
      end
      else add_scalar_ptr (Prng.pick rng scalar_objs)
    done;
    List.iter
      (fun f ->
        List.iter
          (fun (_, ps) ->
            match ps with
            | Pt t
              when not (List.exists (fun pi -> pi.pi_ty = t) !ptr_infos) -> begin
              match
                List.find_opt (fun (_, t', _) -> t' = t) arrays
              with
              | Some (a, _, len) -> add_arr_ptr (a, t, len) (Prng.int rng len)
              | None -> begin
                match List.find_opt (fun (_, t') -> t' = t) scalar_objs with
                | Some obj -> add_scalar_ptr obj
                | None -> () (* this helper just stays uncalled *)
              end
            end
            | _ -> ())
          f.fn_params)
      funcs
  end;
  let ptrs = !ptr_decls in
  let st = { next_loop = 0; loop_prefix = "" } in
  (* The body may store to globals as well as locals: the rendering
     snapshots the reference-predicted initial values before the body. *)
  let body =
    gen_stmts rng st ~feat
      ~lv:{ (base_lv local_tys) with lv_ptrs = !ptr_infos }
      ~assignable:(List.map (fun (n, t, _) -> (n, It t)) globals @ local_tys)
      ~depth:2
      ~n:(3 + Prng.int rng 6)
  in
  { seed; enums; globals; fields; arrays; funcs; rcs; locals; ptrs; body }
